// Package repro's top-level benchmarks regenerate each of the paper's
// tables and figures through the experiments harness (at smoke-test scale;
// run cmd/experiments without -quick for the full-fidelity numbers).
package repro

import (
	"testing"

	"repro/internal/experiments"
)

func benchCfg() experiments.Config {
	return experiments.Config{Seed: 7, Quick: true}
}

// BenchmarkTableI regenerates Table I (soft vs. hard symmetry in GP).
func BenchmarkTableI(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := experiments.Table1(benchCfg()); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFig2 regenerates Fig. 2 (area-term ablation).
func BenchmarkFig2(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := experiments.Fig2(benchCfg()); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkTableIII regenerates Table III (main conventional comparison:
// SA vs. previous analytical work vs. ePlace-A on all ten circuits).
func BenchmarkTableIII(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := experiments.Table3(benchCfg()); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkTableIV regenerates Table IV (detailed placement back-ends from
// identical global placements).
func BenchmarkTableIV(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := experiments.Table4(benchCfg()); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFig5 regenerates Fig. 5 (HPWL–area tradeoff sweep on CM-OTA1).
func BenchmarkFig5(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := experiments.Fig5(benchCfg()); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkTableV_VII regenerates Tables V and VII together (they share
// the performance-driven placements), including GNN training.
func BenchmarkTableV_VII(b *testing.B) {
	for i := 0; i < b.N; i++ {
		models, err := experiments.TrainAll(benchCfg())
		if err != nil {
			b.Fatal(err)
		}
		if _, _, err := experiments.Table5And7(benchCfg(), models); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkTableVI regenerates Table VI (detailed CC-OTA metrics for
// ePlace-A vs. ePlace-AP).
func BenchmarkTableVI(b *testing.B) {
	models, err := experiments.TrainAll(benchCfg())
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := experiments.Table6(benchCfg(), models); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFig6 regenerates Fig. 6 (FOM–area tradeoff sweep on CM-OTA1).
func BenchmarkFig6(b *testing.B) {
	models, err := experiments.TrainAll(benchCfg())
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := experiments.Fig6(benchCfg(), models); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkAblations regenerates the ePlace-A design-choice ablation study
// (WA vs. LSE, flipping, refinement, portfolio).
func BenchmarkAblations(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := experiments.Ablations(benchCfg()); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkRoutedValidation regenerates the post-route wirelength
// validation (global routing of each method's placements).
func BenchmarkRoutedValidation(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := experiments.RoutedValidation(benchCfg()); err != nil {
			b.Fatal(err)
		}
	}
}
