// Command bench runs the QoR/runtime benchmark harness over a synthetic
// circuit suite (or explicit netlists) with every placement method, writes
// a BENCH_<label>.json report, and optionally gates against a stored
// baseline report, exiting non-zero when a regression exceeds tolerance.
//
// Usage:
//
//	bench -quick                             (CI smoke: quick suite, reduced budgets)
//	bench -suite std -reps 5 -label nightly
//	bench -sizes 100,400 -methods prev,eplace-a
//	bench -netlist mydesign.json,gen:200@7 -methods sa
//	bench -quick -baseline BENCH_main.json   (exit 1 on regression)
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"os"
	"runtime"
	"strings"
	"time"

	"repro/internal/bench"
	"repro/internal/circuit"
	"repro/internal/core"
	"repro/internal/gen"
	"repro/internal/netio"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("bench: ")
	var (
		suite    = flag.String("suite", "", "generated suite: "+strings.Join(gen.SuiteNames(), " | ")+" (default: quick with -quick, else std)")
		sizes    = flag.String("sizes", "", "comma-separated device counts to generate instead of a named suite, e.g. 100,400")
		netlists = flag.String("netlist", "", "comma-separated explicit cases instead of a suite: JSON files, built-in circuit names, or gen:<devices>[@seed] specs")
		methods  = flag.String("methods", "", "comma-separated methods to benchmark: sa, prev, eplace-a (default all)")
		reps     = flag.Int("reps", 0, "timed repetitions per case and method (default 3, 1 with -quick)")
		warmup   = flag.Int("warmup", -1, "untimed warmup runs per case and method (default 1, 0 with -quick)")
		seed     = flag.Int64("seed", 1, "seed for both circuit generation and placement")
		threads  = flag.Int("threads", runtime.NumCPU(), "worker threads for the placement kernels (QoR is bit-identical at any count)")
		quick    = flag.Bool("quick", false, "reduced solver budgets and repetitions (CI smoke scale)")
		label    = flag.String("label", "", "report label, names the output file BENCH_<label>.json (default the suite name)")
		outDir   = flag.String("out", ".", "directory for the report file")
		baseline = flag.String("baseline", "", "baseline report to gate against; regressions beyond tolerance exit non-zero")
		rtTol    = flag.Float64("runtime-tol", 0, "allowed runtime factor vs baseline (default 1.5)")
		qorTol   = flag.Float64("qor-tol", 0, "allowed QoR factor vs baseline (default 1.01)")
		timeout  = flag.Duration("timeout", 0, "abort the whole run after this long (0 = no limit)")
		traceDir = flag.String("trace-dir", "", "write one JSONL convergence trace per case and method here (analyzed by cmd/trace)")
		quiet    = flag.Bool("q", false, "suppress per-case progress lines")

		chains = flag.Int("chains", 0, "SA portfolio width: independent parallel chains, best kept (0 = per-mode default; QoR is thread-count invariant)")

		eco          = flag.Bool("eco", false, "also measure incremental (ECO) re-placement: each generated case gets a grown variant, solved cold and warm-started from the base placement")
		ecoEdit      = flag.Int("eco-edit", 0, "device count added by the ECO edit (default 12)")
		warmStart    = flag.String("warm-start", "", "placement JSON warm-starting every run (single explicit -netlist case; incompatible with -eco)")
		warmBase     = flag.String("warm-base", "", "netlist the -warm-start placement was solved for (file, built-in, or gen: spec; default: the benchmarked netlist)")
		anchorWeight = flag.Float64("anchor-weight", 0, "warm-start anchor pseudonet starting weight (0 = default 0.3)")
		anchorGrowth = flag.Float64("anchor-growth", 0, "warm-start anchor weight growth per iteration (0 = default 1.03)")
		refineOn     = flag.Bool("refine", false, "append the ILP large-neighborhood refinement stage to every method (never worsens QoR)")
		refineWin    = flag.Int("refine-windows", 0, "refinement window budget (0 = about two sweeps)")
	)
	flag.Parse()
	opt := bench.Options{
		Reps:          *reps,
		Warmup:        *warmup,
		Seed:          *seed,
		Quick:         *quick,
		Threads:       *threads,
		TraceDir:      *traceDir,
		Chains:        *chains,
		Refine:        *refineOn,
		RefineWindows: *refineWin,
		ECO:           *eco,
		AnchorWeight:  *anchorWeight,
		AnchorGrowth:  *anchorGrowth,
	}
	if err := run(*suite, *sizes, *netlists, *methods, *label, *outDir, *baseline, opt,
		*rtTol, *qorTol, *timeout, *quiet, *ecoEdit, *warmStart, *warmBase); err != nil {
		log.Fatal(err)
	}
}

func run(suite, sizes, netlists, methods, label, outDir, baseline string,
	opt bench.Options, rtTol, qorTol float64,
	timeout time.Duration, quiet bool, ecoEdit int, warmStart, warmBase string) error {

	cases, suiteName, err := resolveCases(suite, sizes, netlists, opt.Seed, opt.Quick, opt.ECO, ecoEdit)
	if err != nil {
		return err
	}
	if warmStart != "" {
		if opt.ECO {
			return fmt.Errorf("-warm-start and -eco are mutually exclusive (-eco derives its own warm starts)")
		}
		if len(cases) != 1 {
			return fmt.Errorf("-warm-start needs exactly one case (got %d); use a single -netlist entry", len(cases))
		}
		opt.Warm, err = loadWarmStart(cases[0].Netlist, warmStart, warmBase, opt.AnchorWeight, opt.AnchorGrowth)
		if err != nil {
			return err
		}
	} else if warmBase != "" {
		return fmt.Errorf("-warm-base needs -warm-start")
	}

	if opt.TraceDir != "" {
		if err := os.MkdirAll(opt.TraceDir, 0o755); err != nil {
			return err
		}
	}
	if methods != "" {
		for _, f := range strings.Split(methods, ",") {
			m, err := core.ParseMethod(strings.TrimSpace(f))
			if err != nil {
				return err
			}
			opt.Methods = append(opt.Methods, m)
		}
	}
	if timeout > 0 {
		ctx, cancel := context.WithTimeout(context.Background(), timeout)
		defer cancel()
		opt.Ctx = ctx
	}
	if !quiet {
		opt.Logf = log.Printf
	}

	rep, err := bench.Run(cases, opt)
	if err != nil {
		return err
	}
	rep.Suite = suiteName
	rep.Label = label
	if rep.Label == "" {
		rep.Label = suiteName
	}
	path, err := rep.WriteFile(outDir)
	if err != nil {
		return err
	}
	log.Printf("wrote %s (%d results)", path, len(rep.Results))

	if baseline != "" {
		base, err := bench.ReadReport(baseline)
		if err != nil {
			return err
		}
		regs, err := bench.Compare(base, rep, bench.Tolerances{RuntimeFactor: rtTol, QoRFactor: qorTol})
		if err != nil {
			return err
		}
		if len(regs) > 0 {
			for _, r := range regs {
				log.Printf("REGRESSION %s", r)
			}
			return fmt.Errorf("%d regression(s) vs %s", len(regs), baseline)
		}
		log.Printf("no regressions vs %s", baseline)
	}
	return nil
}

// resolveCases materializes the benchmark circuits from whichever source
// flag is set: explicit -netlist entries, explicit -sizes, or a named
// suite (defaulting by -quick). It returns the cases plus the suite name
// recorded in the report.
func resolveCases(suite, sizes, netlists string, seed int64, quick, eco bool, ecoEdit int) ([]bench.CaseInput, string, error) {
	set := 0
	for _, s := range []string{suite, sizes, netlists} {
		if s != "" {
			set++
		}
	}
	if set > 1 {
		return nil, "", fmt.Errorf("choose one of -suite, -sizes, -netlist")
	}

	if netlists != "" {
		var cases []bench.CaseInput
		for _, f := range strings.Split(netlists, ",") {
			f = strings.TrimSpace(f)
			if f == "" {
				continue
			}
			n, err := resolveOne(f)
			if err != nil {
				return nil, "", err
			}
			cases = append(cases, bench.CaseInput{Name: caseName(f, n.Name), Netlist: n})
		}
		if len(cases) == 0 {
			return nil, "", fmt.Errorf("-netlist: empty case list %q", netlists)
		}
		return cases, "custom", nil
	}

	var genCases []gen.Case
	suiteName := suite
	switch {
	case sizes != "":
		sz, err := gen.ParseSizes(sizes)
		if err != nil {
			return nil, "", err
		}
		genCases = gen.Sizes(sz, seed)
		suiteName = "sizes:" + sizes
	default:
		if suiteName == "" {
			if quick {
				suiteName = "quick"
			} else {
				suiteName = "std"
			}
		}
		var err error
		genCases, err = gen.Suite(suiteName, seed)
		if err != nil {
			return nil, "", err
		}
	}
	var cases []bench.CaseInput
	for _, c := range genCases {
		n, err := gen.Generate(c.Params)
		if err != nil {
			return nil, "", fmt.Errorf("generating %s: %w", c.Name, err)
		}
		in := bench.CaseInput{Name: c.Name, Netlist: n}
		if eco {
			// The edit is the generator's own growth: same seed, more
			// devices, so the original devices are a byte-identical prefix
			// and the perturbation is exactly the appended tiles.
			in.Edited, err = gen.Generate(gen.Edited(c.Params, ecoEdit))
			if err != nil {
				return nil, "", fmt.Errorf("generating %s eco edit: %w", c.Name, err)
			}
		}
		cases = append(cases, in)
	}
	return cases, suiteName, nil
}

// loadWarmStart reads a -warm-start placement document and resolves it
// against the warm base netlist (default: the benchmarked netlist itself).
func loadWarmStart(n *circuit.Netlist, warmStart, warmBase string, aw, ag float64) (*core.WarmStart, error) {
	f, err := os.Open(warmStart)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	doc, err := circuit.ReadPlacementDoc(f)
	if err != nil {
		return nil, fmt.Errorf("%s: %w", warmStart, err)
	}
	base := n
	if warmBase != "" {
		if base, err = netio.Resolve(warmBase); err != nil {
			return nil, err
		}
	}
	prior, err := netio.PlacementForNetlistStrict(base, doc)
	if err != nil {
		return nil, fmt.Errorf("%s: %w", warmStart, err)
	}
	ws := &core.WarmStart{Placement: prior, AnchorWeight: aw, AnchorGrowth: ag}
	if warmBase != "" {
		ws.Base = base
	}
	return ws, nil
}

// resolveOne loads one -netlist entry: a path if the file exists, else a
// built-in name or generator spec.
func resolveOne(entry string) (*circuit.Netlist, error) {
	return netio.Resolve(entry)
}

// caseName labels a -netlist case: the netlist's own name when it has one,
// else the flag entry itself.
func caseName(entry, name string) string {
	if name != "" {
		return name
	}
	return entry
}
