// Command placer places an analog netlist from a JSON file (or a built-in
// benchmark circuit) with any of the three placement methods the library
// implements, and writes the legal placement as JSON.
//
// Usage:
//
//	placer -circuit CC-OTA -method eplace-a
//	placer -in mydesign.json -method sa -out placed.json
//	placer -circuit VGA -method eplace-a -perf       (trains a GNN first)
//	placer -circuit Adder -dump-netlist              (emit the JSON schema)
//	placer -circuit CC-OTA -trace t.jsonl -v         (telemetry + progress)
package main

import (
	"context"
	"flag"
	"fmt"
	"io"
	"log"
	"os"
	"runtime"
	"runtime/pprof"

	"repro/internal/core"
	"repro/internal/netio"
	"repro/internal/obs"
	"repro/internal/refine"
	"repro/internal/testcircuits"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("placer: ")
	var (
		inPath  = flag.String("in", "", "netlist JSON file (see -dump-netlist for the schema)")
		name    = flag.String("circuit", "", "built-in benchmark circuit name (see -list)")
		method  = flag.String("method", "eplace-a", "placement method: sa | prev | eplace-a")
		outPath = flag.String("out", "", "write placement JSON here (default stdout)")
		seed    = flag.Int64("seed", 1, "random seed")
		threads = flag.Int("threads", runtime.NumCPU(), "worker threads for the placement kernels (results are bit-identical at any count)")
		perf    = flag.Bool("perf", false, "performance-driven variant (built-in circuits only; trains a GNN)")
		list    = flag.Bool("list", false, "list built-in benchmark circuits")
		dumpNet = flag.Bool("dump-netlist", false, "write the selected circuit's netlist JSON and exit")
		svgPath = flag.String("svg", "", "additionally render the placement to this SVG file")
		timeout = flag.Duration("timeout", 0, "abort the run after this long (0 = no limit), e.g. 30s or 5m")

		chains    = flag.Int("chains", 0, "SA portfolio width: independent chains run in parallel, best kept (0 = the annealer's restart count; results are thread-count invariant)")
		refine    = flag.Bool("refine", false, "append the ILP large-neighborhood refinement stage (never worsens HPWL or area)")
		refineWin = flag.Int("refine-windows", 0, "refinement window budget (0 = about two sweeps); implies nothing unless -refine is set")

		tracePath  = flag.String("trace", "", "write a JSONL telemetry trace (spans, solver iterations, counters) here")
		verbose    = flag.Bool("v", false, "periodic human-readable progress on stderr")
		progEvery  = flag.Int("progress-every", 100, "with -v, print every Nth solver iteration")
		cpuProfile = flag.String("cpuprofile", "", "write a pprof CPU profile here")
		memProfile = flag.String("memprofile", "", "write a pprof heap profile here")
	)
	flag.Parse()

	if *list {
		for _, nm := range testcircuits.Names() {
			fmt.Println(nm)
		}
		return
	}

	if *cpuProfile != "" {
		f, err := os.Create(*cpuProfile)
		if err != nil {
			log.Fatal(err)
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			log.Fatal(err)
		}
		defer pprof.StopCPUProfile()
	}

	var sinks []obs.Sink
	if *tracePath != "" {
		f, err := os.Create(*tracePath)
		if err != nil {
			log.Fatal(err)
		}
		sinks = append(sinks, obs.NewJSONLSink(f))
	}
	if *verbose {
		sinks = append(sinks, obs.NewProgressSink(os.Stderr, *progEvery))
	}
	var tracer *obs.Tracer
	if len(sinks) > 0 {
		tracer = obs.New(sinks...)
	}

	ctx := context.Background()
	if *timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, *timeout)
		defer cancel()
	}

	err := run(ctx, runConfig{
		inPath: *inPath, name: *name, method: *method,
		outPath: *outPath, svgPath: *svgPath,
		seed: *seed, threads: *threads, perf: *perf, dumpNet: *dumpNet,
		chains: *chains, refine: *refine, refineWindows: *refineWin,
		tracer: tracer,
	})
	if cerr := tracer.Close(); cerr != nil && err == nil {
		err = fmt.Errorf("closing trace: %w", cerr)
	}
	if *memProfile != "" && err == nil {
		err = writeHeapProfile(*memProfile)
	}
	if err != nil {
		pprof.StopCPUProfile() // log.Fatal skips deferred calls
		log.Fatal(err)
	}
}

// runConfig carries the flag values into run.
type runConfig struct {
	inPath, name, method string
	outPath, svgPath     string
	seed                 int64
	threads              int
	perf, dumpNet        bool
	chains               int
	refine               bool
	refineWindows        int
	tracer               *obs.Tracer
}

// run executes the placement flow; all fallible work lives here so main
// can release the profiler and tracer on every exit path.
func run(ctx context.Context, cfg runConfig) error {
	inPath, name, method := cfg.inPath, cfg.name, cfg.method
	outPath, svgPath := cfg.outPath, cfg.svgPath
	seed, threads, perf, dumpNet := cfg.seed, cfg.threads, cfg.perf, cfg.dumpNet
	tracer := cfg.tracer
	if inPath == "" && name == "" {
		return fmt.Errorf("need -in FILE or -circuit NAME (try -list)")
	}
	n, cs, err := netio.Load(inPath, name)
	if err != nil {
		return err
	}

	// writeOut routes output to -out or stdout, failing loudly on any
	// write or close error so a truncated placement can never be silently
	// reported as success.
	writeOut := func(write func(io.Writer) error) error {
		if outPath == "" {
			return write(os.Stdout)
		}
		f, err := os.Create(outPath)
		if err != nil {
			return err
		}
		if err := write(f); err != nil {
			f.Close()
			return fmt.Errorf("writing %s: %w", outPath, err)
		}
		if err := f.Close(); err != nil {
			return fmt.Errorf("closing %s: %w", outPath, err)
		}
		return nil
	}

	if dumpNet {
		return writeOut(n.WriteJSON)
	}

	m, err := core.ParseMethod(method)
	if err != nil {
		return err
	}

	opt := core.Options{Seed: seed, Tracer: tracer, Threads: threads, Chains: cfg.chains}
	if cfg.refine {
		opt.Refine = &refine.Options{Windows: cfg.refineWindows}
	}
	if perf {
		if cs == nil {
			return fmt.Errorf("-perf needs a built-in circuit (the GNN trains against its performance model)")
		}
		log.Print("training performance GNN...")
		model, stats, err := core.TrainPerfGNNCtx(ctx, n, cs.Perf, 0, core.TrainOptions{Seed: seed, Tracer: tracer})
		if err != nil {
			return err
		}
		log.Printf("trained (validation accuracy %.2f)", stats.ValAccuracy)
		opt.Perf = &core.PerfTerm{Model: model}
	}

	res, err := core.PlaceCtx(ctx, n, m, opt)
	if err != nil {
		return err
	}
	log.Printf("%s: area %.1f µm², HPWL %.1f µm, %.2fs, legal=%v",
		res.Method, res.AreaUM2, res.HPWLUM, res.Runtime.Seconds(), res.Legal)
	if cs != nil {
		log.Printf("FOM %.3f", cs.Perf.FOM(n, res.Placement))
	}
	if err := writeOut(func(w io.Writer) error {
		return n.WritePlacementJSON(w, res.Placement)
	}); err != nil {
		return err
	}
	if svgPath != "" {
		f, err := os.Create(svgPath)
		if err != nil {
			return err
		}
		if err := n.WriteSVG(f, res.Placement); err != nil {
			f.Close()
			return fmt.Errorf("writing %s: %w", svgPath, err)
		}
		if err := f.Close(); err != nil {
			return fmt.Errorf("closing %s: %w", svgPath, err)
		}
		log.Printf("wrote %s", svgPath)
	}
	return nil
}

// writeHeapProfile snapshots the heap after a final GC, the profile most
// useful for sizing solver allocations.
func writeHeapProfile(path string) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	runtime.GC()
	if err := pprof.WriteHeapProfile(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}
