// Command placer places an analog netlist from a JSON file (or a built-in
// benchmark circuit) with any of the three placement methods the library
// implements, and writes the legal placement as JSON.
//
// Usage:
//
//	placer -circuit CC-OTA -method eplace-a
//	placer -in mydesign.json -method sa -out placed.json
//	placer -circuit VGA -method eplace-a -perf       (trains a GNN first)
//	placer -circuit Adder -dump-netlist              (emit the JSON schema)
package main

import (
	"flag"
	"fmt"
	"log"
	"os"

	"repro/internal/circuit"
	"repro/internal/core"
	"repro/internal/testcircuits"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("placer: ")
	var (
		inPath  = flag.String("in", "", "netlist JSON file (see -dump-netlist for the schema)")
		name    = flag.String("circuit", "", "built-in benchmark circuit name (see -list)")
		method  = flag.String("method", "eplace-a", "placement method: sa | prev | eplace-a")
		outPath = flag.String("out", "", "write placement JSON here (default stdout)")
		seed    = flag.Int64("seed", 1, "random seed")
		perf    = flag.Bool("perf", false, "performance-driven variant (built-in circuits only; trains a GNN)")
		list    = flag.Bool("list", false, "list built-in benchmark circuits")
		dumpNet = flag.Bool("dump-netlist", false, "write the selected circuit's netlist JSON and exit")
		svgPath = flag.String("svg", "", "additionally render the placement to this SVG file")
	)
	flag.Parse()

	if *list {
		for _, nm := range testcircuits.Names() {
			fmt.Println(nm)
		}
		return
	}

	var n *circuit.Netlist
	var cs *testcircuits.Case
	switch {
	case *inPath != "":
		f, err := os.Open(*inPath)
		if err != nil {
			log.Fatal(err)
		}
		n, err = circuit.ReadJSON(f)
		f.Close()
		if err != nil {
			log.Fatal(err)
		}
	case *name != "":
		var err error
		cs, err = testcircuits.ByName(*name)
		if err != nil {
			log.Fatal(err)
		}
		n = cs.Netlist
	default:
		log.Fatal("need -in FILE or -circuit NAME (try -list)")
	}

	out := os.Stdout
	if *outPath != "" {
		f, err := os.Create(*outPath)
		if err != nil {
			log.Fatal(err)
		}
		defer f.Close()
		out = f
	}

	if *dumpNet {
		if err := n.WriteJSON(out); err != nil {
			log.Fatal(err)
		}
		return
	}

	var m core.Method
	switch *method {
	case "sa":
		m = core.MethodSA
	case "prev":
		m = core.MethodPrev
	case "eplace-a":
		m = core.MethodEPlaceA
	default:
		log.Fatalf("unknown method %q (want sa, prev, or eplace-a)", *method)
	}

	opt := core.Options{Seed: *seed}
	if *perf {
		if cs == nil {
			log.Fatal("-perf needs a built-in circuit (the GNN trains against its performance model)")
		}
		log.Print("training performance GNN...")
		model, stats, err := core.TrainPerfGNN(n, cs.Perf, 0, core.TrainOptions{Seed: *seed})
		if err != nil {
			log.Fatal(err)
		}
		log.Printf("trained (validation accuracy %.2f)", stats.ValAccuracy)
		opt.Perf = &core.PerfTerm{Model: model}
	}

	res, err := core.Place(n, m, opt)
	if err != nil {
		log.Fatal(err)
	}
	log.Printf("%s: area %.1f µm², HPWL %.1f µm, %.2fs, legal=%v",
		res.Method, res.AreaUM2, res.HPWLUM, res.Runtime.Seconds(), res.Legal)
	if cs != nil {
		log.Printf("FOM %.3f", cs.Perf.FOM(n, res.Placement))
	}
	if err := n.WritePlacementJSON(out, res.Placement); err != nil {
		log.Fatal(err)
	}
	if *svgPath != "" {
		f, err := os.Create(*svgPath)
		if err != nil {
			log.Fatal(err)
		}
		defer f.Close()
		if err := n.WriteSVG(f, res.Placement); err != nil {
			log.Fatal(err)
		}
		log.Printf("wrote %s", *svgPath)
	}
}
