// Command placer places an analog netlist from a JSON file (or a built-in
// benchmark circuit) with any of the three placement methods the library
// implements, and writes the legal placement as JSON.
//
// Usage:
//
//	placer -circuit CC-OTA -method eplace-a
//	placer -in mydesign.json -method sa -out placed.json
//	placer -circuit VGA -method eplace-a -perf       (trains a GNN first)
//	placer -circuit Adder -dump-netlist              (emit the JSON schema)
//	placer -circuit CC-OTA -trace t.jsonl -v         (telemetry + progress)
package main

import (
	"context"
	"flag"
	"fmt"
	"io"
	"log"
	"os"
	"runtime"
	"runtime/pprof"

	"repro/internal/circuit"
	"repro/internal/core"
	"repro/internal/netio"
	"repro/internal/obs"
	"repro/internal/refine"
	"repro/internal/testcircuits"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("placer: ")
	var (
		inPath  = flag.String("in", "", "netlist JSON file (see -dump-netlist for the schema)")
		name    = flag.String("circuit", "", "built-in benchmark circuit name (see -list)")
		method  = flag.String("method", "eplace-a", "placement method: sa | prev | eplace-a")
		outPath = flag.String("out", "", "write placement JSON here (default stdout)")
		seed    = flag.Int64("seed", 1, "random seed")
		threads = flag.Int("threads", runtime.NumCPU(), "worker threads for the placement kernels (results are bit-identical at any count)")
		perf    = flag.Bool("perf", false, "performance-driven variant (built-in circuits only; trains a GNN)")
		list    = flag.Bool("list", false, "list built-in benchmark circuits")
		dumpNet = flag.Bool("dump-netlist", false, "write the selected circuit's netlist JSON and exit")
		svgPath = flag.String("svg", "", "additionally render the placement to this SVG file")
		timeout = flag.Duration("timeout", 0, "abort the run after this long (0 = no limit), e.g. 30s or 5m")

		chains    = flag.Int("chains", 0, "SA portfolio width: independent chains run in parallel, best kept (0 = the annealer's restart count; results are thread-count invariant)")
		refine    = flag.Bool("refine", false, "append the ILP large-neighborhood refinement stage (never worsens HPWL or area)")
		refineWin = flag.Int("refine-windows", 0, "refinement window budget (0 = about two sweeps); implies nothing unless -refine is set")

		warmStart    = flag.String("warm-start", "", "prior placement JSON: run an incremental (ECO) re-solve anchored to it")
		warmBase     = flag.String("warm-base", "", "netlist the -warm-start placement was solved for (file, built-in, or gen: spec; default: the input netlist)")
		anchorWeight = flag.Float64("anchor-weight", 0, "initial anchor-pseudonet force as a fraction of the wirelength force (0 = default 0.3)")
		anchorGrowth = flag.Float64("anchor-growth", 0, "per-iteration anchor weight growth (0 = default 1.03)")

		tracePath  = flag.String("trace", "", "write a JSONL telemetry trace (spans, solver iterations, counters) here")
		verbose    = flag.Bool("v", false, "periodic human-readable progress on stderr")
		progEvery  = flag.Int("progress-every", 100, "with -v, print every Nth solver iteration")
		cpuProfile = flag.String("cpuprofile", "", "write a pprof CPU profile here")
		memProfile = flag.String("memprofile", "", "write a pprof heap profile here")
	)
	flag.Parse()

	if *list {
		for _, nm := range testcircuits.Names() {
			fmt.Println(nm)
		}
		return
	}

	if *cpuProfile != "" {
		f, err := os.Create(*cpuProfile)
		if err != nil {
			log.Fatal(err)
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			log.Fatal(err)
		}
		defer pprof.StopCPUProfile()
	}

	var sinks []obs.Sink
	if *tracePath != "" {
		f, err := os.Create(*tracePath)
		if err != nil {
			log.Fatal(err)
		}
		sinks = append(sinks, obs.NewJSONLSink(f))
	}
	if *verbose {
		sinks = append(sinks, obs.NewProgressSink(os.Stderr, *progEvery))
	}
	var tracer *obs.Tracer
	if len(sinks) > 0 {
		tracer = obs.New(sinks...)
	}

	ctx := context.Background()
	if *timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, *timeout)
		defer cancel()
	}

	err := run(ctx, runConfig{
		inPath: *inPath, name: *name, method: *method,
		outPath: *outPath, svgPath: *svgPath,
		seed: *seed, threads: *threads, perf: *perf, dumpNet: *dumpNet,
		chains: *chains, refine: *refine, refineWindows: *refineWin,
		warmStart: *warmStart, warmBase: *warmBase,
		anchorWeight: *anchorWeight, anchorGrowth: *anchorGrowth,
		tracer: tracer,
	})
	if cerr := tracer.Close(); cerr != nil && err == nil {
		err = fmt.Errorf("closing trace: %w", cerr)
	}
	if *memProfile != "" && err == nil {
		err = writeHeapProfile(*memProfile)
	}
	if err != nil {
		pprof.StopCPUProfile() // log.Fatal skips deferred calls
		log.Fatal(err)
	}
}

// runConfig carries the flag values into run.
type runConfig struct {
	inPath, name, method string
	outPath, svgPath     string
	seed                 int64
	threads              int
	perf, dumpNet        bool
	chains               int
	refine               bool
	refineWindows        int
	warmStart, warmBase  string
	anchorWeight         float64
	anchorGrowth         float64
	tracer               *obs.Tracer
}

// run executes the placement flow; all fallible work lives here so main
// can release the profiler and tracer on every exit path.
func run(ctx context.Context, cfg runConfig) error {
	inPath, name, method := cfg.inPath, cfg.name, cfg.method
	outPath, svgPath := cfg.outPath, cfg.svgPath
	seed, threads, perf, dumpNet := cfg.seed, cfg.threads, cfg.perf, cfg.dumpNet
	tracer := cfg.tracer
	if inPath == "" && name == "" {
		return fmt.Errorf("need -in FILE or -circuit NAME (try -list)")
	}
	n, cs, err := netio.Load(inPath, name)
	if err != nil {
		return err
	}

	// writeOut routes output to -out or stdout, failing loudly on any
	// write or close error so a truncated placement can never be silently
	// reported as success.
	writeOut := func(write func(io.Writer) error) error {
		if outPath == "" {
			return write(os.Stdout)
		}
		f, err := os.Create(outPath)
		if err != nil {
			return err
		}
		if err := write(f); err != nil {
			f.Close()
			return fmt.Errorf("writing %s: %w", outPath, err)
		}
		if err := f.Close(); err != nil {
			return fmt.Errorf("closing %s: %w", outPath, err)
		}
		return nil
	}

	if dumpNet {
		return writeOut(n.WriteJSON)
	}

	m, err := core.ParseMethod(method)
	if err != nil {
		return err
	}

	opt := core.Options{Seed: seed, Tracer: tracer, Threads: threads, Chains: cfg.chains}
	if cfg.refine {
		opt.Refine = &refine.Options{Windows: cfg.refineWindows}
	}
	if cfg.warmStart != "" {
		ws, err := loadWarmStart(n, cfg)
		if err != nil {
			return err
		}
		opt.WarmStart = ws
	} else if cfg.warmBase != "" {
		return fmt.Errorf("-warm-base needs -warm-start")
	}
	if perf {
		if cs == nil {
			return fmt.Errorf("-perf needs a built-in circuit (the GNN trains against its performance model)")
		}
		log.Print("training performance GNN...")
		model, stats, err := core.TrainPerfGNNCtx(ctx, n, cs.Perf, 0, core.TrainOptions{Seed: seed, Tracer: tracer})
		if err != nil {
			return err
		}
		log.Printf("trained (validation accuracy %.2f)", stats.ValAccuracy)
		opt.Perf = &core.PerfTerm{Model: model}
	}

	res, err := core.PlaceCtx(ctx, n, m, opt)
	if err != nil {
		return err
	}
	log.Printf("%s: area %.1f µm², HPWL %.1f µm, %.2fs, legal=%v",
		res.Method, res.AreaUM2, res.HPWLUM, res.Runtime.Seconds(), res.Legal)
	if opt.WarmStart != nil {
		log.Printf("warm start: %d anchored, %d perturbed of %d devices",
			res.WarmAnchored, res.WarmPerturbed, len(n.Devices))
	}
	if cs != nil {
		log.Printf("FOM %.3f", cs.Perf.FOM(n, res.Placement))
	}
	if err := writeOut(func(w io.Writer) error {
		return n.WritePlacementJSON(w, res.Placement)
	}); err != nil {
		return err
	}
	if svgPath != "" {
		f, err := os.Create(svgPath)
		if err != nil {
			return err
		}
		if err := n.WriteSVG(f, res.Placement); err != nil {
			f.Close()
			return fmt.Errorf("writing %s: %w", svgPath, err)
		}
		if err := f.Close(); err != nil {
			return fmt.Errorf("closing %s: %w", svgPath, err)
		}
		log.Printf("wrote %s", svgPath)
	}
	return nil
}

// loadWarmStart reads the prior placement document and resolves the base
// netlist it belongs to (the input netlist itself unless -warm-base names
// another source).
func loadWarmStart(n *circuit.Netlist, cfg runConfig) (*core.WarmStart, error) {
	f, err := os.Open(cfg.warmStart)
	if err != nil {
		return nil, err
	}
	doc, err := circuit.ReadPlacementDoc(f)
	f.Close()
	if err != nil {
		return nil, fmt.Errorf("%s: %w", cfg.warmStart, err)
	}
	base := n
	if cfg.warmBase != "" {
		base, err = netio.Resolve(cfg.warmBase)
		if err != nil {
			return nil, fmt.Errorf("-warm-base %s: %w", cfg.warmBase, err)
		}
	}
	prior, err := netio.PlacementForNetlistStrict(base, doc)
	if err != nil {
		return nil, err
	}
	ws := &core.WarmStart{
		Placement:    prior,
		AnchorWeight: cfg.anchorWeight,
		AnchorGrowth: cfg.anchorGrowth,
	}
	if cfg.warmBase != "" {
		ws.Base = base
	}
	return ws, nil
}

// writeHeapProfile snapshots the heap after a final GC, the profile most
// useful for sizing solver allocations.
func writeHeapProfile(path string) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	runtime.GC()
	if err := pprof.WriteHeapProfile(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}
