// Command experiments regenerates the paper's evaluation tables and
// figures. Usage:
//
//	experiments [flags] [table1 fig2 table3 table4 fig5 table5 table6 table7 fig6 ablations refine routed | all]
//
// Each selected experiment prints its results in a layout mirroring the
// paper's table so the reproduction can be compared side by side.
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"os"
	"runtime"
	"runtime/pprof"
	"time"

	"repro/internal/experiments"
	"repro/internal/obs"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("experiments: ")
	seed := flag.Int64("seed", 7, "base random seed for every experiment")
	quick := flag.Bool("quick", false, "reduced budgets (smoke-test scale)")
	timeout := flag.Duration("timeout", 0, "abort the whole run after this long (0 = no limit), e.g. 30m")
	tracePath := flag.String("trace", "", "write a JSONL telemetry trace of every solver run here")
	verbose := flag.Bool("v", false, "periodic human-readable solver progress on stderr")
	progEvery := flag.Int("progress-every", 500, "with -v, print every Nth solver iteration")
	cpuProfile := flag.String("cpuprofile", "", "write a pprof CPU profile here")
	memProfile := flag.String("memprofile", "", "write a pprof heap profile here")
	flag.Parse()

	if *cpuProfile != "" {
		f, err := os.Create(*cpuProfile)
		if err != nil {
			log.Fatal(err)
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			log.Fatal(err)
		}
		defer pprof.StopCPUProfile()
	}
	var sinks []obs.Sink
	if *tracePath != "" {
		f, err := os.Create(*tracePath)
		if err != nil {
			log.Fatal(err)
		}
		sinks = append(sinks, obs.NewJSONLSink(f))
	}
	if *verbose {
		sinks = append(sinks, obs.NewProgressSink(os.Stderr, *progEvery))
	}
	var tracer *obs.Tracer
	if len(sinks) > 0 {
		tracer = obs.New(sinks...)
	}
	// log.Fatal bypasses deferred calls, so flush telemetry and profiles
	// explicitly on the success path and accept their loss on fatal exits.
	finish := func() {
		if err := tracer.Close(); err != nil {
			log.Fatalf("closing trace: %v", err)
		}
		if *memProfile != "" {
			f, err := os.Create(*memProfile)
			if err != nil {
				log.Fatal(err)
			}
			runtime.GC()
			if err := pprof.WriteHeapProfile(f); err != nil {
				log.Fatal(err)
			}
			if err := f.Close(); err != nil {
				log.Fatal(err)
			}
		}
	}

	ctx := context.Background()
	if *timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, *timeout)
		defer cancel()
	}
	cfg := experiments.Config{Seed: *seed, Quick: *quick, Tracer: tracer, Ctx: ctx}
	sel := flag.Args()
	if len(sel) == 0 {
		sel = []string{"all"}
	}
	want := map[string]bool{}
	for _, s := range sel {
		want[s] = true
	}
	all := want["all"]
	ranAny := false

	run := func(name string, fn func() error) {
		if !all && !want[name] {
			return
		}
		ranAny = true
		start := time.Now()
		if err := fn(); err != nil {
			log.Fatalf("%s: %v", name, err)
		}
		fmt.Printf("[%s completed in %.1fs]\n\n", name, time.Since(start).Seconds())
	}

	run("table1", func() error {
		rows, err := experiments.Table1(cfg)
		if err != nil {
			return err
		}
		fmt.Print(experiments.FormatTable1(rows))
		return nil
	})
	run("fig2", func() error {
		rows, err := experiments.Fig2(cfg)
		if err != nil {
			return err
		}
		fmt.Print(experiments.FormatFig2(rows))
		return nil
	})
	run("table3", func() error {
		rows, err := experiments.Table3(cfg)
		if err != nil {
			return err
		}
		fmt.Print(experiments.FormatTable3(rows))
		return nil
	})
	run("table4", func() error {
		rows, err := experiments.Table4(cfg)
		if err != nil {
			return err
		}
		fmt.Print(experiments.FormatTable4(rows))
		return nil
	})
	run("fig5", func() error {
		pts, err := experiments.Fig5(cfg)
		if err != nil {
			return err
		}
		fmt.Print(experiments.FormatSweep("Fig. 5: HPWL-area tradeoff on CM-OTA1", pts, false))
		return nil
	})
	run("ablations", func() error {
		rows, err := experiments.Ablations(cfg)
		if err != nil {
			return err
		}
		fmt.Print(experiments.FormatAblations(rows))
		return nil
	})
	run("refine", func() error {
		rows, err := experiments.RefineAblation(cfg)
		if err != nil {
			return err
		}
		fmt.Print(experiments.FormatRefineAblation(rows))
		return nil
	})
	run("routed", func() error {
		rows, err := experiments.RoutedValidation(cfg)
		if err != nil {
			return err
		}
		fmt.Print(experiments.FormatRouted(rows))
		return nil
	})
	// "scaling" is not part of "all": it sweeps generated circuits beyond
	// the paper's benchmark sizes, and the std suite at full budgets runs
	// far longer than the paper tables. Select it explicitly.
	if want["scaling"] {
		ranAny = true
		start := time.Now()
		rows, err := experiments.Scaling(cfg)
		if err != nil {
			log.Fatalf("scaling: %v", err)
		}
		fmt.Print(experiments.FormatScaling(rows))
		fmt.Printf("[scaling completed in %.1fs]\n\n", time.Since(start).Seconds())
	}

	// The performance-driven experiments share trained GNN models.
	needPerf := all || want["table5"] || want["table6"] || want["table7"] || want["fig6"]
	var models *experiments.Models
	if needPerf {
		start := time.Now()
		var err error
		models, err = experiments.TrainAll(cfg)
		if err != nil {
			log.Fatalf("training GNN models: %v", err)
		}
		fmt.Printf("[trained 10 GNN performance models in %.1fs]\n\n", time.Since(start).Seconds())
	}

	var t5 []experiments.Table5Row
	var t7 []experiments.Table7Row
	if all || want["table5"] || want["table7"] {
		var err error
		start := time.Now()
		t5, t7, err = experiments.Table5And7(cfg, models)
		if err != nil {
			log.Fatalf("table5/7: %v", err)
		}
		ranAny = true
		if all || want["table5"] {
			fmt.Print(experiments.FormatTable5(t5))
			fmt.Printf("[table5 done]\n\n")
		}
		if all || want["table7"] {
			fmt.Print(experiments.FormatTable7(t7))
			fmt.Printf("[table7 done]\n\n")
		}
		fmt.Printf("[table5+7 completed in %.1fs]\n\n", time.Since(start).Seconds())
	}
	run("table6", func() error {
		res, err := experiments.Table6(cfg, models)
		if err != nil {
			return err
		}
		fmt.Print(experiments.FormatTable6(res))
		return nil
	})
	run("fig6", func() error {
		pts, err := experiments.Fig6(cfg, models)
		if err != nil {
			return err
		}
		fmt.Print(experiments.FormatSweep("Fig. 6: FOM-area tradeoff on CM-OTA1", pts, true))
		return nil
	})

	finish()
	if !ranAny {
		fmt.Fprintf(os.Stderr, "unknown experiment selection %v\n", sel)
		fmt.Fprintf(os.Stderr, "available: table1 fig2 table3 table4 fig5 ablations routed table5 table6 table7 fig6 all, plus scaling (explicit only)\n")
		os.Exit(2)
	}
}
