package main

import (
	"bytes"
	"flag"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

var update = flag.Bool("update", false, "rewrite golden files")

func runCmd(t *testing.T, args ...string) (code int, stdout, stderr string) {
	t.Helper()
	var out, errb bytes.Buffer
	code = run(args, &out, &errb)
	return code, out.String(), errb.String()
}

// TestSummaryGolden pins the human-readable summary of a committed real
// placer trace (cmd/placer -circuit Adder -method prev -seed 1 -trace ...).
// The output is a pure function of the trace file, so it is byte-stable.
func TestSummaryGolden(t *testing.T) {
	fixture := filepath.Join("testdata", "prev_adder.jsonl")
	golden := filepath.Join("testdata", "prev_adder.golden")
	code, stdout, stderr := runCmd(t, "summary", fixture)
	if code != 0 {
		t.Fatalf("summary exited %d: %s", code, stderr)
	}
	if *update {
		if err := os.WriteFile(golden, []byte(stdout), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatalf("%v (run with -update to create)", err)
	}
	if stdout != string(want) {
		t.Errorf("summary output drifted from golden.\n--- got ---\n%s--- want ---\n%s", stdout, want)
	}
}

func TestSummarySATrace(t *testing.T) {
	code, stdout, stderr := runCmd(t, "summary", filepath.Join("testdata", "sa_adder.jsonl"))
	if code != 0 {
		t.Fatalf("exit %d: %s", code, stderr)
	}
	for _, want := range []string{"sa:", "accept", "stages (self time):"} {
		if !strings.Contains(stdout, want) {
			t.Errorf("SA summary missing %q:\n%s", want, stdout)
		}
	}
}

func TestSummaryJSON(t *testing.T) {
	code, stdout, _ := runCmd(t, "summary", "-json", filepath.Join("testdata", "prev_adder.jsonl"))
	if code != 0 {
		t.Fatalf("exit %d", code)
	}
	for _, want := range []string{`"final_hpwl"`, `"curves"`, `"stages"`} {
		if !strings.Contains(stdout, want) {
			t.Errorf("JSON report missing %s", want)
		}
	}
}

func TestCheckExitCodes(t *testing.T) {
	code, stdout, _ := runCmd(t, "check",
		filepath.Join("testdata", "prev_adder.jsonl"),
		filepath.Join("testdata", "sa_adder.jsonl"))
	if code != 0 {
		t.Errorf("check on healthy traces exited %d", code)
	}
	if strings.Count(stdout, "ok  ") != 2 {
		t.Errorf("check output:\n%s", stdout)
	}

	code, _, stderr := runCmd(t, "check", filepath.Join("testdata", "malformed.jsonl"))
	if code == 0 {
		t.Error("check accepted a malformed trace")
	}
	if !strings.Contains(stderr, "malformed") {
		t.Errorf("stderr: %s", stderr)
	}

	if code, _, _ := runCmd(t, "check", filepath.Join("testdata", "no_such.jsonl")); code == 0 {
		t.Error("check accepted a missing file")
	}
}

func TestDiffExitCodes(t *testing.T) {
	base := filepath.Join("testdata", "diff_base.jsonl")
	regressed := filepath.Join("testdata", "diff_regressed.jsonl")

	// A trace diffed against itself never regresses.
	if code, _, stderr := runCmd(t, "diff", base, base); code != 0 {
		t.Errorf("self-diff exited %d: %s", code, stderr)
	}

	// The regressed trace is 10%% worse on HPWL and ~44%% slower: both
	// beyond the default tolerances.
	code, stdout, stderr := runCmd(t, "diff", base, regressed)
	if code == 0 {
		t.Errorf("regression not detected:\n%s", stdout)
	}
	if !strings.Contains(stderr, "regression") {
		t.Errorf("stderr: %s", stderr)
	}
	for _, want := range []string{"!! final_hpwl", "!! wall_ms", "!! stage_self_ms:place/gp"} {
		if !strings.Contains(stdout, want) {
			t.Errorf("diff output missing %q:\n%s", want, stdout)
		}
	}

	// Loose tolerances accept the same pair.
	if code, _, _ := runCmd(t, "diff", "-hpwl-tol", "0.5", "-time-tol", "1.0", base, regressed); code != 0 {
		t.Error("diff failed despite loose tolerances")
	}

	// JSON mode carries the same verdict.
	code, stdout, _ = runCmd(t, "diff", "-json", base, regressed)
	if code == 0 || !strings.Contains(stdout, `"regression": true`) {
		t.Errorf("JSON diff: exit %d, output:\n%s", code, stdout)
	}
}

func TestUsageOnBadInvocation(t *testing.T) {
	for _, args := range [][]string{{}, {"bogus"}, {"summary"}, {"diff", "one.jsonl"}} {
		if code, _, _ := runCmd(t, args...); code != 2 {
			t.Errorf("args %v: exit %d, want 2", args, code)
		}
	}
}
