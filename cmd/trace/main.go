// Command trace analyzes the JSONL convergence traces written by
// cmd/placer -trace, cmd/bench -trace-dir, and the placerd event stream:
// per-solver convergence summaries, per-stage time attribution, SA
// acceptance curves, structural validation, and A-vs-B regression diffs.
//
// Usage:
//
//	trace summary [-json] run.jsonl
//	trace diff [-hpwl-tol 0.02] [-time-tol 0.25] [-json] base.jsonl new.jsonl
//	trace check run.jsonl [more.jsonl ...]
//
// `diff` exits non-zero when the new trace regresses beyond the
// tolerances (final HPWL, wall time, or any stage's self time); `check`
// exits non-zero on any malformed trace. Both are CI gates.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"sort"

	"repro/internal/obs/analyze"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

func usage(stderr io.Writer) int {
	fmt.Fprintln(stderr, `usage:
  trace summary [-json] run.jsonl
  trace diff [-hpwl-tol F] [-time-tol F] [-json] base.jsonl new.jsonl
  trace check run.jsonl [more.jsonl ...]`)
	return 2
}

func run(args []string, stdout, stderr io.Writer) int {
	if len(args) == 0 {
		return usage(stderr)
	}
	switch args[0] {
	case "summary":
		return runSummary(args[1:], stdout, stderr)
	case "diff":
		return runDiff(args[1:], stdout, stderr)
	case "check":
		return runCheck(args[1:], stdout, stderr)
	default:
		return usage(stderr)
	}
}

// load reads and structurally validates one trace; analysis of a malformed
// trace would silently produce nonsense, so every subcommand goes through
// the same gate.
func load(path string, stderr io.Writer) (*analyze.Trace, bool) {
	t, err := analyze.ReadFile(path)
	if err != nil {
		fmt.Fprintf(stderr, "trace: %v\n", err)
		return nil, false
	}
	if err := t.Check(); err != nil {
		fmt.Fprintf(stderr, "trace: %s: %v\n", path, err)
		return nil, false
	}
	return t, true
}

func runSummary(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("summary", flag.ContinueOnError)
	fs.SetOutput(stderr)
	asJSON := fs.Bool("json", false, "emit the full report (including curves) as JSON")
	if fs.Parse(args) != nil || fs.NArg() != 1 {
		return usage(stderr)
	}
	t, ok := load(fs.Arg(0), stderr)
	if !ok {
		return 1
	}
	rep := analyze.Summarize(t)
	if *asJSON {
		enc := json.NewEncoder(stdout)
		enc.SetIndent("", "  ")
		enc.Encode(rep)
		return 0
	}
	printReport(stdout, rep)
	return 0
}

func printReport(w io.Writer, rep *analyze.Report) {
	fmt.Fprintf(w, "trace: %s\n", rep.Name)
	fmt.Fprintf(w, "  events %d, wall %.3f s\n", rep.Events, rep.WallMS/1e3)
	if rep.FinalHPWL > 0 {
		fmt.Fprintf(w, "  final HPWL %.6g (best %.6g)\n", rep.FinalHPWL, rep.BestHPWL)
	}
	for _, c := range rep.Curves {
		fmt.Fprintf(w, "  solver %-10s %5d iters, f %.6g -> %.6g", c.Solver, c.Iterations, c.FirstF, c.LastF)
		if c.FirstHPWL > 0 {
			fmt.Fprintf(w, ", hpwl %.6g -> %.6g (%+.1f%%)",
				c.FirstHPWL, c.LastHPWL, 100*(c.LastHPWL-c.FirstHPWL)/c.FirstHPWL)
		}
		fmt.Fprintln(w)
	}
	if rep.SA != nil {
		fmt.Fprintf(w, "  sa: %d samples over %d restart(s), accept %.2f -> %.2f, best cost %.6g\n",
			rep.SA.Samples, rep.SA.Restarts, rep.SA.FirstAccept, rep.SA.LastAccept, rep.SA.BestCost)
	}
	if rep.LPSolves > 0 {
		fmt.Fprintf(w, "  lp/ilp: %d solves, %d branch-and-bound nodes\n", rep.LPSolves, rep.ILPNodes)
	}
	if len(rep.Stages) > 0 {
		fmt.Fprintf(w, "  stages (self time):\n")
		stages := append([]analyze.Stage(nil), rep.Stages...)
		sort.Slice(stages, func(i, j int) bool { return stages[i].SelfMS > stages[j].SelfMS })
		for _, s := range stages {
			share := 0.0
			if rep.WallMS > 0 {
				share = 100 * s.SelfMS / rep.WallMS
			}
			fmt.Fprintf(w, "    %-32s %10.3f s %6.1f%%  (%d span)\n", s.Path, s.SelfMS/1e3, share, s.Count)
		}
	}
}

func runDiff(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("diff", flag.ContinueOnError)
	fs.SetOutput(stderr)
	hpwlTol := fs.Float64("hpwl-tol", 0.02, "allowed relative final-HPWL increase before failing")
	timeTol := fs.Float64("time-tol", 0.25, "allowed relative wall/stage-time increase before failing")
	asJSON := fs.Bool("json", false, "emit the diff as JSON")
	if fs.Parse(args) != nil || fs.NArg() != 2 {
		return usage(stderr)
	}
	ta, okA := load(fs.Arg(0), stderr)
	tb, okB := load(fs.Arg(1), stderr)
	if !okA || !okB {
		return 1
	}
	d := analyze.Diff(analyze.Summarize(ta), analyze.Summarize(tb),
		analyze.DiffOptions{HPWLTol: *hpwlTol, TimeTol: *timeTol})
	if *asJSON {
		enc := json.NewEncoder(stdout)
		enc.SetIndent("", "  ")
		enc.Encode(d)
	} else {
		fmt.Fprintf(stdout, "diff: %s (A) vs %s (B)\n", d.A, d.B)
		for _, dl := range d.Deltas {
			fmt.Fprintf(stdout, "%s\n", dl)
		}
	}
	if regs := d.Regressions(); len(regs) > 0 {
		fmt.Fprintf(stderr, "trace: %d regression(s) beyond tolerance\n", len(regs))
		return 1
	}
	return 0
}

func runCheck(args []string, stdout, stderr io.Writer) int {
	if len(args) == 0 {
		return usage(stderr)
	}
	bad := 0
	for _, path := range args {
		t, ok := load(path, stderr)
		if !ok {
			bad++
			continue
		}
		fmt.Fprintf(stdout, "ok  %s (%d events)\n", path, len(t.Events))
	}
	if bad > 0 {
		fmt.Fprintf(stderr, "trace: %d of %d trace(s) malformed\n", bad, len(args))
		return 1
	}
	return 0
}
