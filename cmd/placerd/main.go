// Command placerd serves analog placement over HTTP: clients POST netlist
// JSON to /v1/jobs, poll job status, stream per-iteration solver telemetry
// as NDJSON, and fetch the finished placement (byte-identical to what
// cmd/placer writes for the same netlist, method, and seed). Jobs run on a
// bounded worker pool fed by a multi-tenant fair scheduler: submissions
// carry a tenant and a priority class (interactive before batch), tenants
// within a class share the workers by inverse-circuit-size weighted fair
// queuing, and per-tenant quotas (-tenant-quota) plus the global queue
// bound (-queue) shed overload with structured 429s instead of collapsing
// under it. Completed placements are kept in a content-addressed result
// cache (-cache-bytes): determinism makes them perfectly reusable, so an
// identical resubmission returns byte-identical results without a solve.
// SIGINT/SIGTERM triggers a graceful drain: new submissions are refused,
// running jobs finish (up to -drain-timeout), and a second signal aborts
// the stragglers.
//
// Profiling: -pprof-addr starts a second HTTP listener serving only
// net/http/pprof (/debug/pprof/...). It is off by default and deliberately a
// separate listener so the profiling surface is never exposed on the public
// service port; bind it to localhost and use `go tool pprof
// http://localhost:6060/debug/pprof/profile` against a running daemon.
//
// Usage:
//
//	placerd [-addr :8080] [-workers N] [-queue N] [-job-timeout D] [-pprof-addr localhost:6060]
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"net"
	"net/http"
	"net/http/pprof"
	"os"
	"os/signal"
	"runtime"
	"syscall"
	"time"

	"repro/internal/service"
)

func main() {
	log.SetFlags(log.LstdFlags)
	log.SetPrefix("placerd: ")
	addr := flag.String("addr", ":8080", "listen address")
	workers := flag.Int("workers", runtime.NumCPU(), "solver worker pool size")
	threads := flag.Int("threads", runtime.NumCPU(), "size of the shared kernel worker pool all jobs run on (requests pinning an explicit threads count get a private pool; results are bit-identical at any count)")
	queueCap := flag.Int("queue", 64, "queued-job capacity; beyond it submissions get 429")
	tenantQuota := flag.Int("tenant-quota", 0, "max in-flight jobs (queued+running) per tenant; beyond it that tenant's submissions get 429 (0 = unlimited)")
	cacheBytes := flag.Int64("cache-bytes", 256<<20, "content-addressed result cache size in bytes, LRU-evicted (0 = caching off)")
	maxBody := flag.Int64("max-body", service.DefaultMaxBody, "request body size limit in bytes")
	jobTimeout := flag.Duration("job-timeout", 0, "default per-job deadline when the request sets none (0 = no limit)")
	drainTimeout := flag.Duration("drain-timeout", 2*time.Minute, "how long a graceful shutdown waits for running jobs")
	pprofAddr := flag.String("pprof-addr", "", "listen address for the net/http/pprof profiling endpoint (empty = disabled; bind to localhost)")
	verbose := flag.Bool("v", false, "log every job submission and completion")
	flag.Parse()

	if *pprofAddr != "" {
		pln, err := net.Listen("tcp", *pprofAddr)
		if err != nil {
			log.Fatalf("pprof listen: %v", err)
		}
		log.Printf("pprof on http://%s/debug/pprof/", pln.Addr())
		go func() {
			// An explicit mux (not DefaultServeMux) so the profiling
			// listener serves pprof and nothing else.
			mux := http.NewServeMux()
			mux.HandleFunc("/debug/pprof/", pprof.Index)
			mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
			mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
			mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
			mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
			if err := http.Serve(pln, mux); err != nil {
				log.Printf("pprof serve: %v", err)
			}
		}()
	}

	mgr := service.NewManager(service.Config{
		Workers:        *workers,
		QueueCap:       *queueCap,
		TenantQuota:    *tenantQuota,
		CacheBytes:     *cacheBytes,
		DefaultTimeout: *jobTimeout,
		Threads:        *threads,
	})
	srv := service.NewServer(mgr, *maxBody)

	httpSrv := &http.Server{Handler: logMiddleware(srv.Handler(), *verbose)}
	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		log.Fatalf("listen: %v", err)
	}
	quotaDesc := "unlimited"
	if *tenantQuota > 0 {
		quotaDesc = fmt.Sprintf("%d", *tenantQuota)
	}
	cacheDesc := "off"
	if *cacheBytes > 0 {
		cacheDesc = fmt.Sprintf("%d MiB", *cacheBytes>>20)
	}
	log.Printf("serving on %s (%d workers, queue capacity %d, tenant quota %s, result cache %s)",
		ln.Addr(), mgr.Metrics().Workers, *queueCap, quotaDesc, cacheDesc)

	serveErr := make(chan error, 1)
	go func() { serveErr <- httpSrv.Serve(ln) }()

	sig := make(chan os.Signal, 2)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)

	select {
	case err := <-serveErr:
		log.Fatalf("serve: %v", err)
	case s := <-sig:
		log.Printf("received %v; draining (running jobs finish, new submissions refused)", s)
	}

	// Drain in the background so a second signal can cut it short.
	drainCtx, cancelDrain := context.WithTimeout(context.Background(), *drainTimeout)
	defer cancelDrain()
	drained := make(chan error, 1)
	go func() { drained <- mgr.Drain(drainCtx) }()

	select {
	case err := <-drained:
		if err != nil {
			log.Printf("drain: %v; aborting remaining jobs", err)
			mgr.Abort()
		}
	case s := <-sig:
		log.Printf("received second %v; aborting remaining jobs", s)
		mgr.Abort()
		<-drained
	}

	// The manager is quiet; now close HTTP so late pollers can still fetch
	// results during the drain but the process exits promptly after it.
	shutCtx, cancelShut := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancelShut()
	if err := httpSrv.Shutdown(shutCtx); err != nil && !errors.Is(err, context.DeadlineExceeded) {
		log.Printf("http shutdown: %v", err)
	}
	met := mgr.Metrics()
	log.Printf("shut down: %d jobs completed, %d failed, %d canceled, %d rejected",
		met.JobsCompleted, met.JobsFailed, met.JobsCanceled, met.JobsRejected)
}

// logMiddleware optionally logs each request line after it is served.
func logMiddleware(next http.Handler, verbose bool) http.Handler {
	if !verbose {
		return next
	}
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		start := time.Now()
		next.ServeHTTP(w, r)
		log.Printf("%s %s (%s)", r.Method, r.URL.Path, fmtDuration(time.Since(start)))
	})
}

func fmtDuration(d time.Duration) string {
	if d < time.Second {
		return d.Round(time.Microsecond).String()
	}
	return fmt.Sprintf("%.2fs", d.Seconds())
}
