package fft

import (
	"math"
	"math/cmplx"
	"math/rand"
	"sync"
	"testing"
)

// naiveDFT is the O(N²) reference transform.
func naiveDFT(x []complex128) []complex128 {
	n := len(x)
	out := make([]complex128, n)
	for k := 0; k < n; k++ {
		for j := 0; j < n; j++ {
			ang := -2 * math.Pi * float64(k) * float64(j) / float64(n)
			out[k] += x[j] * cmplx.Exp(complex(0, ang))
		}
	}
	return out
}

func TestFFTMatchesNaiveDFT(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for _, n := range []int{1, 2, 4, 8, 32, 128} {
		x := make([]complex128, n)
		for i := range x {
			x[i] = complex(rng.NormFloat64(), rng.NormFloat64())
		}
		want := naiveDFT(x)
		got := append([]complex128(nil), x...)
		FFT(got)
		for k := range got {
			if cmplx.Abs(got[k]-want[k]) > 1e-9*(1+cmplx.Abs(want[k])) {
				t.Fatalf("n=%d: FFT[%d] = %v, want %v", n, k, got[k], want[k])
			}
		}
	}
}

func TestIFFTInvertsFFT(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	for _, n := range []int{2, 16, 64} {
		x := make([]complex128, n)
		for i := range x {
			x[i] = complex(rng.NormFloat64(), rng.NormFloat64())
		}
		y := append([]complex128(nil), x...)
		FFT(y)
		IFFT(y)
		for i := range x {
			if cmplx.Abs(y[i]-x[i]) > 1e-10 {
				t.Fatalf("n=%d: roundtrip[%d] = %v, want %v", n, i, y[i], x[i])
			}
		}
	}
}

func TestFFTPanicsOnBadLength(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("FFT accepted non-power-of-two length")
		}
	}()
	FFT(make([]complex128, 3))
}

func TestNewPlanPanicsOnBadLength(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("NewPlan accepted non-power-of-two length")
		}
	}()
	NewPlan(6)
}

// naiveDCT2 is the O(N²) reference for the unnormalized DCT-II.
func naiveDCT2(x []float64) []float64 {
	n := len(x)
	out := make([]float64, n)
	for k := 0; k < n; k++ {
		for j := 0; j < n; j++ {
			out[k] += x[j] * math.Cos(math.Pi*float64(k)*(2*float64(j)+1)/(2*float64(n)))
		}
	}
	return out
}

func TestDCT2MatchesNaive(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	for _, n := range []int{2, 4, 16, 64} {
		p := NewPlan(n)
		x := make([]float64, n)
		for i := range x {
			x[i] = rng.NormFloat64()
		}
		want := naiveDCT2(x)
		got := make([]float64, n)
		p.DCT2(x, got)
		for k := range got {
			if math.Abs(got[k]-want[k]) > 1e-9*(1+math.Abs(want[k])) {
				t.Fatalf("n=%d: DCT2[%d] = %g, want %g", n, k, got[k], want[k])
			}
		}
	}
}

func TestDCT2InPlace(t *testing.T) {
	p := NewPlan(8)
	x := []float64{1, 2, 3, 4, 5, 6, 7, 8}
	want := naiveDCT2(x)
	p.DCT2(x, x)
	for k := range x {
		if math.Abs(x[k]-want[k]) > 1e-9 {
			t.Fatalf("in-place DCT2[%d] = %g, want %g", k, x[k], want[k])
		}
	}
}

// TestDCT2InvCosRoundtrip checks the DCT-II / cosine-series inverse pair:
// with a[0] scaled by 1/2 and the whole spectrum by 2/N, InvCos recovers x.
func TestDCT2InvCosRoundtrip(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	for _, n := range []int{2, 8, 32} {
		p := NewPlan(n)
		x := make([]float64, n)
		for i := range x {
			x[i] = rng.NormFloat64()
		}
		a := make([]float64, n)
		p.DCT2(x, a)
		for k := range a {
			a[k] *= 2 / float64(n)
		}
		a[0] /= 2
		got := make([]float64, n)
		p.InvCos(a, got)
		for i := range x {
			if math.Abs(got[i]-x[i]) > 1e-9 {
				t.Fatalf("n=%d: roundtrip[%d] = %g, want %g", n, i, got[i], x[i])
			}
		}
	}
}

func TestInvSinMatchesNaive(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	n := 16
	p := NewPlan(n)
	a := make([]float64, n)
	for i := range a {
		a[i] = rng.NormFloat64()
	}
	got := make([]float64, n)
	p.InvSin(a, got)
	for j := 0; j < n; j++ {
		var want float64
		for k := 0; k < n; k++ {
			want += a[k] * math.Sin(math.Pi*float64(k)*(2*float64(j)+1)/(2*float64(n)))
		}
		if math.Abs(got[j]-want) > 1e-9*(1+math.Abs(want)) {
			t.Fatalf("InvSin[%d] = %g, want %g", j, got[j], want)
		}
	}
}

// TestInvSinDerivativeConsistency: the sine series is the (negated, scaled)
// derivative of the cosine series — the relationship the field computation
// relies on. d/dt cos(k·t) = -k·sin(k·t), so for a single harmonic the sine
// reconstruction equals -(1/k)·d/dt of the cosine reconstruction.
func TestInvSinDerivativeConsistency(t *testing.T) {
	n := 32
	p := NewPlan(n)
	for _, k := range []int{1, 3, 7} {
		a := make([]float64, n)
		a[k] = 1
		cosv := make([]float64, n)
		sinv := make([]float64, n)
		p.InvCos(a, cosv)
		p.InvSin(a, sinv)
		// cos(w(2j+1)) with w = πk/(2n) has the exact central-difference
		// identity (cos(w(2j+3)) - cos(w(2j-1)))/2 = -sin(w(2j+1))·sin(2w),
		// tying the sine reconstruction to the cosine one.
		w := math.Pi * float64(k) / (2 * float64(n))
		for j := 1; j < n-1; j++ {
			d := (cosv[j+1] - cosv[j-1]) / 2
			want := -sinv[j] * math.Sin(2*w)
			if math.Abs(d-want) > 1e-12 {
				t.Fatalf("k=%d j=%d: FD %g vs -sin(ws)·sin(2w) %g", k, j, d, want)
			}
		}
	}
}

// TestInverseMatchesMatVec validates the fast O(N log N) inverse
// reconstructions against the dense O(N²) matVec reference (the
// implementation they replaced) across every production-relevant size.
// 1e-12 is the acceptance bound; the FFT path typically lands near 1e-14.
func TestInverseMatchesMatVec(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	for n := 8; n <= 1024; n *= 2 {
		p := NewPlan(n)
		a := make([]float64, n)
		for i := range a {
			a[i] = rng.NormFloat64()
		}
		fast := make([]float64, n)
		ref := make([]float64, n)
		p.DCT2(a, fast)
		p.DCT2MatVec(a, ref)
		for k := range fast {
			if math.Abs(fast[k]-ref[k]) > 1e-12*(1+math.Abs(ref[k])) {
				t.Fatalf("n=%d: DCT2[%d] = %.17g, matVec %.17g", n, k, fast[k], ref[k])
			}
		}
		p.InvCos(a, fast)
		p.InvCosMatVec(a, ref)
		for j := range fast {
			if math.Abs(fast[j]-ref[j]) > 1e-12*(1+math.Abs(ref[j])) {
				t.Fatalf("n=%d: InvCos[%d] = %.17g, matVec %.17g", n, j, fast[j], ref[j])
			}
		}
		p.InvSin(a, fast)
		p.InvSinMatVec(a, ref)
		for j := range fast {
			if math.Abs(fast[j]-ref[j]) > 1e-12*(1+math.Abs(ref[j])) {
				t.Fatalf("n=%d: InvSin[%d] = %.17g, matVec %.17g", n, j, fast[j], ref[j])
			}
		}
	}
}

// TestTransformsConcurrent exercises one shared Plan from many goroutines,
// each with its own Scratch, and checks every result matches the
// single-threaded evaluation (run under -race this also proves the *To
// methods share no hidden mutable state).
func TestTransformsConcurrent(t *testing.T) {
	const n, workers = 64, 8
	p := NewPlan(n)
	inputs := make([][]float64, workers)
	want := make([][]float64, workers)
	rng := rand.New(rand.NewSource(7))
	for w := range inputs {
		inputs[w] = make([]float64, n)
		for i := range inputs[w] {
			inputs[w][i] = rng.NormFloat64()
		}
		want[w] = make([]float64, n)
		p.InvSin(inputs[w], want[w])
	}
	got := make([][]float64, workers)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			s := p.NewScratch()
			out := make([]float64, n)
			for rep := 0; rep < 50; rep++ {
				p.InvSinTo(inputs[w], out, s)
			}
			got[w] = out
		}(w)
	}
	wg.Wait()
	for w := range got {
		for j := range got[w] {
			if got[w][j] != want[w][j] {
				t.Fatalf("worker %d: concurrent InvSin[%d] = %g, want %g", w, j, got[w][j], want[w][j])
			}
		}
	}
}

func TestPlanN(t *testing.T) {
	if got := NewPlan(16).N(); got != 16 {
		t.Errorf("N = %d", got)
	}
}

func BenchmarkFFT1024(b *testing.B) {
	x := make([]complex128, 1024)
	rng := rand.New(rand.NewSource(1))
	for i := range x {
		x[i] = complex(rng.NormFloat64(), 0)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		FFT(x)
	}
}

func BenchmarkDCT2_64(b *testing.B) {
	p := NewPlan(64)
	x := make([]float64, 64)
	for i := range x {
		x[i] = float64(i)
	}
	out := make([]float64, 64)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		p.DCT2(x, out)
	}
}
