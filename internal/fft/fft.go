// Package fft provides the spectral transforms behind ePlace-style
// electrostatic placement: an iterative radix-2 complex FFT, an FFT-based
// forward DCT-II, and the inverse cosine/sine reconstructions used to
// evaluate the electrostatic potential ψ and field ξ from frequency-domain
// Poisson coefficients. Every trig transform is O(N log N): the forward
// DCT-II uses the Makhoul even-odd permutation and one length-N FFT, the
// inverse cosine series inverts that recombination with one length-N IFFT,
// and the sine series reduces to the cosine series by index reversal
// (see the derivation on InvCosTo/InvSinTo). The dense O(N²) matVec path
// the package used to ship survives as the *MatVec reference methods,
// which validation tests and micro-benchmarks diff the fast path against.
package fft

import (
	"fmt"
	"math"
	"math/bits"
	"math/cmplx"
	"sync"
)

// FFT computes the in-place forward discrete Fourier transform
// X[k] = Σ_n x[n]·e^{-2πi·kn/N}. len(x) must be a power of two.
//
// Like the Plan transforms, FFT reads exact precomputed twiddles (cached
// per size) instead of the classic w *= wBase recurrence, whose O(N·ε)
// drift was visible at N = 1024; the convenience path and the plan path
// now run the identical fftTab kernel and produce identical bits.
func FFT(x []complex128) {
	if len(x) == 0 {
		return
	}
	fftTab(x, convTables(len(x)).fwd)
}

// IFFT computes the in-place inverse DFT (including the 1/N scale), the
// exact inverse of FFT. len(x) must be a power of two.
func IFFT(x []complex128) {
	if len(x) == 0 {
		return
	}
	fftTab(x, convTables(len(x)).inv)
	n := complex(float64(len(x)), 0)
	for i := range x {
		x[i] /= n
	}
}

// convTab holds the per-size twiddle tables backing the plan-less FFT/IFFT
// convenience functions. Tables are built once per size and cached forever
// (sizes are small powers of two, so the cache stays tiny).
type convTab struct {
	fwd, inv []complex128
}

var convCache sync.Map // int -> *convTab

func convTables(n int) *convTab {
	if n&(n-1) != 0 {
		panic(fmt.Sprintf("fft: length %d is not a power of two", n))
	}
	if t, ok := convCache.Load(n); ok {
		return t.(*convTab)
	}
	t := &convTab{
		fwd: make([]complex128, n/2),
		inv: make([]complex128, n/2),
	}
	for k := 0; k < n/2; k++ {
		arg := 2 * math.Pi * float64(k) / float64(n)
		t.fwd[k] = cmplx.Exp(complex(0, -arg))
		t.inv[k] = cmplx.Exp(complex(0, arg))
	}
	actual, _ := convCache.LoadOrStore(n, t)
	return actual.(*convTab)
}

// Plan holds precomputed twiddle factors for 1-D trig transforms of a fixed
// size N (a power of two). A Plan is immutable after construction and safe
// to share between goroutines through the *To methods, each caller passing
// its own Scratch; the scratch-less convenience methods (DCT2, InvCos,
// InvSin) reuse one plan-owned Scratch and are therefore not safe for
// concurrent use.
type Plan struct {
	n         int
	twiddle   []complex128 // e^{-iπk/(2N)}, k = 0..N-1 (forward)
	untwiddle []complex128 // e^{+iπk/(2N)}, k = 0..N-1 (inverse)
	fwdTab    []complex128 // e^{-2πik/N}, k = 0..N/2-1: exact FFT twiddles
	invTab    []complex128 // e^{+2πik/N}, k = 0..N/2-1
	own       *Scratch     // scratch for the non-concurrent methods

	// Dense O(N²) reference tables, built lazily by the *MatVec methods
	// only: the production transforms never touch them.
	refOnce sync.Once
	cosTab  []float64 // cos(πk(2n+1)/(2N)) at [k*N+n]
	sinTab  []float64 // sin(πk(2n+1)/(2N)) at [k*N+n]
}

// Scratch is the per-goroutine workspace of a Plan's transforms. Distinct
// goroutines sharing one Plan must use distinct Scratches.
type Scratch struct {
	cbuf []complex128 // FFT staging buffer
}

// NewPlan builds a plan for transforms of length n (power of two).
func NewPlan(n int) *Plan {
	if n <= 0 || n&(n-1) != 0 {
		panic(fmt.Sprintf("fft: plan size %d is not a positive power of two", n))
	}
	p := &Plan{
		n:         n,
		twiddle:   make([]complex128, n),
		untwiddle: make([]complex128, n),
		fwdTab:    make([]complex128, n/2),
		invTab:    make([]complex128, n/2),
	}
	for k := 0; k < n; k++ {
		arg := math.Pi * float64(k) / (2 * float64(n))
		p.twiddle[k] = cmplx.Exp(complex(0, -arg))
		p.untwiddle[k] = cmplx.Exp(complex(0, arg))
	}
	for k := 0; k < n/2; k++ {
		arg := 2 * math.Pi * float64(k) / float64(n)
		p.fwdTab[k] = cmplx.Exp(complex(0, -arg))
		p.invTab[k] = cmplx.Exp(complex(0, arg))
	}
	p.own = p.NewScratch()
	return p
}

// fftTab is the radix-2 transform driven by a precomputed twiddle table
// (a plan's fwdTab/invTab, or the cached convenience tables). Exact
// per-stage twiddle lookups avoid the O(N·ε) drift of the classic
// w *= wBase recurrence, keeping the trig transforms within ~1e-14 of the
// dense reference, and run faster than regenerating twiddles besides.
// len(x) must be a power of two and len(tab) == len(x)/2. No scaling is
// applied.
func fftTab(x []complex128, tab []complex128) {
	n := len(x)
	shift := 64 - uint(bits.TrailingZeros(uint(n)))
	for i := 0; i < n; i++ {
		j := int(bits.Reverse64(uint64(i)) >> shift)
		if j > i {
			x[i], x[j] = x[j], x[i]
		}
	}
	for size := 2; size <= n; size <<= 1 {
		half := size >> 1
		stride := n / size
		for start := 0; start < n; start += size {
			// k = 0 has w = 1 exactly: skipping the multiply saves ~n
			// complex products per transform without changing a bit
			// (z·(1+0i) is exact).
			a, b := x[start], x[start+half]
			x[start], x[start+half] = a+b, a-b
			for k, ti := 1, stride; k < half; k, ti = k+1, ti+stride {
				w := tab[ti]
				a := x[start+k]
				b := x[start+k+half] * w
				x[start+k] = a + b
				x[start+k+half] = a - b
			}
		}
	}
}

// NewScratch allocates a workspace sized for this plan.
func (p *Plan) NewScratch() *Scratch {
	return &Scratch{
		cbuf: make([]complex128, p.n),
	}
}

// N returns the plan's transform length.
func (p *Plan) N() int { return p.n }

// DCT2 computes the unnormalized DCT-II
//
//	out[k] = Σ_{n} x[n]·cos(πk(2n+1)/(2N))
//
// using the Makhoul even-odd permutation and a single length-N FFT.
// x and out may alias. Not safe for concurrent use; see DCT2To.
func (p *Plan) DCT2(x, out []float64) { p.DCT2To(x, out, p.own) }

// InvCos evaluates the cosine series
//
//	out[j] = Σ_{k=0}^{N-1} a[k]·cos(πk(2j+1)/(2N))
//
// (the caller folds any α_k normalization into a). a and out may not alias.
// Not safe for concurrent use; see InvCosTo.
func (p *Plan) InvCos(a, out []float64) { p.InvCosTo(a, out, p.own) }

// InvSin evaluates the sine series
//
//	out[j] = Σ_{k=0}^{N-1} a[k]·sin(πk(2j+1)/(2N))
//
// (the k = 0 term is identically zero). a and out may not alias.
// Not safe for concurrent use; see InvSinTo.
func (p *Plan) InvSin(a, out []float64) { p.InvSinTo(a, out, p.own) }

// DCT2To is DCT2 with caller-supplied scratch, safe for concurrent use with
// a scratch per goroutine.
func (p *Plan) DCT2To(x, out []float64, s *Scratch) {
	n := p.n
	if len(x) != n || len(out) != n {
		panic("fft: DCT2 size mismatch")
	}
	half := n / 2
	for i := 0; i < half; i++ {
		s.cbuf[i] = complex(x[2*i], 0)
		s.cbuf[n-1-i] = complex(x[2*i+1], 0)
	}
	if n == 1 {
		s.cbuf[0] = complex(x[0], 0)
	}
	fftTab(s.cbuf, p.fwdTab)
	for k := 0; k < n; k++ {
		out[k] = real(p.twiddle[k] * s.cbuf[k])
	}
}

// InvCosTo is InvCos with caller-supplied scratch, safe for concurrent use
// with a scratch per goroutine.
//
// Derivation (the Makhoul recombination run backwards): DCT2To computes
// C[k] = Re(e^{-iπk/(2N)}·V[k]) with V the FFT of the even-odd permuted
// input v. For real v, V has Hermitian symmetry, which pins the imaginary
// part too: Im(e^{-iπk/(2N)}·V[k]) = -C[N-k] (with C[N] ≡ 0). The desired
// series out[j] = Σ a[k]·cos(πk(2j+1)/(2N)) is the exact inverse of the
// unnormalized DCT-II of the coefficients b[0] = N·a[0], b[k] = N/2·a[k],
// so the spectrum is recovered as V[k] = e^{+iπk/(2N)}·(b[k] − i·b[N−k]),
// one IFFT yields v, and undoing the even-odd permutation yields out —
// O(N log N) against the O(N²) dense evaluation of InvCosMatVec.
func (p *Plan) InvCosTo(a, out []float64, s *Scratch) {
	n := p.n
	if len(a) != n || len(out) != n {
		panic("fft: transform size mismatch")
	}
	if n == 1 {
		out[0] = a[0]
		return
	}
	s.cbuf[0] = complex(a[0], 0)
	for k := 1; k < n; k++ {
		s.cbuf[k] = p.untwiddle[k] * complex(a[k]/2, -a[n-k]/2)
	}
	fftTab(s.cbuf, p.invTab)
	for i := 0; i < n/2; i++ {
		out[2*i] = real(s.cbuf[i])
		out[2*i+1] = real(s.cbuf[n-1-i])
	}
}

// InvSinTo is InvSin with caller-supplied scratch, safe for concurrent use
// with a scratch per goroutine.
//
// The sine series reduces to the cosine series through the identity
// sin(πk(2j+1)/(2N)) = (−1)^j·cos(π(N−k)(2j+1)/(2N)): running InvCosTo on
// the index-reversed coefficients (ã[m] = a[N−m], ã[0] = 0 — the k = 0
// term vanishes) and alternating the output sign yields the sine
// reconstruction at the same O(N log N) cost. The reversal is folded
// directly into the spectrum construction (ã[k] = a[n−k], ã[n−k] = a[k]),
// so no coefficient staging buffer is needed — the float operations are
// bit-identical to materializing ã and calling InvCosTo.
func (p *Plan) InvSinTo(a, out []float64, s *Scratch) {
	n := p.n
	if len(a) != n || len(out) != n {
		panic("fft: transform size mismatch")
	}
	if n == 1 {
		out[0] = 0
		return
	}
	s.cbuf[0] = 0
	for k := 1; k < n; k++ {
		s.cbuf[k] = p.untwiddle[k] * complex(a[n-k]/2, -a[k]/2)
	}
	fftTab(s.cbuf, p.invTab)
	for i := 0; i < n/2; i++ {
		out[2*i] = real(s.cbuf[i])
		out[2*i+1] = -real(s.cbuf[n-1-i])
	}
}

// DCT2PairTo computes the unnormalized DCT-II of two independent real
// lines with a single complex FFT: the classic two-for-one Hermitian
// packing z = v₀ + i·v₁ (each line even-odd permuted as in DCT2To). The
// FFT of a real line has Hermitian symmetry, so the two interleaved
// spectra separate exactly as V₀[k] = (Z[k] + conj(Z[N−k]))/2 and
// V₁[k] = (Z[k] − conj(Z[N−k]))/(2i), after which each line gets the
// usual quarter-wave post-twiddle. Halves the FFT work of the row/column
// passes in the spectral Poisson solve. xi and outi may alias pairwise.
// Safe for concurrent use with a scratch per goroutine.
func (p *Plan) DCT2PairTo(x0, x1, out0, out1 []float64, s *Scratch) {
	n := p.n
	if len(x0) != n || len(x1) != n || len(out0) != n || len(out1) != n {
		panic("fft: transform size mismatch")
	}
	if n == 1 {
		out0[0], out1[0] = x0[0], x1[0]
		return
	}
	for i := 0; i < n/2; i++ {
		s.cbuf[i] = complex(x0[2*i], x1[2*i])
		s.cbuf[n-1-i] = complex(x0[2*i+1], x1[2*i+1])
	}
	fftTab(s.cbuf, p.fwdTab)
	out0[0] = real(s.cbuf[0])
	out1[0] = imag(s.cbuf[0])
	for k := 1; k < n; k++ {
		zk, zn := s.cbuf[k], s.cbuf[n-k]
		v0r := (real(zk) + real(zn)) / 2
		v0i := (imag(zk) - imag(zn)) / 2
		v1r := (imag(zk) + imag(zn)) / 2
		v1i := (real(zn) - real(zk)) / 2
		twr, twi := real(p.twiddle[k]), imag(p.twiddle[k])
		out0[k] = twr*v0r - twi*v0i
		out1[k] = twr*v1r - twi*v1i
	}
}

// InvCosPairTo evaluates the cosine series of two independent coefficient
// lines with a single complex FFT. Each line's spectrum V[k] (see
// InvCosTo) is Hermitian — its inverse FFT is real — so both pack into
// one complex spectrum Z = V₀ + i·V₁; after one inverse FFT the real part
// carries line 0 and the imaginary part line 1, each undoing the even-odd
// permutation. ai and outi may alias pairwise. Safe for concurrent use
// with a scratch per goroutine.
func (p *Plan) InvCosPairTo(a0, a1, out0, out1 []float64, s *Scratch) {
	n := p.n
	if len(a0) != n || len(a1) != n || len(out0) != n || len(out1) != n {
		panic("fft: transform size mismatch")
	}
	if n == 1 {
		out0[0], out1[0] = a0[0], a1[0]
		return
	}
	s.cbuf[0] = complex(a0[0], a1[0])
	for k := 1; k < n; k++ {
		// V₀[k] + i·V₁[k] with Vj[k] = untwiddle[k]·(aj[k] − i·aj[n−k])/2.
		s.cbuf[k] = p.untwiddle[k] * complex((a0[k]+a1[n-k])/2, (a1[k]-a0[n-k])/2)
	}
	fftTab(s.cbuf, p.invTab)
	for i := 0; i < n/2; i++ {
		zi, zo := s.cbuf[i], s.cbuf[n-1-i]
		out0[2*i] = real(zi)
		out0[2*i+1] = real(zo)
		out1[2*i] = imag(zi)
		out1[2*i+1] = imag(zo)
	}
}

// InvSinPairTo evaluates the sine series of two independent coefficient
// lines with a single complex FFT: InvCosPairTo on the index-reversed
// coefficients of both lines (folded into the spectrum construction, as
// in InvSinTo) with the odd-output sign flip applied to both unpacked
// lines. ai and outi may alias pairwise. Safe for concurrent use with a
// scratch per goroutine.
func (p *Plan) InvSinPairTo(a0, a1, out0, out1 []float64, s *Scratch) {
	n := p.n
	if len(a0) != n || len(a1) != n || len(out0) != n || len(out1) != n {
		panic("fft: transform size mismatch")
	}
	if n == 1 {
		out0[0], out1[0] = 0, 0
		return
	}
	s.cbuf[0] = 0
	for k := 1; k < n; k++ {
		s.cbuf[k] = p.untwiddle[k] * complex((a0[n-k]+a1[k])/2, (a1[n-k]-a0[k])/2)
	}
	fftTab(s.cbuf, p.invTab)
	for i := 0; i < n/2; i++ {
		zi, zo := s.cbuf[i], s.cbuf[n-1-i]
		out0[2*i] = real(zi)
		out0[2*i+1] = -real(zo)
		out1[2*i] = imag(zi)
		out1[2*i+1] = -imag(zo)
	}
}

// transposeTile is the edge of the square blocks the tiled transpose
// moves at a time: 32×32 float64 tiles (8 KiB working set for the two
// faces) keep both the row-major reads and the column-major writes inside
// L1 instead of striding the full matrix.
const transposeTile = 32

// TransposeBand writes the transpose of rows [lo, hi) of the n×n
// row-major matrix src into dst (dst[j*n+i] = src[i*n+j] for i in
// [lo, hi), all j). Cache-blocked in transposeTile×transposeTile tiles so
// neither side of the copy strides the whole matrix. dst and src must not
// overlap. Bands write disjoint dst columns, so callers may shard bands
// across workers; the result is a pure element move, identical under any
// sharding.
func TransposeBand(dst, src []float64, n, lo, hi int) {
	for i0 := lo; i0 < hi; i0 += transposeTile {
		i1 := i0 + transposeTile
		if i1 > hi {
			i1 = hi
		}
		for j0 := 0; j0 < n; j0 += transposeTile {
			j1 := j0 + transposeTile
			if j1 > n {
				j1 = n
			}
			for i := i0; i < i1; i++ {
				row := src[i*n : i*n+n]
				for j := j0; j < j1; j++ {
					dst[j*n+i] = row[j]
				}
			}
		}
	}
}

// Transpose writes the transpose of the n×n row-major matrix src into
// dst. dst and src must not overlap; see TransposeBand.
func Transpose(dst, src []float64, n int) {
	TransposeBand(dst, src, n, 0, n)
}

// refTables lazily builds the dense cosine/sine basis tables backing the
// *MatVec reference methods. Production code never calls this; only the
// validation tests and micro-benchmarks pay the O(N²) memory.
func (p *Plan) refTables() ([]float64, []float64) {
	p.refOnce.Do(func() {
		n := p.n
		p.cosTab = make([]float64, n*n)
		p.sinTab = make([]float64, n*n)
		for k := 0; k < n; k++ {
			for j := 0; j < n; j++ {
				// Reduce the angle index k(2j+1) mod 4N in exact integer
				// arithmetic before converting to radians: the basis has
				// period 4N in that index, and keeping the float64 argument
				// below 2π avoids the ~ε·|arg| trig-argument rounding that a
				// direct πk(2j+1)/(2N) evaluation accumulates at large N.
				m := (k * (2*j + 1)) % (4 * n)
				arg := math.Pi * float64(m) / (2 * float64(n))
				p.cosTab[k*n+j] = math.Cos(arg)
				p.sinTab[k*n+j] = math.Sin(arg)
			}
		}
	})
	return p.cosTab, p.sinTab
}

// InvCosMatVec is the dense O(N²) reference evaluation of InvCos, the
// implementation the fast path replaced. It exists to validate and
// benchmark InvCosTo and is safe for concurrent use after the first call.
func (p *Plan) InvCosMatVec(a, out []float64) {
	cosTab, _ := p.refTables()
	p.matVec(cosTab, a, out)
}

// InvSinMatVec is the dense O(N²) reference evaluation of InvSin; see
// InvCosMatVec.
func (p *Plan) InvSinMatVec(a, out []float64) {
	_, sinTab := p.refTables()
	p.matVec(sinTab, a, out)
}

// DCT2MatVec is the dense O(N²) reference evaluation of DCT2: the forward
// transform shares the cosine basis with InvCos, with the roles of k and j
// swapped (out[k] = Σ_j x[j]·cos(πk(2j+1)/(2N))). x and out must not
// alias. See InvCosMatVec for why this exists.
func (p *Plan) DCT2MatVec(x, out []float64) {
	cosTab, _ := p.refTables()
	n := p.n
	if len(x) != n || len(out) != n {
		panic("fft: transform size mismatch")
	}
	for k := 0; k < n; k++ {
		row := cosTab[k*n : (k+1)*n]
		var sum float64
		for j := 0; j < n; j++ {
			sum += x[j] * row[j]
		}
		out[k] = sum
	}
}

// matVec computes out[j] = Σ_k a[k]·tab[k*N+j].
func (p *Plan) matVec(tab, a, out []float64) {
	n := p.n
	if len(a) != n || len(out) != n {
		panic("fft: transform size mismatch")
	}
	for j := 0; j < n; j++ {
		out[j] = 0
	}
	for k := 0; k < n; k++ {
		ak := a[k]
		if ak == 0 {
			continue
		}
		row := tab[k*n : (k+1)*n]
		for j := 0; j < n; j++ {
			out[j] += ak * row[j]
		}
	}
}
