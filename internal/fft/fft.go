// Package fft provides the spectral transforms behind ePlace-style
// electrostatic placement: an iterative radix-2 complex FFT, an FFT-based
// forward DCT-II, and the inverse cosine/sine reconstructions used to
// evaluate the electrostatic potential ψ and field ξ from frequency-domain
// Poisson coefficients.
package fft

import (
	"fmt"
	"math"
	"math/bits"
	"math/cmplx"
)

// FFT computes the in-place forward discrete Fourier transform
// X[k] = Σ_n x[n]·e^{-2πi·kn/N}. len(x) must be a power of two.
func FFT(x []complex128) {
	fftRadix2(x, false)
}

// IFFT computes the in-place inverse DFT (including the 1/N scale), the
// exact inverse of FFT. len(x) must be a power of two.
func IFFT(x []complex128) {
	fftRadix2(x, true)
	n := complex(float64(len(x)), 0)
	for i := range x {
		x[i] /= n
	}
}

func fftRadix2(x []complex128, inverse bool) {
	n := len(x)
	if n == 0 {
		return
	}
	if n&(n-1) != 0 {
		panic(fmt.Sprintf("fft: length %d is not a power of two", n))
	}
	// Bit-reversal permutation.
	shift := 64 - uint(bits.TrailingZeros(uint(n)))
	for i := 0; i < n; i++ {
		j := int(bits.Reverse64(uint64(i)) >> shift)
		if j > i {
			x[i], x[j] = x[j], x[i]
		}
	}
	sign := -1.0
	if inverse {
		sign = 1.0
	}
	for size := 2; size <= n; size <<= 1 {
		half := size >> 1
		step := sign * 2 * math.Pi / float64(size)
		wBase := cmplx.Exp(complex(0, step))
		for start := 0; start < n; start += size {
			w := complex(1, 0)
			for k := 0; k < half; k++ {
				a := x[start+k]
				b := x[start+k+half] * w
				x[start+k] = a + b
				x[start+k+half] = a - b
				w *= wBase
			}
		}
	}
}

// Plan holds precomputed twiddle factors and basis tables for 1-D trig
// transforms of a fixed size N (a power of two). Plans are cheap to reuse
// and not safe for concurrent use.
type Plan struct {
	n       int
	scratch []complex128
	twiddle []complex128 // e^{-iπk/(2N)}, k = 0..N-1
	cosTab  []float64    // cos(πk(2n+1)/(2N)) at [k*N+n]
	sinTab  []float64    // sin(πk(2n+1)/(2N)) at [k*N+n]
}

// NewPlan builds a plan for transforms of length n (power of two).
func NewPlan(n int) *Plan {
	if n <= 0 || n&(n-1) != 0 {
		panic(fmt.Sprintf("fft: plan size %d is not a positive power of two", n))
	}
	p := &Plan{
		n:       n,
		scratch: make([]complex128, n),
		twiddle: make([]complex128, n),
		cosTab:  make([]float64, n*n),
		sinTab:  make([]float64, n*n),
	}
	for k := 0; k < n; k++ {
		p.twiddle[k] = cmplx.Exp(complex(0, -math.Pi*float64(k)/(2*float64(n))))
		for j := 0; j < n; j++ {
			arg := math.Pi * float64(k) * (2*float64(j) + 1) / (2 * float64(n))
			p.cosTab[k*n+j] = math.Cos(arg)
			p.sinTab[k*n+j] = math.Sin(arg)
		}
	}
	return p
}

// N returns the plan's transform length.
func (p *Plan) N() int { return p.n }

// DCT2 computes the unnormalized DCT-II
//
//	out[k] = Σ_{n} x[n]·cos(πk(2n+1)/(2N))
//
// using the Makhoul even-odd permutation and a single length-N FFT.
// x and out may alias.
func (p *Plan) DCT2(x, out []float64) {
	n := p.n
	if len(x) != n || len(out) != n {
		panic("fft: DCT2 size mismatch")
	}
	half := n / 2
	for i := 0; i < half; i++ {
		p.scratch[i] = complex(x[2*i], 0)
		p.scratch[n-1-i] = complex(x[2*i+1], 0)
	}
	if n == 1 {
		p.scratch[0] = complex(x[0], 0)
	}
	FFT(p.scratch)
	for k := 0; k < n; k++ {
		out[k] = real(p.twiddle[k] * p.scratch[k])
	}
}

// InvCos evaluates the cosine series
//
//	out[j] = Σ_{k=0}^{N-1} a[k]·cos(πk(2j+1)/(2N))
//
// (the caller folds any α_k normalization into a). x and out may not alias.
func (p *Plan) InvCos(a, out []float64) {
	p.matVec(p.cosTab, a, out)
}

// InvSin evaluates the sine series
//
//	out[j] = Σ_{k=0}^{N-1} a[k]·sin(πk(2j+1)/(2N))
//
// (the k = 0 term is identically zero). x and out may not alias.
func (p *Plan) InvSin(a, out []float64) {
	p.matVec(p.sinTab, a, out)
}

// matVec computes out[j] = Σ_k a[k]·tab[k*N+j].
func (p *Plan) matVec(tab, a, out []float64) {
	n := p.n
	if len(a) != n || len(out) != n {
		panic("fft: transform size mismatch")
	}
	for j := 0; j < n; j++ {
		out[j] = 0
	}
	for k := 0; k < n; k++ {
		ak := a[k]
		if ak == 0 {
			continue
		}
		row := tab[k*n : (k+1)*n]
		for j := 0; j < n; j++ {
			out[j] += ak * row[j]
		}
	}
}
