//go:build perfsmoke

package fft

import (
	"math/rand"
	"testing"
	"time"
)

// timeTransform returns the best-of-reps wall time of reps calls to f.
// Best-of (not mean) is the standard noise filter for smoke timing on
// shared CI runners: scheduling hiccups only ever make a run slower.
func timeTransform(reps int, f func()) time.Duration {
	best := time.Duration(1<<63 - 1)
	for r := 0; r < reps; r++ {
		t0 := time.Now()
		f()
		if d := time.Since(t0); d < best {
			best = d
		}
	}
	return best
}

// TestPerfSmokeFastBeatsMatVec asserts the O(N log N) fast transforms
// beat the dense O(N²) MatVec references at N = 512 — the guard that the
// packed spectral pipeline's building blocks can never silently regress
// to reference speed. At N = 512 the fast path wins by ~50× on idle
// hardware, so the 2× margin demanded here leaves ample headroom for CI
// noise while still catching any real inversion.
func TestPerfSmokeFastBeatsMatVec(t *testing.T) {
	const n, reps, inner = 512, 5, 20
	p := NewPlan(n)
	s := p.NewScratch()
	rng := rand.New(rand.NewSource(21))
	a := make([]float64, n)
	for i := range a {
		a[i] = rng.NormFloat64()
	}
	out := make([]float64, n)
	p.DCT2MatVec(a, out) // build the dense tables outside the timed region
	for _, tc := range []struct {
		name string
		fast func()
		ref  func()
	}{
		{"DCT2", func() { p.DCT2To(a, out, s) }, func() { p.DCT2MatVec(a, out) }},
		{"InvCos", func() { p.InvCosTo(a, out, s) }, func() { p.InvCosMatVec(a, out) }},
		{"InvSin", func() { p.InvSinTo(a, out, s) }, func() { p.InvSinMatVec(a, out) }},
	} {
		fast := timeTransform(reps, func() {
			for i := 0; i < inner; i++ {
				tc.fast()
			}
		})
		ref := timeTransform(reps, func() {
			for i := 0; i < inner; i++ {
				tc.ref()
			}
		})
		t.Logf("%s n=%d: fast %v, matVec %v (%.1fx)", tc.name, n, fast, ref, float64(ref)/float64(fast))
		if fast*2 > ref {
			t.Errorf("%s n=%d: fast path %v not ≥2x faster than matVec reference %v", tc.name, n, fast, ref)
		}
	}
}
