package fft

import (
	"math"
	"math/rand"
	"testing"
)

// randLine fills a fresh length-n line from rng.
func randLine(rng *rand.Rand, n int) []float64 {
	x := make([]float64, n)
	for i := range x {
		x[i] = rng.NormFloat64()
	}
	return x
}

// TestPairTransformsMatchSingle validates the two-for-one packed
// transforms against the single-line fast path across every
// production-relevant size: the Hermitian unpacking is exact in exact
// arithmetic, so the packed results must agree to rounding error.
func TestPairTransformsMatchSingle(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for n := 1; n <= 1024; n *= 2 {
		p := NewPlan(n)
		s := p.NewScratch()
		x0, x1 := randLine(rng, n), randLine(rng, n)
		want0, want1 := make([]float64, n), make([]float64, n)
		got0, got1 := make([]float64, n), make([]float64, n)
		for _, tr := range []struct {
			name   string
			single func(a, out []float64, s *Scratch)
			pair   func(a0, a1, out0, out1 []float64, s *Scratch)
		}{
			{"DCT2", p.DCT2To, p.DCT2PairTo},
			{"InvCos", p.InvCosTo, p.InvCosPairTo},
			{"InvSin", p.InvSinTo, p.InvSinPairTo},
		} {
			tr.single(x0, want0, s)
			tr.single(x1, want1, s)
			tr.pair(x0, x1, got0, got1, s)
			for i := 0; i < n; i++ {
				tol := 1e-12 * (1 + math.Abs(want0[i]) + math.Abs(want1[i]))
				if math.Abs(got0[i]-want0[i]) > tol || math.Abs(got1[i]-want1[i]) > tol {
					t.Fatalf("n=%d %s pair[%d] = (%.17g, %.17g), single (%.17g, %.17g)",
						n, tr.name, i, got0[i], got1[i], want0[i], want1[i])
				}
			}
		}
	}
}

// TestPairTransformsMatchMatVec cross-validates the packed transforms
// directly against the dense O(N²) references — the ISSUE acceptance
// bound of 1e-10 for N = 8…1024 (the fast path typically lands near
// 1e-14).
func TestPairTransformsMatchMatVec(t *testing.T) {
	rng := rand.New(rand.NewSource(12))
	for n := 8; n <= 1024; n *= 2 {
		p := NewPlan(n)
		s := p.NewScratch()
		x0, x1 := randLine(rng, n), randLine(rng, n)
		ref0, ref1 := make([]float64, n), make([]float64, n)
		got0, got1 := make([]float64, n), make([]float64, n)
		for _, tr := range []struct {
			name string
			ref  func(a, out []float64)
			pair func(a0, a1, out0, out1 []float64, s *Scratch)
		}{
			{"DCT2", p.DCT2MatVec, p.DCT2PairTo},
			{"InvCos", p.InvCosMatVec, p.InvCosPairTo},
			{"InvSin", p.InvSinMatVec, p.InvSinPairTo},
		} {
			tr.ref(x0, ref0)
			tr.ref(x1, ref1)
			tr.pair(x0, x1, got0, got1, s)
			for i := 0; i < n; i++ {
				tol := 1e-10 * (1 + math.Abs(ref0[i]) + math.Abs(ref1[i]))
				if math.Abs(got0[i]-ref0[i]) > tol || math.Abs(got1[i]-ref1[i]) > tol {
					t.Fatalf("n=%d %s pair[%d] = (%.17g, %.17g), matVec (%.17g, %.17g)",
						n, tr.name, i, got0[i], got1[i], ref0[i], ref1[i])
				}
			}
		}
	}
}

// TestDCT2PairInPlace checks the documented pairwise aliasing contract
// (outi may alias xi), which the density solve's in-place spectrum pass
// relies on.
func TestDCT2PairInPlace(t *testing.T) {
	const n = 32
	p := NewPlan(n)
	s := p.NewScratch()
	rng := rand.New(rand.NewSource(13))
	x0, x1 := randLine(rng, n), randLine(rng, n)
	want0, want1 := make([]float64, n), make([]float64, n)
	p.DCT2PairTo(x0, x1, want0, want1, s)
	p.DCT2PairTo(x0, x1, x0, x1, s)
	for i := 0; i < n; i++ {
		if x0[i] != want0[i] || x1[i] != want1[i] {
			t.Fatalf("in-place pair[%d] = (%g, %g), want (%g, %g)", i, x0[i], x1[i], want0[i], want1[i])
		}
	}
}

// TestTranspose checks the cache-blocked transpose, including sizes that
// are not tile multiples and the band variant's column-disjointness.
func TestTranspose(t *testing.T) {
	rng := rand.New(rand.NewSource(14))
	for _, n := range []int{1, 2, 7, 32, 33, 100} {
		src := randLine(rng, n*n)
		dst := make([]float64, n*n)
		Transpose(dst, src, n)
		for i := 0; i < n; i++ {
			for j := 0; j < n; j++ {
				if dst[j*n+i] != src[i*n+j] {
					t.Fatalf("n=%d: dst[%d][%d] = %g, want src[%d][%d] = %g",
						n, j, i, dst[j*n+i], i, j, src[i*n+j])
				}
			}
		}
		// Banded evaluation (arbitrary split points) must produce the
		// identical matrix.
		banded := make([]float64, n*n)
		mid := n / 3
		TransposeBand(banded, src, n, 0, mid)
		TransposeBand(banded, src, n, mid, n)
		for i := range banded {
			if banded[i] != dst[i] {
				t.Fatalf("n=%d: banded transpose differs at %d", n, i)
			}
		}
	}
}

// TestConvenienceFFTMatchesPlanTables: the table-less FFT must run the
// identical fftTab kernel with identical twiddles as a Plan of the same
// size — bit-equal outputs, not merely close (the w *= wBase recurrence
// it replaced drifted at N = 1024).
func TestConvenienceFFTMatchesPlanTables(t *testing.T) {
	rng := rand.New(rand.NewSource(15))
	for _, n := range []int{8, 256, 1024} {
		p := NewPlan(n)
		x := make([]complex128, n)
		for i := range x {
			x[i] = complex(rng.NormFloat64(), rng.NormFloat64())
		}
		got := append([]complex128(nil), x...)
		FFT(got)
		want := append([]complex128(nil), x...)
		fftTab(want, p.fwdTab)
		for k := range got {
			if got[k] != want[k] {
				t.Fatalf("n=%d: FFT[%d] = %v, plan fftTab %v (must be bit-equal)", n, k, got[k], want[k])
			}
		}
	}
}
