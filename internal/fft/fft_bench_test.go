package fft

import (
	"fmt"
	"testing"
)

// benchReal returns a deterministic length-n real signal.
func benchReal(n int) []float64 {
	x := make([]float64, n)
	for i := range x {
		x[i] = float64((i*2654435761)%1000)/500 - 1
	}
	return x
}

var benchNs = []int{32, 64, 256}

// BenchmarkFFT measures the complex radix-2 transform, the primitive under
// every spectral operation of the Poisson solver.
func BenchmarkFFT(b *testing.B) {
	for _, n := range benchNs {
		b.Run(fmt.Sprintf("n%d", n), func(b *testing.B) {
			src := make([]complex128, n)
			for i, v := range benchReal(n) {
				src[i] = complex(v, 0)
			}
			x := make([]complex128, n)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				copy(x, src)
				FFT(x)
			}
		})
	}
}

// BenchmarkDCT2 measures the forward cosine transform of a Plan — one row
// or column pass of the density grid's spectral decomposition.
func BenchmarkDCT2(b *testing.B) {
	for _, n := range benchNs {
		b.Run(fmt.Sprintf("n%d", n), func(b *testing.B) {
			p := NewPlan(n)
			x := benchReal(n)
			out := make([]float64, n)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				p.DCT2(x, out)
			}
		})
	}
}

// BenchmarkInverse measures the inverse sine/cosine reconstructions used
// to recover the potential ψ and field ξ from spectral coefficients.
func BenchmarkInverse(b *testing.B) {
	for _, n := range benchNs {
		p := NewPlan(n)
		a := benchReal(n)
		out := make([]float64, n)
		b.Run(fmt.Sprintf("cos/n%d", n), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				p.InvCos(a, out)
			}
		})
		b.Run(fmt.Sprintf("sin/n%d", n), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				p.InvSin(a, out)
			}
		})
	}
}
