package fft

import (
	"fmt"
	"testing"
)

// benchReal returns a deterministic length-n real signal.
func benchReal(n int) []float64 {
	x := make([]float64, n)
	for i := range x {
		x[i] = float64((i*2654435761)%1000)/500 - 1
	}
	return x
}

var benchNs = []int{32, 64, 256, 1024}

// BenchmarkFFT measures the complex radix-2 transform, the primitive under
// every spectral operation of the Poisson solver.
func BenchmarkFFT(b *testing.B) {
	for _, n := range benchNs {
		b.Run(fmt.Sprintf("n%d", n), func(b *testing.B) {
			src := make([]complex128, n)
			for i, v := range benchReal(n) {
				src[i] = complex(v, 0)
			}
			x := make([]complex128, n)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				copy(x, src)
				FFT(x)
			}
		})
	}
}

// BenchmarkDCT2 measures the forward cosine transform of a Plan — one row
// or column pass of the density grid's spectral decomposition — with the
// fast O(N log N) path (/fft) against the dense O(N²) reference (/matvec).
func BenchmarkDCT2(b *testing.B) {
	for _, n := range benchNs {
		p := NewPlan(n)
		x := benchReal(n)
		out := make([]float64, n)
		b.Run(fmt.Sprintf("fft/n%d", n), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				p.DCT2(x, out)
			}
		})
		b.Run(fmt.Sprintf("matvec/n%d", n), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				p.DCT2MatVec(x, out)
			}
		})
	}
}

// BenchmarkDCT2Concurrent measures many goroutines driving one shared Plan
// with per-goroutine Scratch — the access pattern of the parallel
// row/column passes in density.solve. SetParallelism raises the goroutine
// count past GOMAXPROCS to surface any hidden serialization in the Plan.
func BenchmarkDCT2Concurrent(b *testing.B) {
	p := NewPlan(256)
	src := benchReal(256)
	b.SetParallelism(4)
	b.RunParallel(func(pb *testing.PB) {
		s := p.NewScratch()
		x := append([]float64(nil), src...)
		out := make([]float64, len(x))
		for pb.Next() {
			p.DCT2To(x, out, s)
		}
	})
}

// BenchmarkInverse measures the inverse sine/cosine reconstructions used
// to recover the potential ψ and field ξ from spectral coefficients, with
// the fast O(N log N) path (/fft) against the dense O(N²) reference it
// replaced (/matvec) — the doubling sizes make the asymptotic gap visible
// directly in the ns/op columns.
func BenchmarkInverse(b *testing.B) {
	for _, n := range benchNs {
		p := NewPlan(n)
		a := benchReal(n)
		out := make([]float64, n)
		b.Run(fmt.Sprintf("cos/fft/n%d", n), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				p.InvCos(a, out)
			}
		})
		b.Run(fmt.Sprintf("cos/matvec/n%d", n), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				p.InvCosMatVec(a, out)
			}
		})
		b.Run(fmt.Sprintf("sin/fft/n%d", n), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				p.InvSin(a, out)
			}
		})
		b.Run(fmt.Sprintf("sin/matvec/n%d", n), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				p.InvSinMatVec(a, out)
			}
		})
	}
}

// BenchmarkTransformPacked compares two single-line transforms against
// one packed pair call at the Poisson-solve line sizes — the two-for-one
// Hermitian-packing win the fused spectral pipeline is built on (one
// complex FFT instead of two, plus one unpack pass).
func BenchmarkTransformPacked(b *testing.B) {
	for _, n := range []int{256, 512, 1024} {
		p := NewPlan(n)
		s := p.NewScratch()
		x0 := benchReal(n)
		x1 := append([]float64(nil), x0...)
		for i := range x1 {
			x1[i] = -x1[i] * 0.5
		}
		o0 := make([]float64, n)
		o1 := make([]float64, n)
		for _, tr := range []struct {
			name   string
			single func(a, out []float64, sc *Scratch)
			pair   func(a0, a1, out0, out1 []float64, sc *Scratch)
		}{
			{"DCT2", p.DCT2To, p.DCT2PairTo},
			{"InvCos", p.InvCosTo, p.InvCosPairTo},
			{"InvSin", p.InvSinTo, p.InvSinPairTo},
		} {
			b.Run(fmt.Sprintf("%s/n%d/single2x", tr.name, n), func(b *testing.B) {
				for i := 0; i < b.N; i++ {
					tr.single(x0, o0, s)
					tr.single(x1, o1, s)
				}
			})
			b.Run(fmt.Sprintf("%s/n%d/pair", tr.name, n), func(b *testing.B) {
				for i := 0; i < b.N; i++ {
					tr.pair(x0, x1, o0, o1, s)
				}
			})
		}
	}
}

// BenchmarkTransformTranspose compares the cache-blocked transpose with
// the naive stride-n loop it replaced in the solve's column passes.
func BenchmarkTransformTranspose(b *testing.B) {
	for _, n := range []int{128, 512, 1024} {
		src := benchReal(n * n)
		dst := make([]float64, n*n)
		b.Run(fmt.Sprintf("tiled/n%d", n), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				Transpose(dst, src, n)
			}
		})
		b.Run(fmt.Sprintf("naive/n%d", n), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				for r := 0; r < n; r++ {
					row := src[r*n : r*n+n]
					for c := 0; c < n; c++ {
						dst[c*n+r] = row[c]
					}
				}
			}
		})
	}
}
