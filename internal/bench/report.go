package bench

import (
	"encoding/json"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"runtime"
	"strings"
	"time"

	"repro/internal/circuit"
)

// SchemaVersion identifies the report layout. Compare refuses to diff
// reports with mismatched schemas, so tolerance gates never silently read
// renamed fields as zeros.
const SchemaVersion = 1

// QoR is the deterministic quality-of-result record of one placement: at a
// fixed seed, rerunning the placement reproduces these numbers exactly.
type QoR struct {
	HPWLUM          float64                 `json:"hpwl_um"`
	RawHPWLUM       float64                 `json:"raw_hpwl_um"`
	AreaUM2         float64                 `json:"area_um2"`
	OverlapUM2      float64                 `json:"overlap_um2"`
	DensityOverflow float64                 `json:"density_overflow"`
	Violations      circuit.ViolationCounts `json:"violations"`
	Legal           bool                    `json:"legal"`
}

// RuntimeStats summarizes wall-clock behavior over the timed repetitions.
type RuntimeStats struct {
	Reps     int     `json:"reps"`
	MedianMS float64 `json:"median_ms"`
	P95MS    float64 `json:"p95_ms"`
	MinMS    float64 `json:"min_ms"`
	MaxMS    float64 `json:"max_ms"`
	// StageMS attributes runtime to pipeline stages ("gp", "detailed",
	// "sa"), medians across repetitions, from internal/obs span timings.
	StageMS map[string]float64 `json:"stage_ms,omitempty"`
}

// CaseResult is one (circuit, method) cell of the report.
type CaseResult struct {
	Case      string `json:"case"`
	Devices   int    `json:"devices"`
	Nets      int    `json:"nets"`
	SymGroups int    `json:"sym_groups"`
	Method    string `json:"method"`
	Seed      int64  `json:"seed"`
	// Deterministic records whether every timed repetition produced an
	// identical QoR — false flags a reproducibility bug in a solver.
	Deterministic bool         `json:"deterministic"`
	QoR           QoR          `json:"qor"`
	Runtime       RuntimeStats `json:"runtime"`
	// ECO, present only for ECO-mode runs, records the incremental
	// re-placement experiment for this cell: the case's edited variant
	// solved cold versus warm-started from this cell's placement.
	ECO *ECOStats `json:"eco,omitempty"`
}

// ECOStats measures one incremental (ECO) re-placement: the edited netlist
// solved from scratch versus warm-started from the base placement with
// anchor pseudonets. Speedup > 1 means the warm solve was faster; the HPWL
// ratio near 1 means it matched cold quality.
type ECOStats struct {
	EditedDevices int `json:"edited_devices"`
	// Anchored/Perturbed partition the edited netlist as the warm solve
	// saw it: devices pulled toward their prior position vs. devices in
	// the edit's connectivity neighborhood (plus additions).
	Anchored  int `json:"anchored"`
	Perturbed int `json:"perturbed"`

	ColdMS  float64 `json:"cold_ms"`
	WarmMS  float64 `json:"warm_ms"`
	Speedup float64 `json:"speedup"`

	ColdHPWLUM        float64 `json:"cold_hpwl_um"`
	WarmHPWLUM        float64 `json:"warm_hpwl_um"`
	WarmColdHPWLRatio float64 `json:"warm_cold_hpwl_ratio"`
	WarmLegal         bool    `json:"warm_legal"`
}

// Report is the on-disk BENCH_<label>.json document.
type Report struct {
	Schema  int      `json:"schema"`
	Label   string   `json:"label,omitempty"`
	Suite   string   `json:"suite,omitempty"`
	Seed    int64    `json:"seed"`
	Quick   bool     `json:"quick,omitempty"`
	Methods []string `json:"methods"`
	// Chains/Refine/RefineWindows record the search-level knobs the run
	// used (SA portfolio width and the ILP refinement stage): reports with
	// different knobs are different experiments, so they are stamped next
	// to seed and quick rather than left ambient.
	Chains        int  `json:"chains,omitempty"`
	Refine        bool `json:"refine,omitempty"`
	RefineWindows int  `json:"refine_windows,omitempty"`
	// Threads is the resolved placement-kernel worker count the run used;
	// GoMaxProcs snapshots the Go scheduler's parallelism. QoR does not
	// depend on either (deterministic sharding), runtime does.
	Threads     int          `json:"threads,omitempty"`
	GoMaxProcs  int          `json:"gomaxprocs,omitempty"`
	GoVersion   string       `json:"go_version,omitempty"`
	CreatedUnix int64        `json:"created_unix,omitempty"`
	Results     []CaseResult `json:"results"`
}

// WriteJSON serializes the report with stable field order and indentation.
func (r *Report) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(r)
}

// WriteFile stamps environment metadata and writes BENCH_<label>.json into
// dir, returning the file path.
func (r *Report) WriteFile(dir string) (string, error) {
	r.GoVersion = runtime.Version()
	r.CreatedUnix = time.Now().Unix()
	path := filepath.Join(dir, "BENCH_"+sanitizeLabel(r.Label)+".json")
	f, err := os.Create(path)
	if err != nil {
		return "", err
	}
	if err := r.WriteJSON(f); err != nil {
		f.Close()
		return "", fmt.Errorf("writing %s: %w", path, err)
	}
	if err := f.Close(); err != nil {
		return "", fmt.Errorf("closing %s: %w", path, err)
	}
	return path, nil
}

// ReadReport loads and schema-checks a report file.
func ReadReport(path string) (*Report, error) {
	b, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var r Report
	if err := json.Unmarshal(b, &r); err != nil {
		return nil, fmt.Errorf("%s: parsing benchmark report: %w", path, err)
	}
	if r.Schema != SchemaVersion {
		return nil, fmt.Errorf("%s: report schema %d, this build reads schema %d", path, r.Schema, SchemaVersion)
	}
	return &r, nil
}

// sanitizeLabel keeps labels filesystem- and CI-artifact-safe.
func sanitizeLabel(label string) string {
	if label == "" {
		return "run"
	}
	return strings.Map(func(r rune) rune {
		switch {
		case r >= 'a' && r <= 'z', r >= 'A' && r <= 'Z', r >= '0' && r <= '9',
			r == '.', r == '_', r == '-':
			return r
		}
		return '-'
	}, label)
}

// Tolerances bounds how much worse the current run may be than the
// baseline before Compare reports a regression.
type Tolerances struct {
	// RuntimeFactor allows current median runtime up to this multiple of
	// the baseline's (default 1.5; runtime is the noisiest metric).
	RuntimeFactor float64
	// QoRFactor allows current HPWL/area/overlap/overflow up to this
	// multiple of the baseline's (default 1.01: QoR is deterministic at a
	// fixed seed, so any drift is a real behavior change).
	QoRFactor float64
}

func (t Tolerances) withDefaults() Tolerances {
	if t.RuntimeFactor <= 0 {
		t.RuntimeFactor = 1.5
	}
	if t.QoRFactor <= 0 {
		t.QoRFactor = 1.01
	}
	return t
}

// Regression is one tolerance violation found by Compare.
type Regression struct {
	Case   string  `json:"case"`
	Method string  `json:"method"`
	Metric string  `json:"metric"`
	Old    float64 `json:"old"`
	New    float64 `json:"new"`
}

func (r Regression) String() string {
	return fmt.Sprintf("%s/%s: %s regressed %.4g -> %.4g", r.Case, r.Method, r.Metric, r.Old, r.New)
}

// Compare diffs current against baseline and returns every regression
// beyond tolerance. Result cells present only in current are ignored (new
// coverage is not a regression); cells missing from current are reported.
// An empty slice means the gate passes.
func Compare(baseline, current *Report, tol Tolerances) ([]Regression, error) {
	if baseline.Schema != current.Schema {
		return nil, fmt.Errorf("bench: schema mismatch: baseline %d vs current %d", baseline.Schema, current.Schema)
	}
	if baseline.Seed != current.Seed {
		return nil, fmt.Errorf("bench: seed mismatch: baseline %d vs current %d (QoR is only comparable at equal seeds)",
			baseline.Seed, current.Seed)
	}
	tol = tol.withDefaults()
	cur := map[[2]string]*CaseResult{}
	for i := range current.Results {
		r := &current.Results[i]
		cur[[2]string{r.Case, r.Method}] = r
	}
	var regs []Regression
	for i := range baseline.Results {
		old := &baseline.Results[i]
		now, ok := cur[[2]string{old.Case, old.Method}]
		if !ok {
			regs = append(regs, Regression{Case: old.Case, Method: old.Method, Metric: "missing"})
			continue
		}
		add := func(metric string, o, n float64) {
			regs = append(regs, Regression{Case: old.Case, Method: old.Method, Metric: metric, Old: o, New: n})
		}
		qor := func(metric string, o, n float64) {
			// Relative bound with a tiny absolute slack so a zero
			// baseline (e.g. no overlap) still tolerates float dust.
			if n > o*tol.QoRFactor+1e-9 {
				add(metric, o, n)
			}
		}
		qor("hpwl_um", old.QoR.HPWLUM, now.QoR.HPWLUM)
		qor("raw_hpwl_um", old.QoR.RawHPWLUM, now.QoR.RawHPWLUM)
		qor("area_um2", old.QoR.AreaUM2, now.QoR.AreaUM2)
		qor("overlap_um2", old.QoR.OverlapUM2, now.QoR.OverlapUM2)
		qor("density_overflow", old.QoR.DensityOverflow, now.QoR.DensityOverflow)
		ov, nv := old.QoR.Violations, now.QoR.Violations
		if nv.Overlaps > ov.Overlaps {
			add("violations.overlaps", float64(ov.Overlaps), float64(nv.Overlaps))
		}
		if nv.Symmetry > ov.Symmetry {
			add("violations.symmetry", float64(ov.Symmetry), float64(nv.Symmetry))
		}
		if nv.Align > ov.Align {
			add("violations.align", float64(ov.Align), float64(nv.Align))
		}
		if nv.Order > ov.Order {
			add("violations.order", float64(ov.Order), float64(nv.Order))
		}
		if old.QoR.Legal && !now.QoR.Legal {
			add("legal", 1, 0)
		}
		if old.Deterministic && !now.Deterministic {
			add("deterministic", 1, 0)
		}
		// Runtime gates on the median with an absolute slack floor so
		// sub-10ms cases don't flap on scheduler noise.
		if now.Runtime.MedianMS > old.Runtime.MedianMS*tol.RuntimeFactor+10 {
			add("runtime.median_ms", old.Runtime.MedianMS, now.Runtime.MedianMS)
		}
	}
	return regs, nil
}
