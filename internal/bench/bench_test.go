package bench

import (
	"bytes"
	"encoding/json"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/core"
	"repro/internal/gen"
)

// tinyCases generates a small deterministic suite for tests.
func tinyCases(t *testing.T) []CaseInput {
	t.Helper()
	var cases []CaseInput
	for _, size := range []int{8, 14} {
		n, err := gen.Generate(gen.Params{Seed: 7, Devices: size})
		if err != nil {
			t.Fatalf("Generate(%d): %v", size, err)
		}
		cases = append(cases, CaseInput{Name: n.Name, Netlist: n})
	}
	return cases
}

func quickOpts() Options {
	return Options{Quick: true, Reps: 2, Seed: 5}
}

// TestRunAllMethods runs the harness end to end in quick mode over all
// three methods and checks the report invariants: one cell per
// case×method, populated QoR, deterministic across repetitions.
func TestRunAllMethods(t *testing.T) {
	cases := tinyCases(t)
	rep, err := Run(cases, quickOpts())
	if err != nil {
		t.Fatal(err)
	}
	if rep.Schema != SchemaVersion {
		t.Errorf("schema = %d, want %d", rep.Schema, SchemaVersion)
	}
	wantMethods := []string{"sa", "prev", "eplace-a"}
	if len(rep.Methods) != len(wantMethods) {
		t.Fatalf("methods = %v, want %v", rep.Methods, wantMethods)
	}
	if got, want := len(rep.Results), len(cases)*len(wantMethods); got != want {
		t.Fatalf("len(results) = %d, want %d", got, want)
	}
	for _, r := range rep.Results {
		if r.QoR.HPWLUM <= 0 || r.QoR.AreaUM2 <= 0 {
			t.Errorf("%s/%s: degenerate QoR %+v", r.Case, r.Method, r.QoR)
		}
		if !r.Deterministic {
			t.Errorf("%s/%s: QoR differed across same-seed repetitions", r.Case, r.Method)
		}
		if r.Runtime.Reps != 2 {
			t.Errorf("%s/%s: reps = %d, want 2", r.Case, r.Method, r.Runtime.Reps)
		}
		if r.Devices == 0 || r.Nets == 0 {
			t.Errorf("%s/%s: missing circuit stats %+v", r.Case, r.Method, r)
		}
	}
}

// TestSameSeedReproducible reruns the same suite and demands identical QoR
// sections — the property the CI smoke job asserts with jq.
func TestSameSeedReproducible(t *testing.T) {
	cases := tinyCases(t)
	opts := quickOpts()
	opts.Methods = []core.Method{core.MethodPrev, core.MethodSA}
	a, err := Run(cases, opts)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Run(cases, opts)
	if err != nil {
		t.Fatal(err)
	}
	for i := range a.Results {
		ra, rb := a.Results[i], b.Results[i]
		if ra.QoR != rb.QoR {
			t.Errorf("%s/%s: QoR not reproducible:\n  run1 %+v\n  run2 %+v", ra.Case, ra.Method, ra.QoR, rb.QoR)
		}
	}
}

// TestReportRoundTrip checks the JSON schema is stable: serialized field
// names match the documented report layout, and ReadReport round-trips.
func TestReportRoundTrip(t *testing.T) {
	cases := tinyCases(t)[:1]
	opts := quickOpts()
	opts.Methods = []core.Method{core.MethodPrev}
	rep, err := Run(cases, opts)
	if err != nil {
		t.Fatal(err)
	}
	rep.Label = "unit/test run" // exercises sanitizeLabel
	rep.Suite = "quick"

	dir := t.TempDir()
	path, err := rep.WriteFile(dir)
	if err != nil {
		t.Fatal(err)
	}
	if want := filepath.Join(dir, "BENCH_unit-test-run.json"); path != want {
		t.Errorf("path = %q, want %q", path, want)
	}

	back, err := ReadReport(path)
	if err != nil {
		t.Fatal(err)
	}
	if back.Seed != rep.Seed || len(back.Results) != len(rep.Results) {
		t.Errorf("round trip mismatch: %+v vs %+v", back, rep)
	}
	if back.Results[0].QoR != rep.Results[0].QoR {
		t.Errorf("QoR round trip mismatch")
	}

	var buf bytes.Buffer
	if err := rep.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	for _, key := range []string{
		`"schema"`, `"results"`, `"qor"`, `"hpwl_um"`, `"raw_hpwl_um"`,
		`"area_um2"`, `"overlap_um2"`, `"density_overflow"`, `"violations"`,
		`"legal"`, `"runtime"`, `"median_ms"`, `"p95_ms"`, `"deterministic"`,
	} {
		if !strings.Contains(buf.String(), key) {
			t.Errorf("report JSON missing %s", key)
		}
	}
}

// TestReadReportSchemaMismatch ensures future-schema reports are rejected
// instead of silently read as zeros.
func TestReadReportSchemaMismatch(t *testing.T) {
	dir := t.TempDir()
	rep := &Report{Schema: SchemaVersion + 1, Label: "future"}
	path, err := rep.WriteFile(dir)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := ReadReport(path); err == nil {
		t.Fatal("ReadReport accepted a mismatched schema")
	}
}

// cloneReport deep-copies a report via JSON so tests can inject
// regressions without aliasing.
func cloneReport(t *testing.T, r *Report) *Report {
	t.Helper()
	b, err := json.Marshal(r)
	if err != nil {
		t.Fatal(err)
	}
	var out Report
	if err := json.Unmarshal(b, &out); err != nil {
		t.Fatal(err)
	}
	return &out
}

// TestCompare injects regressions into a copied report and checks the gate
// trips on each, and only then — identical reports must pass clean.
func TestCompare(t *testing.T) {
	cases := tinyCases(t)[:1]
	opts := quickOpts()
	opts.Methods = []core.Method{core.MethodPrev}
	base, err := Run(cases, opts)
	if err != nil {
		t.Fatal(err)
	}

	if regs, err := Compare(base, cloneReport(t, base), Tolerances{}); err != nil {
		t.Fatal(err)
	} else if len(regs) != 0 {
		t.Fatalf("identical reports flagged regressions: %v", regs)
	}

	// HPWL regression beyond the QoR factor.
	worse := cloneReport(t, base)
	worse.Results[0].QoR.HPWLUM *= 1.10
	regs, err := Compare(base, worse, Tolerances{})
	if err != nil {
		t.Fatal(err)
	}
	if len(regs) != 1 || regs[0].Metric != "hpwl_um" {
		t.Fatalf("regs = %v, want one hpwl_um regression", regs)
	}
	if !strings.Contains(regs[0].String(), "hpwl_um") {
		t.Errorf("String() = %q, want metric name in message", regs[0])
	}

	// Within tolerance: no flag.
	near := cloneReport(t, base)
	near.Results[0].QoR.HPWLUM *= 1.005
	if regs, _ := Compare(base, near, Tolerances{}); len(regs) != 0 {
		t.Fatalf("within-tolerance drift flagged: %v", regs)
	}

	// New constraint violations and lost legality.
	broken := cloneReport(t, base)
	broken.Results[0].QoR.Violations.Symmetry += 2
	broken.Results[0].QoR.Legal = false
	regs, _ = Compare(base, broken, Tolerances{})
	var metrics []string
	for _, r := range regs {
		metrics = append(metrics, r.Metric)
	}
	if len(regs) != 2 || metrics[0] != "violations.symmetry" || metrics[1] != "legal" {
		t.Fatalf("metrics = %v, want [violations.symmetry legal]", metrics)
	}

	// Runtime regression beyond factor + slack.
	slow := cloneReport(t, base)
	slow.Results[0].Runtime.MedianMS = slow.Results[0].Runtime.MedianMS*2 + 100
	regs, _ = Compare(base, slow, Tolerances{})
	if len(regs) != 1 || regs[0].Metric != "runtime.median_ms" {
		t.Fatalf("regs = %v, want one runtime.median_ms regression", regs)
	}
	// A looser runtime factor silences it.
	if regs, _ := Compare(base, slow, Tolerances{RuntimeFactor: 10}); len(regs) != 0 {
		t.Fatalf("loose runtime tolerance still flagged: %v", regs)
	}

	// A cell vanishing from the current report is itself a regression.
	missing := cloneReport(t, base)
	missing.Results = nil
	regs, _ = Compare(base, missing, Tolerances{})
	if len(regs) != 1 || regs[0].Metric != "missing" {
		t.Fatalf("regs = %v, want one missing-cell regression", regs)
	}

	// Seed mismatch is an error, not a pass.
	reseeded := cloneReport(t, base)
	reseeded.Seed++
	if _, err := Compare(base, reseeded, Tolerances{}); err == nil {
		t.Fatal("Compare accepted mismatched seeds")
	}
}
