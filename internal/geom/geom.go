// Package geom provides the small set of planar geometry primitives shared
// by every placement subsystem: points, axis-aligned rectangles and
// one-dimensional intervals, all in float64 grid units.
package geom

import (
	"fmt"
	"math"
)

// Point is a location in the plane.
type Point struct {
	X, Y float64
}

// Add returns p translated by q.
func (p Point) Add(q Point) Point { return Point{p.X + q.X, p.Y + q.Y} }

// Sub returns p - q.
func (p Point) Sub(q Point) Point { return Point{p.X - q.X, p.Y - q.Y} }

// Scale returns p scaled by s.
func (p Point) Scale(s float64) Point { return Point{p.X * s, p.Y * s} }

// Dist returns the Euclidean distance between p and q.
func (p Point) Dist(q Point) float64 {
	return math.Hypot(p.X-q.X, p.Y-q.Y)
}

func (p Point) String() string { return fmt.Sprintf("(%.3f,%.3f)", p.X, p.Y) }

// Rect is an axis-aligned rectangle described by its lower-left (Lo) and
// upper-right (Hi) corners. A Rect is valid when Lo.X <= Hi.X and
// Lo.Y <= Hi.Y; the zero Rect is a valid empty rectangle at the origin.
type Rect struct {
	Lo, Hi Point
}

// RectWH returns the rectangle with lower-left corner (x, y), width w and
// height h.
func RectWH(x, y, w, h float64) Rect {
	return Rect{Point{x, y}, Point{x + w, y + h}}
}

// RectCenter returns the rectangle of width w and height h centered on c.
func RectCenter(c Point, w, h float64) Rect {
	return Rect{Point{c.X - w/2, c.Y - h/2}, Point{c.X + w/2, c.Y + h/2}}
}

// W returns the rectangle width.
func (r Rect) W() float64 { return r.Hi.X - r.Lo.X }

// H returns the rectangle height.
func (r Rect) H() float64 { return r.Hi.Y - r.Lo.Y }

// Area returns the rectangle area.
func (r Rect) Area() float64 { return r.W() * r.H() }

// Center returns the rectangle center point.
func (r Rect) Center() Point {
	return Point{(r.Lo.X + r.Hi.X) / 2, (r.Lo.Y + r.Hi.Y) / 2}
}

// Empty reports whether r has zero (or negative) extent in either axis.
func (r Rect) Empty() bool { return r.W() <= 0 || r.H() <= 0 }

// Contains reports whether p lies inside r (boundary inclusive).
func (r Rect) Contains(p Point) bool {
	return p.X >= r.Lo.X && p.X <= r.Hi.X && p.Y >= r.Lo.Y && p.Y <= r.Hi.Y
}

// ContainsRect reports whether s lies entirely inside r (boundary inclusive).
func (r Rect) ContainsRect(s Rect) bool {
	return r.Contains(s.Lo) && r.Contains(s.Hi)
}

// Intersect returns the intersection of r and s. The result may be empty;
// callers should check Empty before using its extent.
func (r Rect) Intersect(s Rect) Rect {
	out := Rect{
		Point{math.Max(r.Lo.X, s.Lo.X), math.Max(r.Lo.Y, s.Lo.Y)},
		Point{math.Min(r.Hi.X, s.Hi.X), math.Min(r.Hi.Y, s.Hi.Y)},
	}
	if out.Empty() {
		return Rect{}
	}
	return out
}

// Overlaps reports whether r and s share interior area (touching edges do
// not count as overlap).
func (r Rect) Overlaps(s Rect) bool {
	return r.Lo.X < s.Hi.X && s.Lo.X < r.Hi.X && r.Lo.Y < s.Hi.Y && s.Lo.Y < r.Hi.Y
}

// OverlapArea returns the interior overlap area between r and s.
func (r Rect) OverlapArea(s Rect) float64 {
	dx := math.Min(r.Hi.X, s.Hi.X) - math.Max(r.Lo.X, s.Lo.X)
	dy := math.Min(r.Hi.Y, s.Hi.Y) - math.Max(r.Lo.Y, s.Lo.Y)
	if dx <= 0 || dy <= 0 {
		return 0
	}
	return dx * dy
}

// OverlapDims returns the width and height of the interior overlap between
// r and s (both zero when they do not overlap). These are the Δx and Δy the
// detailed placer uses to classify an overlapping pair as horizontally or
// vertically separable.
func (r Rect) OverlapDims(s Rect) (dx, dy float64) {
	dx = math.Min(r.Hi.X, s.Hi.X) - math.Max(r.Lo.X, s.Lo.X)
	dy = math.Min(r.Hi.Y, s.Hi.Y) - math.Max(r.Lo.Y, s.Lo.Y)
	if dx <= 0 || dy <= 0 {
		return 0, 0
	}
	return dx, dy
}

// Union returns the smallest rectangle containing both r and s. An empty
// rectangle acts as the identity element.
func (r Rect) Union(s Rect) Rect {
	if r.Empty() {
		return s
	}
	if s.Empty() {
		return r
	}
	return Rect{
		Point{math.Min(r.Lo.X, s.Lo.X), math.Min(r.Lo.Y, s.Lo.Y)},
		Point{math.Max(r.Hi.X, s.Hi.X), math.Max(r.Hi.Y, s.Hi.Y)},
	}
}

// Translate returns r shifted by d.
func (r Rect) Translate(d Point) Rect {
	return Rect{r.Lo.Add(d), r.Hi.Add(d)}
}

func (r Rect) String() string {
	return fmt.Sprintf("[%s-%s]", r.Lo, r.Hi)
}

// Interval is a one-dimensional closed interval.
type Interval struct {
	Lo, Hi float64
}

// Len returns the interval length.
func (iv Interval) Len() float64 { return iv.Hi - iv.Lo }

// Overlap returns the length of the intersection of iv and jv (zero when
// disjoint).
func (iv Interval) Overlap(jv Interval) float64 {
	d := math.Min(iv.Hi, jv.Hi) - math.Max(iv.Lo, jv.Lo)
	if d < 0 {
		return 0
	}
	return d
}

// Contains reports whether x lies within the interval (inclusive).
func (iv Interval) Contains(x float64) bool { return x >= iv.Lo && x <= iv.Hi }

// Clamp returns x limited to the interval.
func (iv Interval) Clamp(x float64) float64 {
	if x < iv.Lo {
		return iv.Lo
	}
	if x > iv.Hi {
		return iv.Hi
	}
	return x
}

// BoundingBox returns the smallest rectangle containing all points. It
// returns the empty Rect for an empty slice.
func BoundingBox(pts []Point) Rect {
	if len(pts) == 0 {
		return Rect{}
	}
	r := Rect{pts[0], pts[0]}
	for _, p := range pts[1:] {
		if p.X < r.Lo.X {
			r.Lo.X = p.X
		}
		if p.Y < r.Lo.Y {
			r.Lo.Y = p.Y
		}
		if p.X > r.Hi.X {
			r.Hi.X = p.X
		}
		if p.Y > r.Hi.Y {
			r.Hi.Y = p.Y
		}
	}
	return r
}
