package geom

import (
	"math"
	"testing"
	"testing/quick"
)

func almostEq(a, b float64) bool { return math.Abs(a-b) < 1e-9 }

func TestPointOps(t *testing.T) {
	p := Point{1, 2}
	q := Point{3, -1}
	if got := p.Add(q); got != (Point{4, 1}) {
		t.Errorf("Add = %v", got)
	}
	if got := p.Sub(q); got != (Point{-2, 3}) {
		t.Errorf("Sub = %v", got)
	}
	if got := p.Scale(2); got != (Point{2, 4}) {
		t.Errorf("Scale = %v", got)
	}
	if got := p.Dist(q); !almostEq(got, math.Hypot(2, 3)) {
		t.Errorf("Dist = %v", got)
	}
}

func TestRectConstruction(t *testing.T) {
	r := RectWH(1, 2, 3, 4)
	if r.W() != 3 || r.H() != 4 {
		t.Fatalf("RectWH dims = %g x %g", r.W(), r.H())
	}
	if r.Area() != 12 {
		t.Fatalf("Area = %g", r.Area())
	}
	if c := r.Center(); c != (Point{2.5, 4}) {
		t.Fatalf("Center = %v", c)
	}
	rc := RectCenter(Point{0, 0}, 2, 6)
	if rc.Lo != (Point{-1, -3}) || rc.Hi != (Point{1, 3}) {
		t.Fatalf("RectCenter = %v", rc)
	}
}

func TestRectOverlap(t *testing.T) {
	a := RectWH(0, 0, 4, 4)
	b := RectWH(2, 2, 4, 4)
	c := RectWH(4, 0, 2, 2) // touches a's right edge
	d := RectWH(10, 10, 1, 1)

	if !a.Overlaps(b) {
		t.Error("a should overlap b")
	}
	if a.Overlaps(c) {
		t.Error("touching edges must not count as overlap")
	}
	if a.Overlaps(d) {
		t.Error("disjoint rects must not overlap")
	}
	if got := a.OverlapArea(b); got != 4 {
		t.Errorf("OverlapArea = %g, want 4", got)
	}
	if got := a.OverlapArea(d); got != 0 {
		t.Errorf("OverlapArea disjoint = %g, want 0", got)
	}
	dx, dy := a.OverlapDims(b)
	if dx != 2 || dy != 2 {
		t.Errorf("OverlapDims = %g,%g want 2,2", dx, dy)
	}
	dx, dy = a.OverlapDims(d)
	if dx != 0 || dy != 0 {
		t.Errorf("OverlapDims disjoint = %g,%g", dx, dy)
	}
}

func TestRectIntersectUnion(t *testing.T) {
	a := RectWH(0, 0, 4, 4)
	b := RectWH(2, 1, 4, 4)
	got := a.Intersect(b)
	want := Rect{Point{2, 1}, Point{4, 4}}
	if got != want {
		t.Errorf("Intersect = %v, want %v", got, want)
	}
	if !a.Intersect(RectWH(9, 9, 1, 1)).Empty() {
		t.Error("disjoint intersect should be empty")
	}
	u := a.Union(b)
	if u != (Rect{Point{0, 0}, Point{6, 5}}) {
		t.Errorf("Union = %v", u)
	}
	if got := (Rect{}).Union(a); got != a {
		t.Errorf("empty union identity = %v", got)
	}
	if got := a.Union(Rect{}); got != a {
		t.Errorf("union with empty = %v", got)
	}
}

func TestRectContains(t *testing.T) {
	r := RectWH(0, 0, 10, 5)
	if !r.Contains(Point{0, 0}) || !r.Contains(Point{10, 5}) || !r.Contains(Point{5, 2}) {
		t.Error("boundary/interior points should be contained")
	}
	if r.Contains(Point{-0.1, 0}) || r.Contains(Point{5, 5.1}) {
		t.Error("outside points must not be contained")
	}
	if !r.ContainsRect(RectWH(1, 1, 2, 2)) {
		t.Error("inner rect should be contained")
	}
	if r.ContainsRect(RectWH(9, 4, 2, 2)) {
		t.Error("overhanging rect must not be contained")
	}
}

func TestRectTranslate(t *testing.T) {
	r := RectWH(0, 0, 2, 2).Translate(Point{3, -1})
	if r != (Rect{Point{3, -1}, Point{5, 1}}) {
		t.Errorf("Translate = %v", r)
	}
}

func TestInterval(t *testing.T) {
	iv := Interval{2, 5}
	if iv.Len() != 3 {
		t.Errorf("Len = %g", iv.Len())
	}
	if got := iv.Overlap(Interval{4, 9}); got != 1 {
		t.Errorf("Overlap = %g", got)
	}
	if got := iv.Overlap(Interval{6, 9}); got != 0 {
		t.Errorf("disjoint Overlap = %g", got)
	}
	if !iv.Contains(2) || !iv.Contains(5) || iv.Contains(5.001) {
		t.Error("Contains boundary behaviour wrong")
	}
	if iv.Clamp(0) != 2 || iv.Clamp(9) != 5 || iv.Clamp(3) != 3 {
		t.Error("Clamp wrong")
	}
}

func TestBoundingBox(t *testing.T) {
	if !BoundingBox(nil).Empty() {
		t.Error("empty point set should give empty box")
	}
	pts := []Point{{1, 1}, {-2, 5}, {3, 0}}
	bb := BoundingBox(pts)
	if bb != (Rect{Point{-2, 0}, Point{3, 5}}) {
		t.Errorf("BoundingBox = %v", bb)
	}
}

// Property: overlap area is symmetric and never exceeds either rect's area.
func TestOverlapAreaProperties(t *testing.T) {
	f := func(ax, ay, aw, ah, bx, by, bw, bh float64) bool {
		aw, ah = math.Abs(aw)+0.01, math.Abs(ah)+0.01
		bw, bh = math.Abs(bw)+0.01, math.Abs(bh)+0.01
		// Keep magnitudes sane to avoid float blow-ups from quick's extremes.
		clamp := func(v float64) float64 {
			if math.IsNaN(v) || math.IsInf(v, 0) {
				return 0
			}
			return math.Mod(v, 1e6)
		}
		a := RectWH(clamp(ax), clamp(ay), clamp(aw), clamp(ah))
		b := RectWH(clamp(bx), clamp(by), clamp(bw), clamp(bh))
		ov1, ov2 := a.OverlapArea(b), b.OverlapArea(a)
		if math.Abs(ov1-ov2) > 1e-6*(1+ov1) {
			return false
		}
		return ov1 <= a.Area()+1e-6 && ov1 <= b.Area()+1e-6 && ov1 >= 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

// Property: Union contains both operands; Intersect is contained in both.
func TestUnionIntersectProperties(t *testing.T) {
	f := func(ax, ay, bx, by float64, aw, ah, bw, bh uint8) bool {
		clamp := func(v float64) float64 {
			if math.IsNaN(v) || math.IsInf(v, 0) {
				return 0
			}
			return math.Mod(v, 1e4)
		}
		a := RectWH(clamp(ax), clamp(ay), float64(aw)+1, float64(ah)+1)
		b := RectWH(clamp(bx), clamp(by), float64(bw)+1, float64(bh)+1)
		u := a.Union(b)
		if !u.ContainsRect(a) || !u.ContainsRect(b) {
			return false
		}
		iv := a.Intersect(b)
		if iv.Empty() {
			return true
		}
		return a.ContainsRect(iv) && b.ContainsRect(iv)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}
