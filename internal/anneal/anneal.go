// Package anneal implements the simulated-annealing analog placer the paper
// uses as its baseline: a sequence-pair floorplanner over symmetry-island
// macro blocks (symmetric pairs are fused into mirrored islands, aligned
// pairs into rigid macros), with flipping moves, an adaptive geometric
// cooling schedule, and multi-start restarts. The optional performance term
// turns it into the performance-driven SA of [19]: the GNN's failure
// probability Φ is added to the cost and evaluated by inference at every
// accepted candidate.
package anneal

import (
	"context"
	"fmt"
	"math"
	"math/rand"
	"sort"

	"repro/internal/circuit"
	"repro/internal/obs"
	"repro/internal/seqpair"
)

// PerfModel estimates the probability that circuit performance is
// unsatisfactory for a candidate placement (the GNN model Φ of [19]).
type PerfModel interface {
	Prob(n *circuit.Netlist, p *circuit.Placement) float64
}

// Options configures the annealer.
type Options struct {
	Seed     int64
	Moves    int // proposals per restart; 0 = 1500000 + 75000·n
	Restarts int // independent runs, best kept (default 2)

	AreaWeight float64 // weight of normalized area (default 0.5)
	WLWeight   float64 // weight of normalized HPWL (default 0.5)

	// Perf enables performance-driven annealing: PerfWeight·Φ(placement)
	// joins the cost.
	Perf       PerfModel
	PerfWeight float64

	// Tracer, when non-nil, wraps the run in an "sa" span (one
	// "restart-N" sub-span per restart) and emits one progress sample
	// every TraceEvery proposals: temperature, windowed acceptance rate,
	// current and best cost. Nil costs one pointer check per move.
	Tracer *obs.Tracer
	// TraceEvery is the sampling cadence in proposals (default Moves/200,
	// at least 1).
	TraceEvery int

	// Warm, when non-nil, seeds the annealer from a prior placement (the
	// ECO analogue of the analytical placers' anchor pseudonets): the
	// initial sequence pair is derived from the prior macro positions
	// instead of a random permutation, anchored devices pay a
	// displacement cost pulling them toward their prior spots, macros
	// whose devices are all anchored are frozen internally (sequence-pair
	// moves still reposition them), and the starting temperature is
	// reduced so the search polishes rather than re-explores. Nil
	// reproduces the blessed cold-start behavior exactly.
	Warm *Warm
}

// Warm is the prior placement mapped onto this netlist.
type Warm struct {
	// X, Y are per-device prior coordinates. Devices with
	// Valid[i] == false have no usable prior position; nil Valid means
	// every coordinate is usable.
	X, Y  []float64
	Valid []bool
	// Anchored marks devices charged for drifting from (X[i], Y[i]).
	Anchored []bool
	// Weight is the displacement term's share of the normalized cost
	// (default 0.3).
	Weight float64
}

func (w *Warm) weight() float64 {
	if w.Weight == 0 {
		return 0.3
	}
	return w.Weight
}

func (w *Warm) valid(i int) bool { return w.Valid == nil || w.Valid[i] }

func (o *Options) defaults(n int) {
	if o.Moves == 0 {
		o.Moves = 1500000 + 75000*n
	}
	if o.Restarts == 0 {
		o.Restarts = 2
	}
	if o.AreaWeight == 0 && o.WLWeight == 0 {
		o.AreaWeight, o.WLWeight = 0.5, 0.5
	}
	if o.TraceEvery == 0 {
		o.TraceEvery = o.Moves / 200
		if o.TraceEvery < 1 {
			o.TraceEvery = 1
		}
	}
}

// Stats reports annealing diagnostics.
type Stats struct {
	Proposals int
	Accepts   int
	BestCost  float64
}

type macroKind int

const (
	mSingle      macroKind = iota
	mIsland                // one symmetry group
	mBottomPair            // bottom-aligned chain (>= 2 devices in a row)
	mVCenterPair           // x-center-aligned chain (>= 2 devices stacked)
)

type rowRef struct {
	isPair bool
	idx    int // index into group.Pairs or group.Self
}

// macro is a rigid or semi-rigid block handed to the sequence pair.
type macro struct {
	kind    macroKind
	devices []int

	// Island state.
	group    int      // symmetry group index
	rows     []rowRef // bottom-to-top row order (mutable by SA)
	pairSwap []bool   // per pair: mirror the two devices' sides
	flipY    []bool   // per row: vertical flip of the row's devices
	flipX    bool     // for mSingle / align macros: horizontal flip
	yFlip    bool     // for mSingle / align macros: vertical flip
}

// state is one SA candidate: a sequence pair plus macro-internal choices.
type state struct {
	sp     *seqpair.Pair
	macros []*macro
}

func (s *state) clone() *state {
	ms := make([]*macro, len(s.macros))
	for i, m := range s.macros {
		c := *m
		c.rows = append([]rowRef(nil), m.rows...)
		c.pairSwap = append([]bool(nil), m.pairSwap...)
		c.flipY = append([]bool(nil), m.flipY...)
		ms[i] = &c
	}
	return &state{sp: s.sp.Clone(), macros: ms}
}

// buildMacros groups devices into SA blocks.
func buildMacros(n *circuit.Netlist) ([]*macro, error) {
	used := make([]bool, len(n.Devices))
	var macros []*macro
	for gi := range n.SymGroups {
		g := &n.SymGroups[gi]
		m := &macro{kind: mIsland, group: gi}
		for pi, pr := range g.Pairs {
			m.rows = append(m.rows, rowRef{isPair: true, idx: pi})
			m.devices = append(m.devices, pr[0], pr[1])
			used[pr[0]], used[pr[1]] = true, true
		}
		for si, r := range g.Self {
			m.rows = append(m.rows, rowRef{isPair: false, idx: si})
			m.devices = append(m.devices, r)
			used[r] = true
		}
		m.pairSwap = make([]bool, len(g.Pairs))
		m.flipY = make([]bool, len(m.rows))
		macros = append(macros, m)
	}
	addChains := func(pairs [][2]int, kind macroKind) error {
		for _, ch := range fuseChains(pairs) {
			for _, d := range ch {
				if used[d] {
					return fmt.Errorf("anneal: device %d in overlapping constraint groups; a device may join at most one symmetry group or alignment chain", d)
				}
				used[d] = true
			}
			macros = append(macros, &macro{kind: kind, devices: ch})
		}
		return nil
	}
	if err := addChains(n.BottomAlign, mBottomPair); err != nil {
		return nil, err
	}
	if err := addChains(n.VCenterAlign, mVCenterPair); err != nil {
		return nil, err
	}
	for i := range n.Devices {
		if !used[i] {
			macros = append(macros, &macro{kind: mSingle, devices: []int{i}})
		}
	}
	return macros, nil
}

// fuseChains merges alignment pairs sharing devices into ordered chains, so
// chained constraints like (a,b),(b,c) — a current-mirror array's adjacent
// bottom-alignments — become one rigid k-device macro. Disjoint pairs come
// out unchanged, preserving the historical two-device macro layouts.
func fuseChains(pairs [][2]int) [][]int {
	idx := map[int]int{} // device -> chain slot
	var chains [][]int
	for _, pr := range pairs {
		a, b := pr[0], pr[1]
		ca, okA := idx[a]
		cb, okB := idx[b]
		switch {
		case !okA && !okB:
			idx[a], idx[b] = len(chains), len(chains)
			chains = append(chains, []int{a, b})
		case okA && !okB:
			idx[b] = ca
			chains[ca] = append(chains[ca], b)
		case !okA && okB:
			idx[a] = cb
			chains[cb] = append(chains[cb], a)
		case ca != cb:
			for _, d := range chains[cb] {
				idx[d] = ca
			}
			chains[ca] = append(chains[ca], chains[cb]...)
			chains[cb] = nil
		}
	}
	out := chains[:0]
	for _, ch := range chains {
		if ch != nil {
			out = append(out, ch)
		}
	}
	return out
}

// layout computes the macro's bounding block and writes device placements
// relative to the macro's lower-left corner into relX/relY/flipX/flipY
// (indexed by device).
func (m *macro) layout(n *circuit.Netlist, relX, relY []float64, flipX, flipY []bool) seqpair.Block {
	switch m.kind {
	case mSingle:
		i := m.devices[0]
		d := &n.Devices[i]
		relX[i], relY[i] = d.W/2, d.H/2
		flipX[i], flipY[i] = m.flipX, m.yFlip
		return seqpair.Block{W: d.W, H: d.H}
	case mBottomPair:
		// Bottom-aligned row of >= 2 devices, left to right in chain order.
		var x, maxH float64
		for _, i := range m.devices {
			d := &n.Devices[i]
			relX[i], relY[i] = x+d.W/2, d.H/2
			flipX[i], flipY[i] = m.flipX, m.yFlip
			x += d.W
			maxH = math.Max(maxH, d.H)
		}
		return seqpair.Block{W: x, H: maxH}
	case mVCenterPair:
		// X-center-aligned stack of >= 2 devices, bottom to top.
		var maxW float64
		for _, i := range m.devices {
			maxW = math.Max(maxW, n.Devices[i].W)
		}
		var y float64
		for _, i := range m.devices {
			d := &n.Devices[i]
			relX[i], relY[i] = maxW/2, y+d.H/2
			flipX[i], flipY[i] = m.flipX, m.yFlip
			y += d.H
		}
		return seqpair.Block{W: maxW, H: y}
	default: // mIsland
		g := &n.SymGroups[m.group]
		var width float64
		for _, r := range m.rows {
			if r.isPair {
				width = math.Max(width, 2*n.Devices[g.Pairs[r.idx][0]].W)
			} else {
				width = math.Max(width, n.Devices[g.Self[r.idx]].W)
			}
		}
		axis := width / 2
		var y float64
		for ri, r := range m.rows {
			if r.isPair {
				q1, q2 := g.Pairs[r.idx][0], g.Pairs[r.idx][1]
				if m.pairSwap[r.idx] {
					q1, q2 = q2, q1
				}
				d := &n.Devices[q1]
				relX[q1], relY[q1] = axis-d.W/2, y+d.H/2
				relX[q2], relY[q2] = axis+d.W/2, y+d.H/2
				// Mirror layout: the right device is the left one flipped.
				flipX[q1], flipX[q2] = false, true
				flipY[q1], flipY[q2] = m.flipY[ri], m.flipY[ri]
				y += d.H
			} else {
				r0 := g.Self[r.idx]
				d := &n.Devices[r0]
				relX[r0], relY[r0] = axis, y+d.H/2
				flipX[r0], flipY[r0] = false, m.flipY[ri]
				y += d.H
			}
		}
		return seqpair.Block{W: width, H: y}
	}
}

// axisOffset returns the symmetry-axis x offset within an island macro.
func (m *macro) axisOffset(n *circuit.Netlist) float64 {
	g := &n.SymGroups[m.group]
	var width float64
	for _, r := range m.rows {
		if r.isPair {
			width = math.Max(width, 2*n.Devices[g.Pairs[r.idx][0]].W)
		} else {
			width = math.Max(width, n.Devices[g.Self[r.idx]].W)
		}
	}
	return width / 2
}

// evaluator turns a state into a placement and cost.
type evaluator struct {
	n      *circuit.Netlist
	opt    *Options
	blocks []seqpair.Block
	place  *circuit.Placement
	relX   []float64
	relY   []float64

	normArea float64
	normWL   float64

	// Warm-start displacement term (nil when cold).
	warm      *Warm
	warmScale float64 // normalizing length: sqrt(total device area)
	warmCount int     // anchored device count
}

func newEvaluator(n *circuit.Netlist, opt *Options) *evaluator {
	ev := &evaluator{
		n:        n,
		opt:      opt,
		place:    circuit.NewPlacement(n),
		relX:     make([]float64, len(n.Devices)),
		relY:     make([]float64, len(n.Devices)),
		normArea: math.Max(n.TotalDeviceArea(), 1),
	}
	if w := opt.Warm; w != nil {
		for _, a := range w.Anchored {
			if a {
				ev.warmCount++
			}
		}
		if ev.warmCount > 0 {
			ev.warm = w
			ev.warmScale = math.Sqrt(ev.normArea)
		}
	}
	return ev
}

// realize packs the state and fills ev.place (shared scratch; copy to keep).
func (ev *evaluator) realize(s *state) {
	if cap(ev.blocks) < len(s.macros) {
		ev.blocks = make([]seqpair.Block, len(s.macros))
	}
	ev.blocks = ev.blocks[:len(s.macros)]
	for mi, m := range s.macros {
		ev.blocks[mi] = m.layout(ev.n, ev.relX, ev.relY, ev.place.FlipX, ev.place.FlipY)
	}
	pos, _, _ := s.sp.Pack(ev.blocks)
	for mi, m := range s.macros {
		for _, d := range m.devices {
			ev.place.X[d] = pos[mi].X + ev.relX[d]
			ev.place.Y[d] = pos[mi].Y + ev.relY[d]
		}
		if m.kind == mIsland {
			ev.place.AxisX[m.group] = pos[mi].X + m.axisOffset(ev.n)
		}
	}
}

// cost evaluates the weighted cost of a state.
func (ev *evaluator) cost(s *state) float64 {
	ev.realize(s)
	area := ev.n.Area(ev.place)
	hpwl := ev.n.HPWL(ev.place)
	if ev.normWL == 0 {
		ev.normWL = math.Max(hpwl, 1)
	}
	c := ev.opt.AreaWeight*area/ev.normArea + ev.opt.WLWeight*hpwl/ev.normWL
	c += ev.orderPenalty()
	if ev.warm != nil {
		var disp float64
		for i, a := range ev.warm.Anchored {
			if !a {
				continue
			}
			disp += math.Abs(ev.place.X[i]-ev.warm.X[i]) + math.Abs(ev.place.Y[i]-ev.warm.Y[i])
		}
		c += ev.warm.weight() * disp / (ev.warmScale * float64(ev.warmCount))
	}
	if ev.opt.Perf != nil && ev.opt.PerfWeight != 0 {
		c += ev.opt.PerfWeight * ev.opt.Perf.Prob(ev.n, ev.place)
	}
	return c
}

// orderPenalty charges horizontal-order violations (Eq. 4i) proportionally
// to the violation distance.
func (ev *evaluator) orderPenalty() float64 {
	var pen float64
	for _, grp := range ev.n.HOrders {
		for k := 0; k+1 < len(grp); k++ {
			j, kk := grp[k], grp[k+1]
			right := ev.place.X[j] + ev.n.Devices[j].W/2
			left := ev.place.X[kk] - ev.n.Devices[kk].W/2
			if right > left {
				pen += (right - left) * 0.05
			}
		}
	}
	return pen
}

// mutate applies one random move to s in place. frozen, when non-nil,
// marks macros whose internal state must not change (fully anchored
// warm-start macros): a macro-internal move landing on one is redirected
// to a sequence-pair swap so the proposal is never a no-op.
func mutate(s *state, rng *rand.Rand, frozen []bool) {
	nb := s.sp.Len()
	r := rng.Float64()
	switch {
	case r < 0.35 && nb >= 2:
		s.sp.SwapPlus(rng.Intn(nb), rng.Intn(nb))
	case r < 0.55 && nb >= 2:
		s.sp.SwapMinus(rng.Intn(nb), rng.Intn(nb))
	case r < 0.70 && nb >= 2:
		s.sp.SwapBoth(rng.Intn(nb), rng.Intn(nb))
	default:
		mi := rng.Intn(len(s.macros))
		if frozen != nil && frozen[mi] {
			if nb >= 2 {
				s.sp.SwapBoth(rng.Intn(nb), rng.Intn(nb))
			}
			return
		}
		m := s.macros[mi]
		switch m.kind {
		case mIsland:
			switch k := rng.Intn(3); {
			case k == 0 && len(m.rows) >= 2:
				i, j := rng.Intn(len(m.rows)), rng.Intn(len(m.rows))
				m.rows[i], m.rows[j] = m.rows[j], m.rows[i]
				m.flipY[i], m.flipY[j] = m.flipY[j], m.flipY[i]
			case k == 1 && len(m.pairSwap) > 0:
				i := rng.Intn(len(m.pairSwap))
				m.pairSwap[i] = !m.pairSwap[i]
			default:
				i := rng.Intn(len(m.flipY))
				m.flipY[i] = !m.flipY[i]
			}
		default:
			if rng.Intn(2) == 0 {
				m.flipX = !m.flipX
			} else {
				m.yFlip = !m.yFlip
			}
		}
	}
}

// Place runs multi-start simulated annealing and returns the best legal
// placement found.
func Place(n *circuit.Netlist, opt Options) (*circuit.Placement, *Stats, error) {
	return PlaceCtx(context.Background(), n, opt)
}

// cancelCheckEvery is the move cadence at which the annealing loop polls the
// context: frequent enough that cancellation lands within milliseconds,
// sparse enough that the per-move cost stays one integer test.
const cancelCheckEvery = 256

// PlaceCtx is Place honoring cancellation and deadlines: the move loop polls
// ctx every cancelCheckEvery proposals and returns ctx.Err() when it fires.
// A canceled run returns no partial placement, so results remain
// deterministic: a run either completes identically to an uncanceled one or
// fails with the context's error.
func PlaceCtx(ctx context.Context, n *circuit.Netlist, opt Options) (*circuit.Placement, *Stats, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	if err := n.Validate(); err != nil {
		return nil, nil, err
	}
	opt.defaults(len(n.Devices))
	macros, err := buildMacros(n)
	if err != nil {
		return nil, nil, err
	}
	rng := rand.New(rand.NewSource(opt.Seed))
	ev := newEvaluator(n, &opt)
	stats := &Stats{}

	var warmPair *seqpair.Pair
	var frozen []bool
	if opt.Warm != nil {
		warmPair = warmSeqpair(macros, opt.Warm)
		frozen = frozenMacros(macros, opt.Warm)
	}

	saSpan := opt.Tracer.StartSpan("sa")
	defer saSpan.End()

	done := ctx.Done()

	var bestPlace *circuit.Placement
	bestCost := math.Inf(1)

	for restart := 0; restart < opt.Restarts; restart++ {
		select {
		case <-done:
			return nil, nil, ctx.Err()
		default:
		}
		restartSpan := opt.Tracer.StartSpan(fmt.Sprintf("restart-%d", restart))
		var sp0 *seqpair.Pair
		if warmPair != nil {
			sp0 = warmPair.Clone()
		} else {
			sp0 = seqpair.Random(len(macros), rng)
		}
		cur := &state{sp: sp0, macros: macros}
		cur = cur.clone() // own the macro state
		curCost := ev.cost(cur)
		if opt.Warm != nil && curCost < bestCost {
			// Cold restarts only record accepted moves, which is safe
			// because a random start is never the optimum; a warm seed very
			// well may be, so record it before the first proposal.
			bestCost = curCost
			ev.realize(cur)
			bestPlace = ev.place.Clone()
		}

		// Temperature calibration: sample move deltas.
		var sumAbs float64
		samples := 50
		for i := 0; i < samples; i++ {
			trial := cur.clone()
			mutate(trial, rng, frozen)
			sumAbs += math.Abs(ev.cost(trial) - curCost)
		}
		t0 := math.Max(sumAbs/float64(samples), 1e-6)
		if opt.Warm != nil {
			// Low-temperature treatment: polish the seeded configuration
			// instead of melting it.
			t0 = math.Max(t0*0.15, 1e-6)
		}
		tf := t0 * 1e-5
		alpha := math.Pow(tf/t0, 1/float64(opt.Moves))

		temp := t0
		winProposals, winAccepts := 0, 0
		for move := 0; move < opt.Moves; move++ {
			if move%cancelCheckEvery == 0 {
				select {
				case <-done:
					restartSpan.End()
					return nil, nil, ctx.Err()
				default:
				}
			}
			trial := cur.clone()
			mutate(trial, rng, frozen)
			c := ev.cost(trial)
			stats.Proposals++
			winProposals++
			if d := c - curCost; d <= 0 || rng.Float64() < math.Exp(-d/temp) {
				cur, curCost = trial, c
				stats.Accepts++
				winAccepts++
				if curCost < bestCost {
					bestCost = curCost
					ev.realize(cur)
					bestPlace = ev.place.Clone()
				}
			}
			temp *= alpha
			if opt.Tracer != nil && (move+1)%opt.TraceEvery == 0 {
				opt.Tracer.SAEvent(obs.SARecord{
					Restart: restart, Move: move + 1, Temp: temp,
					AcceptRate: float64(winAccepts) / float64(winProposals),
					Cur:        curCost, Best: bestCost,
				})
				winProposals, winAccepts = 0, 0
			}
		}
		restartSpan.End()
	}
	stats.BestCost = bestCost
	n.Normalize(bestPlace)
	if opt.Tracer.Enabled() {
		opt.Tracer.Count("sa.proposals", float64(stats.Proposals))
		opt.Tracer.Count("sa.accepts", float64(stats.Accepts))
		opt.Tracer.Gauge("sa.best_cost", bestCost)
	}
	return bestPlace, stats, nil
}

// warmSeqpair derives a sequence pair from the prior macro positions: in
// Γ+ macros are ordered by ascending cx−cy and in Γ− by ascending cx+cy,
// the classic placement→sequence-pair mapping (a macro up-left of another
// precedes it in Γ+ only; down-left precedes in both). Macros with no
// usable prior coordinate (all-new devices) pack last, in index order.
func warmSeqpair(macros []*macro, w *Warm) *seqpair.Pair {
	nm := len(macros)
	type ck struct {
		ok     bool
		cx, cy float64
	}
	centers := make([]ck, nm)
	for mi, m := range macros {
		var sx, sy float64
		cnt := 0
		for _, d := range m.devices {
			if !w.valid(d) {
				continue
			}
			sx += w.X[d]
			sy += w.Y[d]
			cnt++
		}
		if cnt > 0 {
			centers[mi] = ck{ok: true, cx: sx / float64(cnt), cy: sy / float64(cnt)}
		}
	}
	order := func(key func(ck) float64) []int {
		idx := make([]int, nm)
		for i := range idx {
			idx[i] = i
		}
		sort.SliceStable(idx, func(a, b int) bool {
			ca, cb := centers[idx[a]], centers[idx[b]]
			if ca.ok != cb.ok {
				return ca.ok // placeable macros first, new ones last
			}
			if !ca.ok {
				return idx[a] < idx[b]
			}
			ka, kb := key(ca), key(cb)
			if ka != kb {
				return ka < kb
			}
			return idx[a] < idx[b]
		})
		return idx
	}
	return &seqpair.Pair{
		Plus:  order(func(c ck) float64 { return c.cx - c.cy }),
		Minus: order(func(c ck) float64 { return c.cx + c.cy }),
	}
}

// frozenMacros marks macros every one of whose devices is anchored: their
// internal arrangement is already known-good, so only sequence-pair moves
// may touch them.
func frozenMacros(macros []*macro, w *Warm) []bool {
	if w.Anchored == nil {
		return nil
	}
	out := make([]bool, len(macros))
	for mi, m := range macros {
		all := len(m.devices) > 0
		for _, d := range m.devices {
			if !w.Anchored[d] {
				all = false
				break
			}
		}
		out[mi] = all
	}
	return out
}
