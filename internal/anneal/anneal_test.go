package anneal

import (
	"math"
	"testing"

	"repro/internal/circuit"
	"repro/internal/geom"
)

// symNetlist builds a small OTA-like netlist: a symmetric diff pair, a
// symmetric load pair, a self-symmetric tail device, and two bias devices,
// with a few nets.
func symNetlist() *circuit.Netlist {
	mk := func(name string, ty circuit.DeviceType, w, h float64) circuit.Device {
		return circuit.Device{
			Name: name, Type: ty, W: w, H: h,
			Pins: []circuit.Pin{
				{Name: "a", Offset: geom.Point{X: w * 0.25, Y: h / 2}},
				{Name: "b", Offset: geom.Point{X: w * 0.75, Y: h / 2}},
			},
		}
	}
	n := &circuit.Netlist{
		Name: "symtest",
		Devices: []circuit.Device{
			mk("M1", circuit.NMOS, 6, 4),
			mk("M2", circuit.NMOS, 6, 4),
			mk("M3", circuit.PMOS, 5, 3),
			mk("M4", circuit.PMOS, 5, 3),
			mk("MT", circuit.NMOS, 8, 3),
			mk("B1", circuit.NMOS, 4, 4),
			mk("B2", circuit.Cap, 7, 5),
		},
		Nets: []circuit.Net{
			{Name: "inp", Pins: []circuit.PinRef{{Device: 0, Pin: 0}, {Device: 5, Pin: 1}}},
			{Name: "inn", Pins: []circuit.PinRef{{Device: 1, Pin: 1}, {Device: 5, Pin: 0}}},
			{Name: "outp", Pins: []circuit.PinRef{{Device: 0, Pin: 1}, {Device: 2, Pin: 0}, {Device: 6, Pin: 0}}},
			{Name: "outn", Pins: []circuit.PinRef{{Device: 1, Pin: 0}, {Device: 3, Pin: 1}, {Device: 6, Pin: 1}}},
			{Name: "tail", Pins: []circuit.PinRef{{Device: 0, Pin: 0}, {Device: 1, Pin: 1}, {Device: 4, Pin: 0}}},
		},
		SymGroups: []circuit.SymmetryGroup{
			{Pairs: [][2]int{{0, 1}, {2, 3}}, Self: []int{4}},
		},
	}
	return n
}

func fastOpts() Options {
	return Options{Seed: 1, Moves: 4000, Restarts: 2}
}

func TestPlaceLegal(t *testing.T) {
	n := symNetlist()
	p, stats, err := Place(n, fastOpts())
	if err != nil {
		t.Fatal(err)
	}
	if rep := n.CheckLegal(p, 1e-6); !rep.OK() {
		t.Fatalf("SA placement illegal: %v", rep.Err())
	}
	if stats.Proposals == 0 || stats.Accepts == 0 {
		t.Errorf("stats look empty: %+v", stats)
	}
}

func TestPlaceDeterministic(t *testing.T) {
	n := symNetlist()
	p1, _, err := Place(n, fastOpts())
	if err != nil {
		t.Fatal(err)
	}
	p2, _, err := Place(n, fastOpts())
	if err != nil {
		t.Fatal(err)
	}
	for i := range p1.X {
		if p1.X[i] != p2.X[i] || p1.Y[i] != p2.Y[i] {
			t.Fatalf("same seed produced different placements at device %d", i)
		}
	}
}

func TestPlaceSeedChangesResult(t *testing.T) {
	n := symNetlist()
	p1, _, _ := Place(n, Options{Seed: 1, Moves: 3000, Restarts: 1})
	p2, _, _ := Place(n, Options{Seed: 99, Moves: 3000, Restarts: 1})
	same := true
	for i := range p1.X {
		if p1.X[i] != p2.X[i] || p1.Y[i] != p2.Y[i] {
			same = false
			break
		}
	}
	if same {
		t.Error("different seeds produced identical placements (suspicious)")
	}
}

func TestMoreMovesNoWorse(t *testing.T) {
	n := symNetlist()
	_, sShort, err := Place(n, Options{Seed: 3, Moves: 300, Restarts: 1})
	if err != nil {
		t.Fatal(err)
	}
	_, sLong, err := Place(n, Options{Seed: 3, Moves: 20000, Restarts: 3})
	if err != nil {
		t.Fatal(err)
	}
	if sLong.BestCost > sShort.BestCost+1e-9 {
		t.Errorf("longer anneal worse: %g > %g", sLong.BestCost, sShort.BestCost)
	}
}

func TestSymmetryMaintainedExactly(t *testing.T) {
	n := symNetlist()
	p, _, err := Place(n, fastOpts())
	if err != nil {
		t.Fatal(err)
	}
	g := n.SymGroups[0]
	axis := p.AxisX[0]
	for _, pr := range g.Pairs {
		if p.Y[pr[0]] != p.Y[pr[1]] {
			t.Errorf("pair (%d,%d) y: %g vs %g", pr[0], pr[1], p.Y[pr[0]], p.Y[pr[1]])
		}
		if math.Abs((p.X[pr[0]]+p.X[pr[1]])/2-axis) > 1e-12 {
			t.Errorf("pair (%d,%d) not centered on axis", pr[0], pr[1])
		}
		// Mirrored orientation.
		if p.FlipX[pr[0]] == p.FlipX[pr[1]] {
			t.Errorf("pair (%d,%d) not mirror-flipped", pr[0], pr[1])
		}
	}
	for _, r := range g.Self {
		if math.Abs(p.X[r]-axis) > 1e-12 {
			t.Errorf("self-symmetric %d off axis", r)
		}
	}
}

func TestBottomAlignMacro(t *testing.T) {
	n := symNetlist()
	n.BottomAlign = [][2]int{{5, 6}}
	p, _, err := Place(n, fastOpts())
	if err != nil {
		t.Fatal(err)
	}
	b5 := p.Y[5] - n.Devices[5].H/2
	b6 := p.Y[6] - n.Devices[6].H/2
	if math.Abs(b5-b6) > 1e-12 {
		t.Errorf("bottom alignment violated: %g vs %g", b5, b6)
	}
}

func TestVCenterAlignMacro(t *testing.T) {
	n := symNetlist()
	n.VCenterAlign = [][2]int{{5, 6}}
	p, _, err := Place(n, fastOpts())
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(p.X[5]-p.X[6]) > 1e-12 {
		t.Errorf("vertical center alignment violated: %g vs %g", p.X[5], p.X[6])
	}
}

func TestOrderConstraintSatisfied(t *testing.T) {
	n := symNetlist()
	n.HOrders = [][]int{{5, 6}}
	p, _, err := Place(n, Options{Seed: 2, Moves: 20000, Restarts: 3})
	if err != nil {
		t.Fatal(err)
	}
	right := p.X[5] + n.Devices[5].W/2
	left := p.X[6] - n.Devices[6].W/2
	if right > left+1e-9 {
		t.Errorf("order constraint violated: %g > %g", right, left)
	}
}

func TestOverlappingConstraintGroupsRejected(t *testing.T) {
	n := symNetlist()
	n.BottomAlign = [][2]int{{0, 5}} // device 0 is already in a symmetry island
	if _, _, err := Place(n, fastOpts()); err == nil {
		t.Error("expected error for device in both symmetry group and align pair")
	}
}

func TestInvalidNetlistRejected(t *testing.T) {
	n := symNetlist()
	n.Devices[0].W = -1
	if _, _, err := Place(n, fastOpts()); err == nil {
		t.Error("expected validation error")
	}
}

// TestPerfModelInfluences verifies the performance term steers the search:
// a model that charges for large x-spread should shrink the x-extent
// relative to the conventional result.
func TestPerfModelInfluences(t *testing.T) {
	n := symNetlist()
	conv, _, err := Place(n, Options{Seed: 4, Moves: 8000, Restarts: 2})
	if err != nil {
		t.Fatal(err)
	}
	pm := perfFunc(func(nl *circuit.Netlist, p *circuit.Placement) float64 {
		bb := nl.BoundingBox(p)
		return math.Min(bb.W()/40, 1) // dislikes wide layouts
	})
	perf, _, err := Place(n, Options{Seed: 4, Moves: 8000, Restarts: 2, Perf: pm, PerfWeight: 3})
	if err != nil {
		t.Fatal(err)
	}
	if n.BoundingBox(perf).W() > n.BoundingBox(conv).W()+1e-9 {
		t.Errorf("perf-driven width %g not smaller than conventional %g",
			n.BoundingBox(perf).W(), n.BoundingBox(conv).W())
	}
}

type perfFunc func(n *circuit.Netlist, p *circuit.Placement) float64

func (f perfFunc) Prob(n *circuit.Netlist, p *circuit.Placement) float64 { return f(n, p) }

func BenchmarkPlaceSmall(b *testing.B) {
	n := symNetlist()
	for i := 0; i < b.N; i++ {
		if _, _, err := Place(n, Options{Seed: 1, Moves: 2000, Restarts: 1}); err != nil {
			b.Fatal(err)
		}
	}
}
