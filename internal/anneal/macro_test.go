package anneal

import (
	"math"
	"testing"

	"repro/internal/circuit"
	"repro/internal/geom"
)

// alignNetlist builds four plain devices for macro-layout unit tests.
func alignNetlist() *circuit.Netlist {
	mk := func(name string, w, h float64) circuit.Device {
		return circuit.Device{Name: name, W: w, H: h,
			Pins: []circuit.Pin{{Name: "p", Offset: geom.Point{X: w / 4, Y: h / 2}}}}
	}
	return &circuit.Netlist{
		Name:    "align",
		Devices: []circuit.Device{mk("a", 6, 4), mk("b", 4, 7), mk("c", 5, 5), mk("d", 3, 3)},
		Nets: []circuit.Net{
			{Name: "n", Pins: []circuit.PinRef{{Device: 0, Pin: 0}, {Device: 2, Pin: 0}}},
		},
	}
}

func scratch(n *circuit.Netlist) (relX, relY []float64, fx, fy []bool) {
	k := len(n.Devices)
	return make([]float64, k), make([]float64, k), make([]bool, k), make([]bool, k)
}

func TestSingleMacroLayout(t *testing.T) {
	n := alignNetlist()
	m := &macro{kind: mSingle, devices: []int{1}}
	relX, relY, fx, fy := scratch(n)
	blk := m.layout(n, relX, relY, fx, fy)
	if blk.W != 4 || blk.H != 7 {
		t.Errorf("block = %+v, want 4x7", blk)
	}
	if relX[1] != 2 || relY[1] != 3.5 {
		t.Errorf("center offset = (%g, %g)", relX[1], relY[1])
	}
	m.flipX = true
	m.layout(n, relX, relY, fx, fy)
	if !fx[1] {
		t.Error("flipX not propagated")
	}
}

func TestBottomPairMacroLayout(t *testing.T) {
	n := alignNetlist()
	m := &macro{kind: mBottomPair, devices: []int{0, 1}} // 6x4 and 4x7
	relX, relY, fx, fy := scratch(n)
	blk := m.layout(n, relX, relY, fx, fy)
	if blk.W != 10 || blk.H != 7 {
		t.Errorf("block = %+v, want 10x7", blk)
	}
	// Bottoms aligned: both bottom edges at 0.
	if relY[0]-n.Devices[0].H/2 != 0 || relY[1]-n.Devices[1].H/2 != 0 {
		t.Errorf("bottoms not aligned: %g, %g", relY[0]-2, relY[1]-3.5)
	}
	// Side by side, no overlap.
	if relX[0]+n.Devices[0].W/2 > relX[1]-n.Devices[1].W/2+1e-12 {
		t.Error("pair devices overlap horizontally")
	}
}

func TestVCenterPairMacroLayout(t *testing.T) {
	n := alignNetlist()
	m := &macro{kind: mVCenterPair, devices: []int{0, 2}} // 6x4 and 5x5
	relX, relY, fx, fy := scratch(n)
	blk := m.layout(n, relX, relY, fx, fy)
	if blk.W != 6 || blk.H != 9 {
		t.Errorf("block = %+v, want 6x9", blk)
	}
	if relX[0] != relX[2] {
		t.Errorf("x-centers differ: %g vs %g", relX[0], relX[2])
	}
	if relY[0]+n.Devices[0].H/2 > relY[2]-n.Devices[2].H/2+1e-12 {
		t.Error("stacked devices overlap vertically")
	}
}

func TestIslandMacroLayout(t *testing.T) {
	n := &circuit.Netlist{
		Name: "island",
		Devices: []circuit.Device{
			{Name: "q1", W: 6, H: 4, Pins: []circuit.Pin{{Name: "p", Offset: geom.Point{X: 1, Y: 2}}}},
			{Name: "q2", W: 6, H: 4, Pins: []circuit.Pin{{Name: "p", Offset: geom.Point{X: 1, Y: 2}}}},
			{Name: "s", W: 8, H: 3, Pins: []circuit.Pin{{Name: "p", Offset: geom.Point{X: 4, Y: 1}}}},
		},
		Nets:      []circuit.Net{{Name: "n", Pins: []circuit.PinRef{{Device: 0, Pin: 0}, {Device: 2, Pin: 0}}}},
		SymGroups: []circuit.SymmetryGroup{{Pairs: [][2]int{{0, 1}}, Self: []int{2}}},
	}
	macros, err := buildMacros(n)
	if err != nil {
		t.Fatal(err)
	}
	if len(macros) != 1 || macros[0].kind != mIsland {
		t.Fatalf("want a single island macro, got %+v", macros)
	}
	relX, relY, fx, fy := scratch(n)
	blk := macros[0].layout(n, relX, relY, fx, fy)
	// Width: max(2·6, 8) = 12; height: 4 + 3 = 7.
	if blk.W != 12 || blk.H != 7 {
		t.Errorf("island block = %+v, want 12x7", blk)
	}
	axis := macros[0].axisOffset(n)
	if axis != 6 {
		t.Errorf("axis offset = %g, want 6", axis)
	}
	// Pair mirrored about the axis, self-symmetric centered on it.
	if math.Abs((relX[0]+relX[1])/2-axis) > 1e-12 {
		t.Errorf("pair not centered on axis: %g, %g", relX[0], relX[1])
	}
	if relX[2] != axis {
		t.Errorf("self device off axis: %g", relX[2])
	}
	if relY[0] != relY[1] {
		t.Errorf("pair rows differ: %g vs %g", relY[0], relY[1])
	}
	if fx[0] == fx[1] {
		t.Error("mirrored pair should have complementary x-flips")
	}
}

func TestIslandPairSwap(t *testing.T) {
	n := &circuit.Netlist{
		Name: "swap",
		Devices: []circuit.Device{
			{Name: "q1", W: 6, H: 4, Pins: []circuit.Pin{{Name: "p", Offset: geom.Point{X: 1, Y: 2}}}},
			{Name: "q2", W: 6, H: 4, Pins: []circuit.Pin{{Name: "p", Offset: geom.Point{X: 1, Y: 2}}}},
		},
		Nets:      []circuit.Net{{Name: "n", Pins: []circuit.PinRef{{Device: 0, Pin: 0}, {Device: 1, Pin: 0}}}},
		SymGroups: []circuit.SymmetryGroup{{Pairs: [][2]int{{0, 1}}}},
	}
	macros, err := buildMacros(n)
	if err != nil {
		t.Fatal(err)
	}
	m := macros[0]
	relX, relY, fx, fy := scratch(n)
	m.layout(n, relX, relY, fx, fy)
	leftBefore := relX[0] < relX[1]
	m.pairSwap[0] = true
	m.layout(n, relX, relY, fx, fy)
	if (relX[0] < relX[1]) == leftBefore {
		t.Error("pairSwap did not exchange sides")
	}
}

func TestBuildMacrosPartition(t *testing.T) {
	n := alignNetlist()
	n.BottomAlign = [][2]int{{0, 1}}
	macros, err := buildMacros(n)
	if err != nil {
		t.Fatal(err)
	}
	// One bottom pair + two singles.
	counts := map[macroKind]int{}
	seen := map[int]bool{}
	for _, m := range macros {
		counts[m.kind]++
		for _, d := range m.devices {
			if seen[d] {
				t.Errorf("device %d in two macros", d)
			}
			seen[d] = true
		}
	}
	if counts[mBottomPair] != 1 || counts[mSingle] != 2 {
		t.Errorf("macro partition wrong: %v", counts)
	}
	if len(seen) != len(n.Devices) {
		t.Errorf("devices covered: %d of %d", len(seen), len(n.Devices))
	}
}
