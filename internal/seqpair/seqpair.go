// Package seqpair implements the sequence-pair floorplan representation
// used by the simulated-annealing baseline placer: a pair of block
// permutations (Γ+, Γ−) encodes every pairwise left-of/below relation, and
// longest-path packing converts it into a non-overlapping placement.
package seqpair

import (
	"fmt"
	"math/rand"

	"repro/internal/geom"
)

// Block is a rectangular object to pack.
type Block struct {
	W, H float64
}

// Pair is a sequence pair over n blocks: two permutations of {0..n-1}.
// Block i is left of block j iff i precedes j in both sequences; i is below
// j iff i follows j in Γ+ and precedes j in Γ−.
type Pair struct {
	Plus, Minus []int

	posPlus, posMinus []int // inverse permutations, rebuilt on demand
}

// New returns the identity sequence pair over n blocks (all blocks in a
// single row, left to right).
func New(n int) *Pair {
	p := &Pair{Plus: make([]int, n), Minus: make([]int, n)}
	for i := 0; i < n; i++ {
		p.Plus[i] = i
		p.Minus[i] = i
	}
	return p
}

// Random returns a uniformly random sequence pair over n blocks.
func Random(n int, rng *rand.Rand) *Pair {
	p := &Pair{Plus: rng.Perm(n), Minus: rng.Perm(n)}
	return p
}

// Clone returns an independent copy.
func (p *Pair) Clone() *Pair {
	return &Pair{
		Plus:  append([]int(nil), p.Plus...),
		Minus: append([]int(nil), p.Minus...),
	}
}

// Len returns the number of blocks.
func (p *Pair) Len() int { return len(p.Plus) }

// SwapPlus exchanges positions i and j in Γ+.
func (p *Pair) SwapPlus(i, j int) {
	p.Plus[i], p.Plus[j] = p.Plus[j], p.Plus[i]
}

// SwapMinus exchanges positions i and j in Γ−.
func (p *Pair) SwapMinus(i, j int) {
	p.Minus[i], p.Minus[j] = p.Minus[j], p.Minus[i]
}

// SwapBoth exchanges the same two blocks in both sequences (by value, not
// position): a classic SA move that translates a block without changing
// relative order of the rest.
func (p *Pair) SwapBoth(a, b int) {
	p.rebuildPos()
	i, j := p.posPlus[a], p.posPlus[b]
	p.Plus[i], p.Plus[j] = p.Plus[j], p.Plus[i]
	i, j = p.posMinus[a], p.posMinus[b]
	p.Minus[i], p.Minus[j] = p.Minus[j], p.Minus[i]
}

func (p *Pair) rebuildPos() {
	n := len(p.Plus)
	if len(p.posPlus) != n {
		p.posPlus = make([]int, n)
		p.posMinus = make([]int, n)
	}
	for idx, b := range p.Plus {
		p.posPlus[b] = idx
	}
	for idx, b := range p.Minus {
		p.posMinus[b] = idx
	}
}

// Validate checks that both sequences are permutations of the same length.
func (p *Pair) Validate() error {
	n := len(p.Plus)
	if len(p.Minus) != n {
		return fmt.Errorf("seqpair: sequence lengths differ: %d vs %d", n, len(p.Minus))
	}
	seen := make([]bool, n)
	for _, b := range p.Plus {
		if b < 0 || b >= n || seen[b] {
			return fmt.Errorf("seqpair: Plus is not a permutation")
		}
		seen[b] = true
	}
	for i := range seen {
		seen[i] = false
	}
	for _, b := range p.Minus {
		if b < 0 || b >= n || seen[b] {
			return fmt.Errorf("seqpair: Minus is not a permutation")
		}
		seen[b] = true
	}
	return nil
}

// Pack computes the minimal packing implied by the sequence pair: the
// lower-left corner of each block plus the bounding width and height.
// Runs the classic O(n²) longest-path evaluation.
func (p *Pair) Pack(blocks []Block) (pos []geom.Point, W, H float64) {
	n := len(blocks)
	if n != len(p.Plus) {
		panic("seqpair: block count does not match sequence length")
	}
	p.rebuildPos()
	pos = make([]geom.Point, n)

	// X: process blocks in Γ− order; x[b] = max over previously-seen a with
	// posPlus[a] < posPlus[b] of x[a]+w[a]. Seen-in-Γ− and earlier in Γ+
	// means "a left of b".
	type ent struct {
		posPlus int
		reach   float64 // x + w
	}
	seen := make([]ent, 0, n)
	for _, b := range p.Minus {
		var x float64
		pb := p.posPlus[b]
		for _, e := range seen {
			if e.posPlus < pb && e.reach > x {
				x = e.reach
			}
		}
		pos[b].X = x
		if r := x + blocks[b].W; r > W {
			W = r
		}
		seen = append(seen, ent{pb, x + blocks[b].W})
	}

	// Y: process blocks in Γ− order; a below b iff a seen earlier in Γ− and
	// posPlus[a] > posPlus[b].
	seen = seen[:0]
	for _, b := range p.Minus {
		var y float64
		pb := p.posPlus[b]
		for _, e := range seen {
			if e.posPlus > pb && e.reach > y {
				y = e.reach
			}
		}
		pos[b].Y = y
		if t := y + blocks[b].H; t > H {
			H = t
		}
		seen = append(seen, ent{pb, y + blocks[b].H})
	}
	return pos, W, H
}
