package seqpair

import (
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/geom"
)

func blocksN(dims ...float64) []Block {
	var b []Block
	for i := 0; i+1 < len(dims); i += 2 {
		b = append(b, Block{W: dims[i], H: dims[i+1]})
	}
	return b
}

func overlapsAny(blocks []Block, pos []geom.Point) bool {
	for i := range blocks {
		ri := geom.RectWH(pos[i].X, pos[i].Y, blocks[i].W, blocks[i].H)
		for j := i + 1; j < len(blocks); j++ {
			rj := geom.RectWH(pos[j].X, pos[j].Y, blocks[j].W, blocks[j].H)
			if ri.Overlaps(rj) {
				return true
			}
		}
	}
	return false
}

func TestIdentityPackIsRow(t *testing.T) {
	// Identity sequence pair: all blocks left-to-right in one row.
	b := blocksN(2, 3, 4, 1, 1, 5)
	p := New(3)
	pos, W, H := p.Pack(b)
	wantX := []float64{0, 2, 6}
	for i, w := range wantX {
		if pos[i].X != w || pos[i].Y != 0 {
			t.Errorf("block %d at %v, want (%g, 0)", i, pos[i], w)
		}
	}
	if W != 7 || H != 5 {
		t.Errorf("bounds = %g x %g, want 7 x 5", W, H)
	}
}

func TestReversedPlusIsColumn(t *testing.T) {
	// Γ+ reversed, Γ− identity: every earlier block is below -> a column.
	b := blocksN(2, 3, 4, 1, 1, 5)
	p := New(3)
	p.Plus = []int{2, 1, 0}
	pos, W, H := p.Pack(b)
	wantY := []float64{0, 3, 4}
	for i, w := range wantY {
		if pos[i].Y != w || pos[i].X != 0 {
			t.Errorf("block %d at %v, want (0, %g)", i, pos[i], w)
		}
	}
	if W != 4 || H != 9 {
		t.Errorf("bounds = %g x %g, want 4 x 9", W, H)
	}
}

func TestPackNoOverlapRandom(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for trial := 0; trial < 200; trial++ {
		n := 2 + rng.Intn(12)
		blocks := make([]Block, n)
		for i := range blocks {
			blocks[i] = Block{W: 1 + rng.Float64()*9, H: 1 + rng.Float64()*9}
		}
		p := Random(n, rng)
		pos, W, H := p.Pack(blocks)
		if overlapsAny(blocks, pos) {
			t.Fatalf("trial %d: packing overlaps (sp=%v/%v)", trial, p.Plus, p.Minus)
		}
		for i := range blocks {
			if pos[i].X < 0 || pos[i].Y < 0 {
				t.Fatalf("trial %d: negative position %v", trial, pos[i])
			}
			if pos[i].X+blocks[i].W > W+1e-9 || pos[i].Y+blocks[i].H > H+1e-9 {
				t.Fatalf("trial %d: block %d exceeds bounds", trial, i)
			}
		}
	}
}

// TestPackAreaLowerBound: packing area is at least the sum of block areas.
func TestPackAreaLowerBound(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 2 + rng.Intn(10)
		blocks := make([]Block, n)
		var sum float64
		for i := range blocks {
			blocks[i] = Block{W: 1 + rng.Float64()*5, H: 1 + rng.Float64()*5}
			sum += blocks[i].W * blocks[i].H
		}
		_, W, H := Random(n, rng).Pack(blocks)
		return W*H >= sum-1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func TestSwapBoth(t *testing.T) {
	p := New(4)
	p.SwapBoth(0, 3)
	if p.Plus[0] != 3 || p.Plus[3] != 0 || p.Minus[0] != 3 || p.Minus[3] != 0 {
		t.Errorf("SwapBoth wrong: %v / %v", p.Plus, p.Minus)
	}
	if err := p.Validate(); err != nil {
		t.Error(err)
	}
}

func TestSwapPositional(t *testing.T) {
	p := New(3)
	p.SwapPlus(0, 2)
	if p.Plus[0] != 2 || p.Plus[2] != 0 {
		t.Errorf("SwapPlus wrong: %v", p.Plus)
	}
	p.SwapMinus(1, 2)
	if p.Minus[1] != 2 || p.Minus[2] != 1 {
		t.Errorf("SwapMinus wrong: %v", p.Minus)
	}
	if err := p.Validate(); err != nil {
		t.Error(err)
	}
}

func TestValidateCatchesCorruption(t *testing.T) {
	p := New(3)
	p.Plus[0] = 1 // duplicate
	if p.Validate() == nil {
		t.Error("Validate accepted duplicate entry")
	}
	q := New(3)
	q.Minus = q.Minus[:2]
	if q.Validate() == nil {
		t.Error("Validate accepted length mismatch")
	}
}

func TestCloneIndependent(t *testing.T) {
	p := New(3)
	q := p.Clone()
	q.SwapPlus(0, 1)
	if p.Plus[0] != 0 {
		t.Error("Clone shares storage")
	}
}

func TestPackPanicsOnSizeMismatch(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("Pack accepted mismatched block count")
		}
	}()
	New(3).Pack(blocksN(1, 1))
}

// TestMovesPreservePermutation is the SA safety property: any sequence of
// random moves keeps both sequences valid permutations.
func TestMovesPreservePermutation(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	p := Random(10, rng)
	for step := 0; step < 1000; step++ {
		switch rng.Intn(3) {
		case 0:
			p.SwapPlus(rng.Intn(10), rng.Intn(10))
		case 1:
			p.SwapMinus(rng.Intn(10), rng.Intn(10))
		default:
			p.SwapBoth(rng.Intn(10), rng.Intn(10))
		}
		if err := p.Validate(); err != nil {
			t.Fatalf("step %d: %v", step, err)
		}
	}
}

func BenchmarkPack30(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	blocks := make([]Block, 30)
	for i := range blocks {
		blocks[i] = Block{W: 1 + rng.Float64()*9, H: 1 + rng.Float64()*9}
	}
	p := Random(30, rng)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		p.Pack(blocks)
	}
}
