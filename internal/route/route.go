// Package route implements a congestion-aware global router — the stand-in
// for the ALIGN router the paper uses before parasitic extraction. Nets are
// routed one pin at a time over a uniform grid with Dijkstra search from
// the already-routed tree (a sequential Steiner heuristic); cell usage
// feeds back into edge costs so later nets detour around congestion. The
// routed lengths refine the HPWL-based parasitic estimates and let the
// evaluation report post-route wirelength like the paper does.
package route

import (
	"container/heap"
	"fmt"
	"math"
	"sort"

	"repro/internal/circuit"
	"repro/internal/obs"
)

// Options configures the router.
type Options struct {
	// GridCells is the routing-grid resolution per side (default 64).
	GridCells int
	// Capacity is the number of net tracks a cell accommodates before it
	// counts as overflowed (default 6).
	Capacity int
	// CongestionWeight scales the extra cost of entering an occupied cell
	// (default 0.5 per track already present).
	CongestionWeight float64

	// Tracer, when non-nil, wraps the run in a "routing" span and reports
	// route.nets/route.total_length counters plus congestion gauges.
	Tracer *obs.Tracer
}

func (o *Options) defaults() {
	if o.GridCells == 0 {
		o.GridCells = 64
	}
	if o.Capacity == 0 {
		o.Capacity = 6
	}
	if o.CongestionWeight == 0 {
		o.CongestionWeight = 0.5
	}
}

// Result reports the routing outcome.
type Result struct {
	// NetLength is the routed wire length per net in grid units (the same
	// units as HPWL, so the two are directly comparable).
	NetLength []float64
	// TotalLength sums NetLength.
	TotalLength float64
	// MaxUsage is the most tracks any cell carries.
	MaxUsage int
	// OverflowCells counts cells above capacity.
	OverflowCells int
}

// Route globally routes every net of the placement.
func Route(n *circuit.Netlist, p *circuit.Placement, opt Options) (*Result, error) {
	if err := n.CheckSized(p); err != nil {
		return nil, err
	}
	opt.defaults()
	sp := opt.Tracer.StartSpan("routing")
	defer sp.End()
	g := opt.GridCells

	bb := n.BoundingBox(p)
	if bb.Empty() {
		return nil, fmt.Errorf("route: empty placement bounding box")
	}
	// A one-cell margin lets routes escape around boundary devices.
	cellW := bb.W() / float64(g-2)
	cellH := bb.H() / float64(g-2)
	originX := bb.Lo.X - cellW
	originY := bb.Lo.Y - cellH
	cellOf := func(x, y float64) (int, int) {
		cx := int((x - originX) / cellW)
		cy := int((y - originY) / cellH)
		if cx < 0 {
			cx = 0
		}
		if cx >= g {
			cx = g - 1
		}
		if cy < 0 {
			cy = 0
		}
		if cy >= g {
			cy = g - 1
		}
		return cx, cy
	}

	usage := make([]int, g*g)
	res := &Result{NetLength: make([]float64, len(n.Nets))}

	// Route larger-fanout nets first: they benefit most from free tracks.
	order := make([]int, len(n.Nets))
	for i := range order {
		order[i] = i
	}
	for i := 1; i < len(order); i++ {
		for j := i; j > 0 && len(n.Nets[order[j]].Pins) > len(n.Nets[order[j-1]].Pins); j-- {
			order[j], order[j-1] = order[j-1], order[j]
		}
	}

	r := &router{
		g: g, usage: usage, opt: &opt,
		dist: make([]float64, g*g),
		prev: make([]int32, g*g),
		cellCost: func(idx int) float64 {
			return 1 + opt.CongestionWeight*float64(usage[idx])
		},
	}

	for _, e := range order {
		net := &n.Nets[e]
		if len(net.Pins) < 2 {
			continue
		}
		// Pin cells, deduplicated.
		seen := map[int]bool{}
		var pins []int
		for _, pr := range net.Pins {
			pt := n.PinPos(p, pr)
			cx, cy := cellOf(pt.X, pt.Y)
			idx := cy*g + cx
			if !seen[idx] {
				seen[idx] = true
				pins = append(pins, idx)
			}
		}
		if len(pins) < 2 {
			continue // all pins share a cell: zero routed length
		}
		tree := map[int]bool{pins[0]: true}
		var cells int
		for _, target := range pins[1:] {
			if tree[target] {
				continue
			}
			path, err := r.dijkstra(tree, target)
			if err != nil {
				return nil, fmt.Errorf("route: net %s: %w", net.Name, err)
			}
			for _, idx := range path {
				if !tree[idx] {
					tree[idx] = true
					usage[idx]++
					cells++
				}
			}
		}
		// Length: cells traversed × average cell pitch.
		res.NetLength[e] = float64(cells) * (cellW + cellH) / 2
		res.TotalLength += res.NetLength[e]
	}
	for _, u := range usage {
		if u > res.MaxUsage {
			res.MaxUsage = u
		}
		if u > opt.Capacity {
			res.OverflowCells++
		}
	}
	if opt.Tracer.Enabled() {
		opt.Tracer.Count("route.nets", float64(len(n.Nets)))
		opt.Tracer.Count("route.total_length", res.TotalLength)
		opt.Tracer.Gauge("route.max_usage", float64(res.MaxUsage))
		opt.Tracer.Gauge("route.overflow_cells", float64(res.OverflowCells))
	}
	return res, nil
}

// router holds the Dijkstra scratch state.
type router struct {
	g        int
	usage    []int
	opt      *Options
	dist     []float64
	prev     []int32
	cellCost func(idx int) float64
}

// pqItem is a priority-queue entry.
type pqItem struct {
	idx  int
	dist float64
}

type pq []pqItem

func (q pq) Len() int { return len(q) }
func (q pq) Less(i, j int) bool {
	if q[i].dist != q[j].dist {
		return q[i].dist < q[j].dist
	}
	return q[i].idx < q[j].idx // deterministic tie-break
}
func (q pq) Swap(i, j int) { q[i], q[j] = q[j], q[i] }
func (q *pq) Push(x any)   { *q = append(*q, x.(pqItem)) }
func (q *pq) Pop() any     { old := *q; it := old[len(old)-1]; *q = old[:len(old)-1]; return it }

// dijkstra finds the cheapest path from any tree cell to target, returning
// the path cells (target back to, and including, the tree attachment).
func (r *router) dijkstra(tree map[int]bool, target int) ([]int, error) {
	g := r.g
	for i := range r.dist {
		r.dist[i] = math.Inf(1)
		r.prev[i] = -1
	}
	srcs := make([]int, 0, len(tree))
	for idx := range tree {
		srcs = append(srcs, idx)
	}
	sort.Ints(srcs) // map order must not leak into route choices
	q := make(pq, 0, len(srcs))
	for _, idx := range srcs {
		r.dist[idx] = 0
		q = append(q, pqItem{idx, 0})
	}
	heap.Init(&q)
	for q.Len() > 0 {
		it := heap.Pop(&q).(pqItem)
		if it.dist > r.dist[it.idx] {
			continue // stale entry
		}
		if it.idx == target {
			break
		}
		cx, cy := it.idx%g, it.idx/g
		for _, d := range [4][2]int{{1, 0}, {-1, 0}, {0, 1}, {0, -1}} {
			nx, ny := cx+d[0], cy+d[1]
			if nx < 0 || nx >= g || ny < 0 || ny >= g {
				continue
			}
			nidx := ny*g + nx
			nd := it.dist + r.cellCost(nidx)
			if nd < r.dist[nidx] {
				r.dist[nidx] = nd
				r.prev[nidx] = int32(it.idx)
				heap.Push(&q, pqItem{nidx, nd})
			}
		}
	}
	if math.IsInf(r.dist[target], 1) {
		return nil, fmt.Errorf("no path to target cell %d", target)
	}
	var path []int
	for idx := target; idx >= 0 && !tree[idx]; idx = int(r.prev[idx]) {
		path = append(path, idx)
		if r.prev[idx] < 0 {
			break
		}
	}
	return path, nil
}
