package route

import (
	"math"
	"testing"

	"repro/internal/circuit"
	"repro/internal/core"
	"repro/internal/geom"
	"repro/internal/testcircuits"
)

// pairNetlist: two single-pin devices connected by one net, placed apart.
func pairNetlist(dx, dy float64) (*circuit.Netlist, *circuit.Placement) {
	mk := func(name string) circuit.Device {
		return circuit.Device{Name: name, W: 2, H: 2,
			Pins: []circuit.Pin{{Name: "p", Offset: geom.Point{X: 1, Y: 1}}}}
	}
	n := &circuit.Netlist{
		Name:    "pair",
		Devices: []circuit.Device{mk("a"), mk("b")},
		Nets:    []circuit.Net{{Name: "n", Pins: []circuit.PinRef{{Device: 0, Pin: 0}, {Device: 1, Pin: 0}}}},
	}
	p := circuit.NewPlacement(n)
	p.X[0], p.Y[0] = 5, 5
	p.X[1], p.Y[1] = 5+dx, 5+dy
	return n, p
}

func TestTwoPinRouteNearManhattan(t *testing.T) {
	n, p := pairNetlist(40, 30)
	res, err := Route(n, p, Options{})
	if err != nil {
		t.Fatal(err)
	}
	manhattan := 70.0
	if res.NetLength[0] < manhattan*0.9 || res.NetLength[0] > manhattan*1.4 {
		t.Errorf("routed length %.1f, want near Manhattan %.1f", res.NetLength[0], manhattan)
	}
	if res.TotalLength != res.NetLength[0] {
		t.Errorf("total %.1f != net length %.1f", res.TotalLength, res.NetLength[0])
	}
}

func TestRoutedAtLeastHPWLOnBenchmarks(t *testing.T) {
	for _, name := range []string{"Adder", "CC-OTA", "VGA"} {
		cs, err := testcircuits.ByName(name)
		if err != nil {
			t.Fatal(err)
		}
		n := cs.Netlist
		pr, err := core.Place(n, core.MethodPrev, core.Options{Seed: 3})
		if err != nil {
			t.Fatal(err)
		}
		res, err := Route(n, pr.Placement, Options{})
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		for e := range n.Nets {
			if len(n.Nets[e].Pins) < 2 {
				continue
			}
			hp := n.NetHPWL(pr.Placement, e)
			// Routed Steiner trees cannot beat the half-perimeter lower
			// bound by more than grid discretization.
			grid := math.Sqrt(n.Area(pr.Placement)) / 16
			if res.NetLength[e] < hp/2-grid {
				t.Errorf("%s net %s: routed %.1f far below half-HPWL %.1f",
					name, n.Nets[e].Name, res.NetLength[e], hp/2)
			}
		}
		if res.TotalLength <= 0 {
			t.Errorf("%s: no routed length", name)
		}
	}
}

func TestCongestionCausesDetours(t *testing.T) {
	// Many identical parallel nets through the same corridor: with tight
	// capacity and strong congestion pricing, later nets must detour, so
	// total length exceeds #nets × Manhattan.
	mk := func(name string) circuit.Device {
		return circuit.Device{Name: name, W: 1, H: 1,
			Pins: []circuit.Pin{{Name: "p", Offset: geom.Point{X: 0.5, Y: 0.5}}}}
	}
	n := &circuit.Netlist{Name: "congest"}
	const k = 12
	for i := 0; i < 2*k; i++ {
		n.Devices = append(n.Devices, mk("d"))
	}
	p := circuit.NewPlacement(n)
	for i := 0; i < k; i++ {
		// All left pins at the same spot; all right pins at the same spot.
		n.Nets = append(n.Nets, circuit.Net{
			Name: "n",
			Pins: []circuit.PinRef{{Device: i, Pin: 0}, {Device: k + i, Pin: 0}},
		})
		p.X[i], p.Y[i] = 2, 20
		p.X[k+i], p.Y[k+i] = 60, 20
	}
	res, err := Route(n, p, Options{GridCells: 32, Capacity: 2, CongestionWeight: 4})
	if err != nil {
		t.Fatal(err)
	}
	var minLen, maxLen float64 = math.Inf(1), 0
	for _, l := range res.NetLength {
		minLen = math.Min(minLen, l)
		maxLen = math.Max(maxLen, l)
	}
	if maxLen <= minLen {
		t.Errorf("congestion caused no detours: min %.1f max %.1f", minLen, maxLen)
	}
	if res.MaxUsage == 0 {
		t.Error("usage not tracked")
	}
}

func TestMultiPinTreeSharing(t *testing.T) {
	// A 3-pin net in an L: the Steiner tree should share the trunk, so the
	// tree is shorter than routing two independent 2-pin nets.
	mk := func(name string) circuit.Device {
		return circuit.Device{Name: name, W: 2, H: 2,
			Pins: []circuit.Pin{{Name: "p", Offset: geom.Point{X: 1, Y: 1}}}}
	}
	n := &circuit.Netlist{
		Name:    "steiner",
		Devices: []circuit.Device{mk("a"), mk("b"), mk("c")},
		Nets: []circuit.Net{{Name: "n", Pins: []circuit.PinRef{
			{Device: 0, Pin: 0}, {Device: 1, Pin: 0}, {Device: 2, Pin: 0}}}},
	}
	p := circuit.NewPlacement(n)
	p.X[0], p.Y[0] = 5, 5
	p.X[1], p.Y[1] = 45, 5
	p.X[2], p.Y[2] = 25, 35
	res, err := Route(n, p, Options{})
	if err != nil {
		t.Fatal(err)
	}
	indep := 40.0 + (20 + 30) // a-b plus c-to-midpoint style independent estimate
	if res.NetLength[0] >= indep*1.1 {
		t.Errorf("tree length %.1f shows no sharing (independent ≈ %.1f)", res.NetLength[0], indep)
	}
}

func TestRouteRejectsBadInput(t *testing.T) {
	n, p := pairNetlist(10, 10)
	p.X = p.X[:1]
	if _, err := Route(n, p, Options{}); err == nil {
		t.Error("accepted wrong-sized placement")
	}
}

func TestDeterministic(t *testing.T) {
	cs, _ := testcircuits.ByName("Adder")
	pr, err := core.Place(cs.Netlist, core.MethodPrev, core.Options{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	r1, err := Route(cs.Netlist, pr.Placement, Options{})
	if err != nil {
		t.Fatal(err)
	}
	r2, err := Route(cs.Netlist, pr.Placement, Options{})
	if err != nil {
		t.Fatal(err)
	}
	for e := range r1.NetLength {
		if r1.NetLength[e] != r2.NetLength[e] {
			t.Fatalf("net %d: nondeterministic routing", e)
		}
	}
}

func BenchmarkRouteCCOTA(b *testing.B) {
	cs, _ := testcircuits.ByName("CC-OTA")
	pr, err := core.Place(cs.Netlist, core.MethodPrev, core.Options{Seed: 1})
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Route(cs.Netlist, pr.Placement, Options{}); err != nil {
			b.Fatal(err)
		}
	}
}
