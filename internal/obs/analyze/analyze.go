// Package analyze reads the JSONL convergence traces the obs file sink
// writes (one obs.Event per line) and turns them into comparable reports:
// per-solver convergence curves, per-stage time attribution, SA acceptance
// trajectories, and an A-vs-B diff with regression thresholds. cmd/trace is
// the CLI over this package; CI runs it over the bench-smoke artifacts so a
// malformed trace or a quality/runtime regression fails the build instead
// of landing silently.
package analyze

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"math"
	"os"
	"sort"
	"strings"

	"repro/internal/obs"
)

// Trace is one parsed JSONL trace.
type Trace struct {
	Name    string // file name (or caller-assigned label)
	Events  []obs.Event
	Summary *obs.SummaryRecord // last summary event, nil if absent
}

// ReadFile parses the JSONL trace at path. Parsing is strict: any
// unparseable line is an error (a truncated or corrupt trace must not pass
// for a healthy one).
func ReadFile(path string) (*Trace, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	t, err := Read(f)
	if err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	t.Name = path
	return t, nil
}

// Read parses a JSONL event stream.
func Read(r io.Reader) (*Trace, error) {
	t := &Trace{}
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 8<<20)
	line := 0
	for sc.Scan() {
		line++
		raw := strings.TrimSpace(sc.Text())
		if raw == "" {
			continue
		}
		var e obs.Event
		if err := json.Unmarshal([]byte(raw), &e); err != nil {
			return nil, fmt.Errorf("line %d: %w", line, err)
		}
		if e.Kind == "" {
			return nil, fmt.Errorf("line %d: event without kind", line)
		}
		t.Events = append(t.Events, e)
		if e.Kind == obs.KindSummary {
			t.Summary = e.Summary
		}
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	return t, nil
}

// Check validates the structural invariants a healthy trace satisfies:
// non-empty, timestamps non-decreasing, every span_start matched by a
// span_end, and exactly one summary — as the final event. It returns the
// first violation.
func (t *Trace) Check() error {
	if len(t.Events) == 0 {
		return fmt.Errorf("empty trace")
	}
	open := map[string]int{}
	summaries := 0
	prevTS := math.Inf(-1)
	for i, e := range t.Events {
		if e.TS < prevTS {
			return fmt.Errorf("event %d: timestamp %.6f before predecessor %.6f", i, e.TS, prevTS)
		}
		prevTS = e.TS
		switch e.Kind {
		case obs.KindSpanStart:
			open[e.Span]++
		case obs.KindSpanEnd:
			open[e.Span]--
			if open[e.Span] < 0 {
				return fmt.Errorf("event %d: span %q ended without starting", i, e.Span)
			}
		case obs.KindSummary:
			summaries++
			if e.Summary == nil {
				return fmt.Errorf("event %d: summary event without payload", i)
			}
			if i != len(t.Events)-1 {
				return fmt.Errorf("event %d: summary is not the final event", i)
			}
		}
	}
	for span, n := range open {
		if n != 0 {
			return fmt.Errorf("span %q: %d start(s) never ended", span, n)
		}
	}
	if summaries != 1 {
		return fmt.Errorf("trace has %d summary events, want 1", summaries)
	}
	return nil
}

// CurvePoint samples one solver iteration.
type CurvePoint struct {
	Iter     int     `json:"n"`
	F        float64 `json:"f"`
	HPWL     float64 `json:"hpwl,omitempty"`
	Overflow float64 `json:"overflow,omitempty"`
}

// Curve is one solver's convergence trajectory, downsampled to at most
// MaxCurvePoints samples (first and last always kept).
type Curve struct {
	Solver     string       `json:"solver"`
	Iterations int          `json:"iterations"`
	FirstF     float64      `json:"first_f"`
	LastF      float64      `json:"last_f"`
	FirstHPWL  float64      `json:"first_hpwl,omitempty"`
	LastHPWL   float64      `json:"last_hpwl,omitempty"`
	Points     []CurvePoint `json:"points,omitempty"`
}

// MaxCurvePoints bounds each downsampled convergence curve.
const MaxCurvePoints = 64

// Stage is one span path's time attribution. SelfMS excludes direct
// children, so stages sum to (at most) the root's total without double
// counting.
type Stage struct {
	Path    string  `json:"path"`
	Count   int     `json:"count"`
	TotalMS float64 `json:"total_ms"`
	SelfMS  float64 `json:"self_ms"`
}

// SAPoint samples the annealer's cooling trajectory.
type SAPoint struct {
	Move       int     `json:"move"`
	Temp       float64 `json:"temp"`
	AcceptRate float64 `json:"accept_rate"`
	Best       float64 `json:"best"`
}

// SAStats summarizes the simulated-annealing progress samples.
type SAStats struct {
	Samples     int       `json:"samples"`
	Restarts    int       `json:"restarts"`
	FirstAccept float64   `json:"first_accept"`
	LastAccept  float64   `json:"last_accept"`
	BestCost    float64   `json:"best_cost"`
	Points      []SAPoint `json:"points,omitempty"`
}

// Report is the analysis of one trace.
type Report struct {
	Name   string  `json:"name"`
	Events int     `json:"events"`
	WallMS float64 `json:"wall_ms"`

	// FinalHPWL is the last reported exact HPWL across all solvers (the
	// value the run ended on); BestHPWL is the minimum ever reported.
	FinalHPWL float64 `json:"final_hpwl,omitempty"`
	BestHPWL  float64 `json:"best_hpwl,omitempty"`

	Curves []Curve  `json:"curves,omitempty"` // sorted by solver name
	Stages []Stage  `json:"stages,omitempty"` // sorted by path
	SA     *SAStats `json:"sa,omitempty"`

	Counters map[string]float64 `json:"counters,omitempty"`
	Gauges   map[string]float64 `json:"gauges,omitempty"`
	LPSolves int                `json:"lp_solves,omitempty"`
	ILPNodes int                `json:"ilp_nodes,omitempty"`
}

// Summarize reduces a trace to its Report.
func Summarize(t *Trace) *Report {
	rep := &Report{Name: t.Name, Events: len(t.Events)}
	bySolver := map[string][]CurvePoint{}
	var sa []SAPoint
	restarts := map[int]bool{}
	saFirst, saLast, saBest := 0.0, 0.0, math.Inf(1)
	saSeen := false
	for _, e := range t.Events {
		switch e.Kind {
		case obs.KindIter:
			it := e.Iter
			bySolver[it.Solver] = append(bySolver[it.Solver], CurvePoint{
				Iter: it.Iter, F: it.F, HPWL: it.HPWL, Overflow: it.Overflow,
			})
			if it.HPWL > 0 {
				rep.FinalHPWL = it.HPWL
				if rep.BestHPWL == 0 || it.HPWL < rep.BestHPWL {
					rep.BestHPWL = it.HPWL
				}
			}
		case obs.KindSA:
			s := e.SA
			sa = append(sa, SAPoint{Move: s.Move, Temp: s.Temp, AcceptRate: s.AcceptRate, Best: s.Best})
			restarts[s.Restart] = true
			if !saSeen {
				saFirst = s.AcceptRate
				saSeen = true
			}
			saLast = s.AcceptRate
			if s.Best < saBest {
				saBest = s.Best
			}
		case obs.KindLP:
			rep.LPSolves++
			rep.ILPNodes += e.LP.Nodes
		}
	}
	for solver, pts := range bySolver {
		c := Curve{Solver: solver, Iterations: len(pts), FirstF: pts[0].F, LastF: pts[len(pts)-1].F}
		for _, p := range pts {
			if p.HPWL > 0 {
				if c.FirstHPWL == 0 {
					c.FirstHPWL = p.HPWL
				}
				c.LastHPWL = p.HPWL
			}
		}
		c.Points = downsample(pts, MaxCurvePoints)
		rep.Curves = append(rep.Curves, c)
	}
	sort.Slice(rep.Curves, func(i, j int) bool { return rep.Curves[i].Solver < rep.Curves[j].Solver })
	if saSeen {
		rep.SA = &SAStats{
			Samples:     len(sa),
			Restarts:    len(restarts),
			FirstAccept: saFirst,
			LastAccept:  saLast,
			BestCost:    saBest,
			Points:      downsampleSA(sa, MaxCurvePoints),
		}
	}
	if t.Summary != nil {
		rep.WallMS = t.Summary.WallMS
		rep.Counters = t.Summary.Counters
		rep.Gauges = t.Summary.Gauges
		rep.Stages = stageTimes(t.Summary.Spans)
	}
	return rep
}

// stageTimes converts the summary's span totals into per-stage self times:
// each path's total minus its direct children's totals.
func stageTimes(spans map[string]obs.SpanStat) []Stage {
	childMS := map[string]float64{}
	for path, st := range spans {
		if i := strings.LastIndexByte(path, '/'); i >= 0 {
			childMS[path[:i]] += st.TotalMS
		}
	}
	out := make([]Stage, 0, len(spans))
	for path, st := range spans {
		out = append(out, Stage{
			Path:    path,
			Count:   st.Count,
			TotalMS: st.TotalMS,
			SelfMS:  st.TotalMS - childMS[path],
		})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Path < out[j].Path })
	return out
}

// downsample keeps at most n points, always retaining the first and last.
func downsample(pts []CurvePoint, n int) []CurvePoint {
	if len(pts) <= n {
		return pts
	}
	out := make([]CurvePoint, 0, n)
	// Even stride over len-1 intervals; the final point is pinned.
	for i := 0; i < n-1; i++ {
		out = append(out, pts[i*(len(pts)-1)/(n-1)])
	}
	return append(out, pts[len(pts)-1])
}

func downsampleSA(pts []SAPoint, n int) []SAPoint {
	if len(pts) <= n {
		return pts
	}
	out := make([]SAPoint, 0, n)
	for i := 0; i < n-1; i++ {
		out = append(out, pts[i*(len(pts)-1)/(n-1)])
	}
	return append(out, pts[len(pts)-1])
}
