package analyze

import (
	"strings"
	"testing"

	"repro/internal/obs"
)

const goodTrace = `{"ts":0,"kind":"span_start","span":"place"}
{"ts":0.001,"kind":"span_start","span":"place/gp"}
{"ts":0.002,"kind":"iter","span":"place/gp","iter":{"solver":"cg","n":0,"f":100,"hpwl":50,"overflow":0.8}}
{"ts":0.3,"kind":"iter","span":"place/gp","iter":{"solver":"cg","n":1,"f":90,"hpwl":45,"overflow":0.4}}
{"ts":0.5,"kind":"iter","span":"place/gp","iter":{"solver":"cg","n":2,"f":80,"hpwl":40,"overflow":0.1}}
{"ts":0.6,"kind":"span_end","span":"place/gp","dur_ms":599}
{"ts":0.62,"kind":"sa","span":"place","sa":{"restart":0,"move":100,"temp":5,"accept_rate":0.9,"cur":70,"best":70}}
{"ts":0.64,"kind":"sa","span":"place","sa":{"restart":0,"move":200,"temp":1,"accept_rate":0.2,"cur":66,"best":65}}
{"ts":0.7,"kind":"lp","span":"place","lp":{"solver":"ilp","rows":3,"cols":4,"nodes":7,"obj":1,"status":"optimal"}}
{"ts":0.9,"kind":"span_end","span":"place","dur_ms":900}
{"ts":0.91,"kind":"summary","summary":{"spans":{"place":{"count":1,"total_ms":900},"place/gp":{"count":1,"total_ms":599}},"events":11,"wall_ms":910}}
`

func parse(t *testing.T, s string) *Trace {
	t.Helper()
	tr, err := Read(strings.NewReader(s))
	if err != nil {
		t.Fatalf("Read: %v", err)
	}
	return tr
}

func TestReadAndCheckGoodTrace(t *testing.T) {
	tr := parse(t, goodTrace)
	if len(tr.Events) != 11 {
		t.Fatalf("got %d events, want 11", len(tr.Events))
	}
	if tr.Summary == nil || tr.Summary.WallMS != 910 {
		t.Fatalf("summary %+v", tr.Summary)
	}
	if err := tr.Check(); err != nil {
		t.Fatalf("Check: %v", err)
	}
}

func TestReadRejectsMalformedLine(t *testing.T) {
	if _, err := Read(strings.NewReader(`{"ts":0,"kind":"span_start"}` + "\n" + `{"ts":0.1,"ki`)); err == nil {
		t.Fatal("truncated JSON line accepted")
	}
	if _, err := Read(strings.NewReader(`{"ts":0}`)); err == nil {
		t.Fatal("event without kind accepted")
	}
}

func TestCheckViolations(t *testing.T) {
	cases := []struct {
		name, trace, wantErr string
	}{
		{"empty", "", "empty trace"},
		{"unbalanced span",
			`{"ts":0,"kind":"span_start","span":"place"}` + "\n" +
				`{"ts":0.1,"kind":"summary","summary":{"events":2,"wall_ms":100}}`,
			"never ended"},
		{"end without start",
			`{"ts":0,"kind":"span_end","span":"place"}`,
			"ended without starting"},
		{"no summary",
			`{"ts":0,"kind":"span_start","span":"place"}` + "\n" +
				`{"ts":0.1,"kind":"span_end","span":"place"}`,
			"0 summary events"},
		{"summary not last",
			`{"ts":0,"kind":"summary","summary":{"events":1,"wall_ms":1}}` + "\n" +
				`{"ts":0.1,"kind":"gauge","name":"x","value":1}`,
			"not the final event"},
		{"time travel",
			`{"ts":5,"kind":"gauge","name":"x","value":1}` + "\n" +
				`{"ts":1,"kind":"summary","summary":{"events":2,"wall_ms":1}}`,
			"before predecessor"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			tr := parse(t, tc.trace)
			err := tr.Check()
			if err == nil || !strings.Contains(err.Error(), tc.wantErr) {
				t.Errorf("Check = %v, want error containing %q", err, tc.wantErr)
			}
		})
	}
}

func TestSummarize(t *testing.T) {
	rep := Summarize(parse(t, goodTrace))
	if rep.FinalHPWL != 40 || rep.BestHPWL != 40 {
		t.Errorf("HPWL final %g best %g, want 40/40", rep.FinalHPWL, rep.BestHPWL)
	}
	if len(rep.Curves) != 1 || rep.Curves[0].Solver != "cg" {
		t.Fatalf("curves %+v", rep.Curves)
	}
	c := rep.Curves[0]
	if c.Iterations != 3 || c.FirstF != 100 || c.LastF != 80 || c.FirstHPWL != 50 || c.LastHPWL != 40 {
		t.Errorf("cg curve %+v", c)
	}
	if rep.SA == nil || rep.SA.Samples != 2 || rep.SA.FirstAccept != 0.9 || rep.SA.LastAccept != 0.2 || rep.SA.BestCost != 65 {
		t.Errorf("sa stats %+v", rep.SA)
	}
	if rep.LPSolves != 1 || rep.ILPNodes != 7 {
		t.Errorf("lp %d ilp nodes %d", rep.LPSolves, rep.ILPNodes)
	}
	// Stage self time: place owns 900 ms total, 599 ms of it inside gp.
	stages := map[string]Stage{}
	for _, s := range rep.Stages {
		stages[s.Path] = s
	}
	if got := stages["place"].SelfMS; got != 900-599 {
		t.Errorf("place self = %g, want %g", got, 900.0-599)
	}
	if got := stages["place/gp"].SelfMS; got != 599 {
		t.Errorf("gp self = %g, want 599", got)
	}
}

func TestDownsampleKeepsEndpoints(t *testing.T) {
	pts := make([]CurvePoint, 1000)
	for i := range pts {
		pts[i] = CurvePoint{Iter: i}
	}
	out := downsample(pts, MaxCurvePoints)
	if len(out) != MaxCurvePoints {
		t.Fatalf("len = %d, want %d", len(out), MaxCurvePoints)
	}
	if out[0].Iter != 0 || out[len(out)-1].Iter != 999 {
		t.Errorf("endpoints %d..%d, want 0..999", out[0].Iter, out[len(out)-1].Iter)
	}
	short := downsample(pts[:10], MaxCurvePoints)
	if len(short) != 10 {
		t.Errorf("short curve resampled to %d points", len(short))
	}
}

func TestDiffFlagsRegressions(t *testing.T) {
	a := &Report{Name: "a", FinalHPWL: 100, WallMS: 1000,
		Stages: []Stage{{Path: "place/gp", SelfMS: 500}, {Path: "place/tiny", SelfMS: 0.5}}}
	b := &Report{Name: "b", FinalHPWL: 105, WallMS: 1100,
		Stages: []Stage{{Path: "place/gp", SelfMS: 900}, {Path: "place/tiny", SelfMS: 2}}}
	d := Diff(a, b, DiffOptions{HPWLTol: 0.02, TimeTol: 0.25})

	byMetric := map[string]Delta{}
	for _, dl := range d.Deltas {
		byMetric[dl.Metric] = dl
	}
	if dl := byMetric["final_hpwl"]; !dl.Regression {
		t.Errorf("5%% HPWL increase not flagged: %+v", dl)
	}
	if dl := byMetric["wall_ms"]; dl.Regression {
		t.Errorf("10%% wall increase flagged at 25%% tol: %+v", dl)
	}
	if dl := byMetric["stage_self_ms:place/gp"]; !dl.Regression {
		t.Errorf("80%% stage increase not flagged: %+v", dl)
	}
	if _, ok := byMetric["stage_self_ms:place/tiny"]; ok {
		t.Error("sub-floor stage compared; noise floor not applied")
	}
	if got := len(d.Regressions()); got != 2 {
		t.Errorf("%d regressions, want 2", got)
	}

	// Identical reports never regress.
	if regs := Diff(a, a, DiffOptions{}).Regressions(); len(regs) != 0 {
		t.Errorf("self-diff regressed: %+v", regs)
	}
}

// TestRoundTripWithObsTypes pins the parse path to the real obs.Event JSON:
// encode events with the obs types, read them back through analyze.
func TestRoundTripWithObsTypes(t *testing.T) {
	var sb strings.Builder
	tr := obs.New(obs.NewJSONLSink(&sb))
	sp := tr.StartSpan("place")
	tr.IterEvent(obs.IterRecord{Solver: "nesterov", Iter: 0, F: 10, HPWL: 5})
	sp.End()
	if err := tr.Close(); err != nil {
		t.Fatal(err)
	}
	got := parse(t, sb.String())
	if err := got.Check(); err != nil {
		t.Fatalf("Check on real tracer output: %v", err)
	}
	rep := Summarize(got)
	if rep.FinalHPWL != 5 || len(rep.Curves) != 1 {
		t.Errorf("report %+v", rep)
	}
}
