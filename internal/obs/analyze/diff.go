package analyze

import (
	"fmt"
	"sort"
)

// DiffOptions sets the regression thresholds for Diff, as relative
// increases ((B-A)/A). Zero values select the defaults.
type DiffOptions struct {
	// HPWLTol is the allowed relative increase in final HPWL before the
	// diff counts a quality regression (default 0.02 = 2%).
	HPWLTol float64
	// TimeTol is the allowed relative increase in wall time and per-stage
	// self time (default 0.25 — wall clocks are noisy).
	TimeTol float64
	// MinStageMS ignores stages whose self time is below this floor in
	// both traces; relative deltas on microsecond stages are pure noise
	// (default 5 ms).
	MinStageMS float64
}

func (o *DiffOptions) defaults() {
	if o.HPWLTol == 0 {
		o.HPWLTol = 0.02
	}
	if o.TimeTol == 0 {
		o.TimeTol = 0.25
	}
	if o.MinStageMS == 0 {
		o.MinStageMS = 5
	}
}

// Delta compares one metric across the two traces. Rel is (B-A)/A; a
// positive Rel means B is larger (worse, for every metric diffed here).
type Delta struct {
	Metric     string  `json:"metric"`
	A          float64 `json:"a"`
	B          float64 `json:"b"`
	Rel        float64 `json:"rel"`
	Tol        float64 `json:"tol"`
	Regression bool    `json:"regression"`
}

// DiffReport is the A-vs-B comparison: every compared metric, with the
// ones beyond tolerance flagged.
type DiffReport struct {
	A      string  `json:"a"`
	B      string  `json:"b"`
	Deltas []Delta `json:"deltas"`
}

// Regressions returns the flagged subset.
func (d *DiffReport) Regressions() []Delta {
	var out []Delta
	for _, dl := range d.Deltas {
		if dl.Regression {
			out = append(out, dl)
		}
	}
	return out
}

// Diff compares run B against baseline A: final HPWL against HPWLTol, wall
// time and per-stage self time against TimeTol. Metrics absent from either
// side (a stage only one run has, a method without HPWL events) are
// skipped — the diff compares like with like.
func Diff(a, b *Report, opt DiffOptions) *DiffReport {
	opt.defaults()
	d := &DiffReport{A: a.Name, B: b.Name}
	add := func(metric string, av, bv, tol float64) {
		if av <= 0 || bv <= 0 {
			return
		}
		rel := (bv - av) / av
		d.Deltas = append(d.Deltas, Delta{
			Metric: metric, A: av, B: bv, Rel: rel, Tol: tol,
			Regression: rel > tol,
		})
	}
	add("final_hpwl", a.FinalHPWL, b.FinalHPWL, opt.HPWLTol)
	add("wall_ms", a.WallMS, b.WallMS, opt.TimeTol)

	bStages := map[string]Stage{}
	for _, s := range b.Stages {
		bStages[s.Path] = s
	}
	for _, sa := range a.Stages {
		sb, ok := bStages[sa.Path]
		if !ok || (sa.SelfMS < opt.MinStageMS && sb.SelfMS < opt.MinStageMS) {
			continue
		}
		add("stage_self_ms:"+sa.Path, sa.SelfMS, sb.SelfMS, opt.TimeTol)
	}
	sort.Slice(d.Deltas, func(i, j int) bool { return d.Deltas[i].Metric < d.Deltas[j].Metric })
	return d
}

// String renders one delta as the CLI prints it.
func (dl Delta) String() string {
	flag := "  "
	if dl.Regression {
		flag = "!!"
	}
	return fmt.Sprintf("%s %-28s %12.4g -> %12.4g  %+7.2f%% (tol %+.0f%%)",
		flag, dl.Metric, dl.A, dl.B, 100*dl.Rel, 100*dl.Tol)
}
