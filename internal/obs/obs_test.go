package obs

import (
	"bytes"
	"encoding/json"
	"errors"
	"strings"
	"testing"
	"time"
)

// emitOneOfEach drives a tracer through every event kind.
func emitOneOfEach(t *Tracer) {
	sp := t.StartSpan("gp")
	t.IterEvent(IterRecord{Solver: "nesterov", Iter: 0, F: 12.5, Grad: 3.25, Step: 0.125,
		HPWL: 100.5, Overflow: 0.75, Lambda: 1e-4, Sym: 0.5,
		GradWL: 1.5, GradDensity: 0.25, GradSym: 0.125, GradArea: 0.0625, GradExtra: 0.03125})
	t.SAEvent(SARecord{Restart: 1, Move: 200, Temp: 0.5, AcceptRate: 0.25, Cur: 42.5, Best: 40})
	t.LPEvent(LPRecord{Solver: "lp", Label: "compaction-x", Rows: 12, Cols: 8, Pivots: 17, Obj: 3.5, Status: "optimal"})
	t.Count("gp.iterations", 64)
	t.Gauge("gp.final_hpwl", 99.5)
	sp.End()
}

// TestJSONLRoundTrip checks that every line the JSONL sink writes decodes
// into an Event that re-encodes to the exact same bytes — the trace format
// is a fixed point of encoding/json.
func TestJSONLRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	tr := New(NewJSONLSink(&buf))
	emitOneOfEach(tr)
	if err := tr.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}

	lines := strings.Split(strings.TrimRight(buf.String(), "\n"), "\n")
	// span_start, iter, sa, lp, gauge, span_end, summary.
	if len(lines) != 7 {
		t.Fatalf("got %d JSONL lines, want 7:\n%s", len(lines), buf.String())
	}
	kinds := []string{KindSpanStart, KindIter, KindSA, KindLP, KindGauge, KindSpanEnd, KindSummary}
	for i, line := range lines {
		var e Event
		if err := json.Unmarshal([]byte(line), &e); err != nil {
			t.Fatalf("line %d does not parse: %v\n%s", i, err, line)
		}
		if e.Kind != kinds[i] {
			t.Errorf("line %d kind = %q, want %q", i, e.Kind, kinds[i])
		}
		re, err := json.Marshal(&e)
		if err != nil {
			t.Fatalf("re-encoding line %d: %v", i, err)
		}
		if string(re) != line {
			t.Errorf("line %d round-trip mismatch:\n wrote %s\n again %s", i, line, re)
		}
	}

	// The typed payloads must survive the trip intact (all values above are
	// dyadic rationals, so float equality is exact).
	var it Event
	if err := json.Unmarshal([]byte(lines[1]), &it); err != nil {
		t.Fatal(err)
	}
	want := IterRecord{Solver: "nesterov", Iter: 0, F: 12.5, Grad: 3.25, Step: 0.125,
		HPWL: 100.5, Overflow: 0.75, Lambda: 1e-4, Sym: 0.5,
		GradWL: 1.5, GradDensity: 0.25, GradSym: 0.125, GradArea: 0.0625, GradExtra: 0.03125}
	if it.Iter == nil || *it.Iter != want {
		t.Errorf("iter payload = %+v, want %+v", it.Iter, &want)
	}
	if it.Span != "gp" {
		t.Errorf("iter event span = %q, want %q", it.Span, "gp")
	}
}

// TestSpanNesting checks span paths, duration monotonicity, and stack
// unwinding for out-of-order ends.
func TestSpanNesting(t *testing.T) {
	sink := &MemorySink{}
	tr := New(sink)

	outer := tr.StartSpan("place")
	inner := tr.StartSpan("gp")
	time.Sleep(2 * time.Millisecond)
	inner.End()
	inner.End() // idempotent
	second := tr.StartSpan("detailed")
	time.Sleep(time.Millisecond)
	outer.End() // out of order: must unwind "detailed" too
	second.End()

	starts := sink.ByKind(KindSpanStart)
	wantPaths := []string{"place", "place/gp", "place/detailed"}
	if len(starts) != len(wantPaths) {
		t.Fatalf("got %d span starts, want %d", len(starts), len(wantPaths))
	}
	for i, e := range starts {
		if e.Span != wantPaths[i] {
			t.Errorf("span start %d path = %q, want %q", i, e.Span, wantPaths[i])
		}
	}

	ends := map[string]Event{}
	for _, e := range sink.ByKind(KindSpanEnd) {
		ends[e.Span] = e
	}
	if len(ends) != 3 {
		t.Fatalf("got %d span ends, want 3 (idempotent End must not re-emit)", len(ends))
	}
	if d := ends["place/gp"].DurMS; d < 1 {
		t.Errorf("inner span duration %.3f ms, want >= 1 (it slept 2 ms)", d)
	}
	if ends["place"].DurMS < ends["place/gp"].DurMS {
		t.Errorf("outer span (%.3f ms) shorter than nested inner (%.3f ms)",
			ends["place"].DurMS, ends["place/gp"].DurMS)
	}

	// After the out-of-order unwind, new spans must start at the root.
	fresh := tr.StartSpan("sa")
	fresh.End()
	all := sink.ByKind(KindSpanStart)
	if got := all[len(all)-1].Span; got != "sa" {
		t.Errorf("post-unwind span path = %q, want %q", got, "sa")
	}

	// Event timestamps never decrease.
	prev := -1.0
	for i, e := range sink.Events {
		if e.TS < prev {
			t.Fatalf("event %d timestamp %.9f decreased below %.9f", i, e.TS, prev)
		}
		prev = e.TS
	}
}

// TestSummaryAggregates checks counters, gauges, and span statistics in the
// final summary event.
func TestSummaryAggregates(t *testing.T) {
	sink := &MemorySink{}
	tr := New(sink)
	for i := 0; i < 3; i++ {
		sp := tr.StartSpan("gp")
		tr.Count("gp.iterations", 10)
		sp.End()
	}
	tr.Gauge("gp.final_hpwl", 7)
	tr.Gauge("gp.final_hpwl", 9) // gauges keep the last value
	if err := tr.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}

	sums := sink.ByKind(KindSummary)
	if len(sums) != 1 {
		t.Fatalf("got %d summary events, want 1", len(sums))
	}
	sum := sums[0].Summary
	if got := sum.Counters["gp.iterations"]; got != 30 {
		t.Errorf("counter gp.iterations = %g, want 30", got)
	}
	if got := sum.Gauges["gp.final_hpwl"]; got != 9 {
		t.Errorf("gauge gp.final_hpwl = %g, want 9", got)
	}
	st := sum.Spans["gp"]
	if st.Count != 3 {
		t.Errorf("span gp count = %d, want 3", st.Count)
	}
	if st.TotalMS < 0 {
		t.Errorf("span gp total %.3f ms is negative", st.TotalMS)
	}
}

// TestNilTracerSafe calls every instrumented-site entry point on a nil
// tracer; any panic fails the test.
func TestNilTracerSafe(t *testing.T) {
	var tr *Tracer
	if tr.Enabled() {
		t.Error("nil tracer reports Enabled")
	}
	sp := tr.StartSpan("gp")
	sp.End()
	(*Span)(nil).End()
	tr.IterEvent(IterRecord{Solver: "nesterov"})
	tr.SAEvent(SARecord{})
	tr.LPEvent(LPRecord{})
	tr.Count("x", 1)
	tr.Gauge("x", 1)
	if s := tr.Summary(); s.Events != 0 {
		t.Errorf("nil tracer summary has %d events", s.Events)
	}
	if err := tr.Close(); err != nil {
		t.Errorf("nil tracer Close: %v", err)
	}
}

// failWriter fails every write after the first n bytes.
type failWriter struct{ budget int }

func (w *failWriter) Write(p []byte) (int, error) {
	if w.budget <= 0 {
		return 0, errors.New("disk full")
	}
	w.budget -= len(p)
	return len(p), nil
}

// TestJSONLSinkStickyError checks a write failure surfaces from Close and
// does not panic mid-run.
func TestJSONLSinkStickyError(t *testing.T) {
	sink := NewJSONLSink(&failWriter{budget: 1})
	tr := New(sink)
	for i := 0; i < 100; i++ {
		tr.IterEvent(IterRecord{Solver: "cg", Iter: i})
	}
	if err := tr.Close(); err == nil {
		t.Fatal("Close returned nil after write failures")
	}
}

// TestProgressSinkCadence checks the -v sink prints every Nth iteration and
// renders the summary.
func TestProgressSinkCadence(t *testing.T) {
	var buf bytes.Buffer
	tr := New(NewProgressSink(&buf, 10))
	sp := tr.StartSpan("gp")
	for i := 0; i < 25; i++ {
		tr.IterEvent(IterRecord{Solver: "nesterov", Iter: i, F: float64(100 - i)})
	}
	sp.End()
	if err := tr.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	out := buf.String()
	for _, want := range []string{"iter 0 ", "iter 10 ", "iter 20 ", ">> gp", "<< gp", "run summary"} {
		if !strings.Contains(out, want) {
			t.Errorf("progress output missing %q:\n%s", want, out)
		}
	}
	for _, banned := range []string{"iter 1 ", "iter 5 ", "iter 24 "} {
		if strings.Contains(out, banned) {
			t.Errorf("progress output contains off-cadence line %q:\n%s", banned, out)
		}
	}
}
