package obs

import (
	"context"
	"sync"
	"testing"
	"time"
)

func TestStreamSinkReplayAndTail(t *testing.T) {
	s := NewStreamSink()
	s.Emit(Event{Kind: KindGauge, Name: "a"})
	s.Emit(Event{Kind: KindGauge, Name: "b"})

	// A late subscriber replays history from cursor 0.
	batch, done, _ := s.After(0)
	if len(batch) != 2 || done {
		t.Fatalf("After(0): %d events done=%v, want 2 false", len(batch), done)
	}
	if batch[0].Name != "a" || batch[1].Name != "b" {
		t.Errorf("history out of order: %+v", batch)
	}

	// The cursor advances past consumed events.
	batch, _, wake := s.After(2)
	if len(batch) != 0 {
		t.Fatalf("After(2): %d events, want 0", len(batch))
	}

	// A new emission closes the wake channel and is visible at the cursor.
	s.Emit(Event{Kind: KindGauge, Name: "c"})
	select {
	case <-wake:
	case <-time.After(time.Second):
		t.Fatal("wake channel not closed on Emit")
	}
	batch, _, _ = s.After(2)
	if len(batch) != 1 || batch[0].Name != "c" {
		t.Errorf("After(2) post-emit: %+v", batch)
	}
}

func TestStreamSinkClose(t *testing.T) {
	s := NewStreamSink()
	s.Emit(Event{Kind: KindGauge, Name: "a"})
	_, _, wake := s.After(1)
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	select {
	case <-wake:
	case <-time.After(time.Second):
		t.Fatal("wake channel not closed on Close")
	}
	if _, done, _ := s.After(1); !done {
		t.Error("After does not report done after Close")
	}
	// Close is idempotent and post-close emissions are dropped.
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	s.Emit(Event{Kind: KindGauge, Name: "late"})
	if s.Len() != 1 {
		t.Errorf("post-close Emit changed length to %d", s.Len())
	}
}

func TestStreamSinkCursorClamping(t *testing.T) {
	s := NewStreamSink()
	s.Emit(Event{Kind: KindGauge})
	if batch, _, _ := s.After(-5); len(batch) != 1 {
		t.Errorf("negative cursor: %d events, want 1", len(batch))
	}
	if batch, _, _ := s.After(99); len(batch) != 0 {
		t.Errorf("past-end cursor: %d events, want 0", len(batch))
	}
}

// TestStreamSinkConcurrentReaders runs the documented reader loop from
// several goroutines against a live emitter and checks every reader sees
// the complete, ordered stream.
func TestStreamSinkConcurrentReaders(t *testing.T) {
	const events = 500
	const readers = 4
	s := NewStreamSink()
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()

	var wg sync.WaitGroup
	results := make([][]Event, readers)
	for r := 0; r < readers; r++ {
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			cur := 0
			for {
				batch, done, wake := s.After(cur)
				results[r] = append(results[r], batch...)
				cur += len(batch)
				if len(batch) == 0 {
					if done {
						return
					}
					select {
					case <-wake:
					case <-ctx.Done():
						return
					}
				}
			}
		}(r)
	}

	for i := 0; i < events; i++ {
		s.Emit(Event{Kind: KindIter, Iter: &IterRecord{Iter: i}})
	}
	s.Close()
	wg.Wait()

	for r := 0; r < readers; r++ {
		if len(results[r]) != events {
			t.Fatalf("reader %d saw %d events, want %d", r, len(results[r]), events)
		}
		for i, e := range results[r] {
			if e.Iter.Iter != i {
				t.Fatalf("reader %d: event %d has iter %d (out of order)", r, i, e.Iter.Iter)
			}
		}
	}
}

// TestTracerWithStreamSink checks the sink composes with the Tracer the way
// the placement service wires it: Close flushes a final summary event.
func TestTracerWithStreamSink(t *testing.T) {
	s := NewStreamSink()
	trc := New(s)
	sp := trc.StartSpan("stage")
	trc.Count("ops", 2)
	sp.End()
	if err := trc.Close(); err != nil {
		t.Fatal(err)
	}
	batch, done, _ := s.After(0)
	if !done {
		t.Error("sink not closed by tracer Close")
	}
	last := batch[len(batch)-1]
	if last.Kind != KindSummary || last.Summary == nil {
		t.Errorf("last event %+v, want a summary", last)
	}
	if last.Summary.Counters["ops"] != 2 {
		t.Errorf("summary counters %+v", last.Summary.Counters)
	}
}
