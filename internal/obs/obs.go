// Package obs is the repository's observability layer: a lightweight,
// stdlib-only tracer that records named spans (wall-clock timings per
// pipeline stage: global placement, legalization, detailed placement, GNN
// training, routing), typed per-iteration solver events (Nesterov/CG
// descent, simulated annealing, LP/ILP solves, Adam epochs), and
// counters/gauges with a final run summary.
//
// Events flow to pluggable sinks: a JSONL file sink for machine-readable
// convergence traces, an in-memory sink for tests, and a human-readable
// progress sink for stderr. A nil *Tracer is valid everywhere and costs a
// single pointer comparison at each instrumented site, so hot loops pay
// nothing when telemetry is off.
//
// Telemetry is observation-only: the tracer never mutates solver state and
// draws no randomness, so a traced run produces bit-identical placements to
// an untraced one at the same seed.
package obs

import (
	"sort"
	"strings"
	"sync"
	"time"
)

// Event kinds, stored in Event.Kind.
const (
	KindSpanStart = "span_start"
	KindSpanEnd   = "span_end"
	KindIter      = "iter" // analytical-solver iteration (Nesterov, CG, Adam epoch, GP stage)
	KindSA        = "sa"   // simulated-annealing progress sample
	KindLP        = "lp"   // one LP or ILP solve
	KindGauge     = "gauge"
	KindSummary   = "summary"
)

// Event is one telemetry record — exactly one JSONL line in the file sink.
// Kind selects which of the optional typed payloads is present.
type Event struct {
	TS    float64 `json:"ts"`             // seconds since the tracer started
	Kind  string  `json:"kind"`           // one of the Kind* constants
	Span  string  `json:"span,omitempty"` // slash-joined path of open spans
	DurMS float64 `json:"dur_ms,omitempty"`

	Iter *IterRecord `json:"iter,omitempty"`
	SA   *SARecord   `json:"sa,omitempty"`
	LP   *LPRecord   `json:"lp,omitempty"`

	Name  string  `json:"name,omitempty"`  // gauge name
	Value float64 `json:"value,omitempty"` // gauge value

	Summary *SummaryRecord `json:"summary,omitempty"`
}

// IterRecord is one iteration of an analytical solver. The base fields
// (Solver, Iter, F) are always set; the remaining fields are filled by the
// emitting stage when it can compute them cheaply: nlopt reports step
// length and gradient norm, the global placers add HPWL, density overflow,
// the density multiplier λ, the symmetry penalty, and the L2 norms of each
// gradient component of the objective (the force balance of Eq. 3).
type IterRecord struct {
	Solver string  `json:"solver"` // "nesterov", "cg", "adam", "eplace-gp", "prev-epoch"
	Iter   int     `json:"n"`
	F      float64 `json:"f"` // objective value

	Grad float64 `json:"grad,omitempty"` // gradient norm before the step
	Step float64 `json:"step,omitempty"` // accepted step length

	HPWL     float64 `json:"hpwl,omitempty"`     // exact HPWL of the current iterate
	Overflow float64 `json:"overflow,omitempty"` // density overflow ratio
	Lambda   float64 `json:"lambda,omitempty"`   // density multiplier λ (β for [11])
	Sym      float64 `json:"sym,omitempty"`      // symmetry penalty value

	GradWL      float64 `json:"g_wl,omitempty"`    // wirelength gradient norm
	GradDensity float64 `json:"g_den,omitempty"`   // λ-scaled density gradient norm
	GradSym     float64 `json:"g_sym,omitempty"`   // τ-scaled symmetry gradient norm
	GradArea    float64 `json:"g_area,omitempty"`  // η-scaled area gradient norm
	GradExtra   float64 `json:"g_extra,omitempty"` // α-scaled performance gradient norm
}

// SARecord is a progress sample of the simulated-annealing placer: the
// cooling state and cost trajectory at a configurable move cadence.
type SARecord struct {
	Restart    int     `json:"restart"`
	Move       int     `json:"move"`
	Temp       float64 `json:"temp"`
	AcceptRate float64 `json:"accept_rate"` // acceptance rate since the previous sample
	Cur        float64 `json:"cur"`         // current cost
	Best       float64 `json:"best"`        // best cost so far (across restarts)
}

// LPRecord describes one completed LP or ILP solve.
type LPRecord struct {
	Solver string `json:"solver"`          // "lp" or "ilp"
	Label  string `json:"label,omitempty"` // caller-assigned purpose, e.g. "compaction"
	Rows   int    `json:"rows"`
	Cols   int    `json:"cols"`
	Pivots int    `json:"pivots,omitempty"` // simplex pivots (LP)
	Nodes  int    `json:"nodes,omitempty"`  // branch-and-bound nodes (ILP)

	Obj    float64 `json:"obj"`
	Status string  `json:"status"`
}

// SpanStat aggregates every completed span sharing one path.
type SpanStat struct {
	Count   int     `json:"count"`
	TotalMS float64 `json:"total_ms"`
}

// SummaryRecord is the final run report emitted by Close.
type SummaryRecord struct {
	Counters map[string]float64  `json:"counters,omitempty"`
	Gauges   map[string]float64  `json:"gauges,omitempty"`
	Spans    map[string]SpanStat `json:"spans,omitempty"`
	Events   int                 `json:"events"`
	WallMS   float64             `json:"wall_ms"`
}

// ChildMS folds the summary's span statistics into per-stage totals: the
// total milliseconds of each span nested directly under parent, keyed by
// the child's own name ("gp", "detailed", "sa" under "place"). Deeper
// descendants are excluded — their time is already inside their ancestor's
// total. The benchmark harness uses this to attribute runtime to pipeline
// stages.
func (s SummaryRecord) ChildMS(parent string) map[string]float64 {
	out := map[string]float64{}
	prefix := parent + "/"
	for path, st := range s.Spans {
		rest, ok := strings.CutPrefix(path, prefix)
		if !ok || strings.Contains(rest, "/") {
			continue
		}
		out[rest] += st.TotalMS
	}
	return out
}

// Sink receives events from a Tracer. Sinks are invoked under the tracer's
// lock, so implementations need no synchronization of their own.
type Sink interface {
	Emit(e Event)
	Close() error
}

// Tracer is the telemetry hub threaded through the placement pipeline. All
// methods are safe on a nil receiver (they do nothing), which is how
// instrumented packages run untraced at zero cost.
type Tracer struct {
	mu        sync.Mutex
	sinks     []Sink
	start     time.Time
	stack     []string
	counters  map[string]float64
	gauges    map[string]float64
	spanStats map[string]SpanStat
	events    int
}

// New creates a Tracer emitting to the given sinks. With no sinks the
// tracer still aggregates counters and span statistics (useful for tests);
// callers that want telemetry fully off should pass a nil *Tracer instead.
func New(sinks ...Sink) *Tracer {
	return &Tracer{
		sinks:     sinks,
		start:     time.Now(),
		counters:  map[string]float64{},
		gauges:    map[string]float64{},
		spanStats: map[string]SpanStat{},
	}
}

// Enabled reports whether the tracer records anything; instrumented sites
// use it to skip building records whose fields are not free to compute.
func (t *Tracer) Enabled() bool { return t != nil }

// emitLocked stamps and fans out an event. Callers hold t.mu.
func (t *Tracer) emitLocked(e Event, at time.Time) {
	e.TS = at.Sub(t.start).Seconds()
	if e.Span == "" && len(t.stack) > 0 {
		e.Span = strings.Join(t.stack, "/")
	}
	t.events++
	for _, s := range t.sinks {
		s.Emit(e)
	}
}

// Span is an open timed region. End is idempotent and nil-safe.
type Span struct {
	t     *Tracer
	path  string
	start time.Time
	ended bool
}

// StartSpan opens a named span nested under the currently open spans and
// emits a span_start event. The returned Span's End emits span_end with
// the wall-clock duration.
func (t *Tracer) StartSpan(name string) *Span {
	if t == nil {
		return nil
	}
	now := time.Now()
	t.mu.Lock()
	t.stack = append(t.stack, name)
	path := strings.Join(t.stack, "/")
	t.emitLocked(Event{Kind: KindSpanStart, Span: path}, now)
	t.mu.Unlock()
	return &Span{t: t, path: path, start: now}
}

// End closes the span, emitting its duration and folding it into the
// summary statistics. Spans closed out of order unwind the open-span stack
// to their own frame.
func (s *Span) End() {
	if s == nil || s.ended {
		return
	}
	s.ended = true
	t := s.t
	now := time.Now()
	durMS := now.Sub(s.start).Seconds() * 1e3
	t.mu.Lock()
	for i := len(t.stack); i > 0; i-- {
		if strings.Join(t.stack[:i], "/") == s.path {
			t.stack = t.stack[:i-1]
			break
		}
	}
	st := t.spanStats[s.path]
	st.Count++
	st.TotalMS += durMS
	t.spanStats[s.path] = st
	t.emitLocked(Event{Kind: KindSpanEnd, Span: s.path, DurMS: durMS}, now)
	t.mu.Unlock()
}

// IterEvent emits one solver-iteration record.
func (t *Tracer) IterEvent(r IterRecord) {
	if t == nil {
		return
	}
	now := time.Now()
	t.mu.Lock()
	t.emitLocked(Event{Kind: KindIter, Iter: &r}, now)
	t.mu.Unlock()
}

// SAEvent emits one simulated-annealing progress sample.
func (t *Tracer) SAEvent(r SARecord) {
	if t == nil {
		return
	}
	now := time.Now()
	t.mu.Lock()
	t.emitLocked(Event{Kind: KindSA, SA: &r}, now)
	t.mu.Unlock()
}

// LPEvent emits one LP/ILP solve record.
func (t *Tracer) LPEvent(r LPRecord) {
	if t == nil {
		return
	}
	now := time.Now()
	t.mu.Lock()
	t.emitLocked(Event{Kind: KindLP, LP: &r}, now)
	t.mu.Unlock()
}

// Count adds delta to a named counter. Counters are reported only in the
// final summary, so counting in hot loops writes no events.
func (t *Tracer) Count(name string, delta float64) {
	if t == nil {
		return
	}
	t.mu.Lock()
	t.counters[name] += delta
	t.mu.Unlock()
}

// Gauge sets a named gauge to v and emits a gauge event.
func (t *Tracer) Gauge(name string, v float64) {
	if t == nil {
		return
	}
	now := time.Now()
	t.mu.Lock()
	t.gauges[name] = v
	t.emitLocked(Event{Kind: KindGauge, Name: name, Value: v}, now)
	t.mu.Unlock()
}

// Summary returns a copy of the aggregated run statistics so far.
func (t *Tracer) Summary() SummaryRecord {
	if t == nil {
		return SummaryRecord{}
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.summaryLocked()
}

func (t *Tracer) summaryLocked() SummaryRecord {
	s := SummaryRecord{
		Counters: map[string]float64{},
		Gauges:   map[string]float64{},
		Spans:    map[string]SpanStat{},
		Events:   t.events,
		WallMS:   time.Since(t.start).Seconds() * 1e3,
	}
	for k, v := range t.counters {
		s.Counters[k] = v
	}
	for k, v := range t.gauges {
		s.Gauges[k] = v
	}
	for k, v := range t.spanStats {
		s.Spans[k] = v
	}
	return s
}

// Close emits the final summary event and closes every sink, returning the
// first sink error. Closing a nil tracer is a no-op.
func (t *Tracer) Close() error {
	if t == nil {
		return nil
	}
	now := time.Now()
	t.mu.Lock()
	sum := t.summaryLocked()
	t.emitLocked(Event{Kind: KindSummary, Summary: &sum}, now)
	var first error
	for _, s := range t.sinks {
		if err := s.Close(); err != nil && first == nil {
			first = err
		}
	}
	t.sinks = nil
	t.mu.Unlock()
	return first
}

// sortedKeys returns the map's keys in lexical order (deterministic
// human-readable reports).
func sortedKeys[V any](m map[string]V) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}
