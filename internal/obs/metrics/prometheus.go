package metrics

import (
	"bufio"
	"io"
	"math"
	"sort"
	"strconv"
	"strings"
)

// WritePrometheus renders every family in the Prometheus text exposition
// format (version 0.0.4): a # HELP and # TYPE line per family, then one
// sample line per series — histograms expand into cumulative _bucket
// series (le labels, ending at +Inf) plus _sum and _count. Families are
// sorted by name and series by label values, so identical registry state
// renders identical bytes. A nil registry writes nothing.
func (r *Registry) WritePrometheus(w io.Writer) error {
	if r == nil {
		return nil
	}
	bw := bufio.NewWriter(w)
	r.mu.Lock()
	names := make([]string, 0, len(r.families))
	for name := range r.families {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		f := r.families[name]
		if f.help != "" {
			bw.WriteString("# HELP ")
			bw.WriteString(f.name)
			bw.WriteByte(' ')
			bw.WriteString(escapeHelp(f.help))
			bw.WriteByte('\n')
		}
		bw.WriteString("# TYPE ")
		bw.WriteString(f.name)
		bw.WriteByte(' ')
		bw.WriteString(f.typ)
		bw.WriteByte('\n')
		for _, key := range f.order {
			s := f.series[key]
			switch f.typ {
			case typeHistogram:
				writeHistogram(bw, f, s)
			default:
				writeSample(bw, f.name, "", f.keys, s.labelVals, "", math.Float64frombits(s.val.Load()))
			}
		}
	}
	r.mu.Unlock()
	return bw.Flush()
}

// writeHistogram renders one histogram series: cumulative buckets, sum,
// count. Bucket counts are loaded once so the three derived views agree
// even while observations race the scrape.
func writeHistogram(bw *bufio.Writer, f *family, s *series) {
	var cum uint64
	for i, ub := range f.buckets {
		cum += s.counts[i].Load()
		writeSample(bw, f.name, "_bucket", f.keys, s.labelVals, formatLe(ub), float64(cum))
	}
	cum += s.inf.Load()
	writeSample(bw, f.name, "_bucket", f.keys, s.labelVals, "+Inf", float64(cum))
	writeSample(bw, f.name, "_sum", f.keys, s.labelVals, "", math.Float64frombits(s.sum.Load()))
	writeSample(bw, f.name, "_count", f.keys, s.labelVals, "", float64(cum))
}

// writeSample renders one line: name[suffix]{labels,le} value.
func writeSample(bw *bufio.Writer, name, suffix string, keys, vals []string, le string, v float64) {
	bw.WriteString(name)
	bw.WriteString(suffix)
	if len(keys) > 0 || le != "" {
		bw.WriteByte('{')
		for i, k := range keys {
			if i > 0 {
				bw.WriteByte(',')
			}
			bw.WriteString(k)
			bw.WriteString(`="`)
			bw.WriteString(escapeLabel(vals[i]))
			bw.WriteByte('"')
		}
		if le != "" {
			if len(keys) > 0 {
				bw.WriteByte(',')
			}
			bw.WriteString(`le="`)
			bw.WriteString(le)
			bw.WriteByte('"')
		}
		bw.WriteByte('}')
	}
	bw.WriteByte(' ')
	bw.WriteString(formatValue(v))
	bw.WriteByte('\n')
}

// formatValue renders a sample value the way Prometheus expects: shortest
// round-trip float, with integers staying integral.
func formatValue(v float64) string {
	if v == math.Trunc(v) && math.Abs(v) < 1e15 {
		return strconv.FormatFloat(v, 'f', -1, 64)
	}
	return strconv.FormatFloat(v, 'g', -1, 64)
}

// formatLe renders a bucket bound; bounds are config constants, so the
// shortest representation is stable across scrapes.
func formatLe(ub float64) string {
	return strconv.FormatFloat(ub, 'g', -1, 64)
}

var labelEscaper = strings.NewReplacer(`\`, `\\`, `"`, `\"`, "\n", `\n`)
var helpEscaper = strings.NewReplacer(`\`, `\\`, "\n", `\n`)

func escapeLabel(s string) string { return labelEscaper.Replace(s) }
func escapeHelp(s string) string  { return helpEscaper.Replace(s) }
