// Package metrics is a stdlib-only, concurrency-safe metrics registry for
// production scraping: counters, gauges, and fixed-bucket histograms with
// labels, exposed in the Prometheus text format (WritePrometheus).
//
// It complements internal/obs: the tracer answers "what did this one run
// do" (a complete event log), the registry answers "what is this process
// doing" (cheap aggregates a scraper polls). The placement service keeps
// one Registry for its whole lifetime; solvers feed it per-stage duration
// histograms so latency distributions — not just totals — are visible per
// method, circuit-size class, and pipeline stage.
//
// Design constraints, in order:
//
//  1. Zero cost when off. Every handle type (*Counter, *Gauge, *Histogram)
//     is nil-safe: methods on a nil receiver do nothing, and a nil
//     *Registry hands out nil handles. Instrumented code therefore never
//     branches on "is metrics enabled" — it just calls Observe/Add/Set,
//     paying one pointer comparison when metrics are off. This is the same
//     contract obs.Tracer established for tracing.
//  2. Allocation-free hot path. Handles are resolved once (name + label
//     values interned under the registry lock); after that, Counter.Add,
//     Gauge.Set, and Histogram.Observe touch only atomics — no maps, no
//     locks, no allocation — so per-iteration solver kernels can record
//     timings without disturbing the run they measure.
//  3. Deterministic exposition. Families are sorted by name and series by
//     label values, so two scrapes of identical state render identical
//     bytes (golden-testable).
//
// Like the tracer, the registry is observation-only: it never mutates
// solver state and draws no randomness, so metered runs stay byte-identical
// to unmetered ones at the same seed.
package metrics

import (
	"fmt"
	"math"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
)

// A Registry holds metric families. The zero value is not usable; call
// New. A nil *Registry is valid everywhere and hands out nil handles, so
// library code can accept an optional registry without branching.
type Registry struct {
	mu       sync.Mutex
	families map[string]*family
}

// New returns an empty registry.
func New() *Registry {
	return &Registry{families: map[string]*family{}}
}

// metric type names (Prometheus TYPE line values).
const (
	typeCounter   = "counter"
	typeGauge     = "gauge"
	typeHistogram = "histogram"
)

// family is one named metric with a fixed type, help string, label-key set,
// and (for histograms) bucket layout, holding one series per label-value
// combination.
type family struct {
	name    string
	help    string
	typ     string
	keys    []string  // label keys, in registration order
	buckets []float64 // histogram upper bounds (ascending, no +Inf)

	series map[string]*series // key: "\x1f"-joined label values
	order  []string           // sorted series keys, maintained on insert
}

// series is one label-value combination of a family. The numeric state is
// all atomics so handle methods never take the registry lock.
type series struct {
	labelVals []string

	val atomic.Uint64 // counter/gauge value (float64 bits)

	counts []atomic.Uint64 // histogram: per-bucket counts (non-cumulative)
	inf    atomic.Uint64   // histogram: observations above the last bound
	sum    atomic.Uint64   // histogram: sum of observations (float64 bits)
}

// Counter is a monotonically increasing value. Nil-safe.
type Counter struct{ s *series }

// Gauge is a value that can go up and down. Nil-safe.
type Gauge struct{ s *series }

// Histogram counts observations into fixed buckets. Nil-safe; Observe is
// allocation-free.
type Histogram struct {
	s       *series
	buckets []float64
}

// labelPairs validates a variadic key, value, key, value... list.
func labelPairs(labels []string) ([]string, []string) {
	if len(labels)%2 != 0 {
		panic(fmt.Sprintf("metrics: odd label list %q", labels))
	}
	keys := make([]string, 0, len(labels)/2)
	vals := make([]string, 0, len(labels)/2)
	for i := 0; i < len(labels); i += 2 {
		keys = append(keys, labels[i])
		vals = append(vals, labels[i+1])
	}
	return keys, vals
}

// lookup interns the (family, series) pair, creating either as needed, and
// enforces that a name is never reused with a different type, label-key
// set, or bucket layout (Prometheus forbids all three).
func (r *Registry) lookup(name, help, typ string, buckets []float64, labels []string) (*family, *series) {
	keys, vals := labelPairs(labels)
	r.mu.Lock()
	defer r.mu.Unlock()
	f := r.families[name]
	if f == nil {
		f = &family{
			name: name, help: help, typ: typ,
			keys:    keys,
			buckets: append([]float64(nil), buckets...),
			series:  map[string]*series{},
		}
		r.families[name] = f
	} else {
		if f.typ != typ {
			panic(fmt.Sprintf("metrics: %s registered as %s, reused as %s", name, f.typ, typ))
		}
		if !equalStrings(f.keys, keys) {
			panic(fmt.Sprintf("metrics: %s registered with labels %v, reused with %v", name, f.keys, keys))
		}
		if typ == typeHistogram && !equalFloats(f.buckets, buckets) {
			panic(fmt.Sprintf("metrics: %s registered with buckets %v, reused with %v", name, f.buckets, buckets))
		}
	}
	key := strings.Join(vals, "\x1f")
	s := f.series[key]
	if s == nil {
		s = &series{labelVals: vals}
		if typ == typeHistogram {
			s.counts = make([]atomic.Uint64, len(f.buckets))
		}
		f.series[key] = s
		i := sort.SearchStrings(f.order, key)
		f.order = append(f.order, "")
		copy(f.order[i+1:], f.order[i:])
		f.order[i] = key
	}
	return f, s
}

// Counter returns the counter series for the given label values, creating
// it on first use. labels is a key, value, key, value... list; every series
// of one name must use the same keys. A nil registry returns nil.
func (r *Registry) Counter(name, help string, labels ...string) *Counter {
	if r == nil {
		return nil
	}
	_, s := r.lookup(name, help, typeCounter, nil, labels)
	return &Counter{s: s}
}

// Gauge returns the gauge series for the given label values. A nil
// registry returns nil.
func (r *Registry) Gauge(name, help string, labels ...string) *Gauge {
	if r == nil {
		return nil
	}
	_, s := r.lookup(name, help, typeGauge, nil, labels)
	return &Gauge{s: s}
}

// Histogram returns the histogram series for the given label values.
// buckets are ascending upper bounds (the +Inf bucket is implicit); every
// series of one name must use identical buckets. A nil registry returns
// nil.
func (r *Registry) Histogram(name, help string, buckets []float64, labels ...string) *Histogram {
	if r == nil {
		return nil
	}
	for i := 1; i < len(buckets); i++ {
		if buckets[i] <= buckets[i-1] {
			panic(fmt.Sprintf("metrics: %s buckets not ascending: %v", name, buckets))
		}
	}
	f, s := r.lookup(name, help, typeHistogram, buckets, labels)
	// Handles share the family's canonical bucket slice (immutable after
	// creation), so every series of one name bins identically.
	return &Histogram{s: s, buckets: f.buckets}
}

// Add increments the counter by d (d < 0 panics — counters only go up).
// No-op on a nil handle.
func (c *Counter) Add(d float64) {
	if c == nil {
		return
	}
	if d < 0 {
		panic("metrics: Counter.Add with negative delta")
	}
	addFloat(&c.s.val, d)
}

// Inc is Add(1).
func (c *Counter) Inc() { c.Add(1) }

// Value returns the counter's current value (0 on nil).
func (c *Counter) Value() float64 {
	if c == nil {
		return 0
	}
	return math.Float64frombits(c.s.val.Load())
}

// Set stores v. No-op on a nil handle.
func (g *Gauge) Set(v float64) {
	if g == nil {
		return
	}
	g.s.val.Store(math.Float64bits(v))
}

// Add adjusts the gauge by d (either sign). No-op on a nil handle.
func (g *Gauge) Add(d float64) {
	if g == nil {
		return
	}
	addFloat(&g.s.val, d)
}

// Value returns the gauge's current value (0 on nil).
func (g *Gauge) Value() float64 {
	if g == nil {
		return 0
	}
	return math.Float64frombits(g.s.val.Load())
}

// Observe records one value: a binary search over the fixed bounds, two
// atomic adds, no allocation. No-op on a nil handle.
func (h *Histogram) Observe(v float64) {
	if h == nil {
		return
	}
	// sort.SearchFloat64s allocates nothing, but an inlined binary search
	// keeps the hot path free of interface conversions too.
	lo, hi := 0, len(h.buckets)
	for lo < hi {
		mid := int(uint(lo+hi) >> 1)
		if h.buckets[mid] < v {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	if lo < len(h.buckets) {
		h.s.counts[lo].Add(1)
	} else {
		h.s.inf.Add(1)
	}
	addFloat(&h.s.sum, v)
}

// Count returns the total number of observations (0 on nil).
func (h *Histogram) Count() uint64 {
	if h == nil {
		return 0
	}
	var n uint64
	for i := range h.s.counts {
		n += h.s.counts[i].Load()
	}
	return n + h.s.inf.Load()
}

// Sum returns the sum of all observed values (0 on nil).
func (h *Histogram) Sum() float64 {
	if h == nil {
		return 0
	}
	return math.Float64frombits(h.s.sum.Load())
}

// addFloat atomically adds d to a float64 stored as uint64 bits.
func addFloat(a *atomic.Uint64, d float64) {
	for {
		old := a.Load()
		if a.CompareAndSwap(old, math.Float64bits(math.Float64frombits(old)+d)) {
			return
		}
	}
}

// DefBuckets is the classic Prometheus latency layout in seconds,
// 5 ms–10 s: right for job-level latencies.
var DefBuckets = []float64{.005, .01, .025, .05, .1, .25, .5, 1, 2.5, 5, 10}

// KernelBuckets covers the per-call latencies of the placement kernels
// (wirelength gradient, density rasterization, Poisson solve):
// 10 µs–500 ms in roughly 1-2.5-5 steps.
var KernelBuckets = []float64{
	10e-6, 25e-6, 50e-6, 100e-6, 250e-6, 500e-6,
	1e-3, 2.5e-3, 5e-3, 10e-3, 25e-3, 50e-3, 100e-3, 250e-3, 500e-3,
}

// KernelHistogram resolves one series of the shared placer_kernel_seconds
// family: per-call latency of a named hot-path kernel, labeled with the
// caller's constant labels plus "kernel". Centralized so every solver
// publishes into one family with one help string and one key set (a
// registry rejects mismatched reuse). A nil registry returns a nil, no-op
// handle.
func KernelHistogram(r *Registry, labels []string, kernel string) *Histogram {
	return r.Histogram("placer_kernel_seconds",
		"Per-call latency of the placement hot-path kernels.",
		KernelBuckets,
		append(append([]string(nil), labels...), "kernel", kernel)...)
}

// ExpBuckets returns n ascending buckets starting at start, each factor
// times the previous — the standard way to build a custom latency layout.
func ExpBuckets(start, factor float64, n int) []float64 {
	if start <= 0 || factor <= 1 || n < 1 {
		panic("metrics: ExpBuckets needs start > 0, factor > 1, n >= 1")
	}
	out := make([]float64, n)
	v := start
	for i := range out {
		out[i] = v
		v *= factor
	}
	return out
}

// SizeClass buckets a device count into the coarse circuit-size label the
// service and solvers share ("xs" ≤ 32, "s" ≤ 128, "m" ≤ 512, "l" ≤ 2048,
// "xl" above). Coarse on purpose: label cardinality is a product, and a
// scraper can always sum classes away.
func SizeClass(devices int) string {
	switch {
	case devices <= 32:
		return "xs"
	case devices <= 128:
		return "s"
	case devices <= 512:
		return "m"
	case devices <= 2048:
		return "l"
	default:
		return "xl"
	}
}

func equalStrings(a, b []string) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

func equalFloats(a, b []float64) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}
