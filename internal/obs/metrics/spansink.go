package metrics

import (
	"strings"

	"repro/internal/obs"
)

// SpanSink bridges a run's obs span events into a Registry: every span_end
// becomes one Observe on a per-stage duration histogram, labeled with the
// stage name plus whatever constant labels the sink was built with (the
// service uses method and circuit-size class). Attached alongside a job's
// streaming sink, it turns the tracer's existing spans — place, gp, sa,
// detailed, refine passes — into scrapeable latency distributions without
// the solvers knowing the registry exists.
//
// Stage names are normalized to bound label cardinality: only the last
// path segment is kept, and a trailing "-<digits>" enumeration (restart-3,
// refine-1) is stripped, so all refinement passes share one series.
type SpanSink struct {
	reg    *Registry
	name   string
	labels []string

	hists map[string]*Histogram // per normalized stage, resolved lazily
}

// NewSpanSink returns a sink observing span durations into registry r as
// histogram name (DefBuckets, in seconds) with the given constant labels
// (key, value pairs) plus a "stage" label. A nil registry yields a sink
// that drops everything, preserving the zero-cost-when-nil contract.
func NewSpanSink(r *Registry, name string, labels ...string) *SpanSink {
	return &SpanSink{reg: r, name: name, labels: labels, hists: map[string]*Histogram{}}
}

// Emit observes span_end durations; every other event kind is ignored.
// Sinks run under the tracer's lock, so the handle cache needs no
// synchronization.
func (s *SpanSink) Emit(e obs.Event) {
	if s.reg == nil || e.Kind != obs.KindSpanEnd {
		return
	}
	stage := StageName(e.Span)
	h, ok := s.hists[stage]
	if !ok {
		h = s.reg.Histogram(s.name, "Pipeline stage wall time by span.", DefBuckets,
			append(append([]string(nil), s.labels...), "stage", stage)...)
		s.hists[stage] = h
	}
	h.Observe(e.DurMS / 1e3)
}

// Close is a no-op; the registry outlives the run.
func (s *SpanSink) Close() error { return nil }

// StageName normalizes a span path to a bounded-cardinality stage label:
// the last path segment with any trailing "-<digits>" enumeration removed.
func StageName(path string) string {
	if i := strings.LastIndexByte(path, '/'); i >= 0 {
		path = path[i+1:]
	}
	if i := strings.LastIndexByte(path, '-'); i >= 0 && i < len(path)-1 {
		digits := true
		for _, c := range path[i+1:] {
			if c < '0' || c > '9' {
				digits = false
				break
			}
		}
		if digits {
			path = path[:i]
		}
	}
	if path == "" {
		return "unknown"
	}
	return path
}
