package metrics

import (
	"strings"
	"sync"
	"testing"

	"repro/internal/obs"
)

// TestHistogramBucketBoundaries pins the binning convention: Prometheus
// buckets are upper-inclusive (le), values above the last bound land in
// +Inf, and exact boundary values count into their own bucket.
func TestHistogramBucketBoundaries(t *testing.T) {
	r := New()
	h := r.Histogram("lat", "", []float64{1, 2, 5})
	for _, v := range []float64{0, 1, 1.0000001, 2, 4.9, 5, 5.1, 100} {
		h.Observe(v)
	}
	want := []uint64{2, 2, 2} // (-inf,1]: {0,1}; (1,2]: {1.0000001,2}; (2,5]: {4.9,5}
	for i, w := range want {
		if got := h.s.counts[i].Load(); got != w {
			t.Errorf("bucket %d: count %d, want %d", i, got, w)
		}
	}
	if got := h.s.inf.Load(); got != 2 { // {5.1, 100}
		t.Errorf("+Inf bucket: count %d, want 2", got)
	}
	if got, want := h.Count(), uint64(8); got != want {
		t.Errorf("Count() = %d, want %d", got, want)
	}
	if got, want := h.Sum(), 0+1+1.0000001+2+4.9+5+5.1+100; got != want {
		t.Errorf("Sum() = %g, want %g", got, want)
	}
}

// TestWritePrometheusGolden locks the exposition byte format: HELP/TYPE
// lines, sorted families, sorted series, cumulative buckets with +Inf,
// _sum/_count, and label escaping.
func TestWritePrometheusGolden(t *testing.T) {
	r := New()
	r.Counter("jobs_total", "Jobs by terminal state.", "state", "done").Add(3)
	r.Counter("jobs_total", "Jobs by terminal state.", "state", "failed").Inc()
	r.Gauge("queue_depth", "Jobs waiting.").Set(2)
	h := r.Histogram("solve_seconds", "Solve latency.", []float64{0.1, 1}, "method", "sa")
	h.Observe(0.05)
	h.Observe(0.5)
	h.Observe(0.5)
	h.Observe(30)
	r.Gauge("odd", "line one\nline two", "k", `va"l\ue`).Set(1.5)

	var sb strings.Builder
	if err := r.WritePrometheus(&sb); err != nil {
		t.Fatalf("WritePrometheus: %v", err)
	}
	const want = `# HELP jobs_total Jobs by terminal state.
# TYPE jobs_total counter
jobs_total{state="done"} 3
jobs_total{state="failed"} 1
# HELP odd line one\nline two
# TYPE odd gauge
odd{k="va\"l\\ue"} 1.5
# HELP queue_depth Jobs waiting.
# TYPE queue_depth gauge
queue_depth 2
# HELP solve_seconds Solve latency.
# TYPE solve_seconds histogram
solve_seconds_bucket{method="sa",le="0.1"} 1
solve_seconds_bucket{method="sa",le="1"} 3
solve_seconds_bucket{method="sa",le="+Inf"} 4
solve_seconds_sum{method="sa"} 31.05
solve_seconds_count{method="sa"} 4
`
	if got := sb.String(); got != want {
		t.Errorf("exposition mismatch:\n--- got ---\n%s--- want ---\n%s", got, want)
	}
}

// TestNilSafety exercises the zero-cost-when-nil contract end to end: a
// nil registry hands out nil handles, and every handle method is a no-op.
func TestNilSafety(t *testing.T) {
	var r *Registry
	c := r.Counter("c", "")
	g := r.Gauge("g", "")
	h := r.Histogram("h", "", DefBuckets)
	if c != nil || g != nil || h != nil {
		t.Fatalf("nil registry handed out non-nil handles: %v %v %v", c, g, h)
	}
	c.Add(1)
	c.Inc()
	g.Set(2)
	g.Add(-1)
	h.Observe(0.5)
	if c.Value() != 0 || g.Value() != 0 || h.Count() != 0 || h.Sum() != 0 {
		t.Error("nil handles reported nonzero state")
	}
	if err := r.WritePrometheus(&strings.Builder{}); err != nil {
		t.Errorf("nil WritePrometheus: %v", err)
	}
	s := NewSpanSink(r, "x")
	s.Emit(obs.Event{Kind: obs.KindSpanEnd, Span: "place/gp", DurMS: 10})
}

// TestHandleReuseValidation: a name reused with a different type, label
// keys, or bucket layout must panic loudly rather than corrupt exposition.
func TestHandleReuseValidation(t *testing.T) {
	mustPanic := func(name string, f func()) {
		t.Helper()
		defer func() {
			if recover() == nil {
				t.Errorf("%s: no panic", name)
			}
		}()
		f()
	}
	r := New()
	r.Counter("a", "", "k", "v")
	mustPanic("type change", func() { r.Gauge("a", "") })
	mustPanic("label change", func() { r.Counter("a", "", "other", "v") })
	r.Histogram("h", "", []float64{1, 2})
	mustPanic("bucket change", func() { r.Histogram("h", "", []float64{1, 3}) })
	mustPanic("odd labels", func() { r.Counter("b", "", "k") })
	mustPanic("unsorted buckets", func() { r.Histogram("h2", "", []float64{2, 1}) })
	mustPanic("negative counter", func() { r.Counter("c", "").Add(-1) })
}

// TestConcurrentObserve hammers one histogram and one counter from many
// goroutines; the totals must be exact (atomics, not racy adds).
func TestConcurrentObserve(t *testing.T) {
	r := New()
	h := r.Histogram("h", "", []float64{0.5})
	c := r.Counter("c", "")
	const workers, each = 8, 10000
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < each; i++ {
				h.Observe(0.25)
				c.Inc()
			}
		}()
	}
	wg.Wait()
	if got, want := h.Count(), uint64(workers*each); got != want {
		t.Errorf("histogram count %d, want %d", got, want)
	}
	if got, want := c.Value(), float64(workers*each); got != want {
		t.Errorf("counter %g, want %g", got, want)
	}
}

// TestObserveAllocationFree proves the hot-path contract: once the handle
// is resolved, Observe/Add/Set allocate nothing.
func TestObserveAllocationFree(t *testing.T) {
	r := New()
	h := r.Histogram("h", "", KernelBuckets)
	c := r.Counter("c", "")
	g := r.Gauge("g", "")
	if n := testing.AllocsPerRun(1000, func() { h.Observe(0.003) }); n != 0 {
		t.Errorf("Histogram.Observe allocates %.1f per call, want 0", n)
	}
	if n := testing.AllocsPerRun(1000, func() { c.Add(1) }); n != 0 {
		t.Errorf("Counter.Add allocates %.1f per call, want 0", n)
	}
	if n := testing.AllocsPerRun(1000, func() { g.Set(3) }); n != 0 {
		t.Errorf("Gauge.Set allocates %.1f per call, want 0", n)
	}
}

// BenchmarkHistogramObserve is the CI-visible form of the allocation-free
// claim (run with -benchmem: 0 allocs/op).
func BenchmarkHistogramObserve(b *testing.B) {
	r := New()
	h := r.Histogram("h", "", KernelBuckets)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		h.Observe(float64(i%1000) * 1e-6)
	}
}

// BenchmarkHistogramObserveParallel measures contention across goroutines
// (the service case: many jobs observing into shared families).
func BenchmarkHistogramObserveParallel(b *testing.B) {
	r := New()
	h := r.Histogram("h", "", DefBuckets)
	b.ReportAllocs()
	b.RunParallel(func(pb *testing.PB) {
		v := 0.001
		for pb.Next() {
			h.Observe(v)
			v += 0.001
			if v > 10 {
				v = 0.001
			}
		}
	})
}

func TestSpanSinkBridgesSpanEnds(t *testing.T) {
	r := New()
	trc := obs.New(NewSpanSink(r, "stage_seconds", "method", "eplace-a"))
	outer := trc.StartSpan("place")
	trc.StartSpan("gp").End()
	trc.StartSpan("refine-0").End()
	trc.StartSpan("refine-1").End()
	outer.End()
	trc.Close()

	var sb strings.Builder
	r.WritePrometheus(&sb)
	out := sb.String()
	for _, want := range []string{
		`stage_seconds_count{method="eplace-a",stage="gp"} 1`,
		`stage_seconds_count{method="eplace-a",stage="refine"} 2`,
		`stage_seconds_count{method="eplace-a",stage="place"} 1`,
	} {
		if !strings.Contains(out, want) {
			t.Errorf("exposition missing %q:\n%s", want, out)
		}
	}
}

func TestStageName(t *testing.T) {
	cases := map[string]string{
		"place/gp":                "gp",
		"place/detailed/refine-3": "refine",
		"sa/restart-12":           "restart",
		"gnn-train":               "gnn-train", // "train" is not digits: name kept
		"":                        "unknown",
		"poisson":                 "poisson",
	}
	for in, want := range cases {
		if got := StageName(in); got != want {
			t.Errorf("StageName(%q) = %q, want %q", in, got, want)
		}
	}
}

func TestSizeClass(t *testing.T) {
	cases := map[int]string{1: "xs", 32: "xs", 33: "s", 128: "s", 129: "m", 512: "m", 513: "l", 2048: "l", 2049: "xl"}
	for n, want := range cases {
		if got := SizeClass(n); got != want {
			t.Errorf("SizeClass(%d) = %q, want %q", n, got, want)
		}
	}
}

func TestExpBuckets(t *testing.T) {
	got := ExpBuckets(0.5, 2, 4)
	want := []float64{0.5, 1, 2, 4}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("ExpBuckets = %v, want %v", got, want)
		}
	}
}
