package obs

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
)

// JSONLSink writes one JSON object per line through a buffered writer. If
// the underlying writer is an io.Closer it is closed by Close. Write
// errors are sticky: the first one is remembered and returned by Close, so
// a full run never aborts because the trace disk filled up.
type JSONLSink struct {
	bw  *bufio.Writer
	enc *json.Encoder
	c   io.Closer
	err error
}

// NewJSONLSink wraps w in a buffered JSONL encoder.
func NewJSONLSink(w io.Writer) *JSONLSink {
	bw := bufio.NewWriter(w)
	s := &JSONLSink{bw: bw, enc: json.NewEncoder(bw)}
	if c, ok := w.(io.Closer); ok {
		s.c = c
	}
	return s
}

// Emit encodes e as one JSONL line.
func (s *JSONLSink) Emit(e Event) {
	if s.err != nil {
		return
	}
	s.err = s.enc.Encode(&e)
}

// Close flushes the buffer and closes the underlying writer if it is a
// Closer, returning the first error seen.
func (s *JSONLSink) Close() error {
	ferr := s.bw.Flush()
	var cerr error
	if s.c != nil {
		cerr = s.c.Close()
	}
	if s.err != nil {
		return s.err
	}
	if ferr != nil {
		return ferr
	}
	return cerr
}

// MemorySink records every event in order; tests use it to assert on
// emitted telemetry without touching the filesystem.
type MemorySink struct {
	Events []Event
}

// Emit appends e.
func (s *MemorySink) Emit(e Event) { s.Events = append(s.Events, e) }

// Close is a no-op.
func (s *MemorySink) Close() error { return nil }

// ByKind returns the recorded events of one kind, in emission order.
func (s *MemorySink) ByKind(kind string) []Event {
	var out []Event
	for _, e := range s.Events {
		if e.Kind == kind {
			out = append(out, e)
		}
	}
	return out
}

// ProgressSink renders a human-readable progress feed: span open/close
// lines, every Nth iteration/SA sample (N = Every), every LP solve and
// gauge, and a multi-line report for the final summary. It is the sink
// behind the command-line -v flag and writes to W (normally stderr).
type ProgressSink struct {
	W     io.Writer
	Every int // cadence for iter/sa events (default 100)

	seen map[string]int
}

// NewProgressSink returns a progress sink writing to w, printing every
// every-th iteration event per (span, solver) stream; every <= 0 selects
// the default cadence of 100.
func NewProgressSink(w io.Writer, every int) *ProgressSink {
	if every <= 0 {
		every = 100
	}
	return &ProgressSink{W: w, Every: every, seen: map[string]int{}}
}

// Emit renders e if its kind and cadence call for it.
func (s *ProgressSink) Emit(e Event) {
	switch e.Kind {
	case KindSpanStart:
		fmt.Fprintf(s.W, "[%9.3fs] >> %s\n", e.TS, e.Span)
	case KindSpanEnd:
		fmt.Fprintf(s.W, "[%9.3fs] << %s (%.1f ms)\n", e.TS, e.Span, e.DurMS)
	case KindIter:
		key := e.Span + "|" + e.Iter.Solver
		n := s.seen[key]
		s.seen[key] = n + 1
		if n%s.Every != 0 {
			return
		}
		r := e.Iter
		fmt.Fprintf(s.W, "[%9.3fs] %s %s iter %d f=%.6g", e.TS, e.Span, r.Solver, r.Iter, r.F)
		if r.HPWL != 0 {
			fmt.Fprintf(s.W, " hpwl=%.6g", r.HPWL)
		}
		if r.Overflow != 0 {
			fmt.Fprintf(s.W, " ovf=%.3f", r.Overflow)
		}
		if r.Lambda != 0 {
			fmt.Fprintf(s.W, " lambda=%.3g", r.Lambda)
		}
		if r.Step != 0 {
			fmt.Fprintf(s.W, " step=%.3g", r.Step)
		}
		fmt.Fprintln(s.W)
	case KindSA:
		key := e.Span + "|sa"
		n := s.seen[key]
		s.seen[key] = n + 1
		if n%s.Every != 0 {
			return
		}
		r := e.SA
		fmt.Fprintf(s.W, "[%9.3fs] %s sa restart %d move %d T=%.3g acc=%.2f cur=%.6g best=%.6g\n",
			e.TS, e.Span, r.Restart, r.Move, r.Temp, r.AcceptRate, r.Cur, r.Best)
	case KindLP:
		r := e.LP
		fmt.Fprintf(s.W, "[%9.3fs] %s %s", e.TS, e.Span, r.Solver)
		if r.Label != "" {
			fmt.Fprintf(s.W, "(%s)", r.Label)
		}
		fmt.Fprintf(s.W, " %dx%d", r.Rows, r.Cols)
		if r.Pivots > 0 {
			fmt.Fprintf(s.W, " pivots=%d", r.Pivots)
		}
		if r.Nodes > 0 {
			fmt.Fprintf(s.W, " nodes=%d", r.Nodes)
		}
		fmt.Fprintf(s.W, " obj=%.6g %s\n", r.Obj, r.Status)
	case KindGauge:
		fmt.Fprintf(s.W, "[%9.3fs] %s = %.6g\n", e.TS, e.Name, e.Value)
	case KindSummary:
		s.summary(e)
	}
}

func (s *ProgressSink) summary(e Event) {
	sum := e.Summary
	fmt.Fprintf(s.W, "--- run summary (%.1f ms wall, %d events) ---\n", sum.WallMS, sum.Events)
	for _, k := range sortedKeys(sum.Spans) {
		st := sum.Spans[k]
		fmt.Fprintf(s.W, "  span %-28s x%-4d %10.1f ms\n", k, st.Count, st.TotalMS)
	}
	for _, k := range sortedKeys(sum.Counters) {
		fmt.Fprintf(s.W, "  counter %-25s %12.6g\n", k, sum.Counters[k])
	}
	for _, k := range sortedKeys(sum.Gauges) {
		fmt.Fprintf(s.W, "  gauge %-27s %12.6g\n", k, sum.Gauges[k])
	}
}

// Close is a no-op; the sink does not own W.
func (s *ProgressSink) Close() error { return nil }
