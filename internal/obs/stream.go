package obs

import "sync"

// StreamSink is the channel-backed sink behind live event streaming (the
// placement service's /v1/jobs/{id}/events endpoint): it records every
// event and lets any number of concurrent readers tail the stream with a
// cursor. A reader that subscribes late replays the full history first, so
// no event is ever dropped, and readers block on a wake channel — never on
// the emitting solver — so a slow or stalled consumer cannot hold up a
// placement run.
type StreamSink struct {
	mu     sync.Mutex
	events []Event
	closed bool
	wake   chan struct{} // closed and replaced on every append / Close
}

// NewStreamSink returns an empty, open stream sink.
func NewStreamSink() *StreamSink {
	return &StreamSink{wake: make(chan struct{})}
}

// Emit appends e and wakes all blocked readers. Events never mutate after
// emission, so readers may consume returned slices without copying.
func (s *StreamSink) Emit(e Event) {
	s.mu.Lock()
	if !s.closed {
		s.events = append(s.events, e)
		close(s.wake)
		s.wake = make(chan struct{})
	}
	s.mu.Unlock()
}

// Close marks the stream complete and wakes all blocked readers; readers
// see closed=true once they have drained the history. Close is idempotent.
func (s *StreamSink) Close() error {
	s.mu.Lock()
	if !s.closed {
		s.closed = true
		close(s.wake)
	}
	s.mu.Unlock()
	return nil
}

// After returns the events past cursor (the count of events the reader has
// already consumed), whether the stream is complete, and a channel that is
// closed on the next append or Close. The reader loop is:
//
//	cur := 0
//	for {
//		batch, done, wake := sink.After(cur)
//		... write batch ...
//		cur += len(batch)
//		if len(batch) == 0 {
//			if done {
//				return
//			}
//			select {
//			case <-wake:
//			case <-ctx.Done():
//				return
//			}
//		}
//	}
func (s *StreamSink) After(cursor int) (batch []Event, done bool, wake <-chan struct{}) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if cursor < 0 {
		cursor = 0
	}
	if cursor > len(s.events) {
		cursor = len(s.events)
	}
	return s.events[cursor:len(s.events):len(s.events)], s.closed, s.wake
}

// Len returns the number of events emitted so far.
func (s *StreamSink) Len() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.events)
}
