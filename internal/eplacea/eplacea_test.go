package eplacea

import (
	"math"
	"testing"

	"repro/internal/circuit"
	"repro/internal/geom"
)

// testNetlist builds an OTA-like netlist with a symmetry group and a
// handful of nets (12 devices).
func testNetlist() *circuit.Netlist {
	mk := func(name string, ty circuit.DeviceType, w, h float64) circuit.Device {
		return circuit.Device{
			Name: name, Type: ty, W: w, H: h,
			Pins: []circuit.Pin{
				{Name: "a", Offset: geom.Point{X: w * 0.25, Y: h / 2}},
				{Name: "b", Offset: geom.Point{X: w * 0.75, Y: h / 2}},
			},
		}
	}
	n := &circuit.Netlist{
		Name: "gp-test",
		Devices: []circuit.Device{
			mk("M1", circuit.NMOS, 6, 4), mk("M2", circuit.NMOS, 6, 4),
			mk("M3", circuit.PMOS, 5, 3), mk("M4", circuit.PMOS, 5, 3),
			mk("MT", circuit.NMOS, 8, 3),
			mk("B1", circuit.NMOS, 4, 4), mk("B2", circuit.Cap, 7, 5),
			mk("B3", circuit.Cap, 7, 5), mk("R1", circuit.Res, 3, 6),
			mk("R2", circuit.Res, 3, 6), mk("M5", circuit.NMOS, 5, 5),
			mk("M6", circuit.PMOS, 4, 3),
		},
		Nets: []circuit.Net{
			{Name: "n1", Pins: []circuit.PinRef{{Device: 0, Pin: 0}, {Device: 5, Pin: 1}, {Device: 10, Pin: 0}}},
			{Name: "n2", Pins: []circuit.PinRef{{Device: 1, Pin: 1}, {Device: 5, Pin: 0}}},
			{Name: "n3", Pins: []circuit.PinRef{{Device: 0, Pin: 1}, {Device: 2, Pin: 0}, {Device: 6, Pin: 0}}},
			{Name: "n4", Pins: []circuit.PinRef{{Device: 1, Pin: 0}, {Device: 3, Pin: 1}, {Device: 7, Pin: 1}}},
			{Name: "n5", Pins: []circuit.PinRef{{Device: 0, Pin: 0}, {Device: 1, Pin: 1}, {Device: 4, Pin: 0}}},
			{Name: "n6", Pins: []circuit.PinRef{{Device: 8, Pin: 0}, {Device: 9, Pin: 1}, {Device: 10, Pin: 1}}},
			{Name: "n7", Pins: []circuit.PinRef{{Device: 11, Pin: 0}, {Device: 6, Pin: 1}, {Device: 2, Pin: 1}}},
			{Name: "n8", Pins: []circuit.PinRef{{Device: 11, Pin: 1}, {Device: 7, Pin: 0}, {Device: 3, Pin: 0}}},
		},
		SymGroups: []circuit.SymmetryGroup{
			{Pairs: [][2]int{{0, 1}, {2, 3}}, Self: []int{4}},
		},
	}
	return n
}

func TestPlaceSpreadsDevices(t *testing.T) {
	n := testNetlist()
	res, err := Place(n, Options{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if res.Overflow > 0.25 {
		t.Errorf("final overflow %.3f too high", res.Overflow)
	}
	// Exact pairwise overlap should be a small fraction of device area.
	ov := n.TotalOverlap(res.Placement)
	if frac := ov / n.TotalDeviceArea(); frac > 0.15 {
		t.Errorf("residual overlap fraction %.3f too high after GP", frac)
	}
	if res.Iterations == 0 {
		t.Error("no iterations recorded")
	}
	if res.HPWL <= 0 {
		t.Error("HPWL not recorded")
	}
}

func TestPlaceDeterministic(t *testing.T) {
	n := testNetlist()
	r1, err := Place(n, Options{Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	r2, err := Place(n, Options{Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	for i := range r1.Placement.X {
		if r1.Placement.X[i] != r2.Placement.X[i] || r1.Placement.Y[i] != r2.Placement.Y[i] {
			t.Fatalf("same seed diverged at device %d", i)
		}
	}
}

func TestSoftSymmetryApproximatelyHolds(t *testing.T) {
	n := testNetlist()
	res, err := Place(n, Options{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	p := res.Placement
	g := n.SymGroups[0]
	// Soft symmetry: pairs should be close to mirrored, within a couple of
	// device widths (detailed placement snaps them exactly).
	for _, pr := range g.Pairs {
		if dy := math.Abs(p.Y[pr[0]] - p.Y[pr[1]]); dy > 4 {
			t.Errorf("pair (%d,%d) y mismatch %.2f after soft-sym GP", pr[0], pr[1], dy)
		}
	}
}

func TestHardSymmetryTighterThanSoft(t *testing.T) {
	n := testNetlist()
	soft, err := Place(n, Options{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	hard, err := Place(n, Options{Seed: 1, HardSym: true})
	if err != nil {
		t.Fatal(err)
	}
	symErr := func(p *circuit.Placement) float64 {
		gx := make([]float64, len(n.Devices))
		gy := make([]float64, len(n.Devices))
		return SymPenalty(n, p, gx, gy)
	}
	if symErr(hard.Placement) > symErr(soft.Placement)+1e-9 {
		t.Errorf("hard-sym GP has larger symmetry error (%g) than soft (%g)",
			symErr(hard.Placement), symErr(soft.Placement))
	}
}

func TestAreaTermShrinksBoundingBox(t *testing.T) {
	n := testNetlist()
	with, err := Place(n, Options{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	without, err := Place(n, Options{Seed: 1, NoArea: true})
	if err != nil {
		t.Fatal(err)
	}
	aw := n.Area(with.Placement)
	ao := n.Area(without.Placement)
	if aw > ao*1.05 {
		t.Errorf("area term did not help: with=%.1f without=%.1f", aw, ao)
	}
}

func TestDevicesInsideRegion(t *testing.T) {
	n := testNetlist()
	res, err := Place(n, Options{Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	// After normalization the bounding box starts at the origin and should
	// be no larger than the placement region.
	bb := n.BoundingBox(res.Placement)
	if bb.W() > res.Region.W()+1e-6 || bb.H() > res.Region.H()+1e-6 {
		t.Errorf("placement bbox %v exceeds region %v", bb, res.Region)
	}
}

func TestInvalidNetlistRejected(t *testing.T) {
	n := testNetlist()
	n.Nets[0].Pins[0].Device = 99
	if _, err := Place(n, Options{Seed: 1}); err == nil {
		t.Error("expected validation error")
	}
}

func TestSymPenaltyGradientFiniteDifference(t *testing.T) {
	n := testNetlist()
	p := circuit.NewPlacement(n)
	for i := range p.X {
		p.X[i] = float64(3 * i)
		p.Y[i] = float64((i * 7) % 11)
	}
	nd := len(n.Devices)
	gx := make([]float64, nd)
	gy := make([]float64, nd)
	SymPenalty(n, p, gx, gy)
	const h = 1e-6
	eval := func() float64 {
		tx := make([]float64, nd)
		ty := make([]float64, nd)
		return SymPenalty(n, p, tx, ty)
	}
	for i := 0; i < nd; i++ {
		p.X[i] += h
		fp := eval()
		p.X[i] -= 2 * h
		fm := eval()
		p.X[i] += h
		fd := (fp - fm) / (2 * h)
		if math.Abs(fd-gx[i]) > 1e-3*(1+math.Abs(fd)) {
			t.Errorf("sym dX[%d]: analytic %g vs FD %g", i, gx[i], fd)
		}
		p.Y[i] += h
		fp = eval()
		p.Y[i] -= 2 * h
		fm = eval()
		p.Y[i] += h
		fd = (fp - fm) / (2 * h)
		if math.Abs(fd-gy[i]) > 1e-3*(1+math.Abs(fd)) {
			t.Errorf("sym dY[%d]: analytic %g vs FD %g", i, gy[i], fd)
		}
	}
}

func TestExtraGradHook(t *testing.T) {
	n := testNetlist()
	called := false
	// An extra term that pulls device 0 toward x = 0 strongly.
	extra := func(p *circuit.Placement, gx, gy []float64) float64 {
		called = true
		gx[0] += 2 * p.X[0] * 10
		return 10 * p.X[0] * p.X[0]
	}
	res, err := PlaceExtra(n, Options{Seed: 1}, extra)
	if err != nil {
		t.Fatal(err)
	}
	if !called {
		t.Fatal("extra term never evaluated")
	}
	base, err := Place(n, Options{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	// Device 0 should sit further left (relative to the bbox) than without
	// the pull. Compare normalized positions.
	if res.Placement.X[0] > base.Placement.X[0]+1e-9 {
		t.Errorf("extra gradient had no effect: %.2f vs %.2f", res.Placement.X[0], base.Placement.X[0])
	}
}

func TestOptimalAxisWeighting(t *testing.T) {
	n := &circuit.Netlist{
		Devices: []circuit.Device{
			{Name: "a", W: 2, H: 2}, {Name: "b", W: 2, H: 2}, {Name: "c", W: 2, H: 2},
		},
		SymGroups: []circuit.SymmetryGroup{{Pairs: [][2]int{{0, 1}}, Self: []int{2}}},
	}
	p := circuit.NewPlacement(n)
	p.X[0], p.X[1], p.X[2] = 0, 10, 8
	// Pair midpoint 5 (weight 4), self 8 (weight 1): axis = (4·5+8)/5 = 5.6.
	if ax := OptimalAxis(n, p, 0); math.Abs(ax-5.6) > 1e-12 {
		t.Errorf("optimalAxis = %g, want 5.6", ax)
	}
}

func BenchmarkGlobalPlace(b *testing.B) {
	n := testNetlist()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Place(n, Options{Seed: 1}); err != nil {
			b.Fatal(err)
		}
	}
}
