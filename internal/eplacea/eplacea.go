// Package eplacea implements the global-placement stage of ePlace-A, the
// paper's analytical analog placer: the ePlace framework (Weighted-Average
// wirelength smoothing, electrostatic density penalty solved spectrally,
// Nesterov's method with Lipschitz step prediction) extended with the analog
// terms of Eq. (3) — a soft symmetry penalty Sym(v), and an explicit
// WA-smoothed total-area term Area(v).
//
// The full ePlace-A flow is global placement from this package followed by
// the ILP legalization/detailed placement in package detailed.
package eplacea

import (
	"context"
	"math"
	"math/rand"

	"repro/internal/circuit"
	"repro/internal/density"
	"repro/internal/geom"
	"repro/internal/nlopt"
	"repro/internal/obs"
	"repro/internal/obs/metrics"
	"repro/internal/par"
	"repro/internal/wl"
)

// Options configures global placement.
type Options struct {
	Seed int64

	// GridM is the density grid dimension (power of two, default 32).
	GridM int
	// Util is the placement-region utilization: the region side is
	// sqrt(totalDeviceArea/Util). Default 0.8.
	Util float64

	// AreaWeight scales the Area(v) term η relative to the wirelength
	// gradient (default 0.45; 0 disables the term — the Fig. 2 ablation).
	AreaWeight float64
	// NoArea disables the area term entirely even if AreaWeight is unset
	// (distinguishes "default" from "explicitly zero").
	NoArea bool

	// SymWeight scales the symmetry penalty τ relative to the wirelength
	// gradient (default 0.4).
	SymWeight float64
	// HardSym switches the Table I ablation: enforce symmetry from the
	// first iteration with a rigid (1000×) penalty instead of the soft,
	// gradually increasing one.
	HardSym bool

	// MaxIter caps Nesterov iterations (default 900).
	MaxIter int
	// StopOverflow ends global placement once density overflow drops below
	// this ratio (default 0.08).
	StopOverflow float64

	// ExtraWeight scales the optional extra objective term (ePlace-AP's
	// α·Φ) relative to the wirelength gradient (default 0.5).
	ExtraWeight float64

	// Lambda0 is the initial density-multiplier ratio against the
	// wirelength gradient (default 1e-3).
	Lambda0 float64
	// LambdaGrowth is the per-iteration density multiplier growth
	// (default 1.05).
	LambdaGrowth float64

	// UseLSE swaps the WA wirelength smoothing for Log-Sum-Exponential,
	// the ablation isolating the paper's reason (2) for ePlace-A's edge
	// over [11] (WA has lower estimation error [23]).
	UseLSE bool

	// Tracer, when non-nil, wraps the run in a "gp" span and emits one
	// "eplace-gp" iteration event per Nesterov iteration (objective, exact
	// HPWL, overflow, λ, symmetry penalty, and per-term gradient norms)
	// alongside the underlying solver's own events. Telemetry is
	// observation-only; a nil Tracer costs one pointer check.
	Tracer *obs.Tracer

	// Pool, when non-nil, parallelizes the wirelength-gradient, density
	// rasterization, Poisson solve, and field-sampling kernels. The solve
	// fans its packed line-pair FFT passes out via par.ForPairs (two grid
	// lines per complex FFT; see internal/density). Results are
	// bit-identical to a nil Pool at any worker count (deterministic
	// sharding; see internal/par). The caller owns the pool's lifetime.
	Pool *par.Pool

	// Metrics, when non-nil, receives per-call duration histograms for
	// the GP hot-path kernels (placer_kernel_seconds: wl_grad,
	// density_raster, poisson_solve, field_sample), labeled with
	// MetricsLabels plus a "kernel" label. Like the tracer, metering is
	// observation-only and costs one pointer check when off.
	Metrics *metrics.Registry
	// MetricsLabels are constant key, value pairs stamped on every kernel
	// series; every caller of one registry must pass the same key set
	// (core passes method and circuit-size class).
	MetricsLabels []string

	// Warm, when non-nil, turns the run into an incremental (ECO)
	// re-solve: device coordinates start from a prior placement and
	// anchored devices get anchor pseudonets. Nil reproduces the blessed
	// cold-start behavior exactly.
	Warm *WarmStart
}

// WarmStart is a prior placement mapped onto this netlist plus the anchor
// schedule. Anchor pseudonets are quadratic pulls w·((x−ax)²+(y−ay)²)
// toward the prior positions whose weight is calibrated against the
// wirelength gradient and then ramps geometrically per iteration — the
// starting_anchor_weight / anchor_weight_increase schedule of the
// SNIPPETS analytical placers and ePlace-3D. The solve therefore stays
// near the known-good layout except where the netlist changed.
type WarmStart struct {
	// X, Y are per-device initial coordinates. Devices with
	// Valid[i] == false (e.g. newly added ones with no usable prior
	// position) keep the default centered init; a nil Valid means every
	// coordinate is usable.
	X, Y  []float64
	Valid []bool
	// Anchored marks devices that get an anchor pseudonet to (X[i], Y[i]).
	// Nil means no anchors (initialization-only warm start).
	Anchored []bool
	// AnchorWeight is the initial anchor force as a fraction of the
	// wirelength force (default 0.3).
	AnchorWeight float64
	// AnchorGrowth is the per-iteration anchor weight multiplier
	// (default 1.03).
	AnchorGrowth float64
}

// StartWeight returns AnchorWeight with its default applied.
func (w *WarmStart) StartWeight() float64 {
	if w.AnchorWeight == 0 {
		return 0.3
	}
	return w.AnchorWeight
}

// GrowthFactor returns AnchorGrowth with its default applied.
func (w *WarmStart) GrowthFactor() float64 {
	if w.AnchorGrowth == 0 {
		return 1.03
	}
	return w.AnchorGrowth
}

// ValidAt reports whether device i has a usable prior coordinate.
func (w *WarmStart) ValidAt(i int) bool { return w.Valid == nil || w.Valid[i] }

// AnchorCount returns the number of anchored devices.
func (w *WarmStart) AnchorCount() int {
	n := 0
	for _, a := range w.Anchored {
		if a {
			n++
		}
	}
	return n
}

func (o *Options) defaults() {
	if o.GridM == 0 {
		o.GridM = 32
	}
	if o.Util == 0 {
		o.Util = 0.8
	}
	if o.AreaWeight == 0 && !o.NoArea {
		o.AreaWeight = 0.45
	}
	if o.NoArea {
		o.AreaWeight = 0
	}
	if o.SymWeight == 0 {
		o.SymWeight = 0.4
	}
	if o.MaxIter == 0 {
		o.MaxIter = 900
	}
	if o.StopOverflow == 0 {
		o.StopOverflow = 0.08
	}
	if o.ExtraWeight == 0 {
		o.ExtraWeight = 0.5
	}
	if o.Lambda0 == 0 {
		o.Lambda0 = 1e-3
	}
	if o.LambdaGrowth == 0 {
		o.LambdaGrowth = 1.05
	}
}

// Result reports the global-placement outcome.
type Result struct {
	Placement  *circuit.Placement
	Iterations int
	Overflow   float64 // final density overflow
	HPWL       float64 // exact HPWL of the GP solution
	Region     geom.Rect
}

// ExtraGrad lets callers add terms to the GP objective; used by ePlace-AP
// to inject the GNN performance gradient α·∂Φ/∂v. It returns the term's
// value and accumulates its gradient.
type ExtraGrad func(p *circuit.Placement, gradX, gradY []float64) float64

// Place runs ePlace-A global placement on netlist n.
func Place(n *circuit.Netlist, opt Options) (*Result, error) {
	return PlaceExtra(n, opt, nil)
}

// PlaceExtra runs global placement with an optional extra objective term
// (the performance-driven hook of ePlace-AP).
func PlaceExtra(n *circuit.Netlist, opt Options, extra ExtraGrad) (*Result, error) {
	return PlaceExtraCtx(context.Background(), n, opt, extra)
}

// PlaceCtx is Place honoring cancellation and deadlines via the Nesterov
// callback-stop contract.
func PlaceCtx(ctx context.Context, n *circuit.Netlist, opt Options) (*Result, error) {
	return PlaceExtraCtx(ctx, n, opt, nil)
}

// PlaceExtraCtx is PlaceExtra honoring cancellation and deadlines: the
// Nesterov progress callback polls ctx once per iteration and stops the
// solve, and the run returns ctx.Err() instead of a partial placement.
func PlaceExtraCtx(ctx context.Context, n *circuit.Netlist, opt Options, extra ExtraGrad) (*Result, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	if err := n.Validate(); err != nil {
		return nil, err
	}
	opt.defaults()
	sp := opt.Tracer.StartSpan("gp")
	defer sp.End()
	nd := len(n.Devices)

	side := math.Sqrt(n.TotalDeviceArea() / opt.Util)
	region := geom.RectWH(0, 0, side, side)
	grid := density.NewElectrostaticPool(opt.GridM, region, opt.Pool)
	binW := region.W() / float64(opt.GridM)

	smoother := wl.WA
	if opt.UseLSE {
		smoother = wl.LSE
	}
	wlEv := wl.NewEvaluatorPool(n, smoother, 4*binW, opt.Pool)
	areaEv := wl.NewAreaEvaluator(n, 4*binW)
	if opt.Metrics != nil {
		grid.SetTimers(
			metrics.KernelHistogram(opt.Metrics, opt.MetricsLabels, "density_raster"),
			metrics.KernelHistogram(opt.Metrics, opt.MetricsLabels, "poisson_solve"),
			metrics.KernelHistogram(opt.Metrics, opt.MetricsLabels, "field_sample"))
		wlEv.SetTimer(metrics.KernelHistogram(opt.Metrics, opt.MetricsLabels, "wl_grad"))
	}

	// Initial placement: devices gathered at the region center with a small
	// deterministic jitter (the standard ePlace start).
	rng := rand.New(rand.NewSource(opt.Seed))
	p := circuit.NewPlacement(n)
	cx, cy := region.Center().X, region.Center().Y
	for i := 0; i < nd; i++ {
		p.X[i] = cx + (rng.Float64()-0.5)*side*0.15
		p.Y[i] = cy + (rng.Float64()-0.5)*side*0.15
	}
	if w := opt.Warm; w != nil {
		// Warm start: overwrite with the prior placement where it has a
		// usable coordinate (the jitter draws above still happen for every
		// device, so the rng stream is identical either way), then clamp
		// into the possibly different region.
		for i := 0; i < nd; i++ {
			if w.ValidAt(i) {
				p.X[i] = w.X[i]
				p.Y[i] = w.Y[i]
			}
		}
		clampInto(n, p, region)
	}

	st := &solveState{
		n: n, opt: &opt, grid: grid, wlEv: wlEv, areaEv: areaEv,
		p: p, region: region, binW: binW, extra: extra,
		gx: make([]float64, nd), gy: make([]float64, nd),
		sgx: make([]float64, nd), sgy: make([]float64, nd),
	}
	st.calibrate()

	x := make([]float64, 2*nd)
	copy(x[:nd], p.X)
	copy(x[nd:], p.Y)

	iterRun := 0
	done := ctx.Done()
	_, iters := nlopt.Nesterov(st.objective, x, nlopt.NesterovOptions{
		MaxIter:  opt.MaxIter,
		InitStep: binW, // about one bin per step to start
		Tracer:   opt.Tracer,
		Callback: func(iter int, cur []float64, f float64) bool {
			select {
			case <-done:
				return false
			default:
			}
			iterRun = iter + 1
			if opt.Tracer.Enabled() {
				copy(p.X, cur[:nd])
				copy(p.Y, cur[nd:])
				opt.Tracer.IterEvent(obs.IterRecord{
					Solver: "eplace-gp", Iter: iter, F: f,
					HPWL: n.HPWL(p), Overflow: st.lastOverflow,
					Lambda: st.lambda, Sym: st.lastSym,
					GradWL: st.gWL, GradDensity: st.gDen,
					GradSym: st.gSym, GradArea: st.gArea, GradExtra: st.gExtra,
				})
			}
			st.schedule(iter)
			if iter >= 50 && st.lastOverflow < opt.StopOverflow {
				return false
			}
			return true
		},
	})
	_ = iters
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	copy(p.X, x[:nd])
	copy(p.Y, x[nd:])
	clampInto(n, p, region)
	resolveAxes(n, p)
	n.Normalize(p)

	grid.Update(n, p)
	res := &Result{
		Placement:  p,
		Iterations: iterRun,
		Overflow:   grid.Overflow(n, 1.0),
		HPWL:       n.HPWL(p),
		Region:     region,
	}
	if opt.Tracer.Enabled() {
		opt.Tracer.Count("gp.runs", 1)
		opt.Tracer.Count("gp.iterations", float64(iterRun))
		opt.Tracer.Gauge("gp.final_overflow", res.Overflow)
		opt.Tracer.Gauge("gp.final_hpwl", res.HPWL)
	}
	return res, nil
}

// solveState carries the objective's mutable weights and scratch space.
type solveState struct {
	n      *circuit.Netlist
	opt    *Options
	grid   *density.Electrostatic
	wlEv   *wl.Evaluator
	areaEv *wl.AreaEvaluator
	p      *circuit.Placement
	region geom.Rect
	binW   float64
	extra  ExtraGrad

	lambda  float64 // density multiplier
	tau     float64 // symmetry multiplier
	eta     float64 // area multiplier
	alpha   float64 // extra-term multiplier (1 when extra != nil)
	anchorW float64 // anchor-pseudonet multiplier (warm starts only)

	lastOverflow float64

	// Telemetry snapshots of the most recent objective evaluation, filled
	// only when the tracer is enabled: the symmetry penalty value and the
	// L2 norm of each weighted gradient component (the force balance).
	lastSym                        float64
	gWL, gDen, gSym, gArea, gExtra float64

	gx, gy   []float64
	sgx, sgy []float64
}

// calibrate sets the initial multipliers from gradient L1 norms so each
// term starts at a controlled fraction of the wirelength force, the
// standard ePlace initialization.
func (st *solveState) calibrate() {
	nd := len(st.n.Devices)
	zero(st.gx)
	zero(st.gy)
	st.wlEv.Eval(st.p, st.gx, st.gy)
	wlNorm := nlopt.Norm1(st.gx) + nlopt.Norm1(st.gy) + 1e-12

	st.grid.Update(st.n, st.p)
	zero(st.sgx)
	zero(st.sgy)
	st.grid.AddGrad(st.n, st.p, st.sgx, st.sgy)
	denNorm := nlopt.Norm1(st.sgx) + nlopt.Norm1(st.sgy) + 1e-12
	st.lambda = st.opt.Lambda0 * wlNorm / denNorm

	zero(st.sgx)
	zero(st.sgy)
	SymPenalty(st.n, st.p, st.sgx, st.sgy)
	symNorm := nlopt.Norm1(st.sgx) + nlopt.Norm1(st.sgy)
	if symNorm < 1e-12 {
		symNorm = wlNorm // no symmetry constraints: weight is irrelevant
	}
	st.tau = st.opt.SymWeight * wlNorm / symNorm
	if st.opt.HardSym {
		st.tau *= 1000
	}

	zero(st.sgx)
	zero(st.sgy)
	st.areaEv.Eval(st.p, st.sgx, st.sgy)
	areaNorm := nlopt.Norm1(st.sgx) + nlopt.Norm1(st.sgy) + 1e-12
	st.eta = st.opt.AreaWeight * wlNorm / areaNorm

	st.alpha = 0
	if st.extra != nil {
		zero(st.sgx)
		zero(st.sgy)
		st.extra(st.p, st.sgx, st.sgy)
		exNorm := nlopt.Norm1(st.sgx) + nlopt.Norm1(st.sgy)
		if exNorm < 1e-12 {
			exNorm = wlNorm
		}
		st.alpha = st.opt.ExtraWeight * wlNorm / exNorm
	}
	if w := st.opt.Warm; w != nil {
		if na := w.AnchorCount(); na > 0 {
			// At a warm start the anchored devices sit exactly on their
			// anchors, so the anchor gradient is zero and cannot be
			// norm-calibrated like the other terms. Estimate its scale
			// instead: a device one bin off its anchor contributes a
			// gradient of 2·binW, so the term's L1 norm at that typical
			// displacement is 2·binW·na.
			st.anchorW = w.StartWeight() * wlNorm / (2 * st.binW * float64(na))
		}
	}
	st.lastOverflow = st.grid.Overflow(st.n, 1.0)
	_ = nd
}

// schedule advances the multiplier and smoothing schedules once per
// Nesterov iteration: λ grows geometrically, the soft symmetry weight
// tightens, and the WA smoothing parameter anneals with overflow.
func (st *solveState) schedule(iter int) {
	st.lambda *= st.opt.LambdaGrowth
	if !st.opt.HardSym && iter%10 == 0 {
		st.tau *= 1.10
	}
	if st.anchorW > 0 {
		st.anchorW *= st.opt.Warm.GrowthFactor()
	}
	gamma := st.binW * (0.5 + 7.5*math.Min(st.lastOverflow, 1))
	st.wlEv.SetGamma(gamma)
	st.areaEv.SetGamma(gamma)
}

// objective evaluates Eq. (3) (plus the optional extra term) and its
// gradient at the packed coordinate vector x = (x₀..x_{n−1}, y₀..y_{n−1}).
func (st *solveState) objective(x, grad []float64) float64 {
	nd := len(st.n.Devices)
	copy(st.p.X, x[:nd])
	copy(st.p.Y, x[nd:])
	traced := st.opt.Tracer.Enabled()

	zero(st.gx)
	zero(st.gy)
	f := st.wlEv.Eval(st.p, st.gx, st.gy)
	if traced {
		st.gWL = norm2xy(st.gx, st.gy)
	}

	st.grid.Update(st.n, st.p)
	zero(st.sgx)
	zero(st.sgy)
	st.grid.AddGrad(st.n, st.p, st.sgx, st.sgy)
	f += st.lambda * st.grid.Energy()
	for i := 0; i < nd; i++ {
		st.gx[i] += st.lambda * st.sgx[i]
		st.gy[i] += st.lambda * st.sgy[i]
	}
	if traced {
		st.gDen = st.lambda * norm2xy(st.sgx, st.sgy)
	}
	st.lastOverflow = st.grid.Overflow(st.n, 1.0)

	if len(st.n.SymGroups) > 0 {
		zero(st.sgx)
		zero(st.sgy)
		sp := SymPenalty(st.n, st.p, st.sgx, st.sgy)
		f += st.tau * sp
		for i := 0; i < nd; i++ {
			st.gx[i] += st.tau * st.sgx[i]
			st.gy[i] += st.tau * st.sgy[i]
		}
		if traced {
			st.lastSym = sp
			st.gSym = st.tau * norm2xy(st.sgx, st.sgy)
		}
	}

	if st.eta > 0 {
		zero(st.sgx)
		zero(st.sgy)
		av := st.areaEv.Eval(st.p, st.sgx, st.sgy)
		f += st.eta * av
		for i := 0; i < nd; i++ {
			st.gx[i] += st.eta * st.sgx[i]
			st.gy[i] += st.eta * st.sgy[i]
		}
		if traced {
			st.gArea = st.eta * norm2xy(st.sgx, st.sgy)
		}
	}

	if st.anchorW > 0 {
		w := st.opt.Warm
		var av float64
		for i := 0; i < nd; i++ {
			if !w.Anchored[i] {
				continue
			}
			dx := st.p.X[i] - w.X[i]
			dy := st.p.Y[i] - w.Y[i]
			av += dx*dx + dy*dy
			st.gx[i] += st.anchorW * 2 * dx
			st.gy[i] += st.anchorW * 2 * dy
		}
		f += st.anchorW * av
	}

	if st.extra != nil {
		zero(st.sgx)
		zero(st.sgy)
		ev := st.extra(st.p, st.sgx, st.sgy)
		f += st.alpha * ev
		for i := 0; i < nd; i++ {
			st.gx[i] += st.alpha * st.sgx[i]
			st.gy[i] += st.alpha * st.sgy[i]
		}
		if traced {
			st.gExtra = st.alpha * norm2xy(st.sgx, st.sgy)
		}
	}

	copy(grad[:nd], st.gx)
	copy(grad[nd:], st.gy)
	return f
}

// SymPenalty evaluates the soft symmetry penalty of Eq. (3),
// Σ_groups [ Σ_pairs (y_q1 − y_q2)² + (x_q1 + x_q2 − 2x_m)²
//
//   - Σ_self  (x_r − x_m)² ],
//
// with the axis x_m of each group chosen optimally (its minimizing value,
// by the envelope theorem the gradient treats it as constant), and
// accumulates the gradient.
func SymPenalty(n *circuit.Netlist, p *circuit.Placement, gradX, gradY []float64) float64 {
	var total float64
	for gi := range n.SymGroups {
		g := &n.SymGroups[gi]
		axis := OptimalAxis(n, p, gi)
		for _, pr := range g.Pairs {
			q1, q2 := pr[0], pr[1]
			dy := p.Y[q1] - p.Y[q2]
			dx := p.X[q1] + p.X[q2] - 2*axis
			total += dy*dy + dx*dx
			gradY[q1] += 2 * dy
			gradY[q2] -= 2 * dy
			gradX[q1] += 2 * dx
			gradX[q2] += 2 * dx
		}
		for _, r := range g.Self {
			dx := p.X[r] - axis
			total += dx * dx
			gradX[r] += 2 * dx
		}
	}
	return total
}

// OptimalAxis returns the axis x_m minimizing the group's penalty:
// the quadratic is minimized at a weighted mean of pair midpoints (weight 4
// per pair via (…−2x_m)²) and self positions (weight 1).
func OptimalAxis(n *circuit.Netlist, p *circuit.Placement, gi int) float64 {
	g := &n.SymGroups[gi]
	var num, den float64
	for _, pr := range g.Pairs {
		num += 2 * (p.X[pr[0]] + p.X[pr[1]])
		den += 4
	}
	for _, r := range g.Self {
		num += p.X[r]
		den++
	}
	if den == 0 {
		return 0
	}
	return num / den
}

// resolveAxes stores each group's optimal axis into the placement.
func resolveAxes(n *circuit.Netlist, p *circuit.Placement) {
	for gi := range n.SymGroups {
		p.AxisX[gi] = OptimalAxis(n, p, gi)
	}
}

// clampInto forces every device footprint inside the region.
func clampInto(n *circuit.Netlist, p *circuit.Placement, region geom.Rect) {
	for i := range n.Devices {
		d := &n.Devices[i]
		p.X[i] = geom.Interval{Lo: region.Lo.X + d.W/2, Hi: region.Hi.X - d.W/2}.Clamp(p.X[i])
		p.Y[i] = geom.Interval{Lo: region.Lo.Y + d.H/2, Hi: region.Hi.Y - d.H/2}.Clamp(p.Y[i])
	}
}

func zero(v []float64) {
	for i := range v {
		v[i] = 0
	}
}

// norm2xy is the Euclidean norm of the concatenated (gx, gy) gradient.
func norm2xy(gx, gy []float64) float64 {
	var s float64
	for _, v := range gx {
		s += v * v
	}
	for _, v := range gy {
		s += v * v
	}
	return math.Sqrt(s)
}
