package circuit

import (
	"bytes"
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/geom"
)

// randNetlist builds a random netlist + placement from a seed.
func randNetlist(seed int64) (*Netlist, *Placement) {
	rng := rand.New(rand.NewSource(seed))
	nd := 3 + rng.Intn(8)
	n := &Netlist{Name: "prop"}
	for i := 0; i < nd; i++ {
		w := 1 + rng.Float64()*8
		h := 1 + rng.Float64()*8
		n.Devices = append(n.Devices, Device{
			Name: "d", W: w, H: h,
			Pins: []Pin{
				{Name: "a", Offset: geom.Point{X: rng.Float64() * w, Y: rng.Float64() * h}},
				{Name: "b", Offset: geom.Point{X: rng.Float64() * w, Y: rng.Float64() * h}},
			},
		})
	}
	ne := 2 + rng.Intn(5)
	for e := 0; e < ne; e++ {
		k := 2 + rng.Intn(3)
		var pins []PinRef
		for j := 0; j < k; j++ {
			pins = append(pins, PinRef{Device: rng.Intn(nd), Pin: rng.Intn(2)})
		}
		n.Nets = append(n.Nets, Net{Name: "n", Pins: pins})
	}
	p := NewPlacement(n)
	for i := range p.X {
		p.X[i] = rng.Float64() * 100
		p.Y[i] = rng.Float64() * 100
		p.FlipX[i] = rng.Intn(2) == 0
		p.FlipY[i] = rng.Intn(2) == 0
	}
	return n, p
}

// Property: HPWL and bounding-box area are translation invariant.
func TestHPWLTranslationInvariance(t *testing.T) {
	f := func(seed int64, dxRaw, dyRaw float64) bool {
		n, p := randNetlist(seed)
		dx := math.Mod(dxRaw, 1e4)
		dy := math.Mod(dyRaw, 1e4)
		if math.IsNaN(dx) || math.IsNaN(dy) {
			return true
		}
		h0 := n.HPWL(p)
		a0 := n.Area(p)
		for i := range p.X {
			p.X[i] += dx
			p.Y[i] += dy
		}
		return math.Abs(n.HPWL(p)-h0) < 1e-6*(1+h0) && math.Abs(n.Area(p)-a0) < 1e-6*(1+a0)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

// Property: flipping a device twice restores every pin position exactly.
func TestFlipInvolution(t *testing.T) {
	f := func(seed int64) bool {
		n, p := randNetlist(seed)
		for i := range n.Devices {
			for pi := range n.Devices[i].Pins {
				pr := PinRef{Device: i, Pin: pi}
				before := n.PinPos(p, pr)
				p.FlipX[i] = !p.FlipX[i]
				p.FlipX[i] = !p.FlipX[i]
				p.FlipY[i] = !p.FlipY[i]
				p.FlipY[i] = !p.FlipY[i]
				if n.PinPos(p, pr) != before {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

// Property: flipping never changes HPWL bounds beyond the device extents —
// specifically, pin positions stay inside the device rect.
func TestFlippedPinsStayInsideFootprint(t *testing.T) {
	f := func(seed int64) bool {
		n, p := randNetlist(seed)
		for i := range n.Devices {
			r := n.DeviceRect(p, i)
			for pi := range n.Devices[i].Pins {
				pt := n.PinPos(p, PinRef{Device: i, Pin: pi})
				if !r.Contains(pt) {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

// Property: Normalize is idempotent and preserves HPWL and area.
func TestNormalizeIdempotentAndMetricPreserving(t *testing.T) {
	f := func(seed int64) bool {
		n, p := randNetlist(seed)
		h0 := n.HPWL(p)
		a0 := n.Area(p)
		n.Normalize(p)
		if math.Abs(n.HPWL(p)-h0) > 1e-6*(1+h0) || math.Abs(n.Area(p)-a0) > 1e-6*(1+a0) {
			return false
		}
		x0 := append([]float64(nil), p.X...)
		n.Normalize(p)
		for i := range x0 {
			if math.Abs(p.X[i]-x0[i]) > 1e-9 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

// Property: TotalOverlap is zero iff CheckLegal reports no overlaps (with
// tolerance zero on generic placements).
func TestOverlapConsistency(t *testing.T) {
	f := func(seed int64) bool {
		n, p := randNetlist(seed)
		rep := n.CheckLegal(p, 1e-9)
		ov := n.TotalOverlap(p)
		if ov > 1e-6 && len(rep.Overlaps) == 0 {
			return false
		}
		if ov == 0 && len(rep.Overlaps) > 0 {
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

// Property: JSON roundtrip preserves HPWL exactly for valid netlists.
func TestJSONRoundtripPreservesMetrics(t *testing.T) {
	f := func(seed int64) bool {
		n, p := randNetlist(seed)
		// Names must be unique for JSON.
		for i := range n.Devices {
			n.Devices[i].Name = string(rune('A'+i%26)) + string(rune('a'+(i/26)%26))
		}
		buf := &bytes.Buffer{}
		if err := n.WriteJSON(buf); err != nil {
			return false
		}
		got, err := ReadJSON(buf)
		if err != nil {
			return false
		}
		return math.Abs(got.HPWL(p)-n.HPWL(p)) < 1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}
