// Package circuit defines the analog-circuit placement data model shared by
// every placer in this repository: devices with pins, nets, the analog
// geometric constraints studied in the paper (symmetry groups, alignment
// pairs, ordering groups), and placements with exact quality metrics
// (HPWL, bounding-box area, overlap) and legality checks.
//
// Lengths are expressed in integer-friendly grid units where one unit is
// GridMicron micrometers. Metric helpers convert to the µm/µm² figures the
// paper reports.
package circuit

import (
	"errors"
	"fmt"
	"math"

	"repro/internal/geom"
)

// GridMicron is the physical size of one grid unit in micrometers.
const GridMicron = 0.1

// DeviceType classifies a device for feature extraction (GNN) and for the
// synthetic performance models. Placement itself only uses geometry.
type DeviceType int

// Device type enumeration.
const (
	NMOS DeviceType = iota
	PMOS
	Cap
	Res
	Ind
	Other
	numDeviceTypes
)

// NumDeviceTypes is the number of distinct device types, for one-hot
// feature encodings.
const NumDeviceTypes = int(numDeviceTypes)

func (t DeviceType) String() string {
	switch t {
	case NMOS:
		return "nmos"
	case PMOS:
		return "pmos"
	case Cap:
		return "cap"
	case Res:
		return "res"
	case Ind:
		return "ind"
	default:
		return "other"
	}
}

// Pin is a connection point on a device, located by its offset from the
// device's lower-left corner in the unflipped orientation.
type Pin struct {
	Name   string
	Offset geom.Point
}

// Device is a placeable analog device (transistor, capacitor, ...) with a
// fixed footprint and a set of pins.
type Device struct {
	Name string
	Type DeviceType
	W, H float64
	Pins []Pin
}

// Area returns the device footprint area in grid units squared.
func (d *Device) Area() float64 { return d.W * d.H }

// PinRef identifies one pin of one device.
type PinRef struct {
	Device int // index into Netlist.Devices
	Pin    int // index into Device.Pins
}

// Net is an electrical net connecting two or more pins. Weight scales the
// net's contribution to wirelength objectives (default 1).
type Net struct {
	Name   string
	Pins   []PinRef
	Weight float64
}

// SymmetryGroup is a set of device pairs mirrored about a shared vertical
// axis plus self-symmetric devices centered on that axis — the constraint
// form of Eq. (4f) in the paper. The axis x-coordinate is a free variable
// determined by the placer.
type SymmetryGroup struct {
	Pairs [][2]int // each pair (q1, q2) mirrored about the axis
	Self  []int    // devices whose center must lie on the axis
}

// Devices returns every device index that belongs to the group.
func (g *SymmetryGroup) Devices() []int {
	out := make([]int, 0, 2*len(g.Pairs)+len(g.Self))
	for _, p := range g.Pairs {
		out = append(out, p[0], p[1])
	}
	out = append(out, g.Self...)
	return out
}

// Netlist is the complete placement problem: devices, nets and analog
// geometric constraints. The zero value is an empty netlist.
type Netlist struct {
	Name    string
	Devices []Device
	Nets    []Net

	// SymGroups are the symmetry constraints S of Eq. (4f).
	SymGroups []SymmetryGroup
	// BottomAlign are bottom-alignment pairs P^B of Eq. (4g).
	BottomAlign [][2]int
	// VCenterAlign are vertical center-alignment pairs P^VC of Eq. (4h).
	VCenterAlign [][2]int
	// HOrders are horizontal ordering groups O^H of Eq. (4i): within each
	// group, devices must appear strictly left-to-right in slice order.
	HOrders [][]int
}

// NumDevices returns the number of placeable devices.
func (n *Netlist) NumDevices() int { return len(n.Devices) }

// TotalDeviceArea returns the sum of device footprint areas in grid units².
func (n *Netlist) TotalDeviceArea() float64 {
	var s float64
	for i := range n.Devices {
		s += n.Devices[i].Area()
	}
	return s
}

// Validate checks internal consistency: every referenced device/pin exists,
// devices have positive dimensions, nets have at least two pins, constraint
// groups reference distinct valid devices. It returns the first problem
// found.
func (n *Netlist) Validate() error {
	for i := range n.Devices {
		d := &n.Devices[i]
		if d.W <= 0 || d.H <= 0 {
			return fmt.Errorf("circuit: device %d (%s) has non-positive size %gx%g", i, d.Name, d.W, d.H)
		}
		for j, p := range d.Pins {
			if p.Offset.X < 0 || p.Offset.X > d.W || p.Offset.Y < 0 || p.Offset.Y > d.H {
				return fmt.Errorf("circuit: device %d (%s) pin %d offset %v outside footprint", i, d.Name, j, p.Offset)
			}
		}
	}
	checkDev := func(ctx string, i int) error {
		if i < 0 || i >= len(n.Devices) {
			return fmt.Errorf("circuit: %s references device %d of %d", ctx, i, len(n.Devices))
		}
		return nil
	}
	for e := range n.Nets {
		net := &n.Nets[e]
		if len(net.Pins) < 1 {
			return fmt.Errorf("circuit: net %d (%s) has no pins", e, net.Name)
		}
		if net.Weight < 0 {
			return fmt.Errorf("circuit: net %d (%s) has negative weight %g", e, net.Name, net.Weight)
		}
		for _, pr := range net.Pins {
			if err := checkDev(fmt.Sprintf("net %d (%s)", e, net.Name), pr.Device); err != nil {
				return err
			}
			if pr.Pin < 0 || pr.Pin >= len(n.Devices[pr.Device].Pins) {
				return fmt.Errorf("circuit: net %d (%s) references pin %d of device %d which has %d pins",
					e, net.Name, pr.Pin, pr.Device, len(n.Devices[pr.Device].Pins))
			}
		}
	}
	seen := make(map[int]int) // device -> symmetry group index
	for gi := range n.SymGroups {
		g := &n.SymGroups[gi]
		if len(g.Pairs) == 0 && len(g.Self) == 0 {
			return fmt.Errorf("circuit: symmetry group %d is empty", gi)
		}
		for _, p := range g.Pairs {
			if p[0] == p[1] {
				return fmt.Errorf("circuit: symmetry group %d pairs device %d with itself", gi, p[0])
			}
		}
		for _, d := range g.Devices() {
			if err := checkDev(fmt.Sprintf("symmetry group %d", gi), d); err != nil {
				return err
			}
			if prev, ok := seen[d]; ok {
				return fmt.Errorf("circuit: device %d in symmetry groups %d and %d", d, prev, gi)
			}
			seen[d] = gi
		}
		for _, p := range g.Pairs {
			a, b := &n.Devices[p[0]], &n.Devices[p[1]]
			if a.W != b.W || a.H != b.H {
				return fmt.Errorf("circuit: symmetric pair (%d,%d) has mismatched footprints %gx%g vs %gx%g",
					p[0], p[1], a.W, a.H, b.W, b.H)
			}
		}
	}
	for _, pr := range n.BottomAlign {
		for _, d := range pr[:] {
			if err := checkDev("bottom-align pair", d); err != nil {
				return err
			}
		}
	}
	for _, pr := range n.VCenterAlign {
		for _, d := range pr[:] {
			if err := checkDev("vcenter-align pair", d); err != nil {
				return err
			}
		}
	}
	for oi, grp := range n.HOrders {
		if len(grp) < 2 {
			return fmt.Errorf("circuit: order group %d has %d devices, need >= 2", oi, len(grp))
		}
		for _, d := range grp {
			if err := checkDev(fmt.Sprintf("order group %d", oi), d); err != nil {
				return err
			}
		}
	}
	return nil
}

// Placement assigns a center coordinate and orientation to every device of
// a netlist, plus the resolved x-coordinate of each symmetry group's axis.
type Placement struct {
	X, Y         []float64 // device center coordinates, grid units
	FlipX, FlipY []bool    // horizontal / vertical flipping per device
	AxisX        []float64 // symmetry axis per SymGroup (len == len(SymGroups))
}

// NewPlacement returns a zeroed placement sized for n.
func NewPlacement(n *Netlist) *Placement {
	return &Placement{
		X:     make([]float64, len(n.Devices)),
		Y:     make([]float64, len(n.Devices)),
		FlipX: make([]bool, len(n.Devices)),
		FlipY: make([]bool, len(n.Devices)),
		AxisX: make([]float64, len(n.SymGroups)),
	}
}

// Clone returns a deep copy of p.
func (p *Placement) Clone() *Placement {
	q := &Placement{
		X:     append([]float64(nil), p.X...),
		Y:     append([]float64(nil), p.Y...),
		FlipX: append([]bool(nil), p.FlipX...),
		FlipY: append([]bool(nil), p.FlipY...),
		AxisX: append([]float64(nil), p.AxisX...),
	}
	return q
}

// DeviceRect returns the placed footprint rectangle of device i.
func (n *Netlist) DeviceRect(p *Placement, i int) geom.Rect {
	d := &n.Devices[i]
	return geom.RectCenter(geom.Point{X: p.X[i], Y: p.Y[i]}, d.W, d.H)
}

// PinPos returns the placed location of a pin, accounting for flipping:
// flipping mirrors the pin offset inside the fixed footprint, exactly as in
// Eq. (4d) of the paper.
func (n *Netlist) PinPos(p *Placement, pr PinRef) geom.Point {
	d := &n.Devices[pr.Device]
	off := d.Pins[pr.Pin].Offset
	ox, oy := off.X, off.Y
	if p.FlipX[pr.Device] {
		ox = d.W - ox
	}
	if p.FlipY[pr.Device] {
		oy = d.H - oy
	}
	return geom.Point{
		X: p.X[pr.Device] - d.W/2 + ox,
		Y: p.Y[pr.Device] - d.H/2 + oy,
	}
}

// NetHPWL returns the exact half-perimeter wirelength of net e (unweighted).
func (n *Netlist) NetHPWL(p *Placement, e int) float64 {
	net := &n.Nets[e]
	if len(net.Pins) == 0 {
		return 0
	}
	pt := n.PinPos(p, net.Pins[0])
	minX, maxX := pt.X, pt.X
	minY, maxY := pt.Y, pt.Y
	for _, pr := range net.Pins[1:] {
		pt = n.PinPos(p, pr)
		minX = math.Min(minX, pt.X)
		maxX = math.Max(maxX, pt.X)
		minY = math.Min(minY, pt.Y)
		maxY = math.Max(maxY, pt.Y)
	}
	return (maxX - minX) + (maxY - minY)
}

// HPWL returns the total weighted half-perimeter wirelength in grid units.
func (n *Netlist) HPWL(p *Placement) float64 {
	var s float64
	for e := range n.Nets {
		w := n.Nets[e].Weight
		if w == 0 {
			w = 1
		}
		s += w * n.NetHPWL(p, e)
	}
	return s
}

// RawHPWL returns the total UNWEIGHTED half-perimeter wirelength in grid
// units: every net counts equally regardless of objective weighting. Used
// wherever a quality judgment must not inherit the objective's deliberate
// de-emphasis of some nets (candidate selection, benchmark QoR).
func (n *Netlist) RawHPWL(p *Placement) float64 {
	var s float64
	for e := range n.Nets {
		s += n.NetHPWL(p, e)
	}
	return s
}

// BoundingBox returns the smallest rectangle containing every placed device.
func (n *Netlist) BoundingBox(p *Placement) geom.Rect {
	var bb geom.Rect
	for i := range n.Devices {
		bb = bb.Union(n.DeviceRect(p, i))
	}
	return bb
}

// Area returns the placement bounding-box area in grid units².
func (n *Netlist) Area(p *Placement) float64 { return n.BoundingBox(p).Area() }

// TotalOverlap returns the summed pairwise interior overlap area between
// placed devices, the exact (non-smoothed) form of Overlap(v).
func (n *Netlist) TotalOverlap(p *Placement) float64 {
	var s float64
	for i := 0; i < len(n.Devices); i++ {
		ri := n.DeviceRect(p, i)
		for j := i + 1; j < len(n.Devices); j++ {
			s += ri.OverlapArea(n.DeviceRect(p, j))
		}
	}
	return s
}

// AreaUM2 converts grid units² to µm².
func AreaUM2(a float64) float64 { return a * GridMicron * GridMicron }

// LenUM converts grid units to µm.
func LenUM(l float64) float64 { return l * GridMicron }

// LegalityReport details every constraint violation found by CheckLegal.
type LegalityReport struct {
	Overlaps      []string
	SymViolations []string
	AlignErrors   []string
	OrderErrors   []string
}

// OK reports whether the placement satisfied every checked constraint.
func (r *LegalityReport) OK() bool {
	return len(r.Overlaps) == 0 && len(r.SymViolations) == 0 &&
		len(r.AlignErrors) == 0 && len(r.OrderErrors) == 0
}

// ViolationCounts is the numeric form of a LegalityReport, for
// machine-readable quality reports.
type ViolationCounts struct {
	Overlaps int `json:"overlaps"`
	Symmetry int `json:"symmetry"`
	Align    int `json:"align"`
	Order    int `json:"order"`
}

// Counts summarizes the report as violation counts per constraint class.
func (r *LegalityReport) Counts() ViolationCounts {
	return ViolationCounts{
		Overlaps: len(r.Overlaps),
		Symmetry: len(r.SymViolations),
		Align:    len(r.AlignErrors),
		Order:    len(r.OrderErrors),
	}
}

// Err returns nil when legal, otherwise an error summarizing the counts.
func (r *LegalityReport) Err() error {
	if r.OK() {
		return nil
	}
	return fmt.Errorf("circuit: illegal placement: %d overlaps, %d symmetry, %d alignment, %d ordering violations",
		len(r.Overlaps), len(r.SymViolations), len(r.AlignErrors), len(r.OrderErrors))
}

// CheckLegal verifies non-overlap, symmetry, alignment and ordering
// constraints within tolerance tol (grid units; tol² for overlap area).
func (n *Netlist) CheckLegal(p *Placement, tol float64) *LegalityReport {
	rep := &LegalityReport{}
	for i := 0; i < len(n.Devices); i++ {
		ri := n.DeviceRect(p, i)
		for j := i + 1; j < len(n.Devices); j++ {
			// A pair violates non-overlap only when it overlaps by more
			// than tol in BOTH axes; abutted devices with floating-point
			// epsilon intrusion are legal.
			dx, dy := ri.OverlapDims(n.DeviceRect(p, j))
			if dx > tol && dy > tol {
				rep.Overlaps = append(rep.Overlaps,
					fmt.Sprintf("devices %s and %s overlap by %.3fx%.3f", n.Devices[i].Name, n.Devices[j].Name, dx, dy))
			}
		}
	}
	for gi := range n.SymGroups {
		g := &n.SymGroups[gi]
		axis := p.AxisX[gi]
		for _, pr := range g.Pairs {
			q1, q2 := pr[0], pr[1]
			if d := math.Abs(p.Y[q1] - p.Y[q2]); d > tol {
				rep.SymViolations = append(rep.SymViolations,
					fmt.Sprintf("pair (%s,%s) y mismatch %.3f", n.Devices[q1].Name, n.Devices[q2].Name, d))
			}
			if d := math.Abs((p.X[q1]+p.X[q2])/2 - axis); d > tol {
				rep.SymViolations = append(rep.SymViolations,
					fmt.Sprintf("pair (%s,%s) axis offset %.3f", n.Devices[q1].Name, n.Devices[q2].Name, d))
			}
		}
		for _, r := range g.Self {
			if d := math.Abs(p.X[r] - axis); d > tol {
				rep.SymViolations = append(rep.SymViolations,
					fmt.Sprintf("self-symmetric %s axis offset %.3f", n.Devices[r].Name, d))
			}
		}
	}
	for _, pr := range n.BottomAlign {
		b1, b2 := pr[0], pr[1]
		bot1 := p.Y[b1] - n.Devices[b1].H/2
		bot2 := p.Y[b2] - n.Devices[b2].H/2
		if d := math.Abs(bot1 - bot2); d > tol {
			rep.AlignErrors = append(rep.AlignErrors,
				fmt.Sprintf("bottom align (%s,%s) off by %.3f", n.Devices[b1].Name, n.Devices[b2].Name, d))
		}
	}
	for _, pr := range n.VCenterAlign {
		if d := math.Abs(p.X[pr[0]] - p.X[pr[1]]); d > tol {
			rep.AlignErrors = append(rep.AlignErrors,
				fmt.Sprintf("vcenter align (%s,%s) off by %.3f", n.Devices[pr[0]].Name, n.Devices[pr[1]].Name, d))
		}
	}
	for _, grp := range n.HOrders {
		for k := 0; k+1 < len(grp); k++ {
			j, kk := grp[k], grp[k+1]
			right := p.X[j] + n.Devices[j].W/2
			left := p.X[kk] - n.Devices[kk].W/2
			if right > left+tol {
				rep.OrderErrors = append(rep.OrderErrors,
					fmt.Sprintf("order violated: %s right edge %.3f > %s left edge %.3f",
						n.Devices[j].Name, right, n.Devices[kk].Name, left))
			}
		}
	}
	return rep
}

// ErrSize is returned by placement/netlist size mismatches.
var ErrSize = errors.New("circuit: placement size does not match netlist")

// CheckSized verifies that p is sized for n.
func (n *Netlist) CheckSized(p *Placement) error {
	if len(p.X) != len(n.Devices) || len(p.Y) != len(n.Devices) ||
		len(p.FlipX) != len(n.Devices) || len(p.FlipY) != len(n.Devices) ||
		len(p.AxisX) != len(n.SymGroups) {
		return ErrSize
	}
	return nil
}

// Normalize translates the placement so the bounding box's lower-left corner
// sits at the origin, updating symmetry axes accordingly.
func (n *Netlist) Normalize(p *Placement) {
	bb := n.BoundingBox(p)
	if bb.Empty() && len(n.Devices) == 0 {
		return
	}
	dx, dy := -bb.Lo.X, -bb.Lo.Y
	for i := range p.X {
		p.X[i] += dx
		p.Y[i] += dy
	}
	for gi := range p.AxisX {
		p.AxisX[gi] += dx
	}
}

// ResolveAxes sets each symmetry group's axis to the average implied by the
// current device coordinates. Useful after algorithms that move devices
// without tracking the axis variable.
func (n *Netlist) ResolveAxes(p *Placement) {
	for gi := range n.SymGroups {
		g := &n.SymGroups[gi]
		var sum float64
		var cnt int
		for _, pr := range g.Pairs {
			sum += (p.X[pr[0]] + p.X[pr[1]]) / 2
			cnt++
		}
		for _, r := range g.Self {
			sum += p.X[r]
			cnt++
		}
		if cnt > 0 {
			p.AxisX[gi] = sum / float64(cnt)
		}
	}
}

// DeviceDegree returns, for each device, the number of nets it touches.
func (n *Netlist) DeviceDegree() []int {
	deg := make([]int, len(n.Devices))
	for e := range n.Nets {
		touched := map[int]bool{}
		for _, pr := range n.Nets[e].Pins {
			if !touched[pr.Device] {
				touched[pr.Device] = true
				deg[pr.Device]++
			}
		}
	}
	return deg
}
