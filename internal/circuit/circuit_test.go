package circuit

import (
	"math"
	"strings"
	"testing"

	"repro/internal/geom"
)

// twoDeviceNetlist builds a minimal netlist: two 4x2 devices, one net
// between a pin on each.
func twoDeviceNetlist() *Netlist {
	return &Netlist{
		Name: "pair",
		Devices: []Device{
			{Name: "A", Type: NMOS, W: 4, H: 2, Pins: []Pin{{Name: "g", Offset: geom.Point{X: 1, Y: 1}}}},
			{Name: "B", Type: NMOS, W: 4, H: 2, Pins: []Pin{{Name: "g", Offset: geom.Point{X: 3, Y: 1}}}},
		},
		Nets: []Net{{Name: "n1", Pins: []PinRef{{0, 0}, {1, 0}}}},
	}
}

func TestValidateOK(t *testing.T) {
	n := twoDeviceNetlist()
	if err := n.Validate(); err != nil {
		t.Fatalf("Validate: %v", err)
	}
}

func TestValidateRejects(t *testing.T) {
	cases := []struct {
		name string
		mut  func(n *Netlist)
		want string
	}{
		{"zero width", func(n *Netlist) { n.Devices[0].W = 0 }, "non-positive size"},
		{"pin outside", func(n *Netlist) { n.Devices[0].Pins[0].Offset.X = 99 }, "outside footprint"},
		{"empty net", func(n *Netlist) { n.Nets[0].Pins = nil }, "has no pins"},
		{"bad device ref", func(n *Netlist) { n.Nets[0].Pins[0].Device = 7 }, "references device"},
		{"bad pin ref", func(n *Netlist) { n.Nets[0].Pins[0].Pin = 3 }, "references pin"},
		{"negative weight", func(n *Netlist) { n.Nets[0].Weight = -1 }, "negative weight"},
		{"self pair", func(n *Netlist) {
			n.SymGroups = []SymmetryGroup{{Pairs: [][2]int{{0, 0}}}}
		}, "with itself"},
		{"empty sym group", func(n *Netlist) {
			n.SymGroups = []SymmetryGroup{{}}
		}, "is empty"},
		{"mismatched sym footprints", func(n *Netlist) {
			n.Devices[1].H = 3
			n.SymGroups = []SymmetryGroup{{Pairs: [][2]int{{0, 1}}}}
		}, "mismatched footprints"},
		{"dup sym membership", func(n *Netlist) {
			n.SymGroups = []SymmetryGroup{
				{Self: []int{0}},
				{Self: []int{0}},
			}
		}, "symmetry groups"},
		{"short order group", func(n *Netlist) { n.HOrders = [][]int{{0}} }, "need >= 2"},
	}
	for _, tc := range cases {
		n := twoDeviceNetlist()
		tc.mut(n)
		err := n.Validate()
		if err == nil {
			t.Errorf("%s: Validate accepted invalid netlist", tc.name)
			continue
		}
		if !strings.Contains(err.Error(), tc.want) {
			t.Errorf("%s: error %q does not mention %q", tc.name, err, tc.want)
		}
	}
}

func TestPinPosFlipping(t *testing.T) {
	n := twoDeviceNetlist()
	p := NewPlacement(n)
	p.X[0], p.Y[0] = 2, 1 // device A occupies [0,4]x[0,2]

	got := n.PinPos(p, PinRef{0, 0})
	if got != (geom.Point{X: 1, Y: 1}) {
		t.Errorf("unflipped pin = %v, want (1,1)", got)
	}
	p.FlipX[0] = true
	got = n.PinPos(p, PinRef{0, 0})
	if got != (geom.Point{X: 3, Y: 1}) {
		t.Errorf("x-flipped pin = %v, want (3,1)", got)
	}
	p.FlipY[0] = true
	got = n.PinPos(p, PinRef{0, 0})
	if got != (geom.Point{X: 3, Y: 1}) {
		t.Errorf("xy-flipped pin = %v, want (3,1) for centered pin y", got)
	}
	// Footprint must not move under flipping.
	r := n.DeviceRect(p, 0)
	if r != geom.RectWH(0, 0, 4, 2) {
		t.Errorf("flipping moved footprint: %v", r)
	}
}

func TestHPWLAndArea(t *testing.T) {
	n := twoDeviceNetlist()
	p := NewPlacement(n)
	p.X[0], p.Y[0] = 2, 1  // A at [0,4]x[0,2], pin (1,1)
	p.X[1], p.Y[1] = 12, 1 // B at [10,14]x[0,2], pin (13,1)

	if got := n.NetHPWL(p, 0); got != 12 {
		t.Errorf("NetHPWL = %g, want 12", got)
	}
	if got := n.HPWL(p); got != 12 {
		t.Errorf("HPWL = %g, want 12", got)
	}
	n.Nets[0].Weight = 2.5
	if got := n.HPWL(p); got != 30 {
		t.Errorf("weighted HPWL = %g, want 30", got)
	}
	if got := n.Area(p); got != 14*2 {
		t.Errorf("Area = %g, want 28", got)
	}
	bb := n.BoundingBox(p)
	if bb != (geom.Rect{Lo: geom.Point{X: 0, Y: 0}, Hi: geom.Point{X: 14, Y: 2}}) {
		t.Errorf("BoundingBox = %v", bb)
	}
}

func TestTotalOverlap(t *testing.T) {
	n := twoDeviceNetlist()
	p := NewPlacement(n)
	p.X[0], p.Y[0] = 2, 1
	p.X[1], p.Y[1] = 4, 1 // B at [2,6]x[0,2]: overlap 2x2 with A
	if got := n.TotalOverlap(p); got != 4 {
		t.Errorf("TotalOverlap = %g, want 4", got)
	}
	p.X[1] = 100
	if got := n.TotalOverlap(p); got != 0 {
		t.Errorf("TotalOverlap disjoint = %g, want 0", got)
	}
}

func TestCheckLegalSymmetry(t *testing.T) {
	n := twoDeviceNetlist()
	n.SymGroups = []SymmetryGroup{{Pairs: [][2]int{{0, 1}}}}
	p := NewPlacement(n)
	p.X[0], p.Y[0] = 2, 1
	p.X[1], p.Y[1] = 10, 1
	p.AxisX[0] = 6

	if rep := n.CheckLegal(p, 1e-6); !rep.OK() {
		t.Fatalf("symmetric placement reported illegal: %+v", rep)
	}
	p.Y[1] = 5
	rep := n.CheckLegal(p, 1e-6)
	if len(rep.SymViolations) == 0 {
		t.Error("y-mismatch not detected")
	}
	if rep.Err() == nil {
		t.Error("Err should be non-nil for illegal placement")
	}
	p.Y[1] = 1
	p.AxisX[0] = 7
	rep = n.CheckLegal(p, 1e-6)
	if len(rep.SymViolations) == 0 {
		t.Error("axis offset not detected")
	}
}

func TestCheckLegalAlignAndOrder(t *testing.T) {
	n := twoDeviceNetlist()
	n.BottomAlign = [][2]int{{0, 1}}
	n.VCenterAlign = [][2]int{{0, 1}}
	n.HOrders = [][]int{{0, 1}}
	p := NewPlacement(n)
	p.X[0], p.Y[0] = 2, 1
	p.X[1], p.Y[1] = 2, 10 // stacked vertically, same x-center, same... bottom differs

	rep := n.CheckLegal(p, 1e-6)
	if len(rep.AlignErrors) != 1 {
		t.Errorf("want 1 bottom-align error, got %v", rep.AlignErrors)
	}
	if len(rep.OrderErrors) != 1 {
		t.Errorf("want 1 order error (x overlap in order), got %v", rep.OrderErrors)
	}
	// Fix: B to the right of A, same bottom.
	p.X[1], p.Y[1] = 8, 1
	rep = n.CheckLegal(p, 1e-6)
	if len(rep.AlignErrors) != 1 { // vcenter now violated
		t.Errorf("want 1 vcenter error, got %v", rep.AlignErrors)
	}
	if len(rep.OrderErrors) != 0 {
		t.Errorf("order should now pass, got %v", rep.OrderErrors)
	}
}

func TestNormalize(t *testing.T) {
	n := twoDeviceNetlist()
	n.SymGroups = []SymmetryGroup{{Pairs: [][2]int{{0, 1}}}}
	p := NewPlacement(n)
	p.X[0], p.Y[0] = -5, 7
	p.X[1], p.Y[1] = 3, 7
	p.AxisX[0] = -1
	n.Normalize(p)
	bb := n.BoundingBox(p)
	if math.Abs(bb.Lo.X) > 1e-12 || math.Abs(bb.Lo.Y) > 1e-12 {
		t.Errorf("Normalize left lower-left at %v", bb.Lo)
	}
	// Axis must shift with devices: still centered between them.
	want := (p.X[0] + p.X[1]) / 2
	if math.Abs(p.AxisX[0]-want) > 1e-12 {
		t.Errorf("axis = %g, want %g", p.AxisX[0], want)
	}
}

func TestResolveAxes(t *testing.T) {
	n := twoDeviceNetlist()
	n.SymGroups = []SymmetryGroup{{Pairs: [][2]int{{0, 1}}, Self: nil}}
	p := NewPlacement(n)
	p.X[0], p.X[1] = 0, 10
	n.ResolveAxes(p)
	if p.AxisX[0] != 5 {
		t.Errorf("axis = %g, want 5", p.AxisX[0])
	}
}

func TestCloneIndependence(t *testing.T) {
	n := twoDeviceNetlist()
	p := NewPlacement(n)
	p.X[0] = 1
	q := p.Clone()
	q.X[0] = 99
	q.FlipX[0] = true
	if p.X[0] != 1 || p.FlipX[0] {
		t.Error("Clone shares storage with original")
	}
}

func TestDeviceDegree(t *testing.T) {
	n := twoDeviceNetlist()
	// Add a second net touching only device 0 twice (same device, two refs).
	n.Devices[0].Pins = append(n.Devices[0].Pins, Pin{Name: "d", Offset: geom.Point{X: 2, Y: 1}})
	n.Nets = append(n.Nets, Net{Name: "n2", Pins: []PinRef{{0, 0}, {0, 1}}})
	deg := n.DeviceDegree()
	if deg[0] != 2 || deg[1] != 1 {
		t.Errorf("DeviceDegree = %v, want [2 1]", deg)
	}
}

func TestCheckSized(t *testing.T) {
	n := twoDeviceNetlist()
	p := NewPlacement(n)
	if err := n.CheckSized(p); err != nil {
		t.Fatalf("CheckSized: %v", err)
	}
	p.X = p.X[:1]
	if err := n.CheckSized(p); err == nil {
		t.Fatal("CheckSized accepted wrong-sized placement")
	}
}

func TestTotalDeviceArea(t *testing.T) {
	n := twoDeviceNetlist()
	if got := n.TotalDeviceArea(); got != 16 {
		t.Errorf("TotalDeviceArea = %g, want 16", got)
	}
}

func TestUnitConversions(t *testing.T) {
	if got := LenUM(25); math.Abs(got-2.5) > 1e-12 {
		t.Errorf("LenUM(25) = %g", got)
	}
	if got := AreaUM2(100); math.Abs(got-1.0) > 1e-12 {
		t.Errorf("AreaUM2(100) = %g", got)
	}
}

func TestDeviceTypeString(t *testing.T) {
	for ty, want := range map[DeviceType]string{
		NMOS: "nmos", PMOS: "pmos", Cap: "cap", Res: "res", Ind: "ind", Other: "other",
	} {
		if got := ty.String(); got != want {
			t.Errorf("%d.String() = %q, want %q", ty, got, want)
		}
	}
}
