package circuit

import (
	"bytes"
	"strings"
	"testing"
)

func TestWriteSVG(t *testing.T) {
	n := jsonTestNetlist()
	p := NewPlacement(n)
	p.X[0], p.Y[0] = 2, 1
	p.X[1], p.Y[1] = 10, 1
	p.X[2], p.Y[2] = 6, 8
	p.AxisX[0] = 6
	var buf bytes.Buffer
	if err := n.WriteSVG(&buf, p); err != nil {
		t.Fatal(err)
	}
	s := buf.String()
	for _, want := range []string{"<svg", "</svg>", "M1", "M2", "C1", "stroke-dasharray"} {
		if !strings.Contains(s, want) {
			t.Errorf("SVG missing %q", want)
		}
	}
	// One rect per device plus background and outline.
	if got := strings.Count(s, "<rect"); got != len(n.Devices)+2 {
		t.Errorf("rect count = %d, want %d", got, len(n.Devices)+2)
	}
	// Pins drawn as circles.
	if got := strings.Count(s, "<circle"); got != 4 {
		t.Errorf("circle count = %d, want 4 pins", got)
	}
	// Size mismatch rejected.
	p.X = p.X[:1]
	if err := n.WriteSVG(&buf, p); err == nil {
		t.Error("accepted wrong-sized placement")
	}
}
