package circuit

import (
	"fmt"
	"io"
)

// svgPalette assigns a fill color per device type.
var svgPalette = map[DeviceType]string{
	NMOS:  "#7eb0d5",
	PMOS:  "#fd7f6f",
	Cap:   "#b2e061",
	Res:   "#ffee65",
	Ind:   "#bd7ebe",
	Other: "#cccccc",
}

// WriteSVG renders the placement as a standalone SVG document: device
// rectangles colored by type and labeled by name, pins as dots, symmetry
// axes as dashed lines. Intended for eyeballing placer results.
func (n *Netlist) WriteSVG(w io.Writer, p *Placement) error {
	if err := n.CheckSized(p); err != nil {
		return err
	}
	bb := n.BoundingBox(p)
	const margin = 10.0
	width := bb.W() + 2*margin
	height := bb.H() + 2*margin
	// SVG y grows downward; flip the layout vertically.
	toX := func(x float64) float64 { return x - bb.Lo.X + margin }
	toY := func(y float64) float64 { return height - (y - bb.Lo.Y + margin) }

	if _, err := fmt.Fprintf(w,
		`<svg xmlns="http://www.w3.org/2000/svg" viewBox="0 0 %.1f %.1f" width="%.0f" height="%.0f">`+"\n",
		width, height, width*2, height*2); err != nil {
		return err
	}
	fmt.Fprintf(w, `<rect x="0" y="0" width="%.1f" height="%.1f" fill="#ffffff"/>`+"\n", width, height)
	fmt.Fprintf(w, `<rect x="%.1f" y="%.1f" width="%.1f" height="%.1f" fill="none" stroke="#999" stroke-width="0.5"/>`+"\n",
		toX(bb.Lo.X), toY(bb.Hi.Y), bb.W(), bb.H())

	for i := range n.Devices {
		d := &n.Devices[i]
		r := n.DeviceRect(p, i)
		color := svgPalette[d.Type]
		fmt.Fprintf(w, `<rect x="%.2f" y="%.2f" width="%.2f" height="%.2f" fill="%s" stroke="#333" stroke-width="0.4"/>`+"\n",
			toX(r.Lo.X), toY(r.Hi.Y), r.W(), r.H(), color)
		fontSize := r.W() / float64(len(d.Name)+1) * 1.4
		if fontSize > r.H()*0.5 {
			fontSize = r.H() * 0.5
		}
		fmt.Fprintf(w, `<text x="%.2f" y="%.2f" font-size="%.2f" font-family="monospace" text-anchor="middle">%s</text>`+"\n",
			toX(p.X[i]), toY(p.Y[i])+fontSize/3, fontSize, d.Name)
		for pi := range d.Pins {
			pt := n.PinPos(p, PinRef{Device: i, Pin: pi})
			fmt.Fprintf(w, `<circle cx="%.2f" cy="%.2f" r="%.2f" fill="#222"/>`+"\n",
				toX(pt.X), toY(pt.Y), r.W()*0.03+0.4)
		}
	}
	for gi := range n.SymGroups {
		ax := p.AxisX[gi]
		fmt.Fprintf(w, `<line x1="%.2f" y1="%.2f" x2="%.2f" y2="%.2f" stroke="#c00" stroke-width="0.5" stroke-dasharray="3,2"/>`+"\n",
			toX(ax), toY(bb.Lo.Y), toX(ax), toY(bb.Hi.Y))
	}
	_, err := fmt.Fprintln(w, "</svg>")
	return err
}
