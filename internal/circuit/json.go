package circuit

import (
	"encoding/json"
	"fmt"
	"io"

	"repro/internal/geom"
)

// jsonNetlist is the on-disk schema for a netlist. Field names are chosen
// for hand-editability; see cmd/placer for a full example.
type jsonNetlist struct {
	Name    string       `json:"name"`
	Devices []jsonDevice `json:"devices"`
	Nets    []jsonNet    `json:"nets"`

	SymGroups    []jsonSymGroup `json:"symmetry_groups,omitempty"`
	BottomAlign  [][2]string    `json:"bottom_align,omitempty"`
	VCenterAlign [][2]string    `json:"vcenter_align,omitempty"`
	HOrders      [][]string     `json:"horizontal_orders,omitempty"`
}

type jsonDevice struct {
	Name string    `json:"name"`
	Type string    `json:"type"`
	W    float64   `json:"w"`
	H    float64   `json:"h"`
	Pins []jsonPin `json:"pins"`
}

type jsonPin struct {
	Name string  `json:"name"`
	X    float64 `json:"x"`
	Y    float64 `json:"y"`
}

type jsonNet struct {
	Name   string   `json:"name"`
	Pins   []string `json:"pins"` // "device.pin"
	Weight float64  `json:"weight,omitempty"`
}

type jsonSymGroup struct {
	Pairs [][2]string `json:"pairs,omitempty"`
	Self  []string    `json:"self,omitempty"`
}

func typeFromString(s string) (DeviceType, error) {
	for t := NMOS; t <= Other; t++ {
		if t.String() == s {
			return t, nil
		}
	}
	return Other, fmt.Errorf("unknown device type %q", s)
}

// WriteJSON serializes the netlist to w.
func (n *Netlist) WriteJSON(w io.Writer) error {
	out := jsonNetlist{Name: n.Name}
	for i := range n.Devices {
		d := &n.Devices[i]
		jd := jsonDevice{Name: d.Name, Type: d.Type.String(), W: d.W, H: d.H}
		for _, p := range d.Pins {
			jd.Pins = append(jd.Pins, jsonPin{Name: p.Name, X: p.Offset.X, Y: p.Offset.Y})
		}
		out.Devices = append(out.Devices, jd)
	}
	pinRefName := func(pr PinRef) string {
		return n.Devices[pr.Device].Name + "." + n.Devices[pr.Device].Pins[pr.Pin].Name
	}
	for e := range n.Nets {
		net := &n.Nets[e]
		jn := jsonNet{Name: net.Name, Weight: net.Weight}
		for _, pr := range net.Pins {
			jn.Pins = append(jn.Pins, pinRefName(pr))
		}
		out.Nets = append(out.Nets, jn)
	}
	devName := func(i int) string { return n.Devices[i].Name }
	for gi := range n.SymGroups {
		g := &n.SymGroups[gi]
		jg := jsonSymGroup{}
		for _, pr := range g.Pairs {
			jg.Pairs = append(jg.Pairs, [2]string{devName(pr[0]), devName(pr[1])})
		}
		for _, r := range g.Self {
			jg.Self = append(jg.Self, devName(r))
		}
		out.SymGroups = append(out.SymGroups, jg)
	}
	for _, pr := range n.BottomAlign {
		out.BottomAlign = append(out.BottomAlign, [2]string{devName(pr[0]), devName(pr[1])})
	}
	for _, pr := range n.VCenterAlign {
		out.VCenterAlign = append(out.VCenterAlign, [2]string{devName(pr[0]), devName(pr[1])})
	}
	for _, grp := range n.HOrders {
		var names []string
		for _, d := range grp {
			names = append(names, devName(d))
		}
		out.HOrders = append(out.HOrders, names)
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(out)
}

// ReadJSON parses a netlist from r and validates it.
func ReadJSON(r io.Reader) (*Netlist, error) {
	var in jsonNetlist
	dec := json.NewDecoder(r)
	dec.DisallowUnknownFields()
	if err := dec.Decode(&in); err != nil {
		return nil, fmt.Errorf("circuit: parsing netlist JSON: %w", err)
	}
	n := &Netlist{Name: in.Name}
	if len(in.Devices) == 0 {
		return nil, fmt.Errorf("circuit: netlist %q has no devices", in.Name)
	}
	devIdx := map[string]int{}
	for di, jd := range in.Devices {
		if jd.Name == "" {
			return nil, fmt.Errorf("circuit: devices[%d] has no name", di)
		}
		if _, dup := devIdx[jd.Name]; dup {
			return nil, fmt.Errorf("circuit: duplicate device name %q", jd.Name)
		}
		ty, err := typeFromString(jd.Type)
		if err != nil {
			return nil, fmt.Errorf("circuit: device %q: %w", jd.Name, err)
		}
		d := Device{Name: jd.Name, Type: ty, W: jd.W, H: jd.H}
		for _, jp := range jd.Pins {
			d.Pins = append(d.Pins, Pin{Name: jp.Name, Offset: geom.Point{X: jp.X, Y: jp.Y}})
		}
		devIdx[jd.Name] = len(n.Devices)
		n.Devices = append(n.Devices, d)
	}
	lookupDev := func(name string) (int, error) {
		i, ok := devIdx[name]
		if !ok {
			return 0, fmt.Errorf("circuit: unknown device %q", name)
		}
		return i, nil
	}
	lookupPin := func(ref string) (PinRef, error) {
		lastDot := -1
		for cut := len(ref) - 1; cut > 0; cut-- {
			if ref[cut] != '.' {
				continue
			}
			if lastDot < 0 {
				lastDot = cut
			}
			di, ok := devIdx[ref[:cut]]
			if !ok {
				continue
			}
			pinName := ref[cut+1:]
			for pi := range n.Devices[di].Pins {
				if n.Devices[di].Pins[pi].Name == pinName {
					return PinRef{Device: di, Pin: pi}, nil
				}
			}
			return PinRef{}, fmt.Errorf("circuit: device %q has no pin %q", ref[:cut], pinName)
		}
		if lastDot < 0 {
			return PinRef{}, fmt.Errorf("circuit: pin reference %q is not of the form device.pin", ref)
		}
		return PinRef{}, fmt.Errorf("circuit: pin reference %q names unknown device %q", ref, ref[:lastDot])
	}
	for ni, jn := range in.Nets {
		// Net names are labels, not identifiers (pins resolve by index), so
		// duplicates are allowed; an unnamed net is reported by position.
		netLabel := jn.Name
		if netLabel == "" {
			netLabel = fmt.Sprintf("nets[%d]", ni)
		}
		if len(jn.Pins) == 0 {
			return nil, fmt.Errorf("circuit: net %q has no pins", netLabel)
		}
		net := Net{Name: jn.Name, Weight: jn.Weight}
		for _, ref := range jn.Pins {
			pr, err := lookupPin(ref)
			if err != nil {
				return nil, fmt.Errorf("net %q: %w", netLabel, err)
			}
			net.Pins = append(net.Pins, pr)
		}
		n.Nets = append(n.Nets, net)
	}
	for _, jg := range in.SymGroups {
		g := SymmetryGroup{}
		for _, pr := range jg.Pairs {
			a, err := lookupDev(pr[0])
			if err != nil {
				return nil, err
			}
			b, err := lookupDev(pr[1])
			if err != nil {
				return nil, err
			}
			g.Pairs = append(g.Pairs, [2]int{a, b})
		}
		for _, nm := range jg.Self {
			r, err := lookupDev(nm)
			if err != nil {
				return nil, err
			}
			g.Self = append(g.Self, r)
		}
		n.SymGroups = append(n.SymGroups, g)
	}
	pair := func(pr [2]string) ([2]int, error) {
		a, err := lookupDev(pr[0])
		if err != nil {
			return [2]int{}, err
		}
		b, err := lookupDev(pr[1])
		if err != nil {
			return [2]int{}, err
		}
		return [2]int{a, b}, nil
	}
	for _, jp := range in.BottomAlign {
		p, err := pair(jp)
		if err != nil {
			return nil, err
		}
		n.BottomAlign = append(n.BottomAlign, p)
	}
	for _, jp := range in.VCenterAlign {
		p, err := pair(jp)
		if err != nil {
			return nil, err
		}
		n.VCenterAlign = append(n.VCenterAlign, p)
	}
	for _, names := range in.HOrders {
		var grp []int
		for _, nm := range names {
			d, err := lookupDev(nm)
			if err != nil {
				return nil, err
			}
			grp = append(grp, d)
		}
		n.HOrders = append(n.HOrders, grp)
	}
	if err := n.Validate(); err != nil {
		return nil, err
	}
	return n, nil
}

// jsonPlacement is the on-disk schema for a placement result.
type jsonPlacement struct {
	Design  string             `json:"design"`
	AreaUM2 float64            `json:"area_um2"`
	HPWLUM  float64            `json:"hpwl_um"`
	Devices []jsonPlacedDevice `json:"devices"`
	Axes    []float64          `json:"symmetry_axes_x,omitempty"`
}

type jsonPlacedDevice struct {
	Name  string  `json:"name"`
	X     float64 `json:"x"` // center, grid units
	Y     float64 `json:"y"`
	FlipX bool    `json:"flip_x,omitempty"`
	FlipY bool    `json:"flip_y,omitempty"`
}

// WritePlacementJSON serializes placement p (for netlist n) to w.
func (n *Netlist) WritePlacementJSON(w io.Writer, p *Placement) error {
	if err := n.CheckSized(p); err != nil {
		return err
	}
	out := jsonPlacement{
		Design:  n.Name,
		AreaUM2: AreaUM2(n.Area(p)),
		HPWLUM:  LenUM(n.HPWL(p)),
		Axes:    append([]float64(nil), p.AxisX...),
	}
	for i := range n.Devices {
		out.Devices = append(out.Devices, jsonPlacedDevice{
			Name: n.Devices[i].Name, X: p.X[i], Y: p.Y[i],
			FlipX: p.FlipX[i], FlipY: p.FlipY[i],
		})
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(out)
}

// PlacementDoc is a parsed placement JSON document (the schema
// WritePlacementJSON emits) not yet bound to a netlist: device positions
// are keyed by name so the document can be matched against any netlist
// sharing those names. The warm-start (ECO) flow reads a prior placement
// this way and matches it onto the edited netlist's surviving devices.
type PlacementDoc struct {
	Design string
	Names  []string
	X, Y   []float64
	FlipX  []bool
	FlipY  []bool
	AxesX  []float64

	byName map[string]int
}

// Device returns the document index of the named device.
func (d *PlacementDoc) Device(name string) (int, bool) {
	i, ok := d.byName[name]
	return i, ok
}

// ReadPlacementDoc parses a placement JSON document from r. It rejects
// unknown fields, empty documents, and duplicate device names.
func ReadPlacementDoc(r io.Reader) (*PlacementDoc, error) {
	dec := json.NewDecoder(r)
	dec.DisallowUnknownFields()
	var in jsonPlacement
	if err := dec.Decode(&in); err != nil {
		return nil, fmt.Errorf("placement json: %w", err)
	}
	if len(in.Devices) == 0 {
		return nil, fmt.Errorf("placement json: no devices")
	}
	doc := &PlacementDoc{
		Design: in.Design,
		AxesX:  append([]float64(nil), in.Axes...),
		byName: make(map[string]int, len(in.Devices)),
	}
	for _, jd := range in.Devices {
		if jd.Name == "" {
			return nil, fmt.Errorf("placement json: device with empty name")
		}
		if _, dup := doc.byName[jd.Name]; dup {
			return nil, fmt.Errorf("placement json: duplicate device %q", jd.Name)
		}
		doc.byName[jd.Name] = len(doc.Names)
		doc.Names = append(doc.Names, jd.Name)
		doc.X = append(doc.X, jd.X)
		doc.Y = append(doc.Y, jd.Y)
		doc.FlipX = append(doc.FlipX, jd.FlipX)
		doc.FlipY = append(doc.FlipY, jd.FlipY)
	}
	return doc, nil
}
