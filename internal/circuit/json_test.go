package circuit

import (
	"bytes"
	"strings"
	"testing"

	"repro/internal/geom"
)

func jsonTestNetlist() *Netlist {
	return &Netlist{
		Name: "rt",
		Devices: []Device{
			{Name: "M1", Type: NMOS, W: 4, H: 2, Pins: []Pin{
				{Name: "g", Offset: geom.Point{X: 1, Y: 1}},
				{Name: "d", Offset: geom.Point{X: 3, Y: 1}},
			}},
			{Name: "M2", Type: NMOS, W: 4, H: 2, Pins: []Pin{
				{Name: "g", Offset: geom.Point{X: 1, Y: 1}},
			}},
			{Name: "C1", Type: Cap, W: 3, H: 3, Pins: []Pin{
				{Name: "p", Offset: geom.Point{X: 1, Y: 1.5}},
			}},
		},
		Nets: []Net{
			{Name: "a", Pins: []PinRef{{Device: 0, Pin: 0}, {Device: 1, Pin: 0}}, Weight: 2},
			{Name: "b", Pins: []PinRef{{Device: 0, Pin: 1}, {Device: 2, Pin: 0}}},
		},
		SymGroups:    []SymmetryGroup{{Pairs: [][2]int{{0, 1}}, Self: []int{2}}},
		BottomAlign:  [][2]int{{0, 2}},
		VCenterAlign: [][2]int{{1, 2}},
		HOrders:      [][]int{{0, 1, 2}},
	}
}

func TestJSONRoundtrip(t *testing.T) {
	n := jsonTestNetlist()
	var buf bytes.Buffer
	if err := n.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := ReadJSON(&buf)
	if err != nil {
		t.Fatalf("ReadJSON: %v\njson was:\n%s", err, buf.String())
	}
	if got.Name != n.Name || len(got.Devices) != len(n.Devices) || len(got.Nets) != len(n.Nets) {
		t.Fatalf("structure mismatch: %+v", got)
	}
	for i := range n.Devices {
		if got.Devices[i].Name != n.Devices[i].Name ||
			got.Devices[i].Type != n.Devices[i].Type ||
			got.Devices[i].W != n.Devices[i].W {
			t.Errorf("device %d mismatch: %+v vs %+v", i, got.Devices[i], n.Devices[i])
		}
	}
	if got.Nets[0].Weight != 2 {
		t.Errorf("net weight lost: %+v", got.Nets[0])
	}
	if len(got.SymGroups) != 1 || got.SymGroups[0].Pairs[0] != [2]int{0, 1} || got.SymGroups[0].Self[0] != 2 {
		t.Errorf("symmetry lost: %+v", got.SymGroups)
	}
	if got.BottomAlign[0] != [2]int{0, 2} || got.VCenterAlign[0] != [2]int{1, 2} {
		t.Errorf("alignments lost")
	}
	if len(got.HOrders[0]) != 3 {
		t.Errorf("orders lost")
	}
}

func TestReadJSONErrors(t *testing.T) {
	cases := []struct {
		name string
		json string
		want string
	}{
		{"garbage", "{", "parsing"},
		{"unknown field", `{"name":"x","bogus":1}`, "parsing"},
		{"bad type", `{"name":"x","devices":[{"name":"a","type":"warp","w":1,"h":1,"pins":[{"name":"p","x":0,"y":0}]}],"nets":[]}`, "unknown device type"},
		{"dup device", `{"name":"x","devices":[
			{"name":"a","type":"nmos","w":1,"h":1,"pins":[{"name":"p","x":0,"y":0}]},
			{"name":"a","type":"nmos","w":1,"h":1,"pins":[{"name":"p","x":0,"y":0}]}],"nets":[]}`, "duplicate device"},
		{"bad pin ref", `{"name":"x","devices":[{"name":"a","type":"nmos","w":1,"h":1,"pins":[{"name":"p","x":0,"y":0}]}],
			"nets":[{"name":"n","pins":["a.q"]}]}`, "no pin"},
		{"bad net device", `{"name":"x","devices":[{"name":"a","type":"nmos","w":1,"h":1,"pins":[{"name":"p","x":0,"y":0}]}],
			"nets":[{"name":"n","pins":["zz.p"]}]}`, `unknown device "zz"`},
		{"not dotted", `{"name":"x","devices":[{"name":"a","type":"nmos","w":1,"h":1,"pins":[{"name":"p","x":0,"y":0}]}],
			"nets":[{"name":"n","pins":["justaname"]}]}`, "not of the form"},
		{"unnamed device", `{"name":"x","devices":[{"type":"nmos","w":1,"h":1,"pins":[{"name":"p","x":0,"y":0}]}],"nets":[]}`, "devices[0] has no name"},
		{"no devices", `{"name":"x","devices":[],"nets":[]}`, "no devices"},
		{"empty net", `{"name":"x","devices":[{"name":"a","type":"nmos","w":1,"h":1,"pins":[{"name":"p","x":0,"y":0}]}],
			"nets":[{"name":"floating","pins":[]}]}`, `net "floating" has no pins`},
		{"invalid netlist", `{"name":"x","devices":[{"name":"a","type":"nmos","w":-1,"h":1,"pins":[]}],"nets":[]}`, "non-positive"},
	}
	for _, tc := range cases {
		_, err := ReadJSON(strings.NewReader(tc.json))
		if err == nil {
			t.Errorf("%s: accepted bad input", tc.name)
			continue
		}
		if !strings.Contains(err.Error(), tc.want) {
			t.Errorf("%s: error %q missing %q", tc.name, err, tc.want)
		}
	}
}

func TestDottedDeviceNames(t *testing.T) {
	// Device names containing dots must still resolve pin refs (longest
	// device-name match wins).
	j := `{"name":"x","devices":[
		{"name":"x1.m","type":"nmos","w":2,"h":2,"pins":[{"name":"g","x":1,"y":1}]},
		{"name":"x2","type":"nmos","w":2,"h":2,"pins":[{"name":"g","x":1,"y":1}]}],
		"nets":[{"name":"n","pins":["x1.m.g","x2.g"]}]}`
	n, err := ReadJSON(strings.NewReader(j))
	if err != nil {
		t.Fatal(err)
	}
	if n.Nets[0].Pins[0].Device != 0 || n.Nets[0].Pins[1].Device != 1 {
		t.Errorf("pin resolution wrong: %+v", n.Nets[0].Pins)
	}
}

func TestWritePlacementJSON(t *testing.T) {
	n := jsonTestNetlist()
	p := NewPlacement(n)
	p.X[0], p.Y[0] = 2, 1
	p.X[1], p.Y[1] = 10, 1
	p.FlipX[1] = true
	var buf bytes.Buffer
	if err := n.WritePlacementJSON(&buf, p); err != nil {
		t.Fatal(err)
	}
	s := buf.String()
	for _, want := range []string{`"design": "rt"`, `"name": "M1"`, `"flip_x": true`, `"area_um2"`} {
		if !strings.Contains(s, want) {
			t.Errorf("placement JSON missing %q:\n%s", want, s)
		}
	}
	// Size mismatch is rejected.
	p.X = p.X[:1]
	if err := n.WritePlacementJSON(&buf, p); err == nil {
		t.Error("accepted wrong-sized placement")
	}
}
