package core

import (
	"strings"
	"testing"

	"repro/internal/obs/metrics"
	"repro/internal/testcircuits"
)

func TestShortNameRoundTrips(t *testing.T) {
	for _, m := range []Method{MethodSA, MethodPrev, MethodEPlaceA} {
		got, err := ParseMethod(m.ShortName())
		if err != nil {
			t.Fatalf("ParseMethod(%q): %v", m.ShortName(), err)
		}
		if got != m {
			t.Errorf("ParseMethod(%v.ShortName()) = %v", m, got)
		}
	}
}

// TestMeteringIsObservationOnly checks a metered run and an unmetered run at
// the same seed produce identical placements — the metrics registry, like
// the tracer, must never perturb the optimization — and that the analytical
// methods actually feed the kernel histograms.
func TestMeteringIsObservationOnly(t *testing.T) {
	c, err := testcircuits.ByName("Adder")
	if err != nil {
		t.Fatal(err)
	}
	for _, m := range []Method{MethodSA, MethodPrev, MethodEPlaceA} {
		plain, err := Place(c.Netlist, m, Options{Seed: 3, SA: fastSA(3)})
		if err != nil {
			t.Fatalf("%v: %v", m, err)
		}
		reg := metrics.New()
		metered, err := Place(c.Netlist, m, Options{Seed: 3, SA: fastSA(3), Metrics: reg})
		if err != nil {
			t.Fatalf("%v metered: %v", m, err)
		}
		for i := range plain.Placement.X {
			if plain.Placement.X[i] != metered.Placement.X[i] || plain.Placement.Y[i] != metered.Placement.Y[i] {
				t.Errorf("%v: device %d moved under metering: (%g,%g) vs (%g,%g)", m, i,
					plain.Placement.X[i], plain.Placement.Y[i],
					metered.Placement.X[i], metered.Placement.Y[i])
				break
			}
		}

		var out strings.Builder
		if err := reg.WritePrometheus(&out); err != nil {
			t.Fatalf("%v: WritePrometheus: %v", m, err)
		}
		text := out.String()
		if m == MethodSA {
			// SA has no GP kernels; nothing must have been registered.
			if strings.Contains(text, "placer_kernel_seconds") {
				t.Errorf("%v: unexpected kernel series:\n%s", m, text)
			}
			continue
		}
		wl := metrics.KernelHistogram(reg, []string{"method", m.ShortName(), "size", metrics.SizeClass(len(c.Netlist.Devices))}, "wl_grad")
		if wl.Count() == 0 {
			t.Errorf("%v: wl_grad histogram never observed; exposition:\n%s", m, text)
		}
		if !strings.Contains(text, `placer_kernel_seconds_bucket{method="`+m.ShortName()+`"`) {
			t.Errorf("%v: no kernel bucket series in exposition:\n%s", m, text)
		}
	}
}
