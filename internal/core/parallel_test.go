package core

import (
	"bytes"
	"context"
	"errors"
	"sync"
	"testing"
	"time"

	"repro/internal/eplacea"
	"repro/internal/gen"
	"repro/internal/par"
	"repro/internal/prevwork"
	"repro/internal/refine"
	"repro/internal/testcircuits"
)

// placementBytes renders a result the way cmd/placer and the service do, so
// determinism checks compare the exact client-visible payload.
func placementBytes(t *testing.T, c *testcircuits.Case, res *Result) []byte {
	t.Helper()
	var buf bytes.Buffer
	if err := c.Netlist.WritePlacementJSON(&buf, res.Placement); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// TestParallelPlaceDeterministic runs every method concurrently (the
// placerd worker-pool pattern) and checks each run is byte-identical to the
// sequential run at the same seed — i.e. the solvers share no hidden state.
func TestParallelPlaceDeterministic(t *testing.T) {
	c, err := testcircuits.ByName("Adder")
	if err != nil {
		t.Fatal(err)
	}
	type cfg struct {
		method Method
		opt    Options
	}
	cfgs := []cfg{
		{MethodSA, Options{Seed: 11, SA: fastSA(11)}},
		{MethodSA, Options{Seed: 12, SA: fastSA(12)}},
		{MethodPrev, Options{Seed: 13}},
		{MethodEPlaceA, Options{Seed: 15, Portfolio: 1}},
		{MethodEPlaceA, Options{Seed: 16, Portfolio: 1}},
		{MethodEPlaceA, Options{Seed: 15, Portfolio: 1}}, // duplicate config must agree too
	}

	want := make([][]byte, len(cfgs))
	for i, cf := range cfgs {
		res, err := Place(c.Netlist, cf.method, cf.opt)
		if err != nil {
			t.Fatalf("sequential %d (%v seed %d): %v", i, cf.method, cf.opt.Seed, err)
		}
		want[i] = placementBytes(t, c, res)
	}

	got := make([][]byte, len(cfgs))
	errs := make([]error, len(cfgs))
	var wg sync.WaitGroup
	for i, cf := range cfgs {
		wg.Add(1)
		go func(i int, cf cfg) {
			defer wg.Done()
			res, err := PlaceCtx(context.Background(), c.Netlist, cf.method, cf.opt)
			if err != nil {
				errs[i] = err
				return
			}
			got[i] = placementBytes(t, c, res)
		}(i, cf)
	}
	wg.Wait()
	for i := range cfgs {
		if errs[i] != nil {
			t.Fatalf("parallel %d (%v seed %d): %v", i, cfgs[i].method, cfgs[i].opt.Seed, errs[i])
		}
		if !bytes.Equal(got[i], want[i]) {
			t.Errorf("run %d (%v seed %d): parallel placement differs from sequential", i, cfgs[i].method, cfgs[i].opt.Seed)
		}
	}
}

// TestThreadCountByteIdentity places one generated netlist with threads=1
// and threads=8 and requires byte-identical placement JSON for every
// method: the deterministic sharding contract of internal/par, observed at
// the client-visible payload. The netlist is sized so every kernel actually
// shards (48 devices and 35 nets exceed the 32-element shard grains; the
// grid transforms shard per row) while the integrated-ILP detailed stage —
// sequential, and forced for eplace-a — stays affordable. The per-stage
// iteration caps only shorten the run; every kernel still executes
// hundreds of sharded evaluations.
//
// The options deliberately turn on the search-level parallel features too:
// a 5-chain SA portfolio (more chains than the 1-thread leg has workers,
// fewer than the 8-thread leg — both oversubscription directions) and the
// ILP refinement post-pass, so the byte-identity contract is pinned for
// the full portfolio + refine pipeline, not just the placement kernels.
func TestThreadCountByteIdentity(t *testing.T) {
	n, err := gen.Generate(gen.Params{Devices: 48, Seed: 9})
	if err != nil {
		t.Fatal(err)
	}
	render := func(res *Result) []byte {
		var buf bytes.Buffer
		if err := n.WritePlacementJSON(&buf, res.Placement); err != nil {
			t.Fatal(err)
		}
		return buf.Bytes()
	}
	methods := []Method{MethodSA, MethodPrev, MethodEPlaceA}
	if raceEnabled {
		// eplace-a's forced integrated-ILP detailed stage is sequential and
		// ~10x slower under the race detector — enough to blow the package's
		// test timeout. Cover its threaded global placement directly instead:
		// same kernels (wl gradients, rasterization, spectral solve, field
		// sampling) under an 8-worker pool, compared against the inline run.
		methods = methods[:2]
		pool := par.NewPool(8)
		defer pool.Close()
		gpOpt := eplacea.Options{Seed: 21, MaxIter: 60}
		inline, err := eplacea.Place(n, gpOpt)
		if err != nil {
			t.Fatalf("eplace-a GP inline: %v", err)
		}
		gpOpt.Pool = pool
		pooled, err := eplacea.Place(n, gpOpt)
		if err != nil {
			t.Fatalf("eplace-a GP pooled: %v", err)
		}
		for i := range inline.Placement.X {
			if inline.Placement.X[i] != pooled.Placement.X[i] ||
				inline.Placement.Y[i] != pooled.Placement.Y[i] {
				t.Fatalf("eplace-a GP: device %d differs between inline and 8-worker pool", i)
			}
		}
	}
	edited, err := gen.Generate(gen.Params{Devices: 60, Seed: 9})
	if err != nil {
		t.Fatal(err)
	}
	renderEdited := func(res *Result) []byte {
		var buf bytes.Buffer
		if err := edited.WritePlacementJSON(&buf, res.Placement); err != nil {
			t.Fatal(err)
		}
		return buf.Bytes()
	}
	for _, m := range methods {
		opt := Options{
			Seed:      21,
			SA:        fastSA(21),
			Portfolio: 1,
			Chains:    5,
			Refine:    &refine.Options{Windows: 4},
			Threads:   1,
			GP:        &eplacea.Options{MaxIter: 60},
			Prev:      &prevwork.Options{Epochs: 3, ItersPerEpoch: 25},
		}
		one, err := Place(n, m, opt)
		if err != nil {
			t.Fatalf("%v threads=1: %v", m, err)
		}
		opt.Threads = 8
		eight, err := Place(n, m, opt)
		if err != nil {
			t.Fatalf("%v threads=8: %v", m, err)
		}
		if !bytes.Equal(render(one), render(eight)) {
			t.Errorf("%v: placement JSON differs between threads=1 and threads=8", m)
		}

		// Warm-start (ECO) runs hold the same contract: the perturbed-region
		// diff, the warm initialization, and the focused cleanup stage are
		// all deterministic at any thread count. The edited netlist extends n
		// (same generator seed, more devices), warm-started from the
		// threads=1 placement above.
		wOpt := opt
		wOpt.Threads = 1
		wOpt.WarmStart = &WarmStart{Base: n, Placement: one.Placement}
		wOne, err := Place(edited, m, wOpt)
		if err != nil {
			t.Fatalf("%v warm threads=1: %v", m, err)
		}
		if wOne.WarmPerturbed == 0 {
			t.Errorf("%v warm: empty perturbed region", m)
		}
		wOpt.Threads = 8
		wEight, err := Place(edited, m, wOpt)
		if err != nil {
			t.Fatalf("%v warm threads=8: %v", m, err)
		}
		if !bytes.Equal(renderEdited(wOne), renderEdited(wEight)) {
			t.Errorf("%v: warm-start placement JSON differs between threads=1 and threads=8", m)
		}
	}
}

// TestSharedPoolByteIdentity covers the service configuration: one
// caller-owned pool handed to several concurrent placements via
// Options.Pool. Every result must be byte-identical to the Threads-based
// run of the same config — sharing the pool may change scheduling, never
// bits — and the caller's pool must remain usable afterwards (the flow
// must not close it).
func TestSharedPoolByteIdentity(t *testing.T) {
	n, err := gen.Generate(gen.Params{Devices: 48, Seed: 9})
	if err != nil {
		t.Fatal(err)
	}
	render := func(res *Result) []byte {
		var buf bytes.Buffer
		if err := n.WritePlacementJSON(&buf, res.Placement); err != nil {
			t.Fatal(err)
		}
		return buf.Bytes()
	}
	baseOpt := func(seed int64) Options {
		return Options{
			Seed:      seed,
			SA:        fastSA(seed),
			Portfolio: 1,
			GP:        &eplacea.Options{MaxIter: 60},
			Prev:      &prevwork.Options{Epochs: 3, ItersPerEpoch: 25},
		}
	}
	methods := []Method{MethodSA, MethodPrev, MethodEPlaceA}
	if raceEnabled {
		// eplace-a's sequential integrated-ILP detailed stage is ~10x
		// slower under the race detector; its pooled kernels are covered by
		// TestThreadCountByteIdentity's GP-only variant.
		methods = methods[:2]
	}

	want := make([][]byte, len(methods))
	for i, m := range methods {
		opt := baseOpt(21)
		opt.Threads = 4
		res, err := Place(n, m, opt)
		if err != nil {
			t.Fatalf("%v threads=4: %v", m, err)
		}
		want[i] = render(res)
	}

	pool := par.NewPool(4)
	defer pool.Close()
	got := make([][]byte, len(methods))
	errs := make([]error, len(methods))
	var wg sync.WaitGroup
	for i, m := range methods {
		wg.Add(1)
		go func(i int, m Method) {
			defer wg.Done()
			opt := baseOpt(21)
			opt.Pool = pool
			opt.Threads = 1 // must be ignored while Pool is set
			res, err := PlaceCtx(context.Background(), n, m, opt)
			if err != nil {
				errs[i] = err
				return
			}
			got[i] = render(res)
		}(i, m)
	}
	wg.Wait()
	for i, m := range methods {
		if errs[i] != nil {
			t.Fatalf("%v shared pool: %v", m, errs[i])
		}
		if !bytes.Equal(got[i], want[i]) {
			t.Errorf("%v: shared-pool placement differs from threads=4 run", m)
		}
	}
	// The pool must still work after the flows return.
	marks := make([]int, 8)
	pool.Run(len(marks), func(shard int) { marks[shard] = shard + 1 })
	for j, v := range marks {
		if v != j+1 {
			t.Fatalf("pool unusable after shared placements (mark %d = %d)", j, v)
		}
	}
}

// TestPlaceCtxPreCanceled checks every method refuses an already-canceled
// context without producing a partial placement.
func TestPlaceCtxPreCanceled(t *testing.T) {
	c, _ := testcircuits.ByName("Adder")
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	for _, m := range []Method{MethodSA, MethodPrev, MethodEPlaceA} {
		res, err := PlaceCtx(ctx, c.Netlist, m, Options{Seed: 1, SA: fastSA(1), Portfolio: 1})
		if !errors.Is(err, context.Canceled) {
			t.Errorf("%v: error %v, want context.Canceled", m, err)
		}
		if res != nil {
			t.Errorf("%v: canceled run still returned a placement", m)
		}
	}
}

// TestPlaceCtxDeadlineMidSolve cancels a run partway through and checks the
// solvers stop promptly at their next callback poll.
func TestPlaceCtxDeadlineMidSolve(t *testing.T) {
	c, _ := testcircuits.ByName("CC-OTA")
	for _, m := range []Method{MethodSA, MethodPrev, MethodEPlaceA} {
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Millisecond)
		start := time.Now()
		res, err := PlaceCtx(ctx, c.Netlist, m, Options{Seed: 2})
		took := time.Since(start)
		cancel()
		if err == nil {
			// A method can legitimately finish inside the deadline only if
			// it is much faster than 5ms; treat that as a pass with result.
			if res == nil {
				t.Errorf("%v: no error and no result", m)
			}
			continue
		}
		if !errors.Is(err, context.DeadlineExceeded) {
			t.Errorf("%v: error %v, want deadline exceeded", m, err)
		}
		if res != nil {
			t.Errorf("%v: timed-out run still returned a placement", m)
		}
		if took > 5*time.Second {
			t.Errorf("%v: took %v to notice a 5ms deadline", m, took)
		}
	}
}

// TestTrainPerfGNNCtxCanceled checks training honors cancellation.
func TestTrainPerfGNNCtxCanceled(t *testing.T) {
	c, _ := testcircuits.ByName("Adder")
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	_, _, err := TrainPerfGNNCtx(ctx, c.Netlist, c.Perf, c.Threshold,
		TrainOptions{Seed: 3, Samples: 100, Epochs: 5})
	if !errors.Is(err, context.Canceled) {
		t.Errorf("training with canceled context: %v, want context.Canceled", err)
	}
}
