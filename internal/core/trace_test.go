package core

import (
	"testing"

	"repro/internal/obs"
	"repro/internal/testcircuits"
)

// TestTraceCoversPipeline runs every method under a tracer and checks each
// pipeline stage opens at least one span and each solver emits at least one
// iteration/progress event.
func TestTraceCoversPipeline(t *testing.T) {
	c, err := testcircuits.ByName("Adder")
	if err != nil {
		t.Fatal(err)
	}

	cases := []struct {
		method    Method
		wantSpans []string
		check     func(t *testing.T, sink *obs.MemorySink)
	}{
		{MethodEPlaceA, []string{"place", "gp", "detailed"}, func(t *testing.T, sink *obs.MemorySink) {
			solvers := map[string]int{}
			for _, e := range sink.ByKind(obs.KindIter) {
				solvers[e.Iter.Solver]++
			}
			for _, s := range []string{"nesterov", "eplace-gp"} {
				if solvers[s] == 0 {
					t.Errorf("no %q iteration events", s)
				}
			}
			if len(sink.ByKind(obs.KindLP)) == 0 {
				t.Error("no LP/ILP solve events from detailed placement")
			}
		}},
		{MethodPrev, []string{"place", "gp", "detailed"}, func(t *testing.T, sink *obs.MemorySink) {
			solvers := map[string]int{}
			for _, e := range sink.ByKind(obs.KindIter) {
				solvers[e.Iter.Solver]++
			}
			for _, s := range []string{"cg", "prev-epoch"} {
				if solvers[s] == 0 {
					t.Errorf("no %q iteration events", s)
				}
			}
		}},
		{MethodSA, []string{"place", "sa"}, func(t *testing.T, sink *obs.MemorySink) {
			if len(sink.ByKind(obs.KindSA)) == 0 {
				t.Error("no SA progress events")
			}
		}},
	}

	for _, tc := range cases {
		t.Run(tc.method.String(), func(t *testing.T) {
			sink := &obs.MemorySink{}
			tr := obs.New(sink)
			if _, err := Place(c.Netlist, tc.method, Options{Seed: 1, SA: fastSA(1), Tracer: tr}); err != nil {
				t.Fatal(err)
			}
			if err := tr.Close(); err != nil {
				t.Fatal(err)
			}

			started := map[string]bool{}
			for _, e := range sink.ByKind(obs.KindSpanStart) {
				// Record the leaf name: paths are slash-joined.
				started[leaf(e.Span)] = true
			}
			ended := map[string]bool{}
			for _, e := range sink.ByKind(obs.KindSpanEnd) {
				ended[leaf(e.Span)] = true
			}
			for _, want := range tc.wantSpans {
				if !started[want] {
					t.Errorf("stage span %q never started (have %v)", want, started)
				}
				if !ended[want] {
					t.Errorf("stage span %q never ended", want)
				}
			}
			tc.check(t, sink)

			if n := len(sink.ByKind(obs.KindSummary)); n != 1 {
				t.Errorf("got %d summary events, want 1", n)
			}
		})
	}
}

// leaf returns the last element of a slash-joined span path.
func leaf(path string) string {
	for i := len(path) - 1; i >= 0; i-- {
		if path[i] == '/' {
			return path[i+1:]
		}
	}
	return path
}

// TestTracingIsObservationOnly checks a traced run and an untraced run at
// the same seed produce identical placements — telemetry must never perturb
// the optimization.
func TestTracingIsObservationOnly(t *testing.T) {
	c, err := testcircuits.ByName("Adder")
	if err != nil {
		t.Fatal(err)
	}
	for _, m := range []Method{MethodSA, MethodPrev, MethodEPlaceA} {
		plain, err := Place(c.Netlist, m, Options{Seed: 3, SA: fastSA(3)})
		if err != nil {
			t.Fatalf("%v: %v", m, err)
		}
		tr := obs.New(&obs.MemorySink{})
		traced, err := Place(c.Netlist, m, Options{Seed: 3, SA: fastSA(3), Tracer: tr})
		if err != nil {
			t.Fatalf("%v traced: %v", m, err)
		}
		for i := range plain.Placement.X {
			if plain.Placement.X[i] != traced.Placement.X[i] || plain.Placement.Y[i] != traced.Placement.Y[i] {
				t.Errorf("%v: device %d moved under tracing: (%g,%g) vs (%g,%g)", m, i,
					plain.Placement.X[i], plain.Placement.Y[i],
					traced.Placement.X[i], traced.Placement.Y[i])
				break
			}
		}
		for i := range plain.Placement.FlipX {
			if plain.Placement.FlipX[i] != traced.Placement.FlipX[i] || plain.Placement.FlipY[i] != traced.Placement.FlipY[i] {
				t.Errorf("%v: device %d flip state changed under tracing", m, i)
				break
			}
		}
	}
}
