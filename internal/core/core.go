// Package core is the public entry point of the library: one-call analog
// placement flows for the three placers the paper compares —
//
//   - MethodSA:      simulated annealing over symmetry-island sequence pairs
//   - MethodPrev:    the previous analytical work [11] (NTUplace3-style GP +
//     two-stage LP detailed placement)
//   - MethodEPlaceA: the paper's ePlace-A (electrostatic GP + integrated ILP
//     detailed placement)
//
// and their performance-driven variants (performance-driven SA [19], the
// Perf* extension of [11], and ePlace-AP), enabled by attaching a trained
// GNN performance model to Options.Perf. Package core also provides GNN
// training-set generation, so a caller can go from a netlist plus a
// performance model to a performance-driven placement without touching the
// internals.
package core

import (
	"context"
	"fmt"
	"math"
	"math/rand"
	"sort"
	"time"

	"repro/internal/anneal"
	"repro/internal/circuit"
	"repro/internal/detailed"
	"repro/internal/eplacea"
	"repro/internal/gnn"
	"repro/internal/netio"
	"repro/internal/obs"
	"repro/internal/obs/metrics"
	"repro/internal/par"
	"repro/internal/perfmodel"
	"repro/internal/prevwork"
	"repro/internal/refine"
)

// Method selects a placement algorithm.
type Method int

// The three placers compared throughout the paper.
const (
	MethodSA Method = iota
	MethodPrev
	MethodEPlaceA
)

func (m Method) String() string {
	switch m {
	case MethodSA:
		return "simulated-annealing"
	case MethodPrev:
		return "prev-analytical[11]"
	default:
		return "eplace-a"
	}
}

// ShortName returns the short method name used by the CLI flags, the
// placement service, and metric labels ("sa", "prev", "eplace-a") — the
// inverse of ParseMethod.
func (m Method) ShortName() string {
	switch m {
	case MethodSA:
		return "sa"
	case MethodPrev:
		return "prev"
	default:
		return "eplace-a"
	}
}

// ParseMethod maps the short method names used by the CLI flags and the
// placement service ("sa", "prev", "eplace-a") to a Method.
func ParseMethod(s string) (Method, error) {
	switch s {
	case "sa":
		return MethodSA, nil
	case "prev":
		return MethodPrev, nil
	case "eplace-a":
		return MethodEPlaceA, nil
	}
	return 0, fmt.Errorf("core: unknown method %q (want sa, prev, or eplace-a)", s)
}

// PerfTerm attaches a trained GNN performance model, turning each method
// into its performance-driven variant.
type PerfTerm struct {
	Model *gnn.Model
	// Weight is the performance term's relative weight α (default 0.5 for
	// the analytical placers, 0.6 for SA cost).
	Weight float64
}

// Options configures a placement run. The zero value gives the defaults
// used in the paper-reproduction experiments.
type Options struct {
	Seed int64

	// AreaWeight biases the area/wirelength tradeoff: it scales the GP
	// area term for ePlace-A and the SA area cost weight. Zero keeps each
	// method's default. (The [11] baseline has no explicit area term —
	// faithfully to the paper.)
	AreaWeight float64
	// Mu scales the detailed-placement area objective (Eq. 4a, ePlace-A
	// integrated mode only; default 1).
	Mu float64

	// Perf switches on the performance-driven variant.
	Perf *PerfTerm

	// Portfolio is the number of GP starts ePlace-A tries (varying seed and
	// region utilization), keeping the best area×HPWL result. Global
	// placement is cheap enough that a small portfolio still leaves the
	// analytical flow far faster than annealing. Default 3; set 1 for a
	// single run.
	Portfolio int

	// Chains is the simulated-annealing portfolio width: SA runs as this
	// many independent chains (deterministic per-chain seeds, best-of
	// reduction on exact HPWL/area) executed in parallel on the worker
	// pool. 0 derives the count from the annealer's Restarts knob — the
	// sequential restart loop run as a portfolio instead. Results are
	// bit-identical at every thread count.
	Chains int

	// Refine, when non-nil, appends the ILP large-neighborhood refinement
	// stage (internal/refine) to any method: small windows of the legal
	// result are re-solved exactly and kept only when they improve. The
	// stage's Tracer/Metrics default to this run's. The refined placement
	// is never worse than the unrefined one in HPWL or area.
	Refine *refine.Options

	// Tracer, when non-nil, wraps the flow in a "place" span and is
	// threaded into every stage (global placement, annealing, detailed
	// placement), whose packages emit their own spans and per-iteration
	// events. Per-stage overrides that already carry a tracer keep it.
	Tracer *obs.Tracer

	// Threads sets the worker count for the parallel placement kernels
	// (wirelength gradients, density rasterization, spectral solve).
	// Zero means runtime.NumCPU(); 1 forces fully inline execution.
	// Results are bit-identical at every thread count — deterministic
	// sharding (internal/par) fixes every floating-point summation
	// order from the problem size alone. Per-stage overrides that
	// already carry a Pool keep it.
	Threads int

	// Pool, when non-nil, is a caller-owned worker pool used instead of
	// creating one per call: a long-running service sizes one pool to the
	// machine and shares it across every concurrent placement (par.Pool
	// supports concurrent Run calls). The flow neither closes a caller
	// pool nor installs its timing observer on it — lifecycle and
	// observation stay with the owner — and Threads is ignored while Pool
	// is set. Placement bits are identical either way: deterministic
	// sharding keys off the problem size, not the pool.
	Pool *par.Pool

	// Metrics, when non-nil, receives production aggregates for the run:
	// per-kernel duration histograms (placer_kernel_seconds, labeled by
	// method, circuit-size class, and kernel) and parallel-shard skew from
	// the worker pool (par_run_seconds, par_shard_skew_ratio). Like the
	// tracer it is observation-only — metered runs are byte-identical to
	// unmetered ones at the same seed — and nil costs a pointer check.
	// Per-stage overrides that already carry a Metrics registry keep it.
	Metrics *metrics.Registry

	// WarmStart, when non-nil, runs the flow as an incremental (ECO)
	// re-solve against a prior placement: the netlist diff
	// (netio.DiffNetlists) derives the anchor set, the solvers start from
	// the prior coordinates with anchor pseudonets on unchanged devices,
	// and the analytical methods swap the expensive from-scratch detailed
	// placement for cheap legalization plus window refinement focused on
	// the perturbed region. Nil — the zero value — reproduces the blessed
	// cold behavior byte for byte.
	WarmStart *WarmStart

	// Advanced per-stage overrides (optional).
	GP   *eplacea.Options
	Prev *prevwork.Options
	SA   *anneal.Options
	DP   *detailed.Options
}

// WarmStart names a prior placement to re-solve against.
type WarmStart struct {
	// Base is the netlist Placement was solved for. Nil means Placement
	// belongs to the netlist being placed (a pure re-polish).
	Base *circuit.Netlist
	// Placement is the prior placement, indexed by Base's devices.
	Placement *circuit.Placement

	// AnchorWeight is the initial anchor force as a fraction of the
	// wirelength force (default 0.3); AnchorGrowth its per-iteration ramp
	// (default 1.03) — the SNIPPETS starting_anchor_weight /
	// anchor_weight_increase schedule.
	AnchorWeight float64
	AnchorGrowth float64

	// Radius and MaxFanout tune the perturbed-region diff; see
	// netio.DiffOptions.
	Radius    int
	MaxFanout int
}

// Result is the outcome of a full placement flow.
type Result struct {
	Method    Method
	Placement *circuit.Placement

	AreaUM2 float64 // bounding-box area, µm²
	HPWLUM  float64 // weighted HPWL, µm
	Runtime time.Duration

	GPIterations int // analytical methods
	ILPNodes     int // ePlace-A detailed placement + refinement windows
	SAProposals  int // simulated annealing

	RefineWindows int // window ILPs solved by the refinement stage
	RefineAccepts int // windows whose re-solve improved the placement

	// Warm-start runs only: the number of devices that actually received
	// anchor pseudonets (zero when the adaptive policy ran the warm start
	// as initialization only) and the perturbed-region size in devices.
	WarmAnchored  int
	WarmPerturbed int

	Legal bool
}

// Place runs the selected method end to end: global placement (or
// annealing) plus legalization/detailed placement, returning a legal
// placement and its quality metrics.
func Place(n *circuit.Netlist, method Method, opt Options) (*Result, error) {
	return PlaceCtx(context.Background(), n, method, opt)
}

// PlaceCtx is Place honoring cancellation and deadlines: ctx is threaded
// into every stage (the Nesterov/CG solvers stop through their callback
// contract, the annealer polls between move batches, detailed placement
// between LP/ILP passes). A canceled run returns ctx.Err() — never a
// partial placement — so completed runs stay byte-identical to uncanceled
// ones at the same seed.
func PlaceCtx(ctx context.Context, n *circuit.Netlist, method Method, opt Options) (*Result, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	start := time.Now()
	placeSpan := opt.Tracer.StartSpan("place")
	defer placeSpan.End()
	pool := opt.Pool
	ownPool := pool == nil
	if ownPool {
		threads := opt.Threads
		if threads == 0 {
			threads = par.NumCPU()
		}
		// NewPool returns nil for threads <= 1: the kernels then run inline.
		// Either way the placement bits are independent of the choice.
		pool = par.NewPool(threads)
		defer pool.Close()
	}
	metricLabels := []string{"method", method.ShortName(), "size", metrics.SizeClass(len(n.Devices))}
	// The timing observer is installed only on pools this call created:
	// SetTimingFunc is an install-before-first-Run API, so a shared pool's
	// observer belongs to its owner, not to an individual placement.
	if opt.Metrics != nil && ownPool {
		InstallPoolMetrics(pool, opt.Metrics, method.ShortName(), metrics.SizeClass(len(n.Devices)))
	}
	var warm *warmPlan
	if opt.WarmStart != nil {
		var err error
		warm, err = buildWarmPlan(n, opt.WarmStart)
		if err != nil {
			return nil, err
		}
	}
	res := &Result{Method: method}
	if warm != nil {
		res.WarmAnchored = warm.anchors
		res.WarmPerturbed = warm.perturbed
	}
	switch method {
	case MethodSA:
		saOpt := anneal.Options{Seed: opt.Seed}
		if opt.SA != nil {
			saOpt = *opt.SA
			if saOpt.Seed == 0 {
				saOpt.Seed = opt.Seed
			}
		}
		if saOpt.Tracer == nil {
			saOpt.Tracer = opt.Tracer
		}
		if opt.AreaWeight > 0 {
			saOpt.AreaWeight = opt.AreaWeight
			saOpt.WLWeight = 1 - math.Min(opt.AreaWeight, 0.9)
		}
		if opt.Perf != nil {
			saOpt.Perf = opt.Perf.Model
			saOpt.PerfWeight = opt.Perf.Weight
			if saOpt.PerfWeight == 0 {
				saOpt.PerfWeight = 0.6
			}
		}
		if warm != nil {
			saOpt.Warm = &anneal.Warm{
				X: warm.x, Y: warm.y, Valid: warm.valid,
				Anchored: warm.anchored, Weight: opt.WarmStart.AnchorWeight,
			}
			if opt.SA == nil {
				// A seeded, low-temperature anneal needs far fewer proposals
				// than a cold multi-start to polish the edit.
				saOpt.Moves = (1500000 + 75000*len(n.Devices)) / 3
				saOpt.Restarts = 1
			}
		}
		p, stats, err := refine.Portfolio(ctx, n, saOpt, refine.PortfolioOptions{
			Chains: opt.Chains,
			Pool:   pool,
			Tracer: opt.Tracer,
		})
		if err != nil {
			return nil, err
		}
		res.Placement = p
		res.SAProposals = stats.Proposals

	case MethodPrev:
		gpOpt := prevwork.Options{Seed: opt.Seed}
		if opt.Prev != nil {
			gpOpt = *opt.Prev
			if gpOpt.Seed == 0 {
				gpOpt.Seed = opt.Seed
			}
		}
		if gpOpt.Tracer == nil {
			gpOpt.Tracer = opt.Tracer
		}
		if gpOpt.Pool == nil {
			gpOpt.Pool = pool
		}
		if gpOpt.Metrics == nil {
			gpOpt.Metrics = opt.Metrics
			gpOpt.MetricsLabels = metricLabels
		}
		if warm != nil {
			gpOpt.Warm = warm.gp(opt.WarmStart)
			if opt.Prev == nil {
				// Starting near the prior optimum, the CG epochs converge in
				// half the cold schedule.
				gpOpt.Epochs = 7
			}
		}
		gp, err := prevwork.PlaceExtraCtx(ctx, n, gpOpt, perfExtra(opt.Perf, &gpOpt.ExtraWeight))
		if err != nil {
			return nil, err
		}
		res.GPIterations = gp.Iterations
		dpOpt := detailed.Options{Mode: detailed.ModeTwoStageLP}
		if opt.DP != nil {
			dpOpt = *opt.DP
			dpOpt.Mode = detailed.ModeTwoStageLP
		}
		if dpOpt.Tracer == nil {
			dpOpt.Tracer = opt.Tracer
		}
		dp, err := detailed.PlaceCtx(ctx, n, gp.Placement, dpOpt)
		if err != nil {
			return nil, err
		}
		res.Placement = dp.Placement

	case MethodEPlaceA:
		portfolio := opt.Portfolio
		if portfolio == 0 {
			portfolio = 3
			if warm != nil {
				// Diversified starts defeat the purpose of a warm start —
				// every variant would converge back to the anchor basin.
				portfolio = 1
			}
		}
		baseGP := eplacea.Options{Seed: opt.Seed}
		if opt.GP != nil {
			baseGP = *opt.GP
			if baseGP.Seed == 0 {
				baseGP.Seed = opt.Seed
			}
		}
		if opt.AreaWeight > 0 {
			baseGP.AreaWeight = opt.AreaWeight
		}
		if baseGP.Tracer == nil {
			baseGP.Tracer = opt.Tracer
		}
		if baseGP.Pool == nil {
			baseGP.Pool = pool
		}
		if baseGP.Metrics == nil {
			baseGP.Metrics = opt.Metrics
			baseGP.MetricsLabels = metricLabels
		}
		if warm != nil {
			baseGP.Warm = warm.gp(opt.WarmStart)
			if opt.GP == nil {
				// The overflow-based early stop fires quickly from a
				// nearly-legal start; the cap only guards pathological edits.
				baseGP.MaxIter = 350
			}
		}
		dpOpt := detailed.Options{Mode: detailed.ModeIntegratedILP, Mu: opt.Mu}
		if warm != nil && opt.DP == nil {
			// The from-scratch integrated ILP dominates cold ePlace-A wall
			// time; a warm solve exits global placement nearly legal, so the
			// cheap two-stage legalization plus the focused window refinement
			// below recovers the QoR at a fraction of the cost.
			dpOpt = detailed.Options{Mode: detailed.ModeTwoStageLP}
		}
		if opt.DP != nil {
			dpOpt = *opt.DP
			dpOpt.Mode = detailed.ModeIntegratedILP
			if dpOpt.Mu == 0 {
				dpOpt.Mu = opt.Mu
			}
		}
		if dpOpt.Tracer == nil {
			dpOpt.Tracer = opt.Tracer
		}
		// Portfolio variants diversify the density schedule: a standard
		// run, a roomier region with a gentler multiplier ramp, and a slow
		// ramp that preserves net locality on large circuits. The
		// performance-driven flow additionally varies the performance
		// weight α, which the paper itself treats as a sweep parameter.
		variants := []eplacea.Options{
			{},
			{Util: 0.5, Lambda0: 1e-4, LambdaGrowth: 1.025, MaxIter: 1500},
			{Util: 0.8, Lambda0: 1e-4, LambdaGrowth: 1.015, MaxIter: 2000},
		}
		perfWeights := []float64{0.3, 0.15, 0.5}
		runs := portfolio
		if opt.Perf != nil && opt.GP == nil {
			// The performance-driven portfolio also evaluates the full set
			// of conventional candidates: if the model does not prefer a
			// guided result, the flow keeps an unguided one rather than
			// trading real quality for gradient noise. (The paper's
			// performance-driven analytical runtimes are likewise an order
			// of magnitude above the conventional ones.)
			runs += portfolio
		}
		type candidate struct {
			placement *circuit.Placement
			quality   float64 // area × HPWL
			phi       float64
			guided    bool // produced with the performance gradient active
		}
		var cands []candidate
		bestScore := math.Inf(1)
		for v := 0; v < runs; v++ {
			gpOpt := baseGP
			gpOpt.Seed = baseGP.Seed + int64(101*(v%portfolio))
			if opt.GP == nil {
				vr := variants[v%len(variants)]
				if vr.Util != 0 {
					gpOpt.Util = vr.Util
					gpOpt.Lambda0 = vr.Lambda0
					gpOpt.LambdaGrowth = vr.LambdaGrowth
					gpOpt.MaxIter = vr.MaxIter
				}
			}
			perfTerm := opt.Perf
			if v >= portfolio {
				perfTerm = nil // the conventional candidate
			} else if perfTerm != nil && perfTerm.Weight == 0 {
				pt := *perfTerm
				pt.Weight = perfWeights[v%len(perfWeights)]
				perfTerm = &pt
			}
			gp, err := eplacea.PlaceExtraCtx(ctx, n, gpOpt, perfExtra(perfTerm, &gpOpt.ExtraWeight))
			if err != nil {
				return nil, err
			}
			dp, err := detailed.PlaceCtx(ctx, n, gp.Placement, dpOpt)
			if err != nil {
				return nil, err
			}
			res.GPIterations += gp.Iterations
			res.ILPNodes += dp.ILPNodes
			quality := dp.Area * dp.HPWL
			if opt.Perf != nil {
				// Candidate quality uses the UNWEIGHTED wirelength: the
				// objective's net weights deliberately de-emphasize some
				// nets, but a performance-driven selection must not share
				// that blind spot.
				cands = append(cands, candidate{
					placement: dp.Placement,
					quality:   dp.Area * n.RawHPWL(dp.Placement),
					phi:       opt.Perf.Model.Prob(n, dp.Placement),
					guided:    perfTerm != nil,
				})
				continue
			}
			// Conventional runs pick the best area×wirelength product.
			if quality < bestScore {
				bestScore = quality
				res.Placement = dp.Placement
			}
		}
		if opt.Perf != nil {
			// Performance-driven selection: the model's failure probability
			// Φ decides, softly penalized by the geometric premium over the
			// best candidate — a guided layout that pays a large area×HPWL
			// cost for a tiny Φ edge is usually the model being fooled
			// off-distribution, not a real performance win.
			best := 0
			for i := 1; i < len(cands); i++ {
				c := cands[i]
				b := cands[best]
				switch {
				case c.phi < b.phi-1e-3:
					best = i
				case c.phi <= b.phi+1e-3 && c.guided != b.guided:
					// Φ-tie: prefer the candidate the performance gradient
					// shaped — the model judged both safe, and the guided
					// one additionally descended the performance objective.
					if c.guided {
						best = i
					}
				case c.phi <= b.phi+1e-3 && c.quality < b.quality:
					best = i // same guidance status: keep better geometry
				}
			}
			res.Placement = cands[best].placement
		}

	default:
		return nil, fmt.Errorf("core: unknown method %d", int(method))
	}

	if warm != nil && method != MethodSA && warm.perturbed > 0 {
		// Warm analytical flows finish with exact window re-solves focused
		// on the perturbed region — the matheuristic cleanup that lets the
		// cheap legalization above match the cold flow's QoR where it
		// matters. Accept-if-improved, so it never hurts.
		rp, rstats, err := refine.Refine(ctx, n, res.Placement, refine.Options{
			Focus:         warm.focus,
			Tracer:        opt.Tracer,
			Metrics:       opt.Metrics,
			MetricsLabels: metricLabels,
		})
		if err != nil {
			return nil, err
		}
		res.Placement = rp
		res.ILPNodes += rstats.Nodes
		res.RefineWindows += rstats.Windows
		res.RefineAccepts += rstats.Accepts
	}

	if opt.Refine != nil {
		ropt := *opt.Refine
		if ropt.Tracer == nil {
			ropt.Tracer = opt.Tracer
		}
		if ropt.Metrics == nil {
			ropt.Metrics = opt.Metrics
			ropt.MetricsLabels = metricLabels
		}
		rp, rstats, err := refine.Refine(ctx, n, res.Placement, ropt)
		if err != nil {
			return nil, err
		}
		res.Placement = rp
		res.ILPNodes += rstats.Nodes
		res.RefineWindows = rstats.Windows
		res.RefineAccepts = rstats.Accepts
	}

	res.Runtime = time.Since(start)
	res.AreaUM2 = circuit.AreaUM2(n.Area(res.Placement))
	res.HPWLUM = circuit.LenUM(n.HPWL(res.Placement))
	res.Legal = n.CheckLegal(res.Placement, 1e-6).OK()
	if opt.Tracer.Enabled() {
		opt.Tracer.Count("place.runs", 1)
		opt.Tracer.Gauge("place.area_um2", res.AreaUM2)
		opt.Tracer.Gauge("place.hpwl_um", res.HPWLUM)
	}
	return res, nil
}

// skewBuckets spans the shard-skew ratio (max-min)/max in [0, 1): healthy
// kernels sit in the first few buckets, a shard starving its siblings lands
// near 1.
var skewBuckets = []float64{0.05, 0.1, 0.2, 0.3, 0.5, 0.7, 0.9}

// InstallPoolMetrics installs the par kernel-timing observer on a pool,
// feeding the same par_run_seconds / par_shard_skew_ratio families PlaceCtx
// meters on pools it creates itself. It is for owners of shared pools
// (Options.Pool): call once, before the pool's first Run, per
// par.SetTimingFunc's contract. A pool serving every method and circuit
// size at once conventionally labels with method="all", size="all" —
// per-run attribution is impossible on a shared pool, the aggregate view
// is the point. Nil pool or registry is a no-op.
func InstallPoolMetrics(pool *par.Pool, reg *metrics.Registry, method, size string) {
	if pool == nil || reg == nil {
		return
	}
	labels := []string{"method", method, "size", size}
	wallH := reg.Histogram("par_run_seconds",
		"Wall time of one parallel kernel dispatch (internal/par Run).",
		metrics.KernelBuckets, labels...)
	skewH := reg.Histogram("par_shard_skew_ratio",
		"Per-Run shard timing skew, (max-min)/max shard duration; persistent skew means a kernel's grain is mis-sized.",
		skewBuckets, labels...)
	pool.SetTimingFunc(func(rt par.RunTiming) {
		wallH.Observe(rt.Wall.Seconds())
		if rt.MaxShard > 0 {
			skewH.Observe(float64(rt.MaxShard-rt.MinShard) / float64(rt.MaxShard))
		}
	})
}

// perfExtra adapts a PerfTerm into the analytical GP extra-objective hook,
// and propagates its weight into the GP's calibrated ExtraWeight.
func perfExtra(pt *PerfTerm, extraWeight *float64) eplacea.ExtraGrad {
	if pt == nil {
		return nil
	}
	if pt.Weight > 0 {
		*extraWeight = pt.Weight
	}
	m := pt.Model
	return func(p *circuit.Placement, gx, gy []float64) float64 {
		return m.ProbGrad(p, gx, gy)
	}
}

// TrainOptions configures TrainPerfGNN.
type TrainOptions struct {
	Seed    int64
	Samples int // training placements to generate (default 1200)
	Epochs  int // training epochs (default 60)
	// Anchors is the number of quick placer runs whose (jittered) layouts
	// join the dataset, teaching the model to discriminate among
	// placer-quality layouts rather than only rows-vs-random (default 10;
	// set negative to disable).
	Anchors int

	// Tracer, when non-nil, wraps dataset generation and training in a
	// "gnn-train" span and receives per-epoch Adam loss events.
	Tracer *obs.Tracer
}

// TrainPerfGNN generates a labeled dataset for netlist n — half
// near-compact layouts (jittered greedy rows of varying aspect, the region
// a real placer lands in) and half random spreads — labeled by whether the
// performance model's FOM falls below threshold, and trains a GNN on it,
// mirroring the paper's >1000-sample per-circuit training setup.
//
// Passing threshold <= 0 selects it automatically as the median FOM of the
// near-compact sub-population, which centers the learned decision boundary
// where performance-driven placement actually operates.
func TrainPerfGNN(n *circuit.Netlist, pm *perfmodel.Model, threshold float64,
	opt TrainOptions) (*gnn.Model, *gnn.TrainStats, error) {
	return TrainPerfGNNCtx(context.Background(), n, pm, threshold, opt)
}

// TrainPerfGNNCtx is TrainPerfGNN honoring cancellation and deadlines: ctx
// is threaded into the anchor placements and polled between dataset samples,
// so a timed-out training run fails promptly with ctx.Err().
func TrainPerfGNNCtx(ctx context.Context, n *circuit.Netlist, pm *perfmodel.Model, threshold float64,
	opt TrainOptions) (*gnn.Model, *gnn.TrainStats, error) {

	if ctx == nil {
		ctx = context.Background()
	}
	if opt.Samples == 0 {
		opt.Samples = 1200
	}
	if opt.Epochs == 0 {
		opt.Epochs = 60
	}
	trainSpan := opt.Tracer.StartSpan("gnn-train")
	defer trainSpan.End()
	rng := rand.New(rand.NewSource(opt.Seed))
	scale := math.Sqrt(n.TotalDeviceArea())
	model := gnn.New(n, scale*2, opt.Seed+1)
	model.SetMatchedNets(pm.MatchedNets)

	if opt.Anchors == 0 {
		opt.Anchors = 10
	}
	samples := make([]gnn.Sample, 0, opt.Samples)
	foms := make([]float64, 0, opt.Samples)
	var compactFOMs []float64
	p := circuit.NewPlacement(n)

	// Placer-anchored samples: quick runs of the fast analytical baseline
	// plus small jitters of each, so the dataset covers the region where
	// performance-driven placement actually operates.
	if opt.Anchors > 0 {
		addSample := func(q *circuit.Placement) {
			f := pm.FOM(n, q)
			foms = append(foms, f)
			compactFOMs = append(compactFOMs, f)
			samples = append(samples, gnn.Sample{
				X: append([]float64(nil), q.X...),
				Y: append([]float64(nil), q.Y...),
			})
		}
		for a := 0; a < opt.Anchors; a++ {
			res, err := PlaceCtx(ctx, n, MethodPrev, Options{
				Seed: opt.Seed + int64(1000+a),
				Prev: &prevwork.Options{Seed: opt.Seed + int64(1000+a), Util: 0.35 + 0.07*float64(a%5)},
			})
			if err != nil {
				return nil, nil, fmt.Errorf("core: training anchor %d: %w", a, err)
			}
			addSample(res.Placement)
			for j := 0; j < 4; j++ {
				q := res.Placement.Clone()
				jit := scale * (0.01 + 0.03*float64(j))
				for i := range q.X {
					q.X[i] += rng.NormFloat64() * jit
					q.Y[i] += rng.NormFloat64() * jit
				}
				n.ResolveAxes(q)
				addSample(q)
			}
		}
	}

	for k := len(samples); k < opt.Samples; k++ {
		if k%64 == 0 {
			if err := ctx.Err(); err != nil {
				return nil, nil, err
			}
		}
		compact := k%2 == 0
		if compact {
			rowLayout(n, p, 1.0+rng.Float64()*0.8)
			jitter := scale * (0.01 + rng.Float64()*0.14)
			for i := range p.X {
				p.X[i] += rng.NormFloat64() * jitter
				p.Y[i] += rng.NormFloat64() * jitter
			}
		} else {
			spread := scale * (0.9 + rng.Float64()*2.2)
			for i := range p.X {
				p.X[i] = rng.Float64() * spread
				p.Y[i] = rng.Float64() * spread
			}
		}
		n.ResolveAxes(p)
		f := pm.FOM(n, p)
		foms = append(foms, f)
		if compact {
			compactFOMs = append(compactFOMs, f)
		}
		samples = append(samples, gnn.Sample{
			X: append([]float64(nil), p.X...),
			Y: append([]float64(nil), p.Y...),
		})
	}
	if threshold <= 0 {
		sorted := append([]float64(nil), compactFOMs...)
		sort.Float64s(sorted)
		threshold = sorted[len(sorted)/2]
	}
	var bad int
	for i := range samples {
		samples[i].Bad = foms[i] < threshold
		if samples[i].Bad {
			bad++
		}
	}
	if bad == 0 || bad == len(samples) {
		return nil, nil, fmt.Errorf("core: degenerate training labels for %s (bad=%d of %d; adjust threshold %.2f)",
			n.Name, bad, len(samples), threshold)
	}
	stats, err := model.Train(samples, gnn.TrainOptions{Seed: opt.Seed + 2, Epochs: opt.Epochs, Tracer: opt.Tracer})
	if err != nil {
		return nil, nil, err
	}
	return model, stats, nil
}

// rowLayout writes a greedy row packing into p with the given width factor
// (relative to the square-root area side).
func rowLayout(n *circuit.Netlist, p *circuit.Placement, widthFactor float64) {
	side := math.Sqrt(n.TotalDeviceArea()) * widthFactor
	var x, y, rowH float64
	for i := range n.Devices {
		d := &n.Devices[i]
		if x+d.W > side && x > 0 {
			x = 0
			y += rowH
			rowH = 0
		}
		p.X[i] = x + d.W/2
		p.Y[i] = y + d.H/2
		x += d.W
		rowH = math.Max(rowH, d.H)
	}
}

// warmPlan is a WarmStart resolved against the netlist being placed: the
// prior coordinates mapped onto its device indices plus the diff-derived
// anchor and focus masks.
type warmPlan struct {
	x, y     []float64
	valid    []bool
	anchored []bool
	focus    []bool // the perturbed region, for the window-refinement stage

	anchors   int
	perturbed int
}

// gp builds the analytical solvers' warm-start view of the plan.
func (w *warmPlan) gp(ws *WarmStart) *eplacea.WarmStart {
	return &eplacea.WarmStart{
		X: w.x, Y: w.y, Valid: w.valid, Anchored: w.anchored,
		AnchorWeight: ws.AnchorWeight, AnchorGrowth: ws.AnchorGrowth,
	}
}

// buildWarmPlan diffs the edited netlist n against the warm start's base
// and maps the prior placement onto n: matched devices take their prior
// coordinates, devices outside the perturbed region become anchors, and
// added devices start at the centroid of their prior-placed net neighbors
// (falling back to the default centered init when they have none).
func buildWarmPlan(n *circuit.Netlist, ws *WarmStart) (*warmPlan, error) {
	if ws.Placement == nil {
		return nil, fmt.Errorf("core: WarmStart needs a base placement")
	}
	base := ws.Base
	if base == nil {
		base = n
	}
	if err := base.CheckSized(ws.Placement); err != nil {
		return nil, fmt.Errorf("core: warm-start placement does not fit its base netlist: %w", err)
	}
	d := netio.DiffNetlists(base, n, netio.DiffOptions{Radius: ws.Radius, MaxFanout: ws.MaxFanout})

	nd := len(n.Devices)
	w := &warmPlan{
		x:         make([]float64, nd),
		y:         make([]float64, nd),
		valid:     make([]bool, nd),
		anchored:  d.Anchored(),
		focus:     d.Perturbed,
		anchors:   d.AnchorCount(),
		perturbed: d.PerturbedCount(),
	}
	// Anchor pseudonets exist to hold an untouched bulk in place while the
	// edit's influence region re-solves around it. They only earn their keep
	// when that bulk is the clear majority of the design: pinning a scattered
	// minority fights the global rearrangement a grown netlist demands, and
	// the geometric anchor ramp comes to dominate the objective before the
	// density overflow converges. Below the threshold the warm start is kept
	// as an initialization only, with every device free to move.
	if w.anchors*5 < nd*3 {
		w.anchored = nil
		w.anchors = 0
	}
	for i, bi := range d.BaseIndex {
		if bi >= 0 {
			w.valid[i] = true
			w.x[i] = ws.Placement.X[bi]
			w.y[i] = ws.Placement.Y[bi]
		}
	}
	// Added devices: centroid of prior-placed neighbors through local nets
	// first, any net as a fallback (a supply-only passive still lands near
	// its rail mates rather than at the region center).
	maxFanout := ws.MaxFanout
	if maxFanout == 0 {
		maxFanout = 10 // keep in step with netio.DiffOptions' default
	}
	for pass := 0; pass < 2; pass++ {
		resolved := 0
		for i := range n.Devices {
			if w.valid[i] {
				resolved++
			}
		}
		if resolved == nd {
			break
		}
		sx := make([]float64, nd)
		sy := make([]float64, nd)
		cnt := make([]int, nd)
		for ni := range n.Nets {
			net := &n.Nets[ni]
			if pass == 0 && maxFanout >= 0 && len(net.Pins) > maxFanout {
				continue
			}
			for _, pa := range net.Pins {
				if w.valid[pa.Device] {
					continue
				}
				for _, pb := range net.Pins {
					if pb.Device != pa.Device && w.valid[pb.Device] {
						sx[pa.Device] += w.x[pb.Device]
						sy[pa.Device] += w.y[pb.Device]
						cnt[pa.Device]++
					}
				}
			}
		}
		for i := 0; i < nd; i++ {
			if !w.valid[i] && cnt[i] > 0 {
				w.valid[i] = true
				w.x[i] = sx[i] / float64(cnt[i])
				w.y[i] = sy[i] / float64(cnt[i])
			}
		}
	}
	return w, nil
}
