package core

import (
	"testing"

	"repro/internal/anneal"
	"repro/internal/testcircuits"
)

// fastSA keeps SA test runs quick.
func fastSA(seed int64) *anneal.Options {
	return &anneal.Options{Seed: seed, Moves: 6000, Restarts: 2}
}

func TestAllMethodsLegalOnAdder(t *testing.T) {
	c, err := testcircuits.ByName("Adder")
	if err != nil {
		t.Fatal(err)
	}
	for _, m := range []Method{MethodSA, MethodPrev, MethodEPlaceA} {
		res, err := Place(c.Netlist, m, Options{Seed: 1, SA: fastSA(1)})
		if err != nil {
			t.Fatalf("%v: %v", m, err)
		}
		if !res.Legal {
			t.Errorf("%v: illegal placement: %v", m, c.Netlist.CheckLegal(res.Placement, 1e-6).Err())
		}
		if res.AreaUM2 <= 0 || res.HPWLUM <= 0 {
			t.Errorf("%v: degenerate metrics %+v", m, res)
		}
		if res.Runtime <= 0 {
			t.Errorf("%v: runtime not recorded", m)
		}
	}
}

func TestAllMethodsLegalOnCCOTA(t *testing.T) {
	c, err := testcircuits.ByName("CC-OTA")
	if err != nil {
		t.Fatal(err)
	}
	for _, m := range []Method{MethodSA, MethodPrev, MethodEPlaceA} {
		res, err := Place(c.Netlist, m, Options{Seed: 2, SA: fastSA(2)})
		if err != nil {
			t.Fatalf("%v: %v", m, err)
		}
		if !res.Legal {
			t.Errorf("%v: illegal placement: %v", m, c.Netlist.CheckLegal(res.Placement, 1e-6).Err())
		}
	}
}

func TestMethodDiagnosticsRecorded(t *testing.T) {
	c, _ := testcircuits.ByName("Adder")
	sa, err := Place(c.Netlist, MethodSA, Options{Seed: 1, SA: fastSA(1)})
	if err != nil {
		t.Fatal(err)
	}
	if sa.SAProposals == 0 {
		t.Error("SA proposals not recorded")
	}
	ep, err := Place(c.Netlist, MethodEPlaceA, Options{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if ep.GPIterations == 0 {
		t.Error("ePlace-A GP iterations not recorded")
	}
	pv, err := Place(c.Netlist, MethodPrev, Options{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if pv.GPIterations == 0 {
		t.Error("prev GP iterations not recorded")
	}
}

func TestAreaWeightTradesOff(t *testing.T) {
	c, _ := testcircuits.ByName("CC-OTA")
	low, err := Place(c.Netlist, MethodEPlaceA, Options{Seed: 3, AreaWeight: 0.08, Mu: 0.2})
	if err != nil {
		t.Fatal(err)
	}
	high, err := Place(c.Netlist, MethodEPlaceA, Options{Seed: 3, AreaWeight: 1.2, Mu: 8})
	if err != nil {
		t.Fatal(err)
	}
	if high.AreaUM2 > low.AreaUM2*1.1 {
		t.Errorf("heavier area weight did not reduce area: %.1f vs %.1f", high.AreaUM2, low.AreaUM2)
	}
}

func TestTrainPerfGNN(t *testing.T) {
	c, _ := testcircuits.ByName("CC-OTA")
	model, stats, err := TrainPerfGNN(c.Netlist, c.Perf, c.Threshold,
		TrainOptions{Seed: 4, Samples: 400, Epochs: 40})
	if err != nil {
		t.Fatal(err)
	}
	if model == nil {
		t.Fatal("nil model")
	}
	if stats.ValAccuracy < 0.7 {
		t.Errorf("validation accuracy %.2f < 0.7", stats.ValAccuracy)
	}
}

func TestPerformanceDrivenImprovesFOM(t *testing.T) {
	c, _ := testcircuits.ByName("CC-OTA")
	model, _, err := TrainPerfGNN(c.Netlist, c.Perf, c.Threshold,
		TrainOptions{Seed: 5, Samples: 500, Epochs: 40})
	if err != nil {
		t.Fatal(err)
	}
	conv, err := Place(c.Netlist, MethodEPlaceA, Options{Seed: 6})
	if err != nil {
		t.Fatal(err)
	}
	perf, err := Place(c.Netlist, MethodEPlaceA, Options{Seed: 6, Perf: &PerfTerm{Model: model}})
	if err != nil {
		t.Fatal(err)
	}
	if !perf.Legal {
		t.Fatal("performance-driven placement illegal")
	}
	fConv := c.Perf.FOM(c.Netlist, conv.Placement)
	fPerf := c.Perf.FOM(c.Netlist, perf.Placement)
	if fPerf < fConv-0.02 {
		t.Errorf("performance-driven FOM %.3f clearly worse than conventional %.3f", fPerf, fConv)
	}
}

func TestUnknownMethodRejected(t *testing.T) {
	c, _ := testcircuits.ByName("Adder")
	if _, err := Place(c.Netlist, Method(99), Options{}); err == nil {
		t.Error("unknown method accepted")
	}
}

func TestMethodString(t *testing.T) {
	if MethodSA.String() == "" || MethodPrev.String() == "" || MethodEPlaceA.String() == "" {
		t.Error("empty method names")
	}
}

func TestDegenerateThresholdRejected(t *testing.T) {
	c, _ := testcircuits.ByName("Adder")
	if _, _, err := TrainPerfGNN(c.Netlist, c.Perf, 0.0001,
		TrainOptions{Seed: 1, Samples: 50, Epochs: 1}); err == nil {
		t.Error("expected degenerate-labels error for absurd threshold")
	}
}
