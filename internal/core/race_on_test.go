//go:build race

package core

// raceEnabled reports whether this test binary was built with the race
// detector, so heavyweight tests can swap sequential-solver work (~10x
// slower raced) for equivalent coverage that stays inside the package's
// timeout budget.
const raceEnabled = true
