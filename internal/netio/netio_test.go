package netio

import (
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/testcircuits"
)

func TestLoadSourceSelection(t *testing.T) {
	if _, _, err := Load("", ""); err == nil || !strings.Contains(err.Error(), "no netlist source") {
		t.Errorf("neither source: %v", err)
	}
	if _, _, err := Load("f.json", "Adder"); err == nil || !strings.Contains(err.Error(), "not both") {
		t.Errorf("both sources: %v", err)
	}
	n, cs, err := Load("", "Adder")
	if err != nil {
		t.Fatalf("built-in: %v", err)
	}
	if n == nil || cs == nil || cs.Netlist != n {
		t.Error("built-in load did not return the case's netlist")
	}
	if _, _, err := Load("", "NoSuchCircuit"); err == nil {
		t.Error("unknown built-in accepted")
	}
}

func TestLoadFileRoundtrip(t *testing.T) {
	c, err := testcircuits.ByName("Adder")
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "adder.json")
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := c.Netlist.WriteJSON(f); err != nil {
		t.Fatal(err)
	}
	f.Close()

	n, cs, err := Load(path, "")
	if err != nil {
		t.Fatalf("file load: %v", err)
	}
	if cs != nil {
		t.Error("file load returned a built-in case")
	}
	if n.Name != c.Netlist.Name || len(n.Devices) != len(c.Netlist.Devices) {
		t.Errorf("roundtrip mismatch: %s/%d devices", n.Name, len(n.Devices))
	}
}

func TestLoadFileMissing(t *testing.T) {
	if _, err := LoadFile(filepath.Join(t.TempDir(), "absent.json")); err == nil {
		t.Error("missing file accepted")
	}
}

// TestDecodeErrorsCarryLabelAndField checks malformed documents fail with
// the source label plus an actionable, field-naming message.
func TestDecodeErrorsCarryLabelAndField(t *testing.T) {
	cases := []struct {
		name string
		json string
		want []string // all must appear in the error
	}{
		{
			"duplicate device names",
			`{"name":"x","devices":[
				{"name":"M1","type":"nmos","w":1,"h":1,"pins":[{"name":"p","x":0,"y":0}]},
				{"name":"M1","type":"nmos","w":1,"h":1,"pins":[{"name":"p","x":0,"y":0}]}],"nets":[]}`,
			[]string{"req", `duplicate device name "M1"`},
		},
		{
			"pin references unknown device",
			`{"name":"x","devices":[{"name":"M1","type":"nmos","w":1,"h":1,"pins":[{"name":"p","x":0,"y":0}]}],
				"nets":[{"name":"out","pins":["M9.p"]}]}`,
			[]string{"req", `net "out"`, `unknown device "M9"`},
		},
		{
			"empty net",
			`{"name":"x","devices":[{"name":"M1","type":"nmos","w":1,"h":1,"pins":[{"name":"p","x":0,"y":0}]}],
				"nets":[{"name":"dangling","pins":[]}]}`,
			[]string{"req", `net "dangling" has no pins`},
		},
		{
			"unnamed device by index",
			`{"name":"x","devices":[{"type":"nmos","w":1,"h":1,"pins":[{"name":"p","x":0,"y":0}]}],"nets":[]}`,
			[]string{"req", "devices[0] has no name"},
		},
	}
	for _, tc := range cases {
		_, err := DecodeBytes([]byte(tc.json), "req")
		if err == nil {
			t.Errorf("%s: accepted", tc.name)
			continue
		}
		for _, want := range tc.want {
			if !strings.Contains(err.Error(), want) {
				t.Errorf("%s: error %q missing %q", tc.name, err, want)
			}
		}
	}
}

func TestDecodeNoLabel(t *testing.T) {
	_, err := DecodeBytes([]byte(`{`), "")
	if err == nil {
		t.Fatal("garbage accepted")
	}
	if !strings.HasPrefix(err.Error(), "circuit:") {
		t.Errorf("unlabeled error %q should start with the package prefix", err)
	}
}
