package netio

import (
	"crypto/sha256"
	"fmt"
	"os"
	"sort"
	"strconv"

	"repro/internal/circuit"
)

// DiffOptions tunes the netlist diff used to derive warm-start anchor
// sets. The zero value means defaults.
type DiffOptions struct {
	// Radius is how many net hops the perturbed region expands beyond the
	// devices whose local context changed (default 1). Negative means no
	// expansion: only changed/added devices are perturbed.
	Radius int
	// MaxFanout bounds which nets count as local connectivity. Nets with
	// more pins (supply rails, global biases) are treated as global: they
	// neither enter a device's context hash nor propagate perturbation —
	// otherwise one new device on vdd would mark every device on the rail
	// as changed and no anchors would survive. Default 10 (analog signal
	// nets are small; ten-plus pins means a rail, bus, or bias
	// distribution); negative means unlimited.
	MaxFanout int
}

func (o DiffOptions) withDefaults() DiffOptions {
	if o.Radius == 0 {
		o.Radius = 1
	}
	if o.MaxFanout == 0 {
		o.MaxFanout = 10
	}
	return o
}

// Diff classifies the devices of an edited netlist against a base
// netlist. Devices are matched by name; a matched device is unchanged
// when its local context hash — geometry, pins, the canonical membership
// of its low-fanout incident nets (net names excluded, so pure renames
// are invisible), and its constraint neighborhoods — is identical in both
// netlists. The perturbed region is the changed/added set expanded
// Radius hops through low-fanout nets of the edited netlist; removals
// perturb implicitly because the surviving members of the touched nets
// see a changed membership list.
type Diff struct {
	// BaseIndex maps each edited-netlist device to its base-netlist index,
	// or -1 for added devices.
	BaseIndex []int
	// Unchanged marks edited devices whose local context is identical in
	// the base netlist.
	Unchanged []bool
	// Perturbed marks edited devices inside the perturbed region.
	Perturbed []bool

	Added   int // edited devices with no base counterpart
	Removed int // base devices with no edited counterpart
	Changed int // matched devices whose context hash differs
}

// Anchored returns the per-device anchor mask: matched devices outside
// the perturbed region. These are the devices a warm-start solve pins
// with anchor pseudonets.
func (d *Diff) Anchored() []bool {
	out := make([]bool, len(d.BaseIndex))
	for i, bi := range d.BaseIndex {
		out[i] = bi >= 0 && !d.Perturbed[i]
	}
	return out
}

// AnchorCount returns the number of anchored devices.
func (d *Diff) AnchorCount() int {
	n := 0
	for i, bi := range d.BaseIndex {
		if bi >= 0 && !d.Perturbed[i] {
			n++
		}
	}
	return n
}

// PerturbedCount returns the number of perturbed devices.
func (d *Diff) PerturbedCount() int {
	n := 0
	for _, p := range d.Perturbed {
		if p {
			n++
		}
	}
	return n
}

// DiffNetlists diffs edited against base. Both netlists must be valid.
func DiffNetlists(base, edited *circuit.Netlist, opt DiffOptions) *Diff {
	opt = opt.withDefaults()
	baseHash := contextHashes(base, opt.MaxFanout)
	editHash := contextHashes(edited, opt.MaxFanout)

	baseIdx := make(map[string]int, len(base.Devices))
	for i := range base.Devices {
		baseIdx[base.Devices[i].Name] = i
	}

	nd := len(edited.Devices)
	d := &Diff{
		BaseIndex: make([]int, nd),
		Unchanged: make([]bool, nd),
		Perturbed: make([]bool, nd),
	}
	matched := 0
	for i := range edited.Devices {
		bi, ok := baseIdx[edited.Devices[i].Name]
		if !ok {
			d.BaseIndex[i] = -1
			d.Added++
			d.Perturbed[i] = true
			continue
		}
		matched++
		d.BaseIndex[i] = bi
		if baseHash[bi] == editHash[i] {
			d.Unchanged[i] = true
		} else {
			d.Changed++
			d.Perturbed[i] = true
		}
	}
	d.Removed = len(base.Devices) - matched

	// Expand the perturbed region through the edited netlist's local nets.
	for hop := 0; hop < opt.Radius; hop++ {
		grew := false
		for ni := range edited.Nets {
			net := &edited.Nets[ni]
			if opt.MaxFanout >= 0 && len(net.Pins) > opt.MaxFanout {
				continue
			}
			hit := false
			for _, pr := range net.Pins {
				if d.Perturbed[pr.Device] {
					hit = true
					break
				}
			}
			if !hit {
				continue
			}
			for _, pr := range net.Pins {
				if !d.Perturbed[pr.Device] {
					d.Perturbed[pr.Device] = true
					grew = true
				}
			}
		}
		if !grew {
			break
		}
	}
	return d
}

// contextHashes computes the per-device local-context hash: the device
// record itself, the canonical membership of its low-fanout incident
// nets, and its constraint neighborhoods. Net names are deliberately
// excluded so renaming a net changes nothing.
func contextHashes(n *circuit.Netlist, maxFanout int) [][32]byte {
	nd := len(n.Devices)
	lines := make([][]string, nd)
	for i := range n.Devices {
		d := &n.Devices[i]
		rec := "dev " + d.Type.String() + " " + fbits(d.W) + " " + fbits(d.H)
		for _, p := range d.Pins {
			rec += " pin " + p.Name + " " + fbits(p.Offset.X) + " " + fbits(p.Offset.Y)
		}
		lines[i] = append(lines[i], rec)
	}
	for ni := range n.Nets {
		net := &n.Nets[ni]
		if maxFanout >= 0 && len(net.Pins) > maxFanout {
			continue
		}
		members := make([]string, 0, len(net.Pins))
		touched := make(map[int]bool, len(net.Pins))
		for _, pr := range net.Pins {
			members = append(members,
				n.Devices[pr.Device].Name+"."+n.Devices[pr.Device].Pins[pr.Pin].Name)
			touched[pr.Device] = true
		}
		sort.Strings(members)
		line := "net " + fbits(net.Weight)
		for _, m := range members {
			line += " " + m
		}
		for di := range touched {
			lines[di] = append(lines[di], line)
		}
	}
	for _, g := range n.SymGroups {
		for _, pr := range g.Pairs {
			lines[pr[0]] = append(lines[pr[0]], "sym pair "+n.Devices[pr[1]].Name)
			lines[pr[1]] = append(lines[pr[1]], "sym pair "+n.Devices[pr[0]].Name)
		}
		for _, s := range g.Self {
			lines[s] = append(lines[s], "sym self")
		}
	}
	for _, pr := range n.BottomAlign {
		lines[pr[0]] = append(lines[pr[0]], "balign "+n.Devices[pr[1]].Name)
		lines[pr[1]] = append(lines[pr[1]], "balign "+n.Devices[pr[0]].Name)
	}
	for _, pr := range n.VCenterAlign {
		lines[pr[0]] = append(lines[pr[0]], "vcalign "+n.Devices[pr[1]].Name)
		lines[pr[1]] = append(lines[pr[1]], "vcalign "+n.Devices[pr[0]].Name)
	}
	for _, grp := range n.HOrders {
		for k, di := range grp {
			line := "horder"
			if k > 0 {
				line += " prev " + n.Devices[grp[k-1]].Name
			}
			if k < len(grp)-1 {
				line += " next " + n.Devices[grp[k+1]].Name
			}
			lines[di] = append(lines[di], line)
		}
	}

	out := make([][32]byte, nd)
	for i := range lines {
		head := lines[i][0]
		rest := lines[i][1:]
		sort.Strings(rest)
		h := sha256.New()
		h.Write([]byte(head))
		h.Write([]byte{'\n'})
		for _, l := range rest {
			h.Write([]byte(l))
			h.Write([]byte{'\n'})
		}
		h.Sum(out[i][:0])
	}
	return out
}

// FingerprintPlacement content-addresses a placement of n: per-device
// name, exact coordinate bits and flips (sorted by device name), plus the
// symmetry-axis coordinates. It is the base-placement component of a
// warm-start result-cache key.
func FingerprintPlacement(n *circuit.Netlist, p *circuit.Placement) [32]byte {
	order := make([]int, len(n.Devices))
	for i := range order {
		order[i] = i
	}
	sort.Slice(order, func(a, b int) bool {
		return n.Devices[order[a]].Name < n.Devices[order[b]].Name
	})
	h := sha256.New()
	for _, i := range order {
		fmt.Fprintf(h, "place %q %s %s %t %t\n", n.Devices[i].Name,
			fbits(p.X[i]), fbits(p.Y[i]), p.FlipX[i], p.FlipY[i])
	}
	for gi, ax := range p.AxisX {
		fmt.Fprintf(h, "axis %s %s\n", strconv.Itoa(gi), fbits(ax))
	}
	var out [32]byte
	h.Sum(out[:0])
	return out
}

// PlacementForNetlist binds a placement document to netlist n by device
// name. It returns the placement, a per-device matched mask, and an error
// only when the document shares no devices with n (almost certainly the
// wrong file). Unmatched devices sit at the origin; callers use the mask.
// Axis coordinates are copied when the group count matches and re-derived
// from the matched pair positions otherwise.
func PlacementForNetlist(n *circuit.Netlist, doc *circuit.PlacementDoc) (*circuit.Placement, []bool, error) {
	p := circuit.NewPlacement(n)
	matched := make([]bool, len(n.Devices))
	hits := 0
	for i := range n.Devices {
		di, ok := doc.Device(n.Devices[i].Name)
		if !ok {
			continue
		}
		matched[i] = true
		hits++
		p.X[i] = doc.X[di]
		p.Y[i] = doc.Y[di]
		p.FlipX[i] = doc.FlipX[di]
		p.FlipY[i] = doc.FlipY[di]
	}
	if hits == 0 {
		return nil, nil, fmt.Errorf("netio: placement for %q shares no devices with netlist %q", doc.Design, n.Name)
	}
	if len(doc.AxesX) == len(n.SymGroups) {
		copy(p.AxisX, doc.AxesX)
	} else {
		n.ResolveAxes(p)
	}
	return p, matched, nil
}

// PlacementForNetlistStrict is PlacementForNetlist requiring every device
// of n to be present in the document — the contract for a warm-start base
// placement, which must cover its base netlist completely.
func PlacementForNetlistStrict(n *circuit.Netlist, doc *circuit.PlacementDoc) (*circuit.Placement, error) {
	p, matched, err := PlacementForNetlist(n, doc)
	if err != nil {
		return nil, err
	}
	for i, ok := range matched {
		if !ok {
			return nil, fmt.Errorf("netio: placement for %q is missing device %q of netlist %q",
				doc.Design, n.Devices[i].Name, n.Name)
		}
	}
	return p, nil
}

// Resolve loads a netlist from entry, treating it as a file path when one
// exists on disk and as a built-in name or generator spec otherwise — the
// convention cmd/bench uses for -netlist entries and cmd/placer for
// -warm-base.
func Resolve(entry string) (*circuit.Netlist, error) {
	if _, err := os.Stat(entry); err == nil {
		return LoadFile(entry)
	}
	n, _, err := Load("", entry)
	return n, err
}
