package netio

import (
	"bytes"
	"testing"

	"repro/internal/circuit"
	"repro/internal/gen"
	"repro/internal/geom"
	"repro/internal/testcircuits"
)

// fpNetlist builds a small netlist exercising every constraint class.
func fpNetlist() *circuit.Netlist {
	dev := func(name string) circuit.Device {
		return circuit.Device{
			Name: name, Type: circuit.NMOS, W: 4, H: 3,
			Pins: []circuit.Pin{
				{Name: "g", Offset: geom.Point{X: 1, Y: 1}},
				{Name: "d", Offset: geom.Point{X: 3, Y: 2}},
			},
		}
	}
	n := &circuit.Netlist{
		Name:    "fp-test",
		Devices: []circuit.Device{dev("M1"), dev("M2"), dev("M3"), dev("M4")},
		Nets: []circuit.Net{
			{Name: "a", Weight: 2, Pins: []circuit.PinRef{{Device: 0, Pin: 0}, {Device: 1, Pin: 1}}},
			{Name: "b", Pins: []circuit.PinRef{{Device: 2, Pin: 0}, {Device: 3, Pin: 0}, {Device: 0, Pin: 1}}},
		},
		SymGroups: []circuit.SymmetryGroup{
			{Pairs: [][2]int{{0, 1}}, Self: []int{2}},
		},
		BottomAlign:  [][2]int{{0, 1}, {2, 3}},
		VCenterAlign: [][2]int{{1, 3}},
		HOrders:      [][]int{{0, 1, 2}},
	}
	if err := n.Validate(); err != nil {
		panic(err)
	}
	return n
}

// reorder returns a semantically identical netlist with devices, nets,
// within-net pins, constraint pairs, and group lists permuted.
func reorder(n *circuit.Netlist) *circuit.Netlist {
	// New device order: reversed. Device index i maps to newIdx[i].
	perm := make([]int, len(n.Devices))
	devs := make([]circuit.Device, len(n.Devices))
	for i := range n.Devices {
		j := len(n.Devices) - 1 - i
		devs[j] = n.Devices[i]
		perm[i] = j
	}
	remapRef := func(pr circuit.PinRef) circuit.PinRef {
		return circuit.PinRef{Device: perm[pr.Device], Pin: pr.Pin}
	}
	out := &circuit.Netlist{Name: n.Name, Devices: devs}
	// Nets reversed, and each net's pin list reversed.
	for e := len(n.Nets) - 1; e >= 0; e-- {
		src := n.Nets[e]
		net := circuit.Net{Name: src.Name, Weight: src.Weight}
		for i := len(src.Pins) - 1; i >= 0; i-- {
			net.Pins = append(net.Pins, remapRef(src.Pins[i]))
		}
		out.Nets = append(out.Nets, net)
	}
	for _, g := range n.SymGroups {
		ng := circuit.SymmetryGroup{}
		for i := len(g.Pairs) - 1; i >= 0; i-- {
			// Swap the pair's internal order too: mirroring is symmetric.
			ng.Pairs = append(ng.Pairs, [2]int{perm[g.Pairs[i][1]], perm[g.Pairs[i][0]]})
		}
		for i := len(g.Self) - 1; i >= 0; i-- {
			ng.Self = append(ng.Self, perm[g.Self[i]])
		}
		out.SymGroups = append(out.SymGroups, ng)
	}
	for i := len(n.BottomAlign) - 1; i >= 0; i-- {
		pr := n.BottomAlign[i]
		out.BottomAlign = append(out.BottomAlign, [2]int{perm[pr[1]], perm[pr[0]]})
	}
	for _, pr := range n.VCenterAlign {
		out.VCenterAlign = append(out.VCenterAlign, [2]int{perm[pr[1]], perm[pr[0]]})
	}
	// Horizontal order is semantic: remap indices but keep the sequence.
	for _, grp := range n.HOrders {
		ng := make([]int, len(grp))
		for i, d := range grp {
			ng[i] = perm[d]
		}
		out.HOrders = append(out.HOrders, ng)
	}
	return out
}

func TestFingerprintStableUnderReordering(t *testing.T) {
	n := fpNetlist()
	m := reorder(n)
	if err := m.Validate(); err != nil {
		t.Fatalf("reordered netlist invalid: %v", err)
	}
	var cn, cm bytes.Buffer
	if err := WriteCanonical(&cn, n); err != nil {
		t.Fatal(err)
	}
	if err := WriteCanonical(&cm, m); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(cn.Bytes(), cm.Bytes()) {
		t.Errorf("canonical forms differ under reordering:\n--- original\n%s\n--- reordered\n%s", cn.Bytes(), cm.Bytes())
	}
	if Fingerprint(n) != Fingerprint(m) {
		t.Error("fingerprints differ under reordering")
	}
}

func TestFingerprintSensitivity(t *testing.T) {
	base := Fingerprint(fpNetlist())
	mutations := []struct {
		name string
		mut  func(n *circuit.Netlist)
	}{
		{"netlist name", func(n *circuit.Netlist) { n.Name = "other" }},
		{"device size", func(n *circuit.Netlist) { n.Devices[3].W = 5 }},
		{"pin offset", func(n *circuit.Netlist) { n.Devices[0].Pins[0].Offset.X = 2 }},
		{"net weight", func(n *circuit.Netlist) { n.Nets[0].Weight = 3 }},
		{"net membership", func(n *circuit.Netlist) { n.Nets[1].Pins[0].Device = 1 }},
		{"symmetry pair", func(n *circuit.Netlist) { n.SymGroups[0].Pairs[0] = [2]int{2, 3}; n.SymGroups[0].Self = nil }},
		{"drop align pair", func(n *circuit.Netlist) { n.BottomAlign = n.BottomAlign[:1] }},
		{"order sequence", func(n *circuit.Netlist) { n.HOrders[0][0], n.HOrders[0][1] = n.HOrders[0][1], n.HOrders[0][0] }},
	}
	for _, tc := range mutations {
		n := fpNetlist()
		tc.mut(n)
		if err := n.Validate(); err != nil {
			t.Fatalf("%s: mutated netlist invalid: %v", tc.name, err)
		}
		if Fingerprint(n) == base {
			t.Errorf("%s: fingerprint unchanged by mutation", tc.name)
		}
	}
}

// TestFingerprintRealCircuits pins that fingerprinting is deterministic
// across repeated computation on the built-in and generated circuits, and
// that distinct circuits get distinct fingerprints.
func TestFingerprintRealCircuits(t *testing.T) {
	seen := map[[32]byte]string{}
	for _, name := range []string{"Adder", "CC-OTA"} {
		c, err := testcircuits.ByName(name)
		if err != nil {
			t.Fatal(err)
		}
		fp := Fingerprint(c.Netlist)
		if fp != Fingerprint(c.Netlist) {
			t.Errorf("%s: fingerprint not deterministic", name)
		}
		if prev, dup := seen[fp]; dup {
			t.Errorf("%s collides with %s", name, prev)
		}
		seen[fp] = name
	}
	g, err := gen.Generate(gen.Params{Devices: 40, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	fp := Fingerprint(g)
	if _, dup := seen[fp]; dup {
		t.Error("generated circuit collides with a built-in")
	}
	// Same generator spec reproduces the same circuit, hence fingerprint.
	g2, err := gen.Generate(gen.Params{Devices: 40, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	if Fingerprint(g2) != fp {
		t.Error("same-spec generated circuits fingerprint differently")
	}
}
