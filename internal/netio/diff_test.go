package netio

import (
	"bytes"
	"testing"

	"repro/internal/circuit"
	"repro/internal/gen"
)

func genNetlist(t *testing.T, devices int, seed int64) *circuit.Netlist {
	t.Helper()
	n, err := gen.Generate(gen.Params{Devices: devices, Seed: seed})
	if err != nil {
		t.Fatal(err)
	}
	return n
}

// clone deep-copies the parts of a netlist the diff tests mutate.
func cloneNetlist(n *circuit.Netlist) *circuit.Netlist {
	c := *n
	c.Devices = append([]circuit.Device(nil), n.Devices...)
	c.Nets = make([]circuit.Net, len(n.Nets))
	for i := range n.Nets {
		c.Nets[i] = n.Nets[i]
		c.Nets[i].Pins = append([]circuit.PinRef(nil), n.Nets[i].Pins...)
	}
	return &c
}

// dropConstraints removes every constraint referencing device index v
// (which tests delete from the device list, so stale references would be
// out of range).
func dropConstraints(n *circuit.Netlist, v int) {
	groups := make([]circuit.SymmetryGroup, 0, len(n.SymGroups))
	for _, g := range n.SymGroups {
		ng := circuit.SymmetryGroup{}
		for _, pr := range g.Pairs {
			if pr[0] != v && pr[1] != v {
				ng.Pairs = append(ng.Pairs, pr)
			}
		}
		for _, s := range g.Self {
			if s != v {
				ng.Self = append(ng.Self, s)
			}
		}
		if len(ng.Pairs)+len(ng.Self) > 0 {
			groups = append(groups, ng)
		}
	}
	n.SymGroups = groups
	filterPairs := func(ps [][2]int) [][2]int {
		out := ps[:0]
		for _, pr := range ps {
			if pr[0] != v && pr[1] != v {
				out = append(out, pr)
			}
		}
		return out
	}
	n.BottomAlign = filterPairs(append([][2]int(nil), n.BottomAlign...))
	n.VCenterAlign = filterPairs(append([][2]int(nil), n.VCenterAlign...))
	orders := make([][]int, 0, len(n.HOrders))
	for _, grp := range n.HOrders {
		ng := make([]int, 0, len(grp))
		for _, di := range grp {
			if di != v {
				ng = append(ng, di)
			}
		}
		if len(ng) >= 2 {
			orders = append(orders, ng)
		}
	}
	n.HOrders = orders
}

func TestDiffIdenticalNetlists(t *testing.T) {
	n := genNetlist(t, 40, 3)
	d := DiffNetlists(n, n, DiffOptions{})
	if d.Added != 0 || d.Removed != 0 || d.Changed != 0 {
		t.Fatalf("self-diff not clean: added=%d removed=%d changed=%d", d.Added, d.Removed, d.Changed)
	}
	if got, want := d.AnchorCount(), len(n.Devices); got != want {
		t.Fatalf("AnchorCount = %d, want %d (every device)", got, want)
	}
	if d.PerturbedCount() != 0 {
		t.Fatalf("PerturbedCount = %d, want 0", d.PerturbedCount())
	}
	for i, u := range d.Unchanged {
		if !u {
			t.Fatalf("device %d (%s) not unchanged in self-diff", i, n.Devices[i].Name)
		}
	}
}

// TestDiffGrownNetlist exercises the canonical ECO edit: the generator's
// own growth, which keeps the original devices as a prefix. The original
// devices away from the new tiles must stay anchored, and the additions
// must all be perturbed.
func TestDiffGrownNetlist(t *testing.T) {
	base := genNetlist(t, 160, 3)
	edited := genNetlist(t, len(base.Devices)+8, 3)
	if len(edited.Devices) <= len(base.Devices) {
		t.Fatalf("edit did not grow: %d -> %d devices", len(base.Devices), len(edited.Devices))
	}
	for i := range base.Devices {
		if base.Devices[i].Name != edited.Devices[i].Name {
			t.Fatalf("generator prefix broke at device %d: %q vs %q",
				i, base.Devices[i].Name, edited.Devices[i].Name)
		}
	}

	d := DiffNetlists(base, edited, DiffOptions{})
	if d.Removed != 0 {
		t.Fatalf("Removed = %d, want 0", d.Removed)
	}
	if want := len(edited.Devices) - len(base.Devices); d.Added != want {
		t.Fatalf("Added = %d, want %d", d.Added, want)
	}
	for i := len(base.Devices); i < len(edited.Devices); i++ {
		if d.BaseIndex[i] != -1 || !d.Perturbed[i] {
			t.Fatalf("added device %d: BaseIndex=%d perturbed=%v, want -1/true", i, d.BaseIndex[i], d.Perturbed[i])
		}
	}
	// The edit is local: most of the base must survive as anchors, and the
	// perturbed region must stay well under the full netlist.
	if d.AnchorCount() < len(base.Devices)/2 {
		t.Fatalf("only %d of %d base devices anchored; edit should be local", d.AnchorCount(), len(base.Devices))
	}
	if d.PerturbedCount() >= len(edited.Devices) {
		t.Fatalf("entire netlist perturbed")
	}
	anch := d.Anchored()
	for i := range anch {
		if anch[i] && (d.BaseIndex[i] < 0 || d.Perturbed[i]) {
			t.Fatalf("Anchored mask inconsistent at %d", i)
		}
	}
}

func TestDiffRemovedDevice(t *testing.T) {
	base := genNetlist(t, 160, 5)
	edited := cloneNetlist(base)
	// Drop the last device and its net pins.
	victim := len(edited.Devices) - 1
	edited.Devices = edited.Devices[:victim]
	for ni := range edited.Nets {
		keep := edited.Nets[ni].Pins[:0]
		for _, pr := range edited.Nets[ni].Pins {
			if pr.Device != victim {
				keep = append(keep, pr)
			}
		}
		edited.Nets[ni].Pins = keep
	}
	dropConstraints(edited, victim)

	d := DiffNetlists(base, edited, DiffOptions{})
	if d.Removed != 1 {
		t.Fatalf("Removed = %d, want 1", d.Removed)
	}
	if d.Added != 0 {
		t.Fatalf("Added = %d, want 0", d.Added)
	}
	// Ex-neighbors of the victim see a changed net membership, so the
	// perturbed region is non-empty even though no surviving device moved.
	if d.PerturbedCount() == 0 {
		t.Fatalf("removal did not perturb the victim's neighborhood")
	}
	if d.AnchorCount() == 0 {
		t.Fatalf("removal destroyed every anchor")
	}
}

func TestDiffGeometryChange(t *testing.T) {
	base := genNetlist(t, 30, 5)
	edited := cloneNetlist(base)
	edited.Devices[4].W *= 1.5

	d := DiffNetlists(base, edited, DiffOptions{})
	if d.Changed == 0 {
		t.Fatalf("geometry change not detected")
	}
	if d.Unchanged[4] || !d.Perturbed[4] {
		t.Fatalf("resized device: unchanged=%v perturbed=%v", d.Unchanged[4], d.Perturbed[4])
	}
	if d.AnchorCount() == 0 {
		t.Fatalf("single resize destroyed every anchor")
	}
}

// TestDiffNetRenameInvariance checks that renaming a net changes nothing:
// context hashes key nets by membership, not by name.
func TestDiffNetRenameInvariance(t *testing.T) {
	base := genNetlist(t, 30, 7)
	edited := cloneNetlist(base)
	for ni := range edited.Nets {
		edited.Nets[ni].Name = "renamed_" + edited.Nets[ni].Name
	}

	d := DiffNetlists(base, edited, DiffOptions{})
	if d.Changed != 0 || d.PerturbedCount() != 0 {
		t.Fatalf("pure net rename marked changed=%d perturbed=%d, want 0/0", d.Changed, d.PerturbedCount())
	}
	if got, want := d.AnchorCount(), len(base.Devices); got != want {
		t.Fatalf("AnchorCount = %d, want %d", got, want)
	}
}

func TestDiffNetWeightChange(t *testing.T) {
	base := genNetlist(t, 30, 7)
	edited := cloneNetlist(base)
	// Pick a small (local) net so the weight change is in-context.
	opt := DiffOptions{}.withDefaults()
	ni := -1
	for i := range edited.Nets {
		if np := len(edited.Nets[i].Pins); np >= 2 && np <= opt.MaxFanout {
			ni = i
			break
		}
	}
	if ni < 0 {
		t.Fatal("no local net in generated netlist")
	}
	edited.Nets[ni].Weight += 1

	d := DiffNetlists(base, edited, DiffOptions{})
	if d.Changed == 0 {
		t.Fatalf("net weight change not detected")
	}
	for _, pr := range edited.Nets[ni].Pins {
		if !d.Perturbed[pr.Device] {
			t.Fatalf("device %d on reweighted net not perturbed", pr.Device)
		}
	}
}

// TestDiffRadius checks the hop-expansion knob: radius -1 keeps the
// perturbed region to exactly the changed/added devices, and growing the
// radius can only grow the region.
func TestDiffRadius(t *testing.T) {
	base := genNetlist(t, 160, 3)
	edited := genNetlist(t, len(base.Devices)+8, 3)

	none := DiffNetlists(base, edited, DiffOptions{Radius: -1})
	if got, want := none.PerturbedCount(), none.Added+none.Changed; got != want {
		t.Fatalf("radius -1: perturbed %d, want added+changed = %d", got, want)
	}
	one := DiffNetlists(base, edited, DiffOptions{})
	two := DiffNetlists(base, edited, DiffOptions{Radius: 2})
	if one.PerturbedCount() < none.PerturbedCount() || two.PerturbedCount() < one.PerturbedCount() {
		t.Fatalf("perturbed region shrank with radius: %d, %d, %d",
			none.PerturbedCount(), one.PerturbedCount(), two.PerturbedCount())
	}
}

func TestFingerprintPlacementStability(t *testing.T) {
	n := genNetlist(t, 20, 11)
	p := circuit.NewPlacement(n)
	for i := range n.Devices {
		p.X[i] = float64(i) * 1.5
		p.Y[i] = float64(i) * 0.5
	}
	a := FingerprintPlacement(n, p)
	b := FingerprintPlacement(n, p.Clone())
	if a != b {
		t.Fatalf("fingerprint not stable across identical placements")
	}
	q := p.Clone()
	q.X[3] += 1e-9
	if FingerprintPlacement(n, q) == a {
		t.Fatalf("fingerprint ignored a coordinate change")
	}
}

// TestPlacementDocRoundTrip writes a placement document and binds it back
// onto (a) the same netlist and (b) a grown netlist, the warm-start path.
func TestPlacementDocRoundTrip(t *testing.T) {
	n := genNetlist(t, 24, 9)
	p := circuit.NewPlacement(n)
	for i := range n.Devices {
		p.X[i] = float64(i)
		p.Y[i] = float64(2 * i)
		p.FlipX[i] = i%3 == 0
	}
	n.ResolveAxes(p)

	var buf bytes.Buffer
	if err := n.WritePlacementJSON(&buf, p); err != nil {
		t.Fatal(err)
	}
	doc, err := circuit.ReadPlacementDoc(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	got, err := PlacementForNetlistStrict(n, doc)
	if err != nil {
		t.Fatal(err)
	}
	for i := range n.Devices {
		if got.X[i] != p.X[i] || got.Y[i] != p.Y[i] || got.FlipX[i] != p.FlipX[i] || got.FlipY[i] != p.FlipY[i] {
			t.Fatalf("device %d round-trip mismatch", i)
		}
	}
	if FingerprintPlacement(n, got) != FingerprintPlacement(n, p) {
		t.Fatalf("round-trip changed the placement fingerprint")
	}

	grown := genNetlist(t, len(n.Devices)+8, 9)
	_, matched, err := PlacementForNetlist(grown, doc)
	if err != nil {
		t.Fatal(err)
	}
	hits := 0
	for _, ok := range matched {
		if ok {
			hits++
		}
	}
	if hits != len(n.Devices) {
		t.Fatalf("grown bind matched %d devices, want %d", hits, len(n.Devices))
	}
	if _, err := PlacementForNetlistStrict(grown, doc); err == nil {
		t.Fatalf("strict bind accepted a document missing the added devices")
	}
}
