package netio

import (
	"bufio"
	"crypto/sha256"
	"fmt"
	"io"
	"math"
	"sort"
	"strconv"

	"repro/internal/circuit"
)

// WriteCanonical writes a canonical serialization of n: a line-oriented
// text form whose bytes are independent of the order in which devices,
// nets, and constraint groups were listed in the source document. Two
// netlists describing the same circuit — same named devices with the same
// geometry, the same electrical connectivity, the same constraint set —
// produce identical canonical bytes no matter how their JSON was arranged.
//
// Canonicalization rules:
//
//   - Devices are sorted by name; pins within a device are sorted by
//     (name, offset). Device names are assumed unique (the JSON loader
//     enforces this).
//   - Nets are rendered with their pin references resolved to
//     "device.pin" names and sorted (a net is electrically a set of
//     pins), then the net lines themselves are sorted.
//   - Symmetry pairs and alignment pairs are symmetric relations, so each
//     pair is sorted internally; pair lists and group lines are sorted.
//   - Horizontal-order groups keep their internal order (left-to-right
//     sequence is semantic) but the group list is sorted.
//   - Floats are rendered as the hex of their IEEE-754 bits — exact, with
//     no formatting ambiguity.
//
// The canonical form is the foundation of the result cache's content
// addressing (see Fingerprint), and is independently useful for diffing
// or deduplicating netlists across files.
func WriteCanonical(w io.Writer, n *circuit.Netlist) error {
	bw := bufio.NewWriter(w)
	fmt.Fprintf(bw, "canon/v1 netlist %q\n", n.Name)

	// Devices, sorted by name; pins sorted by (name, offset bits).
	devOrder := make([]int, len(n.Devices))
	for i := range devOrder {
		devOrder[i] = i
	}
	sort.Slice(devOrder, func(a, b int) bool {
		return n.Devices[devOrder[a]].Name < n.Devices[devOrder[b]].Name
	})
	for _, di := range devOrder {
		d := &n.Devices[di]
		fmt.Fprintf(bw, "device %q %s %s %s\n", d.Name, d.Type, fbits(d.W), fbits(d.H))
		pins := make([]string, len(d.Pins))
		for pi, p := range d.Pins {
			pins[pi] = fmt.Sprintf(" pin %q %s %s\n", p.Name, fbits(p.Offset.X), fbits(p.Offset.Y))
		}
		sort.Strings(pins)
		for _, line := range pins {
			bw.WriteString(line)
		}
	}

	pinName := func(pr circuit.PinRef) string {
		d := &n.Devices[pr.Device]
		return fmt.Sprintf("%q.%q", d.Name, d.Pins[pr.Pin].Name)
	}
	devName := func(i int) string { return strconv.Quote(n.Devices[i].Name) }
	sortedPair := func(a, b int) string {
		na, nb := devName(a), devName(b)
		if nb < na {
			na, nb = nb, na
		}
		return na + "|" + nb
	}

	// Nets: pin sets sorted within each net, net lines sorted.
	netLines := make([]string, len(n.Nets))
	for e := range n.Nets {
		net := &n.Nets[e]
		refs := make([]string, len(net.Pins))
		for i, pr := range net.Pins {
			refs[i] = pinName(pr)
		}
		sort.Strings(refs)
		line := fmt.Sprintf("net %q %s", net.Name, fbits(net.Weight))
		for _, r := range refs {
			line += " " + r
		}
		netLines[e] = line + "\n"
	}
	sort.Strings(netLines)
	for _, line := range netLines {
		bw.WriteString(line)
	}

	// Symmetry groups: pairs sorted (internally and as a list), self list
	// sorted, group lines sorted.
	symLines := make([]string, len(n.SymGroups))
	for gi := range n.SymGroups {
		g := &n.SymGroups[gi]
		pairs := make([]string, len(g.Pairs))
		for i, pr := range g.Pairs {
			pairs[i] = sortedPair(pr[0], pr[1])
		}
		sort.Strings(pairs)
		self := make([]string, len(g.Self))
		for i, r := range g.Self {
			self[i] = devName(r)
		}
		sort.Strings(self)
		line := "sym pairs"
		for _, p := range pairs {
			line += " " + p
		}
		line += " self"
		for _, s := range self {
			line += " " + s
		}
		symLines[gi] = line + "\n"
	}
	sort.Strings(symLines)
	for _, line := range symLines {
		bw.WriteString(line)
	}

	writePairs := func(kind string, pairs [][2]int) {
		lines := make([]string, len(pairs))
		for i, pr := range pairs {
			lines[i] = kind + " " + sortedPair(pr[0], pr[1]) + "\n"
		}
		sort.Strings(lines)
		for _, line := range lines {
			bw.WriteString(line)
		}
	}
	writePairs("balign", n.BottomAlign)
	writePairs("vcalign", n.VCenterAlign)

	// Horizontal orders: internal order is semantic and preserved; the
	// list of groups is not, and is sorted.
	ordLines := make([]string, len(n.HOrders))
	for oi, grp := range n.HOrders {
		line := "horder"
		for _, d := range grp {
			line += " " + devName(d)
		}
		ordLines[oi] = line + "\n"
	}
	sort.Strings(ordLines)
	for _, line := range ordLines {
		bw.WriteString(line)
	}
	return bw.Flush()
}

// Fingerprint returns the SHA-256 of the canonical serialization: a
// content address for the circuit that is stable under reordering of
// devices, nets, pin lists, and constraint groups in the source document.
// It is the netlist component of the placement service's result-cache key
// (see internal/rescache).
func Fingerprint(n *circuit.Netlist) [32]byte {
	h := sha256.New()
	// sha256.Write never fails, so WriteCanonical cannot either.
	WriteCanonical(h, n)
	var out [32]byte
	h.Sum(out[:0])
	return out
}

// fbits renders a float64 as the hex of its IEEE-754 bit pattern: exact,
// unambiguous, and canonical (no shortest-representation subtleties).
func fbits(f float64) string {
	return strconv.FormatUint(math.Float64bits(f), 16)
}
