// Package netio is the shared netlist-loading layer for the command-line
// tools and the placement service: it resolves a netlist from a JSON file,
// an in-memory JSON document, or a built-in benchmark circuit, and front-
// loads validation so malformed inputs fail with actionable, field-named
// errors before any solver runs.
package netio

import (
	"bytes"
	"fmt"
	"io"
	"os"

	"repro/internal/circuit"
	"repro/internal/gen"
	"repro/internal/testcircuits"
)

// Decode parses and validates a netlist JSON document from r. It is
// circuit.ReadJSON plus source labeling: errors are prefixed with label
// (a file name, "request body", ...) when label is non-empty.
func Decode(r io.Reader, label string) (*circuit.Netlist, error) {
	n, err := circuit.ReadJSON(r)
	if err != nil {
		if label != "" {
			return nil, fmt.Errorf("%s: %w", label, err)
		}
		return nil, err
	}
	return n, nil
}

// DecodeBytes parses and validates a netlist JSON document held in memory
// (the placement service's request path).
func DecodeBytes(b []byte, label string) (*circuit.Netlist, error) {
	return Decode(bytes.NewReader(b), label)
}

// LoadFile reads and validates a netlist JSON file.
func LoadFile(path string) (*circuit.Netlist, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return Decode(f, path)
}

// Load resolves the netlist-source choice shared by cmd/placer, cmd/bench
// and the placement service: a JSON file path, a built-in benchmark name,
// or a synthetic-generator spec ("gen:<devices>[@seed]", e.g. "gen:200@7").
// Exactly one of inPath and builtin must be non-empty. The returned Case is
// non-nil only for built-in circuits (it carries the performance model);
// generated circuits have no performance model.
func Load(inPath, builtin string) (*circuit.Netlist, *testcircuits.Case, error) {
	switch {
	case inPath != "" && builtin != "":
		return nil, nil, fmt.Errorf("netio: choose a netlist file or a built-in circuit, not both")
	case inPath != "":
		n, err := LoadFile(inPath)
		if err != nil {
			return nil, nil, err
		}
		return n, nil, nil
	case gen.IsSpec(builtin):
		p, err := gen.ParseSpec(builtin)
		if err != nil {
			return nil, nil, err
		}
		n, err := gen.Generate(p)
		if err != nil {
			return nil, nil, err
		}
		return n, nil, nil
	case builtin != "":
		cs, err := testcircuits.ByName(builtin)
		if err != nil {
			return nil, nil, err
		}
		return cs.Netlist, cs, nil
	}
	return nil, nil, fmt.Errorf("netio: no netlist source given")
}
