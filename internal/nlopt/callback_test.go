package nlopt

import (
	"testing"

	"repro/internal/obs"
)

// illQuadratic is an ill-conditioned quadratic that takes many iterations to
// converge, so a mid-run callback stop is observably earlier than natural
// termination.
func illQuadratic(n int) Objective {
	lambda := make([]float64, n)
	c := make([]float64, n)
	for i := range lambda {
		lambda[i] = float64(1 + i*i*20)
		c[i] = float64(i%3) - 1
	}
	return quadratic(lambda, c)
}

// TestNesterovCallbackStops checks the callback-stop contract: returning
// false at iteration k halts the solver immediately and the reported
// iteration count is exactly k+1 (iterations actually run).
func TestNesterovCallbackStops(t *testing.T) {
	const stopAt = 5
	obj := illQuadratic(8)

	// Baseline: unconstrained run must go well past stopAt, otherwise the
	// stopped run proves nothing.
	xFree := make([]float64, 8)
	_, freeIters := Nesterov(obj, xFree, NesterovOptions{MaxIter: 400, GradTol: 1e-10, InitStep: 1e-3})
	if freeIters <= stopAt+1 {
		t.Fatalf("baseline converged in %d iters; need > %d for the stop test to be meaningful", freeIters, stopAt+1)
	}

	var calls []int
	sink := &obs.MemorySink{}
	tr := obs.New(sink)
	x := make([]float64, 8)
	_, iters := Nesterov(obj, x, NesterovOptions{
		MaxIter: 400, GradTol: 1e-10, InitStep: 1e-3,
		Tracer: tr,
		Callback: func(iter int, x []float64, f float64) bool {
			calls = append(calls, iter)
			return iter < stopAt
		},
	})
	if iters != stopAt+1 {
		t.Errorf("Nesterov ran %d iterations, want exactly %d", iters, stopAt+1)
	}
	if len(calls) != stopAt+1 {
		t.Errorf("callback invoked %d times, want %d", len(calls), stopAt+1)
	}
	for i, c := range calls {
		if c != i {
			t.Fatalf("callback saw iteration %d at position %d", c, i)
		}
	}
	// The tracer's per-iteration events must agree with the reported count.
	if ev := sink.ByKind(obs.KindIter); len(ev) != iters {
		t.Errorf("tracer recorded %d iter events, want %d", len(ev), iters)
	} else if last := ev[len(ev)-1].Iter; last.Solver != "nesterov" || last.Iter != stopAt {
		t.Errorf("last iter event = %s/%d, want nesterov/%d", last.Solver, last.Iter, stopAt)
	}
}

// TestCGCallbackStops is the same contract for the conjugate-gradient solver.
func TestCGCallbackStops(t *testing.T) {
	const stopAt = 4
	obj := illQuadratic(10)

	xFree := make([]float64, 10)
	_, freeIters := CG(obj, xFree, CGOptions{MaxIter: 400, GradTol: 1e-10})
	if freeIters <= stopAt+1 {
		t.Fatalf("baseline converged in %d iters; need > %d for the stop test to be meaningful", freeIters, stopAt+1)
	}

	var calls []int
	sink := &obs.MemorySink{}
	tr := obs.New(sink)
	x := make([]float64, 10)
	_, iters := CG(obj, x, CGOptions{
		MaxIter: 400, GradTol: 1e-10,
		Tracer: tr,
		Callback: func(iter int, x []float64, f float64) bool {
			calls = append(calls, iter)
			return iter < stopAt
		},
	})
	if iters != stopAt+1 {
		t.Errorf("CG ran %d iterations, want exactly %d", iters, stopAt+1)
	}
	if len(calls) != stopAt+1 {
		t.Errorf("callback invoked %d times, want %d", len(calls), stopAt+1)
	}
	for i, c := range calls {
		if c != i {
			t.Fatalf("callback saw iteration %d at position %d", c, i)
		}
	}
	if ev := sink.ByKind(obs.KindIter); len(ev) != iters {
		t.Errorf("tracer recorded %d iter events, want %d", len(ev), iters)
	} else if last := ev[len(ev)-1].Iter; last.Solver != "cg" || last.Iter != stopAt {
		t.Errorf("last iter event = %s/%d, want cg/%d", last.Solver, last.Iter, stopAt)
	}
}
