package nlopt

import (
	"math"
	"math/rand"
	"testing"
)

// quadratic returns an objective ½·Σ λ_i (x_i - c_i)² with known minimum c.
func quadratic(lambda, c []float64) Objective {
	return func(x, grad []float64) float64 {
		var f float64
		for i := range x {
			d := x[i] - c[i]
			f += 0.5 * lambda[i] * d * d
			grad[i] = lambda[i] * d
		}
		return f
	}
}

func TestNesterovQuadratic(t *testing.T) {
	lambda := []float64{1, 10, 100}
	c := []float64{3, -2, 0.5}
	x := []float64{0, 0, 0}
	f, iters := Nesterov(quadratic(lambda, c), x, NesterovOptions{MaxIter: 2000, GradTol: 1e-10, InitStep: 0.001})
	if iters == 0 {
		t.Fatal("no iterations run")
	}
	for i := range x {
		if math.Abs(x[i]-c[i]) > 1e-4 {
			t.Errorf("x[%d] = %g, want %g (f=%g after %d iters)", i, x[i], c[i], f, iters)
		}
	}
}

// TestNesterovLogSumExp checks convergence on a smooth non-quadratic convex
// function: f(x) = log(Σ e^{x_i}) + ½‖x − c‖².
func TestNesterovLogSumExp(t *testing.T) {
	c := []float64{1, -2, 0.5, 3}
	obj := func(x, grad []float64) float64 {
		maxX := x[0]
		for _, v := range x[1:] {
			maxX = math.Max(maxX, v)
		}
		var s float64
		for _, v := range x {
			s += math.Exp(v - maxX)
		}
		f := maxX + math.Log(s)
		for i := range x {
			grad[i] = math.Exp(x[i]-maxX)/s + (x[i] - c[i])
			d := x[i] - c[i]
			f += 0.5 * d * d
		}
		return f
	}
	x := make([]float64, 4)
	_, _ = Nesterov(obj, x, NesterovOptions{MaxIter: 5000, InitStep: 0.01, GradTol: 1e-9})
	// Verify stationarity at the solution.
	g := make([]float64, 4)
	obj(x, g)
	if n := Norm2(g); n > 1e-4 {
		t.Errorf("gradient norm at solution = %g, want ~0 (x=%v)", n, x)
	}
}

func TestNesterovZeroGradientStops(t *testing.T) {
	obj := func(x, grad []float64) float64 {
		for i := range grad {
			grad[i] = 0
		}
		return 42
	}
	x := []float64{1, 2}
	f, iters := Nesterov(obj, x, NesterovOptions{MaxIter: 100})
	if iters != 0 || f != 42 {
		t.Errorf("zero-gradient start: iters=%d f=%g", iters, f)
	}
}

func TestCGQuadratic(t *testing.T) {
	lambda := []float64{1, 50, 200}
	c := []float64{-1, 4, 2}
	x := []float64{10, 10, 10}
	f, _ := CG(quadratic(lambda, c), x, CGOptions{MaxIter: 500, GradTol: 1e-10})
	for i := range x {
		if math.Abs(x[i]-c[i]) > 1e-5 {
			t.Errorf("x[%d] = %g, want %g (f=%g)", i, x[i], c[i], f)
		}
	}
}

func TestCGRosenbrock(t *testing.T) {
	rosen := func(x, grad []float64) float64 {
		a, b := x[0], x[1]
		grad[0] = -2*(1-a) - 400*a*(b-a*a)
		grad[1] = 200 * (b - a*a)
		return (1-a)*(1-a) + 100*(b-a*a)*(b-a*a)
	}
	x := []float64{-1.2, 1}
	f, _ := CG(rosen, x, CGOptions{MaxIter: 5000, GradTol: 1e-9})
	if f > 1e-6 {
		t.Errorf("Rosenbrock f = %g at %v", f, x)
	}
}

func TestCGMonotoneDecrease(t *testing.T) {
	// Armijo acceptance implies the recorded objective never increases.
	rng := rand.New(rand.NewSource(1))
	n := 20
	lambda := make([]float64, n)
	c := make([]float64, n)
	x := make([]float64, n)
	for i := range lambda {
		lambda[i] = 0.5 + rng.Float64()*20
		c[i] = rng.NormFloat64() * 3
		x[i] = rng.NormFloat64() * 3
	}
	prev := math.Inf(1)
	CG(quadratic(lambda, c), x, CGOptions{
		MaxIter: 200,
		Callback: func(iter int, x []float64, f float64) bool {
			if f > prev+1e-12 {
				t.Errorf("iter %d: f increased %g -> %g", iter, prev, f)
			}
			prev = f
			return true
		},
	})
}

func TestAdamConvergesOnQuadratic(t *testing.T) {
	params := []float64{5, -3}
	grad := make([]float64, 2)
	opt := NewAdam(0.05)
	for i := 0; i < 3000; i++ {
		grad[0] = 2 * params[0]
		grad[1] = 2 * params[1]
		opt.Step(params, grad)
	}
	for i, p := range params {
		if math.Abs(p) > 1e-3 {
			t.Errorf("params[%d] = %g, want ~0", i, p)
		}
	}
}

func TestAdamReset(t *testing.T) {
	opt := NewAdam(0.1)
	p := []float64{1}
	opt.Step(p, []float64{1})
	opt.Reset()
	if opt.t != 0 || opt.m != nil {
		t.Error("Reset did not clear state")
	}
	// Stepping after reset with a different size must not panic.
	p2 := []float64{1, 2}
	opt.Step(p2, []float64{1, 1})
}

func TestVectorHelpers(t *testing.T) {
	v := []float64{3, -4}
	if Norm2(v) != 5 {
		t.Errorf("Norm2 = %g", Norm2(v))
	}
	if Norm1(v) != 7 {
		t.Errorf("Norm1 = %g", Norm1(v))
	}
	if Dot(v, []float64{2, 1}) != 2 {
		t.Errorf("Dot = %g", Dot(v, []float64{2, 1}))
	}
}
