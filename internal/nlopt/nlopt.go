// Package nlopt provides the nonlinear optimizers used across the
// repository: Nesterov's accelerated gradient method with Lipschitz-based
// step prediction (the ePlace solver), Polak–Ribière conjugate gradient
// with Armijo backtracking (the NTUplace3-lineage solver used by the
// previous analytical work), and Adam (GNN training).
package nlopt

import (
	"math"

	"repro/internal/obs"
)

// Objective evaluates f(x), writes ∇f(x) into grad (same length as x), and
// returns f(x).
type Objective func(x, grad []float64) float64

// Callback observes optimizer progress after each iteration and may mutate
// external objective state (e.g. penalty multipliers). Returning false
// stops the optimization.
type Callback func(iter int, x []float64, f float64) bool

// Norm2 returns the Euclidean norm of v.
func Norm2(v []float64) float64 {
	var s float64
	for _, x := range v {
		s += x * x
	}
	return math.Sqrt(s)
}

// Norm1 returns the L1 norm of v.
func Norm1(v []float64) float64 {
	var s float64
	for _, x := range v {
		s += math.Abs(x)
	}
	return s
}

// Dot returns the dot product of a and b.
func Dot(a, b []float64) float64 {
	var s float64
	for i := range a {
		s += a[i] * b[i]
	}
	return s
}

// NesterovOptions configures the Nesterov solver.
type NesterovOptions struct {
	MaxIter  int     // iteration cap (default 1000)
	InitStep float64 // initial step length (default 1)
	MinStep  float64 // lower clamp on the predicted step (default 1e-8)
	MaxStep  float64 // upper clamp on the predicted step (default 1e4)
	GradTol  float64 // stop when ||∇f||₂ < GradTol (default 0: disabled)
	Callback Callback
	// Tracer, when non-nil, receives one obs iteration event per accepted
	// iteration (solver "nesterov": objective, pre-step gradient norm,
	// accepted step length).
	Tracer *obs.Tracer
}

func (o *NesterovOptions) defaults() {
	if o.MaxIter == 0 {
		o.MaxIter = 1000
	}
	if o.InitStep == 0 {
		o.InitStep = 1
	}
	if o.MinStep == 0 {
		o.MinStep = 1e-8
	}
	if o.MaxStep == 0 {
		o.MaxStep = 1e4
	}
}

// Nesterov minimizes obj starting from x (updated in place) using
// Nesterov's accelerated gradient method with the inverse-Lipschitz step
// prediction and backtracking of ePlace: a trial step α is accepted only
// when the Lipschitz estimate at the trial point,
// α̂ = ‖v' − v‖ / ‖∇f(v') − ∇f(v)‖, confirms it (α̂ ≥ 0.95·α); otherwise α
// shrinks to α̂ and the step is retried. It returns the final objective
// value and the number of iterations run.
func Nesterov(obj Objective, x []float64, opt NesterovOptions) (float64, int) {
	opt.defaults()
	n := len(x)
	u := append([]float64(nil), x...) // major solution u_k
	v := append([]float64(nil), x...) // reference solution v_k
	uNew := make([]float64, n)
	vNew := make([]float64, n)
	g := make([]float64, n)
	gNew := make([]float64, n)

	f := obj(v, g)
	a := 1.0
	step := opt.InitStep
	clamp := func(s float64) float64 {
		return math.Min(math.Max(s, opt.MinStep), opt.MaxStep)
	}
	var iter int
	for iter = 0; iter < opt.MaxIter; iter++ {
		gn := Norm2(g)
		if gn == 0 || (opt.GradTol > 0 && gn < opt.GradTol) {
			break
		}
		aNew := (1 + math.Sqrt(4*a*a+1)) / 2
		coef := (a - 1) / aNew
		var fNew float64
		for bt := 0; ; bt++ {
			// u_{k+1} = v_k − α∇f(v_k);  v_{k+1} = u_{k+1} + coef·(u_{k+1} − u_k)
			for i := 0; i < n; i++ {
				uNew[i] = v[i] - step*g[i]
				vNew[i] = uNew[i] + coef*(uNew[i]-u[i])
			}
			fNew = obj(vNew, gNew)
			var dv, dg float64
			for i := 0; i < n; i++ {
				d := vNew[i] - v[i]
				dv += d * d
				e := gNew[i] - g[i]
				dg += e * e
			}
			if dg == 0 {
				break // flat gradient change: accept
			}
			alphaHat := clamp(math.Sqrt(dv) / math.Sqrt(dg))
			if alphaHat >= 0.95*step || bt >= 10 || step <= opt.MinStep {
				step = alphaHat
				break
			}
			step = alphaHat
		}
		copy(u, uNew)
		copy(v, vNew)
		copy(g, gNew)
		if opt.Tracer != nil {
			opt.Tracer.IterEvent(obs.IterRecord{
				Solver: "nesterov", Iter: iter, F: fNew, Grad: gn, Step: step,
			})
		}
		// Adaptive restart (O'Donoghue–Candès): drop momentum when the
		// objective rises, which tames oscillation on ill-conditioned
		// landscapes without changing the well-behaved path.
		if fNew > f {
			a = 1
		} else {
			a = aNew
		}
		f = fNew
		if opt.Callback != nil && !opt.Callback(iter, u, f) {
			iter++
			break
		}
	}
	copy(x, u)
	// Report the objective (and leave gradients consistent) at the major
	// solution the caller receives.
	return obj(x, g), iter
}

// CGOptions configures the conjugate-gradient solver.
type CGOptions struct {
	MaxIter  int     // iteration cap (default 500)
	GradTol  float64 // stop when ||∇f||₂ < GradTol (default 1e-6)
	InitStep float64 // initial line-search step (default 1)
	Callback Callback
	// Tracer, when non-nil, receives one obs iteration event per accepted
	// iteration (solver "cg": objective, pre-step gradient norm, accepted
	// line-search step).
	Tracer *obs.Tracer
}

func (o *CGOptions) defaults() {
	if o.MaxIter == 0 {
		o.MaxIter = 500
	}
	if o.GradTol == 0 {
		o.GradTol = 1e-6
	}
	if o.InitStep == 0 {
		o.InitStep = 1
	}
}

// CG minimizes obj from x (updated in place) with Polak–Ribière+ conjugate
// gradient and Armijo backtracking line search. It returns the final
// objective value and iterations run.
func CG(obj Objective, x []float64, opt CGOptions) (float64, int) {
	opt.defaults()
	n := len(x)
	g := make([]float64, n)
	gNew := make([]float64, n)
	d := make([]float64, n)
	trial := make([]float64, n)

	f := obj(x, g)
	for i := 0; i < n; i++ {
		d[i] = -g[i]
	}
	step := opt.InitStep
	var iter int
	for iter = 0; iter < opt.MaxIter; iter++ {
		gn := Norm2(g)
		if gn < opt.GradTol {
			break
		}
		slope := Dot(g, d)
		if slope >= 0 { // not a descent direction: restart with steepest descent
			for i := 0; i < n; i++ {
				d[i] = -g[i]
			}
			slope = Dot(g, d)
			if slope >= 0 {
				break
			}
		}
		// Armijo backtracking.
		alpha := step
		const c1 = 1e-4
		var fNew float64
		accepted := false
		for ls := 0; ls < 40; ls++ {
			for i := 0; i < n; i++ {
				trial[i] = x[i] + alpha*d[i]
			}
			fNew = obj(trial, gNew)
			if fNew <= f+c1*alpha*slope {
				accepted = true
				break
			}
			alpha *= 0.5
		}
		if !accepted {
			break
		}
		copy(x, trial)
		// PR+ beta.
		var num, den float64
		for i := 0; i < n; i++ {
			num += gNew[i] * (gNew[i] - g[i])
			den += g[i] * g[i]
		}
		beta := 0.0
		if den > 0 {
			beta = math.Max(0, num/den)
		}
		for i := 0; i < n; i++ {
			d[i] = -gNew[i] + beta*d[i]
		}
		copy(g, gNew)
		f = fNew
		// Mildly grow the step so successful steps don't shrink forever.
		step = alpha * 2
		if opt.Tracer != nil {
			opt.Tracer.IterEvent(obs.IterRecord{
				Solver: "cg", Iter: iter, F: fNew, Grad: gn, Step: alpha,
			})
		}
		if opt.Callback != nil && !opt.Callback(iter, x, f) {
			iter++
			break
		}
	}
	return f, iter
}

// Adam is a stateful Adam optimizer over a flat parameter vector.
type Adam struct {
	LR      float64 // learning rate (default 1e-3)
	Beta1   float64 // first-moment decay (default 0.9)
	Beta2   float64 // second-moment decay (default 0.999)
	Epsilon float64 // numerical floor (default 1e-8)

	m, v []float64
	t    int
}

// NewAdam returns an Adam optimizer with the given learning rate and
// standard defaults for the remaining hyperparameters.
func NewAdam(lr float64) *Adam {
	return &Adam{LR: lr, Beta1: 0.9, Beta2: 0.999, Epsilon: 1e-8}
}

// Step applies one Adam update to params given grad.
func (a *Adam) Step(params, grad []float64) {
	if len(a.m) != len(params) {
		a.m = make([]float64, len(params))
		a.v = make([]float64, len(params))
		a.t = 0
	}
	a.t++
	b1t := 1 - math.Pow(a.Beta1, float64(a.t))
	b2t := 1 - math.Pow(a.Beta2, float64(a.t))
	for i := range params {
		a.m[i] = a.Beta1*a.m[i] + (1-a.Beta1)*grad[i]
		a.v[i] = a.Beta2*a.v[i] + (1-a.Beta2)*grad[i]*grad[i]
		mHat := a.m[i] / b1t
		vHat := a.v[i] / b2t
		params[i] -= a.LR * mHat / (math.Sqrt(vHat) + a.Epsilon)
	}
}

// Reset clears the optimizer's moment estimates.
func (a *Adam) Reset() {
	a.m = nil
	a.v = nil
	a.t = 0
}
