// Package prevwork implements the previous analytical analog placer the
// paper compares against ([11], Xu et al. ISPD'19, the MAGICAL lineage,
// itself built on the NTUplace3 framework [10]): global placement with
// Log-Sum-Exponential wirelength smoothing and a bell-shaped bin-density
// penalty, solved by conjugate gradient in epochs of increasing density
// weight. Unlike ePlace-A it has no explicit area term, no electrostatic
// model, and no Nesterov solver. Its legalization/detailed placement is the
// two-stage LP in package detailed (ModeTwoStageLP).
//
// PlaceExtra adds an arbitrary gradient term to the objective — the "Perf*"
// performance-driven extension of [11] evaluated in Tables V and VII.
package prevwork

import (
	"context"
	"math"
	"math/rand"
	"time"

	"repro/internal/circuit"
	"repro/internal/density"
	"repro/internal/eplacea"
	"repro/internal/geom"
	"repro/internal/nlopt"
	"repro/internal/obs"
	"repro/internal/obs/metrics"
	"repro/internal/par"
	"repro/internal/wl"
)

// Options configures the NTUplace3-style global placement.
type Options struct {
	Seed int64

	// GridM is the bin grid dimension (default 64).
	GridM int
	// Util sets the placement-region utilization (default 0.5).
	Util float64
	// SymWeight scales the soft symmetry penalty (default 0.4).
	SymWeight float64
	// Epochs of conjugate gradient with doubling density weight
	// (default 14).
	Epochs int
	// ItersPerEpoch caps CG iterations per epoch (default 100).
	ItersPerEpoch int
	// ExtraWeight scales the optional extra objective term (the Perf*
	// extension) relative to the wirelength gradient (default 0.5).
	ExtraWeight float64

	// Tracer, when non-nil, wraps the run in a "gp" span, passes through
	// to the CG solver's per-iteration events, and emits one "prev-epoch"
	// record per density epoch (objective, exact HPWL, density weight β,
	// symmetry penalty). Nil costs one pointer check.
	Tracer *obs.Tracer

	// Pool, when non-nil, parallelizes the wirelength-gradient kernel.
	// Results are bit-identical to a nil Pool at any worker count
	// (deterministic sharding; see internal/par). The caller owns the
	// pool's lifetime.
	Pool *par.Pool

	// Metrics, when non-nil, receives per-call duration histograms for
	// the hot-path kernels (placer_kernel_seconds: wl_grad,
	// density_raster, density_grad), labeled with MetricsLabels plus a
	// "kernel" label. Observation-only; nil costs one pointer check.
	Metrics *metrics.Registry
	// MetricsLabels are constant key, value pairs stamped on every kernel
	// series; every caller of one registry must use the same key set.
	MetricsLabels []string

	// Warm, when non-nil, turns the run into an incremental (ECO)
	// re-solve: device coordinates start from the prior placement and
	// anchored devices get quadratic anchor pseudonets (see
	// eplacea.WarmStart). The anchor weight here grows by a fixed 2× per
	// CG epoch, in step with the density weight β, rather than per
	// iteration (AnchorGrowth is ignored). Nil reproduces the blessed
	// cold-start behavior exactly.
	Warm *eplacea.WarmStart
}

func (o *Options) defaults() {
	if o.GridM == 0 {
		o.GridM = 64
	}
	if o.Util == 0 {
		o.Util = 0.5
	}
	if o.SymWeight == 0 {
		o.SymWeight = 0.4
	}
	if o.Epochs == 0 {
		o.Epochs = 14
	}
	if o.ItersPerEpoch == 0 {
		o.ItersPerEpoch = 100
	}
	if o.ExtraWeight == 0 {
		o.ExtraWeight = 0.5
	}
}

// Result reports the global-placement outcome.
type Result struct {
	Placement  *circuit.Placement
	Iterations int
	HPWL       float64
	Region     geom.Rect
}

// Place runs the [11]-style global placement.
func Place(n *circuit.Netlist, opt Options) (*Result, error) {
	return PlaceExtra(n, opt, nil)
}

// PlaceExtra runs global placement with an additional objective term (the
// Perf* extension).
func PlaceExtra(n *circuit.Netlist, opt Options, extra eplacea.ExtraGrad) (*Result, error) {
	return PlaceExtraCtx(context.Background(), n, opt, extra)
}

// PlaceCtx is Place honoring cancellation and deadlines via the CG
// callback-stop contract.
func PlaceCtx(ctx context.Context, n *circuit.Netlist, opt Options) (*Result, error) {
	return PlaceExtraCtx(ctx, n, opt, nil)
}

// PlaceExtraCtx is PlaceExtra honoring cancellation and deadlines: the CG
// progress callback polls ctx once per iteration and stops the solve, and a
// canceled run returns ctx.Err() instead of a partial placement.
func PlaceExtraCtx(ctx context.Context, n *circuit.Netlist, opt Options, extra eplacea.ExtraGrad) (*Result, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	if err := n.Validate(); err != nil {
		return nil, err
	}
	opt.defaults()
	sp := opt.Tracer.StartSpan("gp")
	defer sp.End()
	nd := len(n.Devices)

	side := math.Sqrt(n.TotalDeviceArea() / opt.Util)
	region := geom.RectWH(0, 0, side, side)
	// The prior-work model is the spatial-domain bell-shaped penalty of
	// NTUplace3 — no spectral solve, so unlike eplacea it gets nothing
	// from density's packed-FFT Poisson pipeline; its per-iteration cost
	// is rasterization and gradient sampling only.
	bell := density.NewBell(opt.GridM, region, 1.0)
	binW := side / float64(opt.GridM)

	wlEv := wl.NewEvaluatorPool(n, wl.LSE, 4*binW, opt.Pool)
	var rasterH, gradH *metrics.Histogram
	if opt.Metrics != nil {
		wlEv.SetTimer(metrics.KernelHistogram(opt.Metrics, opt.MetricsLabels, "wl_grad"))
		rasterH = metrics.KernelHistogram(opt.Metrics, opt.MetricsLabels, "density_raster")
		gradH = metrics.KernelHistogram(opt.Metrics, opt.MetricsLabels, "density_grad")
	}
	// The bell model has no Poisson solve to split out, so its two kernels
	// are timed here at the call sites instead of via SetTimers.
	bellUpdate := func(pl *circuit.Placement) {
		if rasterH == nil {
			bell.Update(n, pl)
			return
		}
		t0 := time.Now()
		bell.Update(n, pl)
		rasterH.Observe(time.Since(t0).Seconds())
	}
	bellAddGrad := func(pl *circuit.Placement, dgx, dgy []float64) {
		if gradH == nil {
			bell.AddGrad(n, pl, dgx, dgy)
			return
		}
		t0 := time.Now()
		bell.AddGrad(n, pl, dgx, dgy)
		gradH.Observe(time.Since(t0).Seconds())
	}

	rng := rand.New(rand.NewSource(opt.Seed))
	p := circuit.NewPlacement(n)
	cx, cy := region.Center().X, region.Center().Y
	for i := 0; i < nd; i++ {
		p.X[i] = cx + (rng.Float64()-0.5)*side*0.15
		p.Y[i] = cy + (rng.Float64()-0.5)*side*0.15
	}
	if w := opt.Warm; w != nil {
		// Warm start: take prior coordinates where usable (the rng stream
		// above is consumed identically either way) and clamp into the
		// possibly different region.
		for i := 0; i < nd; i++ {
			if w.Valid == nil || w.Valid[i] {
				p.X[i] = w.X[i]
				p.Y[i] = w.Y[i]
			}
		}
		clamp(n, p, region)
	}

	gx := make([]float64, nd)
	gy := make([]float64, nd)
	sgx := make([]float64, nd)
	sgy := make([]float64, nd)
	zero := func(v []float64) {
		for i := range v {
			v[i] = 0
		}
	}

	// Calibrate the initial density and symmetry weights against the
	// wirelength gradient, NTUplace3-style.
	zero(gx)
	zero(gy)
	wlEv.Eval(p, gx, gy)
	wlNorm := nlopt.Norm1(gx) + nlopt.Norm1(gy) + 1e-12
	bellUpdate(p)
	zero(sgx)
	zero(sgy)
	bellAddGrad(p, sgx, sgy)
	dNorm := nlopt.Norm1(sgx) + nlopt.Norm1(sgy) + 1e-12
	beta := 2e-2 * wlNorm / dNorm

	zero(sgx)
	zero(sgy)
	eplacea.SymPenalty(n, p, sgx, sgy)
	sNorm := nlopt.Norm1(sgx) + nlopt.Norm1(sgy)
	if sNorm < 1e-12 {
		sNorm = wlNorm
	}
	tau := opt.SymWeight * wlNorm / sNorm

	anchorW := 0.0
	if w := opt.Warm; w != nil {
		if na := w.AnchorCount(); na > 0 {
			// The anchored devices start exactly on their anchors, so the
			// anchor gradient is zero here and cannot be norm-calibrated;
			// estimate the term's scale at a typical one-bin displacement
			// (gradient 2·binW per device) instead.
			anchorW = w.StartWeight() * wlNorm / (2 * binW * float64(na))
		}
	}

	alpha := 0.0
	if extra != nil {
		zero(sgx)
		zero(sgy)
		extra(p, sgx, sgy)
		exNorm := nlopt.Norm1(sgx) + nlopt.Norm1(sgy)
		if exNorm < 1e-12 {
			exNorm = wlNorm
		}
		alpha = opt.ExtraWeight * wlNorm / exNorm
	}

	objective := func(x, grad []float64) float64 {
		copy(p.X, x[:nd])
		copy(p.Y, x[nd:])
		zero(gx)
		zero(gy)
		f := wlEv.Eval(p, gx, gy)

		bellUpdate(p)
		f += beta * bell.Penalty()
		zero(sgx)
		zero(sgy)
		bellAddGrad(p, sgx, sgy)
		for i := 0; i < nd; i++ {
			gx[i] += beta * sgx[i]
			gy[i] += beta * sgy[i]
		}

		if len(n.SymGroups) > 0 {
			zero(sgx)
			zero(sgy)
			f += tau * eplacea.SymPenalty(n, p, sgx, sgy)
			for i := 0; i < nd; i++ {
				gx[i] += tau * sgx[i]
				gy[i] += tau * sgy[i]
			}
		}
		if anchorW > 0 {
			w := opt.Warm
			var av float64
			for i := 0; i < nd; i++ {
				if !w.Anchored[i] {
					continue
				}
				dx := p.X[i] - w.X[i]
				dy := p.Y[i] - w.Y[i]
				av += dx*dx + dy*dy
				gx[i] += anchorW * 2 * dx
				gy[i] += anchorW * 2 * dy
			}
			f += anchorW * av
		}
		if extra != nil {
			zero(sgx)
			zero(sgy)
			f += alpha * extra(p, sgx, sgy)
			for i := 0; i < nd; i++ {
				gx[i] += alpha * sgx[i]
				gy[i] += alpha * sgy[i]
			}
		}
		copy(grad[:nd], gx)
		copy(grad[nd:], gy)
		return f
	}

	x := make([]float64, 2*nd)
	copy(x[:nd], p.X)
	copy(x[nd:], p.Y)

	totalIters := 0
	done := ctx.Done()
	for epoch := 0; epoch < opt.Epochs; epoch++ {
		fEpoch, it := nlopt.CG(objective, x, nlopt.CGOptions{
			MaxIter:  opt.ItersPerEpoch,
			GradTol:  1e-7,
			InitStep: binW,
			Tracer:   opt.Tracer,
			Callback: func(iter int, cur []float64, f float64) bool {
				select {
				case <-done:
					return false
				default:
					return true
				}
			},
		})
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		totalIters += it
		if opt.Tracer.Enabled() {
			copy(p.X, x[:nd])
			copy(p.Y, x[nd:])
			zero(sgx)
			zero(sgy)
			opt.Tracer.IterEvent(obs.IterRecord{
				Solver: "prev-epoch", Iter: epoch, F: fEpoch,
				HPWL: n.HPWL(p), Lambda: beta,
				Sym: eplacea.SymPenalty(n, p, sgx, sgy),
			})
		}
		beta *= 2
		tau *= 1.5
		anchorW *= 2
	}
	copy(p.X, x[:nd])
	copy(p.Y, x[nd:])
	clamp(n, p, region)
	for gi := range n.SymGroups {
		p.AxisX[gi] = eplacea.OptimalAxis(n, p, gi)
	}
	n.Normalize(p)

	res := &Result{
		Placement:  p,
		Iterations: totalIters,
		HPWL:       n.HPWL(p),
		Region:     region,
	}
	if opt.Tracer.Enabled() {
		opt.Tracer.Count("prev.runs", 1)
		opt.Tracer.Count("prev.iterations", float64(totalIters))
		opt.Tracer.Gauge("prev.final_hpwl", res.HPWL)
	}
	return res, nil
}

func clamp(n *circuit.Netlist, p *circuit.Placement, region geom.Rect) {
	for i := range n.Devices {
		d := &n.Devices[i]
		p.X[i] = geom.Interval{Lo: region.Lo.X + d.W/2, Hi: region.Hi.X - d.W/2}.Clamp(p.X[i])
		p.Y[i] = geom.Interval{Lo: region.Lo.Y + d.H/2, Hi: region.Hi.Y - d.H/2}.Clamp(p.Y[i])
	}
}
