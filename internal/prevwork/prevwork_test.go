package prevwork

import (
	"testing"

	"repro/internal/circuit"
	"repro/internal/detailed"
	"repro/internal/geom"
)

func testNetlist() *circuit.Netlist {
	mk := func(name string, ty circuit.DeviceType, w, h float64) circuit.Device {
		return circuit.Device{
			Name: name, Type: ty, W: w, H: h,
			Pins: []circuit.Pin{
				{Name: "a", Offset: geom.Point{X: w * 0.25, Y: h / 2}},
				{Name: "b", Offset: geom.Point{X: w * 0.75, Y: h / 2}},
			},
		}
	}
	return &circuit.Netlist{
		Name: "prev-test",
		Devices: []circuit.Device{
			mk("M1", circuit.NMOS, 6, 4), mk("M2", circuit.NMOS, 6, 4),
			mk("M3", circuit.PMOS, 5, 3), mk("M4", circuit.PMOS, 5, 3),
			mk("MT", circuit.NMOS, 8, 3),
			mk("B1", circuit.NMOS, 4, 4), mk("B2", circuit.Cap, 7, 5),
			mk("B3", circuit.Cap, 7, 5), mk("R1", circuit.Res, 3, 6),
		},
		Nets: []circuit.Net{
			{Name: "n1", Pins: []circuit.PinRef{{Device: 0, Pin: 0}, {Device: 5, Pin: 1}}},
			{Name: "n2", Pins: []circuit.PinRef{{Device: 1, Pin: 1}, {Device: 5, Pin: 0}}},
			{Name: "n3", Pins: []circuit.PinRef{{Device: 0, Pin: 1}, {Device: 2, Pin: 0}, {Device: 6, Pin: 0}}},
			{Name: "n4", Pins: []circuit.PinRef{{Device: 1, Pin: 0}, {Device: 3, Pin: 1}, {Device: 7, Pin: 1}}},
			{Name: "n5", Pins: []circuit.PinRef{{Device: 0, Pin: 0}, {Device: 1, Pin: 1}, {Device: 4, Pin: 0}}},
			{Name: "n6", Pins: []circuit.PinRef{{Device: 8, Pin: 0}, {Device: 6, Pin: 1}, {Device: 2, Pin: 1}}},
		},
		SymGroups: []circuit.SymmetryGroup{
			{Pairs: [][2]int{{0, 1}, {2, 3}}, Self: []int{4}},
		},
	}
}

func TestPlaceRuns(t *testing.T) {
	n := testNetlist()
	res, err := Place(n, Options{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if res.Iterations == 0 {
		t.Error("no iterations run")
	}
	if res.HPWL <= 0 {
		t.Error("HPWL not recorded")
	}
	// GP should leave modest overlap for legalization to fix.
	frac := n.TotalOverlap(res.Placement) / n.TotalDeviceArea()
	if frac > 0.35 {
		t.Errorf("residual overlap fraction %.3f very high", frac)
	}
}

func TestDeterminism(t *testing.T) {
	n := testNetlist()
	r1, err := Place(n, Options{Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	r2, err := Place(n, Options{Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	for i := range r1.Placement.X {
		if r1.Placement.X[i] != r2.Placement.X[i] {
			t.Fatal("nondeterministic placement")
		}
	}
}

func TestFullFlowWithTwoStageLP(t *testing.T) {
	n := testNetlist()
	gp, err := Place(n, Options{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	dp, err := detailed.Place(n, gp.Placement, detailed.Options{Mode: detailed.ModeTwoStageLP})
	if err != nil {
		t.Fatal(err)
	}
	if rep := n.CheckLegal(dp.Placement, 1e-6); !rep.OK() {
		t.Fatalf("full [11] flow produced illegal placement: %v", rep.Err())
	}
}

func TestExtraTermInfluences(t *testing.T) {
	n := testNetlist()
	base, err := Place(n, Options{Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	extra := func(p *circuit.Placement, gx, gy []float64) float64 {
		// Strong pull of device 8 toward x = 0.
		gx[8] += 50 * 2 * p.X[8]
		return 50 * p.X[8] * p.X[8]
	}
	pulled, err := PlaceExtra(n, Options{Seed: 2}, extra)
	if err != nil {
		t.Fatal(err)
	}
	if pulled.Placement.X[8] > base.Placement.X[8]+1e-9 {
		t.Errorf("extra term had no effect: %.2f vs %.2f", pulled.Placement.X[8], base.Placement.X[8])
	}
}

func TestInvalidNetlistRejected(t *testing.T) {
	n := testNetlist()
	n.Devices[0].H = -2
	if _, err := Place(n, Options{Seed: 1}); err == nil {
		t.Error("expected validation error")
	}
}

func BenchmarkPrevGlobalPlace(b *testing.B) {
	n := testNetlist()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Place(n, Options{Seed: 1}); err != nil {
			b.Fatal(err)
		}
	}
}
