package lp

import (
	"math"
	"math/rand"
	"testing"
)

func solveOK(t *testing.T, p *Problem) *Solution {
	t.Helper()
	s, err := Solve(p)
	if err != nil {
		t.Fatalf("Solve: %v", err)
	}
	if s.Status != Optimal {
		t.Fatalf("status = %v, want optimal", s.Status)
	}
	return s
}

func TestSimpleLP(t *testing.T) {
	// max x+y s.t. x+2y<=4, 3x+y<=6  ->  min -(x+y); opt at (8/5, 6/5), obj 14/5.
	p := NewProblem(2)
	p.SetObj(0, -1)
	p.SetObj(1, -1)
	p.AddConstraint([]Term{{0, 1}, {1, 2}}, LE, 4)
	p.AddConstraint([]Term{{0, 3}, {1, 1}}, LE, 6)
	s := solveOK(t, p)
	if math.Abs(s.X[0]-1.6) > 1e-7 || math.Abs(s.X[1]-1.2) > 1e-7 {
		t.Errorf("x = %v, want (1.6, 1.2)", s.X)
	}
	if math.Abs(s.Obj+2.8) > 1e-7 {
		t.Errorf("obj = %g, want -2.8", s.Obj)
	}
}

func TestEqualityConstraint(t *testing.T) {
	// min x+y s.t. x+y = 3, x - y <= 1 -> any point on segment; obj = 3.
	p := NewProblem(2)
	p.SetObj(0, 1)
	p.SetObj(1, 1)
	p.AddConstraint([]Term{{0, 1}, {1, 1}}, EQ, 3)
	p.AddConstraint([]Term{{0, 1}, {1, -1}}, LE, 1)
	s := solveOK(t, p)
	if math.Abs(s.Obj-3) > 1e-7 {
		t.Errorf("obj = %g, want 3", s.Obj)
	}
	if math.Abs(s.X[0]+s.X[1]-3) > 1e-7 {
		t.Errorf("x+y = %g, want 3", s.X[0]+s.X[1])
	}
}

func TestGEAndNegativeRHS(t *testing.T) {
	// min 2x+3y s.t. x+y >= 4, -x - y <= -2 (same as x+y>=2), y >= 1.
	p := NewProblem(2)
	p.SetObj(0, 2)
	p.SetObj(1, 3)
	p.AddConstraint([]Term{{0, 1}, {1, 1}}, GE, 4)
	p.AddConstraint([]Term{{0, -1}, {1, -1}}, LE, -2)
	p.AddConstraint([]Term{{1, 1}}, GE, 1)
	s := solveOK(t, p)
	// Optimum: y=1, x=3 -> 9.
	if math.Abs(s.Obj-9) > 1e-7 {
		t.Errorf("obj = %g, want 9 (x=%v)", s.Obj, s.X)
	}
}

func TestInfeasible(t *testing.T) {
	p := NewProblem(1)
	p.SetObj(0, 1)
	p.AddConstraint([]Term{{0, 1}}, LE, 1)
	p.AddConstraint([]Term{{0, 1}}, GE, 2)
	s, err := Solve(p)
	if err != nil {
		t.Fatalf("Solve: %v", err)
	}
	if s.Status != Infeasible {
		t.Errorf("status = %v, want infeasible", s.Status)
	}
}

func TestUnbounded(t *testing.T) {
	p := NewProblem(2)
	p.SetObj(0, -1) // maximize x with no upper bound
	p.AddConstraint([]Term{{1, 1}}, LE, 5)
	s, err := Solve(p)
	if err != nil {
		t.Fatalf("Solve: %v", err)
	}
	if s.Status != Unbounded {
		t.Errorf("status = %v, want unbounded", s.Status)
	}
}

func TestDegenerateBeale(t *testing.T) {
	// Beale's classic cycling example; Bland fallback must terminate.
	// min -0.75x4 + 150x5 - 0.02x6 + 6x7
	// s.t. 0.25x4 - 60x5 - 0.04x6 + 9x7 <= 0
	//      0.5x4 - 90x5 - 0.02x6 + 3x7 <= 0
	//      x6 <= 1
	p := NewProblem(4)
	p.SetObj(0, -0.75)
	p.SetObj(1, 150)
	p.SetObj(2, -0.02)
	p.SetObj(3, 6)
	p.AddConstraint([]Term{{0, 0.25}, {1, -60}, {2, -0.04}, {3, 9}}, LE, 0)
	p.AddConstraint([]Term{{0, 0.5}, {1, -90}, {2, -0.02}, {3, 3}}, LE, 0)
	p.AddConstraint([]Term{{2, 1}}, LE, 1)
	s := solveOK(t, p)
	if math.Abs(s.Obj+0.05) > 1e-7 {
		t.Errorf("obj = %g, want -0.05", s.Obj)
	}
}

func TestRedundantEqualities(t *testing.T) {
	// Duplicate equality rows leave a basic artificial in a redundant row.
	p := NewProblem(2)
	p.SetObj(0, 1)
	p.AddConstraint([]Term{{0, 1}, {1, 1}}, EQ, 2)
	p.AddConstraint([]Term{{0, 2}, {1, 2}}, EQ, 4)
	s := solveOK(t, p)
	if math.Abs(s.Obj-0) > 1e-7 {
		t.Errorf("obj = %g, want 0 (x=0, y=2)", s.Obj)
	}
}

func TestRepeatedTermsAccumulate(t *testing.T) {
	p := NewProblem(1)
	p.SetObj(0, -1)
	// x + x <= 4 -> x <= 2.
	p.AddConstraint([]Term{{0, 1}, {0, 1}}, LE, 4)
	s := solveOK(t, p)
	if math.Abs(s.X[0]-2) > 1e-7 {
		t.Errorf("x = %g, want 2", s.X[0])
	}
}

func TestAddObjAccumulates(t *testing.T) {
	p := NewProblem(1)
	p.AddObj(0, -1)
	p.AddObj(0, -1)
	p.AddConstraint([]Term{{0, 1}}, LE, 3)
	s := solveOK(t, p)
	if math.Abs(s.Obj+6) > 1e-7 {
		t.Errorf("obj = %g, want -6", s.Obj)
	}
}

func TestCloneIsIndependent(t *testing.T) {
	p := NewProblem(1)
	p.SetObj(0, -1)
	p.AddConstraint([]Term{{0, 1}}, LE, 5)
	q := p.Clone()
	q.AddConstraint([]Term{{0, 1}}, LE, 2)
	q.SetObj(0, -2)

	sp := solveOK(t, p)
	sq := solveOK(t, q)
	if math.Abs(sp.X[0]-5) > 1e-7 {
		t.Errorf("original changed by clone edit: x = %g", sp.X[0])
	}
	if math.Abs(sq.X[0]-2) > 1e-7 {
		t.Errorf("clone x = %g, want 2", sq.X[0])
	}
}

func TestConstraintPanicsOnBadVar(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("AddConstraint accepted out-of-range variable")
		}
	}()
	p := NewProblem(1)
	p.AddConstraint([]Term{{3, 1}}, LE, 1)
}

// TestTransportation solves a small transportation problem with a known
// optimum (supplies 20/30, demands 15/35, costs [[2,4],[3,1]]).
func TestTransportation(t *testing.T) {
	// Vars: x11 x12 x21 x22.
	p := NewProblem(4)
	for j, c := range []float64{2, 4, 3, 1} {
		p.SetObj(j, c)
	}
	p.AddConstraint([]Term{{0, 1}, {1, 1}}, EQ, 20) // supply 1
	p.AddConstraint([]Term{{2, 1}, {3, 1}}, EQ, 30) // supply 2
	p.AddConstraint([]Term{{0, 1}, {2, 1}}, EQ, 15) // demand 1
	p.AddConstraint([]Term{{1, 1}, {3, 1}}, EQ, 35) // demand 2
	s := solveOK(t, p)
	// Optimal: x11=15, x12=5, x22=30 -> 2·15+4·5+1·30 = 80.
	if math.Abs(s.Obj-80) > 1e-6 {
		t.Errorf("obj = %g, want 80 (x=%v)", s.Obj, s.X)
	}
}

// TestRandomFeasibilityAndOptimality generates random bounded LPs, checks
// the returned point is feasible, and verifies no sampled feasible point
// beats the reported optimum.
func TestRandomFeasibilityAndOptimality(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for trial := 0; trial < 25; trial++ {
		n := 2 + rng.Intn(4)
		m := 2 + rng.Intn(5)
		p := NewProblem(n)
		obj := make([]float64, n)
		for j := 0; j < n; j++ {
			obj[j] = rng.NormFloat64()
			p.SetObj(j, obj[j])
		}
		type rrow struct {
			a   []float64
			rhs float64
		}
		var rows []rrow
		for i := 0; i < m; i++ {
			a := make([]float64, n)
			var terms []Term
			for j := 0; j < n; j++ {
				a[j] = rng.NormFloat64()
				terms = append(terms, Term{j, a[j]})
			}
			rhs := 1 + rng.Float64()*5
			rows = append(rows, rrow{a, rhs})
			p.AddConstraint(terms, LE, rhs)
		}
		// Box the problem so it's bounded.
		for j := 0; j < n; j++ {
			p.AddConstraint([]Term{{j, 1}}, LE, 10)
		}
		s, err := Solve(p)
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		if s.Status != Optimal {
			continue // random rows can be infeasible with x >= 0; fine
		}
		// Feasibility.
		for i, r := range rows {
			var lhs float64
			for j := 0; j < n; j++ {
				lhs += r.a[j] * s.X[j]
			}
			if lhs > r.rhs+1e-6 {
				t.Errorf("trial %d: row %d violated: %g > %g", trial, i, lhs, r.rhs)
			}
		}
		for j := 0; j < n; j++ {
			if s.X[j] < -1e-9 || s.X[j] > 10+1e-6 {
				t.Errorf("trial %d: x[%d] = %g out of box", trial, j, s.X[j])
			}
		}
		// Sampled dominance.
		for samp := 0; samp < 200; samp++ {
			x := make([]float64, n)
			for j := range x {
				x[j] = rng.Float64() * 10
			}
			feas := true
			for _, r := range rows {
				var lhs float64
				for j := 0; j < n; j++ {
					lhs += r.a[j] * x[j]
				}
				if lhs > r.rhs {
					feas = false
					break
				}
			}
			if !feas {
				continue
			}
			var v float64
			for j := 0; j < n; j++ {
				v += obj[j] * x[j]
			}
			if v < s.Obj-1e-6 {
				t.Errorf("trial %d: sampled feasible point beats optimum: %g < %g", trial, v, s.Obj)
			}
		}
	}
}

func BenchmarkSolveMedium(b *testing.B) {
	rng := rand.New(rand.NewSource(7))
	n, m := 60, 80
	build := func() *Problem {
		p := NewProblem(n)
		for j := 0; j < n; j++ {
			p.SetObj(j, rng.NormFloat64())
		}
		for i := 0; i < m; i++ {
			var terms []Term
			for j := 0; j < n; j++ {
				if rng.Float64() < 0.2 {
					terms = append(terms, Term{j, rng.NormFloat64()})
				}
			}
			if len(terms) == 0 {
				terms = []Term{{rng.Intn(n), 1}}
			}
			p.AddConstraint(terms, LE, 1+rng.Float64()*10)
		}
		for j := 0; j < n; j++ {
			p.AddConstraint([]Term{{j, 1}}, LE, 5)
		}
		return p
	}
	p := build()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Solve(p); err != nil {
			b.Fatal(err)
		}
	}
}
