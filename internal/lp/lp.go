// Package lp implements a dense two-phase primal simplex solver for linear
// programs in the form
//
//	minimize    cᵀx
//	subject to  aᵢᵀx {≤,=,≥} bᵢ
//	            x ≥ 0
//
// It is the optimization substrate for the detailed placers: the paper's
// ILP-based legalization/detailed placement of ePlace-A (via package ilp)
// and the two-stage LP detailed placement of the previous analytical work.
// Problem sizes in analog placement are small (hundreds of rows/columns),
// for which a dense tableau with Dantzig pricing and a Bland anti-cycling
// fallback is fast and dependable.
package lp

import (
	"errors"
	"fmt"
	"math"

	"repro/internal/obs"
)

// Sense is a constraint relation.
type Sense int

// Constraint senses.
const (
	LE Sense = iota // aᵀx ≤ b
	GE              // aᵀx ≥ b
	EQ              // aᵀx = b
)

func (s Sense) String() string {
	switch s {
	case LE:
		return "<="
	case GE:
		return ">="
	default:
		return "="
	}
}

// Term is one coefficient of a sparse constraint row.
type Term struct {
	Var   int
	Coeff float64
}

type row struct {
	terms []Term
	sense Sense
	rhs   float64
}

// Problem is a linear program under construction. All variables are
// implicitly non-negative; add explicit rows for other bounds.
type Problem struct {
	numVars int
	obj     []float64
	rows    []row
}

// NewProblem creates a problem with n non-negative variables and a zero
// objective.
func NewProblem(n int) *Problem {
	return &Problem{numVars: n, obj: make([]float64, n)}
}

// NumVars returns the number of structural variables.
func (p *Problem) NumVars() int { return p.numVars }

// NumRows returns the number of constraints added so far.
func (p *Problem) NumRows() int { return len(p.rows) }

// SetObj sets the objective coefficient of variable j.
func (p *Problem) SetObj(j int, c float64) {
	p.obj[j] = c
}

// AddObj adds c to the objective coefficient of variable j.
func (p *Problem) AddObj(j int, c float64) {
	p.obj[j] += c
}

// AddConstraint appends the constraint Σ terms {sense} rhs. Terms may
// repeat a variable; coefficients accumulate.
func (p *Problem) AddConstraint(terms []Term, sense Sense, rhs float64) {
	for _, t := range terms {
		if t.Var < 0 || t.Var >= p.numVars {
			panic(fmt.Sprintf("lp: constraint references variable %d of %d", t.Var, p.numVars))
		}
	}
	p.rows = append(p.rows, row{terms: append([]Term(nil), terms...), sense: sense, rhs: rhs})
}

// Clone returns an independent copy of the problem, so branch-and-bound can
// add branching rows without disturbing siblings.
func (p *Problem) Clone() *Problem {
	q := &Problem{
		numVars: p.numVars,
		obj:     append([]float64(nil), p.obj...),
		rows:    make([]row, len(p.rows)),
	}
	// Rows are immutable after AddConstraint copies them, so sharing the
	// term slices is safe.
	copy(q.rows, p.rows)
	return q
}

// Status describes the outcome of a solve.
type Status int

// Solve outcomes.
const (
	Optimal Status = iota
	Infeasible
	Unbounded
)

func (s Status) String() string {
	switch s {
	case Optimal:
		return "optimal"
	case Infeasible:
		return "infeasible"
	default:
		return "unbounded"
	}
}

// Solution holds the result of a solve.
type Solution struct {
	Status Status
	X      []float64 // structural variable values (valid when Optimal)
	Obj    float64   // objective value (valid when Optimal)
}

// Errors returned by Solve.
var (
	ErrIterLimit = errors.New("lp: simplex iteration limit exceeded")
)

const eps = 1e-9

// Solve optimizes the problem with the two-phase primal simplex method.
// A non-nil error indicates a solver failure (iteration limit); infeasible
// and unbounded models are reported through Solution.Status with a nil
// error.
func Solve(p *Problem) (*Solution, error) {
	return SolveTraced(p, nil, "")
}

// SolveTraced is Solve with telemetry: when tr is non-nil it emits one
// "lp" event (problem size, simplex pivots across both phases, objective,
// status) labeled with the caller-assigned purpose, and bumps the
// lp.solves/lp.pivots counters. A nil tracer makes it identical to Solve.
func SolveTraced(p *Problem, tr *obs.Tracer, label string) (*Solution, error) {
	sol, pivots, err := solve(p)
	if tr.Enabled() && sol != nil {
		tr.LPEvent(obs.LPRecord{
			Solver: "lp", Label: label,
			Rows: len(p.rows), Cols: p.numVars,
			Pivots: pivots, Obj: sol.Obj, Status: sol.Status.String(),
		})
		tr.Count("lp.solves", 1)
		tr.Count("lp.pivots", float64(pivots))
	}
	return sol, err
}

// solve is the simplex implementation; it additionally reports the pivot
// count for telemetry.
func solve(p *Problem) (*Solution, int, error) {
	m := len(p.rows)
	n := p.numVars

	// Column layout: [0,n) structural, then one slack/surplus per
	// inequality row, then one artificial per row that needs one.
	numSlack := 0
	for _, r := range p.rows {
		if r.sense != EQ {
			numSlack++
		}
	}
	// Count artificials after rhs normalization: a row needs an artificial
	// unless it is an inequality whose slack can start basic (b ≥ 0 after
	// normalization and sense LE).
	type rowInfo struct {
		flip     bool // multiply row by -1 so rhs ≥ 0
		sense    Sense
		slackCol int // -1 if none
		artCol   int // -1 if none
	}
	info := make([]rowInfo, m)
	col := n
	for i, r := range p.rows {
		ri := rowInfo{sense: r.sense, slackCol: -1, artCol: -1}
		rhs := r.rhs
		if rhs < 0 {
			ri.flip = true
			rhs = -rhs
			switch r.sense {
			case LE:
				ri.sense = GE
			case GE:
				ri.sense = LE
			}
		}
		if ri.sense != EQ {
			ri.slackCol = col
			col++
		}
		info[i] = ri
	}
	numArt := 0
	for i := range info {
		// LE with b ≥ 0: slack is the initial basic variable. GE and EQ
		// need an artificial.
		if info[i].sense != LE {
			info[i].artCol = col
			col++
			numArt++
		}
	}
	totalCols := col
	_ = numSlack

	// Dense tableau: m rows × (totalCols + 1); last column is rhs.
	width := totalCols + 1
	tab := make([]float64, m*width)
	basis := make([]int, m)
	for i, r := range p.rows {
		ri := info[i]
		sign := 1.0
		rhs := r.rhs
		if ri.flip {
			sign = -1
			rhs = -rhs
		}
		rowSlice := tab[i*width : (i+1)*width]
		for _, t := range r.terms {
			rowSlice[t.Var] += sign * t.Coeff
		}
		if ri.slackCol >= 0 {
			if ri.sense == LE {
				rowSlice[ri.slackCol] = 1
			} else {
				rowSlice[ri.slackCol] = -1 // surplus
			}
		}
		if ri.artCol >= 0 {
			rowSlice[ri.artCol] = 1
			basis[i] = ri.artCol
		} else {
			basis[i] = ri.slackCol
		}
		rowSlice[totalCols] = rhs
	}

	isArt := make([]bool, totalCols)
	for i := range info {
		if info[i].artCol >= 0 {
			isArt[info[i].artCol] = true
		}
	}

	s := &simplex{
		tab:    tab,
		m:      m,
		width:  width,
		nCols:  totalCols,
		basis:  basis,
		banned: isArt,
	}

	if numArt > 0 {
		// Phase 1: minimize the sum of artificials.
		cost := make([]float64, totalCols)
		for j := range cost {
			if isArt[j] {
				cost[j] = 1
			}
		}
		s.initCostRow(cost)
		status, err := s.iterate(false)
		if err != nil {
			return nil, s.pivots, err
		}
		if status == Unbounded {
			// Phase-1 objective is bounded below by 0; cannot happen.
			return nil, s.pivots, errors.New("lp: internal: phase-1 unbounded")
		}
		if s.objValue() > 1e-7 {
			return &Solution{Status: Infeasible}, s.pivots, nil
		}
		// Pivot basic artificials (at value 0) out of the basis when a
		// non-artificial pivot exists; otherwise the row is redundant and
		// the artificial stays at zero.
		for i := 0; i < m; i++ {
			if !isArt[s.basis[i]] {
				continue
			}
			rowSlice := s.tab[i*s.width : (i+1)*s.width]
			for j := 0; j < totalCols; j++ {
				if !isArt[j] && math.Abs(rowSlice[j]) > eps {
					s.pivot(i, j)
					break
				}
			}
		}
	}

	// Phase 2: original objective (artificial columns stay banned).
	cost := make([]float64, totalCols)
	copy(cost, p.obj)
	s.initCostRow(cost)
	status, err := s.iterate(true)
	if err != nil {
		return nil, s.pivots, err
	}
	if status == Unbounded {
		return &Solution{Status: Unbounded}, s.pivots, nil
	}

	x := make([]float64, n)
	for i := 0; i < m; i++ {
		if b := s.basis[i]; b < n {
			x[b] = s.tab[i*s.width+totalCols]
		}
	}
	var obj float64
	for j := 0; j < n; j++ {
		obj += p.obj[j] * x[j]
	}
	return &Solution{Status: Optimal, X: x, Obj: obj}, s.pivots, nil
}

// simplex is the working state of a tableau solve.
type simplex struct {
	tab    []float64 // m × width, last column is rhs
	m      int
	width  int
	nCols  int
	basis  []int
	banned []bool // columns that may not enter (artificials in phase 2)
	pivots int    // pivots performed across both phases (telemetry)

	costRow []float64 // reduced costs, length nCols+1 (last = -objective)
}

// initCostRow sets up reduced costs for the given cost vector by
// subtracting the rows of the current basic variables.
func (s *simplex) initCostRow(cost []float64) {
	cr := make([]float64, s.nCols+1)
	copy(cr, cost)
	for i := 0; i < s.m; i++ {
		cb := cost[s.basis[i]]
		if cb == 0 {
			continue
		}
		rowSlice := s.tab[i*s.width : (i+1)*s.width]
		for j := 0; j <= s.nCols; j++ {
			cr[j] -= cb * rowSlice[j]
		}
	}
	s.costRow = cr
}

// objValue returns the current objective value.
func (s *simplex) objValue() float64 { return -s.costRow[s.nCols] }

// iterate runs simplex pivots until optimality, unboundedness, or the
// iteration limit. banArtificials keeps artificial columns from entering.
func (s *simplex) iterate(banArtificials bool) (Status, error) {
	maxIter := 200 * (s.m + s.nCols + 10)
	blandAfter := maxIter / 2
	for iter := 0; iter < maxIter; iter++ {
		enter := -1
		if iter < blandAfter {
			// Dantzig: most negative reduced cost.
			best := -eps
			for j := 0; j < s.nCols; j++ {
				if banArtificials && s.banned[j] {
					continue
				}
				if s.costRow[j] < best {
					best = s.costRow[j]
					enter = j
				}
			}
		} else {
			// Bland: first negative reduced cost (anti-cycling).
			for j := 0; j < s.nCols; j++ {
				if banArtificials && s.banned[j] {
					continue
				}
				if s.costRow[j] < -eps {
					enter = j
					break
				}
			}
		}
		if enter < 0 {
			return Optimal, nil
		}
		// Ratio test.
		leave := -1
		bestRatio := math.Inf(1)
		for i := 0; i < s.m; i++ {
			a := s.tab[i*s.width+enter]
			if a > eps {
				ratio := s.tab[i*s.width+s.nCols] / a
				if ratio < bestRatio-eps ||
					(ratio < bestRatio+eps && leave >= 0 && s.basis[i] < s.basis[leave]) {
					bestRatio = ratio
					leave = i
				}
			}
		}
		if leave < 0 {
			return Unbounded, nil
		}
		s.pivot(leave, enter)
	}
	return Optimal, ErrIterLimit
}

// pivot performs a Gauss-Jordan pivot on (row, col) and updates the basis
// and cost row.
func (s *simplex) pivot(row, col int) {
	s.pivots++
	w := s.width
	pr := s.tab[row*w : (row+1)*w]
	pv := pr[col]
	inv := 1 / pv
	for j := range pr {
		pr[j] *= inv
	}
	pr[col] = 1 // fight rounding
	for i := 0; i < s.m; i++ {
		if i == row {
			continue
		}
		ri := s.tab[i*w : (i+1)*w]
		f := ri[col]
		if f == 0 {
			continue
		}
		for j := range ri {
			ri[j] -= f * pr[j]
		}
		ri[col] = 0
	}
	if s.costRow != nil {
		f := s.costRow[col]
		if f != 0 {
			for j := 0; j <= s.nCols; j++ {
				s.costRow[j] -= f * pr[j]
			}
			s.costRow[col] = 0
		}
	}
	s.basis[row] = col
}
