package testcircuits

import (
	"math"
	"testing"

	"repro/internal/circuit"
)

// rowPlacement packs devices into rows greedily — a cheap legal-ish layout
// for sanity-checking metrics without running a placer.
func rowPlacement(n *circuit.Netlist) *circuit.Placement {
	p := circuit.NewPlacement(n)
	side := math.Sqrt(n.TotalDeviceArea()) * 1.3
	var x, y, rowH float64
	for i := range n.Devices {
		d := &n.Devices[i]
		if x+d.W > side && x > 0 {
			x = 0
			y += rowH
			rowH = 0
		}
		p.X[i] = x + d.W/2
		p.Y[i] = y + d.H/2
		x += d.W
		rowH = math.Max(rowH, d.H)
	}
	n.ResolveAxes(p)
	return p
}

func TestAllCircuitsValid(t *testing.T) {
	cases := All()
	if len(cases) != 10 {
		t.Fatalf("All returned %d cases, want 10", len(cases))
	}
	for i, c := range cases {
		name := Names()[i]
		if c.Netlist.Name != name {
			t.Errorf("case %d: name %q, want %q", i, c.Netlist.Name, name)
		}
		if err := c.Netlist.Validate(); err != nil {
			t.Errorf("%s: %v", name, err)
		}
		if err := c.Perf.Validate(c.Netlist); err != nil {
			t.Errorf("%s perf: %v", name, err)
		}
		if c.Threshold <= 0 || c.Threshold >= 1 {
			t.Errorf("%s: threshold %g out of (0,1)", name, c.Threshold)
		}
	}
}

func TestDeviceCountsAreDozens(t *testing.T) {
	for _, c := range All() {
		nd := c.Netlist.NumDevices()
		if nd < 10 || nd > 60 {
			t.Errorf("%s: %d devices, expected dozens (10-60)", c.Netlist.Name, nd)
		}
	}
}

// TestAreaOrdering: the paper's relative circuit sizes should hold — SCF is
// by far the largest, VCO2 > VCO1 > the OTAs, Adder the smallest.
func TestAreaOrdering(t *testing.T) {
	area := map[string]float64{}
	for _, c := range All() {
		area[c.Netlist.Name] = c.Netlist.TotalDeviceArea()
	}
	if !(area["SCF"] > area["VCO2"] && area["VCO2"] > area["VCO1"]) {
		t.Errorf("size ordering broken: SCF=%.0f VCO2=%.0f VCO1=%.0f",
			area["SCF"], area["VCO2"], area["VCO1"])
	}
	for name, a := range area {
		if name == "Adder" {
			continue
		}
		if a < area["Adder"] {
			t.Errorf("%s (%.0f) smaller than Adder (%.0f)", name, a, area["Adder"])
		}
	}
}

func TestByNameErrors(t *testing.T) {
	if _, err := ByName("nope"); err == nil {
		t.Error("ByName accepted unknown circuit")
	}
	for _, nm := range Names() {
		if _, err := ByName(nm); err != nil {
			t.Errorf("ByName(%q): %v", nm, err)
		}
	}
}

func TestDeterministicConstruction(t *testing.T) {
	a := CCOTA()
	b := CCOTA()
	if len(a.Netlist.Devices) != len(b.Netlist.Devices) || len(a.Netlist.Nets) != len(b.Netlist.Nets) {
		t.Fatal("CCOTA construction nondeterministic")
	}
	pa := rowPlacement(a.Netlist)
	pb := rowPlacement(b.Netlist)
	if a.Perf.FOM(a.Netlist, pa) != b.Perf.FOM(b.Netlist, pb) {
		t.Error("FOM differs between identical constructions")
	}
}

func TestFOMSaneAtRowPlacement(t *testing.T) {
	for _, c := range All() {
		p := rowPlacement(c.Netlist)
		f := c.Perf.FOM(c.Netlist, p)
		if f < 0.3 || f > 1 {
			t.Errorf("%s: FOM %.3f at row placement outside [0.3, 1]", c.Netlist.Name, f)
		}
		// A wildly spread placement must be no better.
		q := p.Clone()
		for i := range q.X {
			q.X[i] *= 6
			q.Y[i] *= 6
		}
		c.Netlist.ResolveAxes(q)
		if g := c.Perf.FOM(c.Netlist, q); g > f+1e-9 {
			t.Errorf("%s: spread placement FOM %.3f beats compact %.3f", c.Netlist.Name, g, f)
		}
	}
}

func TestSymmetryGroupsPresent(t *testing.T) {
	// Every benchmark is an analog circuit with matching constraints.
	for _, c := range All() {
		if len(c.Netlist.SymGroups) == 0 {
			t.Errorf("%s: no symmetry groups", c.Netlist.Name)
		}
	}
}

func TestVCO1HasOrderingAndAlignment(t *testing.T) {
	c := VCO1()
	if len(c.Netlist.HOrders) == 0 {
		t.Error("VCO1 should carry a monotone-path ordering constraint")
	}
	if len(c.Netlist.BottomAlign) == 0 {
		t.Error("VCO1 should carry bottom-alignment constraints")
	}
}
