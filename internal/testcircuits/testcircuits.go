// Package testcircuits provides deterministic synthetic versions of the ten
// benchmark circuits the paper evaluates on (Adder, CC-OTA, Comp1, Comp2,
// CM-OTA1, CM-OTA2, SCF, VGA, VCO1, VCO2). The originals are GF 12 nm
// designs that cannot be redistributed; these stand-ins reproduce what the
// placement problem actually consumes — device footprints, pins, nets,
// symmetry/alignment/ordering constraints, and a per-circuit performance
// model — with topologies modeled on each circuit family (diff pairs with
// mirrored loads, comparator latches, capacitor arrays, ring/LC oscillator
// cores) and dimensions calibrated so layout areas land in the paper's
// ranges.
package testcircuits

import (
	"fmt"
	"math"

	"repro/internal/circuit"
	"repro/internal/geom"
	"repro/internal/perfmodel"
)

// Case bundles one benchmark circuit with its performance evaluator.
type Case struct {
	Netlist *circuit.Netlist
	Perf    *perfmodel.Model
	// Threshold is the FOM level below which a placement is labeled
	// "unsatisfactory" when generating GNN training data.
	Threshold float64
}

// Names lists the benchmark circuits in the paper's table order.
func Names() []string {
	return []string{
		"Adder", "CC-OTA", "Comp1", "Comp2", "CM-OTA1",
		"CM-OTA2", "SCF", "VGA", "VCO1", "VCO2",
	}
}

// ByName builds the named benchmark case.
func ByName(name string) (*Case, error) {
	switch name {
	case "Adder":
		return Adder(), nil
	case "CC-OTA":
		return CCOTA(), nil
	case "Comp1":
		return Comp1(), nil
	case "Comp2":
		return Comp2(), nil
	case "CM-OTA1":
		return CMOTA1(), nil
	case "CM-OTA2":
		return CMOTA2(), nil
	case "SCF":
		return SCF(), nil
	case "VGA":
		return VGA(), nil
	case "VCO1":
		return VCO1(), nil
	case "VCO2":
		return VCO2(), nil
	}
	return nil, fmt.Errorf("testcircuits: unknown circuit %q", name)
}

// All builds every benchmark case in table order.
func All() []*Case {
	names := Names()
	out := make([]*Case, len(names))
	for i, nm := range names {
		c, err := ByName(nm)
		if err != nil {
			panic(err) // unreachable: Names and ByName are in sync
		}
		out[i] = c
	}
	return out
}

// builder assembles netlists with device-kind-appropriate pin templates.
type builder struct {
	n       *circuit.Netlist
	netIdx  map[string]int
	pinName map[string]int // per device kind: pin name → index
}

func newBuilder(name string) *builder {
	return &builder{
		n:      &circuit.Netlist{Name: name},
		netIdx: map[string]int{},
	}
}

// mos adds a transistor with gate/source/drain pins. The gate sits low-left
// and the drain high-right so flipping is meaningful.
func (b *builder) mos(name string, ty circuit.DeviceType, w, h float64) int {
	b.n.Devices = append(b.n.Devices, circuit.Device{
		Name: name, Type: ty, W: w, H: h,
		Pins: []circuit.Pin{
			{Name: "g", Offset: geom.Point{X: 0.15 * w, Y: 0.5 * h}},
			{Name: "s", Offset: geom.Point{X: 0.5 * w, Y: 0.1 * h}},
			{Name: "d", Offset: geom.Point{X: 0.85 * w, Y: 0.85 * h}},
		},
	})
	return len(b.n.Devices) - 1
}

// twoPin adds a capacitor/resistor/inductor with left/right terminals.
func (b *builder) twoPin(name string, ty circuit.DeviceType, w, h float64) int {
	b.n.Devices = append(b.n.Devices, circuit.Device{
		Name: name, Type: ty, W: w, H: h,
		Pins: []circuit.Pin{
			{Name: "p", Offset: geom.Point{X: 0.15 * w, Y: 0.5 * h}},
			{Name: "n", Offset: geom.Point{X: 0.85 * w, Y: 0.5 * h}},
		},
	})
	return len(b.n.Devices) - 1
}

// pin builds a PinRef from a device index and pin name.
func (b *builder) pin(dev int, pinName string) circuit.PinRef {
	d := &b.n.Devices[dev]
	for pi := range d.Pins {
		if d.Pins[pi].Name == pinName {
			return circuit.PinRef{Device: dev, Pin: pi}
		}
	}
	panic(fmt.Sprintf("testcircuits: device %s has no pin %q", d.Name, pinName))
}

// net adds (or extends) the named net with the given pins and returns its
// index.
func (b *builder) net(name string, pins ...circuit.PinRef) int {
	if e, ok := b.netIdx[name]; ok {
		b.n.Nets[e].Pins = append(b.n.Nets[e].Pins, pins...)
		return e
	}
	b.n.Nets = append(b.n.Nets, circuit.Net{Name: name, Pins: pins})
	e := len(b.n.Nets) - 1
	b.netIdx[name] = e
	return e
}

// sym adds a symmetry group.
func (b *builder) sym(pairs [][2]int, self ...int) {
	b.n.SymGroups = append(b.n.SymGroups, circuit.SymmetryGroup{Pairs: pairs, Self: self})
}

// finish validates the netlist and panics on construction bugs (these are
// compiled-in circuits, so failure is programmer error).
func (b *builder) finish() *circuit.Netlist {
	if err := b.n.Validate(); err != nil {
		panic(fmt.Sprintf("testcircuits: %s: %v", b.n.Name, err))
	}
	return b.n
}

// sensScale globally scales every metric's parasitic sensitivities. It is
// calibrated so that performance-oblivious placements land near the paper's
// conventional FOM levels (~0.8), leaving the headroom performance-driven
// placement exploits.
const sensScale = 2.8

// model builds a perfmodel with references anchored to a compact layout
// estimate (nets at ~60% of the sqrt-area scale).
func model(n *circuit.Netlist, metrics []perfmodel.MetricDef, matched [][2]int) *perfmodel.Model {
	for i := range metrics {
		md := &metrics[i]
		scaled := make(map[int]float64, len(md.CapSens))
		for e, v := range md.CapSens {
			scaled[e] = v * sensScale
		}
		md.CapSens = scaled
		md.MismatchSens *= sensScale
	}
	m := &perfmodel.Model{
		Wire:        perfmodel.DefaultWire,
		Metrics:     metrics,
		MatchedNets: matched,
	}
	scale := math.Sqrt(n.TotalDeviceArea())
	m.SetReferenceLengths(n, scale, 0.6)
	if err := m.Validate(n); err != nil {
		panic(fmt.Sprintf("testcircuits: %s perf model: %v", n.Name, err))
	}
	return m
}
