package testcircuits

import (
	"fmt"

	"repro/internal/circuit"
	"repro/internal/perfmodel"
)

// VCO1 builds a five-stage current-starved ring oscillator (24 devices):
// each delay stage has an inverter pair plus two starving devices, with a
// bias mirror and two load capacitors. The stage chain carries a
// horizontal ordering constraint (monotone signal path).
func VCO1() *Case {
	b := newBuilder("VCO1")
	const stages = 5
	invP := make([]int, stages)
	invN := make([]int, stages)
	stvP := make([]int, stages)
	stvN := make([]int, stages)
	for s := 0; s < stages; s++ {
		invP[s] = b.mos(fmt.Sprintf("IP%d", s), circuit.PMOS, 40, 18)
		invN[s] = b.mos(fmt.Sprintf("IN%d", s), circuit.NMOS, 40, 15)
		stvP[s] = b.mos(fmt.Sprintf("SP%d", s), circuit.PMOS, 30, 12)
		stvN[s] = b.mos(fmt.Sprintf("SN%d", s), circuit.NMOS, 30, 12)
	}
	mb1 := b.mos("MB1", circuit.NMOS, 24, 12)
	mb2 := b.mos("MB2", circuit.PMOS, 24, 12)
	cl1 := b.twoPin("CL1", circuit.Cap, 50, 50)
	cl2 := b.twoPin("CL2", circuit.Cap, 50, 50)

	// Ring connectivity: out of stage s drives gates of stage s+1.
	stageNets := make([]int, stages)
	for s := 0; s < stages; s++ {
		nxt := (s + 1) % stages
		stageNets[s] = b.net(fmt.Sprintf("ph%d", s),
			b.pin(invP[s], "d"), b.pin(invN[s], "d"),
			b.pin(invP[nxt], "g"), b.pin(invN[nxt], "g"))
	}
	b.net("ph0load", b.pin(invP[0], "d"), b.pin(cl1, "p"))
	b.net("ph2load", b.pin(invP[2], "d"), b.pin(cl2, "p"))
	vbn := b.net("vbn", b.pin(mb1, "g"), b.pin(mb1, "d"))
	vbp := b.net("vbp", b.pin(mb2, "g"), b.pin(mb2, "d"))
	for s := 0; s < stages; s++ {
		b.net("vbn", b.pin(stvN[s], "g"))
		b.net("vbp", b.pin(stvP[s], "g"))
		b.net(fmt.Sprintf("srcp%d", s), b.pin(invP[s], "s"), b.pin(stvP[s], "d"))
		b.net(fmt.Sprintf("srcn%d", s), b.pin(invN[s], "s"), b.pin(stvN[s], "d"))
	}
	vss := b.net("vss", b.pin(mb1, "s"), b.pin(cl1, "n"), b.pin(cl2, "n"))
	vdd := b.net("vdd", b.pin(mb2, "s"))
	for s := 0; s < stages; s++ {
		b.net("vss", b.pin(stvN[s], "s"))
		b.net("vdd", b.pin(stvP[s], "s"))
	}
	b.n.Nets[vss].Weight = 0.2
	b.n.Nets[vdd].Weight = 0.2
	for _, e := range stageNets {
		b.n.Nets[e].Weight = 0.45
	}

	// Delay stages in signal order, left to right (monotone path [16]).
	b.n.HOrders = append(b.n.HOrders, []int{invN[0], invN[1], invN[2], invN[3], invN[4]})
	// Per-stage inverter transistors bottom-aligned with each other.
	for s := 0; s < stages; s++ {
		b.n.BottomAlign = append(b.n.BottomAlign, [2]int{invP[s], invN[s]})
	}
	b.sym([][2]int{{cl1, cl2}})
	n := b.finish()

	metrics := []perfmodel.MetricDef{
		{
			Spec: perfmodel.Spec{Name: "Fosc(GHz)", Target: 2.4, HigherBetter: true, Weight: 0.3},
			Base: 2.15, CapSens: capSpread(stageNets, 0.03),
		},
		{
			Spec: perfmodel.Spec{Name: "Tune(%)", Target: 30, HigherBetter: true, Weight: 0.25},
			Base: 26.5, CapSens: map[int]float64{vbn: 0.02, vbp: 0.02},
		},
		{
			Spec: perfmodel.Spec{Name: "PN(dBc)", Target: 95, HigherBetter: true, Weight: 0.25},
			Base: 88, CapSens: capSpread(stageNets, 0.008), MismatchSens: 0.05,
		},
		{
			Spec: perfmodel.Spec{Name: "Power(mW)", Target: 3.2, HigherBetter: false, Weight: 0.2},
			Base: 2.6, CapSens: capSpread(stageNets, 0.012),
		},
	}
	return &Case{
		Netlist:   n,
		Perf:      model(n, metrics, [][2]int{{stageNets[0], stageNets[2]}}),
		Threshold: 0.68,
	}
}

// VCO2 builds an LC-tank oscillator (17 devices): a dominant spiral
// inductor, cross-coupled NMOS/PMOS pairs, a 4-bit capacitor bank,
// varactors, tail source and output buffers. The inductor fixes the layout
// area, as in the paper where VCO2's area is identical across methods.
func VCO2() *Case {
	b := newBuilder("VCO2")
	ind := b.twoPin("L1", circuit.Ind, 150, 150)
	xn1 := b.mos("XN1", circuit.NMOS, 36, 14)
	xn2 := b.mos("XN2", circuit.NMOS, 36, 14)
	xp1 := b.mos("XP1", circuit.PMOS, 36, 14)
	xp2 := b.mos("XP2", circuit.PMOS, 36, 14)
	cb := make([]int, 6)
	cbDims := [][2]float64{{52, 38}, {40, 35}, {30, 44}}
	for i := range cb {
		d := cbDims[i/2]
		cb[i] = b.twoPin(fmt.Sprintf("CB%d", i), circuit.Cap, d[0], d[1])
	}
	var1 := b.twoPin("VAR1", circuit.Cap, 34, 34)
	var2 := b.twoPin("VAR2", circuit.Cap, 34, 34)
	mt := b.mos("MT", circuit.NMOS, 40, 12)
	bf1 := b.mos("BF1", circuit.NMOS, 24, 11)
	bf2 := b.mos("BF2", circuit.NMOS, 24, 11)

	tankp := b.net("tankp", b.pin(ind, "p"), b.pin(xn1, "d"), b.pin(xp1, "d"),
		b.pin(xn2, "g"), b.pin(xp2, "g"), b.pin(var1, "p"), b.pin(bf1, "g"),
		b.pin(cb[0], "p"), b.pin(cb[2], "p"), b.pin(cb[4], "p"))
	tankn := b.net("tankn", b.pin(ind, "n"), b.pin(xn2, "d"), b.pin(xp2, "d"),
		b.pin(xn1, "g"), b.pin(xp1, "g"), b.pin(var2, "p"), b.pin(bf2, "g"),
		b.pin(cb[1], "p"), b.pin(cb[3], "p"), b.pin(cb[5], "p"))
	vt := b.net("vtune", b.pin(var1, "n"), b.pin(var2, "n"))
	b.net("bank", b.pin(cb[0], "n"), b.pin(cb[1], "n"), b.pin(cb[2], "n"),
		b.pin(cb[3], "n"), b.pin(cb[4], "n"), b.pin(cb[5], "n"))
	b.net("tail", b.pin(xn1, "s"), b.pin(xn2, "s"), b.pin(mt, "d"))
	b.net("outp", b.pin(bf1, "d"))
	b.net("outn", b.pin(bf2, "d"))
	b.net("vss", b.pin(mt, "s"), b.pin(bf1, "s"), b.pin(bf2, "s"))
	b.net("vdd", b.pin(xp1, "s"), b.pin(xp2, "s"), b.pin(mt, "g"))
	b.n.Nets[b.netIdx["vss"]].Weight = 0.2
	b.n.Nets[b.netIdx["vdd"]].Weight = 0.2

	b.sym([][2]int{{xn1, xn2}, {xp1, xp2}, {var1, var2},
		{cb[0], cb[1]}, {cb[2], cb[3]}, {cb[4], cb[5]}, {bf1, bf2}}, mt)
	n := b.finish()

	metrics := []perfmodel.MetricDef{
		{
			Spec: perfmodel.Spec{Name: "Fosc(GHz)", Target: 5.0, HigherBetter: true, Weight: 0.3},
			Base: 4.6, CapSens: map[int]float64{tankp: 0.035, tankn: 0.035},
		},
		{
			Spec: perfmodel.Spec{Name: "Tune(%)", Target: 18, HigherBetter: true, Weight: 0.25},
			Base: 15.5, CapSens: map[int]float64{vt: 0.02, tankp: 0.01, tankn: 0.01},
		},
		{
			Spec: perfmodel.Spec{Name: "PN(dBc)", Target: 112, HigherBetter: true, Weight: 0.25},
			Base: 104, MismatchSens: 0.07, CapSens: map[int]float64{tankp: 0.008, tankn: 0.008},
		},
		{
			Spec: perfmodel.Spec{Name: "Power(mW)", Target: 6.5, HigherBetter: false, Weight: 0.2},
			Base: 5.4, CapSens: map[int]float64{tankp: 0.01, tankn: 0.01},
		},
	}
	return &Case{
		Netlist:   n,
		Perf:      model(n, metrics, [][2]int{{tankp, tankn}}),
		Threshold: 0.60,
	}
}

// capSpread builds a sensitivity map giving every listed net the same
// coefficient.
func capSpread(nets []int, s float64) map[int]float64 {
	m := make(map[int]float64, len(nets))
	for _, e := range nets {
		m[e] = s
	}
	return m
}
