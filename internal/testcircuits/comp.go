package testcircuits

import (
	"repro/internal/circuit"
	"repro/internal/perfmodel"
)

// Comp1 builds a strong-arm latch comparator (16 devices): clocked tail,
// input pair, cross-coupled latch (NMOS+PMOS), precharge switches and an
// output buffer pair.
func Comp1() *Case {
	b := newBuilder("Comp1")
	mck := b.mos("MCK", circuit.NMOS, 36, 12)
	m1 := b.mos("M1", circuit.NMOS, 30, 13)
	m2 := b.mos("M2", circuit.NMOS, 30, 13)
	m3 := b.mos("M3", circuit.NMOS, 22, 11)
	m4 := b.mos("M4", circuit.NMOS, 22, 11)
	m5 := b.mos("M5", circuit.PMOS, 22, 11)
	m6 := b.mos("M6", circuit.PMOS, 22, 11)
	p1 := b.mos("P1", circuit.PMOS, 16, 10)
	p2 := b.mos("P2", circuit.PMOS, 16, 10)
	p3 := b.mos("P3", circuit.PMOS, 16, 10)
	p4 := b.mos("P4", circuit.PMOS, 16, 10)
	i1 := b.mos("I1", circuit.NMOS, 18, 10)
	i2 := b.mos("I2", circuit.NMOS, 18, 10)
	i3 := b.mos("I3", circuit.PMOS, 18, 10)
	i4 := b.mos("I4", circuit.PMOS, 18, 10)
	cs := b.twoPin("CS", circuit.Cap, 34, 30)

	clk := b.net("clk", b.pin(mck, "g"), b.pin(p1, "g"), b.pin(p2, "g"), b.pin(p3, "g"), b.pin(p4, "g"), b.pin(cs, "p"))
	b.net("vinp", b.pin(m1, "g"))
	b.net("vinn", b.pin(m2, "g"))
	b.net("tail", b.pin(mck, "d"), b.pin(m1, "s"), b.pin(m2, "s"))
	di := b.net("di", b.pin(m1, "d"), b.pin(m3, "s"), b.pin(p1, "d"))
	dib := b.net("dib", b.pin(m2, "d"), b.pin(m4, "s"), b.pin(p2, "d"))
	outp := b.net("outp", b.pin(m3, "d"), b.pin(m5, "d"), b.pin(m4, "g"), b.pin(m6, "g"), b.pin(p3, "d"), b.pin(i1, "g"), b.pin(i3, "g"))
	outn := b.net("outn", b.pin(m4, "d"), b.pin(m6, "d"), b.pin(m3, "g"), b.pin(m5, "g"), b.pin(p4, "d"), b.pin(i2, "g"), b.pin(i4, "g"))
	b.net("q", b.pin(i1, "d"), b.pin(i3, "d"))
	b.net("qb", b.pin(i2, "d"), b.pin(i4, "d"))
	b.net("vss", b.pin(mck, "s"), b.pin(i1, "s"), b.pin(i2, "s"), b.pin(cs, "n"))
	b.net("vdd", b.pin(m5, "s"), b.pin(m6, "s"), b.pin(p1, "s"), b.pin(p2, "s"),
		b.pin(p3, "s"), b.pin(p4, "s"), b.pin(i3, "s"), b.pin(i4, "s"))
	b.n.Nets[b.netIdx["vss"]].Weight = 0.2
	b.n.Nets[b.netIdx["di"]].Weight = 0.45
	b.n.Nets[b.netIdx["dib"]].Weight = 0.45
	b.n.Nets[b.netIdx["clk"]].Weight = 0.45
	b.n.Nets[b.netIdx["vdd"]].Weight = 0.2

	b.sym([][2]int{{m1, m2}, {m3, m4}, {m5, m6}, {p1, p2}, {p3, p4}}, mck)
	b.sym([][2]int{{i1, i2}, {i3, i4}})
	n := b.finish()

	metrics := []perfmodel.MetricDef{
		{
			Spec: perfmodel.Spec{Name: "Delay(ps)", Target: 120, HigherBetter: false, Weight: 0.3},
			Base: 88, CapSens: map[int]float64{outp: 0.04, outn: 0.04, di: 0.02, dib: 0.02},
		},
		{
			Spec: perfmodel.Spec{Name: "Offset(mV)", Target: 6, HigherBetter: false, Weight: 0.3},
			Base: 4.6, MismatchSens: 0.5,
		},
		{
			Spec: perfmodel.Spec{Name: "Noise(µV)", Target: 400, HigherBetter: false, Weight: 0.2},
			Base: 300, CapSens: map[int]float64{di: 0.03, dib: 0.03}, MismatchSens: 0.1,
		},
		{
			Spec: perfmodel.Spec{Name: "Power(µW)", Target: 95, HigherBetter: false, Weight: 0.2},
			Base: 80, CapSens: map[int]float64{clk: 0.025},
		},
	}
	return &Case{
		Netlist:   n,
		Perf:      model(n, metrics, [][2]int{{di, dib}, {outp, outn}}),
		Threshold: 0.85,
	}
}

// Comp2 builds a double-tail comparator (22 devices): two clocked stages
// with their own tails, intermediate reset switches and an SR latch.
func Comp2() *Case {
	b := newBuilder("Comp2")
	mt1 := b.mos("MT1", circuit.NMOS, 38, 12)
	m1 := b.mos("M1", circuit.NMOS, 32, 13)
	m2 := b.mos("M2", circuit.NMOS, 32, 13)
	pr1 := b.mos("PR1", circuit.PMOS, 18, 10)
	pr2 := b.mos("PR2", circuit.PMOS, 18, 10)
	mt2 := b.mos("MT2", circuit.PMOS, 38, 12)
	m3 := b.mos("M3", circuit.PMOS, 26, 12)
	m4 := b.mos("M4", circuit.PMOS, 26, 12)
	m5 := b.mos("M5", circuit.NMOS, 22, 11)
	m6 := b.mos("M6", circuit.NMOS, 22, 11)
	m7 := b.mos("M7", circuit.PMOS, 22, 11)
	m8 := b.mos("M8", circuit.PMOS, 22, 11)
	nr1 := b.mos("NR1", circuit.NMOS, 16, 10)
	nr2 := b.mos("NR2", circuit.NMOS, 16, 10)
	s1 := b.mos("S1", circuit.NMOS, 20, 10)
	s2 := b.mos("S2", circuit.NMOS, 20, 10)
	s3 := b.mos("S3", circuit.PMOS, 20, 10)
	s4 := b.mos("S4", circuit.PMOS, 20, 10)
	cd1 := b.twoPin("CD1", circuit.Cap, 30, 26)
	cd2 := b.twoPin("CD2", circuit.Cap, 30, 26)
	rb := b.twoPin("RB", circuit.Res, 10, 24)
	mb := b.mos("MB", circuit.NMOS, 16, 10)

	clk := b.net("clk", b.pin(mt1, "g"), b.pin(pr1, "g"), b.pin(pr2, "g"))
	b.net("clkb", b.pin(mt2, "g"), b.pin(nr1, "g"), b.pin(nr2, "g"))
	b.net("vinp", b.pin(m1, "g"))
	b.net("vinn", b.pin(m2, "g"))
	b.net("tail1", b.pin(mt1, "d"), b.pin(m1, "s"), b.pin(m2, "s"))
	fp := b.net("fp", b.pin(m1, "d"), b.pin(pr1, "d"), b.pin(m3, "g"), b.pin(cd1, "p"))
	fn := b.net("fn", b.pin(m2, "d"), b.pin(pr2, "d"), b.pin(m4, "g"), b.pin(cd2, "p"))
	b.net("tail2", b.pin(mt2, "d"), b.pin(m3, "s"), b.pin(m4, "s"))
	op := b.net("op", b.pin(m3, "d"), b.pin(m5, "d"), b.pin(m6, "g"), b.pin(m8, "g"), b.pin(nr1, "d"), b.pin(s1, "g"), b.pin(s3, "g"))
	on := b.net("on", b.pin(m4, "d"), b.pin(m6, "d"), b.pin(m5, "g"), b.pin(m7, "g"), b.pin(nr2, "d"), b.pin(s2, "g"), b.pin(s4, "g"))
	b.net("q", b.pin(s1, "d"), b.pin(s3, "d"), b.pin(m7, "d"))
	b.net("qb", b.pin(s2, "d"), b.pin(s4, "d"), b.pin(m8, "d"))
	b.net("bias", b.pin(mb, "g"), b.pin(mb, "d"), b.pin(rb, "p"))
	b.net("vss", b.pin(mt1, "s"), b.pin(m5, "s"), b.pin(m6, "s"), b.pin(nr1, "s"),
		b.pin(nr2, "s"), b.pin(s1, "s"), b.pin(s2, "s"), b.pin(mb, "s"), b.pin(cd1, "n"), b.pin(cd2, "n"), b.pin(rb, "n"))
	b.net("vdd", b.pin(mt2, "s"), b.pin(pr1, "s"), b.pin(pr2, "s"), b.pin(m7, "s"),
		b.pin(m8, "s"), b.pin(s3, "s"), b.pin(s4, "s"))
	b.n.Nets[b.netIdx["vss"]].Weight = 0.2
	b.n.Nets[b.netIdx["fp"]].Weight = 0.45
	b.n.Nets[b.netIdx["fn"]].Weight = 0.45
	b.n.Nets[b.netIdx["op"]].Weight = 0.45
	b.n.Nets[b.netIdx["on"]].Weight = 0.45
	b.n.Nets[b.netIdx["vdd"]].Weight = 0.2

	b.sym([][2]int{{m1, m2}, {pr1, pr2}}, mt1)
	b.sym([][2]int{{m3, m4}, {m5, m6}, {m7, m8}, {nr1, nr2}}, mt2)
	b.sym([][2]int{{s1, s2}, {s3, s4}, {cd1, cd2}})
	n := b.finish()

	metrics := []perfmodel.MetricDef{
		{
			Spec: perfmodel.Spec{Name: "Delay(ps)", Target: 150, HigherBetter: false, Weight: 0.3},
			Base: 118, CapSens: map[int]float64{fp: 0.03, fn: 0.03, op: 0.035, on: 0.035},
		},
		{
			Spec: perfmodel.Spec{Name: "Offset(mV)", Target: 5, HigherBetter: false, Weight: 0.3},
			Base: 4.2, MismatchSens: 0.28,
		},
		{
			Spec: perfmodel.Spec{Name: "Hyst(mV)", Target: 8, HigherBetter: false, Weight: 0.2},
			Base: 6.5, MismatchSens: 0.15, CapSens: map[int]float64{op: 0.01, on: 0.01},
		},
		{
			Spec: perfmodel.Spec{Name: "Power(µW)", Target: 140, HigherBetter: false, Weight: 0.2},
			Base: 122, CapSens: map[int]float64{clk: 0.02},
		},
	}
	return &Case{
		Netlist:   n,
		Perf:      model(n, metrics, [][2]int{{fp, fn}, {op, on}}),
		Threshold: 0.69,
	}
}
