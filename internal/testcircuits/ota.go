package testcircuits

import (
	"repro/internal/circuit"
	"repro/internal/perfmodel"
)

// CCOTA builds the cross-coupled OTA: a symmetric diff pair with
// cross-coupled PMOS loads, cascode mirrors, tail source, bias branch and a
// pair of compensation capacitors (15 devices). Its specs are the ones the
// paper reports in Table VI.
func CCOTA() *Case {
	b := newBuilder("CC-OTA")
	m1 := b.mos("M1", circuit.NMOS, 30, 12)
	m2 := b.mos("M2", circuit.NMOS, 30, 12)
	m3 := b.mos("M3", circuit.PMOS, 24, 10)
	m4 := b.mos("M4", circuit.PMOS, 24, 10)
	m5 := b.mos("M5", circuit.PMOS, 24, 10)
	m6 := b.mos("M6", circuit.PMOS, 24, 10)
	m7 := b.mos("M7", circuit.NMOS, 20, 10)
	m8 := b.mos("M8", circuit.NMOS, 20, 10)
	mt := b.mos("MT", circuit.NMOS, 36, 10)
	mb1 := b.mos("MB1", circuit.NMOS, 16, 10)
	mb2 := b.mos("MB2", circuit.NMOS, 16, 10)
	c1 := b.twoPin("C1", circuit.Cap, 30, 30)
	c2 := b.twoPin("C2", circuit.Cap, 30, 30)
	rb := b.twoPin("RB", circuit.Res, 12, 30)

	vinp := b.net("vinp", b.pin(m1, "g"))
	vinn := b.net("vinn", b.pin(m2, "g"))
	b.net("tail", b.pin(m1, "s"), b.pin(m2, "s"), b.pin(mt, "d"))
	outp := b.net("outp",
		b.pin(m1, "d"), b.pin(m3, "d"), b.pin(m4, "g"), b.pin(m5, "d"),
		b.pin(m7, "g"), b.pin(c1, "p"))
	outn := b.net("outn",
		b.pin(m2, "d"), b.pin(m4, "d"), b.pin(m3, "g"), b.pin(m6, "d"),
		b.pin(m8, "g"), b.pin(c2, "p"))
	b.net("vop", b.pin(m7, "d"), b.pin(c1, "n"))
	b.net("von", b.pin(m8, "d"), b.pin(c2, "n"))
	b.net("bias",
		b.pin(mt, "g"), b.pin(mb1, "g"), b.pin(mb1, "d"), b.pin(mb2, "g"),
		b.pin(rb, "p"))
	b.net("vss", b.pin(mt, "s"), b.pin(mb1, "s"), b.pin(mb2, "s"), b.pin(m7, "s"), b.pin(m8, "s"), b.pin(rb, "n"))
	b.net("vdd", b.pin(m3, "s"), b.pin(m4, "s"), b.pin(m5, "s"), b.pin(m6, "s"), b.pin(mb2, "d"))
	b.n.Nets[b.netIdx["vss"]].Weight = 0.2
	b.n.Nets[b.netIdx["outp"]].Weight = 0.45
	b.n.Nets[b.netIdx["outn"]].Weight = 0.45
	b.n.Nets[b.netIdx["vdd"]].Weight = 0.2

	b.sym([][2]int{{m1, m2}, {m3, m4}, {m5, m6}, {m7, m8}, {c1, c2}}, mt)
	n := b.finish()

	metrics := []perfmodel.MetricDef{
		{
			Spec: perfmodel.Spec{Name: "Gain(dB)", Target: 25.0, HigherBetter: true, Weight: 0.25},
			Base: 26.3, CapSens: map[int]float64{outp: 0.002, outn: 0.002},
		},
		{
			Spec: perfmodel.Spec{Name: "UGF(MHz)", Target: 1200, HigherBetter: true, Weight: 0.25},
			Base: 1150, CapSens: map[int]float64{outp: 0.055, outn: 0.055},
		},
		{
			Spec: perfmodel.Spec{Name: "BW(MHz)", Target: 70, HigherBetter: true, Weight: 0.25},
			Base: 62, CapSens: map[int]float64{outp: 0.075, outn: 0.075}, MismatchSens: 0.05,
		},
		{
			// Phase margin trades against speed: it improves with output
			// loading (negative sensitivity) and suffers from mismatch.
			Spec: perfmodel.Spec{Name: "PM(deg)", Target: 90, HigherBetter: true, Weight: 0.25},
			Base: 85, CapSens: map[int]float64{outp: -0.02, outn: -0.02}, MismatchSens: 0.12,
		},
	}
	return &Case{
		Netlist:   n,
		Perf:      model(n, metrics, [][2]int{{outp, outn}, {vinp, vinn}}),
		Threshold: 0.76,
	}
}

// CMOTA1 builds the first current-mirror OTA (17 devices): diff pair,
// two current-mirror load stages, output mirrors, tail and bias network.
func CMOTA1() *Case {
	b := newBuilder("CM-OTA1")
	m1 := b.mos("M1", circuit.NMOS, 32, 14)
	m2 := b.mos("M2", circuit.NMOS, 32, 14)
	m3 := b.mos("M3", circuit.PMOS, 22, 11)
	m4 := b.mos("M4", circuit.PMOS, 22, 11)
	m5 := b.mos("M5", circuit.PMOS, 22, 11)
	m6 := b.mos("M6", circuit.PMOS, 22, 11)
	m7 := b.mos("M7", circuit.NMOS, 26, 11)
	m8 := b.mos("M8", circuit.NMOS, 26, 11)
	m9 := b.mos("M9", circuit.NMOS, 26, 11)
	mt := b.mos("MT", circuit.NMOS, 40, 12)
	mb := b.mos("MB", circuit.NMOS, 18, 12)
	cl := b.twoPin("CL", circuit.Cap, 42, 40)
	r1 := b.twoPin("R1", circuit.Res, 10, 26)
	m10 := b.mos("M10", circuit.PMOS, 20, 10)
	m11 := b.mos("M11", circuit.PMOS, 20, 10)
	m12 := b.mos("M12", circuit.NMOS, 18, 10)
	m13 := b.mos("M13", circuit.NMOS, 18, 10)

	vinp := b.net("vinp", b.pin(m1, "g"))
	vinn := b.net("vinn", b.pin(m2, "g"))
	b.net("tail", b.pin(m1, "s"), b.pin(m2, "s"), b.pin(mt, "d"))
	na := b.net("na", b.pin(m1, "d"), b.pin(m3, "d"), b.pin(m3, "g"), b.pin(m5, "g"))
	nb := b.net("nb", b.pin(m2, "d"), b.pin(m4, "d"), b.pin(m4, "g"), b.pin(m6, "g"))
	b.net("nc", b.pin(m5, "d"), b.pin(m7, "d"), b.pin(m7, "g"), b.pin(m8, "g"))
	out := b.net("out", b.pin(m6, "d"), b.pin(m8, "d"), b.pin(cl, "p"), b.pin(m9, "g"))
	b.net("outbuf", b.pin(m9, "d"), b.pin(m10, "d"), b.pin(m11, "g"))
	b.net("mir", b.pin(m10, "g"), b.pin(m11, "d"), b.pin(m12, "d"), b.pin(m12, "g"), b.pin(m13, "g"))
	b.net("bias", b.pin(mt, "g"), b.pin(mb, "g"), b.pin(mb, "d"), b.pin(r1, "p"))
	b.net("vss", b.pin(mt, "s"), b.pin(mb, "s"), b.pin(m7, "s"), b.pin(m8, "s"),
		b.pin(m9, "s"), b.pin(m12, "s"), b.pin(m13, "s"), b.pin(cl, "n"), b.pin(r1, "n"))
	b.net("vdd", b.pin(m3, "s"), b.pin(m4, "s"), b.pin(m5, "s"), b.pin(m6, "s"),
		b.pin(m10, "s"), b.pin(m11, "s"))
	b.n.Nets[b.netIdx["vss"]].Weight = 0.2
	b.n.Nets[b.netIdx["out"]].Weight = 0.45
	b.n.Nets[b.netIdx["na"]].Weight = 0.45
	b.n.Nets[b.netIdx["nb"]].Weight = 0.45
	b.n.Nets[b.netIdx["vdd"]].Weight = 0.2

	b.sym([][2]int{{m1, m2}, {m3, m4}, {m5, m6}}, mt)
	b.sym([][2]int{{m10, m11}, {m12, m13}})
	n := b.finish()

	metrics := []perfmodel.MetricDef{
		{
			Spec: perfmodel.Spec{Name: "Gain(dB)", Target: 32, HigherBetter: true, Weight: 0.25},
			Base: 34, CapSens: map[int]float64{out: 0.004},
		},
		{
			Spec: perfmodel.Spec{Name: "UGF(MHz)", Target: 900, HigherBetter: true, Weight: 0.25},
			Base: 880, CapSens: map[int]float64{out: 0.05, na: 0.02, nb: 0.02},
		},
		{
			Spec: perfmodel.Spec{Name: "BW(MHz)", Target: 45, HigherBetter: true, Weight: 0.25},
			Base: 40, CapSens: map[int]float64{out: 0.06}, MismatchSens: 0.06,
		},
		{
			Spec: perfmodel.Spec{Name: "Offset(mV)", Target: 4, HigherBetter: false, Weight: 0.25},
			Base: 2.4, MismatchSens: 0.35, CapSens: map[int]float64{na: 0.01, nb: 0.01},
		},
	}
	return &Case{
		Netlist:   n,
		Perf:      model(n, metrics, [][2]int{{na, nb}, {vinp, vinn}}),
		Threshold: 0.84,
	}
}

// CMOTA2 builds the second, larger current-mirror OTA (21 devices) with a
// two-stage structure and Miller compensation.
func CMOTA2() *Case {
	b := newBuilder("CM-OTA2")
	m1 := b.mos("M1", circuit.NMOS, 34, 14)
	m2 := b.mos("M2", circuit.NMOS, 34, 14)
	m3 := b.mos("M3", circuit.PMOS, 24, 11)
	m4 := b.mos("M4", circuit.PMOS, 24, 11)
	m5 := b.mos("M5", circuit.PMOS, 24, 11)
	m6 := b.mos("M6", circuit.PMOS, 24, 11)
	m7 := b.mos("M7", circuit.NMOS, 24, 11)
	m8 := b.mos("M8", circuit.NMOS, 24, 11)
	m9 := b.mos("M9", circuit.PMOS, 30, 12)
	m10 := b.mos("M10", circuit.NMOS, 30, 12)
	mt := b.mos("MT", circuit.NMOS, 44, 12)
	mb1 := b.mos("MB1", circuit.NMOS, 18, 11)
	mb2 := b.mos("MB2", circuit.PMOS, 18, 11)
	cm := b.twoPin("CM", circuit.Cap, 40, 36)
	cl := b.twoPin("CL", circuit.Cap, 46, 42)
	rz := b.twoPin("RZ", circuit.Res, 10, 30)
	m11 := b.mos("M11", circuit.NMOS, 20, 10)
	m12 := b.mos("M12", circuit.NMOS, 20, 10)
	m13 := b.mos("M13", circuit.PMOS, 20, 10)
	m14 := b.mos("M14", circuit.PMOS, 20, 10)
	mcas := b.mos("MCAS", circuit.NMOS, 28, 11)

	vinp := b.net("vinp", b.pin(m1, "g"), b.pin(m11, "g"))
	vinn := b.net("vinn", b.pin(m2, "g"), b.pin(m12, "g"))
	b.net("tail", b.pin(m1, "s"), b.pin(m2, "s"), b.pin(mt, "d"))
	na := b.net("na", b.pin(m1, "d"), b.pin(m3, "d"), b.pin(m3, "g"), b.pin(m5, "g"))
	nb := b.net("nb", b.pin(m2, "d"), b.pin(m4, "d"), b.pin(m4, "g"), b.pin(m6, "g"))
	st1 := b.net("st1", b.pin(m6, "d"), b.pin(m8, "d"), b.pin(m9, "g"), b.pin(cm, "p"), b.pin(rz, "p"))
	b.net("st1m", b.pin(m5, "d"), b.pin(m7, "d"), b.pin(m7, "g"), b.pin(m8, "g"))
	out := b.net("out", b.pin(m9, "d"), b.pin(m10, "d"), b.pin(cl, "p"), b.pin(rz, "n"), b.pin(cm, "n"), b.pin(mcas, "d"))
	b.net("biasn", b.pin(mt, "g"), b.pin(mb1, "g"), b.pin(mb1, "d"), b.pin(m10, "g"))
	b.net("biasp", b.pin(mb2, "g"), b.pin(mb2, "d"), b.pin(m13, "g"), b.pin(m14, "g"))
	b.net("aux", b.pin(m11, "d"), b.pin(m13, "d"), b.pin(mcas, "g"))
	b.net("auxm", b.pin(m12, "d"), b.pin(m14, "d"), b.pin(mcas, "s"))
	b.net("vss", b.pin(mt, "s"), b.pin(mb1, "s"), b.pin(m7, "s"), b.pin(m8, "s"),
		b.pin(m10, "s"), b.pin(m11, "s"), b.pin(m12, "s"), b.pin(cl, "n"))
	b.net("vdd", b.pin(m3, "s"), b.pin(m4, "s"), b.pin(m5, "s"), b.pin(m6, "s"),
		b.pin(m9, "s"), b.pin(mb2, "s"), b.pin(m13, "s"), b.pin(m14, "s"))
	b.n.Nets[b.netIdx["vss"]].Weight = 0.2
	b.n.Nets[b.netIdx["st1"]].Weight = 0.45
	b.n.Nets[b.netIdx["out"]].Weight = 0.45
	b.n.Nets[b.netIdx["vdd"]].Weight = 0.2

	b.sym([][2]int{{m1, m2}, {m3, m4}, {m5, m6}, {m7, m8}}, mt)
	b.sym([][2]int{{m11, m12}, {m13, m14}}, mcas)
	n := b.finish()

	metrics := []perfmodel.MetricDef{
		{
			Spec: perfmodel.Spec{Name: "Gain(dB)", Target: 55, HigherBetter: true, Weight: 0.25},
			Base: 58, CapSens: map[int]float64{out: 0.003, st1: 0.004},
		},
		{
			Spec: perfmodel.Spec{Name: "UGF(MHz)", Target: 400, HigherBetter: true, Weight: 0.25},
			Base: 385, CapSens: map[int]float64{st1: 0.05, out: 0.03},
		},
		{
			Spec: perfmodel.Spec{Name: "SR(V/µs)", Target: 120, HigherBetter: true, Weight: 0.25},
			Base: 108, CapSens: map[int]float64{out: 0.045}, MismatchSens: 0.04,
		},
		{
			Spec: perfmodel.Spec{Name: "Offset(mV)", Target: 5, HigherBetter: false, Weight: 0.25},
			Base: 3.1, MismatchSens: 0.3, CapSens: map[int]float64{na: 0.008, nb: 0.008},
		},
	}
	return &Case{
		Netlist:   n,
		Perf:      model(n, metrics, [][2]int{{na, nb}, {vinp, vinn}}),
		Threshold: 0.75,
	}
}
