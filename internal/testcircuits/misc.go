package testcircuits

import (
	"fmt"

	"repro/internal/circuit"
	"repro/internal/perfmodel"
)

// Adder builds the analog adder (10 devices): a small two-stage opamp with
// a symmetric input pair plus the summing resistor network and feedback
// capacitor. It is the paper's smallest case — every placer finds
// essentially the same layout.
func Adder() *Case {
	b := newBuilder("Adder")
	m1 := b.mos("M1", circuit.NMOS, 20, 10)
	m2 := b.mos("M2", circuit.NMOS, 20, 10)
	m3 := b.mos("M3", circuit.PMOS, 16, 8)
	m4 := b.mos("M4", circuit.PMOS, 16, 8)
	mt := b.mos("MT", circuit.NMOS, 24, 8)
	r1 := b.twoPin("R1", circuit.Res, 12, 40)
	r2 := b.twoPin("R2", circuit.Res, 12, 40)
	r3 := b.twoPin("R3", circuit.Res, 12, 40)
	rf := b.twoPin("RF", circuit.Res, 12, 40)
	cf := b.twoPin("CF", circuit.Cap, 30, 30)

	b.net("in1", b.pin(r1, "p"))
	b.net("in2", b.pin(r2, "p"))
	b.net("in3", b.pin(r3, "p"))
	vsum := b.net("vsum", b.pin(r1, "n"), b.pin(r2, "n"), b.pin(r3, "n"),
		b.pin(m1, "g"), b.pin(rf, "p"), b.pin(cf, "p"))
	vref := b.net("vref", b.pin(m2, "g"))
	out := b.net("out", b.pin(m2, "d"), b.pin(m4, "d"), b.pin(rf, "n"), b.pin(cf, "n"))
	b.net("na", b.pin(m1, "d"), b.pin(m3, "d"), b.pin(m3, "g"), b.pin(m4, "g"))
	b.net("tail", b.pin(m1, "s"), b.pin(m2, "s"), b.pin(mt, "d"))
	b.net("vss", b.pin(mt, "s"))
	b.net("vdd", b.pin(m3, "s"), b.pin(m4, "s"))
	b.n.Nets[b.netIdx["vss"]].Weight = 0.2
	b.n.Nets[b.netIdx["vdd"]].Weight = 0.2

	b.sym([][2]int{{m1, m2}, {m3, m4}}, mt)
	n := b.finish()

	metrics := []perfmodel.MetricDef{
		{
			Spec: perfmodel.Spec{Name: "GainErr(%)", Target: 1.0, HigherBetter: false, Weight: 0.34},
			Base: 0.75, CapSens: map[int]float64{vsum: 0.02}, MismatchSens: 0.15,
		},
		{
			Spec: perfmodel.Spec{Name: "BW(MHz)", Target: 250, HigherBetter: true, Weight: 0.33},
			Base: 225, CapSens: map[int]float64{out: 0.05, vsum: 0.03},
		},
		{
			Spec: perfmodel.Spec{Name: "Offset(mV)", Target: 3, HigherBetter: false, Weight: 0.33},
			Base: 2.1, MismatchSens: 0.3,
		},
	}
	return &Case{
		Netlist:   n,
		Perf:      model(n, metrics, [][2]int{{vsum, vref}}),
		Threshold: 0.51,
	}
}

// VGA builds the variable-gain amplifier (18 devices): two cascaded
// symmetric gain stages with source degeneration, resistor loads and a
// gain-control branch.
func VGA() *Case {
	b := newBuilder("VGA")
	m1 := b.mos("M1", circuit.NMOS, 28, 12)
	m2 := b.mos("M2", circuit.NMOS, 28, 12)
	rl1 := b.twoPin("RL1", circuit.Res, 12, 34)
	rl2 := b.twoPin("RL2", circuit.Res, 12, 34)
	rs := b.twoPin("RS", circuit.Res, 12, 26)
	mt1 := b.mos("MT1", circuit.NMOS, 34, 10)
	m3 := b.mos("M3", circuit.NMOS, 26, 12)
	m4 := b.mos("M4", circuit.NMOS, 26, 12)
	rl3 := b.twoPin("RL3", circuit.Res, 12, 34)
	rl4 := b.twoPin("RL4", circuit.Res, 12, 34)
	mt2 := b.mos("MT2", circuit.NMOS, 34, 10)
	mg1 := b.mos("MG1", circuit.NMOS, 20, 10)
	mg2 := b.mos("MG2", circuit.NMOS, 20, 10)
	mb := b.mos("MB", circuit.NMOS, 16, 10)
	rb := b.twoPin("RB", circuit.Res, 10, 24)
	c1 := b.twoPin("C1", circuit.Cap, 28, 26)
	c2 := b.twoPin("C2", circuit.Cap, 28, 26)
	mcm := b.mos("MCM", circuit.NMOS, 22, 10)

	b.net("vinp", b.pin(m1, "g"))
	b.net("vinn", b.pin(m2, "g"))
	a1 := b.net("a1", b.pin(m1, "d"), b.pin(rl1, "n"), b.pin(c1, "p"), b.pin(m3, "g"))
	a2 := b.net("a2", b.pin(m2, "d"), b.pin(rl2, "n"), b.pin(c2, "p"), b.pin(m4, "g"))
	b.net("deg", b.pin(m1, "s"), b.pin(m2, "s"), b.pin(rs, "p"), b.pin(rs, "n"), b.pin(mt1, "d"), b.pin(mg1, "d"))
	o1 := b.net("o1", b.pin(m3, "d"), b.pin(rl3, "n"), b.pin(c1, "n"))
	o2 := b.net("o2", b.pin(m4, "d"), b.pin(rl4, "n"), b.pin(c2, "n"))
	b.net("tail2", b.pin(m3, "s"), b.pin(m4, "s"), b.pin(mt2, "d"), b.pin(mg2, "d"))
	gctl := b.net("gctl", b.pin(mg1, "g"), b.pin(mg2, "g"), b.pin(mcm, "g"), b.pin(mcm, "d"))
	b.net("bias", b.pin(mt1, "g"), b.pin(mt2, "g"), b.pin(mb, "g"), b.pin(mb, "d"), b.pin(rb, "p"))
	b.net("vss", b.pin(mt1, "s"), b.pin(mt2, "s"), b.pin(mg1, "s"), b.pin(mg2, "s"),
		b.pin(mb, "s"), b.pin(mcm, "s"), b.pin(rb, "n"))
	b.net("vdd", b.pin(rl1, "p"), b.pin(rl2, "p"), b.pin(rl3, "p"), b.pin(rl4, "p"))
	b.n.Nets[b.netIdx["vss"]].Weight = 0.2
	b.n.Nets[b.netIdx["vdd"]].Weight = 0.2

	b.sym([][2]int{{m1, m2}, {rl1, rl2}}, mt1)
	b.sym([][2]int{{m3, m4}, {rl3, rl4}, {c1, c2}}, mt2)
	b.sym([][2]int{{mg1, mg2}})
	n := b.finish()

	metrics := []perfmodel.MetricDef{
		{
			Spec: perfmodel.Spec{Name: "Gain(dB)", Target: 20, HigherBetter: true, Weight: 0.25},
			Base: 21.5, CapSens: map[int]float64{a1: 0.004, a2: 0.004},
		},
		{
			Spec: perfmodel.Spec{Name: "BW(MHz)", Target: 600, HigherBetter: true, Weight: 0.25},
			Base: 520, CapSens: map[int]float64{a1: 0.035, a2: 0.035, o1: 0.03, o2: 0.03},
		},
		{
			Spec: perfmodel.Spec{Name: "THD(dB)", Target: 45, HigherBetter: true, Weight: 0.25},
			Base: 41, MismatchSens: 0.18, CapSens: map[int]float64{gctl: 0.01},
		},
		{
			Spec: perfmodel.Spec{Name: "Noise(nV/√Hz)", Target: 9, HigherBetter: false, Weight: 0.25},
			Base: 7.4, CapSens: map[int]float64{a1: 0.012, a2: 0.012}, MismatchSens: 0.08,
		},
	}
	return &Case{
		Netlist:   n,
		Perf:      model(n, metrics, [][2]int{{a1, a2}, {o1, o2}}),
		Threshold: 0.74,
	}
}

// SCF builds the switched-capacitor filter (35 devices): a 16-unit
// capacitor array placed as symmetric pairs, an opamp, MOS switches and
// clock buffers. The cap array dominates area, matching the paper's much
// larger SCF layout.
func SCF() *Case {
	b := newBuilder("SCF")
	// Opamp core.
	m1 := b.mos("M1", circuit.NMOS, 30, 13)
	m2 := b.mos("M2", circuit.NMOS, 30, 13)
	m3 := b.mos("M3", circuit.PMOS, 24, 11)
	m4 := b.mos("M4", circuit.PMOS, 24, 11)
	mt := b.mos("MT", circuit.NMOS, 36, 11)
	mo := b.mos("MO", circuit.NMOS, 26, 11)
	mob := b.mos("MOB", circuit.PMOS, 26, 11)
	// Unit capacitor array: 16 units as 8 symmetric pairs.
	caps := make([]int, 16)
	capDims := [][2]float64{{96, 80}, {80, 72}, {72, 88}, {64, 60},
		{88, 96}, {60, 72}, {84, 64}, {72, 80}}
	for i := range caps {
		d := capDims[i/2] // mirrored pair mates keep identical footprints
		caps[i] = b.twoPin(fmt.Sprintf("CU%d", i), circuit.Cap, d[0], d[1])
	}
	// Switches.
	sw := make([]int, 8)
	for i := range sw {
		sw[i] = b.mos(fmt.Sprintf("SW%d", i), circuit.NMOS, 14, 10)
	}
	// Clock buffers and bias.
	ck1 := b.mos("CK1", circuit.NMOS, 18, 10)
	ck2 := b.mos("CK2", circuit.PMOS, 18, 10)
	mb := b.mos("MB", circuit.NMOS, 16, 10)
	rb := b.twoPin("RB", circuit.Res, 10, 24)

	// Nets: input sampling branch, virtual grounds, output.
	b.net("vin", b.pin(sw[0], "s"), b.pin(sw[1], "s"))
	top := b.net("top", b.pin(sw[0], "d"), b.pin(caps[0], "p"), b.pin(caps[2], "p"),
		b.pin(caps[4], "p"), b.pin(caps[6], "p"), b.pin(sw[2], "s"))
	topb := b.net("topb", b.pin(sw[1], "d"), b.pin(caps[1], "p"), b.pin(caps[3], "p"),
		b.pin(caps[5], "p"), b.pin(caps[7], "p"), b.pin(sw[3], "s"))
	vg := b.net("vg", b.pin(sw[2], "d"), b.pin(m1, "g"), b.pin(caps[8], "p"), b.pin(caps[10], "p"))
	vgb := b.net("vgb", b.pin(sw[3], "d"), b.pin(m2, "g"), b.pin(caps[9], "p"), b.pin(caps[11], "p"))
	b.net("na", b.pin(m1, "d"), b.pin(m3, "d"), b.pin(m3, "g"), b.pin(m4, "g"))
	st1 := b.net("st1", b.pin(m2, "d"), b.pin(m4, "d"), b.pin(mo, "g"))
	out := b.net("out", b.pin(mo, "d"), b.pin(mob, "d"), b.pin(caps[8], "n"), b.pin(caps[9], "n"),
		b.pin(sw[4], "s"), b.pin(sw[5], "s"))
	b.net("fb", b.pin(sw[4], "d"), b.pin(caps[12], "p"), b.pin(caps[13], "p"))
	b.net("fbb", b.pin(sw[5], "d"), b.pin(caps[14], "p"), b.pin(caps[15], "p"))
	clk := b.net("clk", b.pin(ck1, "g"), b.pin(ck2, "g"),
		b.pin(sw[0], "g"), b.pin(sw[1], "g"), b.pin(sw[6], "g"), b.pin(sw[7], "g"))
	b.net("clkb", b.pin(ck1, "d"), b.pin(ck2, "d"),
		b.pin(sw[2], "g"), b.pin(sw[3], "g"), b.pin(sw[4], "g"), b.pin(sw[5], "g"))
	b.net("tail", b.pin(m1, "s"), b.pin(m2, "s"), b.pin(mt, "d"))
	b.net("bias", b.pin(mt, "g"), b.pin(mb, "g"), b.pin(mb, "d"), b.pin(rb, "p"), b.pin(mob, "g"))
	gnd := b.net("vss", b.pin(mt, "s"), b.pin(mo, "s"), b.pin(mb, "s"), b.pin(ck1, "s"), b.pin(rb, "n"),
		b.pin(caps[0], "n"), b.pin(caps[1], "n"), b.pin(caps[2], "n"), b.pin(caps[3], "n"),
		b.pin(caps[4], "n"), b.pin(caps[5], "n"), b.pin(caps[6], "n"), b.pin(caps[7], "n"),
		b.pin(caps[10], "n"), b.pin(caps[11], "n"), b.pin(caps[12], "n"), b.pin(caps[13], "n"),
		b.pin(caps[14], "n"), b.pin(caps[15], "n"), b.pin(sw[6], "s"), b.pin(sw[7], "s"),
		b.pin(sw[6], "d"), b.pin(sw[7], "d"))
	b.net("vdd", b.pin(m3, "s"), b.pin(m4, "s"), b.pin(mob, "s"), b.pin(ck2, "s"))
	b.n.Nets[gnd].Weight = 0.1
	b.n.Nets[b.netIdx["vdd"]].Weight = 0.2
	for _, crit := range []int{top, topb, vg, vgb} {
		b.n.Nets[crit].Weight = 0.45
	}

	// Cap array symmetry: 8 mirrored pairs in one group.
	var capPairs [][2]int
	for i := 0; i < 16; i += 2 {
		capPairs = append(capPairs, [2]int{caps[i], caps[i+1]})
	}
	b.sym(capPairs)
	b.sym([][2]int{{m1, m2}, {m3, m4}}, mt)
	b.sym([][2]int{{sw[0], sw[1]}, {sw[2], sw[3]}, {sw[4], sw[5]}})
	n := b.finish()

	metrics := []perfmodel.MetricDef{
		{
			Spec: perfmodel.Spec{Name: "CutoffAcc(%)", Target: 97, HigherBetter: true, Weight: 0.3},
			Base: 95, CapSens: map[int]float64{top: 0.01, topb: 0.01}, MismatchSens: 0.015,
		},
		{
			Spec: perfmodel.Spec{Name: "THD(dB)", Target: 60, HigherBetter: true, Weight: 0.25},
			Base: 55, MismatchSens: 0.02, CapSens: map[int]float64{vg: 0.008, vgb: 0.008},
		},
		{
			Spec: perfmodel.Spec{Name: "Settling(ns)", Target: 40, HigherBetter: false, Weight: 0.25},
			Base: 31, CapSens: map[int]float64{out: 0.008, st1: 0.01},
		},
		{
			Spec: perfmodel.Spec{Name: "Power(µW)", Target: 260, HigherBetter: false, Weight: 0.2},
			Base: 228, CapSens: map[int]float64{clk: 0.006},
		},
	}
	return &Case{
		Netlist:   n,
		Perf:      model(n, metrics, [][2]int{{top, topb}, {vg, vgb}}),
		Threshold: 0.77,
	}
}
