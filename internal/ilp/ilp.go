// Package ilp solves small mixed-integer linear programs by LP-based branch
// and bound over package lp. It exists for the paper's detailed-placement
// formulation (Eq. 4a–4j), where the integer variables are the binary
// device-flipping decisions; analog problem sizes keep the tree small, and
// a node cap bounds worst-case runtime the way practical ILP time limits do.
package ilp

import (
	"errors"
	"math"

	"repro/internal/lp"
	"repro/internal/obs"
)

// Problem couples an LP with integrality requirements.
type Problem struct {
	LP   *lp.Problem
	Ints []int // variable indices that must take integer values
}

// Options tunes the branch-and-bound search.
type Options struct {
	MaxNodes int     // node cap (default 2000)
	Tol      float64 // integrality tolerance (default 1e-6)

	// Incumbent optionally seeds the search with a known feasible solution
	// (its objective prunes the tree immediately). IncumbentObj must be the
	// exact objective of Incumbent.
	Incumbent    []float64
	IncumbentObj float64

	// Tracer, when non-nil, emits one "ilp" event per run (root problem
	// size, branch-and-bound nodes, best objective, status) plus one
	// "incumbent"-labeled event per improving integer-feasible point, and
	// bumps the ilp.solves/ilp.nodes counters.
	Tracer *obs.Tracer
	// Label tags the run's telemetry events with the caller's purpose.
	Label string
}

// Status reports the outcome of a branch-and-bound run.
type Status int

// Solve outcomes.
const (
	// Optimal: the tree was fully explored; the returned solution is a
	// global optimum.
	Optimal Status = iota
	// Feasible: the node cap was hit; the returned solution is the best
	// integer-feasible point found, with no optimality guarantee.
	Feasible
	// Infeasible: no integer-feasible point exists.
	Infeasible
)

func (s Status) String() string {
	switch s {
	case Optimal:
		return "optimal"
	case Feasible:
		return "feasible"
	default:
		return "infeasible"
	}
}

// Solution is the result of a branch-and-bound run.
type Solution struct {
	Status Status
	X      []float64
	Obj    float64
	Nodes  int // LP nodes solved
}

// ErrNoSolution is returned when the node cap is exhausted before any
// integer-feasible point is found.
var ErrNoSolution = errors.New("ilp: node limit reached without a feasible solution")

// node is a set of branching bounds on integer variables.
type node struct {
	lb map[int]float64
	ub map[int]float64
}

func (nd *node) child(j int, lb, ub float64, isLB bool) *node {
	c := &node{lb: make(map[int]float64, len(nd.lb)+1), ub: make(map[int]float64, len(nd.ub)+1)}
	for k, v := range nd.lb {
		c.lb[k] = v
	}
	for k, v := range nd.ub {
		c.ub[k] = v
	}
	if isLB {
		if old, ok := c.lb[j]; !ok || lb > old {
			c.lb[j] = lb
		}
	} else {
		if old, ok := c.ub[j]; !ok || ub < old {
			c.ub[j] = ub
		}
	}
	return c
}

// Solve runs depth-first branch and bound. A non-nil error indicates an LP
// solver failure or an exhausted node cap with no feasible point; Status
// distinguishes proven optima from cap-limited bests.
func Solve(p *Problem, opt Options) (*Solution, error) {
	if opt.MaxNodes == 0 {
		opt.MaxNodes = 2000
	}
	if opt.Tol == 0 {
		opt.Tol = 1e-6
	}
	bestObj := math.Inf(1)
	var bestX []float64
	if opt.Incumbent != nil {
		bestObj = opt.IncumbentObj
		bestX = append([]float64(nil), opt.Incumbent...)
	}

	stack := []*node{{lb: map[int]float64{}, ub: map[int]float64{}}}
	nodes := 0
	capped := false

	for len(stack) > 0 {
		if nodes >= opt.MaxNodes {
			capped = true
			break
		}
		nd := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		nodes++

		sub := p.LP.Clone()
		for j, v := range nd.lb {
			sub.AddConstraint([]lp.Term{{Var: j, Coeff: 1}}, lp.GE, v)
		}
		for j, v := range nd.ub {
			sub.AddConstraint([]lp.Term{{Var: j, Coeff: 1}}, lp.LE, v)
		}
		sol, err := lp.Solve(sub)
		if err != nil {
			return nil, err
		}
		if sol.Status != lp.Optimal {
			continue // infeasible (or unbounded relaxation: nothing to explore)
		}
		if sol.Obj >= bestObj-1e-9 {
			continue // bound
		}
		// Find the most fractional integer variable.
		branchVar := -1
		worstFrac := opt.Tol
		for _, j := range p.Ints {
			f := sol.X[j] - math.Floor(sol.X[j])
			frac := math.Min(f, 1-f)
			if frac > worstFrac {
				worstFrac = frac
				branchVar = j
			}
		}
		if branchVar < 0 {
			// Integer feasible: new incumbent.
			bestObj = sol.Obj
			bestX = append([]float64(nil), sol.X...)
			if opt.Tracer != nil {
				opt.Tracer.LPEvent(obs.LPRecord{
					Solver: "ilp", Label: "incumbent",
					Rows: p.LP.NumRows(), Cols: p.LP.NumVars(),
					Nodes: nodes, Obj: bestObj, Status: "feasible",
				})
			}
			continue
		}
		v := sol.X[branchVar]
		down := nd.child(branchVar, 0, math.Floor(v), false)
		up := nd.child(branchVar, math.Ceil(v), 0, true)
		// Dive toward the nearer integer first (pushed last = popped first).
		if v-math.Floor(v) < 0.5 {
			stack = append(stack, up, down)
		} else {
			stack = append(stack, down, up)
		}
	}

	emit := func(s *Solution) {
		if opt.Tracer == nil {
			return
		}
		opt.Tracer.LPEvent(obs.LPRecord{
			Solver: "ilp", Label: opt.Label,
			Rows: p.LP.NumRows(), Cols: p.LP.NumVars(),
			Nodes: s.Nodes, Obj: s.Obj, Status: s.Status.String(),
		})
		opt.Tracer.Count("ilp.solves", 1)
		opt.Tracer.Count("ilp.nodes", float64(s.Nodes))
	}
	if bestX == nil {
		s := &Solution{Status: Infeasible, Nodes: nodes}
		emit(s)
		if capped {
			return s, ErrNoSolution
		}
		return s, nil
	}
	st := Optimal
	if capped {
		st = Feasible
	}
	s := &Solution{Status: st, X: bestX, Obj: bestObj, Nodes: nodes}
	emit(s)
	return s, nil
}
