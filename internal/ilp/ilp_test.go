package ilp

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/lp"
)

func TestKnapsack(t *testing.T) {
	// max 8a + 11b + 6c + 4d s.t. 5a + 7b + 4c + 3d <= 14, binary.
	// Optimum: a=0? Known answer: {b,c,d}: 11+6+4=21, weight 14. vs {a,b}: 19.
	p := lp.NewProblem(4)
	vals := []float64{8, 11, 6, 4}
	wts := []float64{5, 7, 4, 3}
	var cap []lp.Term
	for j := 0; j < 4; j++ {
		p.SetObj(j, -vals[j])
		cap = append(cap, lp.Term{Var: j, Coeff: wts[j]})
		p.AddConstraint([]lp.Term{{Var: j, Coeff: 1}}, lp.LE, 1)
	}
	p.AddConstraint(cap, lp.LE, 14)
	sol, err := Solve(&Problem{LP: p, Ints: []int{0, 1, 2, 3}}, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if sol.Status != Optimal {
		t.Fatalf("status = %v", sol.Status)
	}
	if math.Abs(sol.Obj+21) > 1e-6 {
		t.Errorf("obj = %g, want -21 (x=%v)", sol.Obj, sol.X)
	}
	want := []float64{0, 1, 1, 1}
	for j := range want {
		if math.Abs(sol.X[j]-want[j]) > 1e-6 {
			t.Errorf("x[%d] = %g, want %g", j, sol.X[j], want[j])
		}
	}
}

func TestIntegerRounding(t *testing.T) {
	// max x s.t. 2x <= 7, x integer -> x = 3 (LP gives 3.5).
	p := lp.NewProblem(1)
	p.SetObj(0, -1)
	p.AddConstraint([]lp.Term{{Var: 0, Coeff: 2}}, lp.LE, 7)
	sol, err := Solve(&Problem{LP: p, Ints: []int{0}}, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(sol.X[0]-3) > 1e-6 {
		t.Errorf("x = %g, want 3", sol.X[0])
	}
}

func TestMixedIntegerContinuous(t *testing.T) {
	// min -x - 10y, y binary, x <= 2.5 continuous, x + y <= 3.
	// Best: y=1, x=2 -> -22.
	p := lp.NewProblem(2)
	p.SetObj(0, -1)
	p.SetObj(1, -10)
	p.AddConstraint([]lp.Term{{Var: 0, Coeff: 1}}, lp.LE, 2.5)
	p.AddConstraint([]lp.Term{{Var: 1, Coeff: 1}}, lp.LE, 1)
	p.AddConstraint([]lp.Term{{Var: 0, Coeff: 1}, {Var: 1, Coeff: 1}}, lp.LE, 3)
	sol, err := Solve(&Problem{LP: p, Ints: []int{1}}, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(sol.Obj+12) > 1e-6 {
		t.Errorf("obj = %g, want -12 (x=%v)", sol.Obj, sol.X)
	}
	if math.Abs(sol.X[1]-1) > 1e-6 || math.Abs(sol.X[0]-2) > 1e-6 {
		t.Errorf("x = %v, want (2, 1)", sol.X)
	}
}

func TestInfeasibleInteger(t *testing.T) {
	// 0.4 <= x <= 0.6 has no integer point.
	p := lp.NewProblem(1)
	p.SetObj(0, 1)
	p.AddConstraint([]lp.Term{{Var: 0, Coeff: 1}}, lp.GE, 0.4)
	p.AddConstraint([]lp.Term{{Var: 0, Coeff: 1}}, lp.LE, 0.6)
	sol, err := Solve(&Problem{LP: p, Ints: []int{0}}, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if sol.Status != Infeasible {
		t.Errorf("status = %v, want infeasible", sol.Status)
	}
}

func TestIncumbentPruning(t *testing.T) {
	// Seeding the optimal incumbent should keep it when the tree is cut off.
	p := lp.NewProblem(1)
	p.SetObj(0, -1)
	p.AddConstraint([]lp.Term{{Var: 0, Coeff: 2}}, lp.LE, 7)
	sol, err := Solve(&Problem{LP: p, Ints: []int{0}}, Options{
		Incumbent:    []float64{3},
		IncumbentObj: -3,
	})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(sol.Obj+3) > 1e-9 || math.Abs(sol.X[0]-3) > 1e-9 {
		t.Errorf("sol = %v obj %g, want incumbent kept", sol.X, sol.Obj)
	}
}

func TestNodeCapReturnsBestEffort(t *testing.T) {
	// A problem needing branching, capped to 1 node, with an incumbent:
	// should return Feasible with the incumbent.
	p := lp.NewProblem(1)
	p.SetObj(0, -1)
	p.AddConstraint([]lp.Term{{Var: 0, Coeff: 2}}, lp.LE, 7)
	sol, err := Solve(&Problem{LP: p, Ints: []int{0}}, Options{
		MaxNodes:     1,
		Incumbent:    []float64{2},
		IncumbentObj: -2,
	})
	if err != nil {
		t.Fatal(err)
	}
	if sol.Status != Feasible {
		t.Errorf("status = %v, want feasible (capped)", sol.Status)
	}
	if math.Abs(sol.X[0]-2) > 1e-9 {
		t.Errorf("x = %v, want incumbent", sol.X)
	}
}

func TestNodeCapWithoutIncumbentErrors(t *testing.T) {
	p := lp.NewProblem(2)
	p.SetObj(0, -1)
	p.SetObj(1, -1)
	p.AddConstraint([]lp.Term{{Var: 0, Coeff: 2}, {Var: 1, Coeff: 3}}, lp.LE, 7.5)
	p.AddConstraint([]lp.Term{{Var: 0, Coeff: 3}, {Var: 1, Coeff: 2}}, lp.LE, 7.5)
	_, err := Solve(&Problem{LP: p, Ints: []int{0, 1}}, Options{MaxNodes: 1})
	if err == nil {
		t.Error("want ErrNoSolution when capped with no feasible point found")
	}
}

// TestRandomAgainstBruteForce compares branch and bound with exhaustive
// enumeration on random binary problems.
func TestRandomAgainstBruteForce(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for trial := 0; trial < 20; trial++ {
		n := 2 + rng.Intn(5) // up to 6 binaries
		obj := make([]float64, n)
		w := make([]float64, n)
		for j := range obj {
			obj[j] = rng.NormFloat64()
			w[j] = rng.Float64() * 3
		}
		budget := rng.Float64() * 6

		p := lp.NewProblem(n)
		var capRow []lp.Term
		ints := make([]int, n)
		for j := 0; j < n; j++ {
			p.SetObj(j, obj[j])
			p.AddConstraint([]lp.Term{{Var: j, Coeff: 1}}, lp.LE, 1)
			capRow = append(capRow, lp.Term{Var: j, Coeff: w[j]})
			ints[j] = j
		}
		p.AddConstraint(capRow, lp.LE, budget)

		sol, err := Solve(&Problem{LP: p, Ints: ints}, Options{})
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		// Brute force.
		best := math.Inf(1)
		for mask := 0; mask < 1<<n; mask++ {
			var tot, wt float64
			for j := 0; j < n; j++ {
				if mask&(1<<j) != 0 {
					tot += obj[j]
					wt += w[j]
				}
			}
			if wt <= budget && tot < best {
				best = tot
			}
		}
		if sol.Status != Optimal || math.Abs(sol.Obj-best) > 1e-6 {
			t.Errorf("trial %d: B&B obj %g (status %v), brute force %g", trial, sol.Obj, sol.Status, best)
		}
	}
}

func TestStatusString(t *testing.T) {
	if Optimal.String() != "optimal" || Feasible.String() != "feasible" || Infeasible.String() != "infeasible" {
		t.Error("Status.String wrong")
	}
}
