package experiments

import (
	"fmt"
	"strings"
	"time"

	"repro/internal/core"
	"repro/internal/detailed"
	"repro/internal/eplacea"
	"repro/internal/prevwork"
	"repro/internal/testcircuits"
)

// Table1Row compares soft vs. hard symmetry constraints in global
// placement (paper Table I), measured after detailed placement.
type Table1Row struct {
	Design     string
	Soft, Hard MethodMetrics
}

// Table1 runs the soft/hard symmetry ablation on the paper's three
// circuits.
func Table1(cfg Config) ([]Table1Row, error) {
	var rows []Table1Row
	for _, name := range []string{"CC-OTA", "Comp2", "VCO2"} {
		c, err := testcircuits.ByName(name)
		if err != nil {
			return nil, err
		}
		row := Table1Row{Design: name}
		for _, hard := range []bool{false, true} {
			res, err := core.PlaceCtx(cfg.ctx(), c.Netlist, core.MethodEPlaceA, core.Options{Tracer: cfg.Tracer,
				Seed:      cfg.Seed,
				Portfolio: 1,
				GP:        &eplacea.Options{Seed: cfg.Seed, HardSym: hard},
			})
			if err != nil {
				return nil, err
			}
			if hard {
				row.Hard = metricsOf(res)
			} else {
				row.Soft = metricsOf(res)
			}
		}
		rows = append(rows, row)
	}
	return rows, nil
}

// FormatTable1 renders Table I in the paper's layout.
func FormatTable1(rows []Table1Row) string {
	var b strings.Builder
	fmt.Fprintf(&b, "TABLE I: Soft vs. hard symmetry constraints in GP (post-DP results)\n")
	fmt.Fprintf(&b, "%-8s | %9s %9s | %9s %9s | %8s %8s\n",
		"Design", "AreaSoft", "AreaHard", "HPWLSoft", "HPWLHard", "tSoft", "tHard")
	for _, r := range rows {
		fmt.Fprintf(&b, "%-8s | %9.1f %9.1f | %9.1f %9.1f | %7.2fs %7.2fs\n",
			r.Design, r.Soft.AreaUM2, r.Hard.AreaUM2,
			r.Soft.HPWLUM, r.Hard.HPWLUM, r.Soft.RuntimeS, r.Hard.RuntimeS)
	}
	return b.String()
}

// Fig2Row compares the full ePlace-A objective against dropping the area
// term (paper Fig. 2), measured post detailed placement.
type Fig2Row struct {
	Design          string
	With, Without   MethodMetrics
	AreaIncreasePct float64
	HPWLIncreasePct float64
}

// Fig2 runs the area-term ablation.
func Fig2(cfg Config) ([]Fig2Row, error) {
	var rows []Fig2Row
	for _, name := range []string{"CC-OTA", "Comp2", "VCO2"} {
		c, err := testcircuits.ByName(name)
		if err != nil {
			return nil, err
		}
		row := Fig2Row{Design: name}
		for _, noArea := range []bool{false, true} {
			res, err := core.PlaceCtx(cfg.ctx(), c.Netlist, core.MethodEPlaceA, core.Options{Tracer: cfg.Tracer,
				Seed:      cfg.Seed,
				Portfolio: 1,
				GP:        &eplacea.Options{Seed: cfg.Seed, NoArea: noArea},
			})
			if err != nil {
				return nil, err
			}
			if noArea {
				row.Without = metricsOf(res)
			} else {
				row.With = metricsOf(res)
			}
		}
		row.AreaIncreasePct = 100 * (row.Without.AreaUM2 - row.With.AreaUM2) / row.With.AreaUM2
		row.HPWLIncreasePct = 100 * (row.Without.HPWLUM - row.With.HPWLUM) / row.With.HPWLUM
		rows = append(rows, row)
	}
	return rows, nil
}

// FormatFig2 renders the area-term ablation.
func FormatFig2(rows []Fig2Row) string {
	var b strings.Builder
	fmt.Fprintf(&b, "Fig. 2: Area and HPWL with vs. without the area term\n")
	fmt.Fprintf(&b, "%-8s | %9s %9s %7s | %9s %9s %7s\n",
		"Design", "AreaWith", "AreaW/o", "Δ%", "HPWLWith", "HPWLW/o", "Δ%")
	for _, r := range rows {
		fmt.Fprintf(&b, "%-8s | %9.1f %9.1f %+6.1f%% | %9.1f %9.1f %+6.1f%%\n",
			r.Design, r.With.AreaUM2, r.Without.AreaUM2, r.AreaIncreasePct,
			r.With.HPWLUM, r.Without.HPWLUM, r.HPWLIncreasePct)
	}
	return b.String()
}

// Table3Row is the main conventional comparison (paper Table III).
type Table3Row struct {
	Design            string
	SA, Prev, EPlaceA MethodMetrics
}

// Table3 runs SA, the previous analytical work, and ePlace-A on every
// benchmark with the conventional (performance-oblivious) formulation.
func Table3(cfg Config) ([]Table3Row, error) {
	var rows []Table3Row
	for _, c := range testcircuits.All() {
		row := Table3Row{Design: c.Netlist.Name}
		for _, m := range []core.Method{core.MethodSA, core.MethodPrev, core.MethodEPlaceA} {
			opt := core.Options{Tracer: cfg.Tracer, Seed: cfg.Seed, Portfolio: cfg.portfolio()}
			if m == core.MethodSA {
				opt.SA = cfg.saOptions(cfg.Seed)
			}
			res, err := core.PlaceCtx(cfg.ctx(), c.Netlist, m, opt)
			if err != nil {
				return nil, fmt.Errorf("table3 %s/%v: %w", c.Netlist.Name, m, err)
			}
			mm := metricsOf(res)
			switch m {
			case core.MethodSA:
				row.SA = mm
			case core.MethodPrev:
				row.Prev = mm
			default:
				row.EPlaceA = mm
			}
		}
		rows = append(rows, row)
	}
	return rows, nil
}

// Table3Averages returns per-method averages normalized to ePlace-A
// (the paper's "Avg. (X)" row).
func Table3Averages(rows []Table3Row) (saArea, saHPWL, saRT, pvArea, pvHPWL, pvRT float64) {
	n := float64(len(rows))
	for _, r := range rows {
		saArea += r.SA.AreaUM2 / r.EPlaceA.AreaUM2
		saHPWL += r.SA.HPWLUM / r.EPlaceA.HPWLUM
		saRT += r.SA.RuntimeS / r.EPlaceA.RuntimeS
		pvArea += r.Prev.AreaUM2 / r.EPlaceA.AreaUM2
		pvHPWL += r.Prev.HPWLUM / r.EPlaceA.HPWLUM
		pvRT += r.Prev.RuntimeS / r.EPlaceA.RuntimeS
	}
	return saArea / n, saHPWL / n, saRT / n, pvArea / n, pvHPWL / n, pvRT / n
}

// FormatTable3 renders Table III in the paper's layout.
func FormatTable3(rows []Table3Row) string {
	var b strings.Builder
	fmt.Fprintf(&b, "TABLE III: Main comparison, conventional formulation\n")
	fmt.Fprintf(&b, "%-8s | %8s %8s %8s | %8s %8s %8s | %8s %8s %8s\n",
		"Design", "SA:Area", "HPWL", "Time(s)", "Pv:Area", "HPWL", "Time(s)", "eA:Area", "HPWL", "Time(s)")
	for _, r := range rows {
		fmt.Fprintf(&b, "%-8s | %8.1f %8.1f %8.2f | %8.1f %8.1f %8.2f | %8.1f %8.1f %8.2f\n",
			r.Design,
			r.SA.AreaUM2, r.SA.HPWLUM, r.SA.RuntimeS,
			r.Prev.AreaUM2, r.Prev.HPWLUM, r.Prev.RuntimeS,
			r.EPlaceA.AreaUM2, r.EPlaceA.HPWLUM, r.EPlaceA.RuntimeS)
	}
	sa, sh, st, pa, ph, pt := Table3Averages(rows)
	fmt.Fprintf(&b, "%-8s | %8.2f %8.2f %8.2f | %8.2f %8.2f %8.2f | %8.2f %8.2f %8.2f\n",
		"Avg.(X)", sa, sh, st, pa, ph, pt, 1.0, 1.0, 1.0)
	return b.String()
}

// Table4Row compares the two detailed-placement back-ends from identical
// global-placement solutions (paper Table IV). Runtime covers detailed
// placement only.
type Table4Row struct {
	Design        string
	Prev, EPlaceA MethodMetrics
}

// Table4 runs the detailed-placement-only comparison on VCO1, Comp1, SCF.
func Table4(cfg Config) ([]Table4Row, error) {
	var rows []Table4Row
	for _, name := range []string{"VCO1", "Comp1", "SCF"} {
		c, err := testcircuits.ByName(name)
		if err != nil {
			return nil, err
		}
		gp, err := eplacea.Place(c.Netlist, eplacea.Options{Seed: cfg.Seed})
		if err != nil {
			return nil, err
		}
		row := Table4Row{Design: name}
		for _, mode := range []detailed.Mode{detailed.ModeTwoStageLP, detailed.ModeIntegratedILP} {
			start := time.Now()
			dp, err := detailed.Place(c.Netlist, gp.Placement, detailed.Options{Mode: mode})
			if err != nil {
				return nil, err
			}
			mm := MethodMetrics{
				AreaUM2:  dp.Area / 100,
				HPWLUM:   dp.HPWL / 10,
				RuntimeS: time.Since(start).Seconds(),
				Legal:    c.Netlist.CheckLegal(dp.Placement, 1e-6).OK(),
			}
			if mode == detailed.ModeTwoStageLP {
				row.Prev = mm
			} else {
				row.EPlaceA = mm
			}
		}
		rows = append(rows, row)
	}
	return rows, nil
}

// FormatTable4 renders Table IV.
func FormatTable4(rows []Table4Row) string {
	var b strings.Builder
	fmt.Fprintf(&b, "TABLE IV: Detailed placement from identical GP solutions (runtime is DP only)\n")
	fmt.Fprintf(&b, "%-8s | %8s %8s %8s | %8s %8s %8s\n",
		"Design", "Pv:Area", "HPWL", "Time(s)", "eA:Area", "HPWL", "Time(s)")
	for _, r := range rows {
		fmt.Fprintf(&b, "%-8s | %8.1f %8.1f %8.2f | %8.1f %8.1f %8.2f\n",
			r.Design, r.Prev.AreaUM2, r.Prev.HPWLUM, r.Prev.RuntimeS,
			r.EPlaceA.AreaUM2, r.EPlaceA.HPWLUM, r.EPlaceA.RuntimeS)
	}
	return b.String()
}

// SweepPoint is one (area, HPWL) or (area, FOM) outcome of a parameter
// sweep.
type SweepPoint struct {
	Method  string
	Param   string
	AreaUM2 float64
	HPWLUM  float64
	FOM     float64
}

// Fig5 sweeps each method's tradeoff parameter on CM-OTA1 and returns the
// resulting HPWL–area points (paper Fig. 5).
func Fig5(cfg Config) ([]SweepPoint, error) {
	c, err := testcircuits.ByName("CM-OTA1")
	if err != nil {
		return nil, err
	}
	var pts []SweepPoint
	saWeights := []float64{0.2, 0.35, 0.5, 0.65, 0.8}
	if cfg.Quick {
		saWeights = []float64{0.3, 0.7}
	}
	for _, w := range saWeights {
		res, err := core.PlaceCtx(cfg.ctx(), c.Netlist, core.MethodSA, core.Options{Tracer: cfg.Tracer,
			Seed: cfg.Seed, AreaWeight: w, SA: cfg.saOptions(cfg.Seed),
		})
		if err != nil {
			return nil, err
		}
		pts = append(pts, SweepPoint{Method: "SA", Param: fmt.Sprintf("w=%.2f", w),
			AreaUM2: res.AreaUM2, HPWLUM: res.HPWLUM})
	}
	prevUtils := []float64{0.35, 0.5, 0.65, 0.8}
	if cfg.Quick {
		prevUtils = []float64{0.5, 0.8}
	}
	for _, u := range prevUtils {
		res, err := core.PlaceCtx(cfg.ctx(), c.Netlist, core.MethodPrev, core.Options{Tracer: cfg.Tracer,
			Seed: cfg.Seed, Prev: &prevwork.Options{Seed: cfg.Seed, Util: u},
		})
		if err != nil {
			return nil, err
		}
		pts = append(pts, SweepPoint{Method: "Prev", Param: fmt.Sprintf("util=%.2f", u),
			AreaUM2: res.AreaUM2, HPWLUM: res.HPWLUM})
	}
	areaWeights := []float64{0.1, 0.25, 0.45, 0.7, 1.0}
	if cfg.Quick {
		areaWeights = []float64{0.2, 0.8}
	}
	for _, w := range areaWeights {
		res, err := core.PlaceCtx(cfg.ctx(), c.Netlist, core.MethodEPlaceA, core.Options{Tracer: cfg.Tracer,
			Seed: cfg.Seed, AreaWeight: w, Portfolio: cfg.portfolio(),
		})
		if err != nil {
			return nil, err
		}
		pts = append(pts, SweepPoint{Method: "ePlace-A", Param: fmt.Sprintf("eta=%.2f", w),
			AreaUM2: res.AreaUM2, HPWLUM: res.HPWLUM})
	}
	return pts, nil
}

// FormatSweep renders sweep points as a table (area vs. HPWL or FOM).
func FormatSweep(title string, pts []SweepPoint, fom bool) string {
	var b strings.Builder
	fmt.Fprintln(&b, title)
	if fom {
		fmt.Fprintf(&b, "%-10s %-12s %9s %7s\n", "Method", "Param", "Area", "FOM")
	} else {
		fmt.Fprintf(&b, "%-10s %-12s %9s %9s\n", "Method", "Param", "Area", "HPWL")
	}
	for _, p := range pts {
		if fom {
			fmt.Fprintf(&b, "%-10s %-12s %9.1f %7.3f\n", p.Method, p.Param, p.AreaUM2, p.FOM)
		} else {
			fmt.Fprintf(&b, "%-10s %-12s %9.1f %9.1f\n", p.Method, p.Param, p.AreaUM2, p.HPWLUM)
		}
	}
	return b.String()
}
