package experiments

import (
	"fmt"
	"strings"

	"repro/internal/bench"
	"repro/internal/gen"
)

// ScalingRow is one method's QoR/runtime on one synthetic suite instance.
// The hand-built paper circuits top out at ~30 devices, so this experiment
// probes the regime the paper's tables cannot: how each method's runtime
// and quality scale with device count.
type ScalingRow struct {
	Case      string
	Devices   int
	Method    string
	HPWLUM    float64
	AreaUM2   float64
	RuntimeMS float64
	Legal     bool
}

// Scaling benchmarks every placement method over a generated size sweep
// (the "quick" suite in quick mode, "std" otherwise) via the bench
// harness, one timed repetition per cell.
func Scaling(cfg Config) ([]ScalingRow, error) {
	suite := "std"
	if cfg.Quick {
		suite = "quick"
	}
	genCases, err := gen.Suite(suite, cfg.Seed)
	if err != nil {
		return nil, err
	}
	var cases []bench.CaseInput
	for _, c := range genCases {
		n, err := gen.Generate(c.Params)
		if err != nil {
			return nil, fmt.Errorf("generating %s: %w", c.Name, err)
		}
		cases = append(cases, bench.CaseInput{Name: c.Name, Netlist: n})
	}
	rep, err := bench.Run(cases, bench.Options{
		Reps:   1,
		Warmup: -1, // single repetition per cell; warmups would double the sweep
		Seed:   cfg.Seed,
		Quick:  cfg.Quick,
		Ctx:    cfg.Ctx,
	})
	if err != nil {
		return nil, err
	}
	rows := make([]ScalingRow, len(rep.Results))
	for i, r := range rep.Results {
		rows[i] = ScalingRow{
			Case:      r.Case,
			Devices:   r.Devices,
			Method:    r.Method,
			HPWLUM:    r.QoR.HPWLUM,
			AreaUM2:   r.QoR.AreaUM2,
			RuntimeMS: r.Runtime.MedianMS,
			Legal:     r.QoR.Legal,
		}
	}
	return rows, nil
}

// FormatScaling renders the size sweep grouped by instance.
func FormatScaling(rows []ScalingRow) string {
	var b strings.Builder
	fmt.Fprintf(&b, "Scaling: QoR and runtime vs. synthetic circuit size\n")
	fmt.Fprintf(&b, "%-12s %8s | %-9s %9s %10s %10s %6s\n",
		"Design", "Devices", "Method", "HPWL(µm)", "Area(µm²)", "t(ms)", "legal")
	for _, r := range rows {
		fmt.Fprintf(&b, "%-12s %8d | %-9s %9.1f %10.1f %10.1f %6v\n",
			r.Case, r.Devices, r.Method, r.HPWLUM, r.AreaUM2, r.RuntimeMS, r.Legal)
	}
	return b.String()
}
