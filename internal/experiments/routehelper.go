package experiments

import (
	"repro/internal/circuit"
	"repro/internal/core"
	"repro/internal/route"
	"repro/internal/testcircuits"
)

// routePlacement globally routes a placement result and returns its routed
// wirelength alongside the HPWL.
func routePlacement(cfg Config, c *testcircuits.Case, res *core.Result) (*RoutedRow, error) {
	rr, err := route.Route(c.Netlist, res.Placement, route.Options{Tracer: cfg.Tracer})
	if err != nil {
		return nil, err
	}
	// Compare against the unweighted HPWL sum — routed length is a
	// physical quantity, so net weights must not skew the comparison.
	var hp float64
	for e := range c.Netlist.Nets {
		hp += c.Netlist.NetHPWL(res.Placement, e)
	}
	return &RoutedRow{
		HPWLUM:  circuit.LenUM(hp),
		RouteUM: circuit.LenUM(rr.TotalLength),
		MaxUse:  rr.MaxUsage,
	}, nil
}
