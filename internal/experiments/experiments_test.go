package experiments

import (
	"strings"
	"testing"
)

func quickCfg() Config { return Config{Seed: 7, Quick: true} }

func TestTable1ShapesAndFormat(t *testing.T) {
	rows, err := Table1(quickCfg())
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 3 {
		t.Fatalf("want 3 rows, got %d", len(rows))
	}
	for _, r := range rows {
		if !r.Soft.Legal || !r.Hard.Legal {
			t.Errorf("%s: illegal placement in Table I run", r.Design)
		}
		if r.Soft.AreaUM2 <= 0 || r.Hard.AreaUM2 <= 0 {
			t.Errorf("%s: degenerate areas", r.Design)
		}
	}
	out := FormatTable1(rows)
	if !strings.Contains(out, "CC-OTA") || !strings.Contains(out, "TABLE I") {
		t.Errorf("format missing expected content:\n%s", out)
	}
}

func TestFig2Shapes(t *testing.T) {
	rows, err := Fig2(quickCfg())
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 3 {
		t.Fatalf("want 3 rows, got %d", len(rows))
	}
	// The area term should help (reduce area) on at least two of the three
	// circuits — the paper's direction.
	helped := 0
	for _, r := range rows {
		if r.AreaIncreasePct > 0 {
			helped++
		}
	}
	if helped < 2 {
		t.Errorf("area term helped on only %d/3 circuits", helped)
	}
	if s := FormatFig2(rows); !strings.Contains(s, "area term") {
		t.Error("format missing title")
	}
}

func TestTable3Shapes(t *testing.T) {
	rows, err := Table3(quickCfg())
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 10 {
		t.Fatalf("want 10 rows, got %d", len(rows))
	}
	for _, r := range rows {
		for name, m := range map[string]MethodMetrics{"SA": r.SA, "prev": r.Prev, "ePlace-A": r.EPlaceA} {
			if !m.Legal {
				t.Errorf("%s/%s: illegal placement", r.Design, name)
			}
			if m.AreaUM2 <= 0 || m.HPWLUM <= 0 || m.RuntimeS <= 0 {
				t.Errorf("%s/%s: degenerate metrics %+v", r.Design, name, m)
			}
		}
	}
	// The paper's key claim about [11]: worse area than ePlace-A on average.
	_, _, _, pvArea, _, _ := Table3Averages(rows)
	if pvArea < 1.0 {
		t.Errorf("prev-work avg area ratio %.2f < 1.0; expected worse than ePlace-A", pvArea)
	}
	if s := FormatTable3(rows); !strings.Contains(s, "Avg.(X)") {
		t.Error("format missing averages row")
	}
}

func TestTable4Shapes(t *testing.T) {
	rows, err := Table4(quickCfg())
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 3 {
		t.Fatalf("want 3 rows, got %d", len(rows))
	}
	for _, r := range rows {
		if !r.Prev.Legal || !r.EPlaceA.Legal {
			t.Errorf("%s: illegal DP result", r.Design)
		}
		// Table IV's claim: from the same GP, the integrated ILP with
		// flipping achieves HPWL no worse than the two-stage LP.
		if r.EPlaceA.HPWLUM > r.Prev.HPWLUM*1.02 {
			t.Errorf("%s: integrated DP HPWL %.1f worse than two-stage %.1f",
				r.Design, r.EPlaceA.HPWLUM, r.Prev.HPWLUM)
		}
	}
}

func TestFig5Shapes(t *testing.T) {
	pts, err := Fig5(quickCfg())
	if err != nil {
		t.Fatal(err)
	}
	methods := map[string]int{}
	for _, p := range pts {
		methods[p.Method]++
		if p.AreaUM2 <= 0 || p.HPWLUM <= 0 {
			t.Errorf("degenerate sweep point %+v", p)
		}
	}
	for _, m := range []string{"SA", "Prev", "ePlace-A"} {
		if methods[m] < 2 {
			t.Errorf("method %s has %d sweep points, want >= 2", m, methods[m])
		}
	}
	if s := FormatSweep("t", pts, false); !strings.Contains(s, "ePlace-A") {
		t.Error("sweep format missing method")
	}
}

func TestPerfPipelineQuick(t *testing.T) {
	cfg := quickCfg()
	models, err := TrainAll(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(models.ByName) != 10 || len(models.Cases) != 10 {
		t.Fatalf("trained %d models for %d cases", len(models.ByName), len(models.Cases))
	}
	t5, t7, err := Table5And7(cfg, models)
	if err != nil {
		t.Fatal(err)
	}
	if len(t5) != 10 || len(t7) != 10 {
		t.Fatalf("want 10 rows each, got %d/%d", len(t5), len(t7))
	}
	for _, r := range t5 {
		for _, f := range []float64{r.SAConv, r.SAPerf, r.PrevConv, r.PrevPerf, r.EPlaceAConv, r.EPlaceAPPerf} {
			if f <= 0 || f > 1 {
				t.Errorf("%s: FOM %f out of (0,1]", r.Design, f)
			}
		}
	}
	t6, err := Table6(cfg, models)
	if err != nil {
		t.Fatal(err)
	}
	if len(t6.Rows) != 4 {
		t.Errorf("Table VI: want 4 metric rows, got %d", len(t6.Rows))
	}
	if s := FormatTable6(t6); !strings.Contains(s, "FOM") {
		t.Error("Table VI format missing FOM row")
	}
	pts, err := Fig6(cfg, models)
	if err != nil {
		t.Fatal(err)
	}
	if len(pts) < 6 {
		t.Errorf("Fig 6: want >= 6 points, got %d", len(pts))
	}
	if s := FormatTable5(t5); !strings.Contains(s, "Avg.") {
		t.Error("Table V format missing averages")
	}
	if s := FormatTable7(t7); !strings.Contains(s, "Avg.(X)") {
		t.Error("Table VII format missing averages")
	}
}

func TestAblationsQuick(t *testing.T) {
	rows, err := Ablations(quickCfg())
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 4 {
		t.Fatalf("want 4 ablation rows in quick mode, got %d", len(rows))
	}
	for _, r := range rows {
		if !r.Base.Legal || !r.Variant.Legal {
			t.Errorf("%s/%s: illegal placement", r.Ablation, r.Design)
		}
	}
	if s := FormatAblations(rows); !strings.Contains(s, "no-flipping") {
		t.Error("format missing ablation tag")
	}
}

func TestRefineAblationQuick(t *testing.T) {
	if raceEnabled {
		// Pure sequential-solver work: the parallel chains and window
		// solves are race-covered by internal/refine's own tests, and this
		// package already runs close to its raced timeout budget.
		t.Skip("no concurrency beyond internal/refine's raced tests")
	}
	rows, err := RefineAblation(quickCfg())
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 5 {
		t.Fatalf("want 5 refine-ablation rows in quick mode, got %d", len(rows))
	}
	byTag := map[string]RefineRow{}
	for _, r := range rows {
		if !r.Legal {
			t.Errorf("%s/%s: illegal placement", r.Config, r.Design)
		}
		byTag[r.Config] = r
	}
	// Refinement is accept-if-improved: refined rows can never be worse
	// than their unrefined counterparts at the same seed.
	if byTag["sa+chains4+refine"].HPWLUM > byTag["sa+chains4"].HPWLUM {
		t.Error("refined SA portfolio worse than unrefined")
	}
	if byTag["eplace-a+refine"].HPWLUM > byTag["eplace-a"].HPWLUM {
		t.Error("refined eplace-a worse than unrefined")
	}
	// The 4-chain portfolio includes the sequential chain, so it can never
	// lose to it either.
	if byTag["sa+chains4"].HPWLUM > byTag["sa"].HPWLUM {
		t.Error("4-chain portfolio worse than sequential SA")
	}
	if s := FormatRefineAblation(rows); !strings.Contains(s, "sa+chains4+refine") {
		t.Error("format missing config tag")
	}
}

func TestRoutedValidationQuick(t *testing.T) {
	rows, err := RoutedValidation(quickCfg())
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 3 {
		t.Fatalf("want 3 rows in quick mode, got %d", len(rows))
	}
	for _, r := range rows {
		if r.RouteUM <= 0 {
			t.Errorf("%s/%s: no routed length", r.Design, r.Method)
		}
		// Routed length should be within a small factor of HPWL for these
		// legal, routable placements.
		if r.RouteUM > 4*r.HPWLUM || r.RouteUM < 0.4*r.HPWLUM {
			t.Errorf("%s/%s: routed %.1f vs HPWL %.1f implausible", r.Design, r.Method, r.RouteUM, r.HPWLUM)
		}
	}
	if s := FormatRouted(rows); !strings.Contains(s, "Routed") {
		t.Error("format missing header")
	}
}
