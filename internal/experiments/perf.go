package experiments

import (
	"fmt"
	"strings"

	"repro/internal/core"
	"repro/internal/testcircuits"
)

// Table5Row holds the FOM of each method under the conventional and
// performance-driven formulations (paper Table V).
type Table5Row struct {
	Design                    string
	SAConv, SAPerf            float64
	PrevConv, PrevPerf        float64
	EPlaceAConv, EPlaceAPPerf float64
}

// perfRun executes one method with and without the performance term and
// returns FOMs plus the performance-driven metrics.
func perfRun(cfg Config, c *testcircuits.Case, models *Models,
	m core.Method) (convFOM, perfFOM float64, perfMetrics MethodMetrics, err error) {

	n := c.Netlist
	opt := core.Options{Tracer: cfg.Tracer, Seed: cfg.Seed, Portfolio: cfg.portfolio()}
	if m == core.MethodSA {
		opt.SA = cfg.saOptions(cfg.Seed)
	}
	conv, err := core.PlaceCtx(cfg.ctx(), n, m, opt)
	if err != nil {
		return 0, 0, MethodMetrics{}, err
	}
	convFOM = c.Perf.FOM(n, conv.Placement)

	popt := core.Options{Tracer: cfg.Tracer,
		Seed:      cfg.Seed,
		Portfolio: cfg.portfolio(),
		Perf:      &core.PerfTerm{Model: models.ByName[n.Name]},
	}
	if m == core.MethodSA {
		popt.SA = cfg.perfSAOptions(cfg.Seed, len(n.Devices))
	}
	perf, err := core.PlaceCtx(cfg.ctx(), n, m, popt)
	if err != nil {
		return 0, 0, MethodMetrics{}, err
	}
	perfFOM = c.Perf.FOM(n, perf.Placement)
	pm := metricsOf(perf)
	pm.FOM = perfFOM
	return convFOM, perfFOM, pm, nil
}

// Table5And7 runs the performance-driven comparison once, producing both
// Table V (FOMs) and Table VII (area/HPWL/runtime of the perf-driven
// methods) since they share the same placements.
func Table5And7(cfg Config, models *Models) ([]Table5Row, []Table7Row, error) {
	var t5 []Table5Row
	var t7 []Table7Row
	for _, c := range models.Cases {
		r5 := Table5Row{Design: c.Netlist.Name}
		r7 := Table7Row{Design: c.Netlist.Name}
		var err error
		var pm MethodMetrics
		if r5.SAConv, r5.SAPerf, pm, err = perfRun(cfg, c, models, core.MethodSA); err != nil {
			return nil, nil, fmt.Errorf("table5 %s/SA: %w", c.Netlist.Name, err)
		}
		r7.SA = pm
		if r5.PrevConv, r5.PrevPerf, pm, err = perfRun(cfg, c, models, core.MethodPrev); err != nil {
			return nil, nil, fmt.Errorf("table5 %s/prev: %w", c.Netlist.Name, err)
		}
		r7.Prev = pm
		if r5.EPlaceAConv, r5.EPlaceAPPerf, pm, err = perfRun(cfg, c, models, core.MethodEPlaceA); err != nil {
			return nil, nil, fmt.Errorf("table5 %s/eplace: %w", c.Netlist.Name, err)
		}
		r7.EPlaceAP = pm
		t5 = append(t5, r5)
		t7 = append(t7, r7)
	}
	return t5, t7, nil
}

// Table5Averages returns the per-column means (the paper's Avg. row).
func Table5Averages(rows []Table5Row) (saC, saP, pvC, pvP, eaC, eaP float64) {
	n := float64(len(rows))
	for _, r := range rows {
		saC += r.SAConv
		saP += r.SAPerf
		pvC += r.PrevConv
		pvP += r.PrevPerf
		eaC += r.EPlaceAConv
		eaP += r.EPlaceAPPerf
	}
	return saC / n, saP / n, pvC / n, pvP / n, eaC / n, eaP / n
}

// FormatTable5 renders Table V.
func FormatTable5(rows []Table5Row) string {
	var b strings.Builder
	fmt.Fprintf(&b, "TABLE V: FOM, conventional vs. performance-driven formulations\n")
	fmt.Fprintf(&b, "%-8s | %6s %6s | %6s %6s | %6s %6s\n",
		"Design", "SA:Cnv", "Perf", "Pv:Cnv", "Perf*", "eA:Cnv", "eAP")
	for _, r := range rows {
		fmt.Fprintf(&b, "%-8s | %6.2f %6.2f | %6.2f %6.2f | %6.2f %6.2f\n",
			r.Design, r.SAConv, r.SAPerf, r.PrevConv, r.PrevPerf, r.EPlaceAConv, r.EPlaceAPPerf)
	}
	a, bb, c, d, e, f := Table5Averages(rows)
	fmt.Fprintf(&b, "%-8s | %6.2f %6.2f | %6.2f %6.2f | %6.2f %6.2f\n", "Avg.", a, bb, c, d, e, f)
	return b.String()
}

// Table6Row is one performance metric of CC-OTA under ePlace-A vs.
// ePlace-AP (paper Table VI).
type Table6Row struct {
	Metric    string
	Spec      float64
	ConvValue float64
	ConvPct   float64
	PerfValue float64
	PerfPct   float64
}

// Table6Result carries the per-metric rows plus both FOMs.
type Table6Result struct {
	Rows             []Table6Row
	ConvFOM, PerfFOM float64
}

// Table6 reports the detailed CC-OTA metrics for ePlace-A vs. ePlace-AP.
func Table6(cfg Config, models *Models) (*Table6Result, error) {
	c := models.Case("CC-OTA")
	if c == nil {
		return nil, fmt.Errorf("table6: CC-OTA model missing")
	}
	n := c.Netlist
	conv, err := core.PlaceCtx(cfg.ctx(), n, core.MethodEPlaceA, core.Options{Tracer: cfg.Tracer, Seed: cfg.Seed, Portfolio: cfg.portfolio()})
	if err != nil {
		return nil, err
	}
	perf, err := core.PlaceCtx(cfg.ctx(), n, core.MethodEPlaceA, core.Options{Tracer: cfg.Tracer,
		Seed: cfg.Seed, Portfolio: cfg.portfolio(),
		Perf: &core.PerfTerm{Model: models.ByName[n.Name]},
	})
	if err != nil {
		return nil, err
	}
	convRaw := c.Perf.Eval(n, conv.Placement)
	convNorm := c.Perf.Normalize(convRaw)
	perfRaw := c.Perf.Eval(n, perf.Placement)
	perfNorm := c.Perf.Normalize(perfRaw)
	out := &Table6Result{
		ConvFOM: c.Perf.FOM(n, conv.Placement),
		PerfFOM: c.Perf.FOM(n, perf.Placement),
	}
	for i := range c.Perf.Metrics {
		md := &c.Perf.Metrics[i]
		out.Rows = append(out.Rows, Table6Row{
			Metric:    md.Name,
			Spec:      md.Target,
			ConvValue: convRaw[i],
			ConvPct:   100 * convNorm[i],
			PerfValue: perfRaw[i],
			PerfPct:   100 * perfNorm[i],
		})
	}
	return out, nil
}

// FormatTable6 renders Table VI.
func FormatTable6(res *Table6Result) string {
	var b strings.Builder
	fmt.Fprintf(&b, "TABLE VI: Detailed performance of CC-OTA\n")
	fmt.Fprintf(&b, "%-12s | %8s | %14s | %14s\n", "Metric", "Spec", "ePlace-A", "ePlace-AP")
	for _, r := range res.Rows {
		fmt.Fprintf(&b, "%-12s | %8.1f | %8.1f (%3.0f%%) | %8.1f (%3.0f%%)\n",
			r.Metric, r.Spec, r.ConvValue, r.ConvPct, r.PerfValue, r.PerfPct)
	}
	fmt.Fprintf(&b, "%-12s | %8s | %8.2f        | %8.2f\n", "FOM", "", res.ConvFOM, res.PerfFOM)
	return b.String()
}

// Table7Row holds area/HPWL/runtime of the three performance-driven
// methods (paper Table VII).
type Table7Row struct {
	Design             string
	SA, Prev, EPlaceAP MethodMetrics
}

// Table7Averages returns averages normalized to ePlace-AP.
func Table7Averages(rows []Table7Row) (saArea, saHPWL, saRT, pvArea, pvHPWL, pvRT float64) {
	n := float64(len(rows))
	for _, r := range rows {
		saArea += r.SA.AreaUM2 / r.EPlaceAP.AreaUM2
		saHPWL += r.SA.HPWLUM / r.EPlaceAP.HPWLUM
		saRT += r.SA.RuntimeS / r.EPlaceAP.RuntimeS
		pvArea += r.Prev.AreaUM2 / r.EPlaceAP.AreaUM2
		pvHPWL += r.Prev.HPWLUM / r.EPlaceAP.HPWLUM
		pvRT += r.Prev.RuntimeS / r.EPlaceAP.RuntimeS
	}
	return saArea / n, saHPWL / n, saRT / n, pvArea / n, pvHPWL / n, pvRT / n
}

// FormatTable7 renders Table VII.
func FormatTable7(rows []Table7Row) string {
	var b strings.Builder
	fmt.Fprintf(&b, "TABLE VII: Performance-driven methods, area / HPWL / runtime\n")
	fmt.Fprintf(&b, "%-8s | %8s %8s %8s | %8s %8s %8s | %8s %8s %8s\n",
		"Design", "SA:Area", "HPWL", "Time(s)", "Pv*:Area", "HPWL", "Time(s)", "eAP:Area", "HPWL", "Time(s)")
	for _, r := range rows {
		fmt.Fprintf(&b, "%-8s | %8.1f %8.1f %8.2f | %8.1f %8.1f %8.2f | %8.1f %8.1f %8.2f\n",
			r.Design,
			r.SA.AreaUM2, r.SA.HPWLUM, r.SA.RuntimeS,
			r.Prev.AreaUM2, r.Prev.HPWLUM, r.Prev.RuntimeS,
			r.EPlaceAP.AreaUM2, r.EPlaceAP.HPWLUM, r.EPlaceAP.RuntimeS)
	}
	sa, sh, st, pa, ph, pt := Table7Averages(rows)
	fmt.Fprintf(&b, "%-8s | %8.2f %8.2f %8.2f | %8.2f %8.2f %8.2f | %8.2f %8.2f %8.2f\n",
		"Avg.(X)", sa, sh, st, pa, ph, pt, 1.0, 1.0, 1.0)
	return b.String()
}

// Fig6 sweeps the performance weight (and area bias) of each
// performance-driven method on CM-OTA1, returning FOM–area points.
func Fig6(cfg Config, models *Models) ([]SweepPoint, error) {
	c := models.Case("CM-OTA1")
	if c == nil {
		return nil, fmt.Errorf("fig6: CM-OTA1 model missing")
	}
	n := c.Netlist
	model := models.ByName[n.Name]
	weights := []float64{0.15, 0.3, 0.6, 1.2, 2.5}
	if cfg.Quick {
		weights = []float64{0.3, 1.2}
	}
	var pts []SweepPoint
	for _, w := range weights {
		for mi, m := range []core.Method{core.MethodSA, core.MethodPrev, core.MethodEPlaceA} {
			opt := core.Options{Tracer: cfg.Tracer,
				Seed:      cfg.Seed,
				Portfolio: cfg.portfolio(),
				Perf:      &core.PerfTerm{Model: model, Weight: w},
			}
			if m == core.MethodSA {
				opt.SA = cfg.perfSAOptions(cfg.Seed, len(n.Devices))
			}
			res, err := core.PlaceCtx(cfg.ctx(), n, m, opt)
			if err != nil {
				return nil, err
			}
			name := []string{"SA-perf", "Prev-perf*", "ePlace-AP"}[mi]
			pts = append(pts, SweepPoint{
				Method:  name,
				Param:   fmt.Sprintf("alpha=%.2f", w),
				AreaUM2: res.AreaUM2,
				FOM:     c.Perf.FOM(n, res.Placement),
			})
		}
	}
	return pts, nil
}
