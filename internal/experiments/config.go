// Package experiments regenerates every table and figure of the paper's
// evaluation: Table I (soft vs. hard symmetry), Fig. 2 (area-term
// ablation), Table III (main conventional comparison), Table IV
// (detailed-placement comparison), Fig. 5 (HPWL–area tradeoff), Table V
// (FOM comparison), Table VI (CC-OTA metric details), Table VII
// (performance-driven comparison) and Fig. 6 (FOM–area tradeoff). Each
// experiment returns structured rows plus a formatted table whose layout
// mirrors the paper, so paper-vs-measured comparisons are direct.
package experiments

import (
	"context"
	"time"

	"repro/internal/anneal"
	"repro/internal/core"
	"repro/internal/gnn"
	"repro/internal/obs"
	"repro/internal/testcircuits"
)

// Config controls experiment scale.
type Config struct {
	Seed int64
	// Quick trades fidelity for speed (small SA budgets, single-start
	// portfolio, small GNN datasets) so tests and benchmarks stay fast.
	Quick bool
	// Tracer, when non-nil, is threaded into every placement, GNN training,
	// and routing call the experiments make.
	Tracer *obs.Tracer
	// Ctx, when non-nil, bounds every placement and training run the
	// experiments make (cmd/experiments -timeout); nil means no limit.
	Ctx context.Context
}

// ctx returns the run-bounding context, defaulting to context.Background().
func (c Config) ctx() context.Context {
	if c.Ctx != nil {
		return c.Ctx
	}
	return context.Background()
}

// saOptions returns the simulated-annealing budget for the run mode: the
// full mode mirrors the paper's "practical runtime limit" regime.
func (c Config) saOptions(seed int64) *anneal.Options {
	if c.Quick {
		return &anneal.Options{Seed: seed, Moves: 30000, Restarts: 1, Tracer: c.Tracer}
	}
	return &anneal.Options{Seed: seed, Tracer: c.Tracer} // package defaults: long chains, 2 restarts
}

// perfSAOptions returns the budget for performance-driven SA, whose cost
// function runs GNN inference per proposal; the paper's perf-driven SA
// runtimes are of the same magnitude as its conventional SA.
func (c Config) perfSAOptions(seed int64, n int) *anneal.Options {
	if c.Quick {
		return &anneal.Options{Seed: seed, Moves: 8000, Restarts: 1, Tracer: c.Tracer}
	}
	return &anneal.Options{Seed: seed, Moves: 100000 + 5000*n, Restarts: 2, Tracer: c.Tracer}
}

// portfolio returns the ePlace-A portfolio size.
func (c Config) portfolio() int {
	if c.Quick {
		return 1
	}
	return 3
}

// trainOptions returns the GNN training configuration.
func (c Config) trainOptions(seed int64) core.TrainOptions {
	if c.Quick {
		return core.TrainOptions{Seed: seed, Samples: 300, Epochs: 20, Anchors: -1, Tracer: c.Tracer}
	}
	return core.TrainOptions{Seed: seed, Samples: 1200, Epochs: 45, Tracer: c.Tracer}
}

// MethodMetrics is one method's result on one circuit.
type MethodMetrics struct {
	AreaUM2  float64
	HPWLUM   float64
	RuntimeS float64
	FOM      float64 // filled by performance experiments
	Legal    bool
}

// metricsOf converts a core result.
func metricsOf(res *core.Result) MethodMetrics {
	return MethodMetrics{
		AreaUM2:  res.AreaUM2,
		HPWLUM:   res.HPWLUM,
		RuntimeS: res.Runtime.Seconds(),
		Legal:    res.Legal,
	}
}

// Models caches one trained GNN per circuit, shared by the
// performance-driven experiments. A model is bound to the exact netlist it
// was trained on, so Cases holds the benchmark instances the models belong
// to and every performance experiment must run on these instances.
type Models struct {
	Cases  []*testcircuits.Case
	ByName map[string]*gnn.Model
	Stats  map[string]*gnn.TrainStats
	TrainS float64 // total training wall time, seconds
}

// Case returns the benchmark case (bound to its trained model) by name.
func (m *Models) Case(name string) *testcircuits.Case {
	for _, c := range m.Cases {
		if c.Netlist.Name == name {
			return c
		}
	}
	return nil
}

// TrainAll trains a performance GNN for every benchmark circuit.
func TrainAll(cfg Config) (*Models, error) {
	out := &Models{
		Cases:  testcircuits.All(),
		ByName: map[string]*gnn.Model{},
		Stats:  map[string]*gnn.TrainStats{},
	}
	start := time.Now()
	for _, c := range out.Cases {
		model, stats, err := core.TrainPerfGNNCtx(cfg.ctx(), c.Netlist, c.Perf, 0 /* auto */, cfg.trainOptions(cfg.Seed+11))
		if err != nil {
			return nil, err
		}
		out.ByName[c.Netlist.Name] = model
		out.Stats[c.Netlist.Name] = stats
	}
	out.TrainS = time.Since(start).Seconds()
	return out, nil
}
