package experiments

import (
	"fmt"
	"strings"

	"repro/internal/core"
	"repro/internal/detailed"
	"repro/internal/eplacea"
	"repro/internal/refine"
	"repro/internal/testcircuits"
)

// AblationRow is one design-choice toggle on one circuit: the baseline
// (full ePlace-A) versus the variant with the choice disabled/altered.
type AblationRow struct {
	Ablation string
	Design   string
	Base     MethodMetrics
	Variant  MethodMetrics
}

// Ablations isolates the three design choices the paper credits for
// ePlace-A's advantage over [11] (Section IV-C) plus this implementation's
// own additions:
//
//  1. wa-vs-lse     — WA wirelength smoothing replaced by LSE
//  2. no-flipping   — device-flipping binaries removed from the ILP
//  3. no-refinement — a single detailed-placement pass instead of iterated
//     constraint-graph refinement
//  4. no-portfolio  — a single GP start instead of the schedule portfolio
func Ablations(cfg Config) ([]AblationRow, error) {
	circuits := []string{"CC-OTA", "CM-OTA1", "VGA"}
	if cfg.Quick {
		circuits = circuits[:1]
	}
	var rows []AblationRow
	for _, name := range circuits {
		c, err := testcircuits.ByName(name)
		if err != nil {
			return nil, err
		}
		base, err := core.PlaceCtx(cfg.ctx(), c.Netlist, core.MethodEPlaceA, core.Options{Tracer: cfg.Tracer,
			Seed: cfg.Seed, Portfolio: cfg.portfolio(),
		})
		if err != nil {
			return nil, err
		}
		bm := metricsOf(base)

		variants := []struct {
			tag string
			opt core.Options
		}{
			{"wa-vs-lse", core.Options{Tracer: cfg.Tracer,
				Seed: cfg.Seed, Portfolio: 1,
				GP: &eplacea.Options{Seed: cfg.Seed, UseLSE: true},
			}},
			{"no-flipping", core.Options{Tracer: cfg.Tracer,
				Seed: cfg.Seed, Portfolio: cfg.portfolio(),
				DP: &detailed.Options{NoFlips: true},
			}},
			{"no-refinement", core.Options{Tracer: cfg.Tracer,
				Seed: cfg.Seed, Portfolio: cfg.portfolio(),
				DP: &detailed.Options{Refinements: 1},
			}},
			{"no-portfolio", core.Options{Tracer: cfg.Tracer,
				Seed: cfg.Seed, Portfolio: 1,
			}},
		}
		for _, v := range variants {
			res, err := core.PlaceCtx(cfg.ctx(), c.Netlist, core.MethodEPlaceA, v.opt)
			if err != nil {
				return nil, fmt.Errorf("ablation %s/%s: %w", v.tag, name, err)
			}
			vm := metricsOf(res)
			// The wa-vs-lse variant disables the portfolio so the smoother
			// is isolated; compare it against a single-start baseline too.
			if v.tag == "wa-vs-lse" {
				b1, err := core.PlaceCtx(cfg.ctx(), c.Netlist, core.MethodEPlaceA, core.Options{Tracer: cfg.Tracer,
					Seed: cfg.Seed, Portfolio: 1,
				})
				if err != nil {
					return nil, err
				}
				rows = append(rows, AblationRow{Ablation: v.tag, Design: name,
					Base: metricsOf(b1), Variant: vm})
				continue
			}
			rows = append(rows, AblationRow{Ablation: v.tag, Design: name, Base: bm, Variant: vm})
		}
	}
	return rows, nil
}

// FormatAblations renders the ablation study.
func FormatAblations(rows []AblationRow) string {
	var b strings.Builder
	fmt.Fprintf(&b, "Ablations: ePlace-A design choices (baseline vs. variant)\n")
	fmt.Fprintf(&b, "%-14s %-8s | %9s %9s | %9s %9s | %7s %7s\n",
		"Ablation", "Design", "BaseArea", "VarArea", "BaseHPWL", "VarHPWL", "tBase", "tVar")
	for _, r := range rows {
		fmt.Fprintf(&b, "%-14s %-8s | %9.1f %9.1f | %9.1f %9.1f | %6.2fs %6.2fs\n",
			r.Ablation, r.Design,
			r.Base.AreaUM2, r.Variant.AreaUM2,
			r.Base.HPWLUM, r.Variant.HPWLUM,
			r.Base.RuntimeS, r.Variant.RuntimeS)
	}
	return b.String()
}

// RefineRow is one line of the refinement ablation: a method/search
// configuration on one circuit, so the incremental value of the SA chain
// portfolio and the ILP window refinement stage can be read off directly.
type RefineRow struct {
	Design string
	Config string
	MethodMetrics
}

// RefineAblation measures what the search-level additions buy on top of
// the base solvers: sequential SA versus a 4-chain portfolio versus the
// portfolio plus ILP window refinement, and ePlace-A with and without the
// refinement post-pass. Refinement is accept-if-improved, so its rows can
// never be worse than their unrefined counterparts at the same seed —
// the table shows how much headroom the base solvers leave behind.
func RefineAblation(cfg Config) ([]RefineRow, error) {
	circuits := []string{"CC-OTA", "CM-OTA1"}
	if cfg.Quick {
		circuits = circuits[:1]
	}
	var rows []RefineRow
	for _, name := range circuits {
		c, err := testcircuits.ByName(name)
		if err != nil {
			return nil, err
		}
		configs := []struct {
			tag string
			opt core.Options
		}{
			{"sa", core.Options{Tracer: cfg.Tracer,
				Seed: cfg.Seed, SA: cfg.saOptions(cfg.Seed), Chains: 1,
			}},
			{"sa+chains4", core.Options{Tracer: cfg.Tracer,
				Seed: cfg.Seed, SA: cfg.saOptions(cfg.Seed), Chains: 4,
			}},
			{"sa+chains4+refine", core.Options{Tracer: cfg.Tracer,
				Seed: cfg.Seed, SA: cfg.saOptions(cfg.Seed), Chains: 4,
				Refine: &refine.Options{},
			}},
			{"eplace-a", core.Options{Tracer: cfg.Tracer,
				Seed: cfg.Seed, Portfolio: cfg.portfolio(),
			}},
			{"eplace-a+refine", core.Options{Tracer: cfg.Tracer,
				Seed: cfg.Seed, Portfolio: cfg.portfolio(),
				Refine: &refine.Options{},
			}},
		}
		for _, v := range configs {
			m := core.MethodSA
			if strings.HasPrefix(v.tag, "eplace-a") {
				m = core.MethodEPlaceA
			}
			res, err := core.PlaceCtx(cfg.ctx(), c.Netlist, m, v.opt)
			if err != nil {
				return nil, fmt.Errorf("refine ablation %s/%s: %w", v.tag, name, err)
			}
			rows = append(rows, RefineRow{Design: name, Config: v.tag, MethodMetrics: metricsOf(res)})
		}
	}
	return rows, nil
}

// FormatRefineAblation renders the refinement ablation.
func FormatRefineAblation(rows []RefineRow) string {
	var b strings.Builder
	fmt.Fprintf(&b, "Refinement ablation: SA portfolio chains and ILP window refinement\n")
	fmt.Fprintf(&b, "%-8s %-18s | %9s %9s | %7s %s\n",
		"Design", "Config", "Area", "HPWL", "Time", "Legal")
	for _, r := range rows {
		fmt.Fprintf(&b, "%-8s %-18s | %9.1f %9.1f | %6.2fs %v\n",
			r.Design, r.Config, r.AreaUM2, r.HPWLUM, r.RuntimeS, r.Legal)
	}
	return b.String()
}

// RoutedRow is the post-route validation of one circuit: routed wirelength
// per method, next to its HPWL (paper's flow routes before extraction).
type RoutedRow struct {
	Design  string
	Method  string
	HPWLUM  float64
	RouteUM float64
	MaxUse  int
}

// RoutedValidation places three circuits with each method and globally
// routes the results, reporting routed wirelength next to HPWL. Routed
// length tracks HPWL closely when the placement leaves routable space —
// the sanity check that HPWL-based conclusions survive routing.
func RoutedValidation(cfg Config) ([]RoutedRow, error) {
	circuits := []string{"CC-OTA", "CM-OTA1", "VGA"}
	if cfg.Quick {
		circuits = circuits[:1]
	}
	var rows []RoutedRow
	for _, name := range circuits {
		c, err := testcircuits.ByName(name)
		if err != nil {
			return nil, err
		}
		for _, m := range []core.Method{core.MethodSA, core.MethodPrev, core.MethodEPlaceA} {
			opt := core.Options{Tracer: cfg.Tracer, Seed: cfg.Seed, Portfolio: cfg.portfolio()}
			if m == core.MethodSA {
				opt.SA = cfg.saOptions(cfg.Seed)
			}
			res, err := core.PlaceCtx(cfg.ctx(), c.Netlist, m, opt)
			if err != nil {
				return nil, err
			}
			rr, err := routePlacement(cfg, c, res)
			if err != nil {
				return nil, fmt.Errorf("routing %s/%v: %w", name, m, err)
			}
			rr.Design = name
			rr.Method = m.String()
			rows = append(rows, *rr)
		}
	}
	return rows, nil
}

// FormatRouted renders the routed-wirelength validation.
func FormatRouted(rows []RoutedRow) string {
	var b strings.Builder
	fmt.Fprintf(&b, "Post-route validation: routed wirelength vs. HPWL\n")
	fmt.Fprintf(&b, "%-8s %-22s %10s %10s %7s\n", "Design", "Method", "HPWL(µm)", "Routed(µm)", "MaxUse")
	for _, r := range rows {
		fmt.Fprintf(&b, "%-8s %-22s %10.1f %10.1f %7d\n",
			r.Design, r.Method, r.HPWLUM, r.RouteUM, r.MaxUse)
	}
	return b.String()
}
