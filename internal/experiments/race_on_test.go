//go:build race

package experiments

// raceEnabled reports whether this test binary was built with the race
// detector, so heavyweight tests can shed sequential-solver work (~10x
// slower raced) that adds no concurrency coverage, keeping the package
// inside its timeout budget.
const raceEnabled = true
