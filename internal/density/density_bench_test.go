package density

import (
	"fmt"
	"runtime"
	"testing"

	"repro/internal/circuit"
	"repro/internal/gen"
	"repro/internal/par"
)

// benchGrid generates a synthetic netlist, spreads it on a grid, and
// returns an electrostatic model (over pool) sized to the placement.
func benchGrid(b *testing.B, m, devices int, pool *par.Pool) (*Electrostatic, *circuit.Netlist, *circuit.Placement) {
	b.Helper()
	n, err := gen.Generate(gen.Params{Seed: 3, Devices: devices})
	if err != nil {
		b.Fatal(err)
	}
	p := circuit.NewPlacement(n)
	cols := 1
	for cols*cols < n.NumDevices() {
		cols++
	}
	for i := range p.X {
		p.X[i] = float64(i%cols) * 3
		p.Y[i] = float64(i/cols) * 3
	}
	return NewElectrostaticPool(m, n.BoundingBox(p), pool), n, p
}

// benchThreads are the worker counts the parallel variants compare:
// inline (threads1) against a machine-sized pool. The ρ grids, fields,
// and gradients are bit-identical across variants by construction.
var benchThreads = []int{1, runtime.NumCPU()}

// BenchmarkUpdate measures bin accumulation alone (density rasterization
// without the Poisson solve): Update is called once per GP iteration.
func BenchmarkUpdate(b *testing.B) {
	for _, size := range []int{100, 1000} {
		for _, threads := range benchThreads {
			b.Run(fmt.Sprintf("m32/n%d/threads%d", size, threads), func(b *testing.B) {
				pool := par.NewPool(threads)
				defer pool.Close()
				g, n, p := benchGrid(b, 32, size, pool)
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					g.accumulate(n, p)
				}
			})
		}
	}
}

// BenchmarkPoissonSolve measures the spectral Poisson solve alone (DCT,
// spectral scaling, inverse transforms) at production grid sizes plus the
// large m=512/1024 grids the packed-FFT pipeline is gated on. The fast
// transforms make one solve O(m² log m); the threads variants fan the
// packed row-pair passes across the pool.
func BenchmarkPoissonSolve(b *testing.B) {
	for _, m := range []int{32, 64, 128, 512, 1024} {
		for _, threads := range benchThreads {
			b.Run(fmt.Sprintf("m%d/threads%d", m, threads), func(b *testing.B) {
				pool := par.NewPool(threads)
				defer pool.Close()
				g, n, p := benchGrid(b, m, 200, pool)
				g.Update(n, p) // fill rho once; solve re-runs on the same density
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					g.solve()
				}
			})
		}
	}
}

// BenchmarkUpdateFull measures the full per-iteration density cost
// (accumulation + Poisson solve), the number GP iteration budgeting needs.
func BenchmarkUpdateFull(b *testing.B) {
	for _, threads := range benchThreads {
		b.Run(fmt.Sprintf("threads%d", threads), func(b *testing.B) {
			pool := par.NewPool(threads)
			defer pool.Close()
			g, n, p := benchGrid(b, 32, 1000, pool)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				g.Update(n, p)
			}
		})
	}
}
