package density

import (
	"fmt"
	"testing"

	"repro/internal/circuit"
	"repro/internal/gen"
)

// benchGrid generates a synthetic netlist, spreads it on a grid, and
// returns an electrostatic model sized to the placement.
func benchGrid(b *testing.B, m, devices int) (*Electrostatic, *circuit.Netlist, *circuit.Placement) {
	b.Helper()
	n, err := gen.Generate(gen.Params{Seed: 3, Devices: devices})
	if err != nil {
		b.Fatal(err)
	}
	p := circuit.NewPlacement(n)
	cols := 1
	for cols*cols < n.NumDevices() {
		cols++
	}
	for i := range p.X {
		p.X[i] = float64(i%cols) * 3
		p.Y[i] = float64(i/cols) * 3
	}
	return NewElectrostatic(m, n.BoundingBox(p)), n, p
}

// BenchmarkUpdate measures bin accumulation alone (density rasterization
// without the Poisson solve): Update is called once per GP iteration.
func BenchmarkUpdate(b *testing.B) {
	for _, size := range []int{100, 1000} {
		b.Run(fmt.Sprintf("m32/n%d", size), func(b *testing.B) {
			g, n, p := benchGrid(b, 32, size)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				g.accumulate(n, p)
			}
		})
	}
}

// BenchmarkPoissonSolve measures the spectral Poisson solve alone (DCT,
// spectral scaling, inverse transforms) at the production grid sizes.
func BenchmarkPoissonSolve(b *testing.B) {
	for _, m := range []int{32, 64} {
		b.Run(fmt.Sprintf("m%d", m), func(b *testing.B) {
			g, n, p := benchGrid(b, m, 200)
			g.Update(n, p) // fill rho once; solve re-runs on the same density
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				g.solve()
			}
		})
	}
}

// BenchmarkUpdateFull measures the full per-iteration density cost
// (accumulation + Poisson solve), the number GP iteration budgeting needs.
func BenchmarkUpdateFull(b *testing.B) {
	g, n, p := benchGrid(b, 32, 1000)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		g.Update(n, p)
	}
}
