package density

import (
	"math"
	"testing"

	"repro/internal/circuit"
	"repro/internal/fft"
	"repro/internal/geom"
	"repro/internal/par"
)

// denseReference recomputes ψ, ξx, ξy, and the energy of g's current ρ
// with the textbook dense pipeline the packed solve replaced: explicit
// mean neutralization, 2-D DCT-II via the O(N²) MatVec references (rows,
// then stride-gathered columns), a separate normalization sweep, three
// independently built coefficient grids with per-element wu/wv math, and
// three independent 2-D MatVec reconstructions. Deliberately naive — it
// shares no code with the fast path beyond the dense basis tables.
func denseReference(g *Electrostatic) (psi, ex, ey []float64, energy float64) {
	m := g.m
	p := fft.NewPlan(m)
	a := make([]float64, m*m)
	var mean float64
	for _, v := range g.rho {
		mean += v
	}
	mean /= float64(m * m)
	for i, v := range g.rho {
		a[i] = v - mean
	}
	// Forward 2-D DCT-II: rows over x, then columns over y.
	buf := make([]float64, m)
	out := make([]float64, m)
	for y := 0; y < m; y++ {
		copy(buf, a[y*m:(y+1)*m])
		p.DCT2MatVec(buf, a[y*m:(y+1)*m])
	}
	for u := 0; u < m; u++ {
		for y := 0; y < m; y++ {
			buf[y] = a[y*m+u]
		}
		p.DCT2MatVec(buf, out)
		for v := 0; v < m; v++ {
			a[v*m+u] = out[v]
		}
	}
	// Exact cosine-series normalization.
	nrm := 4 / (float64(m) * float64(m))
	for v := 0; v < m; v++ {
		for u := 0; u < m; u++ {
			c := a[v*m+u] * nrm
			if u == 0 {
				c /= 2
			}
			if v == 0 {
				c /= 2
			}
			a[v*m+u] = c
		}
	}
	wu := func(u int) float64 { return math.Pi * float64(u) / (float64(m) * g.binW) }
	wv := func(v int) float64 { return math.Pi * float64(v) / (float64(m) * g.binH) }
	coef := make([]float64, m*m)
	build := func(weight func(u, v int) float64) {
		for v := 0; v < m; v++ {
			for u := 0; u < m; u++ {
				if u == 0 && v == 0 {
					coef[0] = 0
					continue
				}
				coef[v*m+u] = a[v*m+u] * weight(u, v) / (wu(u)*wu(u) + wv(v)*wv(v))
			}
		}
	}
	reconstruct := func(dst []float64, sinX, sinY bool) {
		invX, invY := p.InvCosMatVec, p.InvCosMatVec
		if sinX {
			invX = p.InvSinMatVec
		}
		if sinY {
			invY = p.InvSinMatVec
		}
		for v := 0; v < m; v++ {
			copy(buf, coef[v*m:(v+1)*m])
			invX(buf, dst[v*m:(v+1)*m]) // dst temporarily holds [v][x]
		}
		for x := 0; x < m; x++ {
			for v := 0; v < m; v++ {
				buf[v] = dst[v*m+x]
			}
			invY(buf, out)
			for y := 0; y < m; y++ {
				dst[y*m+x] = out[y]
			}
		}
	}
	psi = make([]float64, m*m)
	ex = make([]float64, m*m)
	ey = make([]float64, m*m)
	build(func(u, v int) float64 { return 1 })
	reconstruct(psi, false, false)
	build(func(u, v int) float64 { return wu(u) })
	reconstruct(ex, true, false)
	build(func(u, v int) float64 { return wv(v) })
	reconstruct(ey, false, true)
	binArea := g.binW * g.binH
	for i, r := range g.rho {
		energy += r * binArea * psi[i]
	}
	energy /= 2
	return psi, ex, ey, energy
}

// scatter places k overlapping square devices deterministically across
// the region so ρ (and the spectrum) is dense and asymmetric.
func scatter(k int, side, span float64) (*circuit.Netlist, *circuit.Placement) {
	n, p := cluster(k, side)
	for i := range p.X {
		p.X[i] = math.Mod(float64(i)*span*0.37+side, span-side) + side/2
		p.Y[i] = math.Mod(float64(i)*span*0.61+2*side, span-side) + side/2
	}
	return n, p
}

// TestElectrostaticMatchesDenseReference cross-validates the full packed,
// fused solve — ψ, ξx, ξy, and Energy — against the dense-reference build
// at every production grid size up to m = 256. 1e-10 relative (against
// the field's max magnitude) is the acceptance bound; the packed path
// typically lands several digits inside it.
func TestElectrostaticMatchesDenseReference(t *testing.T) {
	for m := 8; m <= 256; m *= 2 {
		span := float64(4 * m)
		n, p := scatter(25, span/10, span)
		g := NewElectrostatic(m, geom.RectWH(0, 0, span, span))
		g.Update(n, p)
		refPsi, refEx, refEy, refE := denseReference(g)
		maxAbs := func(a []float64) float64 {
			var mx float64
			for _, v := range a {
				if av := math.Abs(v); av > mx {
					mx = av
				}
			}
			return mx
		}
		for name, pair := range map[string][2][]float64{
			"psi": {g.psi, refPsi},
			"ex":  {g.ex, refEx},
			"ey":  {g.ey, refEy},
		} {
			got, ref := pair[0], pair[1]
			tol := 1e-10 * (1 + maxAbs(ref))
			for i := range got {
				if math.Abs(got[i]-ref[i]) > tol {
					t.Fatalf("m=%d: %s[%d] = %.17g, dense reference %.17g (tol %g)",
						m, name, i, got[i], ref[i], tol)
				}
			}
		}
		if d := math.Abs(g.Energy() - refE); d > 1e-10*(1+math.Abs(refE)) {
			t.Fatalf("m=%d: Energy = %.17g, dense reference %.17g", m, g.Energy(), refE)
		}
	}
}

// TestElectrostaticThreadInvariance checks the packed line-pair sharding
// keeps every solve output bit-identical between inline execution and
// pools of assorted worker counts — including counts that do not divide
// the pair count evenly. Byte equality, not tolerance: the determinism
// contract is exact.
func TestElectrostaticThreadInvariance(t *testing.T) {
	for _, m := range []int{8, 32, 128} {
		span := float64(4 * m)
		n, p := scatter(40, span/12, span)
		want := NewElectrostatic(m, geom.RectWH(0, 0, span, span))
		want.Update(n, p)
		wantE := want.Energy()
		for _, threads := range []int{2, 3, 5, 8} {
			pool := par.NewPool(threads)
			g := NewElectrostaticPool(m, geom.RectWH(0, 0, span, span), pool)
			g.Update(n, p)
			for name, pair := range map[string][2][]float64{
				"rho": {g.rho, want.rho},
				"psi": {g.psi, want.psi},
				"ex":  {g.ex, want.ex},
				"ey":  {g.ey, want.ey},
			} {
				got, ref := pair[0], pair[1]
				for i := range got {
					if got[i] != ref[i] {
						t.Fatalf("m=%d threads=%d: %s[%d] = %.17g, inline %.17g (must be bit-equal)",
							m, threads, name, i, got[i], ref[i])
					}
				}
			}
			if e := g.Energy(); e != wantE {
				t.Fatalf("m=%d threads=%d: Energy = %.17g, inline %.17g", m, threads, e, wantE)
			}
			pool.Close()
		}
	}
}
