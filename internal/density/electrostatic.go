// Package density implements the two smoothed cell-overlap models compared
// in the paper: the electrostatics-based potential-energy model of ePlace
// (density as charge, overlap penalty as system energy, solved spectrally
// via DCT/DST transforms) used by ePlace-A, and the bell-shaped bin-density
// penalty of NTUplace3 used by the previous analytical work [11].
package density

import (
	"math"
	"time"

	"repro/internal/circuit"
	"repro/internal/fft"
	"repro/internal/geom"
	"repro/internal/obs/metrics"
	"repro/internal/par"
)

// devGrain is the minimum number of devices per shard when rasterization
// and gradient sampling are split. Fixed so shard geometry — and with it
// the bin-sum merge order — depends only on the netlist size, keeping
// results bit-identical at every thread count.
const devGrain = 32

// gridScratch is the per-worker-slot working set for the packed line-pair
// transform passes: an fft.Scratch for the shared Plan plus two line
// buffers for frequency-scaled coefficient rows.
type gridScratch struct {
	fs     *fft.Scratch
	b0, b1 []float64
}

// Electrostatic is the ePlace density model: devices are positive charges
// whose density field ρ drives a Poisson equation ∇²ψ = -ρ; the overlap
// penalty N(v) is the system potential energy and its gradient is the
// electric field ξ = -∇ψ scaled by device charge. The Poisson solve is
// spectral: a 2-D DCT of ρ, per-frequency scaling, and inverse cosine/sine
// reconstructions for ψ, ξx, ξy.
//
// The solve is a packed, fused pipeline (see solve): every row/column pass
// packs two real grid lines into one complex FFT (fft's *PairTo
// transforms), column passes run on contiguous rows via cache-blocked
// transposes instead of stride-m gathers, the spectral scaling reads one
// precomputed per-frequency table (rebuilt only on SetRegion), and the
// ψ/ξx/ξy reconstructions share the inverse pass over v through linearity
// instead of running three independent 2-D transforms.
//
// Concurrency model: a grid built over a par.Pool parallelizes the three
// device-sharded passes (rasterization with per-shard partial ρ grids
// merged in shard order, field sampling with disjoint per-device writes)
// and the line-pair transform passes of the spectral solve (disjoint line
// pairs via par.ForPairs, per-slot fft scratch). Shard geometry — including
// the line pairing — is a pure function of problem size, so pooled and
// inline execution produce identical bits. The grid itself is not safe for
// concurrent use by multiple goroutines.
type Electrostatic struct {
	m      int
	region geom.Rect
	binW   float64
	binH   float64
	pool   *par.Pool

	plan *fft.Plan
	rho  []float64 // device area density per bin (area units / bin area)
	auv  []float64 // scaled DCT spectrum of rho (ψ coefficients, [u*m+v])
	psi  []float64 // potential per bin
	ex   []float64 // field x-component per bin
	ey   []float64 // field y-component per bin

	work    []float64     // scratch: half-transformed grids
	coefBuf []float64     // scratch: transposed half-transformed grids
	lineE   []float64     // per-row Σ ρ·ψ partials (deterministic energy)
	slots   []gridScratch // per-worker-slot transform scratch
	partRho []float64     // per-shard partial ρ grids (one grid when pool is nil)

	// Frequency tables, rebuilt by SetRegion only: wu[u] = πu/(m·binW),
	// wv[v] = πv/(m·binH), and scaleTab[u*m+v] — the DCT normalization
	// (2/m)² with the α₀ = ½ edge factors folded into 1/(wu²+wv²), zero at
	// the DC term. One table lookup replaces the per-element trig, division
	// and branch work the solve used to redo three times per call.
	wuTab    []float64
	wvTab    []float64
	scaleTab []float64

	// Per-call duration histograms for the three hot kernels, installed
	// with SetTimers. All nil by default: untimed calls pay one pointer
	// check (the obs/metrics zero-cost-when-nil contract).
	rasterH, solveH, fieldH *metrics.Histogram
}

// SetTimers installs per-call duration histograms for the grid's three
// kernels: ρ rasterization (Update's accumulate pass), the spectral
// Poisson solve (Update's transform pass), and field sampling (AddGrad).
// Timing is observation-only — it cannot change a single result bit — and
// any handle may be nil to skip that kernel.
func (g *Electrostatic) SetTimers(raster, solve, field *metrics.Histogram) {
	g.rasterH, g.solveH, g.fieldH = raster, solve, field
}

// NewElectrostatic creates an m×m electrostatic grid (m a power of two)
// covering region, running inline on the calling goroutine.
func NewElectrostatic(m int, region geom.Rect) *Electrostatic {
	return NewElectrostaticPool(m, region, nil)
}

// NewElectrostaticPool is NewElectrostatic with a worker pool for the
// rasterization, solve, and gradient kernels. A nil pool is valid and
// means inline execution with identical result bits.
func NewElectrostaticPool(m int, region geom.Rect, pool *par.Pool) *Electrostatic {
	g := &Electrostatic{
		m:        m,
		pool:     pool,
		plan:     fft.NewPlan(m),
		rho:      make([]float64, m*m),
		auv:      make([]float64, m*m),
		psi:      make([]float64, m*m),
		ex:       make([]float64, m*m),
		ey:       make([]float64, m*m),
		work:     make([]float64, m*m),
		coefBuf:  make([]float64, m*m),
		lineE:    make([]float64, m),
		wuTab:    make([]float64, m),
		wvTab:    make([]float64, m),
		scaleTab: make([]float64, m*m),
		slots:    make([]gridScratch, pool.Workers()),
	}
	for i := range g.slots {
		g.slots[i] = gridScratch{
			fs: g.plan.NewScratch(),
			b0: make([]float64, m),
			b1: make([]float64, m),
		}
	}
	g.SetRegion(region)
	return g
}

// SetRegion re-targets the grid onto a new placement region and rebuilds
// the frequency tables the spectral scaling reads.
func (g *Electrostatic) SetRegion(region geom.Rect) {
	g.region = region
	m := g.m
	g.binW = region.W() / float64(m)
	g.binH = region.H() / float64(m)
	for u := 0; u < m; u++ {
		g.wuTab[u] = math.Pi * float64(u) / (float64(m) * g.binW)
	}
	for v := 0; v < m; v++ {
		g.wvTab[v] = math.Pi * float64(v) / (float64(m) * g.binH)
	}
	// scaleTab[u*m+v] turns the raw 2-D DCT-II output directly into ψ
	// coefficients: the exact cosine-series normalization (2/m)² with the
	// α₀ = ½ factors on the u = 0 / v = 0 edges, times the Poisson kernel
	// 1/(wu²+wv²). The DC entry is zero — dividing out the kernel at the
	// (0,0) frequency is exactly where the mean (neutralization) term
	// lives, so zeroing it here subsumes the explicit mean-subtraction
	// sweep the solve used to run over the whole grid.
	nrm := 4 / (float64(m) * float64(m))
	for u := 0; u < m; u++ {
		au := nrm
		if u == 0 {
			au /= 2
		}
		wu2 := g.wuTab[u] * g.wuTab[u]
		row := g.scaleTab[u*m : u*m+m]
		for v := 0; v < m; v++ {
			c := au
			if v == 0 {
				c /= 2
			}
			wv := g.wvTab[v]
			row[v] = c / (wu2 + wv*wv)
		}
	}
	g.scaleTab[0] = 0
}

// Region returns the placement region the grid covers.
func (g *Electrostatic) Region() geom.Rect { return g.region }

// M returns the grid dimension (bins per side).
func (g *Electrostatic) M() int { return g.m }

// inflated returns the rasterization rectangle and charge-density scale for
// device i: devices narrower than a bin are inflated to one bin in that
// axis with their total charge (area) preserved, the standard ePlace
// treatment that keeps gradients smooth for small cells.
func (g *Electrostatic) inflated(n *circuit.Netlist, p *circuit.Placement, i int) (geom.Rect, float64) {
	d := &n.Devices[i]
	w, h := d.W, d.H
	scale := 1.0
	if w < g.binW {
		scale *= w / g.binW
		w = g.binW
	}
	if h < g.binH {
		scale *= h / g.binH
		h = g.binH
	}
	r := geom.RectCenter(geom.Point{X: p.X[i], Y: p.Y[i]}, w, h)
	// Clamp the rect into the region, preserving its size when possible.
	if dx := g.region.Lo.X - r.Lo.X; dx > 0 {
		r = r.Translate(geom.Point{X: dx})
	}
	if dx := g.region.Hi.X - r.Hi.X; dx < 0 {
		r = r.Translate(geom.Point{X: dx})
	}
	if dy := g.region.Lo.Y - r.Lo.Y; dy > 0 {
		r = r.Translate(geom.Point{Y: dy})
	}
	if dy := g.region.Hi.Y - r.Hi.Y; dy < 0 {
		r = r.Translate(geom.Point{Y: dy})
	}
	return g.region.Intersect(r), scale
}

// binRange returns the bin index range [lo, hi) overlapped by [a, b) along
// an axis with bin size s anchored at origin o.
func binRange(a, b, o, s float64, m int) (int, int) {
	lo := int(math.Floor((a - o) / s))
	hi := int(math.Ceil((b - o) / s))
	if lo < 0 {
		lo = 0
	}
	if hi > m {
		hi = m
	}
	return lo, hi
}

// Update rebuilds the density field from placement p and re-solves the
// Poisson system, refreshing ψ and ξ.
func (g *Electrostatic) Update(n *circuit.Netlist, p *circuit.Placement) {
	if g.rasterH == nil && g.solveH == nil {
		g.accumulate(n, p)
		g.solve()
		return
	}
	t0 := time.Now()
	g.accumulate(n, p)
	t1 := time.Now()
	g.rasterH.Observe(t1.Sub(t0).Seconds())
	g.solve()
	g.solveH.Observe(time.Since(t1).Seconds())
}

// accumulate rasterizes the inflated device footprints into the ρ bins.
// Devices are split into shards; each shard rasterizes into its own
// partial grid and the partials are added into ρ in shard order, so the
// per-bin summation tree depends only on the netlist, not on scheduling.
func (g *Electrostatic) accumulate(n *circuit.Netlist, p *circuit.Placement) {
	m := g.m
	for i := range g.rho {
		g.rho[i] = 0
	}
	nd := len(n.Devices)
	shards := par.ShardCount(nd, devGrain)
	if shards == 1 {
		g.rasterize(n, p, 0, nd, g.rho)
		return
	}
	bins := m * m
	if g.pool == nil {
		// Sequential shards reuse one partial grid, merged after each
		// shard — the identical additions, in the identical order, as
		// the pooled branch.
		g.ensurePartRho(1)
		for s := 0; s < shards; s++ {
			lo, hi := par.ShardRange(nd, shards, s)
			part := g.partRho[:bins]
			for i := range part {
				part[i] = 0
			}
			g.rasterize(n, p, lo, hi, part)
			for i, v := range part {
				g.rho[i] += v
			}
		}
		return
	}
	g.ensurePartRho(shards)
	g.pool.Run(shards, func(s int) {
		lo, hi := par.ShardRange(nd, shards, s)
		part := g.partRho[s*bins : (s+1)*bins]
		for i := range part {
			part[i] = 0
		}
		g.rasterize(n, p, lo, hi, part)
	})
	for s := 0; s < shards; s++ {
		part := g.partRho[s*bins : (s+1)*bins]
		for i, v := range part {
			g.rho[i] += v
		}
	}
}

// ensurePartRho sizes the partial-grid arena for the given shard count.
func (g *Electrostatic) ensurePartRho(shards int) {
	if need := shards * g.m * g.m; len(g.partRho) < need {
		g.partRho = make([]float64, need)
	}
}

// rasterize adds the footprints of devices [lo, hi) into the dst grid.
func (g *Electrostatic) rasterize(n *circuit.Netlist, p *circuit.Placement, lo, hi int, dst []float64) {
	m := g.m
	invBinArea := 1 / (g.binW * g.binH)
	for i := lo; i < hi; i++ {
		r, scale := g.inflated(n, p, i)
		if r.Empty() {
			continue
		}
		sb := scale * invBinArea
		x0, x1 := binRange(r.Lo.X, r.Hi.X, g.region.Lo.X, g.binW, m)
		y0, y1 := binRange(r.Lo.Y, r.Hi.Y, g.region.Lo.Y, g.binH, m)
		for by := y0; by < y1; by++ {
			ylo := g.region.Lo.Y + float64(by)*g.binH
			oy := math.Min(r.Hi.Y, ylo+g.binH) - math.Max(r.Lo.Y, ylo)
			if oy <= 0 {
				continue
			}
			for bx := x0; bx < x1; bx++ {
				xlo := g.region.Lo.X + float64(bx)*g.binW
				ox := math.Min(r.Hi.X, xlo+g.binW) - math.Max(r.Lo.X, xlo)
				if ox <= 0 {
					continue
				}
				dst[by*m+bx] += sb * ox * oy
			}
		}
	}
}

// solve computes ψ and ξ from the current ρ via the packed, fused
// spectral Poisson solve. Data flow (DESIGN.md §14 has the derivation):
//
//	F1  DCT over x of every ρ row (packed pairs)        → auv[y][u]
//	T1  tiled transpose                                 → work[u][y]
//	F2  DCT over y of every row, fused ·scaleTab        → auv[u][v]  (ψ coefficients)
//	R1  InvCos over v of every row                      → work[u][y] (shared half-reconstruction Q)
//	T2  tiled transpose                                 → coefBuf[y][u]
//	R2a InvCos over u → ψ rows; InvSin over u of wu·row → ξx rows; fused Σ ρ·ψ row partials
//	R1b InvSin over v of wv-scaled auv rows             → work[u][y]
//	T3  tiled transpose                                 → coefBuf[y][u]
//	R2b InvCos over u                                   → ξy rows
//
// The three reconstructions share work through linearity: the ξx
// coefficients a·wu/(wu²+wv²) are the ψ coefficients times a constant per
// u-line, so ξx reuses ψ's inverse-over-v pass (Q) and only pays its own
// inverse over u; likewise ξy's wv factor is constant per v and folds
// into a row scaling before its single extra inverse-over-v pass. That is
// 5 line passes instead of the 8 of three independent 2-D transforms, and
// with two real lines packed per complex FFT, 3.5m length-m FFTs per
// solve instead of 8m.
//
// Mean neutralization is implicit: subtracting the mean density only
// changes the (0,0) DCT term, and scaleTab zeroes exactly that term, so
// no explicit neutralization sweep is needed. The DCT normalization and
// Poisson kernel are likewise one fused table multiply (see SetRegion).
func (g *Electrostatic) solve() {
	m := g.m
	plan := g.plan
	// F1: forward DCT along x of every ρ row, two rows per complex FFT.
	g.forLinePairs(func(slot, y0, y1 int) {
		sc := &g.slots[slot]
		if y1 < 0 {
			plan.DCT2To(g.rho[y0*m:y0*m+m], g.auv[y0*m:y0*m+m], sc.fs)
			return
		}
		plan.DCT2PairTo(g.rho[y0*m:y0*m+m], g.rho[y1*m:y1*m+m],
			g.auv[y0*m:y0*m+m], g.auv[y1*m:y1*m+m], sc.fs)
	})
	// T1: [y][u] → [u][y] so the y-direction DCT runs on contiguous rows.
	g.transposeGrid(g.work, g.auv)
	// F2: forward DCT along y, scaled in place to ψ coefficients while the
	// rows are cache-hot.
	g.forLinePairs(func(slot, u0, u1 int) {
		sc := &g.slots[slot]
		o0 := g.auv[u0*m : u0*m+m]
		if u1 < 0 {
			plan.DCT2To(g.work[u0*m:u0*m+m], o0, sc.fs)
		} else {
			plan.DCT2PairTo(g.work[u0*m:u0*m+m], g.work[u1*m:u1*m+m],
				o0, g.auv[u1*m:u1*m+m], sc.fs)
		}
		for v, s := range g.scaleTab[u0*m : u0*m+m] {
			o0[v] *= s
		}
		if u1 >= 0 {
			o1 := g.auv[u1*m : u1*m+m]
			for v, s := range g.scaleTab[u1*m : u1*m+m] {
				o1[v] *= s
			}
		}
	})
	// R1: shared half-reconstruction Q[u][y] = InvCos over v of the ψ
	// coefficient rows. ψ and ξx both build on Q.
	g.forLinePairs(func(slot, u0, u1 int) {
		sc := &g.slots[slot]
		if u1 < 0 {
			plan.InvCosTo(g.auv[u0*m:u0*m+m], g.work[u0*m:u0*m+m], sc.fs)
			return
		}
		plan.InvCosPairTo(g.auv[u0*m:u0*m+m], g.auv[u1*m:u1*m+m],
			g.work[u0*m:u0*m+m], g.work[u1*m:u1*m+m], sc.fs)
	})
	// T2: Q[u][y] → coefBuf[y][u].
	g.transposeGrid(g.coefBuf, g.work)
	// R2a: per output row y, ψ = InvCos over u of Q^T, and ξx = InvSin
	// over u of the same row scaled by wu (the per-u constant that turns ψ
	// coefficients into ξx coefficients). The Σ ρ·ψ energy partial of each
	// finished ψ row is accumulated here too — a fixed per-row summation
	// order, so Energy stays bit-identical at every thread count.
	g.forLinePairs(func(slot, y0, y1 int) {
		sc := &g.slots[slot]
		q0 := g.coefBuf[y0*m : y0*m+m]
		if y1 < 0 {
			plan.InvCosTo(q0, g.psi[y0*m:y0*m+m], sc.fs)
			for u := 0; u < m; u++ {
				sc.b0[u] = g.wuTab[u] * q0[u]
			}
			plan.InvSinTo(sc.b0, g.ex[y0*m:y0*m+m], sc.fs)
			g.lineE[y0] = dot(g.rho[y0*m:y0*m+m], g.psi[y0*m:y0*m+m])
			return
		}
		q1 := g.coefBuf[y1*m : y1*m+m]
		plan.InvCosPairTo(q0, q1, g.psi[y0*m:y0*m+m], g.psi[y1*m:y1*m+m], sc.fs)
		for u := 0; u < m; u++ {
			w := g.wuTab[u]
			sc.b0[u] = w * q0[u]
			sc.b1[u] = w * q1[u]
		}
		plan.InvSinPairTo(sc.b0, sc.b1, g.ex[y0*m:y0*m+m], g.ex[y1*m:y1*m+m], sc.fs)
		g.lineE[y0] = dot(g.rho[y0*m:y0*m+m], g.psi[y0*m:y0*m+m])
		g.lineE[y1] = dot(g.rho[y1*m:y1*m+m], g.psi[y1*m:y1*m+m])
	})
	// R1b: S[u][y] = InvSin over v of the wv-scaled ψ coefficient rows
	// (wv is constant per v, so scaling the row is the whole ξy
	// coefficient build — no third coefficient grid).
	g.forLinePairs(func(slot, u0, u1 int) {
		sc := &g.slots[slot]
		for v, a := range g.auv[u0*m : u0*m+m] {
			sc.b0[v] = g.wvTab[v] * a
		}
		if u1 < 0 {
			plan.InvSinTo(sc.b0, g.work[u0*m:u0*m+m], sc.fs)
			return
		}
		for v, a := range g.auv[u1*m : u1*m+m] {
			sc.b1[v] = g.wvTab[v] * a
		}
		plan.InvSinPairTo(sc.b0, sc.b1, g.work[u0*m:u0*m+m], g.work[u1*m:u1*m+m], sc.fs)
	})
	// T3: S[u][y] → coefBuf[y][u].
	g.transposeGrid(g.coefBuf, g.work)
	// R2b: ξy rows = InvCos over u of S^T.
	g.forLinePairs(func(slot, y0, y1 int) {
		sc := &g.slots[slot]
		if y1 < 0 {
			plan.InvCosTo(g.coefBuf[y0*m:y0*m+m], g.ey[y0*m:y0*m+m], sc.fs)
			return
		}
		plan.InvCosPairTo(g.coefBuf[y0*m:y0*m+m], g.coefBuf[y1*m:y1*m+m],
			g.ey[y0*m:y0*m+m], g.ey[y1*m:y1*m+m], sc.fs)
	})
}

// forLinePairs runs body(slot, a, b) over the grid's m lines in the fixed
// packed pairing of par.ForPairs (b = -1 on the unpaired tail line of an
// odd count). Pairs must write disjoint outputs; slot indexes per-worker
// scratch.
func (g *Electrostatic) forLinePairs(body func(slot, a, b int)) {
	g.pool.ForPairs(g.m, body)
}

// transposeGrid writes the transpose of the m×m grid src into dst with
// the cache-blocked transpose, sharding tile-aligned row bands across the
// pool. A pure element move: sharding cannot affect the result.
func (g *Electrostatic) transposeGrid(dst, src []float64) {
	m := g.m
	g.pool.ForShards(m, 32, func(_, lo, hi int) {
		fft.TransposeBand(dst, src, m, lo, hi)
	})
}

// dot returns Σ a[i]·b[i] in index order.
func dot(a, b []float64) float64 {
	var s float64
	for i, v := range a {
		s += v * b[i]
	}
	return s
}

// Energy returns the electrostatic potential energy N(v) = ½·Σ q·ψ of the
// last Update. The per-row Σ ρ·ψ partials were accumulated while the ψ
// rows were cache-hot in solve; only the sequential row merge (fixed
// order — deterministic) and the ½·binArea scaling remain.
func (g *Electrostatic) Energy() float64 {
	var e float64
	for _, v := range g.lineE {
		e += v
	}
	return e * g.binW * g.binH / 2
}

// AddGrad accumulates ∂N/∂x_i = -q_i·ξ(i) into gradX/gradY, sampling the
// field over each device's (inflated) footprint weighted by bin overlap.
// Each device writes only its own gradient entry, so the device shards
// run on the pool with no reduction step.
func (g *Electrostatic) AddGrad(n *circuit.Netlist, p *circuit.Placement, gradX, gradY []float64) {
	var t0 time.Time
	if g.fieldH != nil {
		t0 = time.Now()
	}
	nd := len(n.Devices)
	shards := par.ShardCount(nd, devGrain)
	g.pool.Run(shards, func(s int) {
		lo, hi := par.ShardRange(nd, shards, s)
		g.addGradRange(n, p, gradX, gradY, lo, hi)
	})
	if g.fieldH != nil {
		g.fieldH.Observe(time.Since(t0).Seconds())
	}
}

// addGradRange samples the field for devices [lo, hi).
func (g *Electrostatic) addGradRange(n *circuit.Netlist, p *circuit.Placement, gradX, gradY []float64, lo, hi int) {
	m := g.m
	for i := lo; i < hi; i++ {
		r, scale := g.inflated(n, p, i)
		if r.Empty() {
			continue
		}
		x0, x1 := binRange(r.Lo.X, r.Hi.X, g.region.Lo.X, g.binW, m)
		y0, y1 := binRange(r.Lo.Y, r.Hi.Y, g.region.Lo.Y, g.binH, m)
		var fx, fy float64
		for by := y0; by < y1; by++ {
			ylo := g.region.Lo.Y + float64(by)*g.binH
			oy := math.Min(r.Hi.Y, ylo+g.binH) - math.Max(r.Lo.Y, ylo)
			if oy <= 0 {
				continue
			}
			for bx := x0; bx < x1; bx++ {
				xlo := g.region.Lo.X + float64(bx)*g.binW
				ox := math.Min(r.Hi.X, xlo+g.binW) - math.Max(r.Lo.X, xlo)
				if ox <= 0 {
					continue
				}
				q := scale * ox * oy
				fx += q * g.ex[by*m+bx]
				fy += q * g.ey[by*m+bx]
			}
		}
		gradX[i] -= fx
		gradY[i] -= fy
	}
}

// Overflow returns the density overflow ratio τ: the total device area in
// bins whose density exceeds targetDensity, normalized by total device
// area. ePlace-style global placement stops when τ drops below a threshold.
func (g *Electrostatic) Overflow(n *circuit.Netlist, targetDensity float64) float64 {
	binArea := g.binW * g.binH
	var over float64
	for _, r := range g.rho {
		if r > targetDensity {
			over += (r - targetDensity) * binArea
		}
	}
	total := n.TotalDeviceArea()
	if total == 0 {
		return 0
	}
	return over / total
}

// Rho returns the density value of bin (x, y) from the last Update
// (exported for diagnostics and tests).
func (g *Electrostatic) Rho(x, y int) float64 { return g.rho[y*g.m+x] }

// Psi returns the potential of bin (x, y) from the last Update.
func (g *Electrostatic) Psi(x, y int) float64 { return g.psi[y*g.m+x] }

// Field returns the (ξx, ξy) field of bin (x, y) from the last Update.
func (g *Electrostatic) Field(x, y int) (float64, float64) {
	return g.ex[y*g.m+x], g.ey[y*g.m+x]
}
