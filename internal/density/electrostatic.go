// Package density implements the two smoothed cell-overlap models compared
// in the paper: the electrostatics-based potential-energy model of ePlace
// (density as charge, overlap penalty as system energy, solved spectrally
// via DCT/DST transforms) used by ePlace-A, and the bell-shaped bin-density
// penalty of NTUplace3 used by the previous analytical work [11].
package density

import (
	"math"

	"repro/internal/circuit"
	"repro/internal/fft"
	"repro/internal/geom"
)

// Electrostatic is the ePlace density model: devices are positive charges
// whose density field ρ drives a Poisson equation ∇²ψ = -ρ; the overlap
// penalty N(v) is the system potential energy and its gradient is the
// electric field ξ = -∇ψ scaled by device charge. The Poisson solve is
// spectral: a 2-D DCT of ρ, per-frequency scaling, and inverse cosine/sine
// reconstructions for ψ, ξx, ξy.
type Electrostatic struct {
	m      int
	region geom.Rect
	binW   float64
	binH   float64

	plan *fft.Plan
	rho  []float64 // device area density per bin (area units / bin area)
	auv  []float64 // DCT coefficients of neutralized rho
	psi  []float64 // potential per bin
	ex   []float64 // field x-component per bin
	ey   []float64 // field y-component per bin

	coefBuf []float64 // scratch: scaled coefficients
	rowBuf  []float64
	rowOut  []float64
}

// NewElectrostatic creates an m×m electrostatic grid (m a power of two)
// covering region.
func NewElectrostatic(m int, region geom.Rect) *Electrostatic {
	g := &Electrostatic{
		m:       m,
		plan:    fft.NewPlan(m),
		rho:     make([]float64, m*m),
		auv:     make([]float64, m*m),
		psi:     make([]float64, m*m),
		ex:      make([]float64, m*m),
		ey:      make([]float64, m*m),
		coefBuf: make([]float64, m*m),
		rowBuf:  make([]float64, m),
		rowOut:  make([]float64, m),
	}
	g.SetRegion(region)
	return g
}

// SetRegion re-targets the grid onto a new placement region.
func (g *Electrostatic) SetRegion(region geom.Rect) {
	g.region = region
	g.binW = region.W() / float64(g.m)
	g.binH = region.H() / float64(g.m)
}

// Region returns the placement region the grid covers.
func (g *Electrostatic) Region() geom.Rect { return g.region }

// M returns the grid dimension (bins per side).
func (g *Electrostatic) M() int { return g.m }

// inflated returns the rasterization rectangle and charge-density scale for
// device i: devices narrower than a bin are inflated to one bin in that
// axis with their total charge (area) preserved, the standard ePlace
// treatment that keeps gradients smooth for small cells.
func (g *Electrostatic) inflated(n *circuit.Netlist, p *circuit.Placement, i int) (geom.Rect, float64) {
	d := &n.Devices[i]
	w, h := d.W, d.H
	scale := 1.0
	if w < g.binW {
		scale *= w / g.binW
		w = g.binW
	}
	if h < g.binH {
		scale *= h / g.binH
		h = g.binH
	}
	r := geom.RectCenter(geom.Point{X: p.X[i], Y: p.Y[i]}, w, h)
	// Clamp the rect into the region, preserving its size when possible.
	if dx := g.region.Lo.X - r.Lo.X; dx > 0 {
		r = r.Translate(geom.Point{X: dx})
	}
	if dx := g.region.Hi.X - r.Hi.X; dx < 0 {
		r = r.Translate(geom.Point{X: dx})
	}
	if dy := g.region.Lo.Y - r.Lo.Y; dy > 0 {
		r = r.Translate(geom.Point{Y: dy})
	}
	if dy := g.region.Hi.Y - r.Hi.Y; dy < 0 {
		r = r.Translate(geom.Point{Y: dy})
	}
	return g.region.Intersect(r), scale
}

// binRange returns the bin index range [lo, hi) overlapped by [a, b) along
// an axis with bin size s anchored at origin o.
func binRange(a, b, o, s float64, m int) (int, int) {
	lo := int(math.Floor((a - o) / s))
	hi := int(math.Ceil((b - o) / s))
	if lo < 0 {
		lo = 0
	}
	if hi > m {
		hi = m
	}
	return lo, hi
}

// Update rebuilds the density field from placement p and re-solves the
// Poisson system, refreshing ψ and ξ.
func (g *Electrostatic) Update(n *circuit.Netlist, p *circuit.Placement) {
	g.accumulate(n, p)
	g.solve()
}

// accumulate rasterizes the inflated device footprints into the ρ bins.
func (g *Electrostatic) accumulate(n *circuit.Netlist, p *circuit.Placement) {
	m := g.m
	for i := range g.rho {
		g.rho[i] = 0
	}
	binArea := g.binW * g.binH
	for i := range n.Devices {
		r, scale := g.inflated(n, p, i)
		if r.Empty() {
			continue
		}
		x0, x1 := binRange(r.Lo.X, r.Hi.X, g.region.Lo.X, g.binW, m)
		y0, y1 := binRange(r.Lo.Y, r.Hi.Y, g.region.Lo.Y, g.binH, m)
		for by := y0; by < y1; by++ {
			ylo := g.region.Lo.Y + float64(by)*g.binH
			oy := math.Min(r.Hi.Y, ylo+g.binH) - math.Max(r.Lo.Y, ylo)
			if oy <= 0 {
				continue
			}
			for bx := x0; bx < x1; bx++ {
				xlo := g.region.Lo.X + float64(bx)*g.binW
				ox := math.Min(r.Hi.X, xlo+g.binW) - math.Max(r.Lo.X, xlo)
				if ox <= 0 {
					continue
				}
				g.rho[by*m+bx] += scale * ox * oy / binArea
			}
		}
	}
}

// solve computes ψ and ξ from the current ρ via the spectral Poisson solve.
func (g *Electrostatic) solve() {
	m := g.m
	// Neutralize: subtract mean density so the DC term vanishes.
	var mean float64
	for _, v := range g.rho {
		mean += v
	}
	mean /= float64(m * m)
	for i, v := range g.rho {
		g.auv[i] = v - mean
	}
	// Forward 2-D DCT-II: rows (over x), then columns (over y).
	for y := 0; y < m; y++ {
		g.plan.DCT2(g.auv[y*m:(y+1)*m], g.auv[y*m:(y+1)*m])
	}
	for x := 0; x < m; x++ {
		for y := 0; y < m; y++ {
			g.rowBuf[y] = g.auv[y*m+x]
		}
		g.plan.DCT2(g.rowBuf, g.rowOut)
		for y := 0; y < m; y++ {
			g.auv[y*m+x] = g.rowOut[y]
		}
	}
	// Normalize to an exact cosine-series representation:
	// rho[x][y] = Σ auv cos cos with the (2/M)² and α₀ = 1/2 factors folded in.
	nrm := 4 / (float64(m) * float64(m))
	for v := 0; v < m; v++ {
		for u := 0; u < m; u++ {
			c := g.auv[v*m+u] * nrm
			if u == 0 {
				c /= 2
			}
			if v == 0 {
				c /= 2
			}
			g.auv[v*m+u] = c
		}
	}
	wu := func(u int) float64 { return math.Pi * float64(u) / (float64(g.m) * g.binW) }
	wv := func(v int) float64 { return math.Pi * float64(v) / (float64(g.m) * g.binH) }

	// ψ coefficients: a/(wu²+wv²); reconstruct cos(x)·cos(y).
	for v := 0; v < m; v++ {
		for u := 0; u < m; u++ {
			if u == 0 && v == 0 {
				g.coefBuf[0] = 0
				continue
			}
			g.coefBuf[v*m+u] = g.auv[v*m+u] / (wu(u)*wu(u) + wv(v)*wv(v))
		}
	}
	g.reconstruct(g.coefBuf, g.psi, false, false)

	// ξx coefficients: a·wu/(wu²+wv²); reconstruct sin(x)·cos(y).
	for v := 0; v < m; v++ {
		for u := 0; u < m; u++ {
			if u == 0 && v == 0 {
				g.coefBuf[0] = 0
				continue
			}
			g.coefBuf[v*m+u] = g.auv[v*m+u] * wu(u) / (wu(u)*wu(u) + wv(v)*wv(v))
		}
	}
	g.reconstruct(g.coefBuf, g.ex, true, false)

	// ξy coefficients: a·wv/(wu²+wv²); reconstruct cos(x)·sin(y).
	for v := 0; v < m; v++ {
		for u := 0; u < m; u++ {
			if u == 0 && v == 0 {
				g.coefBuf[0] = 0
				continue
			}
			g.coefBuf[v*m+u] = g.auv[v*m+u] * wv(v) / (wu(u)*wu(u) + wv(v)*wv(v))
		}
	}
	g.reconstruct(g.coefBuf, g.ey, false, true)
}

// reconstruct performs the 2-D inverse transform of coef into out, using a
// sine basis along x when sinX is set and along y when sinY is set (cosine
// otherwise). coef is indexed [v*m+u]; out is indexed [y*m+x].
func (g *Electrostatic) reconstruct(coef, out []float64, sinX, sinY bool) {
	m := g.m
	// Inverse along u → x for each v.
	for v := 0; v < m; v++ {
		row := coef[v*m : (v+1)*m]
		if sinX {
			g.plan.InvSin(row, g.rowOut)
		} else {
			g.plan.InvCos(row, g.rowOut)
		}
		copy(out[v*m:(v+1)*m], g.rowOut) // out temporarily holds [v][x]
	}
	// Inverse along v → y for each x.
	for x := 0; x < m; x++ {
		for v := 0; v < m; v++ {
			g.rowBuf[v] = out[v*m+x]
		}
		if sinY {
			g.plan.InvSin(g.rowBuf, g.rowOut)
		} else {
			g.plan.InvCos(g.rowBuf, g.rowOut)
		}
		for y := 0; y < m; y++ {
			out[y*m+x] = g.rowOut[y]
		}
	}
}

// Energy returns the electrostatic potential energy N(v) = ½·Σ q·ψ of the
// last Update.
func (g *Electrostatic) Energy() float64 {
	binArea := g.binW * g.binH
	var e float64
	for i, r := range g.rho {
		e += r * binArea * g.psi[i]
	}
	return e / 2
}

// AddGrad accumulates ∂N/∂x_i = -q_i·ξ(i) into gradX/gradY, sampling the
// field over each device's (inflated) footprint weighted by bin overlap.
func (g *Electrostatic) AddGrad(n *circuit.Netlist, p *circuit.Placement, gradX, gradY []float64) {
	m := g.m
	for i := range n.Devices {
		r, scale := g.inflated(n, p, i)
		if r.Empty() {
			continue
		}
		x0, x1 := binRange(r.Lo.X, r.Hi.X, g.region.Lo.X, g.binW, m)
		y0, y1 := binRange(r.Lo.Y, r.Hi.Y, g.region.Lo.Y, g.binH, m)
		var fx, fy float64
		for by := y0; by < y1; by++ {
			ylo := g.region.Lo.Y + float64(by)*g.binH
			oy := math.Min(r.Hi.Y, ylo+g.binH) - math.Max(r.Lo.Y, ylo)
			if oy <= 0 {
				continue
			}
			for bx := x0; bx < x1; bx++ {
				xlo := g.region.Lo.X + float64(bx)*g.binW
				ox := math.Min(r.Hi.X, xlo+g.binW) - math.Max(r.Lo.X, xlo)
				if ox <= 0 {
					continue
				}
				q := scale * ox * oy
				fx += q * g.ex[by*m+bx]
				fy += q * g.ey[by*m+bx]
			}
		}
		gradX[i] -= fx
		gradY[i] -= fy
	}
}

// Overflow returns the density overflow ratio τ: the total device area in
// bins whose density exceeds targetDensity, normalized by total device
// area. ePlace-style global placement stops when τ drops below a threshold.
func (g *Electrostatic) Overflow(n *circuit.Netlist, targetDensity float64) float64 {
	binArea := g.binW * g.binH
	var over float64
	for _, r := range g.rho {
		if r > targetDensity {
			over += (r - targetDensity) * binArea
		}
	}
	total := n.TotalDeviceArea()
	if total == 0 {
		return 0
	}
	return over / total
}

// Rho returns the density value of bin (x, y) from the last Update
// (exported for diagnostics and tests).
func (g *Electrostatic) Rho(x, y int) float64 { return g.rho[y*g.m+x] }

// Psi returns the potential of bin (x, y) from the last Update.
func (g *Electrostatic) Psi(x, y int) float64 { return g.psi[y*g.m+x] }

// Field returns the (ξx, ξy) field of bin (x, y) from the last Update.
func (g *Electrostatic) Field(x, y int) (float64, float64) {
	return g.ex[y*g.m+x], g.ey[y*g.m+x]
}
