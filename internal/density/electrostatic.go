// Package density implements the two smoothed cell-overlap models compared
// in the paper: the electrostatics-based potential-energy model of ePlace
// (density as charge, overlap penalty as system energy, solved spectrally
// via DCT/DST transforms) used by ePlace-A, and the bell-shaped bin-density
// penalty of NTUplace3 used by the previous analytical work [11].
package density

import (
	"math"
	"time"

	"repro/internal/circuit"
	"repro/internal/fft"
	"repro/internal/geom"
	"repro/internal/obs/metrics"
	"repro/internal/par"
)

// devGrain is the minimum number of devices per shard when rasterization
// and gradient sampling are split. Fixed so shard geometry — and with it
// the bin-sum merge order — depends only on the netlist size, keeping
// results bit-identical at every thread count.
const devGrain = 32

// gridScratch is the per-worker-slot working set for row/column transform
// passes: an fft.Scratch for the shared Plan plus gather/output lines.
type gridScratch struct {
	fs       *fft.Scratch
	buf, out []float64
}

// Electrostatic is the ePlace density model: devices are positive charges
// whose density field ρ drives a Poisson equation ∇²ψ = -ρ; the overlap
// penalty N(v) is the system potential energy and its gradient is the
// electric field ξ = -∇ψ scaled by device charge. The Poisson solve is
// spectral: a 2-D DCT of ρ, per-frequency scaling, and inverse cosine/sine
// reconstructions for ψ, ξx, ξy.
//
// Concurrency model: a grid built over a par.Pool parallelizes the three
// device-sharded passes (rasterization with per-shard partial ρ grids
// merged in shard order, field sampling with disjoint per-device writes)
// and the row/column transform passes of the spectral solve (disjoint
// lines, per-slot fft scratch). Shard geometry is a pure function of
// problem size, so pooled and inline execution produce identical bits.
// The grid itself is not safe for concurrent use by multiple goroutines.
type Electrostatic struct {
	m      int
	region geom.Rect
	binW   float64
	binH   float64
	pool   *par.Pool

	plan *fft.Plan
	rho  []float64 // device area density per bin (area units / bin area)
	auv  []float64 // DCT coefficients of neutralized rho
	psi  []float64 // potential per bin
	ex   []float64 // field x-component per bin
	ey   []float64 // field y-component per bin

	coefBuf []float64     // scratch: scaled coefficients
	slots   []gridScratch // per-worker-slot transform scratch
	partRho []float64     // per-shard partial ρ grids (one grid when pool is nil)

	// Per-call duration histograms for the three hot kernels, installed
	// with SetTimers. All nil by default: untimed calls pay one pointer
	// check (the obs/metrics zero-cost-when-nil contract).
	rasterH, solveH, fieldH *metrics.Histogram
}

// SetTimers installs per-call duration histograms for the grid's three
// kernels: ρ rasterization (Update's accumulate pass), the spectral
// Poisson solve (Update's transform pass), and field sampling (AddGrad).
// Timing is observation-only — it cannot change a single result bit — and
// any handle may be nil to skip that kernel.
func (g *Electrostatic) SetTimers(raster, solve, field *metrics.Histogram) {
	g.rasterH, g.solveH, g.fieldH = raster, solve, field
}

// NewElectrostatic creates an m×m electrostatic grid (m a power of two)
// covering region, running inline on the calling goroutine.
func NewElectrostatic(m int, region geom.Rect) *Electrostatic {
	return NewElectrostaticPool(m, region, nil)
}

// NewElectrostaticPool is NewElectrostatic with a worker pool for the
// rasterization, solve, and gradient kernels. A nil pool is valid and
// means inline execution with identical result bits.
func NewElectrostaticPool(m int, region geom.Rect, pool *par.Pool) *Electrostatic {
	g := &Electrostatic{
		m:       m,
		pool:    pool,
		plan:    fft.NewPlan(m),
		rho:     make([]float64, m*m),
		auv:     make([]float64, m*m),
		psi:     make([]float64, m*m),
		ex:      make([]float64, m*m),
		ey:      make([]float64, m*m),
		coefBuf: make([]float64, m*m),
		slots:   make([]gridScratch, pool.Workers()),
	}
	for i := range g.slots {
		g.slots[i] = gridScratch{
			fs:  g.plan.NewScratch(),
			buf: make([]float64, m),
			out: make([]float64, m),
		}
	}
	g.SetRegion(region)
	return g
}

// SetRegion re-targets the grid onto a new placement region.
func (g *Electrostatic) SetRegion(region geom.Rect) {
	g.region = region
	g.binW = region.W() / float64(g.m)
	g.binH = region.H() / float64(g.m)
}

// Region returns the placement region the grid covers.
func (g *Electrostatic) Region() geom.Rect { return g.region }

// M returns the grid dimension (bins per side).
func (g *Electrostatic) M() int { return g.m }

// inflated returns the rasterization rectangle and charge-density scale for
// device i: devices narrower than a bin are inflated to one bin in that
// axis with their total charge (area) preserved, the standard ePlace
// treatment that keeps gradients smooth for small cells.
func (g *Electrostatic) inflated(n *circuit.Netlist, p *circuit.Placement, i int) (geom.Rect, float64) {
	d := &n.Devices[i]
	w, h := d.W, d.H
	scale := 1.0
	if w < g.binW {
		scale *= w / g.binW
		w = g.binW
	}
	if h < g.binH {
		scale *= h / g.binH
		h = g.binH
	}
	r := geom.RectCenter(geom.Point{X: p.X[i], Y: p.Y[i]}, w, h)
	// Clamp the rect into the region, preserving its size when possible.
	if dx := g.region.Lo.X - r.Lo.X; dx > 0 {
		r = r.Translate(geom.Point{X: dx})
	}
	if dx := g.region.Hi.X - r.Hi.X; dx < 0 {
		r = r.Translate(geom.Point{X: dx})
	}
	if dy := g.region.Lo.Y - r.Lo.Y; dy > 0 {
		r = r.Translate(geom.Point{Y: dy})
	}
	if dy := g.region.Hi.Y - r.Hi.Y; dy < 0 {
		r = r.Translate(geom.Point{Y: dy})
	}
	return g.region.Intersect(r), scale
}

// binRange returns the bin index range [lo, hi) overlapped by [a, b) along
// an axis with bin size s anchored at origin o.
func binRange(a, b, o, s float64, m int) (int, int) {
	lo := int(math.Floor((a - o) / s))
	hi := int(math.Ceil((b - o) / s))
	if lo < 0 {
		lo = 0
	}
	if hi > m {
		hi = m
	}
	return lo, hi
}

// Update rebuilds the density field from placement p and re-solves the
// Poisson system, refreshing ψ and ξ.
func (g *Electrostatic) Update(n *circuit.Netlist, p *circuit.Placement) {
	if g.rasterH == nil && g.solveH == nil {
		g.accumulate(n, p)
		g.solve()
		return
	}
	t0 := time.Now()
	g.accumulate(n, p)
	t1 := time.Now()
	g.rasterH.Observe(t1.Sub(t0).Seconds())
	g.solve()
	g.solveH.Observe(time.Since(t1).Seconds())
}

// accumulate rasterizes the inflated device footprints into the ρ bins.
// Devices are split into shards; each shard rasterizes into its own
// partial grid and the partials are added into ρ in shard order, so the
// per-bin summation tree depends only on the netlist, not on scheduling.
func (g *Electrostatic) accumulate(n *circuit.Netlist, p *circuit.Placement) {
	m := g.m
	for i := range g.rho {
		g.rho[i] = 0
	}
	nd := len(n.Devices)
	shards := par.ShardCount(nd, devGrain)
	if shards == 1 {
		g.rasterize(n, p, 0, nd, g.rho)
		return
	}
	bins := m * m
	if g.pool == nil {
		// Sequential shards reuse one partial grid, merged after each
		// shard — the identical additions, in the identical order, as
		// the pooled branch.
		g.ensurePartRho(1)
		for s := 0; s < shards; s++ {
			lo, hi := par.ShardRange(nd, shards, s)
			part := g.partRho[:bins]
			for i := range part {
				part[i] = 0
			}
			g.rasterize(n, p, lo, hi, part)
			for i, v := range part {
				g.rho[i] += v
			}
		}
		return
	}
	g.ensurePartRho(shards)
	g.pool.Run(shards, func(s int) {
		lo, hi := par.ShardRange(nd, shards, s)
		part := g.partRho[s*bins : (s+1)*bins]
		for i := range part {
			part[i] = 0
		}
		g.rasterize(n, p, lo, hi, part)
	})
	for s := 0; s < shards; s++ {
		part := g.partRho[s*bins : (s+1)*bins]
		for i, v := range part {
			g.rho[i] += v
		}
	}
}

// ensurePartRho sizes the partial-grid arena for the given shard count.
func (g *Electrostatic) ensurePartRho(shards int) {
	if need := shards * g.m * g.m; len(g.partRho) < need {
		g.partRho = make([]float64, need)
	}
}

// rasterize adds the footprints of devices [lo, hi) into the dst grid.
func (g *Electrostatic) rasterize(n *circuit.Netlist, p *circuit.Placement, lo, hi int, dst []float64) {
	m := g.m
	binArea := g.binW * g.binH
	for i := lo; i < hi; i++ {
		r, scale := g.inflated(n, p, i)
		if r.Empty() {
			continue
		}
		x0, x1 := binRange(r.Lo.X, r.Hi.X, g.region.Lo.X, g.binW, m)
		y0, y1 := binRange(r.Lo.Y, r.Hi.Y, g.region.Lo.Y, g.binH, m)
		for by := y0; by < y1; by++ {
			ylo := g.region.Lo.Y + float64(by)*g.binH
			oy := math.Min(r.Hi.Y, ylo+g.binH) - math.Max(r.Lo.Y, ylo)
			if oy <= 0 {
				continue
			}
			for bx := x0; bx < x1; bx++ {
				xlo := g.region.Lo.X + float64(bx)*g.binW
				ox := math.Min(r.Hi.X, xlo+g.binW) - math.Max(r.Lo.X, xlo)
				if ox <= 0 {
					continue
				}
				dst[by*m+bx] += scale * ox * oy / binArea
			}
		}
	}
}

// solve computes ψ and ξ from the current ρ via the spectral Poisson solve.
func (g *Electrostatic) solve() {
	m := g.m
	// Neutralize: subtract mean density so the DC term vanishes.
	var mean float64
	for _, v := range g.rho {
		mean += v
	}
	mean /= float64(m * m)
	for i, v := range g.rho {
		g.auv[i] = v - mean
	}
	// Forward 2-D DCT-II: rows (over x), then columns (over y). Lines
	// are independent and write disjoint slices, so each pass fans out
	// across the pool with per-slot scratch.
	g.forLines(func(slot, y int) {
		g.plan.DCT2To(g.auv[y*m:(y+1)*m], g.auv[y*m:(y+1)*m], g.slots[slot].fs)
	})
	g.forLines(func(slot, x int) {
		sc := &g.slots[slot]
		for y := 0; y < m; y++ {
			sc.buf[y] = g.auv[y*m+x]
		}
		g.plan.DCT2To(sc.buf, sc.out, sc.fs)
		for y := 0; y < m; y++ {
			g.auv[y*m+x] = sc.out[y]
		}
	})
	// Normalize to an exact cosine-series representation:
	// rho[x][y] = Σ auv cos cos with the (2/M)² and α₀ = 1/2 factors folded in.
	nrm := 4 / (float64(m) * float64(m))
	for v := 0; v < m; v++ {
		for u := 0; u < m; u++ {
			c := g.auv[v*m+u] * nrm
			if u == 0 {
				c /= 2
			}
			if v == 0 {
				c /= 2
			}
			g.auv[v*m+u] = c
		}
	}
	wu := func(u int) float64 { return math.Pi * float64(u) / (float64(g.m) * g.binW) }
	wv := func(v int) float64 { return math.Pi * float64(v) / (float64(g.m) * g.binH) }

	// ψ coefficients: a/(wu²+wv²); reconstruct cos(x)·cos(y).
	for v := 0; v < m; v++ {
		for u := 0; u < m; u++ {
			if u == 0 && v == 0 {
				g.coefBuf[0] = 0
				continue
			}
			g.coefBuf[v*m+u] = g.auv[v*m+u] / (wu(u)*wu(u) + wv(v)*wv(v))
		}
	}
	g.reconstruct(g.coefBuf, g.psi, false, false)

	// ξx coefficients: a·wu/(wu²+wv²); reconstruct sin(x)·cos(y).
	for v := 0; v < m; v++ {
		for u := 0; u < m; u++ {
			if u == 0 && v == 0 {
				g.coefBuf[0] = 0
				continue
			}
			g.coefBuf[v*m+u] = g.auv[v*m+u] * wu(u) / (wu(u)*wu(u) + wv(v)*wv(v))
		}
	}
	g.reconstruct(g.coefBuf, g.ex, true, false)

	// ξy coefficients: a·wv/(wu²+wv²); reconstruct cos(x)·sin(y).
	for v := 0; v < m; v++ {
		for u := 0; u < m; u++ {
			if u == 0 && v == 0 {
				g.coefBuf[0] = 0
				continue
			}
			g.coefBuf[v*m+u] = g.auv[v*m+u] * wv(v) / (wu(u)*wu(u) + wv(v)*wv(v))
		}
	}
	g.reconstruct(g.coefBuf, g.ey, false, true)
}

// forLines runs body(slot, line) for each of the grid's m lines on the
// pool, one shard per contiguous line range. Lines must write disjoint
// outputs; slot indexes per-worker scratch.
func (g *Electrostatic) forLines(body func(slot, line int)) {
	shards := par.ShardCount(g.m, 1)
	g.pool.RunIndexed(shards, func(slot, s int) {
		lo, hi := par.ShardRange(g.m, shards, s)
		for line := lo; line < hi; line++ {
			body(slot, line)
		}
	})
}

// reconstruct performs the 2-D inverse transform of coef into out, using a
// sine basis along x when sinX is set and along y when sinY is set (cosine
// otherwise). coef is indexed [v*m+u]; out is indexed [y*m+x]. Both passes
// fan out across the pool line-by-line.
func (g *Electrostatic) reconstruct(coef, out []float64, sinX, sinY bool) {
	m := g.m
	// Inverse along u → x for each v.
	g.forLines(func(slot, v int) {
		sc := &g.slots[slot]
		row := coef[v*m : (v+1)*m]
		if sinX {
			g.plan.InvSinTo(row, sc.out, sc.fs)
		} else {
			g.plan.InvCosTo(row, sc.out, sc.fs)
		}
		copy(out[v*m:(v+1)*m], sc.out) // out temporarily holds [v][x]
	})
	// Inverse along v → y for each x.
	g.forLines(func(slot, x int) {
		sc := &g.slots[slot]
		for v := 0; v < m; v++ {
			sc.buf[v] = out[v*m+x]
		}
		if sinY {
			g.plan.InvSinTo(sc.buf, sc.out, sc.fs)
		} else {
			g.plan.InvCosTo(sc.buf, sc.out, sc.fs)
		}
		for y := 0; y < m; y++ {
			out[y*m+x] = sc.out[y]
		}
	})
}

// Energy returns the electrostatic potential energy N(v) = ½·Σ q·ψ of the
// last Update.
func (g *Electrostatic) Energy() float64 {
	binArea := g.binW * g.binH
	var e float64
	for i, r := range g.rho {
		e += r * binArea * g.psi[i]
	}
	return e / 2
}

// AddGrad accumulates ∂N/∂x_i = -q_i·ξ(i) into gradX/gradY, sampling the
// field over each device's (inflated) footprint weighted by bin overlap.
// Each device writes only its own gradient entry, so the device shards
// run on the pool with no reduction step.
func (g *Electrostatic) AddGrad(n *circuit.Netlist, p *circuit.Placement, gradX, gradY []float64) {
	var t0 time.Time
	if g.fieldH != nil {
		t0 = time.Now()
	}
	nd := len(n.Devices)
	shards := par.ShardCount(nd, devGrain)
	g.pool.Run(shards, func(s int) {
		lo, hi := par.ShardRange(nd, shards, s)
		g.addGradRange(n, p, gradX, gradY, lo, hi)
	})
	if g.fieldH != nil {
		g.fieldH.Observe(time.Since(t0).Seconds())
	}
}

// addGradRange samples the field for devices [lo, hi).
func (g *Electrostatic) addGradRange(n *circuit.Netlist, p *circuit.Placement, gradX, gradY []float64, lo, hi int) {
	m := g.m
	for i := lo; i < hi; i++ {
		r, scale := g.inflated(n, p, i)
		if r.Empty() {
			continue
		}
		x0, x1 := binRange(r.Lo.X, r.Hi.X, g.region.Lo.X, g.binW, m)
		y0, y1 := binRange(r.Lo.Y, r.Hi.Y, g.region.Lo.Y, g.binH, m)
		var fx, fy float64
		for by := y0; by < y1; by++ {
			ylo := g.region.Lo.Y + float64(by)*g.binH
			oy := math.Min(r.Hi.Y, ylo+g.binH) - math.Max(r.Lo.Y, ylo)
			if oy <= 0 {
				continue
			}
			for bx := x0; bx < x1; bx++ {
				xlo := g.region.Lo.X + float64(bx)*g.binW
				ox := math.Min(r.Hi.X, xlo+g.binW) - math.Max(r.Lo.X, xlo)
				if ox <= 0 {
					continue
				}
				q := scale * ox * oy
				fx += q * g.ex[by*m+bx]
				fy += q * g.ey[by*m+bx]
			}
		}
		gradX[i] -= fx
		gradY[i] -= fy
	}
}

// Overflow returns the density overflow ratio τ: the total device area in
// bins whose density exceeds targetDensity, normalized by total device
// area. ePlace-style global placement stops when τ drops below a threshold.
func (g *Electrostatic) Overflow(n *circuit.Netlist, targetDensity float64) float64 {
	binArea := g.binW * g.binH
	var over float64
	for _, r := range g.rho {
		if r > targetDensity {
			over += (r - targetDensity) * binArea
		}
	}
	total := n.TotalDeviceArea()
	if total == 0 {
		return 0
	}
	return over / total
}

// Rho returns the density value of bin (x, y) from the last Update
// (exported for diagnostics and tests).
func (g *Electrostatic) Rho(x, y int) float64 { return g.rho[y*g.m+x] }

// Psi returns the potential of bin (x, y) from the last Update.
func (g *Electrostatic) Psi(x, y int) float64 { return g.psi[y*g.m+x] }

// Field returns the (ξx, ξy) field of bin (x, y) from the last Update.
func (g *Electrostatic) Field(x, y int) (float64, float64) {
	return g.ex[y*g.m+x], g.ey[y*g.m+x]
}
