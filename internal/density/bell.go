package density

import (
	"math"

	"repro/internal/circuit"
	"repro/internal/geom"
)

// Bell is the NTUplace3-style smoothed bin-density model used by the
// previous analytical work [11]: each device spreads its area into nearby
// bins through a C¹ bell-shaped kernel, and the penalty is the squared
// excess of bin density over a target. This is the Overlap(v) smoothing the
// baseline global placer optimizes with conjugate gradient.
type Bell struct {
	m      int
	region geom.Rect
	binW   float64
	binH   float64
	target float64 // target density ratio in [0, 1]

	dens  []float64 // smoothed area per bin
	cNorm []float64 // per-device normalization so total spread equals area
}

// NewBell creates an m×m bell-shaped density grid over region with the
// given target density ratio (typically ~1 for macro-style analog
// placement).
func NewBell(m int, region geom.Rect, target float64) *Bell {
	b := &Bell{
		m:      m,
		target: target,
		dens:   make([]float64, m*m),
	}
	b.SetRegion(region)
	return b
}

// SetRegion re-targets the grid onto a new placement region.
func (b *Bell) SetRegion(region geom.Rect) {
	b.region = region
	b.binW = region.W() / float64(b.m)
	b.binH = region.H() / float64(b.m)
}

// bell evaluates the C¹ bell kernel for half-width w2 (= device dim / 2)
// and bin size r at center distance d, plus its derivative with respect to
// d. The kernel is 1 at d = 0, rolls off quadratically, and reaches zero
// with zero slope at d = w2 + 2r (NTUplace3's px function).
func bell(d, w2, r float64) (val, deriv float64) {
	d1 := w2 + r
	d2 := w2 + 2*r
	ad := math.Abs(d)
	sign := 1.0
	if d < 0 {
		sign = -1
	}
	switch {
	case ad <= d1:
		a := 1 / (d1 * d2)
		return 1 - a*ad*ad, -2 * a * ad * sign
	case ad <= d2:
		bb := 1 / (r * d2)
		t := ad - d2
		return bb * t * t, 2 * bb * t * sign
	default:
		return 0, 0
	}
}

// Update recomputes the smoothed density field for placement p, including
// the per-device normalization constants.
func (b *Bell) Update(n *circuit.Netlist, p *circuit.Placement) {
	m := b.m
	for i := range b.dens {
		b.dens[i] = 0
	}
	if len(b.cNorm) != len(n.Devices) {
		b.cNorm = make([]float64, len(n.Devices))
	}
	for i := range n.Devices {
		d := &n.Devices[i]
		// First pass: raw kernel sum for normalization.
		var sum float64
		b.visit(n, p, i, func(bx, by int, px, py, _, _ float64) {
			sum += px * py
		})
		if sum <= 0 {
			b.cNorm[i] = 0
			continue
		}
		b.cNorm[i] = d.Area() / sum
		c := b.cNorm[i]
		b.visit(n, p, i, func(bx, by int, px, py, _, _ float64) {
			b.dens[by*m+bx] += c * px * py
		})
	}
}

// visit calls fn for every bin within device i's kernel support with the
// per-axis kernel values and derivatives. Kernel mass that would land
// outside the region is folded into the nearest edge bin (with the kernel
// still evaluated at the virtual bin center), so the region boundary piles
// up density and repels devices instead of silently swallowing their mass —
// without this, boundaries act as density sinks and the placement drifts
// into a wall.
func (b *Bell) visit(n *circuit.Netlist, p *circuit.Placement, i int,
	fn func(bx, by int, px, py, dpx, dpy float64)) {
	d := &n.Devices[i]
	cx, cy := p.X[i], p.Y[i]
	suppX := d.W/2 + 2*b.binW
	suppY := d.H/2 + 2*b.binH
	x0 := int(math.Floor((cx - suppX - b.region.Lo.X) / b.binW))
	x1 := int(math.Ceil((cx + suppX - b.region.Lo.X) / b.binW))
	y0 := int(math.Floor((cy - suppY - b.region.Lo.Y) / b.binH))
	y1 := int(math.Ceil((cy + suppY - b.region.Lo.Y) / b.binH))
	clampIdx := func(v int) int {
		if v < 0 {
			return 0
		}
		if v >= b.m {
			return b.m - 1
		}
		return v
	}
	for by := y0; by < y1; by++ {
		bcy := b.region.Lo.Y + (float64(by)+0.5)*b.binH
		py, dpy := bell(bcy-cy, d.H/2, b.binH)
		if py == 0 {
			continue
		}
		for bx := x0; bx < x1; bx++ {
			bcx := b.region.Lo.X + (float64(bx)+0.5)*b.binW
			px, dpx := bell(bcx-cx, d.W/2, b.binW)
			if px == 0 {
				continue
			}
			fn(clampIdx(bx), clampIdx(by), px, py, dpx, dpy)
		}
	}
}

// Penalty returns the squared-excess density penalty
// Σ_b max(0, D_b - target·binArea)² from the last Update.
func (b *Bell) Penalty() float64 {
	t := b.target * b.binW * b.binH
	var s float64
	for _, d := range b.dens {
		if d > t {
			e := d - t
			s += e * e
		}
	}
	return s
}

// AddGrad accumulates the penalty gradient with respect to device centers
// into gradX/gradY, using the kernel derivatives and the last Update's
// density field (normalization constants treated as locally constant, the
// standard NTUplace3 approximation). Note the kernel derivative with
// respect to the device center is the negative of the derivative with
// respect to bin-center distance.
func (b *Bell) AddGrad(n *circuit.Netlist, p *circuit.Placement, gradX, gradY []float64) {
	m := b.m
	t := b.target * b.binW * b.binH
	for i := range n.Devices {
		c := b.cNorm[i]
		if c == 0 {
			continue
		}
		var gx, gy float64
		b.visit(n, p, i, func(bx, by int, px, py, dpx, dpy float64) {
			e := b.dens[by*m+bx] - t
			if e <= 0 {
				return
			}
			gx += 2 * e * c * (-dpx) * py
			gy += 2 * e * c * px * (-dpy)
		})
		gradX[i] += gx
		gradY[i] += gy
	}
}

// Overflow returns the fraction of total device area sitting in bins above
// the target density, mirroring Electrostatic.Overflow for stop criteria.
func (b *Bell) Overflow(n *circuit.Netlist) float64 {
	t := b.target * b.binW * b.binH
	var over float64
	for _, d := range b.dens {
		if d > t {
			over += d - t
		}
	}
	total := n.TotalDeviceArea()
	if total == 0 {
		return 0
	}
	return over / total
}
