package density

import (
	"math"
	"testing"

	"repro/internal/circuit"
	"repro/internal/geom"
)

// cluster builds k square devices of side s and a placement (no nets; the
// density models ignore connectivity).
func cluster(k int, s float64) (*circuit.Netlist, *circuit.Placement) {
	n := &circuit.Netlist{Name: "cluster"}
	for i := 0; i < k; i++ {
		n.Devices = append(n.Devices, circuit.Device{Name: "d", W: s, H: s})
	}
	return n, circuit.NewPlacement(n)
}

func region() geom.Rect { return geom.RectWH(0, 0, 64, 64) }

func TestElectrostaticChargeConservation(t *testing.T) {
	n, p := cluster(3, 6)
	p.X[0], p.Y[0] = 20, 20
	p.X[1], p.Y[1] = 40, 30
	p.X[2], p.Y[2] = 30, 45
	g := NewElectrostatic(64, region())
	g.Update(n, p)
	binArea := (64.0 / 64) * (64.0 / 64)
	var sum float64
	for y := 0; y < 64; y++ {
		for x := 0; x < 64; x++ {
			sum += g.Rho(x, y) * binArea
		}
	}
	want := n.TotalDeviceArea()
	if math.Abs(sum-want) > 1e-6*want {
		t.Errorf("rasterized charge %.6f, want %.6f", sum, want)
	}
}

func TestElectrostaticSmallDeviceInflationConservesCharge(t *testing.T) {
	// Device smaller than a bin: inflation must preserve total charge.
	n, p := cluster(1, 0.3)
	p.X[0], p.Y[0] = 32, 32
	g := NewElectrostatic(64, region()) // bin = 1x1 > 0.3x0.3
	g.Update(n, p)
	var sum float64
	for y := 0; y < 64; y++ {
		for x := 0; x < 64; x++ {
			sum += g.Rho(x, y)
		}
	}
	if math.Abs(sum-0.09) > 1e-9 {
		t.Errorf("inflated charge %.6f, want 0.09", sum)
	}
}

func TestElectrostaticGradientPushesApart(t *testing.T) {
	n, p := cluster(2, 8)
	// A left of B, heavily overlapped.
	p.X[0], p.Y[0] = 30, 32
	p.X[1], p.Y[1] = 34, 32
	g := NewElectrostatic(64, region())
	g.Update(n, p)
	gx := make([]float64, 2)
	gy := make([]float64, 2)
	g.AddGrad(n, p, gx, gy)
	// Descending the gradient must separate them: ∂N/∂x_A > 0 (A pushed
	// left), ∂N/∂x_B < 0 (B pushed right).
	if gx[0] <= 0 || gx[1] >= 0 {
		t.Errorf("gradient does not separate: gx = %v", gx)
	}
	// y-forces should roughly cancel by symmetry.
	if math.Abs(gy[0]) > 0.2*math.Abs(gx[0]) {
		t.Errorf("unexpected y force %g vs x force %g", gy[0], gx[0])
	}
}

func TestElectrostaticEnergyDecreasesWithSeparation(t *testing.T) {
	n, p := cluster(2, 8)
	g := NewElectrostatic(64, region())
	var prev float64
	for step, sep := range []float64{0, 4, 8, 16} {
		p.X[0], p.Y[0] = 32-sep/2-4, 32
		p.X[1], p.Y[1] = 32+sep/2+4, 32
		g.Update(n, p)
		e := g.Energy()
		if step > 0 && e >= prev {
			t.Errorf("energy did not decrease with separation %g: %g >= %g", sep, e, prev)
		}
		prev = e
	}
}

func TestElectrostaticFieldMirrorSymmetry(t *testing.T) {
	n, p := cluster(2, 8)
	p.X[0], p.Y[0] = 24, 32
	p.X[1], p.Y[1] = 40, 32
	g := NewElectrostatic(64, region())
	g.Update(n, p)
	// The configuration is mirror-symmetric about x = 32 (bin column 31.5),
	// so ξx(x, y) ≈ -ξx(63-x, y) up to rasterization asymmetry.
	for _, y := range []int{20, 32, 44} {
		for _, x := range []int{10, 20, 28} {
			exL, _ := g.Field(x, y)
			exR, _ := g.Field(63-x, y)
			if math.Abs(exL+exR) > 1e-6+0.05*math.Abs(exL) {
				t.Errorf("field asymmetry at (%d,%d): %g vs %g", x, y, exL, exR)
			}
		}
	}
}

func TestElectrostaticOverflow(t *testing.T) {
	n, p := cluster(4, 8)
	g := NewElectrostatic(64, region())
	// Fully stacked: heavy overflow.
	for i := range p.X {
		p.X[i], p.Y[i] = 32, 32
	}
	g.Update(n, p)
	packed := g.Overflow(n, 1.0)
	// Spread out: minimal overflow.
	coords := [][2]float64{{12, 12}, {12, 48}, {48, 12}, {48, 48}}
	for i, c := range coords {
		p.X[i], p.Y[i] = c[0], c[1]
	}
	g.Update(n, p)
	spread := g.Overflow(n, 1.0)
	if packed < 0.5 {
		t.Errorf("packed overflow %.3f unexpectedly low", packed)
	}
	if spread > 0.1 {
		t.Errorf("spread overflow %.3f unexpectedly high", spread)
	}
}

func TestElectrostaticClampsOutsideDevices(t *testing.T) {
	n, p := cluster(1, 6)
	p.X[0], p.Y[0] = -50, 100 // far outside the region
	g := NewElectrostatic(64, region())
	g.Update(n, p)
	var sum float64
	for y := 0; y < 64; y++ {
		for x := 0; x < 64; x++ {
			sum += g.Rho(x, y)
		}
	}
	if math.Abs(sum-36) > 1e-6 {
		t.Errorf("outside device charge %.4f, want 36 (clamped into region)", sum)
	}
}

func TestElectrostaticAccessors(t *testing.T) {
	g := NewElectrostatic(32, region())
	if g.M() != 32 {
		t.Errorf("M = %d", g.M())
	}
	if g.Region() != region() {
		t.Errorf("Region = %v", g.Region())
	}
	g.SetRegion(geom.RectWH(0, 0, 128, 128))
	if g.Region().W() != 128 {
		t.Errorf("SetRegion not applied")
	}
}

func TestBellKernelShape(t *testing.T) {
	const w2, r = 4.0, 1.0
	v0, _ := bell(0, w2, r)
	if v0 != 1 {
		t.Errorf("bell(0) = %g, want 1", v0)
	}
	// Zero value and slope at the support edge.
	vEdge, dEdge := bell(w2+2*r, w2, r)
	if vEdge != 0 || dEdge != 0 {
		t.Errorf("bell at support edge = %g, %g; want 0, 0", vEdge, dEdge)
	}
	vOut, dOut := bell(w2+2*r+0.5, w2, r)
	if vOut != 0 || dOut != 0 {
		t.Errorf("bell outside support = %g, %g", vOut, dOut)
	}
	// C¹ continuity at the piece boundary d1 = w2 + r.
	const h = 1e-7
	d1 := w2 + r
	vm, _ := bell(d1-h, w2, r)
	vp, _ := bell(d1+h, w2, r)
	if math.Abs(vm-vp) > 1e-5 {
		t.Errorf("bell value discontinuous at d1: %g vs %g", vm, vp)
	}
	_, sm := bell(d1-h, w2, r)
	_, sp := bell(d1+h, w2, r)
	if math.Abs(sm-sp) > 1e-4 {
		t.Errorf("bell slope discontinuous at d1: %g vs %g", sm, sp)
	}
	// Symmetry and odd derivative.
	vPos, dPos := bell(2.5, w2, r)
	vNeg, dNeg := bell(-2.5, w2, r)
	if vPos != vNeg || dPos != -dNeg {
		t.Errorf("bell not even/odd: (%g,%g) vs (%g,%g)", vPos, dPos, vNeg, dNeg)
	}
	// Derivative matches finite differences inside both pieces.
	for _, d := range []float64{1.0, 4.6} {
		vp, _ := bell(d+h, w2, r)
		vm, _ := bell(d-h, w2, r)
		fd := (vp - vm) / (2 * h)
		_, an := bell(d, w2, r)
		if math.Abs(fd-an) > 1e-5 {
			t.Errorf("bell'(%g): FD %g vs analytic %g", d, fd, an)
		}
	}
}

func TestBellConservation(t *testing.T) {
	n, p := cluster(2, 6)
	p.X[0], p.Y[0] = 20, 20
	p.X[1], p.Y[1] = 44, 40
	b := NewBell(64, region(), 1.0)
	b.Update(n, p)
	var sum float64
	for _, d := range b.dens {
		sum += d
	}
	want := n.TotalDeviceArea()
	if math.Abs(sum-want) > 1e-6*want {
		t.Errorf("bell density total %.6f, want %.6f", sum, want)
	}
}

func TestBellGradientPushesApart(t *testing.T) {
	n, p := cluster(2, 8)
	p.X[0], p.Y[0] = 30, 32
	p.X[1], p.Y[1] = 34, 32
	b := NewBell(64, region(), 1.0)
	b.Update(n, p)
	if b.Penalty() <= 0 {
		t.Fatal("overlapping devices should have positive penalty")
	}
	gx := make([]float64, 2)
	gy := make([]float64, 2)
	b.AddGrad(n, p, gx, gy)
	if gx[0] <= 0 || gx[1] >= 0 {
		t.Errorf("bell gradient does not separate: gx = %v", gx)
	}
}

func TestBellGradientFiniteDifference(t *testing.T) {
	n, p := cluster(3, 7)
	p.X[0], p.Y[0] = 28, 30
	p.X[1], p.Y[1] = 33, 33
	p.X[2], p.Y[2] = 30, 37
	b := NewBell(64, region(), 1.0)

	eval := func() float64 {
		b.Update(n, p)
		return b.Penalty()
	}
	b.Update(n, p)
	gx := make([]float64, 3)
	gy := make([]float64, 3)
	b.AddGrad(n, p, gx, gy)
	const h = 1e-5
	for i := 0; i < 3; i++ {
		p.X[i] += h
		fp := eval()
		p.X[i] -= 2 * h
		fm := eval()
		p.X[i] += h
		fd := (fp - fm) / (2 * h)
		if math.Abs(fd-gx[i]) > 1e-3*(1+math.Abs(fd)) {
			t.Errorf("dPenalty/dX[%d]: analytic %g vs FD %g", i, gx[i], fd)
		}
		p.Y[i] += h
		fp = eval()
		p.Y[i] -= 2 * h
		fm = eval()
		p.Y[i] += h
		fd = (fp - fm) / (2 * h)
		if math.Abs(fd-gy[i]) > 1e-3*(1+math.Abs(fd)) {
			t.Errorf("dPenalty/dY[%d]: analytic %g vs FD %g", i, gy[i], fd)
		}
	}
	// Restore state for later assertions (none currently).
	eval()
}

func TestBellOverflowOrdering(t *testing.T) {
	n, p := cluster(4, 8)
	b := NewBell(64, region(), 1.0)
	for i := range p.X {
		p.X[i], p.Y[i] = 32, 32
	}
	b.Update(n, p)
	packed := b.Overflow(n)
	coords := [][2]float64{{12, 12}, {12, 48}, {48, 12}, {48, 48}}
	for i, c := range coords {
		p.X[i], p.Y[i] = c[0], c[1]
	}
	b.Update(n, p)
	spread := b.Overflow(n)
	if packed <= spread {
		t.Errorf("packed overflow %.3f <= spread overflow %.3f", packed, spread)
	}
}

func BenchmarkElectrostaticUpdate64(b *testing.B) {
	n, p := cluster(40, 5)
	for i := range p.X {
		p.X[i] = float64(8 + (i*7)%48)
		p.Y[i] = float64(8 + (i*11)%48)
	}
	g := NewElectrostatic(64, region())
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		g.Update(n, p)
	}
}
