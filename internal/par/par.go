// Package par provides a reusable worker pool with deterministic parallel
// iteration primitives for the placement kernels.
//
// Determinism is the design constraint that shapes everything here. The
// placement pipeline promises bit-identical results for a given seed
// regardless of how many OS threads execute it (the CI byte-identity smoke
// between placer and placerd depends on it, and so does cross-run QoR
// comparison in the bench harness). Floating-point addition is not
// associative, so "split the loop across goroutines and add into a shared
// accumulator" would make results depend on scheduling. Instead every
// reduction in this package follows the same discipline:
//
//  1. Work is split into shards whose count and boundaries depend only on
//     the problem size — never on the worker count. ShardCount(n, grain)
//     is a pure function of n.
//  2. Each shard writes its partial results into shard-indexed storage
//     (per-shard buffers, or disjoint output ranges).
//  3. Partials are merged sequentially in shard-index order.
//
// Steps 1 and 3 make the summation tree a function of the input alone, so
// a Pool with 1 worker and a Pool with 64 workers produce identical bits.
// Step 2 keeps the parallel phase race-free without locks.
//
// A nil *Pool is valid everywhere and means "run inline on the calling
// goroutine": library code can accept an optional pool without branching.
package par

import (
	"runtime"
	"sync"
	"sync/atomic"
	"time"
)

// Pool is a fixed-size set of reusable workers. The zero value is not
// usable; call NewPool. A nil *Pool is valid for every method and runs the
// work inline on the caller, which keeps single-threaded paths free of
// goroutine and channel overhead.
//
// Pool methods are safe for concurrent use by multiple goroutines, but the
// shard functions submitted by concurrent Run calls share the worker set,
// so per-worker scratch handed out by worker index must not be assumed
// exclusive across overlapping Run calls. The placement kernels serialize
// their Run calls per solver instance, which is the intended usage.
type Pool struct {
	workers int
	timing  func(RunTiming) // optional per-Run timing observer

	mu     sync.Mutex
	cond   *sync.Cond // signaled when tasks arrive or the pool closes
	queue  []func()   // pending helper tasks; head is the next to run
	head   int
	closed bool
}

// RunTiming is one parallel Run's timing breakdown, reported to the
// observer installed with SetTimingFunc. MaxShard−MinShard (or the ratio
// against Wall) measures shard skew: how unevenly the deterministic shard
// geometry split the actual work. Persistent skew on a kernel means its
// grain constant is mis-sized for the workload.
type RunTiming struct {
	Shards   int           // shards executed
	Workers  int           // worker slots that participated
	Wall     time.Duration // whole Run call, including the merge barrier
	MinShard time.Duration // fastest single shard
	MaxShard time.Duration // slowest single shard
	SumShard time.Duration // total shard CPU time (≈ Wall × utilization × workers)
}

// SetTimingFunc installs an observer called once per parallel Run with the
// run's timing breakdown. Timing is observation-only — it never changes
// shard geometry or merge order, so result bits are unaffected — but each
// shard pays two clock reads, so it is skipped entirely (single pointer
// check) when f is nil. Install before the first Run; the field is read
// without synchronization. Inline runs (nil pool, or one shard) are not
// reported: there is no skew to measure. A nil pool ignores the call.
func (p *Pool) SetTimingFunc(f func(RunTiming)) {
	if p == nil {
		return
	}
	p.timing = f
}

// NewPool creates a pool with the given number of workers. workers <= 1
// returns nil: the nil pool runs everything inline, so "one thread" and
// "no pool" are the same fully sequential code path.
func NewPool(workers int) *Pool {
	if workers <= 1 {
		return nil
	}
	p := &Pool{workers: workers}
	p.cond = sync.NewCond(&p.mu)
	for i := 0; i < workers; i++ {
		go p.workerLoop()
	}
	return p
}

// workerLoop pops queued tasks until the pool is closed and drained.
func (p *Pool) workerLoop() {
	for {
		p.mu.Lock()
		for p.head == len(p.queue) && !p.closed {
			p.cond.Wait()
		}
		if p.head == len(p.queue) {
			p.mu.Unlock()
			return // closed and drained
		}
		f := p.queue[p.head]
		p.queue[p.head] = nil
		p.head++
		if p.head == len(p.queue) {
			p.queue = p.queue[:0]
			p.head = 0
		}
		p.mu.Unlock()
		f()
	}
}

// submit enqueues helper tasks without ever blocking on worker
// availability. Queued tasks are self-canceling: a Run's helpers claim
// shards from an atomic counter, so a helper that reaches the front of
// the queue after its Run finished simply finds no shards left and
// returns. That keeps a saturated pool safe — a Run issued while every
// worker is busy on long tasks (e.g. portfolio SA chains) degrades to
// caller-inline execution instead of stalling behind them.
func (p *Pool) submit(fs []func()) {
	p.mu.Lock()
	if p.closed {
		p.mu.Unlock()
		panic("par: Run on closed Pool")
	}
	p.queue = append(p.queue, fs...)
	p.mu.Unlock()
	p.cond.Broadcast()
}

// NumCPU returns the worker count a default pool would use: the machine's
// logical CPU count. Exposed so flag defaults across the binaries agree.
func NumCPU() int { return runtime.NumCPU() }

// Workers reports the concurrency the pool schedules onto. A nil pool
// reports 1 (inline execution).
func (p *Pool) Workers() int {
	if p == nil {
		return 1
	}
	return p.workers
}

// Close shuts down the workers; already-queued tasks are drained first.
// Calls to Run after Close panic. Close is idempotent and a nil pool
// ignores it.
func (p *Pool) Close() {
	if p == nil {
		return
	}
	p.mu.Lock()
	p.closed = true
	p.mu.Unlock()
	p.cond.Broadcast()
}

// Run executes f(shard) for every shard in [0, shards) across the pool's
// workers and returns when all have completed. Shards are claimed
// dynamically (an atomic counter) so uneven shard costs balance across
// workers; this is safe for determinism because shard outputs must be
// disjoint — claiming order affects only scheduling, never results.
//
// A nil pool, shards <= 1, or a single worker degrades to an inline loop.
func (p *Pool) Run(shards int, f func(shard int)) {
	p.RunIndexed(shards, func(_, s int) { f(s) })
}

// RunIndexed is Run with a worker-slot index: f(slot, shard) with slot in
// [0, Workers()). Within one RunIndexed call each slot is used by exactly
// one goroutine, so the caller may hand out slot-indexed scratch without
// locking. Which slot processes which shard is scheduling-dependent, so
// results must depend only on shard, never on slot. Concurrent RunIndexed
// calls reuse the same slot numbers — callers that overlap must index
// into their own scratch arrays (one per solver instance), as the
// placement kernels do.
func (p *Pool) RunIndexed(shards int, f func(slot, shard int)) {
	if p == nil || shards <= 1 {
		for s := 0; s < shards; s++ {
			f(0, s)
		}
		return
	}
	var next atomic.Int64
	workers := p.workers
	if workers > shards {
		workers = shards
	}
	timing := p.timing
	var start time.Time
	var slotStats []slotTiming
	if timing != nil {
		start = time.Now()
		slotStats = make([]slotTiming, workers)
	}
	var completed atomic.Int64
	finished := make(chan struct{})
	loop := func(slot int) {
		for {
			s := int(next.Add(1)) - 1
			if s >= shards {
				return
			}
			if timing == nil {
				f(slot, s)
			} else {
				t0 := time.Now()
				f(slot, s)
				slotStats[slot].observe(time.Since(t0))
			}
			if completed.Add(1) == int64(shards) {
				close(finished)
			}
		}
	}
	helpers := make([]func(), workers-1)
	for i := 1; i < workers; i++ {
		slot := i
		helpers[i-1] = func() { loop(slot) }
	}
	p.submit(helpers)
	// The caller's goroutine participates as slot 0 so a pool of W
	// workers drives W-way parallelism without idling the caller. Run
	// waits for shard completion, not helper execution: helpers that
	// never get a worker (all busy elsewhere) are harmless no-ops, and
	// the caller finishes the shards itself.
	loop(0)
	<-finished
	if timing != nil {
		t := RunTiming{Shards: shards, Workers: workers, Wall: time.Since(start)}
		for _, st := range slotStats {
			if st.count == 0 {
				continue
			}
			t.SumShard += st.sum
			if t.MinShard == 0 || st.min < t.MinShard {
				t.MinShard = st.min
			}
			if st.max > t.MaxShard {
				t.MaxShard = st.max
			}
		}
		timing(t)
	}
}

// slotTiming accumulates one worker slot's shard durations; slots are
// exclusive within a Run, so no synchronization is needed until the final
// sequential merge.
type slotTiming struct {
	count    int
	sum      time.Duration
	min, max time.Duration
}

func (s *slotTiming) observe(d time.Duration) {
	s.count++
	s.sum += d
	if s.count == 1 || d < s.min {
		s.min = d
	}
	if d > s.max {
		s.max = d
	}
}

// ShardCount returns the number of shards to split n items into given a
// minimum grain size per shard. It is a pure function of the problem size
// (never of worker count or GOMAXPROCS) so that shard boundaries — and
// therefore floating-point merge order — are identical on every machine
// and at every thread count. The result is capped at MaxShards, which
// bounds per-shard buffer memory while leaving enough slack for dynamic
// load balancing on any realistic core count.
func ShardCount(n, grain int) int {
	if grain < 1 {
		grain = 1
	}
	s := (n + grain - 1) / grain
	if s < 1 {
		s = 1
	}
	if s > MaxShards {
		s = MaxShards
	}
	return s
}

// MaxShards caps ShardCount. Fixed (not derived from the machine) so shard
// partitioning is portable; 64 shards load-balance well up to tens of
// cores while keeping per-shard partial buffers affordable.
const MaxShards = 64

// ShardRange returns the half-open index range [lo, hi) owned by shard s
// of `shards` over n items. Ranges are contiguous, disjoint, cover [0, n),
// and depend only on (n, shards) — the fixed partition that deterministic
// in-order merges rely on. Sizes differ by at most one item.
func ShardRange(n, shards, s int) (lo, hi int) {
	q, r := n/shards, n%shards
	lo = s*q + min(s, r)
	hi = lo + q
	if s < r {
		hi++
	}
	return lo, hi
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}

// ForShards splits n items into ShardCount(n, grain) shards and runs
// body(shard, lo, hi) for each on the pool. It is the main entry point for
// kernels: body writes shard-local partials, and the caller merges them in
// shard order afterwards (or body's output ranges are disjoint and no
// merge is needed). The shard geometry is identical for every pool,
// including nil.
func (p *Pool) ForShards(n, grain int, body func(shard, lo, hi int)) int {
	shards := ShardCount(n, grain)
	p.Run(shards, func(s int) {
		lo, hi := ShardRange(n, shards, s)
		body(s, lo, hi)
	})
	return shards
}

// ForPairs runs body(slot, a, b) for the fixed pairing (0,1), (2,3), … of
// n items; when n is odd the final item forms a singleton and body
// receives b = -1. Sharding is over PAIR indices — ShardCount(⌈n/2⌉, 1)
// with contiguous pair ranges — so a shard boundary can never split a
// pair, and the pairing is a pure function of n alone (never of worker
// count). This is the sharding primitive for kernels that fuse two work
// items into one pass, e.g. the density grid's packed real-FFT line
// transforms, which pack two grid lines into one complex FFT: as long as
// body's result for a pair depends only on (a, b), results are
// bit-identical at every thread count. body must write disjoint outputs
// per pair; slot indexes per-worker scratch as in RunIndexed.
func (p *Pool) ForPairs(n int, body func(slot, a, b int)) {
	pairs := (n + 1) / 2
	shards := ShardCount(pairs, 1)
	p.RunIndexed(shards, func(slot, s int) {
		lo, hi := ShardRange(pairs, shards, s)
		for q := lo; q < hi; q++ {
			a := 2 * q
			b := a + 1
			if b >= n {
				b = -1
			}
			body(slot, a, b)
		}
	})
}
