package par

import (
	"math/rand"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

func TestNewPoolSmallIsNil(t *testing.T) {
	for _, w := range []int{-1, 0, 1} {
		if p := NewPool(w); p != nil {
			t.Errorf("NewPool(%d) = %v, want nil (inline)", w, p)
		}
	}
}

func TestWorkers(t *testing.T) {
	var nilPool *Pool
	if got := nilPool.Workers(); got != 1 {
		t.Errorf("nil pool Workers = %d, want 1", got)
	}
	p := NewPool(4)
	defer p.Close()
	if got := p.Workers(); got != 4 {
		t.Errorf("Workers = %d, want 4", got)
	}
}

func TestRunCoversAllShards(t *testing.T) {
	for _, workers := range []int{1, 2, 8} {
		p := NewPool(workers)
		for _, shards := range []int{0, 1, 3, 17, 100} {
			hits := make([]atomic.Int32, shards)
			p.Run(shards, func(s int) { hits[s].Add(1) })
			for s := range hits {
				if got := hits[s].Load(); got != 1 {
					t.Fatalf("workers=%d shards=%d: shard %d ran %d times", workers, shards, s, got)
				}
			}
		}
		p.Close()
	}
}

func TestShardRangePartitions(t *testing.T) {
	for _, n := range []int{1, 7, 64, 1000} {
		for _, shards := range []int{1, 3, 7, 64} {
			if shards > n {
				continue
			}
			next := 0
			for s := 0; s < shards; s++ {
				lo, hi := ShardRange(n, shards, s)
				if lo != next {
					t.Fatalf("n=%d shards=%d: shard %d starts at %d, want %d", n, shards, s, lo, next)
				}
				if hi <= lo {
					t.Fatalf("n=%d shards=%d: shard %d empty [%d,%d)", n, shards, s, lo, hi)
				}
				if hi-lo > n/shards+1 {
					t.Fatalf("n=%d shards=%d: shard %d oversize [%d,%d)", n, shards, s, lo, hi)
				}
				next = hi
			}
			if next != n {
				t.Fatalf("n=%d shards=%d: coverage ends at %d", n, shards, next)
			}
		}
	}
}

func TestShardCountPureAndBounded(t *testing.T) {
	if got := ShardCount(0, 64); got != 1 {
		t.Errorf("ShardCount(0) = %d, want 1", got)
	}
	if got := ShardCount(100, 64); got != 2 {
		t.Errorf("ShardCount(100, 64) = %d, want 2", got)
	}
	if got := ShardCount(1<<30, 1); got != MaxShards {
		t.Errorf("ShardCount(big) = %d, want cap %d", got, MaxShards)
	}
	if got := ShardCount(10, 0); got != 10 {
		t.Errorf("ShardCount(10, 0) = %d, want 10 (grain clamped to 1)", got)
	}
}

// sumSharded reduces xs with the canonical pattern: per-shard partials
// merged in shard order.
func sumSharded(p *Pool, xs []float64) float64 {
	partial := make([]float64, MaxShards)
	shards := p.ForShards(len(xs), 32, func(s, lo, hi int) {
		acc := 0.0
		for i := lo; i < hi; i++ {
			acc += xs[i]
		}
		partial[s] = acc
	})
	total := 0.0
	for s := 0; s < shards; s++ {
		total += partial[s]
	}
	return total
}

// TestDeterministicReduction is the package's reason to exist: the sharded
// float reduction must be bit-identical across pool sizes, including the
// nil (inline) pool.
func TestDeterministicReduction(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	xs := make([]float64, 10_000)
	for i := range xs {
		xs[i] = rng.NormFloat64() * 1e3
	}
	var nilPool *Pool
	want := sumSharded(nilPool, xs)
	for _, workers := range []int{2, 3, 8, 16} {
		p := NewPool(workers)
		for rep := 0; rep < 20; rep++ {
			if got := sumSharded(p, xs); got != want {
				t.Fatalf("workers=%d rep=%d: sum %.17g, want %.17g (non-deterministic merge)", workers, rep, got, want)
			}
		}
		p.Close()
	}
}

func TestForShardsDisjointWrites(t *testing.T) {
	p := NewPool(8)
	defer p.Close()
	n := 5000
	out := make([]int, n)
	p.ForShards(n, 7, func(_, lo, hi int) {
		for i := lo; i < hi; i++ {
			out[i]++
		}
	})
	for i, v := range out {
		if v != 1 {
			t.Fatalf("index %d written %d times", i, v)
		}
	}
}

func TestConcurrentRuns(t *testing.T) {
	p := NewPool(4)
	defer p.Close()
	var wg sync.WaitGroup
	var total atomic.Int64
	for g := 0; g < 6; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			p.Run(40, func(s int) { total.Add(1) })
		}()
	}
	wg.Wait()
	if got := total.Load(); got != 6*40 {
		t.Fatalf("shards executed = %d, want %d", got, 6*40)
	}
}

// A Run issued while every worker is pinned by long tasks must still
// complete promptly: submission never blocks, and the caller executes the
// shards inline when no worker frees up. This is the liveness contract the
// shared placerd pool relies on once portfolio SA chains (minutes-long
// tasks) share it with fine-grained kernels.
func TestRunLiveUnderSaturation(t *testing.T) {
	p := NewPool(2)
	defer p.Close()
	release := make(chan struct{})
	var occupied sync.WaitGroup
	occupied.Add(4) // 2 Runs × 2 shards, each parked on release
	var pinned sync.WaitGroup
	pinned.Add(1)
	go func() {
		defer pinned.Done()
		// Two long shards pin both workers... except the caller of this
		// Run takes one of them as slot 0, so exactly one pool worker is
		// occupied per long shard — run two concurrent Runs to pin both.
		p.Run(2, func(int) { occupied.Done(); <-release })
	}()
	pinned.Add(1)
	go func() {
		defer pinned.Done()
		p.Run(2, func(int) { occupied.Done(); <-release })
	}()
	occupied.Wait() // both workers (and both callers) now blocked

	done := make(chan struct{})
	go func() {
		var total atomic.Int64
		p.Run(8, func(int) { total.Add(1) })
		if total.Load() == 8 {
			close(done)
		}
	}()
	select {
	case <-done:
	case <-time.After(5 * time.Second):
		t.Fatal("Run stalled behind saturated workers")
	}
	close(release)
	pinned.Wait()
}

func TestCloseIdempotentAndNilSafe(t *testing.T) {
	var nilPool *Pool
	nilPool.Close() // must not panic
	nilPool.Run(3, func(int) {})
	p := NewPool(2)
	p.Close()
	p.Close() // second Close must not panic
}

func TestRunAfterClosePanics(t *testing.T) {
	p := NewPool(2)
	p.Close()
	defer func() {
		if recover() == nil {
			t.Error("Run on closed pool did not panic")
		}
	}()
	p.Run(4, func(int) {})
}

func TestTimingObserver(t *testing.T) {
	p := NewPool(4)
	defer p.Close()
	var timings []RunTiming
	p.SetTimingFunc(func(rt RunTiming) { timings = append(timings, rt) })

	const shards = 12
	var ran atomic.Int64
	p.Run(shards, func(s int) {
		ran.Add(1)
		time.Sleep(time.Millisecond)
	})
	if got := ran.Load(); got != shards {
		t.Fatalf("ran %d shards, want %d", got, shards)
	}
	if len(timings) != 1 {
		t.Fatalf("observer called %d times, want 1", len(timings))
	}
	rt := timings[0]
	if rt.Shards != shards || rt.Workers != 4 {
		t.Errorf("timing %+v: want Shards=%d Workers=4", rt, shards)
	}
	if rt.MinShard <= 0 || rt.MaxShard < rt.MinShard || rt.SumShard < rt.MaxShard || rt.Wall <= 0 {
		t.Errorf("inconsistent timing %+v", rt)
	}

	// Inline runs (one shard) are not reported.
	p.Run(1, func(int) {})
	if len(timings) != 1 {
		t.Errorf("single-shard run reported timing: %d calls", len(timings))
	}

	// Timing must not change what executes: same shard set either way.
	var seen sync.Mutex
	got := map[int]bool{}
	p.Run(7, func(s int) {
		seen.Lock()
		got[s] = true
		seen.Unlock()
	})
	for s := 0; s < 7; s++ {
		if !got[s] {
			t.Errorf("shard %d not executed under timing", s)
		}
	}
}

func TestTimingNilPoolIgnored(t *testing.T) {
	var p *Pool
	p.SetTimingFunc(func(RunTiming) { t.Error("nil pool reported timing") })
	p.Run(4, func(int) {})
}

func TestForPairsCoversAllItemsExactlyOnce(t *testing.T) {
	for _, workers := range []int{1, 2, 3, 8} {
		p := NewPool(workers)
		for _, n := range []int{0, 1, 2, 3, 5, 7, 31, 33, 128} {
			hits := make([]atomic.Int32, n)
			var singletons atomic.Int32
			p.ForPairs(n, func(_, a, b int) {
				hits[a].Add(1)
				if b == -1 {
					singletons.Add(1)
				} else {
					if b != a+1 || a%2 != 0 {
						t.Errorf("n=%d: bad pair (%d, %d)", n, a, b)
					}
					hits[b].Add(1)
				}
			})
			for i := range hits {
				if got := hits[i].Load(); got != 1 {
					t.Fatalf("workers=%d n=%d: item %d visited %d times", workers, n, i, got)
				}
			}
			wantSingles := int32(n % 2)
			if got := singletons.Load(); got != wantSingles {
				t.Fatalf("workers=%d n=%d: %d singletons, want %d", workers, n, got, wantSingles)
			}
		}
		p.Close()
	}
}

// TestForPairsPairingIsPureFunctionOfN: the (a, b) pairs handed out must
// be identical for a nil pool and any pooled execution — the property the
// packed-FFT line transforms' thread-count byte-identity rests on.
func TestForPairsPairingIsPureFunctionOfN(t *testing.T) {
	const n = 33
	var nilPool *Pool
	want := make(map[int]int, n)
	nilPool.ForPairs(n, func(_, a, b int) { want[a] = b })
	p := NewPool(5)
	defer p.Close()
	var mu sync.Mutex
	got := make(map[int]int, n)
	p.ForPairs(n, func(_, a, b int) {
		mu.Lock()
		got[a] = b
		mu.Unlock()
	})
	if len(got) != len(want) {
		t.Fatalf("pooled pairing has %d pairs, inline %d", len(got), len(want))
	}
	for a, b := range want {
		if got[a] != b {
			t.Errorf("pair starting at %d: pooled partner %d, inline %d", a, got[a], b)
		}
	}
}
