package service

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"testing"
	"time"

	"repro/internal/obs"
)

// blockingRunner returns a Runner that reports each started job on entered
// and then blocks until release is closed or the job's context ends (in
// which case it returns the context error, mirroring the real solvers).
func blockingRunner(entered chan string, release chan struct{}) Runner {
	return func(ctx context.Context, spec *JobSpec, trc *obs.Tracer) (*JobResult, error) {
		if entered != nil {
			entered <- spec.Netlist.Name
		}
		select {
		case <-release:
			return &JobResult{Legal: true, Placement: []byte("{}")}, nil
		case <-ctx.Done():
			return nil, ctx.Err()
		}
	}
}

func submitAdder(t *testing.T, m *Manager, seed int64) *Job {
	t.Helper()
	j, err := m.Submit(SubmitRequest{Circuit: "Adder", Method: "sa", Seed: seed})
	if err != nil {
		t.Fatalf("submit: %v", err)
	}
	return j
}

func waitState(t *testing.T, j *Job, want State) {
	t.Helper()
	select {
	case <-j.Done():
	case <-time.After(2 * time.Minute): // generous: real solver runs are ~10x slower under -race
		t.Fatalf("job %s stuck in %s waiting for %s", j.ID(), j.Status().State, want)
	}
	if got := j.Status().State; got != want {
		t.Fatalf("job %s finished %s, want %s", j.ID(), got, want)
	}
}

func TestSubmitValidation(t *testing.T) {
	m := NewManager(Config{Workers: 1, QueueCap: 2})
	defer drain(t, m)
	cases := []struct {
		name string
		req  SubmitRequest
		want string
	}{
		{"neither source", SubmitRequest{}, "needs a netlist"},
		{"both sources", SubmitRequest{Circuit: "Adder", Netlist: []byte(`{}`)}, "both netlist and circuit"},
		{"bad method", SubmitRequest{Circuit: "Adder", Method: "quantum"}, "unknown method"},
		{"bad circuit", SubmitRequest{Circuit: "NoSuch"}, "unknown circuit"},
		{"bad netlist", SubmitRequest{Netlist: []byte(`{"name":"x","devices":[],"nets":[]}`)}, "no devices"},
		{"negative timeout", SubmitRequest{Circuit: "Adder", TimeoutSec: -1}, "negative timeout"},
		{"negative threads", SubmitRequest{Circuit: "Adder", Threads: -2}, "negative threads"},
	}
	for _, tc := range cases {
		_, err := m.Submit(tc.req)
		if err == nil {
			t.Errorf("%s: accepted", tc.name)
			continue
		}
		if !contains(err.Error(), tc.want) {
			t.Errorf("%s: error %q missing %q", tc.name, err, tc.want)
		}
	}
	if got := m.Metrics().JobsRejected; got != int64(len(cases)) {
		t.Errorf("rejected counter %d, want %d", got, len(cases))
	}
}

// TestThreadsDefaultFill checks the manager's configured default thread
// count fills zero-valued requests while explicit values pass through.
func TestThreadsDefaultFill(t *testing.T) {
	m := NewManager(Config{Workers: 1, QueueCap: 2, Threads: 3})
	defer drain(t, m)
	spec, err := m.validate(SubmitRequest{Circuit: "Adder"})
	if err != nil {
		t.Fatal(err)
	}
	if spec.Req.Threads != 3 {
		t.Errorf("default fill: threads %d, want 3", spec.Req.Threads)
	}
	spec, err = m.validate(SubmitRequest{Circuit: "Adder", Threads: 1})
	if err != nil {
		t.Fatal(err)
	}
	if spec.Req.Threads != 1 {
		t.Errorf("explicit: threads %d, want 1", spec.Req.Threads)
	}
}

func contains(s, sub string) bool {
	for i := 0; i+len(sub) <= len(s); i++ {
		if s[i:i+len(sub)] == sub {
			return true
		}
	}
	return false
}

func drain(t *testing.T, m *Manager) {
	t.Helper()
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	m.Abort()
	if err := m.Drain(ctx); err != nil {
		t.Errorf("drain: %v", err)
	}
}

func TestQueueSaturation(t *testing.T) {
	entered := make(chan string, 8)
	release := make(chan struct{})
	m := NewManager(Config{Workers: 1, QueueCap: 2, Runner: blockingRunner(entered, release)})

	running := submitAdder(t, m, 1)
	<-entered // the worker holds this job; the queue is empty again
	q1 := submitAdder(t, m, 2)
	q2 := submitAdder(t, m, 3)
	if _, err := m.Submit(SubmitRequest{Circuit: "Adder"}); !errors.Is(err, ErrQueueFull) {
		t.Fatalf("4th submission: got %v, want ErrQueueFull", err)
	}

	// Freeing the queue admits new work again.
	close(release)
	for _, j := range []*Job{running, q1, q2} {
		waitState(t, j, StateDone)
	}
	late, err := m.Submit(SubmitRequest{Circuit: "Adder", Method: "sa"})
	if err != nil {
		t.Fatalf("post-drain-of-queue submission: %v", err)
	}
	waitState(t, late, StateDone)

	met := m.Metrics()
	if met.JobsCompleted != 4 || met.JobsRejected != 1 {
		t.Errorf("counters completed=%d rejected=%d, want 4 and 1", met.JobsCompleted, met.JobsRejected)
	}
	drain(t, m)
}

func TestCancelQueuedJob(t *testing.T) {
	entered := make(chan string, 8)
	release := make(chan struct{})
	m := NewManager(Config{Workers: 1, QueueCap: 4, Runner: blockingRunner(entered, release)})

	running := submitAdder(t, m, 1)
	<-entered
	queued := submitAdder(t, m, 2)
	if err := m.Cancel(queued.ID()); err != nil {
		t.Fatal(err)
	}
	waitState(t, queued, StateCanceled)
	// Cancel is idempotent on terminal jobs.
	if err := m.Cancel(queued.ID()); err != nil {
		t.Errorf("second cancel: %v", err)
	}
	close(release)
	waitState(t, running, StateDone)
	if m.Metrics().JobsCanceled != 1 {
		t.Errorf("canceled counter %d, want 1", m.Metrics().JobsCanceled)
	}
	drain(t, m)
}

func TestCancelRunningJob(t *testing.T) {
	entered := make(chan string, 8)
	release := make(chan struct{})
	defer close(release)
	m := NewManager(Config{Workers: 1, QueueCap: 4, Runner: blockingRunner(entered, release)})

	j := submitAdder(t, m, 1)
	<-entered
	if err := m.Cancel(j.ID()); err != nil {
		t.Fatal(err)
	}
	waitState(t, j, StateCanceled)
	st := j.Status()
	if st.Result != nil {
		t.Error("canceled job carries a result")
	}
	if st.Error == "" {
		t.Error("canceled job has no error text")
	}
	drain(t, m)
}

func TestJobDeadline(t *testing.T) {
	m := NewManager(Config{Workers: 1, QueueCap: 4, Runner: blockingRunner(nil, nil)})
	j, err := m.Submit(SubmitRequest{Circuit: "Adder", TimeoutSec: 0.05})
	if err != nil {
		t.Fatal(err)
	}
	waitState(t, j, StateFailed)
	if !contains(j.Status().Error, "deadline") {
		t.Errorf("error %q does not mention the deadline", j.Status().Error)
	}
	drain(t, m)
}

func TestDrainOrdering(t *testing.T) {
	entered := make(chan string, 8)
	release := make(chan struct{})
	m := NewManager(Config{Workers: 1, QueueCap: 4, Runner: blockingRunner(entered, release)})

	running := submitAdder(t, m, 1)
	<-entered
	queued := submitAdder(t, m, 2)

	drained := make(chan error, 1)
	go func() {
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		drained <- m.Drain(ctx)
	}()
	// Draining refuses new work immediately...
	waitDraining(t, m)
	if _, err := m.Submit(SubmitRequest{Circuit: "Adder"}); !errors.Is(err, ErrDraining) {
		t.Fatalf("submission during drain: got %v, want ErrDraining", err)
	}
	// ...but both accepted jobs still complete before Drain returns.
	close(release)
	if err := <-drained; err != nil {
		t.Fatalf("drain: %v", err)
	}
	for _, j := range []*Job{running, queued} {
		if st := j.Status().State; st != StateDone {
			t.Errorf("job %s ended %s after drain, want done", j.ID(), st)
		}
	}
}

func waitDraining(t *testing.T, m *Manager) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for !m.Draining() {
		if time.Now().After(deadline) {
			t.Fatal("manager never started draining")
		}
		time.Sleep(time.Millisecond)
	}
}

func TestDrainTimeoutThenAbort(t *testing.T) {
	entered := make(chan string, 8)
	release := make(chan struct{})
	defer close(release)
	m := NewManager(Config{Workers: 1, QueueCap: 4, Runner: blockingRunner(entered, release)})

	j := submitAdder(t, m, 1)
	<-entered
	ctx, cancel := context.WithTimeout(context.Background(), 20*time.Millisecond)
	defer cancel()
	if err := m.Drain(ctx); !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("drain with stuck job: got %v, want deadline exceeded", err)
	}
	m.Abort()
	waitState(t, j, StateCanceled)
}

func TestConcurrentSubmissionsRealSolver(t *testing.T) {
	// The acceptance scenario: 8 concurrent submissions against a 2-worker
	// pool, all served by the real solver stack.
	m := NewManager(Config{Workers: 2, QueueCap: 16})
	defer drain(t, m)
	const n = 8
	jobs := make([]*Job, n)
	var wg sync.WaitGroup
	errs := make([]error, n)
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			j, err := m.Submit(SubmitRequest{
				Circuit: "Adder", Method: "eplace-a", Seed: int64(i), Portfolio: 1,
			})
			jobs[i], errs[i] = j, err
		}(i)
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			t.Fatalf("submission %d: %v", i, err)
		}
	}
	for i, j := range jobs {
		waitState(t, j, StateDone)
		st := j.Status()
		if st.Result == nil || !st.Result.Legal {
			t.Errorf("job %d: illegal or missing result", i)
		}
		if st.Events == 0 {
			t.Errorf("job %d: no solver events recorded", i)
		}
		if len(st.Result.Placement) == 0 {
			t.Errorf("job %d: empty placement payload", i)
		}
	}
	met := m.Metrics()
	if met.JobsCompleted != n {
		t.Errorf("completed %d, want %d", met.JobsCompleted, n)
	}
	if len(met.SolverCounters) == 0 || len(met.SolverSpans) == 0 {
		t.Error("solver telemetry rollup empty after real runs")
	}
}

func TestJobIDsUniqueAndOrdered(t *testing.T) {
	entered := make(chan string, 16)
	release := make(chan struct{})
	m := NewManager(Config{Workers: 1, QueueCap: 8, Runner: blockingRunner(entered, release)})
	seen := map[string]bool{}
	for i := 0; i < 5; i++ {
		j := submitAdder(t, m, int64(i))
		if seen[j.ID()] {
			t.Fatalf("duplicate job ID %s", j.ID())
		}
		seen[j.ID()] = true
	}
	list := m.Jobs()
	if len(list) != 5 {
		t.Fatalf("listed %d jobs, want 5", len(list))
	}
	for i := 1; i < len(list); i++ {
		if list[i-1].ID() >= list[i].ID() {
			t.Errorf("listing out of submission order: %s before %s", list[i-1].ID(), list[i].ID())
		}
	}
	close(release)
	drain(t, m)
}

func TestFailedRunnerMarksJobFailed(t *testing.T) {
	boom := func(ctx context.Context, spec *JobSpec, trc *obs.Tracer) (*JobResult, error) {
		return nil, fmt.Errorf("solver exploded")
	}
	m := NewManager(Config{Workers: 1, QueueCap: 4, Runner: boom})
	j := submitAdder(t, m, 1)
	waitState(t, j, StateFailed)
	if !contains(j.Status().Error, "exploded") {
		t.Errorf("error %q lost the runner's message", j.Status().Error)
	}
	drain(t, m)
}
