package service

import (
	"encoding/json"
	"errors"
	"fmt"
	"net/http"

	"repro/internal/sched"
)

// DefaultMaxBody is the request-size limit for POST /v1/jobs (netlists of
// dozens of devices are a few tens of KB; 8 MiB leaves two orders of
// magnitude of headroom).
const DefaultMaxBody = 8 << 20

// Server is the HTTP/JSON front end over a Manager.
//
// Endpoints:
//
//	POST   /v1/jobs             submit a placement job
//	GET    /v1/jobs             list jobs
//	GET    /v1/jobs/{id}        job status (+ result when done)
//	GET    /v1/jobs/{id}/result placement JSON only (byte-identical to cmd/placer)
//	GET    /v1/jobs/{id}/events live NDJSON stream of obs solver events
//	DELETE /v1/jobs/{id}        cancel
//	GET    /healthz             liveness + queue occupancy
//	GET    /metrics             service counters + solver telemetry rollup
//	                            (?format=prometheus for text exposition)
type Server struct {
	m       *Manager
	maxBody int64
	mux     *http.ServeMux
}

// NewServer wraps m. maxBody <= 0 selects DefaultMaxBody.
func NewServer(m *Manager, maxBody int64) *Server {
	if maxBody <= 0 {
		maxBody = DefaultMaxBody
	}
	s := &Server{m: m, maxBody: maxBody, mux: http.NewServeMux()}
	s.mux.HandleFunc("POST /v1/jobs", s.handleSubmit)
	s.mux.HandleFunc("GET /v1/jobs", s.handleList)
	s.mux.HandleFunc("GET /v1/jobs/{id}", s.handleStatus)
	s.mux.HandleFunc("GET /v1/jobs/{id}/result", s.handleResult)
	s.mux.HandleFunc("GET /v1/jobs/{id}/events", s.handleEvents)
	s.mux.HandleFunc("DELETE /v1/jobs/{id}", s.handleCancel)
	s.mux.HandleFunc("GET /healthz", s.handleHealthz)
	s.mux.HandleFunc("GET /metrics", s.handleMetrics)
	return s
}

// Handler returns the routing handler.
func (s *Server) Handler() http.Handler { return s.mux }

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(v) // header already sent; nothing useful to do on error
}

func writeError(w http.ResponseWriter, code int, format string, args ...any) {
	writeJSON(w, code, errorBody{Error: fmt.Sprintf(format, args...)})
}

// errorBody is the structured JSON error payload. Reason is a stable
// machine-readable slug on submit rejections (invalid, queue_full,
// tenant_quota, draining); RetryAfterSec mirrors the Retry-After header on
// backpressure responses so clients parsing only the body still back off.
type errorBody struct {
	Error         string `json:"error"`
	Reason        string `json:"reason,omitempty"`
	Tenant        string `json:"tenant,omitempty"`
	RetryAfterSec int    `json:"retry_after_sec,omitempty"`
}

func (s *Server) handleSubmit(w http.ResponseWriter, r *http.Request) {
	r.Body = http.MaxBytesReader(w, r.Body, s.maxBody)
	dec := json.NewDecoder(r.Body)
	dec.DisallowUnknownFields()
	var req SubmitRequest
	if err := dec.Decode(&req); err != nil {
		var tooLarge *http.MaxBytesError
		if errors.As(err, &tooLarge) {
			writeError(w, http.StatusRequestEntityTooLarge, "request body over the %d-byte limit", tooLarge.Limit)
			return
		}
		writeError(w, http.StatusBadRequest, "parsing request: %v", err)
		return
	}
	job, err := s.m.Submit(req)
	switch {
	case errors.Is(err, ErrTenantQuota):
		// The tenant's own backlog is the bottleneck: give in-flight jobs a
		// moment to finish before the client retries.
		var quota *sched.QuotaError
		body := errorBody{Error: err.Error(), Reason: "tenant_quota", RetryAfterSec: 2}
		if errors.As(err, &quota) {
			body.Tenant = quota.Tenant
		}
		w.Header().Set("Retry-After", "2")
		writeJSON(w, http.StatusTooManyRequests, body)
		return
	case errors.Is(err, ErrQueueFull):
		w.Header().Set("Retry-After", "1")
		writeJSON(w, http.StatusTooManyRequests,
			errorBody{Error: err.Error(), Reason: "queue_full", RetryAfterSec: 1})
		return
	case errors.Is(err, ErrDraining):
		writeJSON(w, http.StatusServiceUnavailable,
			errorBody{Error: err.Error(), Reason: "draining"})
		return
	case err != nil:
		writeJSON(w, http.StatusBadRequest,
			errorBody{Error: err.Error(), Reason: "invalid"})
		return
	}
	w.Header().Set("Location", "/v1/jobs/"+job.ID())
	writeJSON(w, http.StatusAccepted, job.Status())
}

func (s *Server) handleList(w http.ResponseWriter, r *http.Request) {
	jobs := s.m.Jobs()
	out := make([]Status, 0, len(jobs))
	for _, j := range jobs {
		out = append(out, j.Status())
	}
	writeJSON(w, http.StatusOK, map[string]any{"jobs": out})
}

func (s *Server) job(w http.ResponseWriter, r *http.Request) (*Job, bool) {
	id := r.PathValue("id")
	j, ok := s.m.Get(id)
	if !ok {
		writeError(w, http.StatusNotFound, "no job %q", id)
		return nil, false
	}
	return j, true
}

func (s *Server) handleStatus(w http.ResponseWriter, r *http.Request) {
	if j, ok := s.job(w, r); ok {
		writeJSON(w, http.StatusOK, j.Status())
	}
}

func (s *Server) handleResult(w http.ResponseWriter, r *http.Request) {
	j, ok := s.job(w, r)
	if !ok {
		return
	}
	st := j.Status()
	switch {
	case st.State == StateDone:
		w.Header().Set("Content-Type", "application/json")
		w.Write(st.Result.Placement)
	case st.State.Terminal():
		writeError(w, http.StatusConflict, "job %s %s: %s", st.ID, st.State, st.Error)
	default:
		writeError(w, http.StatusConflict, "job %s is %s; result not ready", st.ID, st.State)
	}
}

func (s *Server) handleCancel(w http.ResponseWriter, r *http.Request) {
	j, ok := s.job(w, r)
	if !ok {
		return
	}
	s.m.Cancel(j.ID()) // only fails for unknown IDs, excluded above
	writeJSON(w, http.StatusOK, j.Status())
}

// handleEvents streams the job's telemetry as NDJSON: the full history
// first, then live events as the solvers emit them, terminating when the
// job's tracer closes (one final "summary" event) or the client goes away.
func (s *Server) handleEvents(w http.ResponseWriter, r *http.Request) {
	j, ok := s.job(w, r)
	if !ok {
		return
	}
	flusher, _ := w.(http.Flusher)
	w.Header().Set("Content-Type", "application/x-ndjson")
	w.WriteHeader(http.StatusOK)
	enc := json.NewEncoder(w)
	cur := 0
	for {
		batch, done, wake := j.Sink().After(cur)
		for i := range batch {
			if err := enc.Encode(&batch[i]); err != nil {
				return // client went away
			}
		}
		cur += len(batch)
		if len(batch) > 0 {
			if flusher != nil {
				flusher.Flush()
			}
			continue
		}
		if done {
			return
		}
		select {
		case <-wake:
		case <-r.Context().Done():
			return
		}
	}
}

func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	met := s.m.Metrics()
	status := "ok"
	if met.Draining {
		status = "draining"
	}
	writeJSON(w, http.StatusOK, map[string]any{
		"status":      status,
		"workers":     met.Workers,
		"queue_depth": met.QueueDepth,
		"queue_cap":   met.QueueCap,
		"running":     met.Running,
	})
}

// handleMetrics serves the JSON rollup by default; ?format=prometheus
// switches to the Prometheus text exposition (the JSON shape predates it
// and existing consumers keep working unchanged).
func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	if r.URL.Query().Get("format") == "prometheus" {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		s.m.WritePrometheus(w) // header already sent; nothing useful to do on error
		return
	}
	writeJSON(w, http.StatusOK, s.m.Metrics())
}
