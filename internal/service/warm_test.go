package service

import (
	"bytes"
	"encoding/json"
	"testing"

	"repro/internal/gen"
	"repro/internal/netio"
)

func netlistJSON(t *testing.T, devices int, seed int64) json.RawMessage {
	t.Helper()
	n, err := gen.Generate(gen.Params{Devices: devices, Seed: seed})
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := n.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// TestWarmStartJob runs the ECO serving flow end to end: a base job, an
// edited resubmission warm-started via base_job, the same warm solve via
// an inline base placement (which must hit the base_job run's cache
// entry), and the scheduling/observability surface of warm jobs.
func TestWarmStartJob(t *testing.T) {
	m := NewManager(Config{Workers: 1, QueueCap: 8, CacheBytes: 64 << 20})
	defer drain(t, m)

	baseJSON := netlistJSON(t, 24, 3)
	editedJSON := netlistJSON(t, 32, 3)

	base, err := m.Submit(SubmitRequest{Netlist: baseJSON, Method: "prev", Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	waitState(t, base, StateDone)
	baseRes := base.Status().Result

	eco, err := m.Submit(SubmitRequest{Netlist: editedJSON, Method: "prev", Seed: 5, BaseJob: base.ID()})
	if err != nil {
		t.Fatal(err)
	}
	waitState(t, eco, StateDone)
	st := eco.Status()
	if !st.Warm || st.BaseJob != base.ID() {
		t.Errorf("warm status not surfaced: warm=%v base_job=%q", st.Warm, st.BaseJob)
	}
	if st.Result.WarmPerturbed == 0 {
		t.Errorf("warm job reports an empty perturbed region")
	}
	if !st.Result.Legal {
		t.Errorf("warm placement not legal")
	}

	// The same warm solve expressed with an inline base must share the
	// content address: the key hashes the base netlist and placement, not
	// how they were named.
	inline, err := m.Submit(SubmitRequest{
		Netlist: editedJSON, Method: "prev", Seed: 5,
		BaseNetlist: baseJSON, BasePlacement: baseRes.Placement,
	})
	if err != nil {
		t.Fatal(err)
	}
	waitState(t, inline, StateDone)
	if r := inline.Status().Result; !r.Cached {
		t.Errorf("inline-base resubmission missed the cache")
	} else if !bytes.Equal(r.Placement, st.Result.Placement) {
		t.Errorf("inline-base cached placement differs from the base_job run")
	}

	// Warm and cold solves of the same edited netlist must never collide.
	coldSpec, err := m.validate(SubmitRequest{Netlist: editedJSON, Method: "prev", Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	warmSpec, err := m.validate(SubmitRequest{Netlist: editedJSON, Method: "prev", Seed: 5, BaseJob: base.ID()})
	if err != nil {
		t.Fatal(err)
	}
	if cacheKeyFor(coldSpec).String() == cacheKeyFor(warmSpec).String() {
		t.Errorf("cold and warm cache keys collide")
	}
	// Different anchor knobs are different experiments.
	warmSpec2, err := m.validate(SubmitRequest{Netlist: editedJSON, Method: "prev", Seed: 5, BaseJob: base.ID(), AnchorWeight: 0.7})
	if err != nil {
		t.Fatal(err)
	}
	if cacheKeyFor(warmSpec).String() == cacheKeyFor(warmSpec2).String() {
		t.Errorf("anchor weight not part of the warm cache key")
	}

	// ECO jobs are priced by their perturbed region, not the device count.
	// (At this toy size the edit perturbs nearly everything; the locality
	// of the diff itself is covered in internal/netio.)
	baseNet, err := netio.DecodeBytes(baseJSON, "base")
	if err != nil {
		t.Fatal(err)
	}
	d := netio.DiffNetlists(baseNet, warmSpec.Netlist, netio.DiffOptions{})
	if want := float64(1 + d.PerturbedCount()); warmSpec.WarmCost != want {
		t.Errorf("WarmCost = %v, want 1+perturbed = %v", warmSpec.WarmCost, want)
	}
}

func TestWarmStartValidation(t *testing.T) {
	m := NewManager(Config{Workers: 1, QueueCap: 8})
	defer drain(t, m)
	baseJSON := netlistJSON(t, 24, 3)

	bad := []SubmitRequest{
		// base_netlist without base_placement
		{Netlist: baseJSON, BaseNetlist: baseJSON},
		// anchor knobs without a base
		{Netlist: baseJSON, AnchorWeight: 0.5},
		// unknown base job
		{Netlist: baseJSON, BaseJob: "no-such-job"},
		// both base_job and inline base
		{Netlist: baseJSON, BaseJob: "x", BasePlacement: json.RawMessage(`{}`)},
		// base placement that is not a placement document
		{Netlist: baseJSON, BasePlacement: json.RawMessage(`{"devices":[]}`)},
	}
	for i, req := range bad {
		if _, err := m.Submit(req); err == nil {
			t.Errorf("bad request %d accepted", i)
		}
	}
}
