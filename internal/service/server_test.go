package service

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/obs"
	"repro/internal/testcircuits"
)

func newTestServer(t *testing.T, cfg Config) (*Manager, *httptest.Server) {
	t.Helper()
	m := NewManager(cfg)
	ts := httptest.NewServer(NewServer(m, 0).Handler())
	t.Cleanup(func() {
		ts.Close()
		drain(t, m)
	})
	return m, ts
}

func postJob(t *testing.T, ts *httptest.Server, body string) (Status, *http.Response) {
	t.Helper()
	resp, err := http.Post(ts.URL+"/v1/jobs", "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var st Status
	if resp.StatusCode == http.StatusAccepted {
		if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
			t.Fatalf("decoding submit response: %v", err)
		}
	} else {
		io.Copy(io.Discard, resp.Body)
	}
	return st, resp
}

func getStatus(t *testing.T, ts *httptest.Server, id string) Status {
	t.Helper()
	resp, err := http.Get(ts.URL + "/v1/jobs/" + id)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		b, _ := io.ReadAll(resp.Body)
		t.Fatalf("GET status %s: %d %s", id, resp.StatusCode, b)
	}
	var st Status
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		t.Fatal(err)
	}
	return st
}

func pollDone(t *testing.T, ts *httptest.Server, id string) Status {
	t.Helper()
	deadline := time.Now().Add(2 * time.Minute)
	for {
		st := getStatus(t, ts, id)
		if st.State.Terminal() {
			return st
		}
		if time.Now().After(deadline) {
			t.Fatalf("job %s stuck in %s", id, st.State)
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// TestHTTPPlacementParity is the end-to-end acceptance check: a placement
// served over HTTP is byte-identical to what cmd/placer's direct pipeline
// produces for the same netlist, method, and seed.
func TestHTTPPlacementParity(t *testing.T) {
	_, ts := newTestServer(t, Config{Workers: 2, QueueCap: 8})
	st, resp := postJob(t, ts, `{"circuit":"Adder","method":"eplace-a","seed":42,"portfolio":1}`)
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("submit: %d", resp.StatusCode)
	}
	if loc := resp.Header.Get("Location"); loc != "/v1/jobs/"+st.ID {
		t.Errorf("Location %q does not match job %s", loc, st.ID)
	}
	final := pollDone(t, ts, st.ID)
	if final.State != StateDone {
		t.Fatalf("job ended %s: %s", final.State, final.Error)
	}

	// Fetch the result endpoint and compare against a direct solver run.
	res, err := http.Get(ts.URL + "/v1/jobs/" + st.ID + "/result")
	if err != nil {
		t.Fatal(err)
	}
	got, _ := io.ReadAll(res.Body)
	res.Body.Close()
	if res.StatusCode != http.StatusOK {
		t.Fatalf("result: %d %s", res.StatusCode, got)
	}

	c, err := testcircuits.ByName("Adder")
	if err != nil {
		t.Fatal(err)
	}
	direct, err := core.Place(c.Netlist, core.MethodEPlaceA, core.Options{Seed: 42, Portfolio: 1})
	if err != nil {
		t.Fatal(err)
	}
	var want bytes.Buffer
	if err := c.Netlist.WritePlacementJSON(&want, direct.Placement); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, want.Bytes()) {
		t.Errorf("HTTP placement differs from direct placement at the same seed:\nhttp:   %.200s\ndirect: %.200s", got, want.Bytes())
	}
}

func TestHTTPSubmitInlineNetlist(t *testing.T) {
	_, ts := newTestServer(t, Config{Workers: 1, QueueCap: 4})
	c, _ := testcircuits.ByName("Adder")
	var nl bytes.Buffer
	if err := c.Netlist.WriteJSON(&nl); err != nil {
		t.Fatal(err)
	}
	body := fmt.Sprintf(`{"netlist":%s,"method":"eplace-a","seed":7,"portfolio":1}`, nl.String())
	st, resp := postJob(t, ts, body)
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("submit: %d", resp.StatusCode)
	}
	final := pollDone(t, ts, st.ID)
	if final.State != StateDone || !final.Result.Legal {
		t.Fatalf("inline-netlist job ended %s (legal=%v): %s", final.State, final.Result != nil && final.Result.Legal, final.Error)
	}
}

func TestHTTPErrorStatuses(t *testing.T) {
	entered := make(chan string, 8)
	release := make(chan struct{})
	defer close(release)
	m, ts := newTestServer(t, Config{Workers: 1, QueueCap: 1, Runner: blockingRunner(entered, release)})

	// 400: malformed and invalid bodies.
	for _, body := range []string{`{`, `{"bogus_field":1}`, `{"circuit":"NoSuch"}`, `{}`} {
		if _, resp := postJob(t, ts, body); resp.StatusCode != http.StatusBadRequest {
			t.Errorf("body %q: status %d, want 400", body, resp.StatusCode)
		}
	}

	// 404: unknown job for every job endpoint.
	for _, path := range []string{"/v1/jobs/nope", "/v1/jobs/nope/result", "/v1/jobs/nope/events"} {
		resp, err := http.Get(ts.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		if resp.StatusCode != http.StatusNotFound {
			t.Errorf("GET %s: status %d, want 404", path, resp.StatusCode)
		}
	}

	// Occupy the worker and the single queue slot.
	running, resp := postJob(t, ts, `{"circuit":"Adder"}`)
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("first submit: %d", resp.StatusCode)
	}
	<-entered
	if _, resp := postJob(t, ts, `{"circuit":"Adder"}`); resp.StatusCode != http.StatusAccepted {
		t.Fatalf("second submit: %d", resp.StatusCode)
	}

	// 429: queue full.
	if _, resp := postJob(t, ts, `{"circuit":"Adder"}`); resp.StatusCode != http.StatusTooManyRequests {
		t.Errorf("saturated submit: status %d, want 429", resp.StatusCode)
	} else if resp.Header.Get("Retry-After") == "" {
		t.Error("429 without Retry-After")
	}

	// 409: result requested before completion.
	resp2, err := http.Get(ts.URL + "/v1/jobs/" + running.ID + "/result")
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp2.Body)
	resp2.Body.Close()
	if resp2.StatusCode != http.StatusConflict {
		t.Errorf("early result: status %d, want 409", resp2.StatusCode)
	}

	// 503: draining.
	go m.Drain(context.Background())
	waitDraining(t, m)
	if _, resp := postJob(t, ts, `{"circuit":"Adder"}`); resp.StatusCode != http.StatusServiceUnavailable {
		t.Errorf("draining submit: status %d, want 503", resp.StatusCode)
	}
}

func TestHTTPCancelMidSolve(t *testing.T) {
	entered := make(chan string, 8)
	release := make(chan struct{})
	defer close(release)
	_, ts := newTestServer(t, Config{Workers: 1, QueueCap: 4, Runner: blockingRunner(entered, release)})

	st, resp := postJob(t, ts, `{"circuit":"Adder"}`)
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("submit: %d", resp.StatusCode)
	}
	<-entered // the job is mid-"solve"

	req, _ := http.NewRequest(http.MethodDelete, ts.URL+"/v1/jobs/"+st.ID, nil)
	dresp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, dresp.Body)
	dresp.Body.Close()
	if dresp.StatusCode != http.StatusOK {
		t.Fatalf("cancel: status %d", dresp.StatusCode)
	}
	final := pollDone(t, ts, st.ID)
	if final.State != StateCanceled {
		t.Errorf("job ended %s after DELETE, want canceled", final.State)
	}
}

// TestHTTPEventStream verifies live NDJSON delivery: a client subscribed
// while the job runs sees events as they are emitted and the stream closes
// when the job finishes.
func TestHTTPEventStream(t *testing.T) {
	entered := make(chan string, 8)
	release := make(chan struct{})
	emitting := func(ctx context.Context, spec *JobSpec, trc *obs.Tracer) (*JobResult, error) {
		sp := trc.StartSpan("fake-solve")
		trc.Gauge("pre_release", 1)
		entered <- spec.Netlist.Name
		select {
		case <-release:
		case <-ctx.Done():
			sp.End()
			return nil, ctx.Err()
		}
		trc.Gauge("post_release", 2)
		sp.End()
		return &JobResult{Legal: true, Placement: []byte("{}")}, nil
	}
	_, ts := newTestServer(t, Config{Workers: 1, QueueCap: 4, Runner: emitting})

	st, resp := postJob(t, ts, `{"circuit":"Adder"}`)
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("submit: %d", resp.StatusCode)
	}
	<-entered

	eresp, err := http.Get(ts.URL + "/v1/jobs/" + st.ID + "/events")
	if err != nil {
		t.Fatal(err)
	}
	defer eresp.Body.Close()
	if ct := eresp.Header.Get("Content-Type"); ct != "application/x-ndjson" {
		t.Errorf("events Content-Type %q", ct)
	}
	sc := bufio.NewScanner(eresp.Body)
	sc.Buffer(make([]byte, 1<<20), 1<<20)

	// The pre-subscription history (span_start, gauge) arrives first,
	// while the job is still blocked mid-run.
	var kinds []string
	readOne := func() {
		t.Helper()
		if !sc.Scan() {
			t.Fatalf("event stream ended early (%v) after %v", sc.Err(), kinds)
		}
		var ev obs.Event
		if err := json.Unmarshal(sc.Bytes(), &ev); err != nil {
			t.Fatalf("non-JSON event line %q: %v", sc.Text(), err)
		}
		kinds = append(kinds, ev.Kind)
	}
	readOne() // span_start
	readOne() // gauge, delivered while the job is still running
	// Release the job: the rest of the stream (gauge, span_end, summary)
	// must arrive and the connection must close.
	close(release)
	for sc.Scan() {
		var ev obs.Event
		if err := json.Unmarshal(sc.Bytes(), &ev); err != nil {
			t.Fatalf("non-JSON event line %q: %v", sc.Text(), err)
		}
		kinds = append(kinds, ev.Kind)
	}
	if err := sc.Err(); err != nil {
		t.Fatalf("stream error: %v", err)
	}
	joined := strings.Join(kinds, ",")
	for _, want := range []string{obs.KindSpanStart, obs.KindGauge, obs.KindSpanEnd, obs.KindSummary} {
		if !strings.Contains(joined, want) {
			t.Errorf("stream %s missing %q", joined, want)
		}
	}
	pollDone(t, ts, st.ID)
}

func TestHTTPHealthzAndMetrics(t *testing.T) {
	_, ts := newTestServer(t, Config{Workers: 3, QueueCap: 5})
	resp, err := http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	var hz struct {
		Status  string `json:"status"`
		Workers int    `json:"workers"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&hz); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if hz.Status != "ok" || hz.Workers != 3 {
		t.Errorf("healthz %+v", hz)
	}

	mresp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	var met Metrics
	if err := json.NewDecoder(mresp.Body).Decode(&met); err != nil {
		t.Fatal(err)
	}
	mresp.Body.Close()
	if met.QueueCap != 5 || met.Workers != 3 {
		t.Errorf("metrics %+v", met)
	}
}

func TestHTTPBodyLimit(t *testing.T) {
	m := NewManager(Config{Workers: 1, QueueCap: 2})
	ts := httptest.NewServer(NewServer(m, 128).Handler())
	t.Cleanup(func() {
		ts.Close()
		drain(t, m)
	})
	big := `{"circuit":"Adder","method":"` + strings.Repeat("x", 200) + `"}`
	_, resp := postJob(t, ts, big)
	if resp.StatusCode != http.StatusRequestEntityTooLarge {
		t.Errorf("oversized body: status %d, want 413", resp.StatusCode)
	}
}
