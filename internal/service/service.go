// Package service implements placement-as-a-service: a job manager with a
// multi-tenant fair scheduler (internal/sched), a content-addressed result
// cache (internal/rescache), and a configurable worker pool, wrapped by
// the HTTP/JSON API that cmd/placerd serves.
//
// A job moves queued → running → done/failed/canceled. Each job owns an
// obs.Tracer backed by an obs.StreamSink, so per-iteration solver telemetry
// can be tailed live over /v1/jobs/{id}/events while the job runs.
// Cancellation and per-job deadlines propagate into the solvers through
// core.PlaceCtx; a canceled job never reports a partial placement, so a
// completed service placement is byte-identical to the cmd/placer output
// for the same netlist, method, and seed.
//
// Scheduling: submissions carry a tenant and a priority class. Interactive
// jobs run before batch jobs; within a class, tenants share the workers by
// weighted fair queuing with weight proportional to inverse circuit size,
// so one tenant's burst of large circuits cannot starve another's stream
// of small ones. Per-tenant in-flight quotas turn overload into explicit
// 429 backpressure instead of unbounded queueing.
//
// Caching: because placements are deterministic — bit-identical at any
// thread count — a completed result is stored under the SHA-256 of its
// canonical netlist fingerprint plus the result-affecting knobs, and an
// identical resubmission is served from the cache byte-for-byte without
// touching the solvers.
//
// Kernel parallelism: the manager owns one machine-sized par.Pool shared
// by all workers (core.Options.Pool) instead of each placement building
// and tearing down its own; requests that pin an explicit thread count
// keep the private per-job pool.
package service

import (
	"bytes"
	"context"
	"encoding/hex"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"math"
	"runtime"
	"strconv"
	"sync"
	"time"

	"repro/internal/circuit"
	"repro/internal/core"
	"repro/internal/netio"
	"repro/internal/obs"
	"repro/internal/obs/metrics"
	"repro/internal/par"
	"repro/internal/refine"
	"repro/internal/rescache"
	"repro/internal/sched"
)

// State is a job's lifecycle position.
type State string

// Job states.
const (
	StateQueued   State = "queued"
	StateRunning  State = "running"
	StateDone     State = "done"
	StateFailed   State = "failed"
	StateCanceled State = "canceled"
)

// Terminal reports whether no further transition can happen.
func (s State) Terminal() bool {
	return s == StateDone || s == StateFailed || s == StateCanceled
}

// Submission errors the HTTP layer maps to status codes.
var (
	// ErrQueueFull is returned when the bounded job queue is at capacity
	// (HTTP 429).
	ErrQueueFull = errors.New("service: job queue full")
	// ErrTenantQuota is returned when the submitting tenant is at its
	// in-flight quota (HTTP 429). The wrapped sched.QuotaError carries the
	// tenant and limits.
	ErrTenantQuota = errors.New("service: tenant at quota")
	// ErrDraining is returned once shutdown has begun (HTTP 503).
	ErrDraining = errors.New("service: server is draining")
)

// SubmitRequest is the body of POST /v1/jobs. Exactly one of Netlist
// (a full netlist JSON document) and Circuit (a built-in benchmark name)
// selects the input.
type SubmitRequest struct {
	Netlist json.RawMessage `json:"netlist,omitempty"`
	Circuit string          `json:"circuit,omitempty"`
	Method  string          `json:"method,omitempty"` // sa | prev | eplace-a (default)
	Seed    int64           `json:"seed,omitempty"`

	// TimeoutSec bounds the run; 0 falls back to the manager's default.
	TimeoutSec float64 `json:"timeout_sec,omitempty"`

	// Optional knobs mirroring core.Options.
	AreaWeight float64 `json:"area_weight,omitempty"`
	Mu         float64 `json:"mu,omitempty"`
	Portfolio  int     `json:"portfolio,omitempty"`
	// Chains is the SA portfolio width: independent parallel chains with a
	// deterministic best-of reduction (0 = the annealer's restart count).
	Chains int `json:"chains,omitempty"`
	// Refine appends the ILP large-neighborhood refinement stage after the
	// selected method; RefineWindows bounds its window budget (0 = auto).
	// Refined results are never worse than unrefined at the same seed.
	Refine        bool `json:"refine,omitempty"`
	RefineWindows int  `json:"refine_windows,omitempty"`
	// Threads overrides the per-job kernel worker count. Placement bits
	// are identical at every value; only runtime changes. 0 (the default)
	// runs the job on the manager's shared machine-sized pool; an explicit
	// positive value gives the job a private pool of that size.
	Threads int `json:"threads,omitempty"`

	// BaseJob re-places this (possibly edited) netlist against a finished
	// job's placement — the incremental (ECO) path. The named job must be
	// done and owned by the same manager; its netlist becomes the warm
	// start's base. Alternatively BasePlacement (a placement JSON document)
	// plus optionally BaseNetlist (the netlist it was solved for; default:
	// the submitted netlist) inlines the prior placement directly. ECO
	// jobs are charged their perturbed-region size, not the full device
	// count, so the fair scheduler serves them at interactive weight.
	BaseJob       string          `json:"base_job,omitempty"`
	BaseNetlist   json.RawMessage `json:"base_netlist,omitempty"`
	BasePlacement json.RawMessage `json:"base_placement,omitempty"`
	// AnchorWeight and AnchorGrowth tune the warm start's anchor-pseudonet
	// schedule (0 = defaults 0.3 and 1.03). Only valid with a base.
	AnchorWeight float64 `json:"anchor_weight,omitempty"`
	AnchorGrowth float64 `json:"anchor_growth,omitempty"`

	// Tenant identifies the submitting client for fair scheduling and
	// quota accounting. Empty means the "default" tenant.
	Tenant string `json:"tenant,omitempty"`
	// Priority selects the scheduling class: "interactive" (the default)
	// or "batch". Interactive jobs are served before batch jobs.
	Priority string `json:"priority,omitempty"`
}

// JobSpec is a validated submission: the resolved netlist and method plus
// the raw request. It is what a Runner executes.
type JobSpec struct {
	Netlist *circuit.Netlist
	Method  core.Method
	Req     SubmitRequest

	// Priority is the parsed scheduling class from Req.Priority.
	Priority sched.Priority

	// Metrics is the manager's process-wide registry, set on acceptance so
	// DefaultRunner can thread it into core.Options without changing the
	// Runner signature. Nil (e.g. in tests constructing specs by hand) is
	// fine: metering is then off for the run.
	Metrics *metrics.Registry

	// Pool, when non-nil, is the manager's shared kernel worker pool,
	// handed to core.Options.Pool so placements skip per-call pool setup.
	// Requests pinning an explicit thread count leave it nil and get a
	// private pool sized by Req.Threads.
	Pool *par.Pool

	// Warm, when non-nil, is the resolved warm start (ECO re-place) for
	// the job; WarmCost is its scheduling cost — one plus the perturbed
	// region size, so small edits are cheap under weighted fair queuing.
	Warm     *core.WarmStart
	WarmCost float64
}

// JobResult is the payload of a completed job. Placement holds the exact
// bytes circuit.WritePlacementJSON produces, so clients (and the CI smoke
// test) can diff it against cmd/placer output.
type JobResult struct {
	AreaUM2      float64 `json:"area_um2"`
	HPWLUM       float64 `json:"hpwl_um"`
	RuntimeSec   float64 `json:"runtime_sec"`
	Legal        bool    `json:"legal"`
	GPIterations int     `json:"gp_iterations,omitempty"`
	ILPNodes     int     `json:"ilp_nodes,omitempty"`
	SAProposals  int     `json:"sa_proposals,omitempty"`
	// Warm-start (ECO) jobs only: anchor-set and perturbed-region sizes.
	WarmAnchored  int             `json:"warm_anchored,omitempty"`
	WarmPerturbed int             `json:"warm_perturbed,omitempty"`
	Placement     json.RawMessage `json:"placement"`
	// Cached marks a result served from the content-addressed cache: the
	// placement bytes (and quality numbers) are those of the original
	// solve; no solver ran for this job.
	Cached bool `json:"cached,omitempty"`
}

// Runner executes one validated job. The default is DefaultRunner; tests
// inject blocking or failing runners to exercise queue mechanics.
type Runner func(ctx context.Context, spec *JobSpec, tracer *obs.Tracer) (*JobResult, error)

// DefaultRunner places spec's netlist with core.PlaceCtx and renders the
// placement JSON. It uses exactly the options cmd/placer derives from its
// flags, keeping service results byte-identical to CLI results at the same
// seed.
func DefaultRunner(ctx context.Context, spec *JobSpec, tracer *obs.Tracer) (*JobResult, error) {
	opt := core.Options{
		Seed:       spec.Req.Seed,
		AreaWeight: spec.Req.AreaWeight,
		Mu:         spec.Req.Mu,
		Portfolio:  spec.Req.Portfolio,
		Chains:     spec.Req.Chains,
		Threads:    spec.Req.Threads,
		Pool:       spec.Pool,
		Tracer:     tracer,
		Metrics:    spec.Metrics,
	}
	if spec.Req.Refine {
		opt.Refine = &refine.Options{Windows: spec.Req.RefineWindows}
	}
	opt.WarmStart = spec.Warm
	res, err := core.PlaceCtx(ctx, spec.Netlist, spec.Method, opt)
	if err != nil {
		return nil, err
	}
	var buf bytes.Buffer
	if err := spec.Netlist.WritePlacementJSON(&buf, res.Placement); err != nil {
		return nil, err
	}
	return &JobResult{
		AreaUM2:       res.AreaUM2,
		HPWLUM:        res.HPWLUM,
		RuntimeSec:    res.Runtime.Seconds(),
		Legal:         res.Legal,
		GPIterations:  res.GPIterations,
		ILPNodes:      res.ILPNodes,
		SAProposals:   res.SAProposals,
		WarmAnchored:  res.WarmAnchored,
		WarmPerturbed: res.WarmPerturbed,
		Placement:     buf.Bytes(),
	}, nil
}

// Job is one placement submission and its lifecycle state.
type Job struct {
	id   string
	spec JobSpec
	sink *obs.StreamSink
	trc  *obs.Tracer

	// item is the job's scheduler entry; cacheKey addresses its result in
	// the content cache when hasKey is set. Both are fixed at acceptance.
	item     *sched.Item
	cacheKey rescache.Key
	hasKey   bool

	mu        sync.Mutex
	state     State
	err       string
	result    *JobResult
	submitted time.Time
	started   time.Time
	finished  time.Time
	canceled  bool               // cancel requested (possibly before running)
	cancelRun context.CancelFunc // set while running
	done      chan struct{}      // closed on reaching a terminal state
}

// ID returns the job's unique identifier.
func (j *Job) ID() string { return j.id }

// Spec returns the validated submission.
func (j *Job) Spec() *JobSpec { return &j.spec }

// Sink exposes the job's event stream for tailing.
func (j *Job) Sink() *obs.StreamSink { return j.sink }

// Done is closed once the job reaches a terminal state.
func (j *Job) Done() <-chan struct{} { return j.done }

// Status is a point-in-time snapshot of a job, shaped for JSON.
type Status struct {
	ID          string     `json:"id"`
	State       State      `json:"state"`
	Method      string     `json:"method"`
	Circuit     string     `json:"circuit"`
	Seed        int64      `json:"seed"`
	Tenant      string     `json:"tenant"`
	Priority    string     `json:"priority"`
	SubmittedAt time.Time  `json:"submitted_at"`
	StartedAt   *time.Time `json:"started_at,omitempty"`
	FinishedAt  *time.Time `json:"finished_at,omitempty"`
	// QueueWaitSec is acceptance-to-start latency, present once the job has
	// started. Queue wait and solve time are separate dimensions: a slow
	// response to a client can be a saturated queue or a slow solve, and
	// conflating them misdiagnoses capacity problems.
	QueueWaitSec *float64 `json:"queue_wait_sec,omitempty"`
	// BaseJob echoes an ECO submission's base-job reference; Warm marks
	// any warm-start job (base_job or inline base).
	BaseJob string     `json:"base_job,omitempty"`
	Warm    bool       `json:"warm,omitempty"`
	Events  int        `json:"events"`
	Error   string     `json:"error,omitempty"`
	Result  *JobResult `json:"result,omitempty"`
}

// Status snapshots the job.
func (j *Job) Status() Status {
	j.mu.Lock()
	defer j.mu.Unlock()
	st := Status{
		ID:          j.id,
		State:       j.state,
		Method:      j.spec.Req.Method,
		Circuit:     j.spec.Netlist.Name,
		Seed:        j.spec.Req.Seed,
		Tenant:      j.spec.Req.Tenant,
		Priority:    j.spec.Priority.String(),
		SubmittedAt: j.submitted,
		BaseJob:     j.spec.Req.BaseJob,
		Warm:        j.spec.Warm != nil,
		Events:      j.sink.Len(),
		Error:       j.err,
		Result:      j.result,
	}
	if !j.started.IsZero() {
		t := j.started
		st.StartedAt = &t
		w := j.started.Sub(j.submitted).Seconds()
		st.QueueWaitSec = &w
	}
	if !j.finished.IsZero() {
		t := j.finished
		st.FinishedAt = &t
	}
	return st
}

// Config sizes a Manager.
type Config struct {
	// Workers is the worker-pool size (default runtime.NumCPU()).
	Workers int
	// QueueCap bounds the queue of not-yet-running jobs (default 64).
	QueueCap int
	// TenantQuota bounds each tenant's in-flight jobs — queued plus
	// running. 0 means unlimited. Submissions beyond it are rejected with
	// ErrTenantQuota (HTTP 429).
	TenantQuota int
	// CacheBytes bounds the content-addressed result cache (total stored
	// result bytes, LRU-evicted). 0 disables caching.
	CacheBytes int64
	// DefaultTimeout caps jobs whose request sets no timeout_sec (0 = no
	// limit).
	DefaultTimeout time.Duration
	// Threads sizes the manager's shared kernel worker pool and fills
	// zero-valued request thread counts (0 sizes the pool to
	// runtime.NumCPU(); 1 disables the shared pool, running kernels
	// inline). Placement bits do not depend on it.
	Threads int
	// Runner executes jobs (default DefaultRunner).
	Runner Runner
}

// Manager owns the job table, the fair scheduler, the result cache, the
// shared kernel pool, and the worker pool.
type Manager struct {
	cfg     Config
	sched   *sched.Queue
	cache   *rescache.Cache // nil when caching is disabled
	pool    *par.Pool       // shared kernel pool; nil runs kernels inline
	poolEnd sync.Once       // closes pool after the last worker exits
	wg      sync.WaitGroup
	started time.Time

	mu       sync.Mutex
	jobs     map[string]*Job
	order    []string // submission order, for listing
	seq      int
	draining bool
	running  int

	// Cumulative service counters.
	submitted, rejected, completed, failed, canceledN int64
	cacheHits, cacheMisses, solverRuns                int64

	// Solver telemetry rolled up from finished jobs' tracers.
	aggCounters map[string]float64
	aggGauges   map[string]float64
	aggGaugeAgg map[string]GaugeAgg
	aggSpans    map[string]obs.SpanStat

	// reg is the process-wide Prometheus-style registry: job latency
	// histograms, rejection counters, and (set at scrape time) queue and
	// worker gauges. Jobs feed it their kernel timings via JobSpec.Metrics
	// and their stage spans via a per-job SpanSink.
	reg *metrics.Registry
}

// GaugeAgg aggregates one solver gauge across finished jobs. Gauges are
// point-in-time values, so unlike counters they cannot be summed; the
// rollup keeps the last value plus the min/max envelope and how many jobs
// reported it.
type GaugeAgg struct {
	Last  float64 `json:"last"`
	Min   float64 `json:"min"`
	Max   float64 `json:"max"`
	Count int64   `json:"count"`
}

// NewManager starts the worker pool and returns the manager.
func NewManager(cfg Config) *Manager {
	if cfg.Workers <= 0 {
		cfg.Workers = runtime.NumCPU()
	}
	if cfg.QueueCap <= 0 {
		cfg.QueueCap = 64
	}
	if cfg.Runner == nil {
		cfg.Runner = DefaultRunner
	}
	m := &Manager{
		cfg:         cfg,
		sched:       sched.New(sched.Config{Capacity: cfg.QueueCap, TenantQuota: cfg.TenantQuota}),
		cache:       rescache.New(cfg.CacheBytes),
		started:     time.Now(),
		jobs:        map[string]*Job{},
		aggCounters: map[string]float64{},
		aggGauges:   map[string]float64{},
		aggGaugeAgg: map[string]GaugeAgg{},
		aggSpans:    map[string]obs.SpanStat{},
		reg:         metrics.New(),
	}
	// One machine-sized kernel pool shared by every worker: par.Pool
	// supports concurrent Run calls, and deterministic sharding keys off
	// the problem size, so sharing changes scheduling but never bits.
	// NewPool returns nil for sizes <= 1 (kernels then run inline).
	poolSize := cfg.Threads
	if poolSize == 0 {
		poolSize = runtime.NumCPU()
	}
	m.pool = par.NewPool(poolSize)
	// The timing observer must be installed before the pool's first Run;
	// a pool serving every method and size reports the aggregate view.
	core.InstallPoolMetrics(m.pool, m.reg, "all", "all")
	m.wg.Add(cfg.Workers)
	for i := 0; i < cfg.Workers; i++ {
		go m.worker()
	}
	return m
}

// Validate resolves and checks a submission, returning the runnable spec.
func (m *Manager) validate(req SubmitRequest) (*JobSpec, error) {
	if req.Method == "" {
		req.Method = "eplace-a"
	}
	method, err := core.ParseMethod(req.Method)
	if err != nil {
		return nil, err
	}
	prio, err := sched.ParsePriority(req.Priority)
	if err != nil {
		return nil, err
	}
	if req.Tenant == "" {
		req.Tenant = "default"
	}
	if req.TimeoutSec < 0 {
		return nil, fmt.Errorf("service: negative timeout_sec %g", req.TimeoutSec)
	}
	if req.Threads < 0 {
		return nil, fmt.Errorf("service: negative threads %d", req.Threads)
	}
	if req.Chains < 0 {
		return nil, fmt.Errorf("service: negative chains %d", req.Chains)
	}
	if req.RefineWindows < 0 {
		return nil, fmt.Errorf("service: negative refine_windows %d", req.RefineWindows)
	}
	// A zero thread count rides the manager's shared pool; an explicit
	// count gets a private per-job pool of that size (the pre-shared-pool
	// behavior, kept for requests that want to bound their own footprint).
	sharedPool := req.Threads == 0
	if req.Threads == 0 {
		req.Threads = m.cfg.Threads
	}
	var n *circuit.Netlist
	switch {
	case len(req.Netlist) > 0 && req.Circuit != "":
		return nil, errors.New("service: request sets both netlist and circuit; choose one")
	case len(req.Netlist) > 0:
		n, err = netio.DecodeBytes(req.Netlist, "netlist")
		if err != nil {
			return nil, err
		}
	case req.Circuit != "":
		n, _, err = netio.Load("", req.Circuit)
		if err != nil {
			return nil, err
		}
	default:
		return nil, errors.New("service: request needs a netlist document or a built-in circuit name")
	}
	spec := &JobSpec{Netlist: n, Method: method, Req: req, Priority: prio}
	if sharedPool {
		spec.Pool = m.pool
	}
	if err := m.resolveWarm(spec); err != nil {
		return nil, err
	}
	return spec, nil
}

// resolveWarm turns a submission's base-job reference or inline base
// placement into the spec's core.WarmStart, and prices the job by its
// perturbed-region size for the fair scheduler.
func (m *Manager) resolveWarm(spec *JobSpec) error {
	req := &spec.Req
	hasInline := len(req.BasePlacement) > 0
	switch {
	case req.BaseJob == "" && !hasInline:
		if len(req.BaseNetlist) > 0 {
			return errors.New("service: base_netlist without base_placement")
		}
		if req.AnchorWeight != 0 || req.AnchorGrowth != 0 {
			return errors.New("service: anchor knobs need base_job or base_placement")
		}
		return nil
	case req.BaseJob != "" && (hasInline || len(req.BaseNetlist) > 0):
		return errors.New("service: request sets both base_job and an inline base; choose one")
	}
	if req.AnchorWeight < 0 || req.AnchorGrowth < 0 {
		return fmt.Errorf("service: negative anchor knobs")
	}

	var baseNet *circuit.Netlist
	var doc *circuit.PlacementDoc
	if req.BaseJob != "" {
		base, ok := m.Get(req.BaseJob)
		if !ok {
			return fmt.Errorf("service: base_job %q not found", req.BaseJob)
		}
		st := base.Status()
		if st.State != StateDone || st.Result == nil {
			return fmt.Errorf("service: base_job %q is %s, not done", req.BaseJob, st.State)
		}
		var err error
		doc, err = circuit.ReadPlacementDoc(bytes.NewReader(st.Result.Placement))
		if err != nil {
			return fmt.Errorf("service: base_job %q placement: %w", req.BaseJob, err)
		}
		baseNet = base.Spec().Netlist
	} else {
		var err error
		doc, err = circuit.ReadPlacementDoc(bytes.NewReader(req.BasePlacement))
		if err != nil {
			return fmt.Errorf("service: base_placement: %w", err)
		}
		baseNet = spec.Netlist
		if len(req.BaseNetlist) > 0 {
			baseNet, err = netio.DecodeBytes(req.BaseNetlist, "base_netlist")
			if err != nil {
				return err
			}
		}
	}
	prior, err := netio.PlacementForNetlistStrict(baseNet, doc)
	if err != nil {
		return err
	}
	spec.Warm = &core.WarmStart{
		Placement:    prior,
		AnchorWeight: req.AnchorWeight,
		AnchorGrowth: req.AnchorGrowth,
	}
	if baseNet != spec.Netlist {
		spec.Warm.Base = baseNet
	}
	d := netio.DiffNetlists(baseNet, spec.Netlist, netio.DiffOptions{})
	spec.WarmCost = float64(1 + d.PerturbedCount())
	return nil
}

// cachedResult is the cache's storage envelope for a JobResult. The
// placement travels as []byte (base64 in JSON), NOT as the RawMessage the
// API serves: json.Marshal compacts RawMessage content, which would break
// the byte-identity guarantee for whitespace-formatted placement JSON.
type cachedResult struct {
	Result    JobResult `json:"result"` // Placement nil-ed out
	Placement []byte    `json:"placement"`
}

func encodeCachedResult(res *JobResult) ([]byte, error) {
	cr := cachedResult{Result: *res, Placement: res.Placement}
	cr.Result.Placement = nil
	return json.Marshal(&cr)
}

func decodeCachedResult(b []byte) (*JobResult, error) {
	var cr cachedResult
	if err := json.Unmarshal(b, &cr); err != nil {
		return nil, err
	}
	r := cr.Result
	r.Placement = json.RawMessage(cr.Placement)
	return &r, nil
}

// cacheKeyFor derives a job's content address: the canonical netlist
// fingerprint plus every knob that affects the output bits. Thread count,
// timeout, tenant, and priority are deliberately excluded — placements are
// bit-identical across them, so requests differing only there share one
// entry. Floats contribute their exact IEEE-754 bits.
func cacheKeyFor(spec *JobSpec) rescache.Key {
	fb := func(f float64) string { return strconv.FormatUint(math.Float64bits(f), 16) }
	fields := []string{
		spec.Method.ShortName(),
		strconv.FormatInt(spec.Req.Seed, 10),
		fb(spec.Req.AreaWeight),
		fb(spec.Req.Mu),
		strconv.Itoa(spec.Req.Portfolio),
		strconv.Itoa(spec.Req.Chains),
		// Refined and unrefined submissions must never share an entry:
		// refinement changes the placement bits, and the window budget
		// changes how far it runs.
		strconv.FormatBool(spec.Req.Refine),
		strconv.Itoa(spec.Req.RefineWindows),
	}
	if w := spec.Warm; w != nil {
		// A warm solve's bits depend on the base netlist, the exact base
		// placement, and the anchor schedule — never on how the base was
		// named (job reference vs inline), so an ECO re-submission hits the
		// cache across either form but never collides with a cold solve.
		baseNet := w.Base
		if baseNet == nil {
			baseNet = spec.Netlist
		}
		nfp := netio.Fingerprint(baseNet)
		pfp := netio.FingerprintPlacement(baseNet, w.Placement)
		fields = append(fields, "warm",
			hex.EncodeToString(nfp[:]),
			hex.EncodeToString(pfp[:]),
			fb(w.AnchorWeight),
			fb(w.AnchorGrowth),
		)
	}
	return rescache.NewKey(netio.Fingerprint(spec.Netlist), fields...)
}

// Submit validates req and enqueues a job with the fair scheduler. It
// returns ErrQueueFull at global queue capacity, ErrTenantQuota at the
// tenant's in-flight bound, and ErrDraining after shutdown has begun.
// Validation failures surface before a job is created, so malformed
// requests never occupy queue slots.
func (m *Manager) Submit(req SubmitRequest) (*Job, error) {
	spec, err := m.validate(req)
	if err != nil {
		m.mu.Lock()
		m.rejected++
		m.mu.Unlock()
		m.rejectedCounter("invalid").Inc()
		return nil, err
	}
	spec.Metrics = m.reg

	m.mu.Lock()
	defer m.mu.Unlock()
	if m.draining {
		m.rejected++
		m.rejectedCounter("draining").Inc()
		return nil, ErrDraining
	}
	m.seq++
	job := &Job{
		id:        fmt.Sprintf("job-%06d", m.seq),
		spec:      *spec,
		sink:      obs.NewStreamSink(),
		state:     StateQueued,
		submitted: time.Now(),
		done:      make(chan struct{}),
	}
	if m.cache != nil {
		job.cacheKey = cacheKeyFor(spec)
		job.hasKey = true
	}
	// The SpanSink rides alongside the streaming sink: the same span events
	// that clients tail over /events also feed per-stage latency histograms.
	job.trc = obs.New(job.sink, metrics.NewSpanSink(m.reg, "placerd_stage_seconds",
		"method", spec.Req.Method, "size", metrics.SizeClass(len(spec.Netlist.Devices))))
	// The job's scheduling weight is inverse to its circuit size: the
	// device count is the cost the fair queue charges the tenant. ECO
	// jobs only pay for their perturbed region — a small edit against a
	// large finished placement schedules like a small job.
	cost := float64(len(spec.Netlist.Devices))
	if spec.Warm != nil {
		cost = spec.WarmCost
	}
	job.item = &sched.Item{
		Tenant:   spec.Req.Tenant,
		Priority: spec.Priority,
		Cost:     cost,
		Payload:  job,
	}
	if err := m.sched.Enqueue(job.item); err != nil {
		m.seq-- // slot not taken; reuse the ID
		m.rejected++
		var quota *sched.QuotaError
		switch {
		case errors.As(err, &quota):
			m.rejectedCounter("tenant_quota").Inc()
			return nil, fmt.Errorf("%w: %w", ErrTenantQuota, err)
		case errors.Is(err, sched.ErrClosed):
			m.rejectedCounter("draining").Inc()
			return nil, ErrDraining
		default: // *sched.FullError
			m.rejectedCounter("queue_full").Inc()
			return nil, fmt.Errorf("%w: %w", ErrQueueFull, err)
		}
	}
	m.jobs[job.id] = job
	m.order = append(m.order, job.id)
	m.submitted++
	return job, nil
}

// rejectedCounter resolves the per-reason rejection counter. Reasons are a
// closed set: invalid, queue_full, tenant_quota, draining.
func (m *Manager) rejectedCounter(reason string) *metrics.Counter {
	return m.reg.Counter("placerd_jobs_rejected_total",
		"Submissions rejected before being accepted, by reason.",
		"reason", reason)
}

// Get returns a job by ID.
func (m *Manager) Get(id string) (*Job, bool) {
	m.mu.Lock()
	defer m.mu.Unlock()
	j, ok := m.jobs[id]
	return j, ok
}

// Jobs lists all jobs in submission order.
func (m *Manager) Jobs() []*Job {
	m.mu.Lock()
	defer m.mu.Unlock()
	out := make([]*Job, 0, len(m.order))
	for _, id := range m.order {
		out = append(out, m.jobs[id])
	}
	return out
}

// Cancel requests cancellation: a queued job is finalized immediately, a
// running job has its context canceled (the solvers stop at their next
// callback poll), and a terminal job is left untouched (no error — cancel
// is idempotent).
func (m *Manager) Cancel(id string) error {
	j, ok := m.Get(id)
	if !ok {
		return fmt.Errorf("service: no job %q", id)
	}
	j.mu.Lock()
	j.canceled = true
	switch j.state {
	case StateQueued:
		j.state = StateCanceled
		j.finished = time.Now()
		j.err = context.Canceled.Error()
		close(j.done)
		j.mu.Unlock()
		// Drop the scheduler entry: the quota releases immediately and the
		// job never reaches a worker. If the pop already happened (Remove
		// reports false), runJob's state check skips it and the worker's
		// Done call releases the quota instead.
		m.sched.Remove(j.item)
		j.trc.Close() // end event streams
		m.finalize(j, StateCanceled)
	case StateRunning:
		cancel := j.cancelRun
		j.mu.Unlock()
		if cancel != nil {
			cancel()
		}
	default:
		j.mu.Unlock()
	}
	return nil
}

// worker pops jobs in fair-scheduling order until the queue closes on
// drain. The sched.Done call after each job releases the tenant's
// in-flight quota slot.
func (m *Manager) worker() {
	defer m.wg.Done()
	for {
		it, ok := m.sched.Pop()
		if !ok {
			return
		}
		m.runJob(it.Payload.(*Job))
		m.sched.Done(it.Tenant)
	}
}

// runJob executes one job end to end, including state transitions and
// telemetry rollup.
func (m *Manager) runJob(job *Job) {
	job.mu.Lock()
	if job.state != StateQueued { // canceled while queued
		job.mu.Unlock()
		return
	}
	ctx, cancel := context.WithCancel(context.Background())
	timeout := m.cfg.DefaultTimeout
	if job.spec.Req.TimeoutSec > 0 {
		timeout = time.Duration(job.spec.Req.TimeoutSec * float64(time.Second))
	}
	if timeout > 0 {
		ctx, cancel = context.WithTimeout(ctx, timeout)
	}
	job.state = StateRunning
	job.started = time.Now()
	job.cancelRun = cancel
	canceledEarly := job.canceled
	queueWait := job.started.Sub(job.submitted)
	job.mu.Unlock()
	if canceledEarly {
		cancel() // Cancel raced between queue pop and cancelRun being set
	}
	m.reg.Histogram("placerd_job_queue_wait_seconds",
		"Time a job spent queued: acceptance to start of execution.",
		metrics.DefBuckets, "method", job.spec.Req.Method,
		"priority", job.spec.Priority.String()).Observe(queueWait.Seconds())
	m.mu.Lock()
	m.running++
	m.mu.Unlock()

	// Cache probe first: determinism makes a stored result byte-identical
	// to the solve it replaces, so a hit skips the runner entirely.
	var res *JobResult
	var err error
	cached := false
	if job.hasKey {
		if b, ok := m.cache.Get(job.cacheKey); ok {
			if r, jerr := decodeCachedResult(b); jerr == nil {
				r.Cached = true
				res, cached = r, true
			}
		}
		result := "miss"
		if cached {
			result = "hit"
		}
		m.reg.Counter("placerd_cache_requests_total",
			"Result-cache lookups by executed jobs, by outcome.",
			"result", result).Inc()
	}
	if !cached {
		m.mu.Lock()
		m.solverRuns++
		if job.hasKey {
			m.cacheMisses++
		}
		m.mu.Unlock()
		res, err = m.cfg.Runner(ctx, &job.spec, job.trc)
	} else {
		m.mu.Lock()
		m.cacheHits++
		m.mu.Unlock()
	}
	cancel()
	job.trc.Close() // flush the summary event and end event streams

	job.mu.Lock()
	job.finished = time.Now()
	if !cached {
		// Cache hits are not solves: folding their ~0s turnarounds into the
		// solve-time histogram would fake a latency improvement.
		m.reg.Histogram("placerd_job_solve_seconds",
			"Job execution wall time, queue wait excluded; cache hits are not counted.",
			metrics.DefBuckets, "method", job.spec.Req.Method,
			"size", metrics.SizeClass(len(job.spec.Netlist.Devices))).
			Observe(job.finished.Sub(job.started).Seconds())
	}
	job.cancelRun = nil
	var final State
	switch {
	case err == nil:
		final = StateDone
		job.result = res
		if !cached && job.hasKey {
			// Store the fresh result under its content address; a later
			// identical submission replays these bytes without a solve.
			if b, jerr := encodeCachedResult(res); jerr == nil {
				m.cache.Put(job.cacheKey, b)
			}
		}
	case job.canceled || errors.Is(err, context.Canceled):
		final = StateCanceled
		job.err = err.Error()
	default: // includes context.DeadlineExceeded
		final = StateFailed
		job.err = err.Error()
	}
	job.state = final
	close(job.done)
	job.mu.Unlock()
	m.finalize(job, final)
}

// finalize updates service counters and rolls the job's solver telemetry
// into the aggregate /metrics view.
func (m *Manager) finalize(job *Job, final State) {
	sum := job.trc.Summary()
	m.reg.Counter("placerd_jobs_total",
		"Jobs that reached a terminal state, by outcome.",
		"state", string(final)).Inc()
	m.mu.Lock()
	defer m.mu.Unlock()
	if final != StateCanceled || !job.started.IsZero() {
		m.running--
		if m.running < 0 {
			m.running = 0 // canceled-while-queued jobs never incremented
		}
	}
	switch final {
	case StateDone:
		m.completed++
	case StateFailed:
		m.failed++
	case StateCanceled:
		m.canceledN++
	}
	for k, v := range sum.Counters {
		m.aggCounters[k] += v
	}
	for k, v := range sum.Gauges {
		// Keep both views: the legacy last-value map (stable JSON shape)
		// and the min/max envelope — a plain `map[k] = v` here was
		// last-writer-wins, hiding every job's gauge but the most recent.
		m.aggGauges[k] = v
		st := m.aggGaugeAgg[k]
		if st.Count == 0 || v < st.Min {
			st.Min = v
		}
		if st.Count == 0 || v > st.Max {
			st.Max = v
		}
		st.Last = v
		st.Count++
		m.aggGaugeAgg[k] = st
	}
	for k, v := range sum.Spans {
		st := m.aggSpans[k]
		st.Count += v.Count
		st.TotalMS += v.TotalMS
		m.aggSpans[k] = st
	}
}

// Drain stops intake and waits until every accepted job (queued and
// running) has finished, or ctx expires. It is the SIGTERM path: accepted
// work completes, new work is rejected with ErrDraining.
func (m *Manager) Drain(ctx context.Context) error {
	m.mu.Lock()
	if !m.draining {
		m.draining = true
		m.sched.Close()
	}
	m.mu.Unlock()
	done := make(chan struct{})
	go func() {
		m.wg.Wait()
		// The shared kernel pool outlives every worker; close it only after
		// the last one exits (even if an earlier Drain call timed out).
		m.poolEnd.Do(func() { m.pool.Close() })
		close(done)
	}()
	select {
	case <-done:
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}

// Abort cancels every non-terminal job (used when a drain deadline passes
// or on a second termination signal).
func (m *Manager) Abort() {
	for _, j := range m.Jobs() {
		j.mu.Lock()
		terminal := j.state.Terminal()
		j.mu.Unlock()
		if !terminal {
			m.Cancel(j.id)
		}
	}
}

// Metrics is the /metrics payload: service counters plus the solver
// telemetry (obs counters/gauges/span timings) rolled up across finished
// jobs.
type Metrics struct {
	UptimeSec  float64 `json:"uptime_sec"`
	Workers    int     `json:"workers"`
	QueueDepth int     `json:"queue_depth"`
	QueueCap   int     `json:"queue_cap"`
	Running    int     `json:"running"`
	Draining   bool    `json:"draining"`

	JobsSubmitted int64 `json:"jobs_submitted"`
	JobsRejected  int64 `json:"jobs_rejected"`
	JobsCompleted int64 `json:"jobs_completed"`
	JobsFailed    int64 `json:"jobs_failed"`
	JobsCanceled  int64 `json:"jobs_canceled"`

	// Scheduler view: per-tenant depth and in-flight counts, queued jobs
	// by priority class, and cancelations dropped while still queued.
	Tenants         map[string]sched.TenantStat `json:"tenants,omitempty"`
	QueueByPriority map[string]int              `json:"queue_by_priority,omitempty"`
	SchedDropped    int64                       `json:"sched_dropped"`

	// Result-cache effectiveness: hits served without a solver run,
	// misses that fell through to a solve, total solver invocations, and
	// the cache's occupancy snapshot (absent when caching is disabled).
	CacheHits   int64           `json:"cache_hits"`
	CacheMisses int64           `json:"cache_misses"`
	SolverRuns  int64           `json:"solver_runs"`
	Cache       *rescache.Stats `json:"cache,omitempty"`

	SolverCounters map[string]float64      `json:"solver_counters,omitempty"`
	SolverGauges   map[string]float64      `json:"solver_gauges,omitempty"`
	SolverSpans    map[string]obs.SpanStat `json:"solver_spans,omitempty"`
	// SolverGaugeStats is the per-gauge envelope across finished jobs;
	// SolverGauges keeps only each gauge's most recent value.
	SolverGaugeStats map[string]GaugeAgg `json:"solver_gauge_stats,omitempty"`
}

// Metrics snapshots the manager.
func (m *Manager) Metrics() Metrics {
	ss := m.sched.Stats()
	var cacheStats *rescache.Stats
	if m.cache != nil {
		cs := m.cache.Stats()
		cacheStats = &cs
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	out := Metrics{
		UptimeSec:       time.Since(m.started).Seconds(),
		Workers:         m.cfg.Workers,
		QueueDepth:      ss.Queued,
		QueueCap:        m.cfg.QueueCap,
		Running:         m.running,
		Draining:        m.draining,
		JobsSubmitted:   m.submitted,
		JobsRejected:    m.rejected,
		JobsCompleted:   m.completed,
		JobsFailed:      m.failed,
		JobsCanceled:    m.canceledN,
		Tenants:         ss.Tenants,
		QueueByPriority: ss.ByPriority,
		SchedDropped:    ss.Dropped,
		CacheHits:       m.cacheHits,
		CacheMisses:     m.cacheMisses,
		SolverRuns:      m.solverRuns,
		Cache:           cacheStats,
		SolverCounters:  map[string]float64{},
		SolverGauges:    map[string]float64{},
		SolverSpans:     map[string]obs.SpanStat{},
	}
	for k, v := range m.aggCounters {
		out.SolverCounters[k] = v
	}
	for k, v := range m.aggGauges {
		out.SolverGauges[k] = v
	}
	for k, v := range m.aggSpans {
		out.SolverSpans[k] = v
	}
	if len(m.aggGaugeAgg) > 0 {
		out.SolverGaugeStats = map[string]GaugeAgg{}
		for k, v := range m.aggGaugeAgg {
			out.SolverGaugeStats[k] = v
		}
	}
	return out
}

// Registry exposes the manager's metrics registry (for tests and embedding
// servers that want to register their own series).
func (m *Manager) Registry() *metrics.Registry { return m.reg }

// WritePrometheus renders the Prometheus text view: the queue and worker
// gauges are refreshed from live manager state at scrape time, then the
// whole registry — job latency histograms, per-stage and per-kernel solver
// histograms, rejection counters — is written in deterministic order.
func (m *Manager) WritePrometheus(w io.Writer) error {
	ss := m.sched.Stats()
	m.mu.Lock()
	qcap := m.cfg.QueueCap
	running, workers := m.running, m.cfg.Workers
	draining := m.draining
	uptime := time.Since(m.started).Seconds()
	m.mu.Unlock()

	g := func(name, help string, v float64) { m.reg.Gauge(name, help).Set(v) }
	g("placerd_queue_depth", "Jobs waiting in the scheduler queue.", float64(ss.Queued))
	g("placerd_queue_cap", "Capacity of the job queue.", float64(qcap))
	for tenant, ts := range ss.Tenants {
		m.reg.Gauge("placerd_tenant_queue_depth",
			"Jobs a tenant has waiting in the scheduler queue.",
			"tenant", tenant).Set(float64(ts.Queued))
		m.reg.Gauge("placerd_tenant_inflight_jobs",
			"A tenant's in-flight jobs (queued plus running), the quantity quotas bound.",
			"tenant", tenant).Set(float64(ts.InFlight))
	}
	for prio, n := range ss.ByPriority {
		m.reg.Gauge("placerd_queue_depth_by_priority",
			"Jobs waiting in the scheduler queue, by priority class.",
			"priority", prio).Set(float64(n))
	}
	if m.cache != nil {
		cs := m.cache.Stats()
		g("placerd_cache_bytes", "Bytes of placement results held by the content-addressed cache.", float64(cs.Bytes))
		g("placerd_cache_entries", "Entries in the content-addressed result cache.", float64(cs.Entries))
	}
	g("placerd_running_jobs", "Jobs currently executing.", float64(running))
	g("placerd_workers", "Size of the worker pool.", float64(workers))
	g("placerd_worker_utilization", "Fraction of workers busy, running/workers.",
		float64(running)/float64(workers))
	d := 0.0
	if draining {
		d = 1
	}
	g("placerd_draining", "1 once shutdown has begun and intake is closed.", d)
	g("placerd_uptime_seconds", "Seconds since the manager started.", uptime)
	return m.reg.WritePrometheus(w)
}

// Draining reports whether shutdown has begun.
func (m *Manager) Draining() bool {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.draining
}
