package service

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"strings"
	"sync/atomic"
	"testing"

	"repro/internal/obs"
)

// tenantRunner reports each started job's tenant on entered, then blocks
// until one token arrives on release (or the context ends).
func tenantRunner(entered chan string, release chan struct{}) Runner {
	return func(ctx context.Context, spec *JobSpec, trc *obs.Tracer) (*JobResult, error) {
		entered <- spec.Req.Tenant
		select {
		case <-release:
			return &JobResult{Legal: true, Placement: []byte("{}")}, nil
		case <-ctx.Done():
			return nil, ctx.Err()
		}
	}
}

func submitTenant(t *testing.T, m *Manager, tenant string, seed int64) *Job {
	t.Helper()
	j, err := m.Submit(SubmitRequest{Circuit: "Adder", Method: "sa", Seed: seed, Tenant: tenant})
	if err != nil {
		t.Fatalf("submit %s/%d: %v", tenant, seed, err)
	}
	return j
}

// TestTenantFairInterleaving pins the acceptance-criteria fairness
// property end to end: tenant A floods the queue before tenant B's jobs
// arrive, and the execution order still interleaves the two. A FIFO would
// run a,a,a,a then b,b — B starved behind A's backlog; the fair scheduler
// runs a,a,b,a,b,a. With one worker and equal-cost jobs the order is
// fully deterministic, so the test asserts it exactly.
func TestTenantFairInterleaving(t *testing.T) {
	entered := make(chan string, 8)
	release := make(chan struct{})
	m := NewManager(Config{Workers: 1, QueueCap: 16, Runner: tenantRunner(entered, release)})
	defer drain(t, m)

	jobs := []*Job{submitTenant(t, m, "a", 1)}
	order := []string{<-entered} // a's first job holds the only worker
	// A's backlog lands first, then B arrives.
	for seed := int64(2); seed <= 4; seed++ {
		jobs = append(jobs, submitTenant(t, m, "a", seed))
	}
	jobs = append(jobs, submitTenant(t, m, "b", 1), submitTenant(t, m, "b", 2))

	for i := 0; i < len(jobs); i++ {
		release <- struct{}{}
		if i < len(jobs)-1 {
			order = append(order, <-entered)
		}
	}
	for _, j := range jobs {
		waitState(t, j, StateDone)
	}
	want := "a,a,b,a,b,a"
	if got := strings.Join(order, ","); got != want {
		t.Errorf("execution order %s, want %s (FIFO would be a,a,a,a,b,b)", got, want)
	}
}

// seedRunner reports each started job's seed, then blocks until release
// closes.
func seedRunner(entered chan int64, release chan struct{}) Runner {
	return func(ctx context.Context, spec *JobSpec, trc *obs.Tracer) (*JobResult, error) {
		entered <- spec.Req.Seed
		select {
		case <-release:
			return &JobResult{Legal: true, Placement: []byte("{}")}, nil
		case <-ctx.Done():
			return nil, ctx.Err()
		}
	}
}

// TestCancelQueuedReleasesQuota: canceling a still-queued job frees the
// tenant's quota immediately, the scheduler drops it without ever handing
// it to a worker, and the counters reflect the drop.
func TestCancelQueuedReleasesQuota(t *testing.T) {
	entered := make(chan int64, 8)
	release := make(chan struct{})
	m := NewManager(Config{Workers: 1, QueueCap: 8, TenantQuota: 2, Runner: seedRunner(entered, release)})
	defer drain(t, m)

	running := submitTenant(t, m, "acme", 1)
	if got := <-entered; got != 1 {
		t.Fatalf("first started seed %d, want 1", got)
	}
	queued := submitTenant(t, m, "acme", 2) // quota now full: 1 running + 1 queued

	_, err := m.Submit(SubmitRequest{Circuit: "Adder", Method: "sa", Seed: 9, Tenant: "acme"})
	if !errors.Is(err, ErrTenantQuota) {
		t.Fatalf("over-quota submit: got %v, want ErrTenantQuota", err)
	}
	// Another tenant is not blocked by acme's quota.
	other := submitTenant(t, m, "zenith", 3)

	if err := m.Cancel(queued.ID()); err != nil {
		t.Fatal(err)
	}
	waitState(t, queued, StateCanceled)
	// The freed quota admits a new acme job immediately.
	refill := submitTenant(t, m, "acme", 4)

	close(release)
	for _, j := range []*Job{running, other, refill} {
		waitState(t, j, StateDone)
	}
	// The canceled job never reached the runner: only seeds 1, 3, 4 ran.
	close(entered)
	ran := map[int64]bool{1: true} // consumed above
	for s := range entered {
		ran[s] = true
	}
	if ran[2] || len(ran) != 3 {
		t.Errorf("runner saw seeds %v, want exactly {1,3,4}", ran)
	}

	met := m.Metrics()
	if met.JobsCanceled != 1 {
		t.Errorf("canceled counter %d, want 1", met.JobsCanceled)
	}
	if met.SchedDropped != 1 {
		t.Errorf("sched dropped %d, want 1", met.SchedDropped)
	}
	if met.JobsRejected != 1 {
		t.Errorf("rejected counter %d, want 1 (the over-quota submit)", met.JobsRejected)
	}
	if ts := met.Tenants["acme"]; ts.InFlight != 0 || ts.Queued != 0 {
		t.Errorf("acme stats %+v after completion, want zeros", ts)
	}
}

// TestCacheSkipsRunner: with caching on, a repeated submission is served
// from the cache without invoking the runner, byte-identical to the first
// result; a different key (seed) still solves.
func TestCacheSkipsRunner(t *testing.T) {
	var runs atomic.Int32
	runner := func(ctx context.Context, spec *JobSpec, trc *obs.Tracer) (*JobResult, error) {
		n := runs.Add(1)
		return &JobResult{
			Legal:     true,
			HPWLUM:    float64(100 * spec.Req.Seed),
			Placement: []byte(fmt.Sprintf(`{"run":%d,"seed":%d}`, n, spec.Req.Seed)),
		}, nil
	}
	m := NewManager(Config{Workers: 1, QueueCap: 8, CacheBytes: 1 << 20, Runner: runner})
	defer drain(t, m)

	first := submitAdder(t, m, 5)
	waitState(t, first, StateDone)
	if first.Status().Result.Cached {
		t.Error("first solve marked cached")
	}
	repeat := submitAdder(t, m, 5)
	waitState(t, repeat, StateDone)
	r1, r2 := first.Status().Result, repeat.Status().Result
	if !r2.Cached {
		t.Error("repeated submission not served from cache")
	}
	if !bytes.Equal(r1.Placement, r2.Placement) {
		t.Errorf("cache hit placement %s differs from original %s", r2.Placement, r1.Placement)
	}
	if r1.HPWLUM != r2.HPWLUM {
		t.Errorf("cache hit hpwl %g differs from original %g", r2.HPWLUM, r1.HPWLUM)
	}
	if got := runs.Load(); got != 1 {
		t.Errorf("runner invoked %d times, want 1 (hit must skip the solver)", got)
	}

	// A different seed is a different content address.
	miss := submitAdder(t, m, 6)
	waitState(t, miss, StateDone)
	if miss.Status().Result.Cached {
		t.Error("different-seed submission served from cache")
	}
	if got := runs.Load(); got != 2 {
		t.Errorf("runner invoked %d times after new seed, want 2", got)
	}

	met := m.Metrics()
	if met.CacheHits != 1 || met.CacheMisses != 2 || met.SolverRuns != 2 {
		t.Errorf("hits=%d misses=%d solver_runs=%d, want 1/2/2", met.CacheHits, met.CacheMisses, met.SolverRuns)
	}
	if met.Cache == nil || met.Cache.Entries != 2 {
		t.Errorf("cache stats %+v, want 2 entries", met.Cache)
	}
}

// TestCacheDisabledNeverMarksCached pins the zero-config default: no
// cache, every submission solves.
func TestCacheDisabledNeverMarksCached(t *testing.T) {
	var runs atomic.Int32
	runner := func(ctx context.Context, spec *JobSpec, trc *obs.Tracer) (*JobResult, error) {
		runs.Add(1)
		return &JobResult{Legal: true, Placement: []byte("{}")}, nil
	}
	m := NewManager(Config{Workers: 1, QueueCap: 8, Runner: runner})
	defer drain(t, m)
	for i := 0; i < 2; i++ {
		j := submitAdder(t, m, 7)
		waitState(t, j, StateDone)
		if j.Status().Result.Cached {
			t.Error("cached result with caching disabled")
		}
	}
	if got := runs.Load(); got != 2 {
		t.Errorf("runner invoked %d times, want 2", got)
	}
	if met := m.Metrics(); met.Cache != nil || met.CacheHits != 0 || met.SolverRuns != 2 {
		t.Errorf("metrics %+v with caching disabled", met)
	}
}

// TestCacheRealSolverByteIdentity is the acceptance pin: a cache hit is
// byte-identical to the fresh solve, through the real solver stack, and a
// request differing only in thread count hits the same entry.
func TestCacheRealSolverByteIdentity(t *testing.T) {
	m := NewManager(Config{Workers: 2, QueueCap: 8, CacheBytes: 64 << 20})
	defer drain(t, m)
	req := SubmitRequest{Circuit: "Adder", Method: "eplace-a", Seed: 42, Portfolio: 1}

	fresh, err := m.Submit(req)
	if err != nil {
		t.Fatal(err)
	}
	waitState(t, fresh, StateDone)

	hit, err := m.Submit(req)
	if err != nil {
		t.Fatal(err)
	}
	waitState(t, hit, StateDone)

	// Thread count must not be part of the content address: placements
	// are bit-identical at any thread count.
	threaded := req
	threaded.Threads = 2
	hit2, err := m.Submit(threaded)
	if err != nil {
		t.Fatal(err)
	}
	waitState(t, hit2, StateDone)

	r0 := fresh.Status().Result
	for name, r := range map[string]*JobResult{"identical request": hit.Status().Result, "threads=2 request": hit2.Status().Result} {
		if !r.Cached {
			t.Errorf("%s: not served from cache", name)
		}
		if !bytes.Equal(r.Placement, r0.Placement) {
			t.Errorf("%s: cached placement differs from the fresh solve", name)
		}
		if r.AreaUM2 != r0.AreaUM2 || r.HPWLUM != r0.HPWLUM || r.Legal != r0.Legal {
			t.Errorf("%s: cached quality numbers differ: %+v vs %+v", name, r, r0)
		}
	}
	if met := m.Metrics(); met.SolverRuns != 1 || met.CacheHits != 2 {
		t.Errorf("solver_runs=%d cache_hits=%d, want 1 and 2", met.SolverRuns, met.CacheHits)
	}
}

// TestCacheKeyRefineKnobs pins the content-address extension for the
// refinement stage: requests differing only in the chains / refine /
// refine_windows knobs produce different placements, so they must never
// collide in the cache — while the knobs' zero values keep the historical
// key so existing entries stay addressable.
func TestCacheKeyRefineKnobs(t *testing.T) {
	m := NewManager(Config{Workers: 1, QueueCap: 8})
	defer drain(t, m)

	keyFor := func(req SubmitRequest) string {
		t.Helper()
		spec, err := m.validate(req)
		if err != nil {
			t.Fatalf("validate %+v: %v", req, err)
		}
		return cacheKeyFor(spec).String()
	}

	base := SubmitRequest{Circuit: "Adder", Method: "sa", Seed: 5}
	variants := map[string]SubmitRequest{
		"chains=4":         {Circuit: "Adder", Method: "sa", Seed: 5, Chains: 4},
		"refine":           {Circuit: "Adder", Method: "sa", Seed: 5, Refine: true},
		"refine windows=3": {Circuit: "Adder", Method: "sa", Seed: 5, Refine: true, RefineWindows: 3},
		"refine windows=9": {Circuit: "Adder", Method: "sa", Seed: 5, Refine: true, RefineWindows: 9},
		"chains=4 refine":  {Circuit: "Adder", Method: "sa", Seed: 5, Chains: 4, Refine: true},
	}
	baseKey := keyFor(base)
	seen := map[string]string{baseKey: "base"}
	for name, req := range variants {
		k := keyFor(req)
		if prev, dup := seen[k]; dup {
			t.Errorf("%s: cache key collides with %s", name, prev)
		}
		seen[k] = name
	}

	// Knobs that do not change the bits stay out of the key.
	threaded := base
	threaded.Threads = 4
	if keyFor(threaded) != baseKey {
		t.Error("thread count leaked into the cache key")
	}
}

// TestHTTPStructuredBackpressure checks the 429 responses carry the
// machine-readable error body (reason, tenant, retry_after_sec) and the
// Retry-After header for both quota and capacity rejections.
func TestHTTPStructuredBackpressure(t *testing.T) {
	entered := make(chan string, 8)
	release := make(chan struct{})
	defer close(release)
	_, ts := newTestServer(t, Config{Workers: 1, QueueCap: 1, TenantQuota: 1, Runner: tenantRunner(entered, release)})

	post := func(body string) (int, map[string]any, http.Header) {
		t.Helper()
		resp, err := http.Post(ts.URL+"/v1/jobs", "application/json", strings.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		var payload map[string]any
		if err := json.NewDecoder(resp.Body).Decode(&payload); err != nil {
			t.Fatalf("non-JSON error body: %v", err)
		}
		return resp.StatusCode, payload, resp.Header
	}

	if code, _, _ := post(`{"circuit":"Adder","tenant":"acme"}`); code != http.StatusAccepted {
		t.Fatalf("first submit: %d", code)
	}
	<-entered // acme's job occupies the worker; its quota of 1 is spent

	code, body, hdr := post(`{"circuit":"Adder","tenant":"acme"}`)
	if code != http.StatusTooManyRequests {
		t.Fatalf("over-quota submit: status %d, want 429", code)
	}
	if body["reason"] != "tenant_quota" || body["tenant"] != "acme" {
		t.Errorf("quota body %v, want reason=tenant_quota tenant=acme", body)
	}
	if body["retry_after_sec"] != float64(2) || hdr.Get("Retry-After") != "2" {
		t.Errorf("quota retry hints: body %v header %q", body["retry_after_sec"], hdr.Get("Retry-After"))
	}

	// Fill the single queue slot with another tenant, then overflow it.
	if code, _, _ := post(`{"circuit":"Adder","tenant":"zenith"}`); code != http.StatusAccepted {
		t.Fatalf("zenith submit: %d", code)
	}
	code, body, hdr = post(`{"circuit":"Adder","tenant":"other"}`)
	if code != http.StatusTooManyRequests {
		t.Fatalf("over-capacity submit: status %d, want 429", code)
	}
	if body["reason"] != "queue_full" {
		t.Errorf("capacity body %v, want reason=queue_full", body)
	}
	if body["retry_after_sec"] != float64(1) || hdr.Get("Retry-After") != "1" {
		t.Errorf("capacity retry hints: body %v header %q", body["retry_after_sec"], hdr.Get("Retry-After"))
	}

	// Invalid submissions carry the reason slug too.
	if code, body, _ := post(`{"circuit":"Adder","priority":"urgent"}`); code != http.StatusBadRequest || body["reason"] != "invalid" {
		t.Errorf("invalid-priority submit: status %d body %v, want 400 reason=invalid", code, body)
	}
}
