package service

import (
	"context"
	"errors"
	"io"
	"net/http"
	"strings"
	"testing"
	"time"

	"repro/internal/obs"
)

// outcomeRunner keys the job outcome on the request seed: 1 succeeds, 2
// fails, 3 blocks until canceled. Every run opens a "place" span so the
// manager's SpanSink has something to observe.
func outcomeRunner() Runner {
	return func(ctx context.Context, spec *JobSpec, trc *obs.Tracer) (*JobResult, error) {
		sp := trc.StartSpan("place")
		defer sp.End()
		switch spec.Req.Seed {
		case 2:
			return nil, errors.New("synthetic solver failure")
		case 3:
			<-ctx.Done()
			return nil, ctx.Err()
		}
		return &JobResult{Legal: true, Placement: []byte("{}")}, nil
	}
}

// TestPrometheusScrapeMixedWorkload drives one job to each terminal state
// plus a rejected submission, then scrapes /metrics?format=prometheus and
// checks the exposition carries the latency histograms split into
// queue-wait and solve-time, outcome and rejection counters, and the live
// queue gauges — while the JSON /metrics keeps its existing shape.
func TestPrometheusScrapeMixedWorkload(t *testing.T) {
	m, ts := newTestServer(t, Config{Workers: 1, QueueCap: 4, Runner: outcomeRunner()})

	waitState(t, submitAdder(t, m, 1), StateDone)
	waitState(t, submitAdder(t, m, 2), StateFailed)
	blocked := submitAdder(t, m, 3)
	for blocked.Status().StartedAt == nil {
		time.Sleep(time.Millisecond)
	}
	if err := m.Cancel(blocked.ID()); err != nil {
		t.Fatal(err)
	}
	waitState(t, blocked, StateCanceled)
	if _, err := m.Submit(SubmitRequest{Circuit: "Adder", Method: "quantum"}); err == nil {
		t.Fatal("invalid method accepted")
	}

	resp, err := http.Get(ts.URL + "/metrics?format=prometheus")
	if err != nil {
		t.Fatal(err)
	}
	body, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "text/plain; version=0.0.4") {
		t.Errorf("Content-Type = %q", ct)
	}
	text := string(body)
	for _, want := range []string{
		`# TYPE placerd_job_queue_wait_seconds histogram`,
		`placerd_job_queue_wait_seconds_bucket{method="sa",priority="interactive",le="+Inf"} 3`,
		`# TYPE placerd_job_solve_seconds histogram`,
		`placerd_job_solve_seconds_count{method="sa",size="xs"} 3`,
		`placerd_stage_seconds_bucket{method="sa",size="xs",stage="place",le="+Inf"} 3`,
		`placerd_jobs_total{state="done"} 1`,
		`placerd_jobs_total{state="failed"} 1`,
		`placerd_jobs_total{state="canceled"} 1`,
		`placerd_jobs_rejected_total{reason="invalid"} 1`,
		`placerd_workers 1`,
		`placerd_queue_depth 0`,
		`placerd_running_jobs 0`,
		`placerd_worker_utilization 0`,
		`# TYPE placerd_uptime_seconds gauge`,
	} {
		if !strings.Contains(text, want) {
			t.Errorf("exposition missing %q\n%s", want, text)
		}
	}

	// The JSON view must keep working unchanged next to the new format.
	jresp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	jbody, _ := io.ReadAll(jresp.Body)
	jresp.Body.Close()
	if ct := jresp.Header.Get("Content-Type"); ct != "application/json" {
		t.Errorf("JSON /metrics Content-Type = %q", ct)
	}
	for _, want := range []string{`"jobs_completed": 1`, `"jobs_failed": 1`, `"jobs_canceled": 1`} {
		if !strings.Contains(string(jbody), want) {
			t.Errorf("JSON metrics missing %q:\n%s", want, jbody)
		}
	}
}

// TestQueueWaitInStatus checks the acceptance-to-start latency is exposed
// in the job status JSON once a job starts.
func TestQueueWaitInStatus(t *testing.T) {
	entered := make(chan string, 1)
	release := make(chan struct{})
	m := NewManager(Config{Workers: 1, QueueCap: 4, Runner: blockingRunner(entered, release)})
	defer drain(t, m)
	j := submitAdder(t, m, 1)
	if st := j.Status(); st.QueueWaitSec != nil {
		t.Errorf("queued job already has queue_wait_sec %v", *st.QueueWaitSec)
	}
	<-entered
	st := j.Status()
	if st.QueueWaitSec == nil || *st.QueueWaitSec < 0 {
		t.Fatalf("running job queue_wait_sec = %v, want >= 0", st.QueueWaitSec)
	}
	close(release)
	waitState(t, j, StateDone)
	if st := j.Status(); st.QueueWaitSec == nil {
		t.Error("finished job lost queue_wait_sec")
	}
}

// TestGaugeRollupEnvelope checks the finalize rollup keeps every job's
// gauge contribution (min/max/count), not just the last writer's value.
func TestGaugeRollupEnvelope(t *testing.T) {
	gaugeRunner := func(ctx context.Context, spec *JobSpec, trc *obs.Tracer) (*JobResult, error) {
		trc.Gauge("place.final_hpwl", float64(10*spec.Req.Seed))
		return &JobResult{Legal: true, Placement: []byte("{}")}, nil
	}
	m := NewManager(Config{Workers: 1, QueueCap: 8, Runner: gaugeRunner})
	defer drain(t, m)
	for _, seed := range []int64{3, 1, 2} {
		waitState(t, submitAdder(t, m, seed), StateDone)
	}
	met := m.Metrics()
	st, ok := met.SolverGaugeStats["place.final_hpwl"]
	if !ok {
		t.Fatalf("no gauge stats; metrics %+v", met)
	}
	want := GaugeAgg{Last: 20, Min: 10, Max: 30, Count: 3}
	if st != want {
		t.Errorf("gauge envelope = %+v, want %+v", st, want)
	}
	if got := met.SolverGauges["place.final_hpwl"]; got != 20 {
		t.Errorf("legacy last-value gauge = %g, want 20", got)
	}
}
