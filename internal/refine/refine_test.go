package refine_test

import (
	"bytes"
	"context"
	"testing"

	"repro/internal/anneal"
	"repro/internal/circuit"
	"repro/internal/gen"
	"repro/internal/par"
	"repro/internal/refine"
)

func testNetlist(t *testing.T, devices int) *circuit.Netlist {
	t.Helper()
	n, err := gen.Generate(gen.Params{Devices: devices, Seed: 9})
	if err != nil {
		t.Fatalf("gen: %v", err)
	}
	return n
}

func fastSA(seed int64) anneal.Options {
	return anneal.Options{Seed: seed, Moves: 6000, Restarts: 1}
}

func placementBytes(t *testing.T, n *circuit.Netlist, p *circuit.Placement) []byte {
	t.Helper()
	var buf bytes.Buffer
	if err := n.WritePlacementJSON(&buf, p); err != nil {
		t.Fatalf("encode placement: %v", err)
	}
	return buf.Bytes()
}

// The portfolio reduction is a pure function of the chain results, and the
// chains are seed-isolated, so any pool — nil (sequential), smaller than
// the chain count, larger than it — must produce identical bytes.
func TestPortfolioByteIdenticalAcrossPools(t *testing.T) {
	n := testNetlist(t, 24)
	var want []byte
	for _, workers := range []int{1, 2, 8} {
		pool := par.NewPool(workers)
		p, stats, err := refine.Portfolio(context.Background(), n, fastSA(21),
			refine.PortfolioOptions{Chains: 5, Pool: pool})
		pool.Close()
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		if stats.Proposals == 0 {
			t.Fatalf("workers=%d: no proposals recorded", workers)
		}
		got := placementBytes(t, n, p)
		if want == nil {
			want = got
		} else if !bytes.Equal(want, got) {
			t.Errorf("workers=%d: placement bytes differ from workers=1", workers)
		}
	}
}

// One chain must reproduce the plain annealer bit for bit — this is what
// keeps single-chain runs (the quick-bench default) byte-stable across the
// portfolio rewrite.
func TestPortfolioSingleChainMatchesAnnealer(t *testing.T) {
	n := testNetlist(t, 24)
	direct, _, err := anneal.PlaceCtx(context.Background(), n, fastSA(21))
	if err != nil {
		t.Fatal(err)
	}
	viaPortfolio, _, err := refine.Portfolio(context.Background(), n, fastSA(21),
		refine.PortfolioOptions{Chains: 1})
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(placementBytes(t, n, direct), placementBytes(t, n, viaPortfolio)) {
		t.Error("1-chain portfolio differs from the annealer")
	}
}

// Chain 0 runs the base seed, so the best-of reduction can never return a
// placement with higher weighted HPWL than the single-chain run.
func TestPortfolioNeverWorseThanChainZero(t *testing.T) {
	n := testNetlist(t, 24)
	single, _, err := refine.Portfolio(context.Background(), n, fastSA(21),
		refine.PortfolioOptions{Chains: 1})
	if err != nil {
		t.Fatal(err)
	}
	multi, _, err := refine.Portfolio(context.Background(), n, fastSA(21),
		refine.PortfolioOptions{Chains: 4})
	if err != nil {
		t.Fatal(err)
	}
	if n.HPWL(multi) > n.HPWL(single) {
		t.Errorf("4-chain HPWL %.6f worse than 1-chain %.6f", n.HPWL(multi), n.HPWL(single))
	}
}

func TestPortfolioCanceled(t *testing.T) {
	n := testNetlist(t, 24)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, _, err := refine.Portfolio(ctx, n, fastSA(21), refine.PortfolioOptions{Chains: 3}); err == nil {
		t.Error("canceled portfolio returned nil error")
	}
}

// Refinement is accept-if-improved under a bounding-box cap: the result
// must be legal, no worse on HPWL or area, deterministic, and must leave
// the input placement untouched.
func TestRefineMonotoneLegalDeterministic(t *testing.T) {
	n := testNetlist(t, 48)
	p, _, err := anneal.PlaceCtx(context.Background(), n, fastSA(7))
	if err != nil {
		t.Fatal(err)
	}
	if !n.CheckLegal(p, 1e-6).OK() {
		t.Fatal("SA placement not legal")
	}
	before := placementBytes(t, n, p)
	wlBefore, areaBefore := n.HPWL(p), n.Area(p)

	refined, stats, err := refine.Refine(context.Background(), n, p, refine.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(before, placementBytes(t, n, p)) {
		t.Error("Refine mutated its input placement")
	}
	if stats.Windows == 0 {
		t.Error("no windows solved")
	}
	if wl := n.HPWL(refined); wl > wlBefore {
		t.Errorf("refined HPWL %.6f > input %.6f", wl, wlBefore)
	}
	if a := n.Area(refined); a > areaBefore+1e-9 {
		t.Errorf("refined area %.6f > input %.6f", a, areaBefore)
	}
	if rep := n.CheckLegal(refined, 1e-6); !rep.OK() {
		t.Errorf("refined placement illegal: %v", rep.Err())
	}
	if stats.HPWLAfter > stats.HPWLBefore {
		t.Errorf("stats report regression: after %.6f > before %.6f", stats.HPWLAfter, stats.HPWLBefore)
	}

	again, stats2, err := refine.Refine(context.Background(), n, p, refine.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(placementBytes(t, n, refined), placementBytes(t, n, again)) {
		t.Error("two identical Refine calls produced different placements")
	}
	if *stats != *stats2 {
		t.Errorf("stats differ across identical runs: %+v vs %+v", stats, stats2)
	}
}

// A canceled refine returns promptly with ctx's error and the input
// placement bit-untouched — the cancellation contract of the satellite.
func TestRefineCanceledLeavesInputUntouched(t *testing.T) {
	n := testNetlist(t, 48)
	p, _, err := anneal.PlaceCtx(context.Background(), n, fastSA(7))
	if err != nil {
		t.Fatal(err)
	}
	before := placementBytes(t, n, p)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	refined, _, err := refine.Refine(ctx, n, p, refine.Options{})
	if err == nil {
		t.Error("canceled refine returned nil error")
	}
	if refined != nil {
		t.Error("canceled refine returned a placement")
	}
	if !bytes.Equal(before, placementBytes(t, n, p)) {
		t.Error("canceled refine mutated its input placement")
	}
}

// The window budget knob bounds work: a tiny budget must be respected
// exactly and still never worsen the placement.
func TestRefineWindowBudget(t *testing.T) {
	n := testNetlist(t, 48)
	p, _, err := anneal.PlaceCtx(context.Background(), n, fastSA(7))
	if err != nil {
		t.Fatal(err)
	}
	refined, stats, err := refine.Refine(context.Background(), n, p, refine.Options{Windows: 3})
	if err != nil {
		t.Fatal(err)
	}
	if stats.Windows > 3 {
		t.Errorf("budget 3 exceeded: %d windows", stats.Windows)
	}
	if n.HPWL(refined) > n.HPWL(p) {
		t.Error("budgeted refine worsened HPWL")
	}
}
