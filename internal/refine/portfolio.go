// Package refine provides search-level parallelism and matheuristic
// refinement on top of the base placement methods:
//
//   - Portfolio runs simulated annealing as N independent chains with
//     deterministic per-chain seeds and a deterministic best-of reduction,
//     replacing the sequential restart loop: spare cores become extra
//     restarts instead of idle time, with bit-identical results at any
//     thread count.
//   - Refine is an ILP large-neighborhood local search (the matheuristic
//     of Grus & Hanzálek): small windows of a legal placement — chosen by
//     spatial locality and closed over symmetry pairs — are re-solved
//     exactly with the Eq. (4) ILP and accepted only when they strictly
//     improve wirelength without growing the bounding box. Any method's
//     output can be refined as a post-pass.
//
// Both stages follow the repo-wide determinism contract: schedules, seeds,
// and reductions are pure functions of the problem and the options, never
// of thread count or timing.
package refine

import (
	"context"

	"repro/internal/anneal"
	"repro/internal/circuit"
	"repro/internal/obs"
	"repro/internal/par"
)

// chainSeedStride separates per-chain RNG streams. Chain 0 keeps the base
// seed, so a 1-chain portfolio reproduces the plain annealer bit for bit
// and every chain count has a deterministic seed schedule.
const chainSeedStride = 7919

// PortfolioOptions configures a portfolio SA run.
type PortfolioOptions struct {
	// Chains is the number of independent SA chains. 0 derives the count
	// from the annealer's Restarts knob (its default of 2 included), which
	// is how the sequential restart loop is replaced: same search budget,
	// run in parallel.
	Chains int
	// Pool executes chains as tasks; nil runs them sequentially. Results
	// do not depend on the pool in any way.
	Pool *par.Pool
	// Tracer receives an "sa" stage span — the same stage name the inline
	// annealer emits, so per-stage runtime attribution stays comparable
	// across chain counts — with one aggregate SA sample per chain plus
	// the sa.* counters and sa.portfolio.* gauges. With exactly one chain
	// the run is traced inline by the annealer itself (identical trace
	// shape to the pre-portfolio code).
	Tracer *obs.Tracer
}

// Portfolio runs SA as independent chains and returns the best placement
// under a deterministic reduction: lowest weighted HPWL, then smallest
// bounding-box area, then lowest chain index (with a performance model
// attached, lowest predicted failure probability leads instead). Chain c
// anneals with seed Seed + 7919·c and Restarts = 1; the reduction compares
// exact geometric metrics, not SA-internal costs, because each chain
// normalizes its cost scale independently.
//
// Cancellation is honored both inside chains (the annealer's move-loop
// poll) and between them: once ctx is canceled no new chain starts.
func Portfolio(ctx context.Context, n *circuit.Netlist, saOpt anneal.Options, popt PortfolioOptions) (*circuit.Placement, *anneal.Stats, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	chains := popt.Chains
	if chains <= 0 {
		chains = saOpt.Restarts
		if chains <= 0 {
			chains = 2 // the annealer's Restarts default
		}
	}
	if chains == 1 {
		// A single chain runs inline under the caller's tracer: identical
		// bits and identical trace shape to the pre-portfolio annealer.
		o := saOpt
		o.Restarts = 1
		if o.Tracer == nil {
			o.Tracer = popt.Tracer
		}
		return anneal.PlaceCtx(ctx, n, o)
	}

	span := popt.Tracer.StartSpan("sa")
	defer span.End()

	type chainResult struct {
		place *circuit.Placement
		stats *anneal.Stats
		err   error
	}
	results := make([]chainResult, chains)
	popt.Pool.Run(chains, func(c int) {
		if err := ctx.Err(); err != nil {
			results[c] = chainResult{err: err}
			return
		}
		o := saOpt
		o.Restarts = 1
		// Chains run concurrently, so they must not share the tracer:
		// the span stack is not safe for concurrent nesting. Aggregate
		// telemetry is emitted below from the calling goroutine.
		o.Tracer = nil
		o.TraceEvery = 0
		o.Seed = saOpt.Seed + chainSeedStride*int64(c)
		p, st, err := anneal.PlaceCtx(ctx, n, o)
		results[c] = chainResult{place: p, stats: st, err: err}
	})
	for c := range results {
		if err := results[c].err; err != nil {
			return nil, nil, err
		}
	}

	// Deterministic best-of reduction on exact metrics, in chain order.
	best := 0
	bestWL := n.HPWL(results[0].place)
	bestArea := n.Area(results[0].place)
	bestPhi := 0.0
	if saOpt.Perf != nil {
		bestPhi = saOpt.Perf.Prob(n, results[0].place)
	}
	for c := 1; c < chains; c++ {
		wl := n.HPWL(results[c].place)
		area := n.Area(results[c].place)
		better := wl < bestWL || (wl == bestWL && area < bestArea)
		if saOpt.Perf != nil {
			phi := saOpt.Perf.Prob(n, results[c].place)
			better = phi < bestPhi ||
				(phi == bestPhi && (wl < bestWL || (wl == bestWL && area < bestArea)))
			if better {
				bestPhi = phi
			}
		}
		if better {
			best, bestWL, bestArea = c, wl, area
		}
	}

	stats := &anneal.Stats{BestCost: results[best].stats.BestCost}
	for c := range results {
		stats.Proposals += results[c].stats.Proposals
		stats.Accepts += results[c].stats.Accepts
	}
	if popt.Tracer.Enabled() {
		for c := range results {
			popt.Tracer.SAEvent(obs.SARecord{
				Restart: c,
				Move:    results[c].stats.Proposals,
				Cur:     results[c].stats.BestCost,
				Best:    results[best].stats.BestCost,
			})
		}
		popt.Tracer.Count("sa.proposals", float64(stats.Proposals))
		popt.Tracer.Count("sa.accepts", float64(stats.Accepts))
		popt.Tracer.Gauge("sa.best_cost", stats.BestCost)
		popt.Tracer.Gauge("sa.portfolio.chains", float64(chains))
		popt.Tracer.Gauge("sa.portfolio.winner", float64(best))
	}
	return results[best].place, stats, nil
}
