package refine

import (
	"context"
	"sort"
	"time"

	"repro/internal/circuit"
	"repro/internal/detailed"
	"repro/internal/obs"
	"repro/internal/obs/metrics"
)

// Options configures the ILP large-neighborhood refinement pass.
type Options struct {
	// Windows is the total window-solve budget across all passes. 0 means
	// auto: roughly two full sweeps of the placement. The budget is an
	// iteration count, never wall-clock, so refinement cost — and result —
	// is deterministic.
	Windows int
	// WindowSize is the number of devices per window before symmetry
	// closure (default 8). Windows are consecutive runs of a row-major
	// sweep of the current placement, expanded with symmetry-pair
	// partners, so symmetric structures are re-solved together.
	WindowSize int
	// MaxNodes caps branch-and-bound nodes per axis per window
	// (default 64).
	MaxNodes int

	// Focus, when non-nil, restricts the sweep to windows containing at
	// least one marked device (indexed by device). The warm-start (ECO)
	// flow passes the perturbed-region mask here so the window budget is
	// spent where the edit landed instead of across the whole placement.
	// The auto window budget also scales down to the focused region.
	Focus []bool

	// Tracer wraps the pass in a "refine" span (per-window ilp events,
	// refine.* counters). Metrics, when non-nil, records each window
	// solve in placer_kernel_seconds{...,kernel="refine_window"} under
	// MetricsLabels.
	Tracer        *obs.Tracer
	Metrics       *metrics.Registry
	MetricsLabels []string
}

// Stats summarizes one refinement pass.
type Stats struct {
	Windows int // window solves executed
	Accepts int // windows whose exact re-solve improved the placement
	Nodes   int // branch-and-bound LP nodes across all windows
	// HPWLBefore/HPWLAfter are the weighted wirelength entering and
	// leaving the stage; After ≤ Before always (accept-if-improved).
	HPWLBefore float64
	HPWLAfter  float64
}

// Refine improves a legal placement by exact ILP re-solves of small device
// windows: each window is re-optimized with everything else held fixed and
// committed only if it strictly reduces weighted HPWL without growing the
// bounding box, so the result is never worse than the input on either
// metric. The input placement is never mutated — on success, cancellation,
// or error, p is untouched and the returned placement is a fresh value.
//
// Passes sweep the placement row-major in windows of WindowSize devices,
// staggered by half a window on alternate passes so device groups split by
// one pass's window boundaries are re-solved together by the next.
// Refinement stops when the window budget is exhausted, a full pass
// accepts nothing, or ctx is canceled (checked between windows; a
// canceled refine returns promptly with ctx's error).
func Refine(ctx context.Context, n *circuit.Netlist, p *circuit.Placement, opt Options) (*circuit.Placement, *Stats, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	size := opt.WindowSize
	if size <= 0 {
		size = 8
	}
	budget := opt.Windows
	if budget <= 0 {
		scope := len(n.Devices)
		if opt.Focus != nil {
			scope = 0
			for _, f := range opt.Focus {
				if f {
					scope++
				}
			}
		}
		budget = 2 * (scope/size + 2)
	}

	span := opt.Tracer.StartSpan("refine")
	defer span.End()
	hist := metrics.KernelHistogram(opt.Metrics, opt.MetricsLabels, "refine_window")

	work := p.Clone()
	n.Normalize(work)
	stats := &Stats{HPWLBefore: n.HPWL(work)}
	ws := detailed.NewWindowSolver(n, detailed.WindowOptions{
		MaxNodes: opt.MaxNodes,
		Tracer:   opt.Tracer,
	})

	// Bound passes defensively; in practice the no-accept exit fires much
	// earlier because accepted improvements dry up after a few sweeps.
	const maxPasses = 8
	for pass := 0; pass < maxPasses && stats.Windows < budget; pass++ {
		if err := ctx.Err(); err != nil {
			return nil, nil, err
		}
		// Window moves stay within the separation topology of the pass
		// start; re-derive it each pass so devices can migrate further.
		ws.Rederive(work)
		accepts := 0
		for _, win := range schedule(n, work, size, pass, opt.Focus) {
			if stats.Windows >= budget {
				break
			}
			if err := ctx.Err(); err != nil {
				return nil, nil, err
			}
			t0 := time.Now()
			ok, nodes, err := ws.Improve(ctx, work, win)
			hist.Observe(time.Since(t0).Seconds())
			stats.Windows++
			stats.Nodes += nodes
			if err != nil {
				return nil, nil, err
			}
			if ok {
				accepts++
				stats.Accepts++
			}
		}
		if accepts == 0 {
			break
		}
	}
	n.Normalize(work)
	stats.HPWLAfter = n.HPWL(work)
	if opt.Tracer.Enabled() {
		opt.Tracer.Count("refine.windows", float64(stats.Windows))
		opt.Tracer.Count("refine.accepts", float64(stats.Accepts))
		opt.Tracer.Count("refine.ilp_nodes", float64(stats.Nodes))
		opt.Tracer.Gauge("refine.hpwl", stats.HPWLAfter)
	}
	return work, stats, nil
}

// schedule returns the deterministic window list for one pass: device
// indices sorted by (y, x, index) — a row-major sweep of the current
// placement — cut into WindowSize chunks (odd passes staggered by half a
// window), each chunk closed over symmetry-pair partners so mirrored
// devices move together with their axis.
// A non-nil focus mask drops windows whose devices are all unmarked.
func schedule(n *circuit.Netlist, p *circuit.Placement, size, pass int, focus []bool) [][]int {
	nd := len(n.Devices)
	order := make([]int, nd)
	for i := range order {
		order[i] = i
	}
	sort.Slice(order, func(a, b int) bool {
		ia, ib := order[a], order[b]
		if p.Y[ia] != p.Y[ib] {
			return p.Y[ia] < p.Y[ib]
		}
		if p.X[ia] != p.X[ib] {
			return p.X[ia] < p.X[ib]
		}
		return ia < ib
	})
	partner := make(map[int]int)
	for gi := range n.SymGroups {
		for _, pr := range n.SymGroups[gi].Pairs {
			partner[pr[0]] = pr[1]
			partner[pr[1]] = pr[0]
		}
	}
	start := 0
	if pass%2 == 1 {
		start = -size / 2 // leading half-window staggers the cut points
	}
	var wins [][]int
	for lo := start; lo < nd; lo += size {
		a, b := lo, lo+size
		if a < 0 {
			a = 0
		}
		if b > nd {
			b = nd
		}
		if b <= a {
			continue
		}
		chunk := order[a:b]
		seen := make(map[int]bool, 2*len(chunk))
		win := make([]int, 0, 2*len(chunk))
		for _, i := range chunk {
			if !seen[i] {
				seen[i] = true
				win = append(win, i)
			}
		}
		for _, i := range chunk {
			if q, ok := partner[i]; ok && !seen[q] {
				seen[q] = true
				win = append(win, q)
			}
		}
		if focus != nil {
			hit := false
			for _, i := range win {
				if focus[i] {
					hit = true
					break
				}
			}
			if !hit {
				continue
			}
		}
		sort.Ints(win)
		wins = append(wins, win)
	}
	return wins
}
