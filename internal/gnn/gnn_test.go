package gnn

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/circuit"
	"repro/internal/geom"
)

func testNetlist() *circuit.Netlist {
	mk := func(name string, ty circuit.DeviceType, w, h float64) circuit.Device {
		return circuit.Device{Name: name, Type: ty, W: w, H: h,
			Pins: []circuit.Pin{{Offset: geom.Point{X: w / 2, Y: h / 2}}}}
	}
	return &circuit.Netlist{
		Name: "gnn-test",
		Devices: []circuit.Device{
			mk("a", circuit.NMOS, 4, 4), mk("b", circuit.NMOS, 4, 4),
			mk("c", circuit.PMOS, 5, 3), mk("d", circuit.Cap, 6, 6),
			mk("e", circuit.Res, 2, 7), mk("f", circuit.PMOS, 5, 3),
		},
		Nets: []circuit.Net{
			{Pins: []circuit.PinRef{{Device: 0, Pin: 0}, {Device: 1, Pin: 0}, {Device: 2, Pin: 0}}},
			{Pins: []circuit.PinRef{{Device: 2, Pin: 0}, {Device: 3, Pin: 0}}},
			{Pins: []circuit.PinRef{{Device: 3, Pin: 0}, {Device: 4, Pin: 0}, {Device: 5, Pin: 0}}},
			{Pins: []circuit.PinRef{{Device: 0, Pin: 0}, {Device: 5, Pin: 0}}},
		},
	}
}

func randomPlacement(n *circuit.Netlist, rng *rand.Rand, spread float64) *circuit.Placement {
	p := circuit.NewPlacement(n)
	for i := range p.X {
		p.X[i] = rng.Float64() * spread
		p.Y[i] = rng.Float64() * spread
	}
	return p
}

func TestProbInRange(t *testing.T) {
	n := testNetlist()
	m := New(n, 0, 1)
	rng := rand.New(rand.NewSource(2))
	for trial := 0; trial < 20; trial++ {
		p := randomPlacement(n, rng, 30)
		out := m.Prob(n, p)
		if out <= 0 || out >= 1 || math.IsNaN(out) {
			t.Fatalf("Prob = %g not in (0,1)", out)
		}
	}
}

func TestProbTranslationInvariant(t *testing.T) {
	n := testNetlist()
	m := New(n, 0, 1)
	rng := rand.New(rand.NewSource(3))
	p := randomPlacement(n, rng, 30)
	base := m.Prob(n, p)
	for i := range p.X {
		p.X[i] += 123.4
		p.Y[i] -= 55.5
	}
	shifted := m.Prob(n, p)
	if math.Abs(base-shifted) > 1e-9 {
		t.Errorf("Prob not translation invariant: %g vs %g", base, shifted)
	}
}

func TestProbDeterministic(t *testing.T) {
	n := testNetlist()
	m1 := New(n, 0, 7)
	m2 := New(n, 0, 7)
	p := randomPlacement(n, rand.New(rand.NewSource(4)), 25)
	if m1.Prob(n, p) != m2.Prob(n, p) {
		t.Error("same seed models disagree")
	}
}

func TestProbGradFiniteDifference(t *testing.T) {
	n := testNetlist()
	m := New(n, 0, 5)
	rng := rand.New(rand.NewSource(6))
	p := randomPlacement(n, rng, 40)
	nd := len(n.Devices)
	gx := make([]float64, nd)
	gy := make([]float64, nd)
	m.ProbGrad(p, gx, gy)
	const h = 1e-5
	for i := 0; i < nd; i++ {
		p.X[i] += h
		fp := m.Prob(n, p)
		p.X[i] -= 2 * h
		fm := m.Prob(n, p)
		p.X[i] += h
		fd := (fp - fm) / (2 * h)
		if math.Abs(fd-gx[i]) > 1e-5+1e-3*math.Abs(fd) {
			t.Errorf("dΦ/dx[%d]: analytic %g vs FD %g", i, gx[i], fd)
		}
		p.Y[i] += h
		fp = m.Prob(n, p)
		p.Y[i] -= 2 * h
		fm = m.Prob(n, p)
		p.Y[i] += h
		fd = (fp - fm) / (2 * h)
		if math.Abs(fd-gy[i]) > 1e-5+1e-3*math.Abs(fd) {
			t.Errorf("dΦ/dy[%d]: analytic %g vs FD %g", i, gy[i], fd)
		}
	}
}

func TestParamGradFiniteDifference(t *testing.T) {
	n := testNetlist()
	m := New(n, 0, 8)
	p := randomPlacement(n, rand.New(rand.NewSource(9)), 30)

	pg := newGrads()
	m.forward(p, &m.scratch)
	m.backward(&m.scratch, 1, pg, nil, nil)
	flatG := pg.flatten(nil)

	flat := m.flatten(nil)
	const h = 1e-6
	rng := rand.New(rand.NewSource(10))
	for trial := 0; trial < 40; trial++ {
		j := rng.Intn(len(flat))
		orig := flat[j]
		flat[j] = orig + h
		m.unflatten(flat)
		fp := m.Prob(n, p)
		flat[j] = orig - h
		m.unflatten(flat)
		fm := m.Prob(n, p)
		flat[j] = orig
		m.unflatten(flat)
		fd := (fp - fm) / (2 * h)
		if math.Abs(fd-flatG[j]) > 1e-6+1e-3*math.Abs(fd) {
			t.Errorf("param %d: analytic %g vs FD %g", j, flatG[j], fd)
		}
	}
}

// TestTrainingLearnsSpreadPattern: label placements "bad" when their bbox
// is wide; a trained model should predict that pattern on held-out data.
func TestTrainingLearnsSpreadPattern(t *testing.T) {
	n := testNetlist()
	m := New(n, 40, 11)
	rng := rand.New(rand.NewSource(12))
	var samples []Sample
	for k := 0; k < 240; k++ {
		spread := 10 + rng.Float64()*50
		p := randomPlacement(n, rng, spread)
		bad := n.BoundingBox(p).W() > 30
		samples = append(samples, Sample{
			X:   append([]float64(nil), p.X...),
			Y:   append([]float64(nil), p.Y...),
			Bad: bad,
		})
	}
	stats, err := m.Train(samples, TrainOptions{Seed: 13, Epochs: 80})
	if err != nil {
		t.Fatal(err)
	}
	if stats.ValAccuracy < 0.8 {
		t.Errorf("validation accuracy %.2f < 0.8 (loss %.3f)", stats.ValAccuracy, stats.FinalLoss)
	}
	if stats.FinalLoss > 0.5 {
		t.Errorf("final training loss %.3f too high", stats.FinalLoss)
	}
}

func TestTrainRejectsTinyDataset(t *testing.T) {
	n := testNetlist()
	m := New(n, 0, 1)
	if _, err := m.Train([]Sample{{}, {}}, TrainOptions{}); err == nil {
		t.Error("expected error for tiny dataset")
	}
}

func TestProbPanicsOnForeignNetlist(t *testing.T) {
	n := testNetlist()
	m := New(n, 0, 1)
	other := testNetlist()
	defer func() {
		if recover() == nil {
			t.Error("Prob accepted a foreign netlist")
		}
	}()
	m.Prob(other, circuit.NewPlacement(other))
}

func TestFlattenUnflattenRoundtrip(t *testing.T) {
	n := testNetlist()
	m := New(n, 0, 14)
	flat := m.flatten(nil)
	flat2 := append([]float64(nil), flat...)
	for i := range flat2 {
		flat2[i] += 1.5
	}
	m.unflatten(flat2)
	got := m.flatten(nil)
	for i := range got {
		if got[i] != flat2[i] {
			t.Fatalf("roundtrip mismatch at %d", i)
		}
	}
}

func BenchmarkProb(b *testing.B) {
	n := testNetlist()
	m := New(n, 0, 1)
	p := randomPlacement(n, rand.New(rand.NewSource(1)), 30)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m.Prob(n, p)
	}
}

func BenchmarkProbGrad(b *testing.B) {
	n := testNetlist()
	m := New(n, 0, 1)
	p := randomPlacement(n, rand.New(rand.NewSource(1)), 30)
	gx := make([]float64, len(n.Devices))
	gy := make([]float64, len(n.Devices))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m.ProbGrad(p, gx, gy)
	}
}
