package gnn

import (
	"fmt"
	"math"
	"math/rand"

	"repro/internal/nlopt"
	"repro/internal/obs"
)

// Sample is one training example: a placement (as raw coordinate slices so
// datasets stay compact) and its label — true when circuit performance is
// unsatisfactory (FOM below threshold), matching [19]'s labeling.
type Sample struct {
	X, Y []float64
	Bad  bool
}

// TrainOptions configures training.
type TrainOptions struct {
	Epochs    int     // default 60
	BatchSize int     // default 16
	LR        float64 // default 3e-3
	Seed      int64
	ValFrac   float64 // fraction held out for validation accuracy (default 0.2)

	// Tracer, when non-nil, emits one "adam" iteration event per epoch
	// (mean training loss) and a gnn.val_accuracy gauge at the end.
	Tracer *obs.Tracer
}

func (o *TrainOptions) defaults() {
	if o.Epochs == 0 {
		o.Epochs = 60
	}
	if o.BatchSize == 0 {
		o.BatchSize = 16
	}
	if o.LR == 0 {
		o.LR = 3e-3
	}
	if o.ValFrac == 0 {
		o.ValFrac = 0.2
	}
}

// TrainStats reports the training outcome.
type TrainStats struct {
	FinalLoss   float64 // mean training cross-entropy of the last epoch
	ValAccuracy float64 // held-out accuracy at threshold 0.5
	Epochs      int
}

// Train fits the model with Adam on binary cross-entropy, the loss the
// paper uses for its GNN. The sample slice is not modified.
func (m *Model) Train(samples []Sample, opt TrainOptions) (*TrainStats, error) {
	if len(samples) < 4 {
		return nil, fmt.Errorf("gnn: need at least 4 samples, have %d", len(samples))
	}
	opt.defaults()
	rng := rand.New(rand.NewSource(opt.Seed))

	idx := rng.Perm(len(samples))
	nVal := int(float64(len(samples)) * opt.ValFrac)
	if nVal < 1 {
		nVal = 1
	}
	val, train := idx[:nVal], idx[nVal:]
	if len(train) == 0 {
		return nil, fmt.Errorf("gnn: no training samples after validation split")
	}

	flat := m.flatten(nil)
	gradFlat := make([]float64, len(flat))
	adam := nlopt.NewAdam(opt.LR)
	pg := newGrads()

	p := m.scratchPlacement()
	var lastLoss float64
	for epoch := 0; epoch < opt.Epochs; epoch++ {
		shuffled := append([]int(nil), train...)
		rng.Shuffle(len(shuffled), func(i, j int) { shuffled[i], shuffled[j] = shuffled[j], shuffled[i] })
		var epochLoss float64
		for start := 0; start < len(shuffled); start += opt.BatchSize {
			end := start + opt.BatchSize
			if end > len(shuffled) {
				end = len(shuffled)
			}
			batch := shuffled[start:end]
			pg.zero()
			var loss float64
			for _, si := range batch {
				s := &samples[si]
				copy(p.X, s.X)
				copy(p.Y, s.Y)
				out := m.forward(p, &m.scratch)
				y := 0.0
				if s.Bad {
					y = 1
				}
				loss += bce(out, y)
				// dL/dout for BCE: (out − y) / (out·(1−out)); composed with
				// the sigmoid derivative inside backward this telescopes to
				// the numerically stable (out − y) on dL/ds. Pass it through
				// dOut with the sigmoid factor pre-divided.
				dOut := (out - y) / math.Max(out*(1-out), 1e-9)
				m.backward(&m.scratch, dOut/float64(len(batch)), pg, nil, nil)
			}
			epochLoss += loss
			pg.flatten(gradFlat)
			adam.Step(flat, gradFlat)
			m.unflatten(flat)
		}
		lastLoss = epochLoss / float64(len(train))
		if opt.Tracer != nil {
			opt.Tracer.IterEvent(obs.IterRecord{Solver: "adam", Iter: epoch, F: lastLoss})
		}
	}

	correct := 0
	for _, si := range val {
		s := &samples[si]
		copy(p.X, s.X)
		copy(p.Y, s.Y)
		out := m.forward(p, &m.scratch)
		if (out > 0.5) == s.Bad {
			correct++
		}
	}
	stats := &TrainStats{
		FinalLoss:   lastLoss,
		ValAccuracy: float64(correct) / float64(len(val)),
		Epochs:      opt.Epochs,
	}
	if opt.Tracer.Enabled() {
		opt.Tracer.Count("gnn.epochs", float64(opt.Epochs))
		opt.Tracer.Gauge("gnn.final_loss", stats.FinalLoss)
		opt.Tracer.Gauge("gnn.val_accuracy", stats.ValAccuracy)
	}
	return stats, nil
}

// bce is binary cross-entropy with clamping for numerical safety.
func bce(p, y float64) float64 {
	p = math.Min(math.Max(p, 1e-9), 1-1e-9)
	return -(y*math.Log(p) + (1-y)*math.Log(1-p))
}
