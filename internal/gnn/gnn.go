// Package gnn implements the graph-neural-network performance model of
// [19] used by the performance-driven placers: a two-layer message-passing
// network over the device graph (nodes are devices, edges connect devices
// sharing a net), with mean+max global pooling and an MLP head ending in a
// sigmoid. Its output Φ is the probability that circuit performance is
// unsatisfactory (FOM below threshold).
//
// Both inference and a full hand-written backward pass are provided: the
// backward pass yields parameter gradients for training (Adam + binary
// cross-entropy) and coordinate gradients ∂Φ/∂(x_i, y_i), the quantity
// ePlace-AP injects into its global-placement objective — the role
// TensorFlow's autograd plays in the paper.
package gnn

import (
	"fmt"
	"math"
	"math/rand"

	"repro/internal/circuit"
)

// Architecture constants: node features are [x̃, ỹ, netlen, mismatch, w̃,
// h̃, degree, one-hot device type], where netlen is the normalized total
// HPWL of the device's incident nets and mismatch is the device's share of
// matched-net length asymmetry — the two parasitic proxies the paper's
// performance model [19] keys on, both differentiable back to coordinates.
const (
	hidden  = 16
	headDim = 16
)

var featDim = 7 + circuit.NumDeviceTypes

// Model is a GNN bound to one netlist (fixed graph topology).
type Model struct {
	n       *circuit.Netlist
	scale   float64  // coordinate normalization
	matched [][2]int // matched net pairs for the mismatch feature

	adj  [][]int     // neighbor lists (net cliques, deduplicated)
	invD []float64   // 1/len(adj[i]) (0 for isolated nodes)
	feat [][]float64 // static feature part per node (w̃, h̃, degree, type)
	params

	// Scratch buffers reused across Forward/Backward calls.
	scratch fwdState
}

// params holds all trainable weights as flat slices (row-major matrices).
type params struct {
	w1, u1 []float64 // hidden × featDim
	b1     []float64 // hidden
	w2, u2 []float64 // hidden × hidden
	b2     []float64 // hidden
	w3     []float64 // headDim × 2·hidden
	b3     []float64 // headDim
	w4     []float64 // headDim
	b4     []float64 // 1
}

func (p *params) vecs() [][]float64 {
	return [][]float64{p.w1, p.u1, p.b1, p.w2, p.u2, p.b2, p.w3, p.b3, p.w4, p.b4}
}

// numParams returns the total parameter count.
func (p *params) numParams() int {
	total := 0
	for _, v := range p.vecs() {
		total += len(v)
	}
	return total
}

// flatten copies all parameters into out (allocating if nil) and returns it.
func (p *params) flatten(out []float64) []float64 {
	if out == nil {
		out = make([]float64, p.numParams())
	}
	i := 0
	for _, v := range p.vecs() {
		copy(out[i:], v)
		i += len(v)
	}
	return out
}

// unflatten copies the flat vector back into the parameter slices.
func (p *params) unflatten(flat []float64) {
	i := 0
	for _, v := range p.vecs() {
		copy(v, flat[i:i+len(v)])
		i += len(v)
	}
}

// netExtreme records which pin ref holds a net's bounding coordinate.
type netExtreme struct {
	minX, maxX int // device indices owning the extreme pins
	minY, maxY int
}

// fwdState stores activations needed by the backward pass.
type fwdState struct {
	x        [][]float64 // node features
	extremes []netExtreme
	netLen   []float64   // exact HPWL per net at the last forward
	mx       [][]float64 // neighbor means of x
	pre1     [][]float64
	h1       [][]float64
	mh1      [][]float64
	pre2     [][]float64
	h2       [][]float64
	argmax   []int // per hidden dim, node index of the max
	g        []float64
	pre3     []float64
	z        []float64
	s        float64
	out      float64
}

// New builds a model for netlist n with Xavier-style random initialization
// from the given seed. scale normalizes coordinates (use the placement
// region side or sqrt of total device area).
func New(n *circuit.Netlist, scale float64, seed int64) *Model {
	if scale <= 0 {
		scale = math.Sqrt(n.TotalDeviceArea()) * 2
	}
	m := &Model{n: n, scale: scale}
	m.buildGraph()
	m.initParams(seed)
	return m
}

// Netlist returns the netlist the model is bound to.
func (m *Model) Netlist() *circuit.Netlist { return m.n }

// SetMatchedNets declares net pairs whose parasitics should match (e.g.
// differential nets). Their length asymmetry becomes a node feature for
// every device touching either net. Call before training or inference.
func (m *Model) SetMatchedNets(pairs [][2]int) {
	m.matched = append([][2]int(nil), pairs...)
}

func (m *Model) buildGraph() {
	nd := len(m.n.Devices)
	sets := make([]map[int]bool, nd)
	for i := range sets {
		sets[i] = map[int]bool{}
	}
	for e := range m.n.Nets {
		pins := m.n.Nets[e].Pins
		for i := 0; i < len(pins); i++ {
			for j := i + 1; j < len(pins); j++ {
				a, b := pins[i].Device, pins[j].Device
				if a == b {
					continue
				}
				sets[a][b] = true
				sets[b][a] = true
			}
		}
	}
	m.adj = make([][]int, nd)
	m.invD = make([]float64, nd)
	deg := m.n.DeviceDegree()
	m.feat = make([][]float64, nd)
	maxDim := 1.0
	for i := range m.n.Devices {
		d := &m.n.Devices[i]
		maxDim = math.Max(maxDim, math.Max(d.W, d.H))
	}
	for i := range sets {
		for j := range sets[i] {
			m.adj[i] = append(m.adj[i], j)
		}
		// Deterministic order.
		sortInts(m.adj[i])
		if len(m.adj[i]) > 0 {
			m.invD[i] = 1 / float64(len(m.adj[i]))
		}
		d := &m.n.Devices[i]
		f := make([]float64, featDim-3)
		f[0] = d.W / maxDim
		f[1] = d.H / maxDim
		f[2] = float64(deg[i]) / 8
		f[3+int(d.Type)] = 1
		m.feat[i] = f
	}
}

func sortInts(v []int) {
	for i := 1; i < len(v); i++ {
		for j := i; j > 0 && v[j] < v[j-1]; j-- {
			v[j], v[j-1] = v[j-1], v[j]
		}
	}
}

func (m *Model) initParams(seed int64) {
	rng := rand.New(rand.NewSource(seed))
	mk := func(rows, cols int) []float64 {
		v := make([]float64, rows*cols)
		std := math.Sqrt(2 / float64(cols))
		for i := range v {
			v[i] = rng.NormFloat64() * std
		}
		return v
	}
	m.w1 = mk(hidden, featDim)
	m.u1 = mk(hidden, featDim)
	m.b1 = make([]float64, hidden)
	m.w2 = mk(hidden, hidden)
	m.u2 = mk(hidden, hidden)
	m.b2 = make([]float64, hidden)
	m.w3 = mk(headDim, 2*hidden)
	m.b3 = make([]float64, headDim)
	m.w4 = mk(1, headDim)
	m.b4 = make([]float64, 1)
}

// features fills st.x with per-node features for placement p: centered,
// scale-normalized coordinates plus the static part.
func (m *Model) features(p *circuit.Placement, st *fwdState) {
	nd := len(m.n.Devices)
	var cx, cy float64
	for i := 0; i < nd; i++ {
		cx += p.X[i]
		cy += p.Y[i]
	}
	cx /= float64(nd)
	cy /= float64(nd)
	ensureMat(&st.x, nd, featDim)
	for i := 0; i < nd; i++ {
		st.x[i][0] = (p.X[i] - cx) / m.scale
		st.x[i][1] = (p.Y[i] - cy) / m.scale
		st.x[i][2] = 0 // netlen, accumulated below
		st.x[i][3] = 0 // mismatch, accumulated below
		copy(st.x[i][4:], m.feat[i])
	}
	// Incident-net length feature with the bounding pins recorded for the
	// backward pass.
	if len(st.extremes) != len(m.n.Nets) {
		st.extremes = make([]netExtreme, len(m.n.Nets))
	}
	for e := range m.n.Nets {
		net := &m.n.Nets[e]
		if len(net.Pins) == 0 {
			continue
		}
		pt := m.n.PinPos(p, net.Pins[0])
		ex := netExtreme{
			minX: net.Pins[0].Device, maxX: net.Pins[0].Device,
			minY: net.Pins[0].Device, maxY: net.Pins[0].Device,
		}
		minX, maxX, minY, maxY := pt.X, pt.X, pt.Y, pt.Y
		for _, pr := range net.Pins[1:] {
			pt = m.n.PinPos(p, pr)
			if pt.X < minX {
				minX, ex.minX = pt.X, pr.Device
			}
			if pt.X > maxX {
				maxX, ex.maxX = pt.X, pr.Device
			}
			if pt.Y < minY {
				minY, ex.minY = pt.Y, pr.Device
			}
			if pt.Y > maxY {
				maxY, ex.maxY = pt.Y, pr.Device
			}
		}
		st.extremes[e] = ex
		if len(st.netLen) != len(m.n.Nets) {
			st.netLen = make([]float64, len(m.n.Nets))
		}
		st.netLen[e] = (maxX - minX) + (maxY - minY)
		// Unweighted: placement-objective net weights must not hide a
		// net's physical length from the model — which nets matter for
		// performance is exactly what training determines.
		length := st.netLen[e] / m.scale
		touched := map[int]bool{}
		for _, pr := range net.Pins {
			if !touched[pr.Device] {
				touched[pr.Device] = true
				st.x[pr.Device][2] += length
			}
		}
	}
	for _, pr := range m.matched {
		mm := math.Abs(st.netLen[pr[0]]-st.netLen[pr[1]]) / m.scale
		touched := map[int]bool{}
		for _, e := range pr[:] {
			for _, pin := range m.n.Nets[e].Pins {
				if !touched[pin.Device] {
					touched[pin.Device] = true
					st.x[pin.Device][3] += mm
				}
			}
		}
	}
}

func ensureMat(mat *[][]float64, rows, cols int) {
	if len(*mat) != rows {
		*mat = make([][]float64, rows)
		for i := range *mat {
			(*mat)[i] = make([]float64, cols)
		}
		return
	}
	for i := range *mat {
		if len((*mat)[i]) != cols {
			(*mat)[i] = make([]float64, cols)
		}
	}
}

// neighborMean fills dst[i] = mean over adj[i] of src rows (zero when no
// neighbors).
func (m *Model) neighborMean(src [][]float64, dst *[][]float64, cols int) {
	nd := len(m.adj)
	ensureMat(dst, nd, cols)
	for i := 0; i < nd; i++ {
		row := (*dst)[i]
		for c := 0; c < cols; c++ {
			row[c] = 0
		}
		for _, j := range m.adj[i] {
			for c := 0; c < cols; c++ {
				row[c] += src[j][c]
			}
		}
		for c := 0; c < cols; c++ {
			row[c] *= m.invD[i]
		}
	}
}

// forward runs the network, storing activations in st.
func (m *Model) forward(p *circuit.Placement, st *fwdState) float64 {
	nd := len(m.n.Devices)
	m.features(p, st)
	m.neighborMean(st.x, &st.mx, featDim)

	ensureMat(&st.pre1, nd, hidden)
	ensureMat(&st.h1, nd, hidden)
	for i := 0; i < nd; i++ {
		for h := 0; h < hidden; h++ {
			s := m.b1[h]
			wRow := m.w1[h*featDim : (h+1)*featDim]
			uRow := m.u1[h*featDim : (h+1)*featDim]
			for c := 0; c < featDim; c++ {
				s += wRow[c]*st.x[i][c] + uRow[c]*st.mx[i][c]
			}
			st.pre1[i][h] = s
			st.h1[i][h] = relu(s)
		}
	}
	m.neighborMean(st.h1, &st.mh1, hidden)

	ensureMat(&st.pre2, nd, hidden)
	ensureMat(&st.h2, nd, hidden)
	for i := 0; i < nd; i++ {
		for h := 0; h < hidden; h++ {
			s := m.b2[h]
			wRow := m.w2[h*hidden : (h+1)*hidden]
			uRow := m.u2[h*hidden : (h+1)*hidden]
			for c := 0; c < hidden; c++ {
				s += wRow[c]*st.h1[i][c] + uRow[c]*st.mh1[i][c]
			}
			st.pre2[i][h] = s
			st.h2[i][h] = relu(s)
		}
	}

	// Readout: mean ‖ max.
	if len(st.g) != 2*hidden {
		st.g = make([]float64, 2*hidden)
		st.argmax = make([]int, hidden)
	}
	for h := 0; h < hidden; h++ {
		var mean float64
		best, bestI := math.Inf(-1), 0
		for i := 0; i < nd; i++ {
			v := st.h2[i][h]
			mean += v
			if v > best {
				best, bestI = v, i
			}
		}
		st.g[h] = mean / float64(nd)
		st.g[hidden+h] = best
		st.argmax[h] = bestI
	}

	if len(st.z) != headDim {
		st.z = make([]float64, headDim)
		st.pre3 = make([]float64, headDim)
	}
	for h := 0; h < headDim; h++ {
		s := m.b3[h]
		row := m.w3[h*2*hidden : (h+1)*2*hidden]
		for c := 0; c < 2*hidden; c++ {
			s += row[c] * st.g[c]
		}
		st.pre3[h] = s
		st.z[h] = relu(s)
	}
	s := m.b4[0]
	for h := 0; h < headDim; h++ {
		s += m.w4[h] * st.z[h]
	}
	st.s = s
	st.out = sigmoid(s)
	return st.out
}

func relu(x float64) float64 {
	if x > 0 {
		return x
	}
	return 0
}

func sigmoid(x float64) float64 { return 1 / (1 + math.Exp(-x)) }

// grads mirrors params for accumulation.
type grads struct{ params }

func newGrads() *grads {
	g := &grads{}
	g.w1 = make([]float64, hidden*featDim)
	g.u1 = make([]float64, hidden*featDim)
	g.b1 = make([]float64, hidden)
	g.w2 = make([]float64, hidden*hidden)
	g.u2 = make([]float64, hidden*hidden)
	g.b2 = make([]float64, hidden)
	g.w3 = make([]float64, headDim*2*hidden)
	g.b3 = make([]float64, headDim)
	g.w4 = make([]float64, headDim)
	g.b4 = make([]float64, 1)
	return g
}

func (g *grads) zero() {
	for _, v := range g.vecs() {
		for i := range v {
			v[i] = 0
		}
	}
}

// backward propagates dL/dout through the stored forward state. When pg is
// non-nil, parameter gradients accumulate into it. When gx/gy are non-nil,
// coordinate gradients dL/d(x_i, y_i) accumulate into them.
func (m *Model) backward(st *fwdState, dOut float64, pg *grads, gx, gy []float64) {
	nd := len(m.n.Devices)
	ds := dOut * st.out * (1 - st.out)

	dz := make([]float64, headDim)
	for h := 0; h < headDim; h++ {
		if st.pre3[h] > 0 {
			dz[h] = ds * m.w4[h]
		}
		if pg != nil {
			pg.w4[h] += ds * st.z[h]
		}
	}
	if pg != nil {
		pg.b4[0] += ds
	}
	dg := make([]float64, 2*hidden)
	for h := 0; h < headDim; h++ {
		if dz[h] == 0 {
			continue
		}
		row := m.w3[h*2*hidden : (h+1)*2*hidden]
		for c := 0; c < 2*hidden; c++ {
			dg[c] += dz[h] * row[c]
			if pg != nil {
				pg.w3[h*2*hidden+c] += dz[h] * st.g[c]
			}
		}
		if pg != nil {
			pg.b3[h] += dz[h]
		}
	}

	// Through readout to dH2.
	dh2 := make([][]float64, nd)
	for i := range dh2 {
		dh2[i] = make([]float64, hidden)
	}
	for h := 0; h < hidden; h++ {
		mShare := dg[h] / float64(nd)
		for i := 0; i < nd; i++ {
			dh2[i][h] += mShare
		}
		dh2[st.argmax[h]][h] += dg[hidden+h]
	}

	// Layer 2 backward.
	dh1 := make([][]float64, nd)
	dmh1 := make([][]float64, nd)
	for i := range dh1 {
		dh1[i] = make([]float64, hidden)
		dmh1[i] = make([]float64, hidden)
	}
	for i := 0; i < nd; i++ {
		for h := 0; h < hidden; h++ {
			if st.pre2[i][h] <= 0 || dh2[i][h] == 0 {
				continue
			}
			d := dh2[i][h]
			wRow := m.w2[h*hidden : (h+1)*hidden]
			uRow := m.u2[h*hidden : (h+1)*hidden]
			for c := 0; c < hidden; c++ {
				dh1[i][c] += d * wRow[c]
				dmh1[i][c] += d * uRow[c]
				if pg != nil {
					pg.w2[h*hidden+c] += d * st.h1[i][c]
					pg.u2[h*hidden+c] += d * st.mh1[i][c]
				}
			}
			if pg != nil {
				pg.b2[h] += d
			}
		}
	}
	// dH1 += Aᵀ·dMH1 (mean aggregation transpose).
	for i := 0; i < nd; i++ {
		for _, j := range m.adj[i] {
			for c := 0; c < hidden; c++ {
				dh1[j][c] += dmh1[i][c] * m.invD[i]
			}
		}
	}

	// Layer 1 backward.
	dx := make([][]float64, nd)
	dmx := make([][]float64, nd)
	for i := range dx {
		dx[i] = make([]float64, featDim)
		dmx[i] = make([]float64, featDim)
	}
	for i := 0; i < nd; i++ {
		for h := 0; h < hidden; h++ {
			if st.pre1[i][h] <= 0 || dh1[i][h] == 0 {
				continue
			}
			d := dh1[i][h]
			wRow := m.w1[h*featDim : (h+1)*featDim]
			uRow := m.u1[h*featDim : (h+1)*featDim]
			for c := 0; c < featDim; c++ {
				dx[i][c] += d * wRow[c]
				dmx[i][c] += d * uRow[c]
				if pg != nil {
					pg.w1[h*featDim+c] += d * st.x[i][c]
					pg.u1[h*featDim+c] += d * st.mx[i][c]
				}
			}
			if pg != nil {
				pg.b1[h] += d
			}
		}
	}
	for i := 0; i < nd; i++ {
		for _, j := range m.adj[i] {
			for c := 0; c < featDim; c++ {
				dx[j][c] += dmx[i][c] * m.invD[i]
			}
		}
	}

	if gx != nil && gy != nil {
		// Chain through centering and scaling: x̃_i = (x_i − mean)/scale.
		var sumX, sumY float64
		for i := 0; i < nd; i++ {
			sumX += dx[i][0]
			sumY += dx[i][1]
		}
		for i := 0; i < nd; i++ {
			gx[i] += (dx[i][0] - sumX/float64(nd)) / m.scale
			gy[i] += (dx[i][1] - sumY/float64(nd)) / m.scale
		}
		// Chain the incident-net-length feature: each net's HPWL affects
		// the netlen feature of every device on the net, and is itself a
		// (sub)differentiable function of the bounding pins' coordinates.
		netSens := make([]float64, len(m.n.Nets))
		for e := range m.n.Nets {
			net := &m.n.Nets[e]
			if len(net.Pins) == 0 {
				continue
			}
			var sens float64
			touched := map[int]bool{}
			for _, pr := range net.Pins {
				if !touched[pr.Device] {
					touched[pr.Device] = true
					sens += dx[pr.Device][2]
				}
			}
			netSens[e] += sens
		}
		// Mismatch feature: |L_a − L_b| distributes ±sign sensitivity onto
		// the two nets' lengths.
		for _, pr := range m.matched {
			var sens float64
			touched := map[int]bool{}
			for _, e := range pr[:] {
				for _, pin := range m.n.Nets[e].Pins {
					if !touched[pin.Device] {
						touched[pin.Device] = true
						sens += dx[pin.Device][3]
					}
				}
			}
			if sens == 0 {
				continue
			}
			sign := 1.0
			if st.netLen[pr[0]] < st.netLen[pr[1]] {
				sign = -1
			}
			netSens[pr[0]] += sens * sign
			netSens[pr[1]] -= sens * sign
		}
		for e, sens := range netSens {
			if sens == 0 {
				continue
			}
			g := sens / m.scale
			ex := st.extremes[e]
			gx[ex.maxX] += g
			gx[ex.minX] -= g
			gy[ex.maxY] += g
			gy[ex.minY] -= g
		}
	}
}

// Prob returns Φ(G): the probability that performance is unsatisfactory at
// placement p. Implements the anneal.PerfModel interface.
func (m *Model) Prob(n *circuit.Netlist, p *circuit.Placement) float64 {
	if n != m.n {
		panic("gnn: model evaluated on a different netlist")
	}
	return m.forward(p, &m.scratch)
}

// ProbGrad returns Φ and accumulates ∂Φ/∂(x_i, y_i) into gx/gy — the
// gradient ePlace-AP feeds to its Nesterov solver.
func (m *Model) ProbGrad(p *circuit.Placement, gx, gy []float64) float64 {
	out := m.forward(p, &m.scratch)
	m.backward(&m.scratch, 1, nil, gx, gy)
	return out
}

// scratchPlacement returns a placement sized for the model's netlist.
func (m *Model) scratchPlacement() *circuit.Placement {
	return circuit.NewPlacement(m.n)
}

// String summarizes the model.
func (m *Model) String() string {
	return fmt.Sprintf("gnn.Model{devices: %d, params: %d}", len(m.n.Devices), m.numParams())
}
