package gnn

import (
	"math"
	"math/rand"
	"testing"
)

// TestNetLenFeatureValue: the netlen feature column must equal the summed
// weighted HPWL of each node's incident nets, normalized by scale.
func TestNetLenFeatureValue(t *testing.T) {
	n := testNetlist()
	m := New(n, 10, 1)
	p := randomPlacement(n, rand.New(rand.NewSource(1)), 30)
	m.forward(p, &m.scratch)
	for i := range n.Devices {
		var want float64
		for e := range n.Nets {
			onNet := false
			for _, pr := range n.Nets[e].Pins {
				if pr.Device == i {
					onNet = true
					break
				}
			}
			if onNet {
				w := n.Nets[e].Weight
				if w == 0 {
					w = 1
				}
				want += w * n.NetHPWL(p, e) / 10
			}
		}
		if got := m.scratch.x[i][2]; math.Abs(got-want) > 1e-9 {
			t.Errorf("netlen[%d] = %g, want %g", i, got, want)
		}
	}
}

// TestMismatchFeatureValue: matched-net pairs contribute |L_a − L_b|/scale
// to every device touching either net.
func TestMismatchFeatureValue(t *testing.T) {
	n := testNetlist()
	m := New(n, 10, 1)
	m.SetMatchedNets([][2]int{{0, 1}})
	p := randomPlacement(n, rand.New(rand.NewSource(2)), 30)
	m.forward(p, &m.scratch)
	want := math.Abs(n.NetHPWL(p, 0)-n.NetHPWL(p, 1)) / 10
	touched := map[int]bool{}
	for _, e := range []int{0, 1} {
		for _, pr := range n.Nets[e].Pins {
			touched[pr.Device] = true
		}
	}
	for i := range n.Devices {
		exp := 0.0
		if touched[i] {
			exp = want
		}
		if got := m.scratch.x[i][3]; math.Abs(got-exp) > 1e-9 {
			t.Errorf("mismatch[%d] = %g, want %g", i, got, exp)
		}
	}
}

// TestProbGradWithMatchedNetsFD: the full coordinate gradient, including
// the netlen and mismatch chains, must match finite differences at generic
// positions.
func TestProbGradWithMatchedNetsFD(t *testing.T) {
	n := testNetlist()
	m := New(n, 10, 3)
	m.SetMatchedNets([][2]int{{0, 2}})
	rng := rand.New(rand.NewSource(4))
	p := randomPlacement(n, rng, 40)
	nd := len(n.Devices)
	gx := make([]float64, nd)
	gy := make([]float64, nd)
	m.ProbGrad(p, gx, gy)
	const h = 1e-6
	bad := 0
	for i := 0; i < nd; i++ {
		p.X[i] += h
		fp := m.Prob(n, p)
		p.X[i] -= 2 * h
		fm := m.Prob(n, p)
		p.X[i] += h
		fd := (fp - fm) / (2 * h)
		// The HPWL-based features have subgradient kinks where a net's
		// bounding pin changes owner; tolerate rare disagreements but not
		// systematic ones.
		if math.Abs(fd-gx[i]) > 1e-5+5e-3*math.Abs(fd) {
			bad++
		}
	}
	if bad > 1 {
		t.Errorf("%d of %d x-gradients disagree with finite differences", bad, nd)
	}
}

// TestMismatchFeatureInfluencesProb: models with matched nets must react
// to pure asymmetry changes that keep every individual feature except
// mismatch roughly fixed.
func TestMismatchFeatureInfluencesProb(t *testing.T) {
	n := testNetlist()
	m := New(n, 10, 5)
	m.SetMatchedNets([][2]int{{0, 2}})
	p := randomPlacement(n, rand.New(rand.NewSource(6)), 30)
	base := m.Prob(n, p)
	// Stretch net 0 only (move device 1, which is on net 0 but not net 2).
	p.X[1] += 25
	stretched := m.Prob(n, p)
	if base == stretched {
		t.Error("Prob did not react to a matched-net asymmetry change")
	}
}

func TestSetMatchedNetsCopies(t *testing.T) {
	n := testNetlist()
	m := New(n, 10, 7)
	pairs := [][2]int{{0, 1}}
	m.SetMatchedNets(pairs)
	pairs[0] = [2]int{2, 3}
	if m.matched[0] != [2]int{0, 1} {
		t.Error("SetMatchedNets shares caller storage")
	}
}
