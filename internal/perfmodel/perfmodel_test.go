package perfmodel

import (
	"math"
	"testing"

	"repro/internal/circuit"
	"repro/internal/geom"
)

// tinyCircuit: three devices, two nets; net 0 and 1 are a matched pair.
func tinyCircuit() *circuit.Netlist {
	mk := func(name string, w, h float64) circuit.Device {
		return circuit.Device{Name: name, W: w, H: h,
			Pins: []circuit.Pin{{Offset: geom.Point{X: w / 2, Y: h / 2}}}}
	}
	return &circuit.Netlist{
		Name:    "tiny",
		Devices: []circuit.Device{mk("a", 4, 4), mk("b", 4, 4), mk("c", 4, 4)},
		Nets: []circuit.Net{
			{Name: "n0", Pins: []circuit.PinRef{{Device: 0, Pin: 0}, {Device: 2, Pin: 0}}},
			{Name: "n1", Pins: []circuit.PinRef{{Device: 1, Pin: 0}, {Device: 2, Pin: 0}}},
		},
	}
}

func tinyModel(n *circuit.Netlist) *Model {
	m := &Model{
		Wire: DefaultWire,
		Metrics: []MetricDef{
			{
				Spec: Spec{Name: "UGF", Target: 1000, HigherBetter: true, Weight: 0.5},
				Base: 1100, CapSens: map[int]float64{0: 0.05, 1: 0.05},
			},
			{
				Spec: Spec{Name: "Offset", Target: 5, HigherBetter: false, Weight: 0.5},
				Base: 4, MismatchSens: 0.5,
			},
		},
		MatchedNets: [][2]int{{0, 1}},
	}
	m.SetReferenceLengths(n, 10, 0.5)
	return m
}

func placeAt(n *circuit.Netlist, coords ...float64) *circuit.Placement {
	p := circuit.NewPlacement(n)
	for i := 0; i < len(coords)/2; i++ {
		p.X[i], p.Y[i] = coords[2*i], coords[2*i+1]
	}
	return p
}

func TestNetCapGrowsWithLength(t *testing.T) {
	n := tinyCircuit()
	short := placeAt(n, 0, 0, 10, 0, 5, 0)
	long := placeAt(n, 0, 0, 10, 0, 50, 0)
	w := DefaultWire
	if w.NetCap(n, long, 0) <= w.NetCap(n, short, 0) {
		t.Error("longer net should have larger cap")
	}
}

func TestNetCapFanout(t *testing.T) {
	n := tinyCircuit()
	n.Nets[0].Pins = append(n.Nets[0].Pins, circuit.PinRef{Device: 1, Pin: 0})
	p := placeAt(n, 0, 0, 0, 0, 0, 0)
	got := DefaultWire.NetCap(n, p, 0)
	want := DefaultWire.C0 + DefaultWire.CPerFanout // 3 pins → one extra fanout
	if math.Abs(got-want) > 1e-12 {
		t.Errorf("NetCap = %g, want %g", got, want)
	}
}

func TestValidate(t *testing.T) {
	n := tinyCircuit()
	m := tinyModel(n)
	if err := m.Validate(n); err != nil {
		t.Fatalf("Validate: %v", err)
	}
	bad := tinyModel(n)
	bad.Metrics[0].Weight = 0.9 // weights no longer sum to 1
	if bad.Validate(n) == nil {
		t.Error("Validate accepted bad weights")
	}
	bad2 := tinyModel(n)
	bad2.Metrics[0].CapSens = map[int]float64{9: 1}
	if bad2.Validate(n) == nil {
		t.Error("Validate accepted bad net reference")
	}
	bad3 := tinyModel(n)
	bad3.RefCap = bad3.RefCap[:1]
	if bad3.Validate(n) == nil {
		t.Error("Validate accepted short RefCap")
	}
}

func TestCompactPlacementBeatsSpread(t *testing.T) {
	n := tinyCircuit()
	m := tinyModel(n)
	compact := placeAt(n, 0, 0, 8, 0, 4, 4)
	spread := placeAt(n, 0, 0, 80, 0, 40, 40)
	if m.FOM(n, compact) <= m.FOM(n, spread) {
		t.Errorf("compact FOM %.3f <= spread FOM %.3f", m.FOM(n, compact), m.FOM(n, spread))
	}
}

func TestMismatchHurtsOffset(t *testing.T) {
	n := tinyCircuit()
	m := tinyModel(n)
	// Symmetric: nets n0 (a-c) and n1 (b-c) have equal length.
	sym := placeAt(n, 0, 0, 20, 0, 10, 0)
	// Asymmetric: a much closer to c than b.
	asym := placeAt(n, 8, 0, 28, 0, 10, 0)
	if m.Mismatch(n, sym) > 1e-9 {
		t.Errorf("symmetric placement has mismatch %g", m.Mismatch(n, sym))
	}
	if m.Mismatch(n, asym) <= 0 {
		t.Error("asymmetric placement should have positive mismatch")
	}
	rawSym := m.Eval(n, sym)
	rawAsym := m.Eval(n, asym)
	if rawAsym[1] <= rawSym[1] {
		t.Errorf("offset did not grow with mismatch: %g vs %g", rawAsym[1], rawSym[1])
	}
}

func TestNormalizeEq6(t *testing.T) {
	n := tinyCircuit()
	m := tinyModel(n)
	norm := m.Normalize([]float64{500, 10})
	// UGF (Π+): 500/1000 = 0.5. Offset (Π−): 5/10 = 0.5.
	if math.Abs(norm[0]-0.5) > 1e-12 || math.Abs(norm[1]-0.5) > 1e-12 {
		t.Errorf("Normalize = %v, want [0.5 0.5]", norm)
	}
	// Clamping at 1.
	norm = m.Normalize([]float64{2000, 1})
	if norm[0] != 1 || norm[1] != 1 {
		t.Errorf("Normalize clamp = %v, want [1 1]", norm)
	}
}

func TestFOMBounds(t *testing.T) {
	n := tinyCircuit()
	m := tinyModel(n)
	for _, p := range []*circuit.Placement{
		placeAt(n, 0, 0, 8, 0, 4, 4),
		placeAt(n, 0, 0, 300, 0, 150, 100),
	} {
		f := m.FOM(n, p)
		if f < 0 || f > 1 {
			t.Errorf("FOM %g out of [0,1]", f)
		}
	}
}

func TestSetReferenceAnchors(t *testing.T) {
	n := tinyCircuit()
	m := tinyModel(n)
	p := placeAt(n, 0, 0, 8, 0, 4, 4)
	m.SetReference(n, p)
	raw := m.Eval(n, p)
	// At the reference placement (zero mismatch), load = 1: raw == Base.
	if math.Abs(raw[0]-m.Metrics[0].Base) > 1e-9 {
		t.Errorf("raw[0] = %g, want Base %g at reference", raw[0], m.Metrics[0].Base)
	}
}

func TestLoadFloorKeepsMetricsPositive(t *testing.T) {
	n := tinyCircuit()
	m := tinyModel(n)
	// Absurdly spread placement: load would go huge / metric near zero, but
	// must stay positive and finite.
	p := placeAt(n, 0, 0, 5000, 0, 2500, 2500)
	for i, z := range m.Eval(n, p) {
		if z <= 0 || math.IsInf(z, 0) || math.IsNaN(z) {
			t.Errorf("metric %d = %g not positive/finite", i, z)
		}
	}
}
