// Package perfmodel is the circuit-performance substrate standing in for
// the paper's routing + parasitic extraction + SPICE pipeline (ALIGN router
// and GF 12 nm simulations, which are proprietary). It estimates per-net
// parasitics from placement geometry with a star wire model, maps them to
// performance metrics (gain, unity-gain frequency, bandwidth, phase margin,
// and per-family equivalents) through smooth analytic sensitivity models,
// applies the paper's metric normalization (Eq. 6), and reports the
// composite FOM. The substitution preserves the property placement can act
// on: performance degrades smoothly with wirelength on critical nets and
// with parasitic mismatch between matched nets.
package perfmodel

import (
	"fmt"
	"math"

	"repro/internal/circuit"
)

// WireModel converts net geometry into parasitic capacitance:
// C_e = C0 + CPerLen·HPWL_e + CPerFanout·(pins−2).
type WireModel struct {
	C0         float64
	CPerLen    float64
	CPerFanout float64
}

// DefaultWire is a reasonable fF-scale parasitic model for 0.1 µm grid
// units (≈0.2 fF/µm wire capacitance).
var DefaultWire = WireModel{C0: 0.5, CPerLen: 0.02, CPerFanout: 0.3}

// NetCap returns the estimated parasitic capacitance of net e at placement p.
func (w WireModel) NetCap(n *circuit.Netlist, p *circuit.Placement, e int) float64 {
	pins := len(n.Nets[e].Pins)
	return w.C0 + w.CPerLen*n.NetHPWL(p, e) + w.CPerFanout*float64(max(pins-2, 0))
}

// Spec describes one performance metric: its specification ψ, direction
// (Π+ wants the value above ψ, Π− below), and FOM weight β.
type Spec struct {
	Name         string
	Target       float64
	HigherBetter bool
	Weight       float64
}

// MetricDef couples a Spec with its analytic placement-sensitivity model:
//
//	Π+:  z = Base / (1 + Σ_e CapSens_e·(C_e − RefCap_e) + MismatchSens·M)
//	Π−:  z = Base · (1 + Σ_e CapSens_e·(C_e − RefCap_e) + MismatchSens·M)
//
// where M is the total parasitic mismatch over matched net pairs. The
// denominator/multiplier is floored at 0.2 to keep metrics positive for
// pathological placements.
type MetricDef struct {
	Spec
	Base         float64
	CapSens      map[int]float64 // net index → sensitivity (1/fF)
	MismatchSens float64         // 1/fF
}

// Model is the performance evaluator for one circuit.
type Model struct {
	Wire        WireModel
	Metrics     []MetricDef
	MatchedNets [][2]int // net pairs whose parasitics should match

	// RefCap are the per-net reference capacitances the sensitivities are
	// anchored to (typically the caps of a compact reference placement).
	RefCap []float64
}

// Validate checks the model against a netlist.
func (m *Model) Validate(n *circuit.Netlist) error {
	if len(m.Metrics) == 0 {
		return fmt.Errorf("perfmodel: no metrics defined")
	}
	var wsum float64
	for i := range m.Metrics {
		md := &m.Metrics[i]
		if md.Target <= 0 || md.Base <= 0 {
			return fmt.Errorf("perfmodel: metric %s has non-positive target/base", md.Name)
		}
		wsum += md.Weight
		for e := range md.CapSens {
			if e < 0 || e >= len(n.Nets) {
				return fmt.Errorf("perfmodel: metric %s references net %d of %d", md.Name, e, len(n.Nets))
			}
		}
	}
	if math.Abs(wsum-1) > 1e-6 {
		return fmt.Errorf("perfmodel: FOM weights sum to %g, want 1", wsum)
	}
	for _, pr := range m.MatchedNets {
		for _, e := range pr[:] {
			if e < 0 || e >= len(n.Nets) {
				return fmt.Errorf("perfmodel: matched pair references net %d of %d", e, len(n.Nets))
			}
		}
	}
	if len(m.RefCap) != len(n.Nets) {
		return fmt.Errorf("perfmodel: RefCap has %d entries for %d nets", len(m.RefCap), len(n.Nets))
	}
	return nil
}

// Mismatch returns the total absolute parasitic mismatch over matched net
// pairs.
func (m *Model) Mismatch(n *circuit.Netlist, p *circuit.Placement) float64 {
	var s float64
	for _, pr := range m.MatchedNets {
		s += math.Abs(m.Wire.NetCap(n, p, pr[0]) - m.Wire.NetCap(n, p, pr[1]))
	}
	return s
}

// Metrics evaluates every raw metric value at placement p.
func (m *Model) Eval(n *circuit.Netlist, p *circuit.Placement) []float64 {
	mm := m.Mismatch(n, p)
	caps := make([]float64, len(n.Nets))
	for e := range n.Nets {
		caps[e] = m.Wire.NetCap(n, p, e)
	}
	out := make([]float64, len(m.Metrics))
	for i := range m.Metrics {
		md := &m.Metrics[i]
		load := 1.0
		for e, s := range md.CapSens {
			load += s * (caps[e] - m.RefCap[e])
		}
		load += md.MismatchSens * mm
		if load < 0.2 {
			load = 0.2
		}
		if md.HigherBetter {
			out[i] = md.Base / load
		} else {
			out[i] = md.Base * load
		}
	}
	return out
}

// Normalize applies Eq. (6): z̃ = min(z/ψ, 1) for Π+ metrics and
// min(ψ/z, 1) for Π− metrics.
func (m *Model) Normalize(raw []float64) []float64 {
	out := make([]float64, len(raw))
	for i := range raw {
		md := &m.Metrics[i]
		if md.HigherBetter {
			out[i] = math.Min(raw[i]/md.Target, 1)
		} else {
			out[i] = math.Min(md.Target/raw[i], 1)
		}
	}
	return out
}

// FOM returns the composite figure of merit Σ β_i·z̃_i at placement p.
func (m *Model) FOM(n *circuit.Netlist, p *circuit.Placement) float64 {
	norm := m.Normalize(m.Eval(n, p))
	var f float64
	for i, z := range norm {
		f += m.Metrics[i].Weight * z
	}
	return f
}

// SetReference anchors RefCap to the parasitics of placement p, making p
// the "nominal" layout the sensitivities are measured against.
func (m *Model) SetReference(n *circuit.Netlist, p *circuit.Placement) {
	m.RefCap = make([]float64, len(n.Nets))
	for e := range n.Nets {
		m.RefCap[e] = m.Wire.NetCap(n, p, e)
	}
}

// SetReferenceLengths anchors RefCap assuming every net has HPWL equal to
// frac·scale (a placement-free compact-layout estimate).
func (m *Model) SetReferenceLengths(n *circuit.Netlist, scale, frac float64) {
	m.RefCap = make([]float64, len(n.Nets))
	for e := range n.Nets {
		pins := len(n.Nets[e].Pins)
		m.RefCap[e] = m.Wire.C0 + m.Wire.CPerLen*frac*scale + m.Wire.CPerFanout*float64(max(pins-2, 0))
	}
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}
