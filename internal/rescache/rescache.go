// Package rescache is a content-addressed result cache for deterministic
// placement: values are stored under the SHA-256 of everything that
// determines the solver's output bits — the canonical netlist fingerprint
// (internal/netio) plus the method, seed, and result-affecting knobs
// (area weight, mu, portfolio width, SA chain count, and the refinement
// stage's on/off and window budget) — so a hit can be returned in place
// of a fresh solve with byte-identical results. Keys deliberately
// exclude inputs that do NOT affect output
// bits (thread count, deadlines, tenant, priority): requests differing
// only in those share one entry.
//
// The cache is a strict LRU bounded by total value bytes, safe for
// concurrent use. A nil *Cache is valid everywhere and behaves as an
// always-miss cache, so callers can thread an optional cache without
// branching — the same contract obs.Tracer and metrics.Registry
// established.
package rescache

import (
	"container/list"
	"crypto/sha256"
	"encoding/binary"
	"encoding/hex"
	"sync"
)

// Key is a 32-byte content address. Build one with NewKey.
type Key [32]byte

// String returns the hex form (for logs and debugging).
func (k Key) String() string { return hex.EncodeToString(k[:]) }

// NewKey derives a cache key from a content fingerprint plus the ordered
// list of result-affecting fields (method name, seed, knob values, ...).
// Fields are length-prefixed before hashing so no two distinct field
// lists collide by concatenation ("ab","c" vs "a","bc").
func NewKey(fingerprint [32]byte, fields ...string) Key {
	h := sha256.New()
	h.Write(fingerprint[:])
	var n [8]byte
	for _, f := range fields {
		binary.BigEndian.PutUint64(n[:], uint64(len(f)))
		h.Write(n[:])
		h.Write([]byte(f))
	}
	var out Key
	h.Sum(out[:0])
	return out
}

// Cache is a byte-bounded LRU. Use New; the zero value is not usable
// (but a nil *Cache is: it always misses and drops every Put).
type Cache struct {
	mu       sync.Mutex
	maxBytes int64
	bytes    int64
	ll       *list.List // front = most recently used
	items    map[Key]*list.Element

	hits, misses, puts, evictions int64
}

// entry is one cached value; Element.Value holds *entry.
type entry struct {
	key Key
	val []byte
}

// New returns a cache bounded at maxBytes of stored values. maxBytes <= 0
// returns nil — the disabled cache — so wiring "-cache-bytes 0" through
// needs no special case.
func New(maxBytes int64) *Cache {
	if maxBytes <= 0 {
		return nil
	}
	return &Cache{
		maxBytes: maxBytes,
		ll:       list.New(),
		items:    map[Key]*list.Element{},
	}
}

// Get returns the value stored under k and marks it most recently used.
// The returned slice is shared — callers must not modify it. A nil cache
// always misses.
func (c *Cache) Get(k Key) ([]byte, bool) {
	if c == nil {
		return nil, false
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	el, ok := c.items[k]
	if !ok {
		c.misses++
		return nil, false
	}
	c.hits++
	c.ll.MoveToFront(el)
	return el.Value.(*entry).val, true
}

// Put stores v under k, evicting least-recently-used entries until the
// byte bound holds. Storing an existing key refreshes its value and
// recency. A value larger than the whole cache is dropped (it would evict
// everything and then not fit). The cache keeps v without copying —
// callers hand over ownership. A nil cache drops the value.
func (c *Cache) Put(k Key, v []byte) {
	if c == nil || int64(len(v)) > c.maxBytes {
		return
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	c.puts++
	if el, ok := c.items[k]; ok {
		e := el.Value.(*entry)
		c.bytes += int64(len(v)) - int64(len(e.val))
		e.val = v
		c.ll.MoveToFront(el)
	} else {
		c.items[k] = c.ll.PushFront(&entry{key: k, val: v})
		c.bytes += int64(len(v))
	}
	for c.bytes > c.maxBytes {
		back := c.ll.Back()
		if back == nil {
			break
		}
		e := back.Value.(*entry)
		c.ll.Remove(back)
		delete(c.items, e.key)
		c.bytes -= int64(len(e.val))
		c.evictions++
	}
}

// Stats is a point-in-time snapshot of cache effectiveness and occupancy.
type Stats struct {
	Entries   int   `json:"entries"`
	Bytes     int64 `json:"bytes"`
	MaxBytes  int64 `json:"max_bytes"`
	Hits      int64 `json:"hits"`
	Misses    int64 `json:"misses"`
	Puts      int64 `json:"puts"`
	Evictions int64 `json:"evictions"`
}

// Stats snapshots the cache. A nil cache reports all zeros.
func (c *Cache) Stats() Stats {
	if c == nil {
		return Stats{}
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	return Stats{
		Entries:   len(c.items),
		Bytes:     c.bytes,
		MaxBytes:  c.maxBytes,
		Hits:      c.hits,
		Misses:    c.misses,
		Puts:      c.puts,
		Evictions: c.evictions,
	}
}
