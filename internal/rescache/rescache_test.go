package rescache

import (
	"bytes"
	"fmt"
	"sync"
	"testing"
)

func key(s string) Key {
	var fp [32]byte
	copy(fp[:], s)
	return NewKey(fp)
}

func TestNewKeyFieldFraming(t *testing.T) {
	var fp [32]byte
	if NewKey(fp, "ab", "c") == NewKey(fp, "a", "bc") {
		t.Error("field concatenation collides — framing missing")
	}
	if NewKey(fp, "a") == NewKey(fp, "a", "") {
		t.Error("trailing empty field does not change the key")
	}
	if NewKey(fp, "a", "b") != NewKey(fp, "a", "b") {
		t.Error("key derivation not deterministic")
	}
	fp2 := fp
	fp2[0] = 1
	if NewKey(fp, "a") == NewKey(fp2, "a") {
		t.Error("fingerprint change does not change the key")
	}
}

func TestGetPutRoundtrip(t *testing.T) {
	c := New(1 << 20)
	if _, ok := c.Get(key("k1")); ok {
		t.Fatal("hit on empty cache")
	}
	c.Put(key("k1"), []byte("payload-1"))
	v, ok := c.Get(key("k1"))
	if !ok || !bytes.Equal(v, []byte("payload-1")) {
		t.Fatalf("roundtrip got %q, %v", v, ok)
	}
	// Same-key Put refreshes the value.
	c.Put(key("k1"), []byte("payload-2"))
	if v, _ := c.Get(key("k1")); !bytes.Equal(v, []byte("payload-2")) {
		t.Errorf("refresh kept old value %q", v)
	}
	st := c.Stats()
	if st.Entries != 1 || st.Hits != 2 || st.Misses != 1 || st.Puts != 2 {
		t.Errorf("stats %+v", st)
	}
	if st.Bytes != int64(len("payload-2")) {
		t.Errorf("bytes %d after refresh, want %d", st.Bytes, len("payload-2"))
	}
}

func TestLRUEvictionByBytes(t *testing.T) {
	// Room for exactly three 10-byte values.
	c := New(30)
	val := func(i int) []byte { return []byte(fmt.Sprintf("value-%04d", i)) }
	for i := 0; i < 3; i++ {
		c.Put(key(fmt.Sprintf("k%d", i)), val(i))
	}
	// Touch k0 so k1 becomes least recently used.
	if _, ok := c.Get(key("k0")); !ok {
		t.Fatal("k0 missing before eviction")
	}
	c.Put(key("k3"), val(3))
	if _, ok := c.Get(key("k1")); ok {
		t.Error("LRU entry k1 survived eviction")
	}
	for _, k := range []string{"k0", "k2", "k3"} {
		if _, ok := c.Get(key(k)); !ok {
			t.Errorf("%s evicted, want kept", k)
		}
	}
	st := c.Stats()
	if st.Evictions != 1 || st.Bytes != 30 || st.Entries != 3 {
		t.Errorf("stats %+v", st)
	}
}

func TestOversizedValueDropped(t *testing.T) {
	c := New(8)
	c.Put(key("big"), make([]byte, 9))
	if _, ok := c.Get(key("big")); ok {
		t.Error("value larger than the cache was stored")
	}
	if st := c.Stats(); st.Entries != 0 || st.Bytes != 0 {
		t.Errorf("stats %+v after oversized put", st)
	}
}

func TestNilCacheContract(t *testing.T) {
	var c *Cache
	c.Put(key("k"), []byte("v"))
	if _, ok := c.Get(key("k")); ok {
		t.Error("nil cache returned a hit")
	}
	if st := c.Stats(); st != (Stats{}) {
		t.Errorf("nil cache stats %+v", st)
	}
	if New(0) != nil || New(-1) != nil {
		t.Error("non-positive bound did not return the disabled (nil) cache")
	}
}

func TestConcurrentAccess(t *testing.T) {
	c := New(1 << 10)
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				k := key(fmt.Sprintf("k%d", (g+i)%16))
				c.Put(k, []byte(fmt.Sprintf("v%d", i)))
				c.Get(k)
			}
		}(g)
	}
	wg.Wait()
	st := c.Stats()
	if st.Bytes > 1<<10 {
		t.Errorf("byte bound violated: %d", st.Bytes)
	}
	if st.Puts != 1600 {
		t.Errorf("puts %d, want 1600", st.Puts)
	}
}
