// Package wl implements the smoothed wirelength models used by analytical
// placement: the Weighted-Average (WA) function of Eq. (2) adopted by
// ePlace-A, and the Log-Sum-Exponential (LSE) function used by the
// NTUplace3-lineage baseline. Both provide analytic gradients with respect
// to device center coordinates. The package also provides the WA-smoothed
// total-area term Area(v) = WA_{V,x}(v) · WA_{V,y}(v) from Section IV-A.
package wl

import (
	"math"
	"time"

	"repro/internal/circuit"
	"repro/internal/obs/metrics"
	"repro/internal/par"
)

// Smoother selects the smoothing function for the max/min terms.
type Smoother int

// Supported smoothing functions.
const (
	// WA is the Weighted-Average smoothing of Hsu et al. (used by ePlace-A).
	WA Smoother = iota
	// LSE is the Log-Sum-Exponential smoothing (used by the [11] baseline).
	LSE
)

func (s Smoother) String() string {
	if s == WA {
		return "WA"
	}
	return "LSE"
}

// netGrain is the minimum number of nets per shard when Eval splits the
// net loop. It is a fixed constant — shard geometry must depend only on
// the netlist, never on thread count, so that gradient summation order
// (and therefore every bit of the result) is identical at any -threads.
const netGrain = 32

// netScratch holds the per-net working buffers one worker slot uses while
// walking its shard of nets. Each slot of a RunIndexed call owns exactly
// one netScratch, so shards can share a slot's buffers sequentially but
// never concurrently.
type netScratch struct {
	xs, ys []float64 // pin coordinates
	gx, gy []float64 // per-pin gradients
	own    []int     // owning device per pin
}

func newNetScratch(maxPins int) netScratch {
	return netScratch{
		xs:  make([]float64, maxPins),
		ys:  make([]float64, maxPins),
		gx:  make([]float64, maxPins),
		gy:  make([]float64, maxPins),
		own: make([]int, maxPins),
	}
}

// Evaluator computes a smoothed total wirelength and its gradient. It is
// bound to one netlist and reusable across iterations.
//
// Concurrency model: the net loop is split into shards whose geometry
// depends only on the netlist size (par.ShardCount with a fixed grain).
// Each shard accumulates gradients into a shard-local partial buffer and
// a shard-local wirelength total; partials are then merged into the
// caller's gradX/gradY in shard-index order. Because both the shard
// boundaries and the merge order are fixed, an Evaluator built over a
// par.Pool produces bit-identical results to one running inline — the
// thread count changes wall-clock time, never a single ULP.
//
// An Evaluator is still not safe for concurrent use by multiple
// goroutines: it owns its scratch. Concurrency happens inside Eval, on
// the pool it was constructed with.
type Evaluator struct {
	n     *circuit.Netlist
	kind  Smoother
	gamma float64
	pool  *par.Pool

	shards  int          // fixed shard count for this netlist
	scratch []netScratch // one per worker slot (exactly one when pool is nil)

	// Per-shard gradient partials, merged in shard order. With a nil
	// pool the shards run sequentially, so a single pair of buffers is
	// reused for every shard and merged as each shard finishes — the
	// same additions in the same order, without shards× memory.
	partX, partY []float64 // flat [activeShards × nDevices]
	totals       []float64 // per-shard wirelength partials

	timer *metrics.Histogram // optional per-Eval duration histogram
}

// SetTimer installs a per-call duration histogram on Eval. Timing is
// observation-only (no result bit depends on it); a nil handle restores
// the untimed single-pointer-check path.
func (ev *Evaluator) SetTimer(h *metrics.Histogram) { ev.timer = h }

// NewEvaluator returns an evaluator for netlist n using the given smoother
// and smoothing parameter gamma (> 0). Smaller gamma tracks exact HPWL more
// tightly but yields stiffer gradients. The evaluator runs inline on the
// calling goroutine; this constructor path allocates only the fixed
// scratch it always has (per-pin buffers plus one partial-gradient pair),
// and Eval itself stays allocation-free.
func NewEvaluator(n *circuit.Netlist, kind Smoother, gamma float64) *Evaluator {
	return NewEvaluatorPool(n, kind, gamma, nil)
}

// NewEvaluatorPool is NewEvaluator with a worker pool for the net loop. A
// nil pool is valid and means inline execution; the result bits are
// identical either way (see the Evaluator doc comment).
func NewEvaluatorPool(n *circuit.Netlist, kind Smoother, gamma float64, pool *par.Pool) *Evaluator {
	maxPins := 0
	for e := range n.Nets {
		if len(n.Nets[e].Pins) > maxPins {
			maxPins = len(n.Nets[e].Pins)
		}
	}
	shards := par.ShardCount(len(n.Nets), netGrain)
	slots := pool.Workers()
	if slots > shards {
		slots = shards
	}
	ev := &Evaluator{
		n:       n,
		kind:    kind,
		gamma:   gamma,
		pool:    pool,
		shards:  shards,
		scratch: make([]netScratch, slots),
		totals:  make([]float64, shards),
	}
	for i := range ev.scratch {
		ev.scratch[i] = newNetScratch(maxPins)
	}
	nd := len(n.Devices)
	if pool == nil {
		ev.partX = make([]float64, nd)
		ev.partY = make([]float64, nd)
	} else {
		ev.partX = make([]float64, shards*nd)
		ev.partY = make([]float64, shards*nd)
	}
	return ev
}

// Gamma returns the current smoothing parameter.
func (ev *Evaluator) Gamma() float64 { return ev.gamma }

// SetGamma updates the smoothing parameter (ePlace anneals gamma downward
// as density overflow shrinks).
func (ev *Evaluator) SetGamma(g float64) { ev.gamma = g }

// Eval returns the smoothed total weighted wirelength at placement p and
// accumulates its gradient into gradX/gradY (which must be zeroed by the
// caller if a fresh gradient is wanted; pass nil to skip gradients).
// Device flips are honored for pin positions but treated as constants.
//
// When the evaluator has more than one shard, each shard's contributions
// are summed shard-locally and merged in shard order — the same additions
// in the same order whether shards run inline or on the pool.
func (ev *Evaluator) Eval(p *circuit.Placement, gradX, gradY []float64) float64 {
	if ev.timer == nil {
		return ev.eval(p, gradX, gradY)
	}
	t0 := time.Now()
	v := ev.eval(p, gradX, gradY)
	ev.timer.Observe(time.Since(t0).Seconds())
	return v
}

func (ev *Evaluator) eval(p *circuit.Placement, gradX, gradY []float64) float64 {
	nNets := len(ev.n.Nets)
	nd := len(ev.n.Devices)
	shards := ev.shards
	if shards == 1 {
		return ev.evalShard(p, 0, nNets, &ev.scratch[0], gradX, gradY)
	}
	wantX, wantY := gradX != nil, gradY != nil
	if ev.pool == nil {
		// Shards run sequentially, so one partial pair is reused and
		// merged as each shard finishes: the identical addition
		// sequence as the pooled branch below, without shards× memory.
		var total float64
		for s := 0; s < shards; s++ {
			lo, hi := par.ShardRange(nNets, shards, s)
			var px, py []float64
			if wantX {
				px = ev.partX[:nd]
				zero(px)
			}
			if wantY {
				py = ev.partY[:nd]
				zero(py)
			}
			total += ev.evalShard(p, lo, hi, &ev.scratch[0], px, py)
			merge(gradX, px)
			merge(gradY, py)
		}
		return total
	}
	ev.pool.RunIndexed(shards, func(slot, s int) {
		lo, hi := par.ShardRange(nNets, shards, s)
		var px, py []float64
		if wantX {
			px = ev.partX[s*nd : (s+1)*nd]
			zero(px)
		}
		if wantY {
			py = ev.partY[s*nd : (s+1)*nd]
			zero(py)
		}
		ev.totals[s] = ev.evalShard(p, lo, hi, &ev.scratch[slot], px, py)
	})
	var total float64
	for s := 0; s < shards; s++ {
		total += ev.totals[s]
		if wantX {
			merge(gradX, ev.partX[s*nd:(s+1)*nd])
		}
		if wantY {
			merge(gradY, ev.partY[s*nd:(s+1)*nd])
		}
	}
	return total
}

// evalShard walks nets [lo, hi) using scratch sc, accumulating gradients
// into gradX/gradY (nil to skip) and returning the shard's wirelength sum.
func (ev *Evaluator) evalShard(p *circuit.Placement, lo, hi int, sc *netScratch, gradX, gradY []float64) float64 {
	var total float64
	for e := lo; e < hi; e++ {
		net := &ev.n.Nets[e]
		w := net.Weight
		if w == 0 {
			w = 1
		}
		k := len(net.Pins)
		for i, pr := range net.Pins {
			pt := ev.n.PinPos(p, pr)
			sc.xs[i], sc.ys[i] = pt.X, pt.Y
			sc.own[i] = pr.Device
		}
		lx := ev.axis(sc.xs[:k], sc.gx[:k], gradX != nil)
		ly := ev.axis(sc.ys[:k], sc.gy[:k], gradY != nil)
		total += w * (lx + ly)
		if gradX != nil {
			for i := 0; i < k; i++ {
				gradX[sc.own[i]] += w * sc.gx[i]
			}
		}
		if gradY != nil {
			for i := 0; i < k; i++ {
				gradY[sc.own[i]] += w * sc.gy[i]
			}
		}
	}
	return total
}

func zero(x []float64) {
	for i := range x {
		x[i] = 0
	}
}

// merge adds src into dst element-wise; either may be nil (no-op).
func merge(dst, src []float64) {
	if dst == nil {
		return
	}
	for i, v := range src {
		dst[i] += v
	}
}

// axis evaluates the smoothed (max - min) of coords and writes per-pin
// gradients into grad when wantGrad is set. It dispatches on the smoother.
func (ev *Evaluator) axis(coords, grad []float64, wantGrad bool) float64 {
	switch ev.kind {
	case WA:
		return waAxis(coords, grad, ev.gamma, wantGrad)
	default:
		return lseAxis(coords, grad, ev.gamma, wantGrad)
	}
}

// waAxis computes the WA approximation of max(coords) - min(coords) per
// Eq. (2), with exp-shift for numerical stability.
func waAxis(coords, grad []float64, gamma float64, wantGrad bool) float64 {
	if len(coords) == 0 {
		return 0
	}
	maxC, minC := coords[0], coords[0]
	for _, c := range coords[1:] {
		maxC = math.Max(maxC, c)
		minC = math.Min(minC, c)
	}
	var sp, tp, sm, tm float64 // S+, T+, S-, T-
	for _, c := range coords {
		ep := math.Exp((c - maxC) / gamma)
		em := math.Exp((minC - c) / gamma)
		sp += ep
		tp += c * ep
		sm += em
		tm += c * em
	}
	waMax := tp / sp
	waMin := tm / sm
	if wantGrad {
		for i, c := range coords {
			ep := math.Exp((c - maxC) / gamma)
			em := math.Exp((minC - c) / gamma)
			dMax := (ep / sp) * (1 + (c-waMax)/gamma)
			dMin := (em / sm) * (1 - (c-waMin)/gamma)
			grad[i] = dMax - dMin
		}
	}
	return waMax - waMin
}

// lseAxis computes the LSE approximation gamma·(ln Σe^{x/γ} + ln Σe^{-x/γ}),
// with exp-shift for numerical stability.
func lseAxis(coords, grad []float64, gamma float64, wantGrad bool) float64 {
	if len(coords) == 0 {
		return 0
	}
	maxC, minC := coords[0], coords[0]
	for _, c := range coords[1:] {
		maxC = math.Max(maxC, c)
		minC = math.Min(minC, c)
	}
	var sp, sm float64
	for _, c := range coords {
		sp += math.Exp((c - maxC) / gamma)
		sm += math.Exp((minC - c) / gamma)
	}
	val := maxC + gamma*math.Log(sp) - (minC - gamma*math.Log(sm))
	if wantGrad {
		for i, c := range coords {
			ep := math.Exp((c-maxC)/gamma) / sp
			em := math.Exp((minC-c)/gamma) / sm
			grad[i] = ep - em
		}
	}
	return val
}

// AreaEvaluator computes the WA-smoothed layout area term
// Area(v) = WA_{V,x}(v) · WA_{V,y}(v), where the per-axis WA smooths the
// span between the extreme device edges, and its gradient with respect to
// device centers.
type AreaEvaluator struct {
	n     *circuit.Netlist
	gamma float64

	lo, hi []float64 // device edge coordinates, scratch
	gLo    []float64
	gHi    []float64
}

// NewAreaEvaluator returns an area evaluator with smoothing parameter gamma.
func NewAreaEvaluator(n *circuit.Netlist, gamma float64) *AreaEvaluator {
	k := len(n.Devices)
	return &AreaEvaluator{
		n:     n,
		gamma: gamma,
		lo:    make([]float64, k),
		hi:    make([]float64, k),
		gLo:   make([]float64, k),
		gHi:   make([]float64, k),
	}
}

// SetGamma updates the smoothing parameter.
func (ae *AreaEvaluator) SetGamma(g float64) { ae.gamma = g }

// spanAxis computes the smoothed span between max(hi) and min(lo) edge
// coordinates, and the per-device gradient (d span / d center, noting that
// both edges move 1:1 with the center).
func (ae *AreaEvaluator) spanAxis(lo, hi, grad []float64, wantGrad bool) float64 {
	k := len(lo)
	if k == 0 {
		return 0
	}
	maxC, minC := hi[0], lo[0]
	for i := 1; i < k; i++ {
		maxC = math.Max(maxC, hi[i])
		minC = math.Min(minC, lo[i])
	}
	g := ae.gamma
	var sp, tp, sm, tm float64
	for i := 0; i < k; i++ {
		ep := math.Exp((hi[i] - maxC) / g)
		em := math.Exp((minC - lo[i]) / g)
		sp += ep
		tp += hi[i] * ep
		sm += em
		tm += lo[i] * em
	}
	waMax := tp / sp
	waMin := tm / sm
	if wantGrad {
		for i := 0; i < k; i++ {
			ep := math.Exp((hi[i] - maxC) / g)
			em := math.Exp((minC - lo[i]) / g)
			dMax := (ep / sp) * (1 + (hi[i]-waMax)/g)
			dMin := (em / sm) * (1 - (lo[i]-waMin)/g)
			grad[i] = dMax - dMin
		}
	}
	return waMax - waMin
}

// Eval returns the smoothed area at placement p and accumulates its gradient
// into gradX/gradY (pass nil to skip).
func (ae *AreaEvaluator) Eval(p *circuit.Placement, gradX, gradY []float64) float64 {
	k := len(ae.n.Devices)
	if k == 0 {
		return 0
	}
	for i := 0; i < k; i++ {
		d := &ae.n.Devices[i]
		ae.lo[i] = p.X[i] - d.W/2
		ae.hi[i] = p.X[i] + d.W/2
	}
	wantGrad := gradX != nil && gradY != nil
	wx := ae.spanAxis(ae.lo, ae.hi, ae.gLo, wantGrad)
	if wantGrad {
		copy(ae.gHi, ae.gLo) // stash x-gradient
	}
	for i := 0; i < k; i++ {
		d := &ae.n.Devices[i]
		ae.lo[i] = p.Y[i] - d.H/2
		ae.hi[i] = p.Y[i] + d.H/2
	}
	gy := ae.gLo
	wy := ae.spanAxis(ae.lo, ae.hi, gy, wantGrad)
	if wantGrad {
		for i := 0; i < k; i++ {
			gradX[i] += ae.gHi[i] * wy
			gradY[i] += gy[i] * wx
		}
	}
	return wx * wy
}
