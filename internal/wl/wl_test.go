package wl

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/circuit"
	"repro/internal/geom"
)

// randomNetlist builds nDev single-pin devices (pin at center) and nNet
// random 2-4 pin nets, plus a random placement.
func randomNetlist(rng *rand.Rand, nDev, nNet int) (*circuit.Netlist, *circuit.Placement) {
	n := &circuit.Netlist{Name: "rand"}
	for i := 0; i < nDev; i++ {
		w := 2 + rng.Float64()*6
		h := 2 + rng.Float64()*6
		n.Devices = append(n.Devices, circuit.Device{
			Name: "d", W: w, H: h,
			Pins: []circuit.Pin{{Name: "p", Offset: geom.Point{X: w / 2, Y: h / 2}}},
		})
	}
	for e := 0; e < nNet; e++ {
		k := 2 + rng.Intn(3)
		perm := rng.Perm(nDev)[:k]
		var pins []circuit.PinRef
		for _, d := range perm {
			pins = append(pins, circuit.PinRef{Device: d, Pin: 0})
		}
		n.Nets = append(n.Nets, circuit.Net{Name: "n", Pins: pins})
	}
	p := circuit.NewPlacement(n)
	for i := range p.X {
		p.X[i] = rng.Float64() * 100
		p.Y[i] = rng.Float64() * 100
	}
	return n, p
}

func TestWABoundsHPWL(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for trial := 0; trial < 20; trial++ {
		n, p := randomNetlist(rng, 8, 6)
		exact := n.HPWL(p)
		wa := NewEvaluator(n, WA, 2.0).Eval(p, nil, nil)
		lse := NewEvaluator(n, LSE, 2.0).Eval(p, nil, nil)
		if wa > exact+1e-9 {
			t.Errorf("WA %.6f exceeds exact HPWL %.6f", wa, exact)
		}
		if lse < exact-1e-9 {
			t.Errorf("LSE %.6f below exact HPWL %.6f", lse, exact)
		}
	}
}

func TestSmoothersConvergeToHPWL(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	n, p := randomNetlist(rng, 10, 8)
	exact := n.HPWL(p)
	for _, kind := range []Smoother{WA, LSE} {
		prevErr := math.Inf(1)
		for _, gamma := range []float64{8, 2, 0.5, 0.1} {
			got := NewEvaluator(n, kind, gamma).Eval(p, nil, nil)
			err := math.Abs(got - exact)
			if err > prevErr+1e-9 {
				t.Errorf("%v: error grew from %.6f to %.6f as gamma shrank to %g", kind, prevErr, err, gamma)
			}
			prevErr = err
		}
		if prevErr > 0.05*exact {
			t.Errorf("%v: at gamma=0.1 error %.6f still > 5%% of %.6f", kind, prevErr, exact)
		}
	}
}

// TestWAMoreAccurateThanLSE verifies the paper's stated reason for choosing
// WA: smaller estimation error than LSE at the same gamma [23].
func TestWAMoreAccurateThanLSE(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	var waErr, lseErr float64
	for trial := 0; trial < 30; trial++ {
		n, p := randomNetlist(rng, 8, 6)
		exact := n.HPWL(p)
		waErr += math.Abs(NewEvaluator(n, WA, 3.0).Eval(p, nil, nil) - exact)
		lseErr += math.Abs(NewEvaluator(n, LSE, 3.0).Eval(p, nil, nil) - exact)
	}
	if waErr >= lseErr {
		t.Errorf("aggregate WA error %.4f >= LSE error %.4f; expected WA more accurate", waErr, lseErr)
	}
}

// checkGrad compares analytic gradients against central finite differences.
func checkGrad(t *testing.T, name string, n *circuit.Netlist, p *circuit.Placement,
	eval func(*circuit.Placement, []float64, []float64) float64) {
	t.Helper()
	nd := len(n.Devices)
	gx := make([]float64, nd)
	gy := make([]float64, nd)
	eval(p, gx, gy)
	const h = 1e-5
	for i := 0; i < nd; i++ {
		p.X[i] += h
		fp := eval(p, nil, nil)
		p.X[i] -= 2 * h
		fm := eval(p, nil, nil)
		p.X[i] += h
		fd := (fp - fm) / (2 * h)
		if math.Abs(fd-gx[i]) > 1e-4*(1+math.Abs(fd)) {
			t.Errorf("%s: dX[%d] analytic %.8f vs FD %.8f", name, i, gx[i], fd)
		}
		p.Y[i] += h
		fp = eval(p, nil, nil)
		p.Y[i] -= 2 * h
		fm = eval(p, nil, nil)
		p.Y[i] += h
		fd = (fp - fm) / (2 * h)
		if math.Abs(fd-gy[i]) > 1e-4*(1+math.Abs(fd)) {
			t.Errorf("%s: dY[%d] analytic %.8f vs FD %.8f", name, i, gy[i], fd)
		}
	}
}

func TestWAGradientFiniteDifference(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	n, p := randomNetlist(rng, 7, 6)
	ev := NewEvaluator(n, WA, 2.0)
	checkGrad(t, "WA", n, p, func(p *circuit.Placement, gx, gy []float64) float64 {
		if gx != nil {
			for i := range gx {
				gx[i], gy[i] = 0, 0
			}
		}
		return ev.Eval(p, gx, gy)
	})
}

func TestLSEGradientFiniteDifference(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	n, p := randomNetlist(rng, 7, 6)
	ev := NewEvaluator(n, LSE, 2.0)
	checkGrad(t, "LSE", n, p, func(p *circuit.Placement, gx, gy []float64) float64 {
		if gx != nil {
			for i := range gx {
				gx[i], gy[i] = 0, 0
			}
		}
		return ev.Eval(p, gx, gy)
	})
}

func TestAreaEvaluatorValue(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	n, p := randomNetlist(rng, 9, 0)
	exact := n.Area(p)
	// With tiny gamma, smoothed area approaches the exact bounding-box area.
	got := NewAreaEvaluator(n, 0.05).Eval(p, nil, nil)
	if math.Abs(got-exact) > 0.02*exact {
		t.Errorf("smoothed area %.4f vs exact %.4f", got, exact)
	}
	// Smoothed area never exceeds exact (WA under-approximates spans).
	got2 := NewAreaEvaluator(n, 2.0).Eval(p, nil, nil)
	if got2 > exact+1e-9 {
		t.Errorf("smoothed area %.4f exceeds exact %.4f", got2, exact)
	}
}

func TestAreaGradientFiniteDifference(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	n, p := randomNetlist(rng, 6, 0)
	ae := NewAreaEvaluator(n, 1.5)
	checkGrad(t, "Area", n, p, func(p *circuit.Placement, gx, gy []float64) float64 {
		if gx != nil {
			for i := range gx {
				gx[i], gy[i] = 0, 0
			}
		}
		return ae.Eval(p, gx, gy)
	})
}

func TestGammaAccessors(t *testing.T) {
	n, _ := randomNetlist(rand.New(rand.NewSource(8)), 3, 1)
	ev := NewEvaluator(n, WA, 2.0)
	if ev.Gamma() != 2.0 {
		t.Errorf("Gamma = %g", ev.Gamma())
	}
	ev.SetGamma(0.5)
	if ev.Gamma() != 0.5 {
		t.Errorf("after SetGamma, Gamma = %g", ev.Gamma())
	}
}

func TestWeightedNets(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	n, p := randomNetlist(rng, 5, 3)
	base := NewEvaluator(n, WA, 1.0).Eval(p, nil, nil)
	for e := range n.Nets {
		n.Nets[e].Weight = 3
	}
	got := NewEvaluator(n, WA, 1.0).Eval(p, nil, nil)
	if math.Abs(got-3*base) > 1e-9*(1+got) {
		t.Errorf("weighted eval = %.6f, want 3x base %.6f", got, base)
	}
}

func TestSmootherString(t *testing.T) {
	if WA.String() != "WA" || LSE.String() != "LSE" {
		t.Error("Smoother.String wrong")
	}
}

func TestDegenerateSinglePointNet(t *testing.T) {
	// A net whose pins coincide must give ~0 length and finite gradients.
	n := &circuit.Netlist{
		Devices: []circuit.Device{
			{Name: "a", W: 2, H: 2, Pins: []circuit.Pin{{Offset: geom.Point{X: 1, Y: 1}}}},
			{Name: "b", W: 2, H: 2, Pins: []circuit.Pin{{Offset: geom.Point{X: 1, Y: 1}}}},
		},
		Nets: []circuit.Net{{Pins: []circuit.PinRef{{Device: 0, Pin: 0}, {Device: 1, Pin: 0}}}},
	}
	p := circuit.NewPlacement(n)
	p.X[0], p.Y[0] = 5, 5
	p.X[1], p.Y[1] = 5, 5
	for _, kind := range []Smoother{WA, LSE} {
		gx := make([]float64, 2)
		gy := make([]float64, 2)
		v := NewEvaluator(n, kind, 1.0).Eval(p, gx, gy)
		if math.IsNaN(v) || math.IsInf(v, 0) {
			t.Errorf("%v: degenerate value %v", kind, v)
		}
		for i := range gx {
			if math.IsNaN(gx[i]) || math.IsNaN(gy[i]) {
				t.Errorf("%v: NaN gradient at %d", kind, i)
			}
		}
	}
}

// TestEvalAllocationFree pins the documented contract: an Evaluator from
// the pool-less constructor does all its work in construction-time scratch,
// so the per-iteration Eval allocates nothing.
func TestEvalAllocationFree(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	n, p := randomNetlist(rng, 80, 120)
	for _, kind := range []Smoother{WA, LSE} {
		ev := NewEvaluator(n, kind, 1.0)
		gx := make([]float64, n.NumDevices())
		gy := make([]float64, n.NumDevices())
		allocs := testing.AllocsPerRun(10, func() {
			sinkF = ev.Eval(p, gx, gy)
		})
		if allocs != 0 {
			t.Errorf("%v: Eval allocates %.0f objects per call, want 0", kind, allocs)
		}
	}
}
