package wl

import (
	"fmt"
	"runtime"
	"testing"

	"repro/internal/circuit"
	"repro/internal/gen"
	"repro/internal/par"
)

// benchCircuit generates a synthetic netlist and a deterministic spread
// placement for the wirelength kernels.
func benchCircuit(b *testing.B, devices int) (*circuit.Netlist, *circuit.Placement) {
	b.Helper()
	n, err := gen.Generate(gen.Params{Seed: 3, Devices: devices})
	if err != nil {
		b.Fatal(err)
	}
	p := circuit.NewPlacement(n)
	cols := 1
	for cols*cols < n.NumDevices() {
		cols++
	}
	for i := range p.X {
		p.X[i] = float64(i%cols) * 3
		p.Y[i] = float64(i/cols) * 3
	}
	return n, p
}

var benchSizes = []int{100, 1000}

// BenchmarkHPWL measures the exact (non-smoothed) wirelength evaluation
// used by QoR reporting and SA cost deltas.
func BenchmarkHPWL(b *testing.B) {
	for _, size := range benchSizes {
		b.Run(fmt.Sprintf("n%d", size), func(b *testing.B) {
			n, p := benchCircuit(b, size)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				sinkF = n.HPWL(p)
			}
		})
	}
}

// BenchmarkSmoothGrad measures one smoothed-wirelength evaluation with
// gradients — the inner-loop cost of every analytical GP iteration — both
// inline (threads1) and on a worker pool (threadsN). The two variants
// produce bit-identical gradients; the ns/op gap is the kernel speedup.
func BenchmarkSmoothGrad(b *testing.B) {
	threadVariants := []int{1, runtime.NumCPU()}
	for _, kind := range []Smoother{WA, LSE} {
		for _, size := range benchSizes {
			for _, threads := range threadVariants {
				b.Run(fmt.Sprintf("%s/n%d/threads%d", kind, size, threads), func(b *testing.B) {
					n, p := benchCircuit(b, size)
					pool := par.NewPool(threads)
					defer pool.Close()
					ev := NewEvaluatorPool(n, kind, 1.0, pool)
					gx := make([]float64, n.NumDevices())
					gy := make([]float64, n.NumDevices())
					b.ResetTimer()
					for i := 0; i < b.N; i++ {
						sinkF = ev.Eval(p, gx, gy)
					}
				})
			}
		}
	}
}

// BenchmarkAreaGrad measures the WA-smoothed area term with gradients.
func BenchmarkAreaGrad(b *testing.B) {
	for _, size := range benchSizes {
		b.Run(fmt.Sprintf("n%d", size), func(b *testing.B) {
			n, p := benchCircuit(b, size)
			ae := NewAreaEvaluator(n, 1.0)
			gx := make([]float64, n.NumDevices())
			gy := make([]float64, n.NumDevices())
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				sinkF = ae.Eval(p, gx, gy)
			}
		})
	}
}

// sinkF defeats dead-code elimination of the benchmarked calls.
var sinkF float64
