// Package sched is the placement service's fair job scheduler: the
// replacement for the single bounded FIFO that served placerd's first
// incarnation. Under multi-tenant load a FIFO has two failure modes this
// package is built to remove: one tenant enqueueing a burst starves every
// other tenant behind it, and one huge circuit parks in front of a stream
// of interactive-sized jobs. The scheduler provides:
//
//   - Priority classes. Interactive jobs are always served before batch
//     jobs; within a class, tenants compete fairly. Per-tenant quotas
//     bound how much interactive work one client can pin ahead of the
//     batch tier.
//
//   - Weighted fair queuing across tenants, with per-job weight
//     proportional to the INVERSE of the job's circuit size. Each queued
//     job carries a virtual finish time F = max(V, F_tenant) + cost/w
//     where w = 1/cost, i.e. the virtual service charge grows as cost²:
//     a tenant submitting large circuits advances its virtual clock much
//     faster than one submitting small circuits, so small interactive
//     jobs keep flowing while big batch solves take their fair turns.
//     Dequeue picks the backlogged tenant whose head job has the minimum
//     virtual finish time.
//
//   - Per-tenant quotas with backpressure. A tenant may have at most
//     Config.TenantQuota jobs in flight (queued + running); beyond it,
//     Enqueue fails with a *QuotaError the HTTP layer maps to 429.
//
// Ordering is fully deterministic: virtual times are assigned from
// enqueue order and job costs alone, and ties break on the global
// enqueue sequence number. The same submissions in the same order
// dequeue in the same order on every run — which is what lets the
// fairness properties be pinned by exact-order tests.
package sched

import (
	"errors"
	"fmt"
	"sync"
)

// Priority is a scheduling class. Lower values are served first.
type Priority int

// The two priority classes the service exposes.
const (
	// Interactive is the default class: latency-sensitive submissions
	// (editing loops, UI-driven placements).
	Interactive Priority = iota
	// Batch is throughput work (sweeps, regeneration runs) that yields to
	// interactive jobs.
	Batch
	numPriorities
)

func (p Priority) String() string {
	switch p {
	case Interactive:
		return "interactive"
	case Batch:
		return "batch"
	default:
		return fmt.Sprintf("priority(%d)", int(p))
	}
}

// ParsePriority maps the wire names to a Priority. The empty string is
// Interactive (the default class for untagged submissions).
func ParsePriority(s string) (Priority, error) {
	switch s {
	case "", "interactive":
		return Interactive, nil
	case "batch":
		return Batch, nil
	}
	return 0, fmt.Errorf("sched: unknown priority %q (want interactive or batch)", s)
}

// Item is one schedulable job. Tenant, Priority, Cost, and Payload are
// set by the caller before Enqueue; the scheduling fields are private.
type Item struct {
	Tenant   string
	Priority Priority
	// Cost is the job's size measure (the service uses the device count).
	// Non-positive costs are treated as 1.
	Cost    float64
	Payload any

	seq     int64   // global enqueue sequence, the deterministic tie-break
	vfinish float64 // virtual finish time within the priority class
	queued  bool    // guarded by the owning Queue's mutex
}

// ErrClosed is returned by Enqueue after Close (the drain path).
var ErrClosed = errors.New("sched: queue closed")

// FullError reports that the global queued-job capacity is exhausted.
type FullError struct{ Capacity int }

func (e *FullError) Error() string {
	return fmt.Sprintf("sched: queue full (capacity %d)", e.Capacity)
}

// QuotaError reports that a tenant is at its in-flight quota.
type QuotaError struct {
	Tenant   string
	Limit    int
	InFlight int
}

func (e *QuotaError) Error() string {
	return fmt.Sprintf("sched: tenant %q at quota (%d of %d jobs in flight)", e.Tenant, e.InFlight, e.Limit)
}

// Config sizes a Queue.
type Config struct {
	// Capacity bounds the total number of queued (not yet dequeued) items
	// (default 64).
	Capacity int
	// TenantQuota bounds each tenant's in-flight items — queued plus
	// dequeued-but-not-Done. 0 means unlimited.
	TenantQuota int
}

// tenantState is one tenant's scheduling state. States are kept for the
// process lifetime (tenant-name cardinality is operator-bounded), so
// per-tenant depth gauges report departed tenants as zero rather than
// disappearing.
type tenantState struct {
	name     string
	inflight int                    // queued + running (until Done)
	lastVF   [numPriorities]float64 // virtual finish of the tenant's newest item per class
	q        [numPriorities][]*Item // per-class FIFO (WFQ orders across tenants, not within)
}

// Queue is the fair scheduler. Enqueue never blocks (it fails fast with
// backpressure errors); Pop blocks until an item is available or the
// queue is closed and drained.
type Queue struct {
	cfg Config

	mu      sync.Mutex
	cond    *sync.Cond
	closed  bool
	queued  int
	seq     int64
	vtime   [numPriorities]float64 // per-class virtual clock, advanced on dequeue
	tenants map[string]*tenantState
	dropped int64 // items removed while still queued (cancelations)
}

// New returns a queue with the given bounds.
func New(cfg Config) *Queue {
	if cfg.Capacity <= 0 {
		cfg.Capacity = 64
	}
	q := &Queue{cfg: cfg, tenants: map[string]*tenantState{}}
	q.cond = sync.NewCond(&q.mu)
	return q
}

// Enqueue admits it or fails with backpressure: ErrClosed once draining,
// *FullError at global capacity, *QuotaError at the tenant's in-flight
// bound. On success the item is owned by the queue until Pop or Remove.
func (q *Queue) Enqueue(it *Item) error {
	if it.Priority < 0 || it.Priority >= numPriorities {
		return fmt.Errorf("sched: invalid priority %d", int(it.Priority))
	}
	cost := it.Cost
	if cost <= 0 {
		cost = 1
	}
	q.mu.Lock()
	defer q.mu.Unlock()
	if q.closed {
		return ErrClosed
	}
	if q.queued >= q.cfg.Capacity {
		return &FullError{Capacity: q.cfg.Capacity}
	}
	ts := q.tenants[it.Tenant]
	if ts == nil {
		ts = &tenantState{name: it.Tenant}
		q.tenants[it.Tenant] = ts
	}
	if q.cfg.TenantQuota > 0 && ts.inflight >= q.cfg.TenantQuota {
		return &QuotaError{Tenant: it.Tenant, Limit: q.cfg.TenantQuota, InFlight: ts.inflight}
	}

	// Weighted fair queuing: the job's virtual service charge is
	// cost/weight with weight ∝ 1/cost, i.e. cost². Normalized by a
	// reference cost so typical circuit sizes produce O(cost)-scale
	// clocks (the constant cancels in comparisons; it only keeps the
	// numbers readable in debugging).
	const refCost = 64.0
	charge := cost * cost / refCost
	p := it.Priority
	start := q.vtime[p]
	if ts.lastVF[p] > start {
		start = ts.lastVF[p]
	}
	it.vfinish = start + charge
	ts.lastVF[p] = it.vfinish
	q.seq++
	it.seq = q.seq
	it.queued = true
	ts.q[p] = append(ts.q[p], it)
	ts.inflight++
	q.queued++
	q.cond.Signal()
	return nil
}

// Pop removes and returns the next item by scheduling order: the
// non-empty priority class closest to Interactive, and within it the
// tenant head-of-line item with minimum virtual finish time (ties break
// on enqueue order). It blocks while the queue is empty and open;
// (nil, false) means closed and fully drained. The caller must call
// Done(item.Tenant) once the item's work finishes, to release quota.
func (q *Queue) Pop() (*Item, bool) {
	q.mu.Lock()
	defer q.mu.Unlock()
	for {
		if it := q.popLocked(); it != nil {
			return it, true
		}
		if q.closed {
			return nil, false
		}
		q.cond.Wait()
	}
}

// popLocked implements the scheduling decision. Linear in the number of
// tenants — tenant counts are operator-scale, and a linear scan keeps
// the virtual-time bookkeeping trivially deterministic.
func (q *Queue) popLocked() *Item {
	for p := Priority(0); p < numPriorities; p++ {
		var best *tenantState
		for _, ts := range q.tenants {
			if len(ts.q[p]) == 0 {
				continue
			}
			if best == nil {
				best = ts
				continue
			}
			h, bh := ts.q[p][0], best.q[p][0]
			if h.vfinish < bh.vfinish || (h.vfinish == bh.vfinish && h.seq < bh.seq) {
				best = ts
			}
		}
		if best == nil {
			continue
		}
		it := best.q[p][0]
		best.q[p] = best.q[p][1:]
		it.queued = false
		q.queued--
		if it.vfinish > q.vtime[p] {
			q.vtime[p] = it.vfinish
		}
		return it
	}
	return nil
}

// Remove drops a still-queued item without running it, releasing its
// queue slot and tenant quota, and reports whether it did. False means
// the item was already dequeued (or never enqueued) — the caller's
// running-job cancelation path owns it then, and quota is released by
// its eventual Done.
func (q *Queue) Remove(it *Item) bool {
	q.mu.Lock()
	defer q.mu.Unlock()
	if !it.queued {
		return false
	}
	ts := q.tenants[it.Tenant]
	lst := ts.q[it.Priority]
	for i, cur := range lst {
		if cur == it {
			ts.q[it.Priority] = append(lst[:i], lst[i+1:]...)
			it.queued = false
			ts.inflight--
			q.queued--
			q.dropped++
			return true
		}
	}
	return false
}

// Done releases the tenant quota held by a previously popped item. Call
// exactly once per successful Pop, after the job reaches a terminal
// state.
func (q *Queue) Done(tenant string) {
	q.mu.Lock()
	defer q.mu.Unlock()
	if ts := q.tenants[tenant]; ts != nil && ts.inflight > 0 {
		ts.inflight--
	}
}

// Close stops intake: subsequent Enqueues fail with ErrClosed, and Pop
// keeps returning queued items until empty, then (nil, false). This is
// the graceful-drain contract — accepted work still runs.
func (q *Queue) Close() {
	q.mu.Lock()
	defer q.mu.Unlock()
	q.closed = true
	q.cond.Broadcast()
}

// TenantStat is one tenant's scheduling snapshot.
type TenantStat struct {
	Queued   int `json:"queued"`
	InFlight int `json:"in_flight"`
}

// Stats is a point-in-time snapshot of the queue.
type Stats struct {
	Queued     int                   `json:"queued"`
	ByPriority map[string]int        `json:"by_priority"`
	Tenants    map[string]TenantStat `json:"tenants,omitempty"`
	Dropped    int64                 `json:"dropped"`
	Closed     bool                  `json:"closed"`
}

// Stats snapshots the queue, including every tenant ever seen (so gauges
// report zero rather than vanishing when a tenant's backlog empties).
func (q *Queue) Stats() Stats {
	q.mu.Lock()
	defer q.mu.Unlock()
	st := Stats{
		Queued:     q.queued,
		ByPriority: map[string]int{},
		Dropped:    q.dropped,
		Closed:     q.closed,
	}
	for p := Priority(0); p < numPriorities; p++ {
		n := 0
		for _, ts := range q.tenants {
			n += len(ts.q[p])
		}
		st.ByPriority[p.String()] = n
	}
	if len(q.tenants) > 0 {
		st.Tenants = map[string]TenantStat{}
		for name, ts := range q.tenants {
			depth := 0
			for p := Priority(0); p < numPriorities; p++ {
				depth += len(ts.q[p])
			}
			st.Tenants[name] = TenantStat{Queued: depth, InFlight: ts.inflight}
		}
	}
	return st
}

// Len returns the number of queued items.
func (q *Queue) Len() int {
	q.mu.Lock()
	defer q.mu.Unlock()
	return q.queued
}
