package sched

import (
	"errors"
	"fmt"
	"sync"
	"testing"
	"time"
)

func mustEnqueue(t *testing.T, q *Queue, tenant string, p Priority, cost float64, tag string) *Item {
	t.Helper()
	it := &Item{Tenant: tenant, Priority: p, Cost: cost, Payload: tag}
	if err := q.Enqueue(it); err != nil {
		t.Fatalf("enqueue %s: %v", tag, err)
	}
	return it
}

func popTags(t *testing.T, q *Queue, n int) []string {
	t.Helper()
	out := make([]string, 0, n)
	for i := 0; i < n; i++ {
		it, ok := q.Pop()
		if !ok {
			t.Fatalf("queue closed after %d of %d pops", i, n)
		}
		out = append(out, it.Payload.(string))
	}
	return out
}

func wantOrder(t *testing.T, got, want []string) {
	t.Helper()
	if fmt.Sprint(got) != fmt.Sprint(want) {
		t.Errorf("dequeue order %v, want %v", got, want)
	}
}

// TestFairInterleavingVsFIFO pins the core fairness property: tenant A
// floods the queue first, tenant B arrives after — a FIFO would run all
// of A before any of B, the WFQ interleaves them deterministically.
func TestFairInterleavingVsFIFO(t *testing.T) {
	q := New(Config{Capacity: 16})
	for i := 1; i <= 3; i++ {
		mustEnqueue(t, q, "a", Interactive, 10, fmt.Sprintf("a%d", i))
	}
	for i := 1; i <= 3; i++ {
		mustEnqueue(t, q, "b", Interactive, 10, fmt.Sprintf("b%d", i))
	}
	wantOrder(t, popTags(t, q, 6), []string{"a1", "b1", "a2", "b2", "a3", "b3"})
}

// TestInverseSizeWeighting pins the "weight ∝ inverse circuit size" rule:
// a tenant of small circuits overtakes a tenant of big ones even when the
// big jobs were enqueued first.
func TestInverseSizeWeighting(t *testing.T) {
	q := New(Config{Capacity: 16})
	mustEnqueue(t, q, "big", Interactive, 100, "big1")
	mustEnqueue(t, q, "big", Interactive, 100, "big2")
	for i := 1; i <= 4; i++ {
		mustEnqueue(t, q, "small", Interactive, 10, fmt.Sprintf("s%d", i))
	}
	// big1: vfinish 156.25; small jobs: 1.5625 each, cumulative ≤ 6.25 —
	// all four small jobs clear before the first big one.
	wantOrder(t, popTags(t, q, 6), []string{"s1", "s2", "s3", "s4", "big1", "big2"})
}

// TestPriorityClasses: interactive jobs submitted after a batch backlog
// are still served first.
func TestPriorityClasses(t *testing.T) {
	q := New(Config{Capacity: 16})
	mustEnqueue(t, q, "t", Batch, 10, "batch1")
	mustEnqueue(t, q, "t", Batch, 10, "batch2")
	mustEnqueue(t, q, "u", Interactive, 10, "live1")
	wantOrder(t, popTags(t, q, 3), []string{"live1", "batch1", "batch2"})
}

func TestCapacityBackpressure(t *testing.T) {
	q := New(Config{Capacity: 2})
	mustEnqueue(t, q, "t", Interactive, 1, "j1")
	mustEnqueue(t, q, "t", Interactive, 1, "j2")
	err := q.Enqueue(&Item{Tenant: "t", Priority: Interactive, Cost: 1})
	var full *FullError
	if !errors.As(err, &full) || full.Capacity != 2 {
		t.Fatalf("over capacity: got %v, want *FullError{2}", err)
	}
	// A pop frees the slot.
	q.Pop()
	mustEnqueue(t, q, "t", Interactive, 1, "j3")
}

func TestTenantQuota(t *testing.T) {
	q := New(Config{Capacity: 16, TenantQuota: 2})
	a1 := mustEnqueue(t, q, "a", Interactive, 1, "a1")
	mustEnqueue(t, q, "a", Interactive, 1, "a2")

	err := q.Enqueue(&Item{Tenant: "a", Priority: Interactive, Cost: 1})
	var quota *QuotaError
	if !errors.As(err, &quota) || quota.Tenant != "a" || quota.Limit != 2 {
		t.Fatalf("over quota: got %v, want *QuotaError{a,2}", err)
	}
	// Another tenant is unaffected.
	mustEnqueue(t, q, "b", Interactive, 1, "b1")

	// Popping does NOT release quota (the job is now running)...
	it, _ := q.Pop()
	if it != a1 {
		t.Fatalf("popped %v, want a1", it.Payload)
	}
	if err := q.Enqueue(&Item{Tenant: "a", Priority: Interactive, Cost: 1}); !errors.As(err, &quota) {
		t.Fatalf("quota released by pop: %v", err)
	}
	// ...Done does.
	q.Done("a")
	mustEnqueue(t, q, "a", Interactive, 1, "a3")
}

// TestRemoveReleasesQuotaAndNeverRuns: removing a queued item frees its
// quota immediately and it is never handed to Pop.
func TestRemoveReleasesQuotaAndNeverRuns(t *testing.T) {
	q := New(Config{Capacity: 16, TenantQuota: 1})
	it := mustEnqueue(t, q, "a", Interactive, 1, "a1")
	if !q.Remove(it) {
		t.Fatal("Remove of queued item reported false")
	}
	if q.Remove(it) {
		t.Fatal("second Remove reported true")
	}
	// Quota free again immediately.
	a2 := mustEnqueue(t, q, "a", Interactive, 1, "a2")
	got, ok := q.Pop()
	if !ok || got != a2 {
		t.Fatalf("popped %v, want a2 (removed item must never surface)", got.Payload)
	}
	st := q.Stats()
	if st.Dropped != 1 {
		t.Errorf("dropped %d, want 1", st.Dropped)
	}
	// A popped item cannot be removed.
	if q.Remove(a2) {
		t.Error("Remove of a popped item reported true")
	}
}

func TestCloseDrains(t *testing.T) {
	q := New(Config{Capacity: 8})
	mustEnqueue(t, q, "t", Interactive, 1, "j1")
	mustEnqueue(t, q, "t", Interactive, 1, "j2")
	q.Close()
	if err := q.Enqueue(&Item{Tenant: "t", Priority: Interactive, Cost: 1}); !errors.Is(err, ErrClosed) {
		t.Fatalf("enqueue after close: %v, want ErrClosed", err)
	}
	wantOrder(t, popTags(t, q, 2), []string{"j1", "j2"})
	if it, ok := q.Pop(); ok {
		t.Fatalf("pop on drained closed queue returned %v", it.Payload)
	}
}

// TestPopBlocksUntilEnqueue: Pop parks while the queue is open and empty,
// and wakes on the next enqueue.
func TestPopBlocksUntilEnqueue(t *testing.T) {
	q := New(Config{Capacity: 4})
	got := make(chan string, 1)
	go func() {
		it, ok := q.Pop()
		if ok {
			got <- it.Payload.(string)
		}
	}()
	select {
	case tag := <-got:
		t.Fatalf("pop returned %q from an empty queue", tag)
	case <-time.After(20 * time.Millisecond):
	}
	mustEnqueue(t, q, "t", Interactive, 1, "wake")
	select {
	case tag := <-got:
		if tag != "wake" {
			t.Fatalf("popped %q", tag)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("pop never woke after enqueue")
	}
}

func TestStats(t *testing.T) {
	q := New(Config{Capacity: 8, TenantQuota: 4})
	mustEnqueue(t, q, "a", Interactive, 1, "a1")
	mustEnqueue(t, q, "a", Batch, 1, "a2")
	mustEnqueue(t, q, "b", Interactive, 1, "b1")
	st := q.Stats()
	if st.Queued != 3 || st.ByPriority["interactive"] != 2 || st.ByPriority["batch"] != 1 {
		t.Errorf("stats %+v", st)
	}
	if st.Tenants["a"] != (TenantStat{Queued: 2, InFlight: 2}) {
		t.Errorf("tenant a stat %+v", st.Tenants["a"])
	}
	q.Pop()
	q.Pop()
	q.Pop()
	st = q.Stats()
	if st.Queued != 0 || st.Tenants["a"].InFlight != 2 || st.Tenants["a"].Queued != 0 {
		t.Errorf("post-pop stats %+v", st)
	}
	q.Done("a")
	if got := q.Stats().Tenants["a"].InFlight; got != 1 {
		t.Errorf("in-flight after Done = %d, want 1", got)
	}
}

func TestInvalidPriority(t *testing.T) {
	q := New(Config{Capacity: 4})
	if err := q.Enqueue(&Item{Tenant: "t", Priority: Priority(9)}); err == nil {
		t.Error("invalid priority accepted")
	}
	if _, err := ParsePriority("urgent"); err == nil {
		t.Error("unknown priority name accepted")
	}
	for s, want := range map[string]Priority{"": Interactive, "interactive": Interactive, "batch": Batch} {
		got, err := ParsePriority(s)
		if err != nil || got != want {
			t.Errorf("ParsePriority(%q) = %v, %v", s, got, err)
		}
	}
}

// TestConcurrentProducersConsumers is the race-detector workout: many
// producers, many consumers, with quota bookkeeping throughout.
func TestConcurrentProducersConsumers(t *testing.T) {
	q := New(Config{Capacity: 256, TenantQuota: 64})
	const producers, perProducer = 4, 32
	var wg sync.WaitGroup
	for p := 0; p < producers; p++ {
		wg.Add(1)
		go func(p int) {
			defer wg.Done()
			tenant := fmt.Sprintf("t%d", p%2)
			for i := 0; i < perProducer; i++ {
				it := &Item{Tenant: tenant, Priority: Priority(i % 2), Cost: float64(1 + i%7), Payload: i}
				for q.Enqueue(it) != nil {
					time.Sleep(time.Millisecond) // quota/capacity backoff
				}
			}
		}(p)
	}
	var consumed sync.WaitGroup
	var count int64
	var countMu sync.Mutex
	for c := 0; c < 3; c++ {
		consumed.Add(1)
		go func() {
			defer consumed.Done()
			for {
				it, ok := q.Pop()
				if !ok {
					return
				}
				q.Done(it.Tenant)
				countMu.Lock()
				count++
				countMu.Unlock()
			}
		}()
	}
	wg.Wait()
	q.Close()
	consumed.Wait()
	if count != producers*perProducer {
		t.Errorf("consumed %d items, want %d", count, producers*perProducer)
	}
}
