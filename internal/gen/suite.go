package gen

import (
	"fmt"
	"sort"
	"strconv"
	"strings"
)

// Case is one named instance of a benchmark suite.
type Case struct {
	Name   string
	Params Params
}

// suiteSizes maps each named suite to its instance sizes (target device
// counts). "quick" is the CI smoke suite; "std" is the default regression
// suite; "scale" probes the asymptotic regime the hand-built circuits
// cannot reach.
var suiteSizes = map[string][]int{
	"quick": {12, 24, 48},
	"std":   {50, 150, 400, 1000},
	"scale": {1000, 2500, 5000},
}

// SuiteNames lists the named suites in deterministic order.
func SuiteNames() []string {
	names := make([]string, 0, len(suiteSizes))
	for k := range suiteSizes {
		names = append(names, k)
	}
	sort.Strings(names)
	return names
}

// Suite builds the named suite with instance seeds derived from seed. Each
// case's parameters otherwise use the package defaults, so a (suite, seed)
// pair fully determines every netlist.
func Suite(name string, seed int64) ([]Case, error) {
	sizes, ok := suiteSizes[name]
	if !ok {
		return nil, fmt.Errorf("gen: unknown suite %q (want one of %s)",
			name, strings.Join(SuiteNames(), ", "))
	}
	return Sizes(sizes, seed), nil
}

// Sizes builds one case per target device count, with per-case seeds
// derived from seed so different sizes are not just prefixes of each other.
func Sizes(sizes []int, seed int64) []Case {
	out := make([]Case, len(sizes))
	for i, sz := range sizes {
		p := Params{Seed: seed + int64(sz), Devices: sz}
		p.Name = fmt.Sprintf("synth-%d", sz)
		out[i] = Case{Name: p.Name, Params: p}
	}
	return out
}

// ParseSizes parses a comma-separated device-count list ("30,100,300")
// into suite sizes.
func ParseSizes(s string) ([]int, error) {
	var sizes []int
	for _, f := range strings.Split(s, ",") {
		f = strings.TrimSpace(f)
		if f == "" {
			continue
		}
		v, err := strconv.Atoi(f)
		if err != nil || v < 4 {
			return nil, fmt.Errorf("gen: bad size %q (want integers >= 4)", f)
		}
		sizes = append(sizes, v)
	}
	if len(sizes) == 0 {
		return nil, fmt.Errorf("gen: empty size list %q", s)
	}
	return sizes, nil
}

// ParseSpec parses the compact generator spec accepted by the CLIs'
// -circuit flags: "gen:<devices>" or "gen:<devices>@<seed>" (seed defaults
// to 1), e.g. "gen:200@7".
func ParseSpec(spec string) (Params, error) {
	body, ok := strings.CutPrefix(spec, "gen:")
	if !ok {
		return Params{}, fmt.Errorf("gen: spec %q does not start with \"gen:\"", spec)
	}
	devPart, seedPart, hasSeed := strings.Cut(body, "@")
	devices, err := strconv.Atoi(devPart)
	if err != nil || devices < 4 {
		return Params{}, fmt.Errorf("gen: spec %q: bad device count %q (want integer >= 4)", spec, devPart)
	}
	p := Params{Seed: 1, Devices: devices}
	if hasSeed {
		seed, err := strconv.ParseInt(seedPart, 10, 64)
		if err != nil {
			return Params{}, fmt.Errorf("gen: spec %q: bad seed %q", spec, seedPart)
		}
		p.Seed = seed
	}
	return p, nil
}

// IsSpec reports whether s looks like a generator spec ("gen:...").
func IsSpec(s string) bool { return strings.HasPrefix(s, "gen:") }
