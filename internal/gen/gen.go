// Package gen is a deterministic, seed-parameterized synthetic analog
// netlist generator. It builds placement problems from the circuit families
// the paper's benchmarks are made of — differential pairs with symmetry
// groups, current-mirror arrays with alignment and ordering constraints,
// and cascode/OTA tiles — and stitches the tiles into a fanout-bounded
// signal hierarchy with shared bias and local supply nets, scaling from ~10
// to ~5,000 devices. The paper's own evaluation stops at a few dozen
// hand-built devices; these instances exercise the scaling regime that the
// hand-built set cannot.
//
// Generation is fully deterministic: the same Params always produce the
// same netlist, down to byte-identical circuit.WriteJSON output, so a
// generated instance can serve as a fixed regression benchmark without
// being checked in.
package gen

import (
	"fmt"
	"math/rand"

	"repro/internal/circuit"
	"repro/internal/geom"
)

// Params configures one synthetic instance. The zero value of every knob
// selects the documented default; only Devices is required.
type Params struct {
	// Seed drives every random choice. Equal seeds (with equal knobs)
	// yield byte-identical netlists.
	Seed int64

	// Devices is the target device count (minimum 4). Generation adds
	// whole tiles until the count is reached, so the realized count may
	// exceed the target by up to one tile (≤ 11 devices).
	Devices int

	// SymDensity is the fraction of tiles drawn from the symmetric
	// families (differential pair, cascode OTA) versus the asymmetric ones
	// (current-mirror array, passive cluster). Default 0.6. Set negative
	// for zero symmetry constraints.
	SymDensity float64

	// Fanout is the branching factor of the signal hierarchy: each tile's
	// output net drives the inputs of up to Fanout child tiles. Default 2.
	Fanout int

	// BiasFanout is the number of consecutive tiles sharing one bias-
	// distribution net. Default 4.
	BiasFanout int

	// AspectSpread is the half-width of the multiplicative jitter applied
	// to every device footprint (W and H independently), in relative
	// units. Default 0.25; set negative for perfectly uniform devices.
	AspectSpread float64

	// Name overrides the netlist name. Default "synth-<Devices>-s<Seed>".
	Name string
}

// withDefaults resolves zero-valued knobs.
func (p Params) withDefaults() Params {
	if p.SymDensity == 0 {
		p.SymDensity = 0.6
	} else if p.SymDensity < 0 {
		p.SymDensity = 0
	}
	if p.Fanout <= 0 {
		p.Fanout = 2
	}
	if p.BiasFanout <= 0 {
		p.BiasFanout = 4
	}
	if p.AspectSpread == 0 {
		p.AspectSpread = 0.25
	} else if p.AspectSpread < 0 {
		p.AspectSpread = 0
	}
	if p.Name == "" {
		p.Name = fmt.Sprintf("synth-%d-s%d", p.Devices, p.Seed)
	}
	return p
}

// tilesPerSupply is the number of tiles sharing one local vdd/gnd pair, so
// supply nets stay bounded (a few dozen pins) instead of spanning the whole
// instance.
const tilesPerSupply = 12

// builder accumulates the netlist under construction.
type builder struct {
	p   Params
	rng *rand.Rand
	n   *circuit.Netlist

	netIdx map[string]int

	// outNets[j] is the output net of tile j (signal hierarchy).
	outNets []int
	// biasLegs holds unconnected mirror-array leg drains available to
	// source bias nets.
	biasLegs []circuit.PinRef
	tile     int // current tile index
}

// Generate builds a synthetic netlist from p. The result always passes
// circuit.Validate; any failure is a generator bug and is returned as an
// error rather than a panic so callers can surface it.
func Generate(p Params) (*circuit.Netlist, error) {
	if p.Devices < 4 {
		return nil, fmt.Errorf("gen: Devices = %d, need at least 4", p.Devices)
	}
	p = p.withDefaults()
	b := &builder{
		p:      p,
		rng:    rand.New(rand.NewSource(p.Seed)),
		n:      &circuit.Netlist{Name: p.Name},
		netIdx: map[string]int{},
	}
	for len(b.n.Devices) < p.Devices {
		b.addTile()
	}
	if err := b.n.Validate(); err != nil {
		return nil, fmt.Errorf("gen: generated netlist invalid: %w", err)
	}
	return b.n, nil
}

// MustGenerate is Generate panicking on error, for fixed-parameter callers
// (suites, tests, benchmarks) where failure is a programming error.
func MustGenerate(p Params) *circuit.Netlist {
	n, err := Generate(p)
	if err != nil {
		panic(err)
	}
	return n
}

// addTile appends one tile of a family chosen by SymDensity and wires it
// into the signal/bias/supply hierarchy.
func (b *builder) addTile() {
	j := b.tile
	b.tile++
	var out int
	if b.rng.Float64() < b.p.SymDensity {
		if b.rng.Float64() < 0.5 {
			out = b.diffPair(j)
		} else {
			out = b.cascodeOTA(j)
		}
	} else {
		if b.rng.Float64() < 0.6 {
			out = b.mirrorArray(j)
		} else {
			out = b.passiveCluster(j)
		}
	}
	b.outNets = append(b.outNets, out)
}

// net returns (creating if needed) the index of the named net.
func (b *builder) net(name string) int {
	if e, ok := b.netIdx[name]; ok {
		return e
	}
	b.n.Nets = append(b.n.Nets, circuit.Net{Name: name})
	e := len(b.n.Nets) - 1
	b.netIdx[name] = e
	return e
}

// connect appends pins to the named net and returns its index.
func (b *builder) connect(name string, pins ...circuit.PinRef) int {
	e := b.net(name)
	b.n.Nets[e].Pins = append(b.n.Nets[e].Pins, pins...)
	return e
}

// dims draws a jittered footprint from a base size, quantized to quarter
// grid units so serialized sizes are short, exact decimals.
func (b *builder) dims(w, h float64) (float64, float64) {
	s := b.p.AspectSpread
	jw := 1 + s*(2*b.rng.Float64()-1)
	jh := 1 + s*(2*b.rng.Float64()-1)
	q := func(v float64) float64 {
		v = float64(int(v*4+0.5)) / 4
		if v < 1 {
			v = 1
		}
		return v
	}
	return q(w * jw), q(h * jh)
}

// mos appends a transistor with gate/source/drain pins (same pin template
// as the hand-built benchmark circuits).
func (b *builder) mos(name string, ty circuit.DeviceType, w, h float64) int {
	b.n.Devices = append(b.n.Devices, circuit.Device{
		Name: name, Type: ty, W: w, H: h,
		Pins: []circuit.Pin{
			{Name: "g", Offset: geom.Point{X: 0.25 * w, Y: 0.5 * h}},
			{Name: "s", Offset: geom.Point{X: 0.5 * w, Y: 0.25 * h}},
			{Name: "d", Offset: geom.Point{X: 0.75 * w, Y: 0.75 * h}},
		},
	})
	return len(b.n.Devices) - 1
}

// twoPin appends a capacitor or resistor with left/right terminals.
func (b *builder) twoPin(name string, ty circuit.DeviceType, w, h float64) int {
	b.n.Devices = append(b.n.Devices, circuit.Device{
		Name: name, Type: ty, W: w, H: h,
		Pins: []circuit.Pin{
			{Name: "p", Offset: geom.Point{X: 0.25 * w, Y: 0.5 * h}},
			{Name: "n", Offset: geom.Point{X: 0.75 * w, Y: 0.5 * h}},
		},
	})
	return len(b.n.Devices) - 1
}

// pin builds a PinRef by pin name.
func (b *builder) pin(dev int, pinName string) circuit.PinRef {
	d := &b.n.Devices[dev]
	for pi := range d.Pins {
		if d.Pins[pi].Name == pinName {
			return circuit.PinRef{Device: dev, Pin: pi}
		}
	}
	panic(fmt.Sprintf("gen: device %s has no pin %q", d.Name, pinName))
}

// inNet returns the net driving tile j's input: the output net of its
// parent in the Fanout-ary signal tree, or the primary input for the root.
func (b *builder) inNet(j int) int {
	if j == 0 {
		return b.net("in0")
	}
	parent := (j - 1) / b.p.Fanout
	return b.outNets[parent]
}

// biasNet returns tile j's bias-distribution net. Every BiasFanout
// consecutive tiles share one; each new bias net is sourced by an available
// mirror-array leg when one exists.
func (b *builder) biasNet(j int) int {
	name := fmt.Sprintf("bias%d", j/b.p.BiasFanout)
	if _, ok := b.netIdx[name]; !ok && len(b.biasLegs) > 0 {
		leg := b.biasLegs[0]
		b.biasLegs = b.biasLegs[1:]
		return b.connect(name, leg)
	}
	return b.net(name)
}

// supplyNames returns tile j's local (vdd, gnd) net names. Supply nets are
// created lazily by the first connect() so an all-NMOS block never leaves
// an empty vdd net behind.
func supplyNames(j int) (string, string) {
	blk := j / tilesPerSupply
	return fmt.Sprintf("vdd%d", blk), fmt.Sprintf("gnd%d", blk)
}

// diffPair emits a 5-device differential pair: matched NMOS input pair,
// diode-connected PMOS mirror load, NMOS tail source; one symmetry group
// with two pairs and a self-symmetric tail. Returns the tile's output net.
func (b *builder) diffPair(j int) int {
	pre := fmt.Sprintf("t%d_", j)
	wIn, hIn := b.dims(6, 4)
	wLd, hLd := b.dims(5, 4)
	wTl, hTl := b.dims(8, 4)
	m1 := b.mos(pre+"M1", circuit.NMOS, wIn, hIn)
	m2 := b.mos(pre+"M2", circuit.NMOS, wIn, hIn)
	l1 := b.mos(pre+"ML1", circuit.PMOS, wLd, hLd)
	l2 := b.mos(pre+"ML2", circuit.PMOS, wLd, hLd)
	mt := b.mos(pre+"MT", circuit.NMOS, wTl, hTl)

	in := b.inNet(j)
	b.n.Nets[in].Pins = append(b.n.Nets[in].Pins, b.pin(m1, "g"))
	out := b.connect(fmt.Sprintf("sig%d", j), b.pin(m2, "d"), b.pin(l2, "d"))
	// Mirror node: M1/L1 drains plus both load gates (diode connection).
	b.connect(pre+"mir", b.pin(m1, "d"), b.pin(l1, "d"), b.pin(l1, "g"), b.pin(l2, "g"))
	b.connect(pre+"tail", b.pin(m1, "s"), b.pin(m2, "s"), b.pin(mt, "d"))
	// Second input closes a local feedback loop so the pair stays
	// connected even at the hierarchy's leaves.
	b.n.Nets[out].Pins = append(b.n.Nets[out].Pins, b.pin(m2, "g"))
	bias := b.biasNet(j)
	b.n.Nets[bias].Pins = append(b.n.Nets[bias].Pins, b.pin(mt, "g"))
	vdd, gnd := supplyNames(j)
	b.connect(vdd, b.pin(l1, "s"), b.pin(l2, "s"))
	b.connect(gnd, b.pin(mt, "s"))

	b.n.SymGroups = append(b.n.SymGroups, circuit.SymmetryGroup{
		Pairs: [][2]int{{m1, m2}, {l1, l2}},
		Self:  []int{mt},
	})
	return out
}

// cascodeOTA emits an 11-device telescopic OTA tile: input pair, cascode
// pair, mirror load pair, tail, and a matched compensation-capacitor pair;
// one symmetry group with four pairs and a self-symmetric tail.
func (b *builder) cascodeOTA(j int) int {
	pre := fmt.Sprintf("t%d_", j)
	wIn, hIn := b.dims(6, 4)
	wCs, hCs := b.dims(6, 3)
	wLd, hLd := b.dims(5, 4)
	wTl, hTl := b.dims(8, 4)
	wC, hC := b.dims(10, 10)
	m1 := b.mos(pre+"M1", circuit.NMOS, wIn, hIn)
	m2 := b.mos(pre+"M2", circuit.NMOS, wIn, hIn)
	c1 := b.mos(pre+"MC1", circuit.NMOS, wCs, hCs)
	c2 := b.mos(pre+"MC2", circuit.NMOS, wCs, hCs)
	l1 := b.mos(pre+"ML1", circuit.PMOS, wLd, hLd)
	l2 := b.mos(pre+"ML2", circuit.PMOS, wLd, hLd)
	mt := b.mos(pre+"MT", circuit.NMOS, wTl, hTl)
	cc1 := b.twoPin(pre+"C1", circuit.Cap, wC, hC)
	cc2 := b.twoPin(pre+"C2", circuit.Cap, wC, hC)

	in := b.inNet(j)
	b.n.Nets[in].Pins = append(b.n.Nets[in].Pins, b.pin(m1, "g"))
	out := b.connect(fmt.Sprintf("sig%d", j), b.pin(c2, "d"), b.pin(l2, "d"), b.pin(cc2, "p"))
	b.connect(pre+"mir", b.pin(c1, "d"), b.pin(l1, "d"), b.pin(l1, "g"), b.pin(l2, "g"), b.pin(cc1, "p"))
	b.connect(pre+"x1", b.pin(m1, "d"), b.pin(c1, "s"))
	b.connect(pre+"x2", b.pin(m2, "d"), b.pin(c2, "s"))
	b.connect(pre+"tail", b.pin(m1, "s"), b.pin(m2, "s"), b.pin(mt, "d"))
	b.n.Nets[out].Pins = append(b.n.Nets[out].Pins, b.pin(m2, "g"))
	bias := b.biasNet(j)
	b.n.Nets[bias].Pins = append(b.n.Nets[bias].Pins, b.pin(mt, "g"), b.pin(c1, "g"), b.pin(c2, "g"))
	vdd, gnd := supplyNames(j)
	b.connect(vdd, b.pin(l1, "s"), b.pin(l2, "s"))
	b.connect(gnd, b.pin(mt, "s"), b.pin(cc1, "n"), b.pin(cc2, "n"))

	b.n.SymGroups = append(b.n.SymGroups, circuit.SymmetryGroup{
		Pairs: [][2]int{{m1, m2}, {c1, c2}, {l1, l2}, {cc1, cc2}},
		Self:  []int{mt},
	})
	return out
}

// mirrorArray emits a 1+k current-mirror array (k in 2..5): a diode-
// connected reference plus k output legs, bottom-aligned and strictly
// ordered left to right. Leg drains are banked as bias sources for later
// tiles; the first leg doubles as the tile's output.
func (b *builder) mirrorArray(j int) int {
	pre := fmt.Sprintf("t%d_", j)
	k := 2 + b.rng.Intn(4)
	w, h := b.dims(5, 4)
	ref := b.mos(pre+"MREF", circuit.NMOS, w, h)
	legs := make([]int, k)
	for i := range legs {
		// Legs share the reference footprint: mirrors match by layout.
		legs[i] = b.mos(fmt.Sprintf("%sML%d", pre, i+1), circuit.NMOS, w, h)
	}

	// The diode-connected reference node is the tile input: the parent's
	// output current feeds ref.d/ref.g and every leg gate on one net.
	in := b.inNet(j)
	b.n.Nets[in].Pins = append(b.n.Nets[in].Pins, b.pin(ref, "d"), b.pin(ref, "g"))
	_, gnd := supplyNames(j)
	b.connect(gnd, b.pin(ref, "s"))
	for _, leg := range legs {
		b.n.Nets[in].Pins = append(b.n.Nets[in].Pins, b.pin(leg, "g"))
		b.connect(gnd, b.pin(leg, "s"))
	}
	out := b.connect(fmt.Sprintf("sig%d", j), b.pin(legs[0], "d"))
	for _, leg := range legs[1:] {
		b.biasLegs = append(b.biasLegs, b.pin(leg, "d"))
	}

	order := append([]int{ref}, legs...)
	b.n.HOrders = append(b.n.HOrders, order)
	for i := 0; i+1 < len(order); i++ {
		b.n.BottomAlign = append(b.n.BottomAlign, [2]int{order[i], order[i+1]})
	}
	return out
}

// passiveCluster emits a 2..4 element RC ladder between the tile input and
// local ground, with a vertical center-alignment chain.
func (b *builder) passiveCluster(j int) int {
	pre := fmt.Sprintf("t%d_", j)
	k := 2 + b.rng.Intn(3)
	devs := make([]int, k)
	for i := range devs {
		if b.rng.Float64() < 0.5 {
			w, h := b.dims(10, 10)
			devs[i] = b.twoPin(fmt.Sprintf("%sC%d", pre, i+1), circuit.Cap, w, h)
		} else {
			w, h := b.dims(3, 8)
			devs[i] = b.twoPin(fmt.Sprintf("%sR%d", pre, i+1), circuit.Res, w, h)
		}
	}

	in := b.inNet(j)
	b.n.Nets[in].Pins = append(b.n.Nets[in].Pins, b.pin(devs[0], "p"))
	var out int
	for i := 0; i < k; i++ {
		if i == k-1 {
			out = b.connect(fmt.Sprintf("sig%d", j), b.pin(devs[i], "n"))
		} else {
			b.connect(fmt.Sprintf("%sn%d", pre, i+1), b.pin(devs[i], "n"), b.pin(devs[i+1], "p"))
		}
	}
	for i := 0; i+1 < len(devs); i++ {
		b.n.VCenterAlign = append(b.n.VCenterAlign, [2]int{devs[i], devs[i+1]})
	}
	return out
}

// Edited derives the parameters of a grown variant of p for incremental
// (ECO) experiments: the same generator knobs and seed with `extra` more
// devices and "-eco" appended to the name. Because generation consumes the
// seeded RNG one tile at a time, the edited netlist is device-prefix-
// identical to the original — the first len(original) devices, their
// geometry, and their local connectivity are unchanged, and the growth
// appears as appended tiles. That makes it a deterministic stand-in for a
// designer edit when benchmarking warm-start re-placement.
func Edited(p Params, extra int) Params {
	if extra <= 0 {
		extra = 12
	}
	p = p.withDefaults() // freeze the name before the device count moves
	p.Name += "-eco"
	p.Devices += extra
	return p
}
