package gen_test

import (
	"bytes"
	"testing"

	"repro/internal/gen"
	"repro/internal/netio"
)

// TestDeterminism: the same parameters must serialize to byte-identical
// JSON, and a different seed must actually change the instance.
func TestDeterminism(t *testing.T) {
	for _, devices := range []int{10, 60, 300} {
		p := gen.Params{Seed: 7, Devices: devices}
		var a, b bytes.Buffer
		if err := gen.MustGenerate(p).WriteJSON(&a); err != nil {
			t.Fatal(err)
		}
		if err := gen.MustGenerate(p).WriteJSON(&b); err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(a.Bytes(), b.Bytes()) {
			t.Errorf("devices=%d: same seed produced different JSON", devices)
		}
		var c bytes.Buffer
		q := p
		q.Seed = 8
		if err := gen.MustGenerate(q).WriteJSON(&c); err != nil {
			t.Fatal(err)
		}
		if bytes.Equal(a.Bytes(), c.Bytes()) {
			t.Errorf("devices=%d: different seeds produced identical JSON", devices)
		}
	}
}

// TestRoundTrip: generated netlists must survive the shared netio loading
// path (parse + front-loaded validation) for every suite and a spread of
// sizes, and the realized device count must land at or just above target.
func TestRoundTrip(t *testing.T) {
	for _, suite := range gen.SuiteNames() {
		cases, err := gen.Suite(suite, 11)
		if err != nil {
			t.Fatal(err)
		}
		for _, c := range cases {
			if c.Params.Devices > 1200 {
				continue // keep the test fast; scale sizes run via cmd/bench
			}
			n := gen.MustGenerate(c.Params)
			if got := n.NumDevices(); got < c.Params.Devices || got > c.Params.Devices+11 {
				t.Errorf("%s/%s: %d devices for target %d", suite, c.Name, got, c.Params.Devices)
			}
			var buf bytes.Buffer
			if err := n.WriteJSON(&buf); err != nil {
				t.Fatal(err)
			}
			m, err := netio.DecodeBytes(buf.Bytes(), c.Name)
			if err != nil {
				t.Fatalf("%s/%s: reloading generated netlist: %v", suite, c.Name, err)
			}
			if m.NumDevices() != n.NumDevices() || len(m.Nets) != len(n.Nets) {
				t.Errorf("%s/%s: round trip changed counts", suite, c.Name)
			}
		}
	}
}

// TestSymmetryGroups: every symmetry group must be well-formed — non-empty,
// distinct matched-footprint pairs, no device in two groups (Validate
// enforces all of this, so here we check the generator actually emits
// groups when asked and none when symmetry density is zero).
func TestSymmetryGroups(t *testing.T) {
	n := gen.MustGenerate(gen.Params{Seed: 3, Devices: 200})
	if len(n.SymGroups) == 0 {
		t.Fatal("default SymDensity produced no symmetry groups")
	}
	for gi := range n.SymGroups {
		g := &n.SymGroups[gi]
		if len(g.Pairs) == 0 {
			t.Errorf("group %d has no mirrored pairs", gi)
		}
		for _, pr := range g.Pairs {
			a, b := &n.Devices[pr[0]], &n.Devices[pr[1]]
			if a.W != b.W || a.H != b.H {
				t.Errorf("group %d pair (%s,%s): footprints %gx%g vs %gx%g",
					gi, a.Name, b.Name, a.W, a.H, b.W, b.H)
			}
		}
	}

	asym := gen.MustGenerate(gen.Params{Seed: 3, Devices: 200, SymDensity: -1})
	if len(asym.SymGroups) != 0 {
		t.Errorf("SymDensity<0 still produced %d symmetry groups", len(asym.SymGroups))
	}
	// The asymmetric families carry the alignment/ordering constraints.
	if len(asym.HOrders) == 0 || len(asym.BottomAlign) == 0 {
		t.Error("asymmetric instance missing ordering/alignment constraints")
	}
}

// TestKnobs: fanout and aspect-spread knobs must have their documented
// effect.
func TestKnobs(t *testing.T) {
	uniform := gen.MustGenerate(gen.Params{Seed: 5, Devices: 100, AspectSpread: -1})
	seen := map[[2]float64]bool{}
	for i := range uniform.Devices {
		d := &uniform.Devices[i]
		if d.Type.String() == "nmos" && len(d.Pins) == 3 {
			seen[[2]float64{d.W, d.H}] = true
		}
	}
	spread := gen.MustGenerate(gen.Params{Seed: 5, Devices: 100, AspectSpread: 0.4})
	seenSpread := map[[2]float64]bool{}
	for i := range spread.Devices {
		d := &spread.Devices[i]
		seenSpread[[2]float64{d.W, d.H}] = true
	}
	if len(seenSpread) <= len(seen) {
		t.Errorf("aspect spread had no effect: %d distinct footprints vs %d", len(seenSpread), len(seen))
	}

	// Larger fanout widens the signal tree: the root tile's output net
	// drives more child inputs.
	sig0Pins := func(n int) int {
		nl := gen.MustGenerate(gen.Params{Seed: 5, Devices: 300, Fanout: n})
		for e := range nl.Nets {
			if nl.Nets[e].Name == "sig0" {
				return len(nl.Nets[e].Pins)
			}
		}
		t.Fatal("no sig0 net")
		return 0
	}
	if wide, narrow := sig0Pins(6), sig0Pins(1); wide <= narrow {
		t.Errorf("fanout knob had no effect: sig0 has %d pins at fanout 6 vs %d at fanout 1", wide, narrow)
	}
}

// TestParseSpec covers the CLI generator-spec syntax.
func TestParseSpec(t *testing.T) {
	p, err := gen.ParseSpec("gen:200@7")
	if err != nil || p.Devices != 200 || p.Seed != 7 {
		t.Fatalf("gen:200@7 -> %+v, %v", p, err)
	}
	p, err = gen.ParseSpec("gen:64")
	if err != nil || p.Devices != 64 || p.Seed != 1 {
		t.Fatalf("gen:64 -> %+v, %v", p, err)
	}
	for _, bad := range []string{"gen:", "gen:3", "gen:abc", "gen:50@x", "foo:50"} {
		if _, err := gen.ParseSpec(bad); err == nil {
			t.Errorf("gen.ParseSpec(%q) accepted", bad)
		}
	}
	if !gen.IsSpec("gen:10") || gen.IsSpec("CC-OTA") {
		t.Error("IsSpec misclassified")
	}
}

// TestEditedPrefixStability: gen.Edited must grow the netlist while
// keeping the original devices as a byte-identical prefix — names,
// geometry, pins, and the membership of their low-fanout nets — which is
// what makes it a usable deterministic ECO perturbation.
func TestEditedPrefixStability(t *testing.T) {
	p := gen.Params{Seed: 5, Devices: 80}
	base := gen.MustGenerate(p)
	ep := gen.Edited(p, 12)
	if ep.Devices != p.Devices+12 {
		t.Fatalf("Edited devices = %d, want %d", ep.Devices, p.Devices+12)
	}
	if ep.Name != base.Name+"-eco" {
		t.Fatalf("Edited name = %q, want %q", ep.Name, base.Name+"-eco")
	}
	edited := gen.MustGenerate(ep)
	if len(edited.Devices) <= len(base.Devices) {
		t.Fatalf("edit did not grow: %d -> %d", len(base.Devices), len(edited.Devices))
	}
	for i := range base.Devices {
		bd, ed := &base.Devices[i], &edited.Devices[i]
		if bd.Name != ed.Name || bd.Type != ed.Type || bd.W != ed.W || bd.H != ed.H || len(bd.Pins) != len(ed.Pins) {
			t.Fatalf("device %d not prefix-stable: %+v vs %+v", i, bd, ed)
		}
	}
	// Default extra.
	if q := gen.Edited(p, 0); q.Devices != p.Devices+12 {
		t.Fatalf("default extra: devices = %d, want %d", q.Devices, p.Devices+12)
	}
}
