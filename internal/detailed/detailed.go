// Package detailed implements legalization and detailed placement for the
// analytical analog placers.
//
// Two back-ends are provided, matching the paper's comparison in Table IV:
//
//   - ModeIntegratedILP is ePlace-A's single-stage integrated area +
//     wirelength minimization (Eq. 4a–4j), with hard symmetry, alignment and
//     ordering constraints and binary device-flipping variables, solved by
//     LP-based branch and bound.
//
//   - ModeTwoStageLP is the previous analytical work [11]: an area
//     compaction stage followed by a wirelength-minimization stage, both
//     plain LPs, without device flipping.
//
// Both back-ends share the constraint-graph extraction: each device pair is
// assigned a horizontal or vertical separation from the global-placement
// geometry (Fig. 4), and the resulting DAGs are transitively reduced.
package detailed

import (
	"context"
	"math"
	"strconv"

	"repro/internal/circuit"
	"repro/internal/ilp"
	"repro/internal/lp"
	"repro/internal/obs"
)

// Mode selects the detailed-placement back-end.
type Mode int

// Back-ends.
const (
	// ModeIntegratedILP is ePlace-A's integrated ILP detailed placement.
	ModeIntegratedILP Mode = iota
	// ModeTwoStageLP is the two-stage LP detailed placement of [11].
	ModeTwoStageLP
)

func (m Mode) String() string {
	if m == ModeIntegratedILP {
		return "integrated-ilp"
	}
	return "two-stage-lp"
}

// Options configures detailed placement.
type Options struct {
	Mode Mode

	// Mu weights the area term in the integrated objective (Eq. 4a),
	// default 1.0. Larger favors area over wirelength.
	Mu float64
	// Zeta is the chip-utilization factor defining the constant estimates
	// W̃ = H̃ = sqrt(Σ areas / ζ) (default 1.0).
	Zeta float64
	// MaxNodes caps the branch-and-bound tree per axis (default 60).
	MaxNodes int
	// NoFlips disables the device-flipping binaries (used for ablation).
	NoFlips bool
	// Refinements is the number of compaction iterations in integrated
	// mode: after each solve the constraint graphs are re-derived from the
	// solved placement (whose separations reflect actual gaps rather than
	// the rough GP geometry) and the ILP is solved again. Each iteration's
	// incumbent remains feasible, so quality is monotone. Default 3.
	Refinements int

	// Tracer, when non-nil, wraps the run in a "detailed" span (one
	// "refine-N" sub-span per integrated refinement pass) and threads
	// through to every LP/ILP solve, which emit per-solve events. Nil
	// costs one pointer check.
	Tracer *obs.Tracer
}

func (o *Options) defaults() {
	if o.Mu == 0 {
		o.Mu = 1.0
	}
	if o.Zeta == 0 {
		o.Zeta = 1.0
	}
	if o.MaxNodes == 0 {
		o.MaxNodes = 60
	}
	if o.Refinements == 0 {
		o.Refinements = 3
	}
}

// Result is the outcome of detailed placement.
type Result struct {
	Placement *circuit.Placement
	Area      float64 // exact bounding-box area, grid units²
	HPWL      float64 // exact weighted HPWL, grid units
	ILPNodes  int     // branch-and-bound nodes solved (integrated mode)
	FlipsUsed int     // devices left flipped in either axis
}

// Place legalizes and detail-places the global-placement solution gp.
func Place(n *circuit.Netlist, gp *circuit.Placement, opt Options) (*Result, error) {
	return PlaceCtx(context.Background(), n, gp, opt)
}

// PlaceCtx is Place honoring cancellation and deadlines: the context is
// polled between LP/ILP solves (the individual solves are short — dozens of
// devices — so pass boundaries bound the cancellation latency), and a
// canceled run returns ctx.Err() instead of a partial placement.
func PlaceCtx(ctx context.Context, n *circuit.Netlist, gp *circuit.Placement, opt Options) (*Result, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	if err := n.Validate(); err != nil {
		return nil, err
	}
	if err := n.CheckSized(gp); err != nil {
		return nil, err
	}
	opt.defaults()
	sp := opt.Tracer.StartSpan("detailed")
	defer sp.End()

	ref := snapReference(n, gp)
	gs := deriveGraphs(n, ref)

	out := circuit.NewPlacement(n)
	var nodes int

	switch opt.Mode {
	case ModeTwoStageLP:
		if err := twoStageAxis(n, axisX, gs, opt.Tracer, out); err != nil {
			return nil, err
		}
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		if err := twoStageAxis(n, axisY, gs, opt.Tracer, out); err != nil {
			return nil, err
		}
	default:
		tilde := math.Sqrt(n.TotalDeviceArea() / opt.Zeta)
		prevScore := math.Inf(1)
		for iter := 0; iter < opt.Refinements; iter++ {
			if err := ctx.Err(); err != nil {
				return nil, err
			}
			refineSpan := opt.Tracer.StartSpan(refineName(iter))
			if iter == 0 || opt.NoFlips {
				// Full ILP (branch and bound over flip binaries) on the
				// first pass; later passes keep the flip assignment and
				// re-optimize coordinates, which is where refinement pays.
				nx, err := integratedAxis(n, axisX, gs, opt, tilde, out)
				if err != nil {
					refineSpan.End()
					return nil, err
				}
				ny, err := integratedAxis(n, axisY, gs, opt, tilde, out)
				if err != nil {
					refineSpan.End()
					return nil, err
				}
				nodes += nx + ny
			}
			if !opt.NoFlips {
				improveFlips(n, out)
				// Re-tighten coordinates for the final flip assignment.
				if err := resolveCoords(n, axisX, gs, opt, tilde, out); err != nil {
					refineSpan.End()
					return nil, err
				}
				if err := resolveCoords(n, axisY, gs, opt, tilde, out); err != nil {
					refineSpan.End()
					return nil, err
				}
			}
			score := n.Area(out) + n.HPWL(out)
			refineSpan.End()
			if score > prevScore*0.999 {
				break // converged: further refinement cannot pay off
			}
			prevScore = score
			if iter+1 < opt.Refinements {
				// Re-derive separations from the now-legal placement: the
				// solved geometry exposes cheaper H/V choices than the
				// original global-placement overlaps did.
				gs = deriveGraphs(n, snapReference(n, out))
			}
		}
	}

	n.Normalize(out)
	flips := 0
	for i := range out.FlipX {
		if out.FlipX[i] || out.FlipY[i] {
			flips++
		}
	}
	res := &Result{
		Placement: out,
		Area:      n.Area(out),
		HPWL:      n.HPWL(out),
		ILPNodes:  nodes,
		FlipsUsed: flips,
	}
	if opt.Tracer.Enabled() {
		opt.Tracer.Count("dp.runs", 1)
		opt.Tracer.Gauge("dp.final_area", res.Area)
		opt.Tracer.Gauge("dp.final_hpwl", res.HPWL)
	}
	return res, nil
}

// axisName labels telemetry events with the axis being solved.
func axisName(kind axisKind) string {
	if kind == axisX {
		return "x"
	}
	return "y"
}

// refineName labels the integrated mode's refinement-pass spans.
func refineName(iter int) string {
	return "refine-" + strconv.Itoa(iter)
}

// integratedAxis solves one axis of the integrated ILP: LP warm start with
// flips at zero, branch and bound over the flip binaries, best solution
// extracted into out.
func integratedAxis(n *circuit.Netlist, kind axisKind, gs constraintGraphs,
	opt Options, tilde float64, out *circuit.Placement) (int, error) {

	spec := modelSpec{
		withNets:   true,
		withFlips:  !opt.NoFlips,
		withExtent: true,
		extentObj:  opt.Mu * tilde / 2,
	}
	m := buildAxisModel(n, kind, gs, spec)

	if opt.NoFlips {
		sol, err := lp.SolveTraced(m.prob, opt.Tracer, "integrated-"+axisName(kind))
		if err != nil {
			return 0, err
		}
		if sol.Status != lp.Optimal {
			return 0, m.infeasErr("integrated")
		}
		m.extract(sol.X, n, out)
		return 0, nil
	}

	// Warm start: default (mirror-consistent) flip assignment.
	warm, err := lp.SolveTraced(m.withFixedFlips(warmFlips(n, kind)), opt.Tracer, "warm-start-"+axisName(kind))
	if err != nil {
		return 0, err
	}
	if warm.Status != lp.Optimal {
		return 0, m.infeasErr("warm-start")
	}
	isol, err := ilp.Solve(&ilp.Problem{LP: m.prob, Ints: m.flipVar}, ilp.Options{
		MaxNodes:     opt.MaxNodes,
		Incumbent:    warm.X,
		IncumbentObj: warm.Obj,
		Tracer:       opt.Tracer,
		Label:        "integrated-" + axisName(kind),
	})
	if err != nil {
		// Node cap without improvement: fall back to the warm start.
		m.extract(warm.X, n, out)
		return 0, nil
	}
	m.extract(isol.X, n, out)
	return isol.Nodes, nil
}

// resolveCoords re-solves one axis as a pure LP with the placement's
// current flip assignment fixed, updating coordinates in place.
func resolveCoords(n *circuit.Netlist, kind axisKind, gs constraintGraphs,
	opt Options, tilde float64, out *circuit.Placement) error {

	spec := modelSpec{
		withNets:   true,
		withFlips:  true,
		withExtent: true,
		extentObj:  opt.Mu * tilde / 2,
	}
	m := buildAxisModel(n, kind, gs, spec)
	flips := out.FlipX
	if kind == axisY {
		flips = out.FlipY
	}
	sol, err := lp.SolveTraced(m.withFixedFlips(flips), opt.Tracer, "flip-fixed-"+axisName(kind))
	if err != nil {
		return err
	}
	if sol.Status != lp.Optimal {
		return m.infeasErr("flip-fixed")
	}
	m.extract(sol.X, n, out)
	return nil
}

// twoStageAxis runs the [11] flow on one axis: minimize extent, then
// minimize wirelength subject to the achieved extent.
func twoStageAxis(n *circuit.Netlist, kind axisKind, gs constraintGraphs, tr *obs.Tracer, out *circuit.Placement) error {
	// Stage 1: area compaction.
	m1 := buildAxisModel(n, kind, gs, modelSpec{withExtent: true, extentObj: 1})
	s1, err := lp.SolveTraced(m1.prob, tr, "compaction-"+axisName(kind))
	if err != nil {
		return err
	}
	if s1.Status != lp.Optimal {
		return m1.infeasErr("compaction")
	}
	extent := s1.X[m1.extentVar]

	// Stage 2: wirelength minimization within the compacted extent.
	m2 := buildAxisModel(n, kind, gs, modelSpec{
		withNets:   true,
		withExtent: true,
		extentCap:  extent + 1e-9,
	})
	s2, err := lp.SolveTraced(m2.prob, tr, "wirelength-"+axisName(kind))
	if err != nil {
		return err
	}
	if s2.Status != lp.Optimal {
		return m2.infeasErr("wirelength")
	}
	m2.extract(s2.X, n, out)
	return nil
}
