package detailed

import (
	"testing"

	"repro/internal/circuit"
)

func TestUnionFind(t *testing.T) {
	u := newUF(6)
	u.union(0, 1)
	u.union(1, 2)
	u.union(4, 5)
	if u.find(0) != u.find(2) {
		t.Error("0 and 2 should be connected")
	}
	if u.find(3) == u.find(0) || u.find(3) == u.find(4) {
		t.Error("3 should be isolated")
	}
	if u.find(4) != u.find(5) {
		t.Error("4 and 5 should be connected")
	}
}

// chainNetlist builds devices linked by a bottom-align chain a-b, b-c.
func chainNetlist() *circuit.Netlist {
	mk := func(name string, h float64) circuit.Device {
		return circuit.Device{Name: name, W: 4, H: h,
			Pins: []circuit.Pin{{Name: "p"}}}
	}
	return &circuit.Netlist{
		Name:    "chain",
		Devices: []circuit.Device{mk("a", 4), mk("b", 6), mk("c", 3), mk("d", 5)},
		Nets: []circuit.Net{
			{Name: "n", Pins: []circuit.PinRef{{Device: 0, Pin: 0}, {Device: 3, Pin: 0}}},
		},
		BottomAlign: [][2]int{{0, 1}, {1, 2}},
	}
}

// TestEqualityChainForcesHorizontal: devices transitively linked by
// bottom-alignment must never get a vertical separation between them.
func TestEqualityChainForcesHorizontal(t *testing.T) {
	n := chainNetlist()
	p := circuit.NewPlacement(n)
	// Stack a and c exactly on top of each other so the geometric
	// classifier would pick vertical if the cluster rule didn't intervene.
	p.X[0], p.Y[0] = 5, 5
	p.X[1], p.Y[1] = 12, 5
	p.X[2], p.Y[2] = 5, 5.5
	p.X[3], p.Y[3] = 30, 5
	ref := snapReference(n, p)
	gs := deriveGraphs(n, ref)
	for _, e := range gs.v {
		inChain := func(d int) bool { return d <= 2 }
		if inChain(e.from) && inChain(e.to) {
			t.Errorf("vertical edge %v between bottom-aligned chain members", e)
		}
	}
}

// TestChainedAlignmentStaysFeasible: the full DP must solve a placement
// with an alignment chain regardless of how the GP scattered it.
func TestChainedAlignmentStaysFeasible(t *testing.T) {
	n := chainNetlist()
	for seed := int64(0); seed < 10; seed++ {
		p := roughGP(n, seed)
		for _, mode := range []Mode{ModeIntegratedILP, ModeTwoStageLP} {
			res, err := Place(n, p, Options{Mode: mode})
			if err != nil {
				t.Fatalf("seed %d mode %v: %v", seed, mode, err)
			}
			if rep := n.CheckLegal(res.Placement, 1e-6); !rep.OK() {
				t.Fatalf("seed %d mode %v: %v", seed, mode, rep.Err())
			}
		}
	}
}

// TestManySelfSymmetricDevices: several self-symmetric devices in one
// group share an axis and must stack vertically.
func TestManySelfSymmetricDevices(t *testing.T) {
	mk := func(name string) circuit.Device {
		return circuit.Device{Name: name, W: 6, H: 4, Pins: []circuit.Pin{{Name: "p"}}}
	}
	n := &circuit.Netlist{
		Name:    "selfstack",
		Devices: []circuit.Device{mk("a"), mk("b"), mk("c")},
		Nets: []circuit.Net{
			{Name: "n", Pins: []circuit.PinRef{{Device: 0, Pin: 0}, {Device: 1, Pin: 0}, {Device: 2, Pin: 0}}},
		},
		SymGroups: []circuit.SymmetryGroup{{Self: []int{0, 1, 2}}},
	}
	p := circuit.NewPlacement(n)
	p.X[0], p.Y[0] = 5, 5
	p.X[1], p.Y[1] = 5.2, 5.1
	p.X[2], p.Y[2] = 4.9, 5.2
	res, err := Place(n, p, Options{Mode: ModeIntegratedILP})
	if err != nil {
		t.Fatal(err)
	}
	if rep := n.CheckLegal(res.Placement, 1e-6); !rep.OK() {
		t.Fatalf("self-symmetric stack illegal: %v", rep.Err())
	}
	// All three centers on the shared axis.
	for i := 1; i < 3; i++ {
		if res.Placement.X[i] != res.Placement.X[0] {
			t.Errorf("device %d off the shared axis: %g vs %g", i, res.Placement.X[i], res.Placement.X[0])
		}
	}
}

func TestWarmFlipsMirrorConsistent(t *testing.T) {
	n := testNetlist()
	f := warmFlips(n, axisX)
	for _, pr := range n.SymGroups[0].Pairs {
		if f[pr[0]] == f[pr[1]] {
			t.Errorf("pair (%d,%d): warm flips not complementary", pr[0], pr[1])
		}
	}
	fy := warmFlips(n, axisY)
	for _, v := range fy {
		if v {
			t.Error("y warm flips should be all false")
		}
	}
}

func TestModeString(t *testing.T) {
	if ModeIntegratedILP.String() != "integrated-ilp" || ModeTwoStageLP.String() != "two-stage-lp" {
		t.Error("Mode.String wrong")
	}
}
