package detailed

import (
	"context"
	"sort"

	"repro/internal/circuit"
	"repro/internal/ilp"
	"repro/internal/lp"
	"repro/internal/obs"
)

// WindowOptions tunes the large-neighborhood window re-solves.
type WindowOptions struct {
	// MaxNodes caps branch-and-bound nodes per axis solve (default 64).
	// Windows are meant to be cheap: the budget is an iteration count, not
	// wall-clock, so refinement cost is deterministic.
	MaxNodes int
	// Tracer, when non-nil, receives the per-window ilp events (labels
	// "refine-x"/"refine-y").
	Tracer *obs.Tracer
}

// WindowSolver re-solves small device windows of a legal placement exactly
// with the Eq. (4) ILP, holding everything outside the window fixed — the
// matheuristic large-neighborhood step. Unlike the full detailed model it
// builds a compact per-window problem: variables exist only for window
// devices, nets they pin, and symmetry axes they fully own; the rest of
// the placement enters as constants. That keeps each solve at window scale
// (tens of variables) rather than netlist scale.
//
// A WindowSolver is bound to one netlist and one reference topology: call
// Rederive whenever the placement has changed enough that the separation
// DAGs should be recomputed (the refine loop does this once per pass).
type WindowSolver struct {
	n   *circuit.Netlist
	opt WindowOptions
	gs  constraintGraphs
}

// NewWindowSolver creates a window solver for n. Call Rederive before the
// first Improve.
func NewWindowSolver(n *circuit.Netlist, opt WindowOptions) *WindowSolver {
	if opt.MaxNodes <= 0 {
		opt.MaxNodes = 64
	}
	return &WindowSolver{n: n, opt: opt}
}

// Rederive recomputes the separation constraint graphs from p. The graphs
// fix which device pairs separate horizontally vs vertically; window
// solves then move devices only within that topology, which is what makes
// an accepted window provably legal.
func (ws *WindowSolver) Rederive(p *circuit.Placement) {
	ws.gs = deriveGraphs(ws.n, snapReference(ws.n, p))
}

// Improve re-solves the window (a set of device indices) on each axis and
// commits the result iff it strictly reduces weighted HPWL without growing
// the bounding box and passes the full legality check. p is mutated only
// on acceptance. Returns whether p improved and the branch-and-bound nodes
// spent. Solver failures on a window are not errors — the window is simply
// left unchanged — so the only error is context cancellation.
func (ws *WindowSolver) Improve(ctx context.Context, p *circuit.Placement, window []int) (bool, int, error) {
	free := make(map[int]bool, len(window))
	for _, i := range window {
		free[i] = true
	}
	improved := false
	nodes := 0
	for _, kind := range []axisKind{axisX, axisY} {
		if err := ctx.Err(); err != nil {
			return improved, nodes, err
		}
		nd, ok := ws.solveAxis(kind, p, free)
		nodes += nd
		if ok {
			improved = true
		}
	}
	return improved, nodes, nil
}

func (ws *WindowSolver) solveAxis(kind axisKind, p *circuit.Placement, free map[int]bool) (int, bool) {
	m := ws.buildWindowModel(kind, p, free)
	if m == nil {
		return 0, false
	}
	label := "refine-x"
	if kind == axisY {
		label = "refine-y"
	}
	sol, err := ilp.Solve(&ilp.Problem{LP: m.prob, Ints: m.ints}, ilp.Options{
		MaxNodes:     ws.opt.MaxNodes,
		Incumbent:    m.incumbent,
		IncumbentObj: m.incObj,
		Tracer:       ws.opt.Tracer,
		Label:        label,
	})
	if err != nil || sol.X == nil {
		return 0, false
	}
	cand := p.Clone()
	m.extract(sol.X, cand)
	n := ws.n
	curWL, curArea := n.HPWL(p), n.Area(p)
	newWL, newArea := n.HPWL(cand), n.Area(cand)
	if newWL < curWL-1e-9 && newArea <= curArea+1e-9 && n.CheckLegal(cand, 1e-6).OK() {
		*p = *cand
		return sol.Nodes, true
	}
	return sol.Nodes, false
}

// windowModel is the compact per-window, per-axis ILP. Variable indices
// exist only for window ("free") devices and the nets/axes they touch.
type windowModel struct {
	kind     axisKind
	prob     *lp.Problem
	coordVar map[int]int
	flipVar  map[int]int
	symVar   map[int]int // axisX, fully-free groups only
	ints     []int
	// incumbent is the current placement expressed in model variables; its
	// objective prunes branch-and-bound immediately and guarantees the
	// returned solution is never worse than the placement we started from.
	incumbent []float64
	incObj    float64
}

// buildWindowModel assembles the window ILP for one axis, or returns nil
// when the window touches no net on this axis (nothing to optimize).
//
// Constraint families mirror buildAxisModel exactly, with every non-window
// device folded in as a constant:
//   - separation edges with both endpoints outside the window are dropped
//     (both fixed — and the snapped reference the graphs were derived from
//     may disagree with the actual placement by ~1e-4, so keeping such
//     rows could make the model spuriously infeasible);
//   - symmetry groups not fully inside the window keep their current axis
//     (free members mirror about the existing AxisX); fully-free groups
//     get a free axis variable;
//   - the bounding box may not grow: window coords are capped by the
//     placement's current per-axis extent instead of a free extent var.
func (ws *WindowSolver) buildWindowModel(kind axisKind, p *circuit.Placement, free map[int]bool) *windowModel {
	n := ws.n
	dim := func(i int) float64 {
		if kind == axisX {
			return n.Devices[i].W
		}
		return n.Devices[i].H
	}
	pinOff := func(i, pin int) float64 {
		if kind == axisX {
			return n.Devices[i].Pins[pin].Offset.X
		}
		return n.Devices[i].Pins[pin].Offset.Y
	}
	coord := func(i int) float64 {
		if kind == axisX {
			return p.X[i]
		}
		return p.Y[i]
	}
	flipOf := func(i int) float64 {
		on := p.FlipX[i]
		if kind == axisY {
			on = p.FlipY[i]
		}
		if on {
			return 1
		}
		return 0
	}

	freeList := make([]int, 0, len(free))
	for i := range free {
		freeList = append(freeList, i)
	}
	sort.Ints(freeList)

	touched := make([]int, 0, 8) // net indices with ≥1 free pin, ascending
	for e := range n.Nets {
		for _, pr := range n.Nets[e].Pins {
			if free[pr.Device] {
				touched = append(touched, e)
				break
			}
		}
	}
	if len(touched) == 0 {
		return nil
	}

	m := &windowModel{
		kind:     kind,
		coordVar: make(map[int]int, len(freeList)),
		flipVar:  make(map[int]int, len(freeList)),
		symVar:   map[int]int{},
	}
	next := 0
	for _, i := range freeList {
		m.coordVar[i] = next
		next++
	}
	for _, i := range freeList {
		m.flipVar[i] = next
		next++
	}
	loVar := make(map[int]int, len(touched))
	hiVar := make(map[int]int, len(touched))
	for _, e := range touched {
		loVar[e] = next
		hiVar[e] = next + 1
		next += 2
	}
	fullyFree := make([]bool, len(n.SymGroups))
	if kind == axisX {
		for gi := range n.SymGroups {
			all, any := true, false
			for _, d := range n.SymGroups[gi].Devices() {
				if free[d] {
					any = true
				} else {
					all = false
				}
			}
			if any && all {
				fullyFree[gi] = true
				m.symVar[gi] = next
				next++
			}
		}
	}
	prob := lp.NewProblem(next)
	m.prob = prob
	m.incumbent = make([]float64, next)
	for _, i := range freeList {
		m.incumbent[m.coordVar[i]] = coord(i)
		m.incumbent[m.flipVar[i]] = flipOf(i)
		m.ints = append(m.ints, m.flipVar[i])
	}
	for gi, v := range m.symVar {
		m.incumbent[v] = p.AxisX[gi]
	}

	// Pin windows + objective over touched nets. Fixed pins collapse to
	// constant bounds on lo/hi; the model objective over touched nets then
	// equals their exact weighted HPWL contribution (untouched nets are
	// constant), so "model objective improved" means "placement HPWL
	// improved" up to the acceptance tolerance.
	pinPos := func(d, pin int) (c0, cf float64) {
		c0 = -dim(d)/2 + pinOff(d, pin)
		cf = dim(d) - 2*pinOff(d, pin)
		return
	}
	for _, e := range touched {
		w := n.Nets[e].Weight
		if w == 0 {
			w = 1
		}
		prob.AddObj(hiVar[e], w)
		prob.AddObj(loVar[e], -w)
		haveFixed := false
		var cmin, cmax float64
		incLo, incHi := 0.0, 0.0
		for pi, pr := range n.Nets[e].Pins {
			d := pr.Device
			c0, cf := pinPos(d, pr.Pin)
			pos := coord(d) + c0 + cf*flipOf(d)
			if pi == 0 || pos < incLo {
				incLo = pos
			}
			if pi == 0 || pos > incHi {
				incHi = pos
			}
			if free[d] {
				terms := []lp.Term{{Var: m.coordVar[d], Coeff: 1}, {Var: hiVar[e], Coeff: -1}}
				if cf != 0 {
					terms = append(terms, lp.Term{Var: m.flipVar[d], Coeff: cf})
				}
				prob.AddConstraint(terms, lp.LE, -c0)
				terms = []lp.Term{{Var: loVar[e], Coeff: 1}, {Var: m.coordVar[d], Coeff: -1}}
				if cf != 0 {
					terms = append(terms, lp.Term{Var: m.flipVar[d], Coeff: -cf})
				}
				prob.AddConstraint(terms, lp.LE, c0)
			} else {
				if !haveFixed || pos < cmin {
					cmin = pos
				}
				if !haveFixed || pos > cmax {
					cmax = pos
				}
				haveFixed = true
			}
		}
		if haveFixed {
			prob.AddConstraint([]lp.Term{{Var: loVar[e], Coeff: 1}}, lp.LE, cmin)
			prob.AddConstraint([]lp.Term{{Var: hiVar[e], Coeff: 1}}, lp.GE, cmax)
		}
		m.incumbent[loVar[e]] = incLo
		m.incumbent[hiVar[e]] = incHi
		m.incObj += w * (incHi - incLo)
	}

	// Boundary rows: stay inside [0, current extent] on this axis.
	extent := 0.0
	for i := range n.Devices {
		if top := coord(i) + dim(i)/2; top > extent {
			extent = top
		}
	}
	for _, i := range freeList {
		prob.AddConstraint([]lp.Term{{Var: m.coordVar[i], Coeff: 1}}, lp.GE, dim(i)/2)
		prob.AddConstraint([]lp.Term{{Var: m.coordVar[i], Coeff: 1}}, lp.LE, extent-dim(i)/2)
	}

	// Separation edges with at least one free endpoint.
	edges := ws.gs.h
	if kind == axisY {
		edges = ws.gs.v
	}
	for _, e := range edges {
		sep := (dim(e.from) + dim(e.to)) / 2
		switch {
		case free[e.from] && free[e.to]:
			prob.AddConstraint([]lp.Term{
				{Var: m.coordVar[e.from], Coeff: 1}, {Var: m.coordVar[e.to], Coeff: -1},
			}, lp.LE, -sep)
		case free[e.from]:
			prob.AddConstraint([]lp.Term{{Var: m.coordVar[e.from], Coeff: 1}}, lp.LE, coord(e.to)-sep)
		case free[e.to]:
			prob.AddConstraint([]lp.Term{{Var: m.coordVar[e.to], Coeff: 1}}, lp.GE, coord(e.from)+sep)
		}
	}

	// Symmetry.
	for gi := range n.SymGroups {
		g := &n.SymGroups[gi]
		if kind == axisX {
			if av, ok := m.symVar[gi]; ok {
				for _, pr := range g.Pairs {
					prob.AddConstraint([]lp.Term{
						{Var: m.coordVar[pr[0]], Coeff: 1},
						{Var: m.coordVar[pr[1]], Coeff: 1},
						{Var: av, Coeff: -2},
					}, lp.EQ, 0)
				}
				for _, r := range g.Self {
					prob.AddConstraint([]lp.Term{
						{Var: m.coordVar[r], Coeff: 1}, {Var: av, Coeff: -1},
					}, lp.EQ, 0)
				}
				continue
			}
			a := p.AxisX[gi]
			for _, pr := range g.Pairs {
				q1, q2 := pr[0], pr[1]
				switch {
				case free[q1] && free[q2]:
					prob.AddConstraint([]lp.Term{
						{Var: m.coordVar[q1], Coeff: 1}, {Var: m.coordVar[q2], Coeff: 1},
					}, lp.EQ, 2*a)
				case free[q1]:
					prob.AddConstraint([]lp.Term{{Var: m.coordVar[q1], Coeff: 1}}, lp.EQ, 2*a-coord(q2))
				case free[q2]:
					prob.AddConstraint([]lp.Term{{Var: m.coordVar[q2], Coeff: 1}}, lp.EQ, 2*a-coord(q1))
				}
			}
			for _, r := range g.Self {
				if free[r] {
					prob.AddConstraint([]lp.Term{{Var: m.coordVar[r], Coeff: 1}}, lp.EQ, a)
				}
			}
		} else {
			for _, pr := range g.Pairs {
				q1, q2 := pr[0], pr[1]
				switch {
				case free[q1] && free[q2]:
					prob.AddConstraint([]lp.Term{
						{Var: m.coordVar[q1], Coeff: 1}, {Var: m.coordVar[q2], Coeff: -1},
					}, lp.EQ, 0)
				case free[q1]:
					prob.AddConstraint([]lp.Term{{Var: m.coordVar[q1], Coeff: 1}}, lp.EQ, coord(q2))
				case free[q2]:
					prob.AddConstraint([]lp.Term{{Var: m.coordVar[q2], Coeff: 1}}, lp.EQ, coord(q1))
				}
			}
		}
	}

	// Alignment.
	if kind == axisY {
		for _, pr := range n.BottomAlign {
			b1, b2 := pr[0], pr[1]
			rhs := (n.Devices[b1].H - n.Devices[b2].H) / 2
			switch {
			case free[b1] && free[b2]:
				prob.AddConstraint([]lp.Term{
					{Var: m.coordVar[b1], Coeff: 1}, {Var: m.coordVar[b2], Coeff: -1},
				}, lp.EQ, rhs)
			case free[b1]:
				prob.AddConstraint([]lp.Term{{Var: m.coordVar[b1], Coeff: 1}}, lp.EQ, coord(b2)+rhs)
			case free[b2]:
				prob.AddConstraint([]lp.Term{{Var: m.coordVar[b2], Coeff: 1}}, lp.EQ, coord(b1)-rhs)
			}
		}
	} else {
		for _, pr := range n.VCenterAlign {
			v1, v2 := pr[0], pr[1]
			switch {
			case free[v1] && free[v2]:
				prob.AddConstraint([]lp.Term{
					{Var: m.coordVar[v1], Coeff: 1}, {Var: m.coordVar[v2], Coeff: -1},
				}, lp.EQ, 0)
			case free[v1]:
				prob.AddConstraint([]lp.Term{{Var: m.coordVar[v1], Coeff: 1}}, lp.EQ, coord(v2))
			case free[v2]:
				prob.AddConstraint([]lp.Term{{Var: m.coordVar[v2], Coeff: 1}}, lp.EQ, coord(v1))
			}
		}
	}

	// Flip binaries: bounded by 1, mirror-paired as in the full model
	// (complementary horizontally, identical vertically).
	for _, i := range freeList {
		prob.AddConstraint([]lp.Term{{Var: m.flipVar[i], Coeff: 1}}, lp.LE, 1)
	}
	for gi := range n.SymGroups {
		for _, pr := range n.SymGroups[gi].Pairs {
			q1, q2 := pr[0], pr[1]
			if kind == axisX {
				switch {
				case free[q1] && free[q2]:
					prob.AddConstraint([]lp.Term{
						{Var: m.flipVar[q1], Coeff: 1}, {Var: m.flipVar[q2], Coeff: 1},
					}, lp.EQ, 1)
				case free[q1]:
					prob.AddConstraint([]lp.Term{{Var: m.flipVar[q1], Coeff: 1}}, lp.EQ, 1-flipOf(q2))
				case free[q2]:
					prob.AddConstraint([]lp.Term{{Var: m.flipVar[q2], Coeff: 1}}, lp.EQ, 1-flipOf(q1))
				}
			} else {
				switch {
				case free[q1] && free[q2]:
					prob.AddConstraint([]lp.Term{
						{Var: m.flipVar[q1], Coeff: 1}, {Var: m.flipVar[q2], Coeff: -1},
					}, lp.EQ, 0)
				case free[q1]:
					prob.AddConstraint([]lp.Term{{Var: m.flipVar[q1], Coeff: 1}}, lp.EQ, flipOf(q2))
				case free[q2]:
					prob.AddConstraint([]lp.Term{{Var: m.flipVar[q2], Coeff: 1}}, lp.EQ, flipOf(q1))
				}
			}
		}
	}
	return m
}

// extract writes the window solution back into a placement clone.
func (m *windowModel) extract(x []float64, p *circuit.Placement) {
	for i, v := range m.coordVar {
		if m.kind == axisX {
			p.X[i] = x[v]
		} else {
			p.Y[i] = x[v]
		}
	}
	for i, v := range m.flipVar {
		on := x[v] > 0.5
		if m.kind == axisX {
			p.FlipX[i] = on
		} else {
			p.FlipY[i] = on
		}
	}
	for gi, v := range m.symVar {
		p.AxisX[gi] = x[v]
	}
}
