package detailed

import (
	"fmt"

	"repro/internal/circuit"
	"repro/internal/lp"
)

// axisKind selects which coordinate an axisModel works on.
type axisKind int

const (
	axisX axisKind = iota
	axisY
)

// axisModel is the per-axis LP/ILP of the detailed-placement formulation
// (Eq. 4): the x- and y-subproblems are fully separable because every
// constraint family in the paper couples only one coordinate.
type axisModel struct {
	kind  axisKind
	prob  *lp.Problem
	flips bool

	coordVar  []int // device center coordinate
	flipVar   []int // flip binary (flips mode only)
	loVar     []int // per-net lower bound
	hiVar     []int // per-net upper bound
	extentVar int   // W (axisX) or H (axisY)
	symVar    []int // symmetry-axis variable per group (axisX only)
	numVars   int
}

// modelSpec controls which pieces of the formulation are emitted.
type modelSpec struct {
	withNets   bool    // net-span variables + pin-window rows + span objective
	withFlips  bool    // flip binaries in pin positions
	withExtent bool    // extent variable + boundary rows
	extentObj  float64 // objective coefficient on the extent variable
	extentCap  float64 // if > 0, add extent ≤ extentCap
}

// buildAxisModel assembles the LP for one axis.
func buildAxisModel(n *circuit.Netlist, kind axisKind, gs constraintGraphs, spec modelSpec) *axisModel {
	nd := len(n.Devices)
	m := &axisModel{kind: kind, flips: spec.withFlips}

	dim := func(i int) float64 {
		if kind == axisX {
			return n.Devices[i].W
		}
		return n.Devices[i].H
	}
	pinOff := func(i, pin int) float64 {
		if kind == axisX {
			return n.Devices[i].Pins[pin].Offset.X
		}
		return n.Devices[i].Pins[pin].Offset.Y
	}

	// Variable layout.
	next := 0
	alloc := func(k int) int { v := next; next += k; return v }
	base := alloc(nd)
	m.coordVar = make([]int, nd)
	for i := range m.coordVar {
		m.coordVar[i] = base + i
	}
	if spec.withFlips {
		base = alloc(nd)
		m.flipVar = make([]int, nd)
		for i := range m.flipVar {
			m.flipVar[i] = base + i
		}
	}
	if spec.withNets {
		base = alloc(2 * len(n.Nets))
		m.loVar = make([]int, len(n.Nets))
		m.hiVar = make([]int, len(n.Nets))
		for e := range n.Nets {
			m.loVar[e] = base + 2*e
			m.hiVar[e] = base + 2*e + 1
		}
	}
	if spec.withExtent {
		m.extentVar = alloc(1)
	}
	if kind == axisX {
		base = alloc(len(n.SymGroups))
		m.symVar = make([]int, len(n.SymGroups))
		for g := range m.symVar {
			m.symVar[g] = base + g
		}
	}
	m.numVars = next
	p := lp.NewProblem(next)
	m.prob = p

	// Objective.
	if spec.withNets {
		for e := range n.Nets {
			w := n.Nets[e].Weight
			if w == 0 {
				w = 1
			}
			p.AddObj(m.hiVar[e], w)
			p.AddObj(m.loVar[e], -w)
		}
	}
	if spec.withExtent && spec.extentObj != 0 {
		p.AddObj(m.extentVar, spec.extentObj)
	}

	// Pin windows (4b) with flip-dependent pin positions (4d).
	if spec.withNets {
		for e := range n.Nets {
			for _, pr := range n.Nets[e].Pins {
				d := pr.Device
				c0 := -dim(d)/2 + pinOff(d, pr.Pin)
				cf := dim(d) - 2*pinOff(d, pr.Pin)
				// pin = coord + c0 + cf·f  ≤ hi  →  coord + cf·f − hi ≤ −c0
				terms := []lp.Term{{Var: m.coordVar[d], Coeff: 1}, {Var: m.hiVar[e], Coeff: -1}}
				if spec.withFlips && cf != 0 {
					terms = append(terms, lp.Term{Var: m.flipVar[d], Coeff: cf})
				}
				p.AddConstraint(terms, lp.LE, -c0)
				// pin ≥ lo  →  lo − coord − cf·f ≤ c0
				terms = []lp.Term{{Var: m.loVar[e], Coeff: 1}, {Var: m.coordVar[d], Coeff: -1}}
				if spec.withFlips && cf != 0 {
					terms = append(terms, lp.Term{Var: m.flipVar[d], Coeff: -cf})
				}
				p.AddConstraint(terms, lp.LE, c0)
			}
		}
	}

	// Boundary rows (4c): coord ≥ dim/2 and coord + dim/2 ≤ extent.
	for i := 0; i < nd; i++ {
		p.AddConstraint([]lp.Term{{Var: m.coordVar[i], Coeff: 1}}, lp.GE, dim(i)/2)
		if spec.withExtent {
			p.AddConstraint([]lp.Term{
				{Var: m.coordVar[i], Coeff: 1}, {Var: m.extentVar, Coeff: -1},
			}, lp.LE, -dim(i)/2)
		}
	}
	if spec.extentCap > 0 {
		p.AddConstraint([]lp.Term{{Var: m.extentVar, Coeff: 1}}, lp.LE, spec.extentCap)
	}

	// Separation edges (4e / 4i): from.right ≤ to.left.
	edges := gs.h
	if kind == axisY {
		edges = gs.v
	}
	for _, e := range edges {
		p.AddConstraint([]lp.Term{
			{Var: m.coordVar[e.from], Coeff: 1}, {Var: m.coordVar[e.to], Coeff: -1},
		}, lp.LE, -(dim(e.from)+dim(e.to))/2)
	}

	// Symmetry (4f).
	for gi := range n.SymGroups {
		g := &n.SymGroups[gi]
		if kind == axisX {
			for _, pr := range g.Pairs {
				p.AddConstraint([]lp.Term{
					{Var: m.coordVar[pr[0]], Coeff: 1},
					{Var: m.coordVar[pr[1]], Coeff: 1},
					{Var: m.symVar[gi], Coeff: -2},
				}, lp.EQ, 0)
			}
			for _, r := range g.Self {
				p.AddConstraint([]lp.Term{
					{Var: m.coordVar[r], Coeff: 1}, {Var: m.symVar[gi], Coeff: -1},
				}, lp.EQ, 0)
			}
		} else {
			for _, pr := range g.Pairs {
				p.AddConstraint([]lp.Term{
					{Var: m.coordVar[pr[0]], Coeff: 1}, {Var: m.coordVar[pr[1]], Coeff: -1},
				}, lp.EQ, 0)
			}
		}
	}

	// Alignment (4g, 4h).
	if kind == axisY {
		for _, pr := range n.BottomAlign {
			b1, b2 := pr[0], pr[1]
			p.AddConstraint([]lp.Term{
				{Var: m.coordVar[b1], Coeff: 1}, {Var: m.coordVar[b2], Coeff: -1},
			}, lp.EQ, (n.Devices[b1].H-n.Devices[b2].H)/2)
		}
	} else {
		for _, pr := range n.VCenterAlign {
			p.AddConstraint([]lp.Term{
				{Var: m.coordVar[pr[0]], Coeff: 1}, {Var: m.coordVar[pr[1]], Coeff: -1},
			}, lp.EQ, 0)
		}
	}

	// Flip binaries bounded by 1 (integrality handled by branch & bound).
	// Symmetric pairs flip as mirror images: complementary horizontally,
	// identical vertically, so the matched layout stays a true reflection.
	if spec.withFlips {
		for i := 0; i < nd; i++ {
			p.AddConstraint([]lp.Term{{Var: m.flipVar[i], Coeff: 1}}, lp.LE, 1)
		}
		for gi := range n.SymGroups {
			for _, pr := range n.SymGroups[gi].Pairs {
				if kind == axisX {
					p.AddConstraint([]lp.Term{
						{Var: m.flipVar[pr[0]], Coeff: 1}, {Var: m.flipVar[pr[1]], Coeff: 1},
					}, lp.EQ, 1)
				} else {
					p.AddConstraint([]lp.Term{
						{Var: m.flipVar[pr[0]], Coeff: 1}, {Var: m.flipVar[pr[1]], Coeff: -1},
					}, lp.EQ, 0)
				}
			}
		}
	}
	return m
}

// warmFlips returns the default feasible flip assignment: everything
// unflipped except the right-hand member of each symmetric pair, which is
// mirrored to satisfy the complementary-flip rows.
func warmFlips(n *circuit.Netlist, kind axisKind) []bool {
	f := make([]bool, len(n.Devices))
	if kind == axisX {
		for gi := range n.SymGroups {
			for _, pr := range n.SymGroups[gi].Pairs {
				f[pr[1]] = true
			}
		}
	}
	return f
}

// withFixedFlips returns a clone of the model's LP with every flip binary
// pinned to the given values.
func (m *axisModel) withFixedFlips(vals []bool) *lp.Problem {
	q := m.prob.Clone()
	for i, v := range m.flipVar {
		rhs := 0.0
		if vals != nil && vals[i] {
			rhs = 1
		}
		q.AddConstraint([]lp.Term{{Var: v, Coeff: 1}}, lp.EQ, rhs)
	}
	return q
}

// extract reads device coordinates (and flips) out of an LP solution.
func (m *axisModel) extract(x []float64, n *circuit.Netlist, p *circuit.Placement) {
	for i := range n.Devices {
		if m.kind == axisX {
			p.X[i] = x[m.coordVar[i]]
		} else {
			p.Y[i] = x[m.coordVar[i]]
		}
	}
	if m.flips {
		for i := range n.Devices {
			on := x[m.flipVar[i]] > 0.5
			if m.kind == axisX {
				p.FlipX[i] = on
			} else {
				p.FlipY[i] = on
			}
		}
	}
	if m.kind == axisX {
		for gi := range n.SymGroups {
			p.AxisX[gi] = x[m.symVar[gi]]
		}
	}
}

func (m *axisModel) name() string {
	if m.kind == axisX {
		return "x"
	}
	return "y"
}

// infeasErr formats an infeasibility error for one axis.
func (m *axisModel) infeasErr(stage string) error {
	return fmt.Errorf("detailed: %s-axis %s LP infeasible", m.name(), stage)
}
