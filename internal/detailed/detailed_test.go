package detailed

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/circuit"
	"repro/internal/geom"
)

// testNetlist mirrors the OTA-like circuit used by the global-placement
// tests: a symmetry group (two pairs + one self-symmetric), caps, bias
// devices, asymmetric pins so flipping matters.
func testNetlist() *circuit.Netlist {
	mk := func(name string, ty circuit.DeviceType, w, h float64) circuit.Device {
		return circuit.Device{
			Name: name, Type: ty, W: w, H: h,
			Pins: []circuit.Pin{
				{Name: "a", Offset: geom.Point{X: w * 0.2, Y: h * 0.5}},
				{Name: "b", Offset: geom.Point{X: w * 0.8, Y: h * 0.8}},
			},
		}
	}
	return &circuit.Netlist{
		Name: "dp-test",
		Devices: []circuit.Device{
			mk("M1", circuit.NMOS, 6, 4), mk("M2", circuit.NMOS, 6, 4),
			mk("M3", circuit.PMOS, 5, 3), mk("M4", circuit.PMOS, 5, 3),
			mk("MT", circuit.NMOS, 8, 3),
			mk("B1", circuit.NMOS, 4, 4), mk("B2", circuit.Cap, 7, 5),
			mk("B3", circuit.Cap, 7, 5), mk("R1", circuit.Res, 3, 6),
		},
		Nets: []circuit.Net{
			{Name: "n1", Pins: []circuit.PinRef{{Device: 0, Pin: 0}, {Device: 5, Pin: 1}}},
			{Name: "n2", Pins: []circuit.PinRef{{Device: 1, Pin: 1}, {Device: 5, Pin: 0}}},
			{Name: "n3", Pins: []circuit.PinRef{{Device: 0, Pin: 1}, {Device: 2, Pin: 0}, {Device: 6, Pin: 0}}},
			{Name: "n4", Pins: []circuit.PinRef{{Device: 1, Pin: 0}, {Device: 3, Pin: 1}, {Device: 7, Pin: 1}}},
			{Name: "n5", Pins: []circuit.PinRef{{Device: 0, Pin: 0}, {Device: 1, Pin: 1}, {Device: 4, Pin: 0}}},
			{Name: "n6", Pins: []circuit.PinRef{{Device: 8, Pin: 0}, {Device: 6, Pin: 1}, {Device: 2, Pin: 1}}},
		},
		SymGroups: []circuit.SymmetryGroup{
			{Pairs: [][2]int{{0, 1}, {2, 3}}, Self: []int{4}},
		},
	}
}

// roughGP builds a plausible global-placement state: loosely clustered with
// some overlap and imperfect symmetry.
func roughGP(n *circuit.Netlist, seed int64) *circuit.Placement {
	rng := rand.New(rand.NewSource(seed))
	p := circuit.NewPlacement(n)
	cols := int(math.Ceil(math.Sqrt(float64(len(n.Devices)))))
	for i := range n.Devices {
		p.X[i] = float64(i%cols)*6 + rng.Float64()*3
		p.Y[i] = float64(i/cols)*5 + rng.Float64()*3
	}
	// Nudge symmetric pairs near mirror positions (as soft-sym GP yields).
	for gi := range n.SymGroups {
		for _, pr := range n.SymGroups[gi].Pairs {
			p.Y[pr[1]] = p.Y[pr[0]] + rng.Float64()*0.8
		}
	}
	return p
}

func TestIntegratedLegal(t *testing.T) {
	n := testNetlist()
	gp := roughGP(n, 1)
	res, err := Place(n, gp, Options{Mode: ModeIntegratedILP})
	if err != nil {
		t.Fatal(err)
	}
	if rep := n.CheckLegal(res.Placement, 1e-6); !rep.OK() {
		t.Fatalf("integrated DP illegal: %v\n%v", rep.Err(), rep)
	}
	if res.Area <= 0 || res.HPWL <= 0 {
		t.Errorf("degenerate metrics: %+v", res)
	}
}

func TestTwoStageLegal(t *testing.T) {
	n := testNetlist()
	gp := roughGP(n, 1)
	res, err := Place(n, gp, Options{Mode: ModeTwoStageLP})
	if err != nil {
		t.Fatal(err)
	}
	if rep := n.CheckLegal(res.Placement, 1e-6); !rep.OK() {
		t.Fatalf("two-stage DP illegal: %v", rep.Err())
	}
	// Two-stage never flips.
	for i := range res.Placement.FlipX {
		if res.Placement.FlipX[i] || res.Placement.FlipY[i] {
			t.Error("two-stage LP must not flip devices")
		}
	}
}

// TestFlippingHelps is Table IV's claim: from the same GP solution, the
// integrated ILP (with flipping) achieves HPWL no worse than the two-stage
// LP, and with these asymmetric pins strictly better.
func TestFlippingHelps(t *testing.T) {
	n := testNetlist()
	gp := roughGP(n, 2)
	ilpRes, err := Place(n, gp, Options{Mode: ModeIntegratedILP})
	if err != nil {
		t.Fatal(err)
	}
	lpRes, err := Place(n, gp, Options{Mode: ModeTwoStageLP})
	if err != nil {
		t.Fatal(err)
	}
	if ilpRes.HPWL > lpRes.HPWL+1e-6 {
		t.Errorf("integrated ILP HPWL %.3f worse than two-stage %.3f", ilpRes.HPWL, lpRes.HPWL)
	}
	if ilpRes.FlipsUsed == 0 {
		t.Log("note: optimizer used no flips on this instance")
	}
}

func TestNoFlipsOption(t *testing.T) {
	n := testNetlist()
	gp := roughGP(n, 3)
	res, err := Place(n, gp, Options{Mode: ModeIntegratedILP, NoFlips: true})
	if err != nil {
		t.Fatal(err)
	}
	if res.FlipsUsed != 0 {
		t.Errorf("NoFlips placement used %d flips", res.FlipsUsed)
	}
	if rep := n.CheckLegal(res.Placement, 1e-6); !rep.OK() {
		t.Fatalf("NoFlips DP illegal: %v", rep.Err())
	}
	// Flipping freedom can only help.
	withFlips, err := Place(n, gp, Options{Mode: ModeIntegratedILP})
	if err != nil {
		t.Fatal(err)
	}
	if withFlips.HPWL > res.HPWL+1e-6 {
		t.Errorf("flips made HPWL worse: %.3f vs %.3f", withFlips.HPWL, res.HPWL)
	}
}

func TestOrderingRespected(t *testing.T) {
	n := testNetlist()
	n.HOrders = [][]int{{5, 6, 8}}
	gp := roughGP(n, 4)
	for _, mode := range []Mode{ModeIntegratedILP, ModeTwoStageLP} {
		res, err := Place(n, gp, Options{Mode: mode})
		if err != nil {
			t.Fatalf("%v: %v", mode, err)
		}
		if rep := n.CheckLegal(res.Placement, 1e-6); !rep.OK() {
			t.Errorf("%v: ordering violated: %v", mode, rep.OrderErrors)
		}
	}
}

func TestAlignmentsRespected(t *testing.T) {
	n := testNetlist()
	n.BottomAlign = [][2]int{{5, 6}}
	n.VCenterAlign = [][2]int{{7, 8}}
	gp := roughGP(n, 5)
	for _, mode := range []Mode{ModeIntegratedILP, ModeTwoStageLP} {
		res, err := Place(n, gp, Options{Mode: mode})
		if err != nil {
			t.Fatalf("%v: %v", mode, err)
		}
		if rep := n.CheckLegal(res.Placement, 1e-6); !rep.OK() {
			t.Errorf("%v: alignment violated: %v", mode, rep.AlignErrors)
		}
	}
}

func TestDeterministic(t *testing.T) {
	n := testNetlist()
	gp := roughGP(n, 6)
	r1, err := Place(n, gp, Options{Mode: ModeIntegratedILP})
	if err != nil {
		t.Fatal(err)
	}
	r2, err := Place(n, gp, Options{Mode: ModeIntegratedILP})
	if err != nil {
		t.Fatal(err)
	}
	for i := range r1.Placement.X {
		if r1.Placement.X[i] != r2.Placement.X[i] || r1.Placement.Y[i] != r2.Placement.Y[i] {
			t.Fatal("detailed placement nondeterministic")
		}
	}
}

func TestMuTradesAreaForWirelength(t *testing.T) {
	n := testNetlist()
	gp := roughGP(n, 7)
	small, err := Place(n, gp, Options{Mode: ModeIntegratedILP, Mu: 0.05})
	if err != nil {
		t.Fatal(err)
	}
	large, err := Place(n, gp, Options{Mode: ModeIntegratedILP, Mu: 20})
	if err != nil {
		t.Fatal(err)
	}
	if large.Area > small.Area+1e-6 {
		t.Errorf("larger mu gave larger area: %.2f vs %.2f", large.Area, small.Area)
	}
	if large.HPWL < small.HPWL-1e-6 {
		t.Errorf("larger mu gave smaller HPWL too (%g vs %g): no tradeoff visible",
			large.HPWL, small.HPWL)
	}
}

func TestManyRandomGPsStayFeasible(t *testing.T) {
	n := testNetlist()
	n.HOrders = [][]int{{5, 8}}
	n.VCenterAlign = [][2]int{{6, 7}}
	for seed := int64(0); seed < 30; seed++ {
		gp := roughGP(n, 100+seed)
		for _, mode := range []Mode{ModeIntegratedILP, ModeTwoStageLP} {
			res, err := Place(n, gp, Options{Mode: mode})
			if err != nil {
				t.Fatalf("seed %d mode %v: %v", seed, mode, err)
			}
			if rep := n.CheckLegal(res.Placement, 1e-6); !rep.OK() {
				t.Fatalf("seed %d mode %v: %v", seed, mode, rep.Err())
			}
		}
	}
}

func TestSnapReferenceSymmetric(t *testing.T) {
	n := testNetlist()
	gp := roughGP(n, 8)
	ref := snapReference(n, gp)
	g := n.SymGroups[0]
	axis := ref.AxisX[0]
	for _, pr := range g.Pairs {
		if ref.Y[pr[0]] != ref.Y[pr[1]] {
			t.Errorf("pair (%d,%d) y not snapped", pr[0], pr[1])
		}
		if math.Abs((ref.X[pr[0]]+ref.X[pr[1]])/2-axis) > 1e-9 {
			t.Errorf("pair (%d,%d) not mirrored about axis", pr[0], pr[1])
		}
	}
	for _, r := range g.Self {
		if math.Abs(ref.X[r]-axis) > 1e-9 {
			t.Errorf("self device %d off axis", r)
		}
	}
	// Original must be untouched.
	if gp.AxisX[0] == ref.AxisX[0] && gp.X[0] == ref.X[0] && gp.Y[0] == ref.Y[0] {
		t.Log("warning: snap produced identical coordinates (unlikely)")
	}
}

func TestSnapReferenceOrdersX(t *testing.T) {
	n := testNetlist()
	n.HOrders = [][]int{{6, 5}} // require device 6 left of device 5
	gp := roughGP(n, 9)
	gp.X[5], gp.X[6] = 0, 50 // violate badly
	ref := snapReference(n, gp)
	if ref.X[6] >= ref.X[5] {
		t.Errorf("order group not snapped: x6=%g x5=%g", ref.X[6], ref.X[5])
	}
}

func TestTransitiveReduce(t *testing.T) {
	// Chain 0→1→2 plus redundant 0→2.
	edges := []edge{{0, 1}, {1, 2}, {0, 2}}
	red := transitiveReduce(3, edges)
	if len(red) != 2 {
		t.Fatalf("reduced to %d edges, want 2: %v", len(red), red)
	}
	for _, e := range red {
		if e == (edge{0, 2}) {
			t.Error("redundant edge survived reduction")
		}
	}
	// Diamond: 0→1, 0→2, 1→3, 2→3: nothing removable.
	edges = []edge{{0, 1}, {0, 2}, {1, 3}, {2, 3}}
	if red := transitiveReduce(4, edges); len(red) != 4 {
		t.Errorf("diamond lost edges: %v", red)
	}
}

func TestImproveFlipsReducesHPWL(t *testing.T) {
	// Two devices side by side, pins facing away from each other: flipping
	// one brings the pins together (Fig. 3).
	n := &circuit.Netlist{
		Devices: []circuit.Device{
			{Name: "A", W: 4, H: 4, Pins: []circuit.Pin{{Offset: geom.Point{X: 0.5, Y: 2}}}},
			{Name: "B", W: 4, H: 4, Pins: []circuit.Pin{{Offset: geom.Point{X: 3.5, Y: 2}}}},
		},
		Nets: []circuit.Net{{Pins: []circuit.PinRef{{Device: 0, Pin: 0}, {Device: 1, Pin: 0}}}},
	}
	p := circuit.NewPlacement(n)
	p.X[0], p.Y[0] = 2, 2
	p.X[1], p.Y[1] = 6, 2
	before := n.HPWL(p)
	improveFlips(n, p)
	after := n.HPWL(p)
	if after >= before {
		t.Errorf("improveFlips did not reduce HPWL: %g -> %g", before, after)
	}
	if after > 1.01 {
		t.Errorf("expected near-minimal HPWL (pins adjacent), got %g", after)
	}
}

func TestRejectsBadInput(t *testing.T) {
	n := testNetlist()
	gp := roughGP(n, 1)
	gp.X = gp.X[:2]
	if _, err := Place(n, gp, Options{}); err == nil {
		t.Error("expected size-mismatch error")
	}
	n2 := testNetlist()
	n2.Devices[0].W = 0
	if _, err := Place(n2, roughGP(testNetlist(), 1), Options{}); err == nil {
		t.Error("expected validation error")
	}
}

func BenchmarkIntegratedDP(b *testing.B) {
	n := testNetlist()
	gp := roughGP(n, 1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Place(n, gp, Options{Mode: ModeIntegratedILP}); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkTwoStageDP(b *testing.B) {
	n := testNetlist()
	gp := roughGP(n, 1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Place(n, gp, Options{Mode: ModeTwoStageLP}); err != nil {
			b.Fatal(err)
		}
	}
}
