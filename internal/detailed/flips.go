package detailed

import "repro/internal/circuit"

// improveFlips greedily refines the flip assignment with coordinates held
// fixed: each device's horizontal and vertical flips are toggled whenever
// that strictly reduces exact HPWL, repeated to a fixed point. Mirrored
// symmetric pairs are toggled jointly so the layout stays a mirror image.
// This backstops the branch-and-bound search when its node cap truncates
// the tree.
func improveFlips(n *circuit.Netlist, p *circuit.Placement) {
	// Mirror partner per device (or -1).
	partner := make([]int, len(n.Devices))
	for i := range partner {
		partner[i] = -1
	}
	for gi := range n.SymGroups {
		for _, pr := range n.SymGroups[gi].Pairs {
			partner[pr[0]], partner[pr[1]] = pr[1], pr[0]
		}
	}
	cur := n.HPWL(p)
	for pass := 0; pass < 8; pass++ {
		improved := false
		for i := range n.Devices {
			// Horizontal flip: mirror pairs toggle together (their mirrored
			// orientations stay complementary).
			p.FlipX[i] = !p.FlipX[i]
			if j := partner[i]; j >= 0 {
				p.FlipX[j] = !p.FlipX[j]
			}
			if c := n.HPWL(p); c < cur-1e-12 {
				cur = c
				improved = true
			} else {
				p.FlipX[i] = !p.FlipX[i]
				if j := partner[i]; j >= 0 {
					p.FlipX[j] = !p.FlipX[j]
				}
			}
			// Vertical flip: symmetric pairs share the row, toggle together.
			p.FlipY[i] = !p.FlipY[i]
			if j := partner[i]; j >= 0 {
				p.FlipY[j] = !p.FlipY[j]
			}
			if c := n.HPWL(p); c < cur-1e-12 {
				cur = c
				improved = true
			} else {
				p.FlipY[i] = !p.FlipY[i]
				if j := partner[i]; j >= 0 {
					p.FlipY[j] = !p.FlipY[j]
				}
			}
		}
		if !improved {
			break
		}
	}
}
