package detailed

import (
	"math"
	"sort"

	"repro/internal/circuit"
)

// pairRel classifies how a device pair is separated, following Fig. 4 of
// the paper: overlapping pairs go horizontal when the overlap is narrower
// than tall (Δx < Δy), vertical otherwise; non-overlapping pairs keep the
// axis along which global placement already separated them.
type pairRel int

const (
	relH pairRel = iota // left device → right device
	relV                // bottom device → top device
)

// edge is a directed separation constraint in one axis's constraint graph.
type edge struct {
	from, to int
}

// constraintGraphs holds the per-axis separation DAGs derived from a
// reference placement.
type constraintGraphs struct {
	h, v []edge
}

// snapReference returns a copy of gp adjusted so that every hard constraint
// family is structurally satisfiable: symmetry groups are snapped to exact
// mirror symmetry, ordering groups get their x coordinates permuted into the
// mandated order, and alignment pairs are snapped. Deriving separation
// directions from this reference keeps the detailed-placement LP feasible.
func snapReference(n *circuit.Netlist, gp *circuit.Placement) *circuit.Placement {
	p := gp.Clone()
	// Symmetry: mirror each group about its optimal axis.
	for gi := range n.SymGroups {
		g := &n.SymGroups[gi]
		var num, den float64
		for _, pr := range g.Pairs {
			num += p.X[pr[0]] + p.X[pr[1]]
			den += 2
		}
		for _, r := range g.Self {
			num += p.X[r]
			den++
		}
		if den == 0 {
			continue
		}
		axis := num / den
		for pi, pr := range g.Pairs {
			q1, q2 := pr[0], pr[1]
			ym := (p.Y[q1] + p.Y[q2]) / 2
			p.Y[q1], p.Y[q2] = ym, ym
			d := math.Abs(p.X[q2]-p.X[q1]) / 2
			if d < n.Devices[q1].W/2 {
				d = n.Devices[q1].W / 2 // abut at the axis rather than coincide
			}
			// Distinct offsets per pair: ties in the snapped x coordinates
			// would otherwise break mirror consistency of the derived
			// separation directions (pair i left-of pair j on BOTH sides of
			// the axis is unsatisfiable under the shared-axis constraint).
			d += float64(pi+1) * 1e-4
			if p.X[q1] <= p.X[q2] {
				p.X[q1], p.X[q2] = axis-d, axis+d
			} else {
				p.X[q1], p.X[q2] = axis+d, axis-d
			}
		}
		for _, r := range g.Self {
			p.X[r] = axis
		}
		p.AxisX[gi] = axis
	}
	// Ordering groups: permute x coordinates into the required order.
	for _, grp := range n.HOrders {
		xs := make([]float64, len(grp))
		for k, d := range grp {
			xs[k] = p.X[d]
		}
		sort.Float64s(xs)
		for k, d := range grp {
			p.X[d] = xs[k]
		}
	}
	// Alignment pairs.
	for _, pr := range n.BottomAlign {
		b1, b2 := pr[0], pr[1]
		bot := (p.Y[b1] - n.Devices[b1].H/2 + p.Y[b2] - n.Devices[b2].H/2) / 2
		p.Y[b1] = bot + n.Devices[b1].H/2
		p.Y[b2] = bot + n.Devices[b2].H/2
	}
	for _, pr := range n.VCenterAlign {
		xm := (p.X[pr[0]] + p.X[pr[1]]) / 2
		p.X[pr[0]], p.X[pr[1]] = xm, xm
	}
	return p
}

// uf is a tiny union-find over device indices.
type uf struct{ parent []int }

func newUF(n int) *uf {
	p := make([]int, n)
	for i := range p {
		p[i] = i
	}
	return &uf{parent: p}
}

func (u *uf) find(i int) int {
	for u.parent[i] != i {
		u.parent[i] = u.parent[u.parent[i]]
		i = u.parent[i]
	}
	return i
}

func (u *uf) union(a, b int) { u.parent[u.find(a)] = u.find(b) }

// deriveGraphs classifies every device pair and returns transitively
// reduced horizontal and vertical constraint DAGs.
//
// Direction choices must be consistent across devices linked by coordinate
// equalities, or the LP becomes infeasible: a device sitting "above" one
// member of a bottom-aligned pair and "below" the other contradicts the
// shared bottom. Devices are therefore grouped into equality clusters —
// y-clusters joining symmetric mates (equal centers, equal heights) and
// bottom-aligned pairs; x-clusters joining vertically center-aligned pairs
// and same-group self-symmetric devices — and separation directions compare
// cluster-level keys, so every member of a cluster sorts identically.
func deriveGraphs(n *circuit.Netlist, ref *circuit.Placement) constraintGraphs {
	nd := len(n.Devices)

	// Equality clusters.
	yc := newUF(nd)
	xc := newUF(nd)
	for gi := range n.SymGroups {
		g := &n.SymGroups[gi]
		for _, pr := range g.Pairs {
			yc.union(pr[0], pr[1])
		}
		for i := 1; i < len(g.Self); i++ {
			xc.union(g.Self[0], g.Self[i])
		}
	}
	for _, pr := range n.BottomAlign {
		yc.union(pr[0], pr[1])
	}
	for _, pr := range n.VCenterAlign {
		xc.union(pr[0], pr[1])
	}
	// Cluster keys: representative coordinate (shared by construction after
	// snapping) and the minimum member index as a deterministic tie-break.
	yKey := make([]float64, nd)
	yRep := make([]int, nd)
	xKey := make([]float64, nd)
	xRep := make([]int, nd)
	for i := 0; i < nd; i++ {
		yKey[i] = ref.Y[i] - n.Devices[i].H/2 // bottoms are the shared y quantity
		yRep[i] = i
		xKey[i] = ref.X[i]
		xRep[i] = i
	}
	for i := 0; i < nd; i++ {
		if r := yc.find(i); r != i {
			if i < yRep[r] {
				yRep[r] = i
			}
			yKey[r] = math.Min(yKey[r], yKey[i])
		}
		if r := xc.find(i); r != i {
			if i < xRep[r] {
				xRep[r] = i
			}
			xKey[r] = math.Min(xKey[r], xKey[i])
		}
	}
	yBelow := func(a, b int) bool { // is a below b, cluster-consistently
		ra, rb := yc.find(a), yc.find(b)
		if yKey[ra] != yKey[rb] {
			return yKey[ra] < yKey[rb]
		}
		return yRep[ra] < yRep[rb]
	}
	xLeft := func(a, b int) bool {
		ra, rb := xc.find(a), xc.find(b)
		if xKey[ra] != xKey[rb] {
			return xKey[ra] < xKey[rb]
		}
		return xRep[ra] < xRep[rb]
	}

	// Forced relations from constraint families.
	type key struct{ a, b int } // a < b
	forced := map[key]pairRel{}
	forcedDir := map[key]bool{} // true: a before b
	setForced := func(from, to int, rel pairRel) {
		k := key{from, to}
		dir := true
		if from > to {
			k = key{to, from}
			dir = false
		}
		forced[k] = rel
		forcedDir[k] = dir
	}
	for gi := range n.SymGroups {
		g := &n.SymGroups[gi]
		for _, pr := range g.Pairs {
			q1, q2 := pr[0], pr[1]
			if ref.X[q1] <= ref.X[q2] {
				setForced(q1, q2, relH)
			} else {
				setForced(q2, q1, relH)
			}
		}
	}
	for _, pr := range n.BottomAlign {
		a, b := pr[0], pr[1]
		if ref.X[a] <= ref.X[b] {
			setForced(a, b, relH)
		} else {
			setForced(b, a, relH)
		}
	}
	for _, pr := range n.VCenterAlign {
		a, b := pr[0], pr[1]
		if yBelow(a, b) {
			setForced(a, b, relV)
		} else {
			setForced(b, a, relV)
		}
	}
	for _, grp := range n.HOrders {
		for i := 0; i < len(grp); i++ {
			for j := i + 1; j < len(grp); j++ {
				setForced(grp[i], grp[j], relH)
			}
		}
	}
	// Any remaining same-cluster pair (equality chains, self-symmetric
	// devices of one group) must separate along the free axis.
	for a := 0; a < nd; a++ {
		for b := a + 1; b < nd; b++ {
			if _, ok := forced[key{a, b}]; ok {
				continue
			}
			if yc.find(a) == yc.find(b) {
				if xLeft(a, b) {
					setForced(a, b, relH)
				} else {
					setForced(b, a, relH)
				}
			} else if xc.find(a) == xc.find(b) {
				if yBelow(a, b) {
					setForced(a, b, relV)
				} else {
					setForced(b, a, relV)
				}
			}
		}
	}

	var gs constraintGraphs
	for a := 0; a < nd; a++ {
		ra := n.DeviceRect(ref, a)
		for b := a + 1; b < nd; b++ {
			k := key{a, b}
			if rel, ok := forced[k]; ok {
				from, to := a, b
				if !forcedDir[k] {
					from, to = b, a
				}
				if rel == relH {
					gs.h = append(gs.h, edge{from, to})
				} else {
					gs.v = append(gs.v, edge{from, to})
				}
				continue
			}
			rb := n.DeviceRect(ref, b)
			dx, dy := ra.OverlapDims(rb)
			var rel pairRel
			if dx > 0 && dy > 0 {
				// Overlapping: separate along the cheaper axis (Fig. 4a).
				if dx < dy {
					rel = relH
				} else {
					rel = relV
				}
			} else {
				// Disjoint: keep the axis with the larger existing gap.
				gapX := math.Max(rb.Lo.X-ra.Hi.X, ra.Lo.X-rb.Hi.X)
				gapY := math.Max(rb.Lo.Y-ra.Hi.Y, ra.Lo.Y-rb.Hi.Y)
				if gapX >= gapY {
					rel = relH
				} else {
					rel = relV
				}
			}
			if rel == relH {
				if xLeft(a, b) {
					gs.h = append(gs.h, edge{a, b})
				} else {
					gs.h = append(gs.h, edge{b, a})
				}
			} else {
				if yBelow(a, b) {
					gs.v = append(gs.v, edge{a, b})
				} else {
					gs.v = append(gs.v, edge{b, a})
				}
			}
		}
	}
	gs.h = transitiveReduce(nd, gs.h)
	gs.v = transitiveReduce(nd, gs.v)
	return gs
}

// transitiveReduce removes edges implied by two-step paths. Constraint
// graphs from coordinates are DAGs, so reachability is well-defined.
func transitiveReduce(n int, edges []edge) []edge {
	adj := make([]map[int]bool, n)
	for i := range adj {
		adj[i] = map[int]bool{}
	}
	for _, e := range edges {
		adj[e.from][e.to] = true
	}
	// reach[i] = nodes reachable from i in >= 1 step. Computed by DFS with
	// memoization in reverse topological order of the DAG.
	reach := make([]map[int]bool, n)
	var visit func(i int) map[int]bool
	visit = func(i int) map[int]bool {
		if reach[i] != nil {
			return reach[i]
		}
		r := map[int]bool{}
		reach[i] = r // DAG: no cycles, safe to set before recursion
		for j := range adj[i] {
			r[j] = true
			for k := range visit(j) {
				r[k] = true
			}
		}
		return r
	}
	for i := 0; i < n; i++ {
		visit(i)
	}
	var out []edge
	for _, e := range edges {
		// Redundant if some other direct successor reaches e.to.
		redundant := false
		for j := range adj[e.from] {
			if j != e.to && reach[j][e.to] {
				redundant = true
				break
			}
		}
		if !redundant {
			out = append(out, e)
		}
	}
	return out
}
