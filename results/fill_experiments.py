#!/usr/bin/env python3
"""Paste measured blocks from results/final_run.txt into EXPERIMENTS.md."""
import re
import sys

run = open("results/final_run.txt").read()
doc = open("EXPERIMENTS.md").read()


def block(header, stop):
    i = run.index(header)
    j = run.index(stop, i)
    return run[i:j].rstrip()


sections = {
    "TABLE1_MEASURED": block("TABLE I:", "[table1 completed"),
    "FIG2_MEASURED": block("Fig. 2:", "[fig2 completed"),
    "TABLE3_MEASURED": block("TABLE III:", "[table3 completed"),
    "TABLE4_MEASURED": block("TABLE IV:", "[table4 completed"),
    "FIG5_MEASURED": block("Fig. 5:", "[fig5 completed"),
    "ABLATIONS_MEASURED": block("Ablations:", "[ablations completed"),
    "ROUTED_MEASURED": block("Post-route validation:", "[routed completed"),
    "TABLE5_MEASURED": block("TABLE V:", "[table5 done]"),
    "TABLE6_MEASURED": block("TABLE VI:", "[table6 completed"),
    "TABLE7_MEASURED": block("TABLE VII:", "[table7 done]"),
    "FIG6_MEASURED": block("Fig. 6:", "[fig6 completed"),
}
for key, text in sections.items():
    if key not in doc:
        sys.exit(f"placeholder {key} missing")
    doc = doc.replace(key, text)

leftover = re.findall(r"[A-Z0-9]+_MEASURED", doc)
if leftover:
    sys.exit(f"unfilled placeholders: {leftover}")
open("EXPERIMENTS.md", "w").write(doc)
print("EXPERIMENTS.md filled")
