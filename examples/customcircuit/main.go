// Custom circuit: build a netlist through the circuit API — a five-device
// differential amplifier with a symmetric input pair and mirrored loads —
// place it with all three methods, and write the best placement as JSON.
//
//	go run ./examples/customcircuit
package main

import (
	"fmt"
	"log"
	"os"

	"repro/internal/circuit"
	"repro/internal/core"
	"repro/internal/geom"
)

func main() {
	n := buildDiffAmp()
	if err := n.Validate(); err != nil {
		log.Fatal(err)
	}

	var best *core.Result
	for _, m := range []core.Method{core.MethodSA, core.MethodPrev, core.MethodEPlaceA} {
		res, err := core.Place(n, m, core.Options{Seed: 7})
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-22s area %6.1f µm²  HPWL %6.1f µm  legal=%v  (%.2fs)\n",
			res.Method, res.AreaUM2, res.HPWLUM, res.Legal, res.Runtime.Seconds())
		if best == nil || res.AreaUM2*res.HPWLUM < best.AreaUM2*best.HPWLUM {
			best = res
		}
	}

	fmt.Printf("\nwriting best placement (%s) to diffamp_placed.json\n", best.Method)
	f, err := os.Create("diffamp_placed.json")
	if err != nil {
		log.Fatal(err)
	}
	defer f.Close()
	if err := n.WritePlacementJSON(f, best.Placement); err != nil {
		log.Fatal(err)
	}
}

// buildDiffAmp assembles the netlist by hand: device footprints in grid
// units (1 unit = 0.1 µm), pins offset from each device's lower-left
// corner, nets as pin lists, and a symmetry group covering the matched
// devices.
func buildDiffAmp() *circuit.Netlist {
	mos := func(name string, ty circuit.DeviceType, w, h float64) circuit.Device {
		return circuit.Device{
			Name: name, Type: ty, W: w, H: h,
			Pins: []circuit.Pin{
				{Name: "g", Offset: geom.Point{X: 0.15 * w, Y: 0.5 * h}},
				{Name: "s", Offset: geom.Point{X: 0.5 * w, Y: 0.1 * h}},
				{Name: "d", Offset: geom.Point{X: 0.85 * w, Y: 0.85 * h}},
			},
		}
	}
	n := &circuit.Netlist{
		Name: "diffamp",
		Devices: []circuit.Device{
			mos("M1", circuit.NMOS, 28, 12), // input pair
			mos("M2", circuit.NMOS, 28, 12),
			mos("M3", circuit.PMOS, 22, 10), // mirrored loads
			mos("M4", circuit.PMOS, 22, 10),
			mos("MT", circuit.NMOS, 34, 10), // tail current source
		},
	}
	pin := func(dev int, name string) circuit.PinRef {
		for pi, p := range n.Devices[dev].Pins {
			if p.Name == name {
				return circuit.PinRef{Device: dev, Pin: pi}
			}
		}
		panic("no pin " + name)
	}
	n.Nets = []circuit.Net{
		{Name: "vinp", Pins: []circuit.PinRef{pin(0, "g")}},
		{Name: "vinn", Pins: []circuit.PinRef{pin(1, "g")}},
		{Name: "tail", Pins: []circuit.PinRef{pin(0, "s"), pin(1, "s"), pin(4, "d")}},
		{Name: "outp", Pins: []circuit.PinRef{pin(0, "d"), pin(2, "d"), pin(3, "g")}},
		{Name: "outn", Pins: []circuit.PinRef{pin(1, "d"), pin(3, "d"), pin(2, "g")}},
		{Name: "vdd", Pins: []circuit.PinRef{pin(2, "s"), pin(3, "s")}, Weight: 0.2},
	}
	n.SymGroups = []circuit.SymmetryGroup{
		{Pairs: [][2]int{{0, 1}, {2, 3}}, Self: []int{4}},
	}
	return n
}
