// Quickstart: place a built-in benchmark circuit with ePlace-A and print
// the resulting layout.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"
	"strings"

	"repro/internal/circuit"
	"repro/internal/core"
	"repro/internal/testcircuits"
)

func main() {
	// Grab the cross-coupled OTA benchmark: 14 devices, a five-pair
	// symmetry group, diff-pair style connectivity.
	cs, err := testcircuits.ByName("CC-OTA")
	if err != nil {
		log.Fatal(err)
	}
	n := cs.Netlist

	// One call runs ePlace-A end to end: electrostatic global placement
	// followed by the integrated ILP legalization/detailed placement.
	res, err := core.Place(n, core.MethodEPlaceA, core.Options{Seed: 42})
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("placed %s (%d devices, %d nets)\n", n.Name, len(n.Devices), len(n.Nets))
	fmt.Printf("  area    %.1f µm²\n", res.AreaUM2)
	fmt.Printf("  HPWL    %.1f µm\n", res.HPWLUM)
	fmt.Printf("  runtime %.2f s\n", res.Runtime.Seconds())
	fmt.Printf("  legal   %v (non-overlap, symmetry, alignment all verified)\n\n", res.Legal)

	fmt.Println(render(n, res.Placement, 72))
}

// render draws the placement as ASCII art: each device is a box labeled by
// the first letters of its name.
func render(n *circuit.Netlist, p *circuit.Placement, cols int) string {
	bb := n.BoundingBox(p)
	scaleX := float64(cols) / bb.W()
	rows := int(bb.H() * scaleX / 2) // terminal cells are ~2x taller than wide
	if rows < 8 {
		rows = 8
	}
	grid := make([][]byte, rows)
	for r := range grid {
		grid[r] = []byte(strings.Repeat(".", cols))
	}
	for i := range n.Devices {
		r := n.DeviceRect(p, i)
		x0 := int((r.Lo.X - bb.Lo.X) * scaleX)
		x1 := int((r.Hi.X - bb.Lo.X) * scaleX)
		y0 := int((r.Lo.Y - bb.Lo.Y) / bb.H() * float64(rows))
		y1 := int((r.Hi.Y - bb.Lo.Y) / bb.H() * float64(rows))
		label := n.Devices[i].Name
		for y := y0; y < y1 && y < rows; y++ {
			for x := x0; x < x1 && x < cols; x++ {
				ch := byte('#')
				if k := x - x0; y == (y0+y1)/2 && k < len(label) {
					ch = label[k]
				}
				grid[rows-1-y][x] = ch
			}
		}
	}
	var b strings.Builder
	for _, row := range grid {
		b.Write(row)
		b.WriteByte('\n')
	}
	return b.String()
}
