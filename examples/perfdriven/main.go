// Performance-driven placement: train a GNN performance model for the VGA
// benchmark, then compare conventional ePlace-A against ePlace-AP (the
// performance-driven variant) and performance-driven simulated annealing.
//
//	go run ./examples/perfdriven
package main

import (
	"fmt"
	"log"

	"repro/internal/anneal"
	"repro/internal/core"
	"repro/internal/testcircuits"
)

func main() {
	cs, err := testcircuits.ByName("VGA")
	if err != nil {
		log.Fatal(err)
	}
	n := cs.Netlist

	// Train the GNN: >1000 generated layouts labeled by whether the
	// circuit's performance model puts their FOM below threshold.
	fmt.Println("training GNN performance model on generated layouts...")
	model, stats, err := core.TrainPerfGNN(n, cs.Perf, 0 /* auto threshold */, core.TrainOptions{Seed: 3})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("  validation accuracy %.2f, final loss %.3f\n\n", stats.ValAccuracy, stats.FinalLoss)

	report := func(tag string, res *core.Result) {
		fom := cs.Perf.FOM(n, res.Placement)
		fmt.Printf("%-28s area %7.1f µm²  HPWL %6.1f µm  FOM %.3f  (%.1fs)\n",
			tag, res.AreaUM2, res.HPWLUM, fom, res.Runtime.Seconds())
	}

	conv, err := core.Place(n, core.MethodEPlaceA, core.Options{Seed: 11})
	if err != nil {
		log.Fatal(err)
	}
	report("ePlace-A (conventional)", conv)

	perf, err := core.Place(n, core.MethodEPlaceA, core.Options{
		Seed: 11,
		Perf: &core.PerfTerm{Model: model},
	})
	if err != nil {
		log.Fatal(err)
	}
	report("ePlace-AP (perf-driven)", perf)

	saPerf, err := core.Place(n, core.MethodSA, core.Options{
		Seed: 11,
		Perf: &core.PerfTerm{Model: model},
		SA:   &anneal.Options{Seed: 11, Moves: 120000, Restarts: 2},
	})
	if err != nil {
		log.Fatal(err)
	}
	report("SA (perf-driven, [19])", saPerf)

	fmt.Println("\nper-metric detail for the ePlace-AP result:")
	raw := cs.Perf.Eval(n, perf.Placement)
	norm := cs.Perf.Normalize(raw)
	for i, md := range cs.Perf.Metrics {
		fmt.Printf("  %-14s %8.1f  (spec %g, normalized %.2f)\n",
			md.Name, raw[i], md.Target, norm[i])
	}
}
