// Area–wirelength tradeoff exploration: sweep each placer's tradeoff
// parameter on CM-OTA1 and print the resulting Pareto points — a miniature
// of the paper's Fig. 5 study.
//
//	go run ./examples/tradeoff
package main

import (
	"fmt"
	"log"

	"repro/internal/anneal"
	"repro/internal/core"
	"repro/internal/testcircuits"
)

func main() {
	cs, err := testcircuits.ByName("CM-OTA1")
	if err != nil {
		log.Fatal(err)
	}
	n := cs.Netlist

	fmt.Println("method      param       area(µm²)  HPWL(µm)")

	// Simulated annealing: weight between normalized area and wirelength.
	for _, w := range []float64{0.25, 0.5, 0.75} {
		res, err := core.Place(n, core.MethodSA, core.Options{
			Seed:       5,
			AreaWeight: w,
			SA:         &anneal.Options{Seed: 5, Moves: 150000, Restarts: 2},
		})
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-11s w=%.2f     %9.1f %9.1f\n", "SA", w, res.AreaUM2, res.HPWLUM)
	}

	// ePlace-A: the GP area-term weight η.
	for _, eta := range []float64{0.15, 0.45, 0.9} {
		res, err := core.Place(n, core.MethodEPlaceA, core.Options{
			Seed:       5,
			AreaWeight: eta,
		})
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-11s eta=%.2f   %9.1f %9.1f\n", "ePlace-A", eta, res.AreaUM2, res.HPWLUM)
	}

	fmt.Println("\npoints closer to the lower-left corner dominate (smaller area AND wirelength)")
}
